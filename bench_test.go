package stopwatch

// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding harness and reports the headline
// quantities as custom metrics, so `go test -bench=. -benchmem` reproduces
// the whole evaluation. Shapes — who wins, by what factor — are asserted in
// the internal experiment tests; these benches measure and report.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"stopwatch/internal/netsim"
)

// BenchmarkFig1MedianDistribution regenerates Fig. 1(a): the analytic
// median-of-3 distributions for λ=1, λ′=1/2.
func BenchmarkFig1MedianDistribution(b *testing.B) {
	var r *Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunFig1(DefaultFig1Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.KSRaw, "KS-raw")
	b.ReportMetric(r.KSMedian, "KS-median")
	b.ReportMetric(r.KSRaw/r.KSMedian, "KS-contraction")
}

// BenchmarkFig1ObservationsHalf regenerates Fig. 1(b): observations needed,
// λ′ = 1/2.
func BenchmarkFig1ObservationsHalf(b *testing.B) {
	benchFig1Obs(b, 0.5)
}

// BenchmarkFig1ObservationsNear regenerates Fig. 1(c): observations needed,
// λ′ = 10/11.
func BenchmarkFig1ObservationsNear(b *testing.B) {
	benchFig1Obs(b, 10.0/11.0)
}

func benchFig1Obs(b *testing.B, lambdaPrime float64) {
	cfg := DefaultFig1Config()
	cfg.LambdaPrime = lambdaPrime
	var r *Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunFig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Confidences) - 1
	b.ReportMetric(r.ObsWith[last], "obs-withSW@0.99")
	b.ReportMetric(r.ObsWithout[last], "obs-withoutSW@0.99")
	b.ReportMetric(r.ObsWithLRT[last], "obsLRT-withSW@0.99")
}

// BenchmarkFig4DeliveryCDF regenerates Fig. 4(a)/(b): the live StopWatch
// run measuring virtual inter-packet delivery times with and without a
// coresident victim, and the detection effort derived from them.
func BenchmarkFig4DeliveryCDF(b *testing.B) {
	cfg := DefaultFig4Config()
	cfg.Duration = Seconds(10) // trimmed for bench time; cmd/experiments runs 30s
	var r *Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.KSStopWatch, "KS-stopwatch")
	b.ReportMetric(r.KSBaseline, "KS-baseline")
	last := len(r.Confidences) - 1
	b.ReportMetric(r.ObsWith[last], "obs-withSW@0.99")
	b.ReportMetric(r.ObsWithout[last], "obs-withoutSW@0.99")
	b.ReportMetric(float64(r.Divergences), "divergences")
}

// BenchmarkFig5HTTP regenerates the HTTP rows of Fig. 5 (one sub-benchmark
// per file size).
func BenchmarkFig5HTTP(b *testing.B) {
	for _, kb := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			benchFig5(b, kb, ModeTCP)
		})
	}
}

// BenchmarkFig5UDP regenerates the UDP rows of Fig. 5.
func BenchmarkFig5UDP(b *testing.B) {
	for _, kb := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			benchFig5(b, kb, ModeUDP)
		})
	}
}

func benchFig5(b *testing.B, kb int, mode FileServerMode) {
	cfg := DefaultFig5Config()
	cfg.SizesKB = []int{kb}
	cfg.Runs = 2
	var r *Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	p := r.Points[0]
	if mode == ModeTCP {
		b.ReportMetric(p.HTTPBaseline, "baseline-ms")
		b.ReportMetric(p.HTTPStopWatch, "stopwatch-ms")
		b.ReportMetric(p.HTTPRatio, "ratio")
	} else {
		b.ReportMetric(p.UDPBaseline, "baseline-ms")
		b.ReportMetric(p.UDPStopWatch, "stopwatch-ms")
		b.ReportMetric(p.UDPRatio, "ratio")
	}
}

// BenchmarkFig6NFSLatency regenerates Fig. 6(a)/(b): NFS latency per op and
// packets per op across offered rates.
func BenchmarkFig6NFSLatency(b *testing.B) {
	for _, rate := range []float64{25, 100, 400} {
		b.Run(fmt.Sprintf("rate%d", int(rate)), func(b *testing.B) {
			cfg := DefaultFig6Config()
			cfg.Rates = []float64{rate}
			cfg.LoadDuration = Seconds(2)
			var r *Fig6Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunFig6(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			p := r.Points[0]
			b.ReportMetric(p.LatencyBaseline, "baseline-ms")
			b.ReportMetric(p.LatencyStopWatch, "stopwatch-ms")
			b.ReportMetric(p.Ratio, "ratio")
			b.ReportMetric(p.ClientToServerPerOp, "c2s-per-op")
			b.ReportMetric(p.ServerToClientPerOp, "s2c-per-op")
		})
	}
}

// BenchmarkFig7PARSEC regenerates Fig. 7(a)/(b): one sub-benchmark per
// application, reporting runtimes and disk interrupts.
func BenchmarkFig7PARSEC(b *testing.B) {
	for _, prof := range PaperParsecProfiles() {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			cfg := DefaultFig7Config()
			cfg.Profiles = []ParsecProfile{prof}
			var r *Fig7Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunFig7(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			p := r.Points[0]
			b.ReportMetric(p.Baseline, "baseline-ms")
			b.ReportMetric(p.StopWatch, "stopwatch-ms")
			b.ReportMetric(p.Ratio, "ratio")
			b.ReportMetric(float64(p.DiskInterrupts), "disk-interrupts")
		})
	}
}

// BenchmarkFig8NoiseComparison regenerates Fig. 8: StopWatch vs additive
// uniform noise at matched detection resistance.
func BenchmarkFig8NoiseComparison(b *testing.B) {
	var r *Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunFig8(DefaultFig8Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	top := r.Points[len(r.Points)-1]
	b.ReportMetric(top.EDelayStopWatch, "sw-delay@0.99")
	b.ReportMetric(top.EDelayNoise, "noise-delay@0.99")
	b.ReportMetric(top.NoiseBound, "noise-b@0.99")
	b.ReportMetric(top.ObsNeeded, "obs@0.99")
}

// benchPinger is a minimal deterministic guest workload for the lifecycle
// benchmarks: periodic compute+send, no inbound dependencies.
type benchPinger struct{ n int64 }

func (p *benchPinger) Boot(ctx Ctx) { ctx.SetTimer(Virtual(2*Millisecond), "tick") }
func (p *benchPinger) OnTimer(ctx Ctx, tag string) {
	p.n++
	ctx.Compute(200_000)
	ctx.Send("bench-sink", 128, p.n)
	ctx.SetTimer(Virtual(2*Millisecond), "tick")
}
func (p *benchPinger) OnPacket(ctx Ctx, in Payload)   {}
func (p *benchPinger) OnDiskDone(ctx Ctx, d DiskDone) {}
func (p *benchPinger) SnapshotAppend(buf []byte) []byte {
	return binary.AppendVarint(buf, p.n)
}
func (p *benchPinger) RestoreSnapshot(data []byte) error {
	n, k := binary.Varint(data)
	if k <= 0 || k != len(data) {
		return errors.New("benchPinger snapshot: bad varint")
	}
	p.n = n
	return nil
}

var _ Snapshotter = (*benchPinger)(nil)

// BenchmarkChurn measures control-plane guest-lifecycle throughput: each
// iteration admits one guest onto an edge-disjoint triangle (deploying and
// wiring all three replicas), evicting the oldest resident first when the
// pool is full. It records the Admit/Evict hot path — incremental packing
// plus full fabric wiring and teardown.
func BenchmarkChurn(b *testing.B) {
	benchChurnLoop(b, false)
}

// benchChurnLoop is the shared admit/evict loop: bare for BenchmarkChurn
// (the allocs/op baseline the CI gate tracks), fully instrumented for
// BenchmarkMetricsHotPath.
func benchChurnLoop(b *testing.B, instrument bool) {
	cfg := DefaultClusterConfig()
	cfg.Hosts = 24
	c, err := NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := NewControlPlane(c, DefaultControlPlaneConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	var reg *MetricsRegistry
	if instrument {
		reg = NewMetricsRegistry()
		cp.InstrumentMetrics(reg)
		c.InstrumentMetrics(reg)
	}
	factory := func() App { return &benchPinger{} }
	var resident []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		_, _, err := cp.Admit(id, factory)
		if errors.Is(err, ErrNoFeasibleHost) {
			if err = cp.Evict(resident[0]); err != nil {
				b.Fatal(err)
			}
			resident = resident[1:]
			_, _, err = cp.Admit(id, factory)
		}
		if err != nil {
			b.Fatal(err)
		}
		resident = append(resident, id)
	}
	b.StopTimer()
	st := cp.Stats()
	b.ReportMetric(float64(st.Admitted), "admitted")
	b.ReportMetric(float64(st.Evicted), "evicted")
	b.ReportMetric(cp.Utilization(), "utilization")
	if instrument {
		if reg.Prom() == "" {
			b.Fatal("instrumented run rendered an empty metrics page")
		}
	}
}

// BenchmarkMetricsHotPath prices the observability plane on the lifecycle
// hot path: the same admit/evict churn as BenchmarkChurn, bare vs with the
// full metrics stack attached (control-plane Watch translator + data-plane
// hooks). The delta between the two sub-benchmarks is the per-operation
// cost of instrumentation; CI records both in the trajectory file.
func BenchmarkMetricsHotPath(b *testing.B) {
	b.Run("bare", func(b *testing.B) { benchChurnLoop(b, false) })
	b.Run("instrumented", func(b *testing.B) { benchChurnLoop(b, true) })
}

// BenchmarkApplyAdmit measures the unified operations API's dispatch
// overhead on the admission hot path: each iteration submits one AdmitOp
// through Apply (op-log append, event emission, placement, full fabric
// wiring), evicting the oldest resident first when the pool is full — the
// same loop as BenchmarkChurn, through the typed surface.
func BenchmarkApplyAdmit(b *testing.B) {
	cfg := DefaultClusterConfig()
	cfg.Hosts = 24
	c, err := NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := NewControlPlane(c, DefaultControlPlaneConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	factory := func() App { return &benchPinger{} }
	var resident []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		oc := cp.Apply(AdmitOp{GuestID: id, Factory: factory})
		if errors.Is(oc.Err, ErrNoFeasibleHost) {
			if evicted := cp.Apply(EvictOp{GuestID: resident[0]}); evicted.Err != nil {
				b.Fatal(evicted.Err)
			}
			resident = resident[1:]
			oc = cp.Apply(AdmitOp{GuestID: id, Factory: factory})
		}
		if oc.Err != nil {
			b.Fatal(oc.Err)
		}
		resident = append(resident, id)
	}
	b.StopTimer()
	st := FoldOpStats(cp.Log())
	b.ReportMetric(float64(st.Admitted), "admitted")
	b.ReportMetric(float64(len(cp.Log()))/float64(b.N), "ops-per-iter")
}

// BenchmarkWatchThroughput measures the event stream's fan-out cost: three
// subscribers (the detector pipeline, a scenario auditor and a metrics
// sink are the typical trio) observe every event of an admit/evict churn.
func BenchmarkWatchThroughput(b *testing.B) {
	cfg := DefaultClusterConfig()
	cfg.Hosts = 24
	c, err := NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := NewControlPlane(c, DefaultControlPlaneConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	events := 0
	for s := 0; s < 3; s++ {
		cp.Watch(func(OpEvent) { events++ })
	}
	factory := func() App { return &benchPinger{} }
	var resident []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		oc := cp.Apply(AdmitOp{GuestID: id, Factory: factory})
		if errors.Is(oc.Err, ErrNoFeasibleHost) {
			if evicted := cp.Apply(EvictOp{GuestID: resident[0]}); evicted.Err != nil {
				b.Fatal(evicted.Err)
			}
			resident = resident[1:]
			oc = cp.Apply(AdmitOp{GuestID: id, Factory: factory})
		}
		if oc.Err != nil {
			b.Fatal(oc.Err)
		}
		resident = append(resident, id)
	}
	b.StopTimer()
	if events == 0 {
		b.Fatal("watchers saw nothing")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events-per-op")
}

// BenchmarkReplaceReplica measures the full Sec. VII replacement protocol
// on a running cloud: crash a replica mid-run, pause/quiesce the guest's
// ingress, re-home through the pool, reconstruct from the determinism
// journal, and re-sync into strict lockstep. The sub-benchmarks pin the
// checkpointing claim: with a long journal the replayed-records metric
// grows ~10x over the short run, with checkpointing on it stays bounded by
// the checkpoint interval regardless of guest lifetime.
func BenchmarkReplaceReplica(b *testing.B) {
	b.Run("short-journal", func(b *testing.B) { benchReplace(b, Millis(200), 0) })
	b.Run("long-journal", func(b *testing.B) { benchReplace(b, Seconds(2), 0) })
	b.Run("long-checkpointed", func(b *testing.B) { benchReplace(b, Seconds(2), 4_000_000) })
}

// benchPingInto streams inbound pings at the guest every 2ms until the
// given time, so the determinism journal holds resolved delivery records —
// the thing replacement replays and checkpointing truncates.
func benchPingInto(c *Cluster, id string, until Time) {
	_ = c.Net().Attach(&netsim.FuncNode{Addr: "bench-src", Fn: func(*netsim.Packet) {}})
	var ping func()
	ping = func() {
		if c.Loop().Now() >= until {
			return
		}
		c.Net().Send(&netsim.Packet{Src: "bench-src", Dst: GuestAddr(id), Size: 128, Kind: "ping"})
		c.Loop().After(2*Millisecond, "bench:ping", ping)
	}
	c.Loop().After(2*Millisecond, "bench:ping", ping)
}

func benchReplace(b *testing.B, warmup Time, ckptInstr int64) {
	var replayed, restored int64
	for i := 0; i < b.N; i++ {
		// Cluster construction, admission and warm-up are setup, not the
		// protocol under measurement: keep them off the timer.
		b.StopTimer()
		cfg := DefaultClusterConfig()
		cfg.Seed = uint64(i + 1)
		cfg.Hosts = 5
		cfg.VMM.CheckpointInstr = ckptInstr
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := NewControlPlane(c, DefaultControlPlaneConfig(3))
		if err != nil {
			b.Fatal(err)
		}
		g, tri, err := cp.Admit("web", func() App { return &benchPinger{} })
		if err != nil {
			b.Fatal(err)
		}
		c.Start()
		benchPingInto(c, "web", warmup)
		if err := c.Run(warmup); err != nil {
			b.Fatal(err)
		}
		slot, _ := g.SlotOnHost(tri[0])
		g.Replica(slot).Runtime().Stop()
		done := false
		b.StartTimer()
		if err := cp.ReplaceReplica("web", tri[0], func(err error) {
			if err != nil {
				b.Fatal(err)
			}
			done = true
		}); err != nil {
			b.Fatal(err)
		}
		for until := warmup + Millis(50); !done && until < warmup+Seconds(10); until += Millis(50) {
			if err := c.Run(until); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if !done {
			b.Fatal("replacement never completed")
		}
		if err := g.CheckLockstepPrefix(); err != nil {
			b.Fatal(err)
		}
		st := g.Replica(slot).Runtime().Stats()
		replayed += int64(st.ReplayedRecords)
		restored += st.RestoredInstr
		if ckptInstr > 0 && st.RestoredInstr == 0 {
			b.Fatal("checkpointing on, yet replacement replayed from boot")
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(replayed)/float64(b.N), "replayed-records")
	b.ReportMetric(float64(restored)/float64(b.N), "restored-instr")
}

// BenchmarkCheckpoint prices periodic checkpointing on a running guest: the
// same cloud and workload simulated for one virtual second, with capture off
// vs on at two intervals. The timer delta between the sub-benchmarks is the
// steady-state checkpoint cost (capture is pooled, so -benchmem should show
// no allocation growth between off and on).
func BenchmarkCheckpoint(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchCheckpoint(b, 0) })
	b.Run("interval-1M", func(b *testing.B) { benchCheckpoint(b, 1_000_000) })
	b.Run("interval-4M", func(b *testing.B) { benchCheckpoint(b, 4_000_000) })
}

func benchCheckpoint(b *testing.B, every int64) {
	var ckpts, truncated int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultClusterConfig()
		cfg.Seed = uint64(i + 1)
		cfg.VMM.CheckpointInstr = every
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g, err := c.Deploy("web", []int{0, 1, 2}, func() App { return &benchPinger{} })
		if err != nil {
			b.Fatal(err)
		}
		c.Start()
		benchPingInto(c, "web", Seconds(1))
		b.StartTimer()
		if err := c.Run(Seconds(1)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		js := g.JournalStats()
		if every > 0 && js.Checkpoints == 0 {
			b.Fatal("no checkpoints taken")
		}
		ckpts += int64(js.Checkpoints)
		truncated += int64(js.TruncatedRecords)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(ckpts)/float64(b.N), "checkpoints")
	b.ReportMetric(float64(truncated)/float64(b.N), "truncated-records")
}

// BenchmarkEvacuateFailedHost measures the whole crashed-machine recovery
// path on a running multi-tenant cloud: kill a machine's VMM outright,
// reconfigure every resident guest onto its live quorum (unwedging the
// delivery medians), evacuate the residents through the replacement
// barrier, and repair the machine.
func BenchmarkEvacuateFailedHost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultClusterConfig()
		cfg.Seed = uint64(i + 1)
		cfg.Hosts = 9
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := NewControlPlane(c, DefaultControlPlaneConfig(3))
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range []string{"ga", "gb", "gc", "gd", "ge"} {
			if _, _, err := cp.Admit(id, func() App { return &benchPinger{} }); err != nil {
				b.Fatal(err)
			}
		}
		c.Start()
		if err := c.Run(Millis(200)); err != nil {
			b.Fatal(err)
		}
		// The machine hosting the most guests, lowest index as tie-break.
		machine := 0
		for m := 1; m < cfg.Hosts; m++ {
			if len(cp.Pool().Residents(m)) > len(cp.Pool().Residents(machine)) {
				machine = m
			}
		}
		affected := cp.Pool().Residents(machine)
		done := false
		b.StartTimer()
		if err := cp.FailHost(machine); err != nil {
			b.Fatal(err)
		}
		if err := cp.EvacuateFailedHost(machine, func(err error) {
			if err != nil {
				b.Fatal(err)
			}
			done = true
		}); err != nil {
			b.Fatal(err)
		}
		for until := Millis(250); !done && until < Seconds(30); until += Millis(50) {
			if err := c.Run(until); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if !done {
			b.Fatal("evacuation never completed")
		}
		if err := cp.RepairHost(machine); err != nil {
			b.Fatal(err)
		}
		for _, id := range affected {
			g, _ := c.Guest(id)
			if err := g.CheckLockstepPrefix(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(affected)), "residents-moved")
		b.StartTimer()
	}
}

// BenchmarkTheorem1Packing regenerates the Theorem-1 maximum packing counts.
func BenchmarkTheorem1Packing(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for n := 3; n <= 999; n++ {
			k, err := Theorem1Max(n)
			if err != nil {
				b.Fatal(err)
			}
			total += k
		}
	}
	b.ReportMetric(float64(total), "sum-k(3..999)")
}

// BenchmarkTheorem2Placement regenerates the Sec.-VIII constructive
// placements (n=99, c=(n-1)/2) with full verification.
func BenchmarkTheorem2Placement(b *testing.B) {
	var guests int
	for i := 0; i < b.N; i++ {
		p, err := PlaceTheorem2(99, 49)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Verify(); err != nil {
			b.Fatal(err)
		}
		guests = p.Guests()
	}
	b.ReportMetric(float64(guests), "guests(n=99,c=49)")
	b.ReportMetric(float64(guests)/99, "gain-vs-isolation")
}

// BenchmarkDeltaCalibration regenerates the Sec. VII-A Δn sweep.
func BenchmarkDeltaCalibration(b *testing.B) {
	cfg := DefaultCalibConfig()
	cfg.DeltaNsMS = []float64{4, 12}
	cfg.Duration = Seconds(4)
	var r *CalibResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunCalib(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Points[0].Divergences), "divergences@4ms")
	b.ReportMetric(float64(r.Points[len(r.Points)-1].Divergences), "divergences@12ms")
	b.ReportMetric(r.Points[len(r.Points)-1].MeanLatencyMS, "latency-ms@12ms")
}

// BenchmarkCollabAttack regenerates the Sec.-IX ablation: marginalizing one
// replica, and 5 replicas as the countermeasure.
func BenchmarkCollabAttack(b *testing.B) {
	cfg := DefaultCollabConfig()
	cfg.Duration = Seconds(6)
	var r *CollabResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunCollab(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range r.Points {
		b.ReportMetric(p.KS, "KS-"+p.Name)
	}
}

// BenchmarkLeaderAblation regenerates the median-vs-leader ablation
// (Sec. II design argument). Needs enough samples for the KS ordering to
// stabilize; shorter runs are dominated by ECDF noise.
func BenchmarkLeaderAblation(b *testing.B) {
	cfg := DefaultLeaderConfig()
	cfg.Duration = Seconds(15)
	var r *LeaderResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunLeader(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.KSMedian, "KS-median")
	b.ReportMetric(r.KSLeader, "KS-leader")
}
