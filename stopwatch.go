// Package stopwatch is a simulation-based reproduction of "Mitigating
// Access-Driven Timing Channels in Clouds using StopWatch" (Li, Gao,
// Reiter — DSN 2013).
//
// StopWatch defends infrastructure-as-a-service clouds against timing side
// channels by running three replicas of every guest VM on hosts whose other
// residents do not overlap, exposing only virtual time (a deterministic
// function of the guest's instruction count) to the guests, and delivering
// every I/O event at the median of the three replicas' proposed timings.
// External observers see output packets at the median emission time too
// (the egress forwards the second copy).
//
// This package is the public façade over the full system:
//
//   - Cluster: a simulated cloud (hosts, StopWatch or baseline VMMs,
//     ingress/egress, reliable multicast, transports) on a deterministic
//     discrete-event kernel.
//   - Experiments: one harness per table/figure in the paper's evaluation
//     (Fig 1, 4, 5, 6, 7, 8; placement theorems; Δ calibration; the
//     Sec.-IX collaborating-attacker and median-vs-leader ablations).
//   - Placement: Theorem-1/2 replica placement (edge-disjoint triangle
//     packings of K_n via Bose's Steiner-triple-system construction).
//   - Analysis: the appendix's statistics (median-of-3 order statistics,
//     χ² detection effort, KS contraction, Δn calibration).
//
// # Quick start
//
//	cfg := stopwatch.DefaultClusterConfig()
//	c, err := stopwatch.NewCluster(cfg)
//	if err != nil { ... }
//	g, err := c.Deploy("web", []int{0, 1, 2}, func() stopwatch.App {
//	    fs, _ := stopwatch.NewFileServer(stopwatch.DefaultFileServerConfig())
//	    return fs
//	})
//	client, _ := c.NewClient("laptop")
//	c.Start()
//	dl := stopwatch.NewDownloader(client)
//	_ = dl.Fetch(stopwatch.GuestAddr("web"), stopwatch.ModeTCP, 100<<10, nil)
//	_ = c.Run(stopwatch.Seconds(10))
//	fmt.Println(g.CheckLockstep()) // nil: replicas emitted identical outputs
//
// All randomness is seeded; every run is bit-reproducible.
package stopwatch

import (
	"stopwatch/internal/apps"
	"stopwatch/internal/controlplane"
	"stopwatch/internal/core"
	"stopwatch/internal/gateway"
	"stopwatch/internal/guest"
	"stopwatch/internal/metrics"
	"stopwatch/internal/netsim"
	"stopwatch/internal/obsrv"
	"stopwatch/internal/placement"
	"stopwatch/internal/sim"
	"stopwatch/internal/transport"
	"stopwatch/internal/vmm"
	"stopwatch/internal/vtime"
)

// Time is a simulated-time instant/duration in nanoseconds.
type Time = sim.Time

// Virtual is a guest-visible virtual-time value in nanoseconds.
type Virtual = vtime.Virtual

// Common time helpers.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Seconds converts seconds to simulated Time.
func Seconds(s float64) Time { return sim.FromSeconds(s) }

// Millis converts milliseconds to simulated Time.
func Millis(ms float64) Time { return sim.FromMillis(ms) }

// Addr is a network fabric address.
type Addr = netsim.Addr

// Packet is a unit of fabric traffic.
type Packet = netsim.Packet

// FuncNode adapts a function into a fabric node (clients, sinks).
type FuncNode = netsim.FuncNode

// Cluster is a running simulated cloud.
type Cluster = core.Cluster

// ClusterConfig configures a cloud.
type ClusterConfig = core.ClusterConfig

// Guest is a deployed guest VM (all of its replicas).
type Guest = core.Guest

// Replica is a slot-addressed, read-through view of one guest replica:
// Guest.Replica(slot) / Guest.Replicas() expose the current host, runtime,
// device model, app and epoch coordinator of each slot. Views stay valid
// across replica replacement — they read the slot's current occupant.
type Replica = core.Replica

// Mode selects the hypervisor under test.
type Mode = core.Mode

// Hypervisor modes.
const (
	ModeStopWatch = core.ModeStopWatch
	ModeBaseline  = core.ModeBaseline
)

// VMMConfig carries hypervisor tunables (Δn, Δd, exit granularity, pacing,
// I/O and disk models).
type VMMConfig = vmm.Config

// DefaultVMMConfig returns the tunables used throughout the reproduction.
func DefaultVMMConfig() VMMConfig { return vmm.DefaultConfig() }

// NewCluster creates a simulated cloud.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.New(cfg) }

// DefaultClusterConfig returns a three-host StopWatch cloud in the paper's
// experimental regime.
func DefaultClusterConfig() ClusterConfig { return core.DefaultClusterConfig() }

// GuestAddr returns the public service address of a deployed guest.
func GuestAddr(guestID string) Addr { return gateway.ServiceAddr(guestID) }

// Report summarizes a cluster run (per-guest lockstep health, interrupt
// counts, gateway and fabric counters). Obtain one via Cluster.Report.
type Report = core.Report

// GuestReport is one guest's summary within a Report.
type GuestReport = core.GuestReport

// App is a deterministic guest workload; implement it to run custom guests.
type App = guest.App

// Snapshotter is the optional App extension checkpointed journals need:
// apps that can serialize and restore their state get periodic journal
// checkpoints (VMMConfig.CheckpointInstr), bounding replica-replacement
// replay by the checkpoint interval instead of the guest's lifetime.
type Snapshotter = guest.Snapshotter

// Ctx is the API available to guest apps inside callbacks.
type Ctx = guest.Ctx

// Payload is an inbound packet as a guest sees it.
type Payload = guest.Payload

// DiskDone reports disk completion to a guest.
type DiskDone = guest.DiskDone

// Client is the external transport client (the paper's client laptop).
type Client = transport.Client

// Response reports a completed client request.
type Response = transport.Response

// FileServer is the Fig-4/5 guest workload: files served from disk over
// TCP-like or UDP-like transport.
type FileServer = apps.FileServer

// FileServerConfig configures a FileServer.
type FileServerConfig = apps.FileServerConfig

// FileServerMode selects the file server transport.
type FileServerMode = apps.FileServerMode

// File server transports.
const (
	ModeTCP = apps.ModeTCP
	ModeUDP = apps.ModeUDP
)

// NewFileServer builds a file-serving guest app.
func NewFileServer(cfg FileServerConfig) (*FileServer, error) { return apps.NewFileServer(cfg) }

// DefaultFileServerConfig mirrors the paper's Apache setup.
func DefaultFileServerConfig() FileServerConfig { return apps.DefaultFileServerConfig() }

// Downloader drives file downloads and records latency.
type Downloader = apps.Downloader

// NewDownloader wraps a client.
func NewDownloader(c *Client) *Downloader { return apps.NewDownloader(c) }

// GetFile is the file-server request descriptor.
type GetFile = apps.GetFile

// NFSServer is the Fig-6 guest workload.
type NFSServer = apps.NFSServer

// NewNFSServer builds an NFS guest app.
func NewNFSServer(window int) (*NFSServer, error) { return apps.NewNFSServer(window) }

// NFSLoadGen is the nhfsstone-style load generator.
type NFSLoadGen = apps.NFSLoadGen

// NFSLoadGenConfig configures the generator.
type NFSLoadGenConfig = apps.NFSLoadGenConfig

// PaperNFSMix returns the paper's extracted NFS operation mix.
func PaperNFSMix() []apps.MixEntry { return apps.PaperMix() }

// ParsecProfile is a calibrated compute/disk workload profile.
type ParsecProfile = apps.ParsecProfile

// PaperParsecProfiles returns the five calibrated PARSEC stand-ins.
func PaperParsecProfiles() []ParsecProfile { return apps.PaperParsecProfiles() }

// NewParsecApp builds a profile-running guest app.
func NewParsecApp(p ParsecProfile, collector Addr) (*apps.ParsecApp, error) {
	return apps.NewParsecApp(p, collector)
}

// ProbeApp is the attacker VM: it records guest-visible delivery times.
type ProbeApp = apps.ProbeApp

// NewProbeApp builds an attacker probe.
func NewProbeApp() *ProbeApp { return apps.NewProbeApp() }

// ProbeSource drives an attacker's inbound packet stream.
type ProbeSource = apps.ProbeSource

// NewProbeSource sends packets from src to dst with exponential (or
// constant) gaps of the given mean — the attacker's probing strategy.
// Wire it with a cluster's fabric, loop and a named RNG stream:
//
//	p := stopwatch.NewProbeSource(c.Net(), c.Loop(), c.Source().Stream("probe"), "colluder", stopwatch.GuestAddr("attacker"), stopwatch.Millis(2))
func NewProbeSource(net *netsim.Network, loop *sim.Loop, rng *sim.Rand, src, dst Addr, meanGap Time) *ProbeSource {
	return apps.NewProbeSource(net, loop, rng, src, dst, meanGap)
}

// BeaconApp is a self-driving periodic compute/disk/network load — the
// standing victim workload of scenario scripts.
type BeaconApp = apps.BeaconApp

// NewBeaconApp returns a beacon with the given burst period.
func NewBeaconApp(period Virtual) *BeaconApp { return apps.NewBeaconApp(period) }

// Placement re-exports.

// Triangle is one guest's three replica machines.
type Triangle = placement.Triangle

// Placement is a set of replica placements.
type Placement = placement.Placement

// Theorem1Max returns the maximum edge-disjoint triangle packing of K_n.
func Theorem1Max(n int) (int, error) { return placement.Theorem1Max(n) }

// Theorem2Guests returns Theorem 2's guaranteed guest count for n machines
// of capacity c.
func Theorem2Guests(n, c int) (int, error) { return placement.Theorem2Guests(n, c) }

// PlaceTheorem2 constructs the Theorem-2 placement.
func PlaceTheorem2(n, c int) (*Placement, error) { return placement.PlaceTheorem2(n, c) }

// GreedyPack packs triangles for arbitrary n.
func GreedyPack(n, c int) (*Placement, error) { return placement.GreedyPack(n, c) }

// Pool is the incremental triangle packer: it keeps an edge-disjoint
// packing under online guest arrivals, departures and replica re-homing.
type Pool = placement.Pool

// NewPool creates an empty incremental packer over n machines of capacity c.
func NewPool(n, c int) (*Pool, error) { return placement.NewPool(n, c) }

// Control-plane re-exports: the online orchestrator over a running cloud.

// ControlPlane serves the online guest lifecycle through the unified
// operations API: every mutation is a typed Op — AdmitOp, EvictOp,
// ReplaceOp, DrainOp, UndrainOp, FailOp, EvacuateOp, RepairOp, MigrateOp —
// submitted through Apply, which returns a structured Outcome (typed
// result, per-phase barrier timings, affected guests, pool deltas), appends
// it to the append-only operations log (Log), and streams progress to Watch
// subscribers. Stats is a pure fold over the log, and EnableStallDetector
// turns a stalled proposal group into a detector-driven
// fail → reconfigure → evacuate pipeline. EnablePlannedMigration turns
// infeasible Admit/Rehome requests into one-move migration plans run as
// child MigrateOps. The verb methods (Admit, Evict, ReplaceReplica,
// DrainHost, UndrainHost, FailHost, EvacuateFailedHost, RepairHost,
// Migrate) are thin wrappers over Apply.
type ControlPlane = controlplane.ControlPlane

// ControlPlaneConfig tunes the orchestrator.
type ControlPlaneConfig = controlplane.Config

// ControlPlaneStats aggregates lifecycle decisions — a pure fold over the
// operations log (see FoldOpStats).
type ControlPlaneStats = controlplane.Stats

// Operations API re-exports.

// Op is one control-plane operation, submitted through ControlPlane.Apply.
type Op = controlplane.Op

// OpKind discriminates the Op sum.
type OpKind = controlplane.OpKind

// Outcome is an operation's record in the operations log.
type Outcome = controlplane.Outcome

// OpPhase is one stage of an operation's execution.
type OpPhase = controlplane.Phase

// OpEvent is one observation on the ControlPlane.Watch stream.
type OpEvent = controlplane.Event

// OpEventKind discriminates operation events.
type OpEventKind = controlplane.EventKind

// Operation event kinds.
const (
	OpStarted    = controlplane.OpStarted
	PhaseReached = controlplane.PhaseReached
	OpCompleted  = controlplane.OpCompleted
	OpFailed     = controlplane.OpFailed
)

// The typed operations.
type (
	// AdmitOp places a new guest on an edge-disjoint replica triangle.
	AdmitOp = controlplane.AdmitOp
	// EvictOp undeploys a guest and frees its edges and capacity.
	EvictOp = controlplane.EvictOp
	// ReplaceOp re-homes a failed replica through the Sec. VII barrier.
	ReplaceOp = controlplane.ReplaceOp
	// DrainOp evacuates a machine for planned maintenance.
	DrainOp = controlplane.DrainOp
	// UndrainOp returns a drained machine's capacity to the pool.
	UndrainOp = controlplane.UndrainOp
	// FailOp marks a machine crashed and reconfigures its residents onto
	// their live quorums.
	FailOp = controlplane.FailOp
	// EvacuateOp re-homes every resident of a crashed machine.
	EvacuateOp = controlplane.EvacuateOp
	// RepairOp returns a crashed, evacuated machine to service.
	RepairOp = controlplane.RepairOp
	// MigrateOp moves a live replica between healthy hosts through the
	// freeze + replacement barrier (planned migration).
	MigrateOp = controlplane.MigrateOp
)

// MigrationPlan is one planned replica move (Pool.PlanAdmitMigration /
// Pool.PlanRehomeMigration) that unblocks an infeasible placement request.
type MigrationPlan = placement.MigrationPlan

// FoldOpStats derives decision counters from an operations log.
func FoldOpStats(log []*Outcome) ControlPlaneStats { return controlplane.FoldStats(log) }

// FormatOpLog renders an operations log deterministically, one line per
// outcome — byte-identical across runs with the same seed.
func FormatOpLog(log []*Outcome) string { return controlplane.FormatLog(log) }

// ErrNoFeasibleHost is the uniform typed infeasibility sentinel: no
// candidate triangle or host satisfies edge-disjointness, capacity and
// drain state. Admission rejections, replacement and evacuation
// infeasibility all wrap it — errors.Is(outcome.Err, ErrNoFeasibleHost) is
// the one check. Expected at high utilization.
var ErrNoFeasibleHost = controlplane.ErrNoFeasibleHost

// NewControlPlane builds a control plane over a StopWatch-mode cluster.
func NewControlPlane(c *Cluster, cfg ControlPlaneConfig) (*ControlPlane, error) {
	return controlplane.New(c, cfg)
}

// DefaultControlPlaneConfig returns orchestrator defaults for the given
// per-host capacity.
func DefaultControlPlaneConfig(capacity int) ControlPlaneConfig {
	return controlplane.DefaultConfig(capacity)
}

// Observability re-exports: the deterministic metrics registry, the
// localhost HTTP surface over it, and telemetry-driven admission.
//
//	reg := stopwatch.NewMetricsRegistry()
//	cp.InstrumentMetrics(reg) // control-plane families, fed by Watch
//	c.InstrumentMetrics(reg)  // data-plane families (packets, proposals, disks)
//	srv := stopwatch.NewObsrvServer()
//	srv.Attach(cp, reg)
//	_ = srv.Start("127.0.0.1:8080") // /metrics, /metrics.json, /ops, /ops/stream
//	cp.EnableLoadAwareAdmission(stopwatch.LoadAwareConfig{})

// MetricsRegistry is the deterministic metrics registry: counters, gauges
// and fixed-bucket histograms with no wall-clock dependence; snapshots
// enumerate families in registration order and vec children in first-use
// order, so rendered pages are byte-identical across identical runs.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry builds an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricFamily is one named series family in a registry snapshot.
type MetricFamily = metrics.Family

// MetricSample is one sample (one label value) in a family snapshot.
type MetricSample = metrics.Sample

// ObsrvServer is the observability HTTP server: a localhost-only surface
// serving the registry as Prometheus text (/metrics) and canonical JSON
// (/metrics.json), the completed-operations log as a filterable query API
// (/ops), and the live event stream as an NDJSON tail (/ops/stream).
// Serving never perturbs the simulation: handlers read only published
// immutable snapshots.
type ObsrvServer = obsrv.Server

// NewObsrvServer builds an unstarted observability server; Attach it to a
// control plane and registry, then Start it on a loopback address.
func NewObsrvServer() *ObsrvServer { return obsrv.New() }

// ObsrvOpRecord is one completed operation as served by /ops.
type ObsrvOpRecord = obsrv.OpRecord

// LoadAwareConfig parameterizes telemetry-driven admission
// (ControlPlane.EnableLoadAwareAdmission): live per-host disk backlog
// becomes a placement tie-break score, and hosts whose backlog exceeds the
// false-alarm budget are gated out of new placements.
type LoadAwareConfig = controlplane.LoadAwareConfig
