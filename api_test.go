package stopwatch

// Tests of the public façade: the API a downstream user sees. These are
// deliberately written only against the root package.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 99
	cloud, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	web, err := cloud.Deploy("web", []int{0, 1, 2}, func() App {
		fs, err := NewFileServer(DefaultFileServerConfig())
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := cloud.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	cloud.Start()
	dl := NewDownloader(client)
	var gotLatency Time
	cloud.Loop().At(Millis(20), "fetch", func() {
		if err := dl.Fetch(GuestAddr("web"), ModeTCP, 100<<10, func(lat Time) { gotLatency = lat }); err != nil {
			t.Error(err)
		}
	})
	if err := cloud.Run(Seconds(30)); err != nil {
		t.Fatal(err)
	}
	if gotLatency <= 0 {
		t.Fatal("download did not complete")
	}
	if err := web.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if cloud.Ingress().Replicated() == 0 || cloud.Egress().Forwarded() == 0 {
		t.Fatal("gateways idle")
	}
}

func TestPublicAPISeededDeterminism(t *testing.T) {
	run := func() (Time, uint64) {
		cfg := DefaultClusterConfig()
		cfg.Seed = 1234
		cloud, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		web, err := cloud.Deploy("web", []int{0, 1, 2}, func() App {
			fs, err := NewFileServer(DefaultFileServerConfig())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		})
		if err != nil {
			t.Fatal(err)
		}
		client, err := cloud.NewClient("laptop")
		if err != nil {
			t.Fatal(err)
		}
		cloud.Start()
		dl := NewDownloader(client)
		var lat Time
		cloud.Loop().At(Millis(20), "fetch", func() {
			_ = dl.Fetch(GuestAddr("web"), ModeTCP, 64<<10, func(l Time) { lat = l })
		})
		if err := cloud.Run(Seconds(20)); err != nil {
			t.Fatal(err)
		}
		return lat, web.Replica(0).Runtime().VM().OutputDigest()
	}
	lat1, dig1 := run()
	lat2, dig2 := run()
	if lat1 != lat2 || dig1 != dig2 {
		t.Fatalf("same seed, different results: %v/%x vs %v/%x", lat1, dig1, lat2, dig2)
	}
	if lat1 == 0 {
		t.Fatal("no download")
	}
}

func TestPublicPlacementAPI(t *testing.T) {
	k, err := Theorem1Max(99)
	if err != nil {
		t.Fatal(err)
	}
	if k != 99*98/6 {
		t.Fatalf("Theorem1Max(99) = %d (99 ≡ 3 mod 6 admits a Steiner system)", k)
	}
	want, err := Theorem2Guests(21, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlaceTheorem2(21, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Guests() != want {
		t.Fatalf("guests %d, want %d", p.Guests(), want)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	gp, err := GreedyPack(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := gp.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTimeHelpers(t *testing.T) {
	if Seconds(1) != Second || Millis(1) != Millisecond {
		t.Fatal("helpers wrong")
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Fatal("constants wrong")
	}
}

func TestPublicExperimentEntryPoints(t *testing.T) {
	// Analytic experiments run fast and exercise the re-exports.
	f1, err := RunFig1(DefaultFig1Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Curve) == 0 || f1.Render() == "" {
		t.Fatal("fig1 empty")
	}
	pt, err := RunPlacementTable(DefaultPlacementConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Rows) == 0 {
		t.Fatal("placement table empty")
	}
	// Config re-exports for the simulation-backed figures.
	if DefaultFig4Config().Bins == 0 || DefaultFig5Config().Runs == 0 ||
		DefaultFig6Config().Processes == 0 || len(DefaultFig7Config().Profiles) == 0 ||
		DefaultFig8Config().Bins == 0 || len(DefaultCalibConfig().DeltaNsMS) == 0 ||
		DefaultCollabConfig().Duration == 0 || DefaultLeaderConfig().Duration == 0 {
		t.Fatal("config re-export broken")
	}
	if DefaultVMMConfig().Validate() != nil {
		t.Fatal("default VMM config invalid")
	}
}

func TestPublicNFSAndParsecTypes(t *testing.T) {
	if len(PaperNFSMix()) != 6 {
		t.Fatal("mix")
	}
	if len(PaperParsecProfiles()) != 5 {
		t.Fatal("profiles")
	}
	srv, err := NewNFSServer(8)
	if err != nil || srv == nil {
		t.Fatal(err)
	}
	app, err := NewParsecApp(PaperParsecProfiles()[0], "collector")
	if err != nil || app == nil {
		t.Fatal(err)
	}
	probe := NewProbeApp()
	if probe == nil {
		t.Fatal("probe nil")
	}
}

// TestPublicOperationsAPI drives the unified operations surface through the
// façade only: typed Ops through Apply, the Watch event stream, the
// append-only log, folded stats, and the uniform infeasibility sentinel.
func TestPublicOperationsAPI(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 77
	cfg.Hosts = 6
	cloud, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewControlPlane(cloud, DefaultControlPlaneConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var events []OpEvent
	cancel := cp.Watch(func(ev OpEvent) { events = append(events, ev) })
	factory := func() App { return &benchPinger{} }
	// 6 hosts at capacity 1 fit exactly two edge-disjoint triangles.
	var outcomes []*Outcome
	for i := 0; i < 3; i++ {
		outcomes = append(outcomes, cp.Apply(AdmitOp{GuestID: fmt.Sprintf("g%d", i), Factory: factory}))
	}
	if outcomes[0].Err != nil || outcomes[1].Err != nil {
		t.Fatalf("admissions failed: %v, %v", outcomes[0].Err, outcomes[1].Err)
	}
	if !errors.Is(outcomes[2].Err, ErrNoFeasibleHost) {
		t.Fatalf("full pool rejection not ErrNoFeasibleHost: %v", outcomes[2].Err)
	}
	if outcomes[0].Guest == nil || outcomes[0].Triangle == outcomes[1].Triangle {
		t.Fatal("admit outcomes incomplete")
	}
	if oc := cp.Apply(EvictOp{GuestID: "g1"}); oc.Err != nil {
		t.Fatal(oc.Err)
	}
	log := cp.Log()
	if len(log) != 4 {
		t.Fatalf("op log has %d entries, want 4", len(log))
	}
	st := FoldOpStats(log)
	if st.Admitted != 2 || st.Rejected != 1 || st.Evicted != 1 {
		t.Fatalf("folded stats %+v", st)
	}
	if st != cp.Stats() {
		t.Fatalf("Stats() %+v != fold %+v", cp.Stats(), st)
	}
	if FormatOpLog(log) == "" || !strings.Contains(FormatOpLog(log), "admit g0") {
		t.Fatal("op log renders nothing")
	}
	// The stream saw every op start and complete; cancel stops delivery.
	starts, ends := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case OpStarted:
			starts++
		case OpCompleted, OpFailed:
			ends++
		}
	}
	if starts != 4 || ends != 4 {
		t.Fatalf("watch saw %d starts, %d completions, want 4/4", starts, ends)
	}
	cancel()
	before := len(events)
	cp.Apply(EvictOp{GuestID: "ghost"})
	if len(events) != before {
		t.Fatal("cancelled watcher still receiving")
	}
}
