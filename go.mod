module stopwatch

go 1.24
