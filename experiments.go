package stopwatch

import "stopwatch/internal/experiment"

// Experiment re-exports: one entry point per table/figure of the paper.
// Each Run* function returns a structured result whose Render method
// produces the paper-style series; cmd/experiments drives them all.

// Fig1Config parameterizes the analytic median illustration.
type Fig1Config = experiment.Fig1Config

// Fig1Result carries the Fig-1 curves.
type Fig1Result = experiment.Fig1Result

// RunFig1 computes Fig. 1 (median distributions and detection effort).
func RunFig1(cfg Fig1Config) (*Fig1Result, error) { return experiment.RunFig1(cfg) }

// DefaultFig1Config returns λ=1, λ′=1/2.
func DefaultFig1Config() Fig1Config { return experiment.DefaultFig1Config() }

// Fig4Config parameterizes the live side-channel measurement.
type Fig4Config = experiment.Fig4Config

// Fig4Result carries the empirical distributions and detection curves.
type Fig4Result = experiment.Fig4Result

// RunFig4 runs the attacker/victim simulation behind Fig. 4.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) { return experiment.RunFig4(cfg) }

// DefaultFig4Config returns the default scenario.
func DefaultFig4Config() Fig4Config { return experiment.DefaultFig4Config() }

// Fig5Config parameterizes the download sweep.
type Fig5Config = experiment.Fig5Config

// Fig5Result carries the download latencies.
type Fig5Result = experiment.Fig5Result

// RunFig5 sweeps file sizes × transports × VMMs (Fig. 5).
func RunFig5(cfg Fig5Config) (*Fig5Result, error) { return experiment.RunFig5(cfg) }

// DefaultFig5Config mirrors the paper's sweep.
func DefaultFig5Config() Fig5Config { return experiment.DefaultFig5Config() }

// Fig6Config parameterizes the NFS experiment.
type Fig6Config = experiment.Fig6Config

// Fig6Result carries the NFS latency and packet counts.
type Fig6Result = experiment.Fig6Result

// RunFig6 sweeps NFS offered rates (Fig. 6).
func RunFig6(cfg Fig6Config) (*Fig6Result, error) { return experiment.RunFig6(cfg) }

// DefaultFig6Config mirrors the paper's sweep.
func DefaultFig6Config() Fig6Config { return experiment.DefaultFig6Config() }

// Fig7Config parameterizes the PARSEC-like suite.
type Fig7Config = experiment.Fig7Config

// Fig7Result carries the runtimes and disk interrupt counts.
type Fig7Result = experiment.Fig7Result

// RunFig7 measures the compute workloads (Fig. 7).
func RunFig7(cfg Fig7Config) (*Fig7Result, error) { return experiment.RunFig7(cfg) }

// DefaultFig7Config returns the calibrated profiles.
func DefaultFig7Config() Fig7Config { return experiment.DefaultFig7Config() }

// Fig8Config parameterizes the noise comparison.
type Fig8Config = experiment.Fig8Config

// Fig8Result carries the delay comparison.
type Fig8Result = experiment.Fig8Result

// RunFig8 compares StopWatch against additive uniform noise (Fig. 8).
func RunFig8(cfg Fig8Config) (*Fig8Result, error) { return experiment.RunFig8(cfg) }

// DefaultFig8Config returns the λ′=1/2 panel.
func DefaultFig8Config() Fig8Config { return experiment.DefaultFig8Config() }

// PlacementConfig parameterizes the Sec.-VIII table.
type PlacementConfig = experiment.PlacementConfig

// PlacementResult carries the utilization table.
type PlacementResult = experiment.PlacementResult

// RunPlacementTable builds and verifies Theorem-2 placements.
func RunPlacementTable(cfg PlacementConfig) (*PlacementResult, error) {
	return experiment.RunPlacement(cfg)
}

// DefaultPlacementConfig evaluates the theorem family.
func DefaultPlacementConfig() PlacementConfig { return experiment.DefaultPlacementConfig() }

// CalibConfig parameterizes the Δn sweep of Sec. VII-A.
type CalibConfig = experiment.CalibConfig

// CalibResult carries the divergence/latency tradeoff.
type CalibResult = experiment.CalibResult

// RunCalib sweeps Δn.
func RunCalib(cfg CalibConfig) (*CalibResult, error) { return experiment.RunCalib(cfg) }

// DefaultCalibConfig sweeps 2–16 ms.
func DefaultCalibConfig() CalibConfig { return experiment.DefaultCalibConfig() }

// CollabConfig parameterizes the Sec.-IX collaborating-attacker study.
type CollabConfig = experiment.CollabConfig

// CollabResult compares 3-replica, marginalized, and 5-replica setups.
type CollabResult = experiment.CollabResult

// RunCollab runs the collaborating-attacker ablation.
func RunCollab(cfg CollabConfig) (*CollabResult, error) { return experiment.RunCollab(cfg) }

// DefaultCollabConfig returns the default study.
func DefaultCollabConfig() CollabConfig { return experiment.DefaultCollabConfig() }

// LeaderConfig parameterizes the median-vs-leader ablation.
type LeaderConfig = experiment.LeaderConfig

// LeaderResult compares delivery policies.
type LeaderResult = experiment.LeaderResult

// RunLeader runs the median-vs-leader ablation.
func RunLeader(cfg LeaderConfig) (*LeaderResult, error) { return experiment.RunLeader(cfg) }

// DefaultLeaderConfig mirrors the Fig-4 scenario.
func DefaultLeaderConfig() LeaderConfig { return experiment.DefaultLeaderConfig() }
