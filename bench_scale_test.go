package stopwatch

// BenchmarkClusterScale is the repo's perf yardstick for the discrete-event
// hot path: a whole cloud (10/50/200/1000 machines) under simultaneous
// tenant churn and client traffic, measured as simulator event throughput.
// Unlike the figure benches (which measure paper quantities), this one
// measures the enforcement layer itself: events/sec is how fast the
// deterministic timing-replication machinery runs on the hardware, and
// allocs/op (via -benchmem) is the steady-state garbage the packet pipeline
// produces. Each size runs twice — single-shard (the sequential baseline
// the BENCH_*.json trajectory has tracked since PR 5) and "mc"
// (Shards=NumCPU: the conservative-lookahead coordinator executing windows
// on one goroutine per shard). The simulation schedule, and therefore
// events/op and pkts/simsec, is identical in both; only wall-clock moves.
// BENCH_7.json records the trajectory; CI gates on events/sec at /200.

import (
	"fmt"
	"runtime"
	"testing"

	"stopwatch/internal/controlplane"
)

// benchScale runs one cloud size on `shards` fabric shards: hosts machines
// at capacity 4, one tenant per machine on average, client pings to every
// tenant plus a rolling evict/re-admit churn through the middle of the run.
func benchScale(b *testing.B, hosts, shards int) {
	const simMillis = 200.0
	var fired, pkts uint64
	var simSeconds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultClusterConfig()
		cfg.Hosts = hosts
		cfg.Shards = shards
		cfg.Seed = uint64(i + 1)
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := NewControlPlane(c, DefaultControlPlaneConfig(4))
		if err != nil {
			b.Fatal(err)
		}
		factory := func() App { return &benchPinger{} }
		ids := make([]string, hosts)
		for g := 0; g < hosts; g++ {
			ids[g] = fmt.Sprintf("scale-%d", g)
			if _, _, err := cp.Admit(ids[g], factory); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Net().Attach(&FuncNode{Addr: "bench-sink"}); err != nil {
			b.Fatal(err)
		}
		c.Start()
		// Client traffic: ping every tenant every 10 simulated ms.
		var ping func()
		ping = func() {
			for _, id := range ids {
				c.Net().Send(&Packet{Src: "bench-sink", Dst: GuestAddr(id), Size: 200, Kind: "ping"})
			}
			c.Loop().After(Millis(10), "scale:ping", ping)
		}
		c.Loop().After(Millis(5), "scale:ping", ping)
		// Churn: one evict + re-admit per 20 simulated ms, round-robin.
		victim := 0
		var churn func()
		churn = func() {
			id := ids[victim%hosts]
			if oc := cp.Apply(controlplane.EvictOp{GuestID: id}); oc.Err != nil {
				b.Fatal(oc.Err)
			}
			ids[victim%hosts] = fmt.Sprintf("scale-%d-r%d", victim%hosts, victim)
			if oc := cp.Apply(controlplane.AdmitOp{GuestID: ids[victim%hosts], Factory: factory}); oc.Err != nil {
				b.Fatal(oc.Err)
			}
			victim++
			c.Loop().After(Millis(20), "scale:churn", churn)
		}
		c.Loop().After(Millis(15), "scale:churn", churn)
		b.StartTimer()
		if err := c.Run(Millis(simMillis)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		fired += c.Coordinator().FiredTotal()
		pkts += c.Net().Stats().Delivered
		simSeconds += simMillis / 1000
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(fired)/float64(b.N), "events/op")
	b.ReportMetric(float64(pkts)/simSeconds, "pkts/simsec")
}

// BenchmarkClusterScale sweeps cloud sizes; /200 is the headline number the
// ROADMAP perf trajectory tracks (and the CI events/sec gate), /1000 is the
// multi-core showcase. The bare size is the single-shard baseline; the /mc
// variant partitions the machines across NumCPU fabric shards. "mc" is a
// fixed label (not the shard count) so bench names — and the BENCH_*.json
// baselines CI gates against — stay stable across machines.
func BenchmarkClusterScale(b *testing.B) {
	for _, hosts := range []int{10, 50, 200, 1000} {
		hosts := hosts
		b.Run(fmt.Sprintf("%d", hosts), func(b *testing.B) { benchScale(b, hosts, 1) })
		b.Run(fmt.Sprintf("%d/mc", hosts), func(b *testing.B) { benchScale(b, hosts, runtime.NumCPU()) })
	}
}
