package stopwatch

// BenchmarkClusterScale is the repo's perf yardstick for the discrete-event
// hot path: a whole cloud (10/50/200 machines) under simultaneous tenant
// churn and client traffic, measured as simulator event throughput. Unlike
// the figure benches (which measure paper quantities), this one measures the
// enforcement layer itself: events/sec is how fast the deterministic
// timing-replication machinery runs on the hardware, and allocs/op (via
// -benchmem) is the steady-state garbage the packet pipeline produces.
// BENCH_5.json records the trajectory; CI fails on alloc regressions.

import (
	"fmt"
	"testing"

	"stopwatch/internal/controlplane"
)

// benchScale runs one cloud size: hosts machines at capacity 4, one tenant
// per machine on average, client pings to every tenant plus a rolling
// evict/re-admit churn through the middle of the run.
func benchScale(b *testing.B, hosts int) {
	const simMillis = 200.0
	var fired, pkts uint64
	var simSeconds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultClusterConfig()
		cfg.Hosts = hosts
		cfg.Seed = uint64(i + 1)
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := NewControlPlane(c, DefaultControlPlaneConfig(4))
		if err != nil {
			b.Fatal(err)
		}
		factory := func() App { return &benchPinger{} }
		ids := make([]string, hosts)
		for g := 0; g < hosts; g++ {
			ids[g] = fmt.Sprintf("scale-%d", g)
			if _, _, err := cp.Admit(ids[g], factory); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Net().Attach(&FuncNode{Addr: "bench-sink"}); err != nil {
			b.Fatal(err)
		}
		c.Start()
		// Client traffic: ping every tenant every 10 simulated ms.
		var ping func()
		ping = func() {
			for _, id := range ids {
				c.Net().Send(&Packet{Src: "bench-sink", Dst: GuestAddr(id), Size: 200, Kind: "ping"})
			}
			c.Loop().After(Millis(10), "scale:ping", ping)
		}
		c.Loop().After(Millis(5), "scale:ping", ping)
		// Churn: one evict + re-admit per 20 simulated ms, round-robin.
		victim := 0
		var churn func()
		churn = func() {
			id := ids[victim%hosts]
			if oc := cp.Apply(controlplane.EvictOp{GuestID: id}); oc.Err != nil {
				b.Fatal(oc.Err)
			}
			ids[victim%hosts] = fmt.Sprintf("scale-%d-r%d", victim%hosts, victim)
			if oc := cp.Apply(controlplane.AdmitOp{GuestID: ids[victim%hosts], Factory: factory}); oc.Err != nil {
				b.Fatal(oc.Err)
			}
			victim++
			c.Loop().After(Millis(20), "scale:churn", churn)
		}
		c.Loop().After(Millis(15), "scale:churn", churn)
		b.StartTimer()
		if err := c.Run(Millis(simMillis)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		fired += c.Loop().Fired()
		pkts += c.Net().Stats().Delivered
		simSeconds += simMillis / 1000
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(fired)/float64(b.N), "events/op")
	b.ReportMetric(float64(pkts)/simSeconds, "pkts/simsec")
}

// BenchmarkClusterScale sweeps cloud sizes; /200 is the headline number the
// ROADMAP perf trajectory tracks.
func BenchmarkClusterScale(b *testing.B) {
	for _, hosts := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("%d", hosts), func(b *testing.B) { benchScale(b, hosts) })
	}
}
