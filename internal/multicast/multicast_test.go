package multicast

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
)

type member struct {
	addr netsim.Addr
	rx   *Receiver
	got  []string
}

// buildGroup wires a sender and three receivers on one fabric with the given
// loss probability on every link.
func buildGroup(t *testing.T, loss float64, seed uint64) (*sim.Loop, *Sender, []*member) {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(seed)
	net, err := netsim.New(loop, src.Stream("net"), netsim.LinkConfig{
		Latency:   sim.Millisecond,
		JitterMax: 200 * sim.Microsecond,
		LossProb:  loss,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []netsim.Addr{"h1", "h2", "h3"}
	members := make([]*member, len(addrs))
	for i, a := range addrs {
		m := &member{addr: a}
		rx, err := NewReceiver(net, loop, ReceiverConfig{
			Addr: a,
			OnData: func(src netsim.Addr, seq uint64, kind string, body netsim.PacketBody) {
				m.got = append(m.got, fmt.Sprintf("%d:%s:%v", seq, kind, body.Data))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		m.rx = rx
		members[i] = m
		if err := net.Attach(&netsim.FuncNode{Addr: a, Fn: func(p *netsim.Packet) { rx.Handle(p) }}); err != nil {
			t.Fatal(err)
		}
	}
	snd, err := NewSender(net, loop, SenderConfig{Src: "ingress", Group: addrs})
	if err != nil {
		t.Fatal(err)
	}
	// NAKs flow back to the sender's address.
	if err := net.Attach(&netsim.FuncNode{Addr: "ingress", Fn: func(p *netsim.Packet) { snd.Handle(p) }}); err != nil {
		t.Fatal(err)
	}
	return loop, snd, members
}

func TestLosslessDelivery(t *testing.T) {
	loop, snd, members := buildGroup(t, 0, 1)
	for i := 0; i < 20; i++ {
		snd.Multicast("msg", 100, netsim.PacketBody{Data: i})
	}
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if len(m.got) != 20 {
			t.Fatalf("%s got %d messages, want 20", m.addr, len(m.got))
		}
		for i, g := range m.got {
			want := fmt.Sprintf("%d:msg:%d", i+1, i)
			if g != want {
				t.Fatalf("%s msg %d = %q, want %q", m.addr, i, g, want)
			}
		}
	}
	if s := snd.Stats(); s.Retransmitted != 0 {
		t.Fatalf("retransmissions on lossless fabric: %+v", s)
	}
}

// TestSetGroupEmptySilencesSender covers the sole-survivor reconfiguration:
// an empty group silences the sender (no data, no SPM heartbeats that
// would resurrect stream state on departed members) without closing it —
// a later SetGroup restores delivery to primed receivers, and only Close
// retires the sender for good.
func TestSetGroupEmptySilencesSender(t *testing.T) {
	loop, snd, members := buildGroup(t, 0, 21)
	snd.Multicast("msg", 64, netsim.PacketBody{Data: "one"})
	if err := loop.RunUntil(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := snd.SetGroup(nil); err != nil {
		t.Fatalf("empty group rejected: %v", err)
	}
	if seq := snd.Multicast("msg", 64, netsim.PacketBody{Data: "two"}); seq != 2 {
		t.Fatalf("silenced sender still numbers messages: seq=%d", seq)
	}
	if err := loop.RunUntil(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if len(m.got) != 1 {
			t.Fatalf("%s heard %d messages from a silenced sender", m.addr, len(m.got))
		}
	}
	if snd.Closed() {
		t.Fatal("silenced sender reports closed")
	}
	// One member returns, primed at the current sequence.
	if err := snd.SetGroup([]netsim.Addr{members[0].addr}); err != nil {
		t.Fatal(err)
	}
	members[0].rx.Prime("ingress", snd.NextSeq())
	snd.Multicast("msg", 64, netsim.PacketBody{Data: "three"})
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(members[0].got) != 2 || len(members[1].got) != 1 {
		t.Fatalf("restored group delivery wrong: %d/%d", len(members[0].got), len(members[1].got))
	}
	if got := len(snd.Group()); got != 1 {
		t.Fatalf("Group() reports %d members", got)
	}
	snd.Close()
	if !snd.Closed() {
		t.Fatal("closed sender reports open")
	}
	if seq := snd.Multicast("msg", 64, netsim.PacketBody{Data: "four"}); seq != 0 {
		t.Fatalf("closed sender accepted a message: seq=%d", seq)
	}
}

func TestLossRecovery(t *testing.T) {
	loop, snd, members := buildGroup(t, 0.2, 7)
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		loop.At(sim.Time(i)*sim.Millisecond, "send", func() { snd.Multicast("msg", 100, netsim.PacketBody{Data: i}) })
	}
	if err := loop.RunUntil(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if len(m.got) != n {
			t.Fatalf("%s got %d/%d messages despite NAK recovery (rx stats %+v, tx stats %+v)",
				m.addr, len(m.got), n, m.rx.Stats(), snd.Stats())
		}
		for i, g := range m.got {
			want := fmt.Sprintf("%d:msg:%d", i+1, i)
			if g != want {
				t.Fatalf("%s out-of-order delivery at %d: %q", m.addr, i, g)
			}
		}
	}
	if s := snd.Stats(); s.Retransmitted == 0 {
		t.Fatal("expected retransmissions under 20% loss")
	}
}

func TestTailLossRecoveredViaSPM(t *testing.T) {
	// Drop everything to h1 initially, then heal the link: SPM heartbeats
	// must trigger recovery of the tail messages.
	loop := sim.NewLoop()
	src := sim.NewSource(11)
	net, err := netsim.New(loop, src.Stream("net"), netsim.LinkConfig{Latency: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	rx, err := NewReceiver(net, loop, ReceiverConfig{
		Addr:   "h1",
		OnData: func(_ netsim.Addr, seq uint64, _ string, _ netsim.PacketBody) { got = append(got, seq) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(&netsim.FuncNode{Addr: "h1", Fn: func(p *netsim.Packet) { rx.Handle(p) }}); err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(net, loop, SenderConfig{Src: "s", Group: []netsim.Addr{"h1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(&netsim.FuncNode{Addr: "s", Fn: func(p *netsim.Packet) { snd.Handle(p) }}); err != nil {
		t.Fatal(err)
	}
	// Break the s→h1 link completely, send the batch (all lost), then heal.
	if err := net.SetLink("s", "h1", netsim.LinkConfig{LossProb: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		snd.Multicast("m", 50, netsim.PacketBody{Data: i})
	}
	loop.At(50*sim.Millisecond, "heal", func() {
		if err := net.SetLink("s", "h1", netsim.LinkConfig{Latency: sim.Millisecond}); err != nil {
			t.Fatal(err)
		}
	})
	if err := loop.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("tail recovery delivered %d/5 (rx %+v tx %+v)", len(got), rx.Stats(), snd.Stats())
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("order violated: %v", got)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	loop, snd, members := buildGroup(t, 0, 13)
	snd.Multicast("m", 10, netsim.PacketBody{Data: "x"})
	// Force a duplicate by NAKing a seq we already have — simulate by
	// sending the data packet twice via a second multicast of same content;
	// instead directly deliver a duplicate wire packet.
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	m := members[0]
	before := len(m.got)
	m.rx.Handle(&netsim.Packet{Src: "ingress", Dst: m.addr, Kind: "pgm:data", Body: netsim.PacketBody{StreamSeq: 1, StreamKind: "m", Data: "x"}})
	if len(m.got) != before {
		t.Fatal("duplicate was delivered")
	}
	if m.rx.Stats().Duplicates != 1 {
		t.Fatalf("dup counter = %d", m.rx.Stats().Duplicates)
	}
}

func TestHandleIgnoresForeignPackets(t *testing.T) {
	loop, snd, members := buildGroup(t, 0, 17)
	_ = loop
	if snd.Handle(&netsim.Packet{Kind: "tcp:data", Dst: "ingress"}) {
		t.Fatal("sender consumed foreign packet")
	}
	if members[0].rx.Handle(&netsim.Packet{Kind: "tcp:data"}) {
		t.Fatal("receiver consumed foreign packet")
	}
	// Malformed packets are consumed but ignored.
	if !snd.Handle(&netsim.Packet{Kind: "pgm:nak", Dst: "ingress", Payload: "garbage"}) {
		t.Fatal("sender should consume malformed NAK")
	}
	if !members[0].rx.Handle(&netsim.Packet{Kind: "pgm:data"}) {
		t.Fatal("receiver should consume malformed data")
	}
}

func TestValidation(t *testing.T) {
	loop := sim.NewLoop()
	net, err := netsim.New(loop, sim.NewSource(1).Stream("n"), netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSender(nil, loop, SenderConfig{Src: "s", Group: []netsim.Addr{"a"}}); !errors.Is(err, ErrMulticast) {
		t.Fatal("nil net should fail")
	}
	if _, err := NewSender(net, loop, SenderConfig{Group: []netsim.Addr{"a"}}); !errors.Is(err, ErrMulticast) {
		t.Fatal("empty src should fail")
	}
	if _, err := NewSender(net, loop, SenderConfig{Src: "s"}); !errors.Is(err, ErrMulticast) {
		t.Fatal("empty group should fail")
	}
	if _, err := NewReceiver(net, nil, ReceiverConfig{Addr: "a", OnData: func(netsim.Addr, uint64, string, netsim.PacketBody) {}}); !errors.Is(err, ErrMulticast) {
		t.Fatal("nil loop should fail")
	}
	if _, err := NewReceiver(net, loop, ReceiverConfig{Addr: "a"}); !errors.Is(err, ErrMulticast) {
		t.Fatal("nil OnData should fail")
	}
}

// Property: under any loss rate < 1 and any message count, every member
// eventually receives every message exactly once, in order.
func TestReliabilityProperty(t *testing.T) {
	f := func(seed uint64, lossRaw uint8, nRaw uint8) bool {
		loss := float64(lossRaw%60) / 100 // 0..0.59
		n := int(nRaw%40) + 1
		loop := sim.NewLoop()
		src := sim.NewSource(seed)
		net, err := netsim.New(loop, src.Stream("net"), netsim.LinkConfig{
			Latency: sim.Millisecond, LossProb: loss,
		})
		if err != nil {
			return false
		}
		var got []uint64
		rx, err := NewReceiver(net, loop, ReceiverConfig{
			Addr:   "h",
			OnData: func(_ netsim.Addr, seq uint64, _ string, _ netsim.PacketBody) { got = append(got, seq) },
		})
		if err != nil {
			return false
		}
		if err := net.Attach(&netsim.FuncNode{Addr: "h", Fn: func(p *netsim.Packet) { rx.Handle(p) }}); err != nil {
			return false
		}
		snd, err := NewSender(net, loop, SenderConfig{Src: "s", Group: []netsim.Addr{"h"}})
		if err != nil {
			return false
		}
		if err := net.Attach(&netsim.FuncNode{Addr: "s", Fn: func(p *netsim.Packet) { snd.Handle(p) }}); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			snd.Multicast("m", 64, netsim.PacketBody{Data: i})
		}
		if err := loop.RunUntil(60 * sim.Second); err != nil {
			return false
		}
		if len(got) != n {
			t.Logf("seed=%d loss=%v n=%d: delivered %d", seed, loss, n, len(got))
			return false
		}
		for i, seq := range got {
			if seq != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
