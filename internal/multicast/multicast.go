// Package multicast implements a NAK-based reliable multicast in the style
// of PGM/OpenPGM (RFC 3208), which StopWatch uses for two jobs (Sec. VII-A):
// replicating inbound guest packets from the ingress node to the three
// replica hosts, and exchanging proposed interrupt delivery times among the
// VMMs hosting a guest's replicas.
//
// Reliability is receiver-driven: receivers detect sequence gaps and send
// NAKs; the sender retransmits from its window. Source Path Messages (SPMs)
// advertise the highest sequence so trailing losses are detected too.
// Delivery to the application is in sequence order.
package multicast

import (
	"errors"
	"fmt"
	"sort"

	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
)

// ErrMulticast reports configuration errors.
var ErrMulticast = errors.New("multicast: invalid configuration")

// Wire kinds used on the fabric.
const (
	kindData = "pgm:data"
	kindNAK  = "pgm:nak"
	kindSPM  = "pgm:spm"
)

type nakMsg struct {
	Seqs []uint64
}

// SenderConfig parameterizes a multicast source.
type SenderConfig struct {
	// Src is the sender's fabric address.
	Src netsim.Addr
	// Group lists receiver addresses.
	Group []netsim.Addr
	// SPMInterval is the heartbeat period while the window is open
	// (default 5ms).
	SPMInterval sim.Time
	// WindowSize bounds retained messages for retransmission (default 4096).
	WindowSize int
}

// Sender is a reliable multicast source.
type Sender struct {
	net   *netsim.Network
	loop  *sim.Loop
	cfg   SenderConfig
	seq   uint64
	win   map[uint64]netsim.PacketBody // retained bodies, envelope stamped
	winLo uint64                       // lowest seq retained

	spmPending bool
	closed     bool

	sent     uint64
	retrans  uint64
	nakRecvd uint64
}

// NewSender creates a multicast source.
func NewSender(net *netsim.Network, loop *sim.Loop, cfg SenderConfig) (*Sender, error) {
	if net == nil || loop == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrMulticast)
	}
	if cfg.Src == "" || len(cfg.Group) == 0 {
		return nil, fmt.Errorf("%w: sender needs src and group", ErrMulticast)
	}
	if cfg.SPMInterval <= 0 {
		cfg.SPMInterval = 5 * sim.Millisecond
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 4096
	}
	// win is lazily initialized on the first Multicast: senders are wired
	// per guest under churn, often before any traffic exists.
	return &Sender{
		net:   net,
		loop:  loop,
		cfg:   cfg,
		winLo: 1,
	}, nil
}

var _ netsim.Node = (*Sender)(nil)

// Address implements netsim.Node: the sender's stream source address, where
// receivers direct their NAKs.
func (s *Sender) Address() netsim.Addr { return s.cfg.Src }

// Deliver implements netsim.Node, consuming NAKs — attaching the sender
// itself avoids a per-stream adapter node on the fabric.
func (s *Sender) Deliver(pkt *netsim.Packet) { s.Handle(pkt) }

// Multicast sends (kind, body) of the given wire size to every group
// member reliably, returning the assigned sequence number. The body is the
// typed packet union; the multicast envelope (stream seq + inner kind) is
// stamped into its StreamSeq/StreamKind fields, so the fan-out packets
// carry everything inline — no boxing per message. On a closed sender
// nothing is sent and 0 is returned (sequence numbers start at 1, so 0 is
// unambiguous).
func (s *Sender) Multicast(kind string, size int, body netsim.PacketBody) uint64 {
	if s.closed {
		return 0
	}
	s.seq++
	body.StreamSeq = s.seq
	body.StreamKind = kind
	if s.win == nil {
		s.win = make(map[uint64]netsim.PacketBody)
	}
	s.win[s.seq] = body
	if len(s.win) > s.cfg.WindowSize {
		delete(s.win, s.winLo)
		s.winLo++
	}
	for _, dst := range s.cfg.Group {
		p := s.net.AllocPacket(s.cfg.Src, dst, size, kindData, nil)
		p.Body = body
		s.net.Send(p)
	}
	s.sent++
	s.armSPM()
	return s.seq
}

func (s *Sender) armSPM() {
	if s.spmPending || s.closed {
		return
	}
	s.spmPending = true
	s.loop.AfterTimer(s.cfg.SPMInterval, "pgm:spm", spmTimer, s, nil, 0)
}

// spmTimer emits the Source Path Message heartbeat while the repair window
// is open.
func spmTimer(a, _ any, _ uint64) {
	s := a.(*Sender)
	s.spmPending = false
	if s.seq == 0 || s.closed {
		return
	}
	for _, dst := range s.cfg.Group {
		p := s.net.AllocPacket(s.cfg.Src, dst, 32, kindSPM, nil)
		p.Body.StreamSeq = s.seq // advertised max sequence
		s.net.Send(p)
	}
	// Keep heartbeating while messages might still need repair.
	if len(s.win) > 0 {
		s.armSPM()
	}
}

// SetGroup replaces the receiver group — membership reconfiguration when a
// replica is re-homed. Future data, SPMs and repairs go to the new group;
// a joining member must be primed (Receiver.Prime) with NextSeq so it does
// not NAK history from before it joined. An empty group is allowed and
// silences the sender (a sole-survivor replica has no peers left): nothing
// is transmitted — not even SPM heartbeats, which would otherwise resurrect
// receiver stream state on departed or repaired members — until a later
// SetGroup restores receivers.
func (s *Sender) SetGroup(group []netsim.Addr) error {
	// Reuse the existing backing array: the input is copied in (callers
	// keep ownership of theirs), and Group() hands out copies.
	s.cfg.Group = append(s.cfg.Group[:0], group...)
	return nil
}

// NextSeq returns the sequence number the next Multicast call will use.
// New group members prime their receiver state with it.
func (s *Sender) NextSeq() uint64 { return s.seq + 1 }

// Group returns a copy of the current receiver group — the membership
// audits group reconfiguration (drain, crash) relies on.
func (s *Sender) Group() []netsim.Addr {
	return append([]netsim.Addr(nil), s.cfg.Group...)
}

// Closed reports whether the sender has been retired.
func (s *Sender) Closed() bool { return s.closed }

// Close retires the sender: no further data, repairs, or SPM heartbeats
// (the pending one, if armed, becomes a no-op). Teardown paths must call
// it — an abandoned sender would otherwise heartbeat forever (its window
// only drains by overflow) and resurrect receiver stream state that
// Receiver.Forget has already discarded.
func (s *Sender) Close() {
	s.closed = true
	s.win = nil
}

// Handle consumes NAKs addressed to this sender; it returns true when the
// packet was a multicast control packet for us.
func (s *Sender) Handle(pkt *netsim.Packet) bool {
	if pkt.Kind != kindNAK || pkt.Dst != s.cfg.Src {
		return false
	}
	nak, ok := pkt.Payload.(nakMsg)
	if !ok {
		return true
	}
	s.nakRecvd++
	for _, seq := range nak.Seqs {
		body, ok := s.win[seq]
		if !ok {
			continue // aged out of the window; receiver is unrecoverable here
		}
		s.retrans++
		p := s.net.AllocPacket(s.cfg.Src, pkt.Src, 64, kindData, nil)
		p.Body = body
		s.net.Send(p)
	}
	return true
}

// SenderStats reports sender-side counters.
type SenderStats struct {
	Sent, Retransmitted, NAKsReceived uint64
}

// Stats returns sender counters.
func (s *Sender) Stats() SenderStats {
	return SenderStats{Sent: s.sent, Retransmitted: s.retrans, NAKsReceived: s.nakRecvd}
}

// ReceiverConfig parameterizes a group member.
type ReceiverConfig struct {
	// Addr is this receiver's fabric address.
	Addr netsim.Addr
	// NAKDelay is the backoff before the first NAK for a detected gap,
	// absorbing in-flight reordering (default 1ms).
	NAKDelay sim.Time
	// NAKInterval is the retry period for unanswered NAKs (default 3ms).
	NAKInterval sim.Time
	// OnData receives message bodies in sequence order per source. kind is
	// the inner stream kind the sender multicast under.
	OnData func(src netsim.Addr, seq uint64, kind string, body netsim.PacketBody)
}

// holdRing is the receiver's holdback buffer: a seq-indexed ring over the
// window [base, base+len(buf)) where base is the next expected sequence.
// In-order traffic never touches a map; out-of-order arrivals land in
// their slot and the ring grows (power-of-two) only when a gap outlives
// the current window.
type holdRing struct {
	buf  []holdSlot
	base uint64 // seq of the logical first slot (== sourceState.next)
	held int
}

type holdSlot struct {
	present bool
	body    netsim.PacketBody
}

func (r *holdRing) slot(seq uint64) *holdSlot {
	return &r.buf[seq&uint64(len(r.buf)-1)]
}

func (r *holdRing) has(seq uint64) bool {
	if len(r.buf) == 0 || seq < r.base || seq >= r.base+uint64(len(r.buf)) {
		return false
	}
	return r.slot(seq).present
}

// put stores a body at seq (seq >= base), growing the ring when seq falls
// outside the current window.
func (r *holdRing) put(seq uint64, body netsim.PacketBody) {
	if need := seq - r.base + 1; len(r.buf) == 0 || need > uint64(len(r.buf)) {
		newLen := 16
		for uint64(newLen) < need {
			newLen <<= 1
		}
		old := r.buf
		oldBase := r.base
		r.buf = make([]holdSlot, newLen)
		for i := range old {
			s := old[i]
			if s.present {
				// Recover the slot's absolute seq from its index.
				seqOf := oldBase + ((uint64(i) - oldBase) & uint64(len(old)-1))
				*r.slot(seqOf) = s
			}
		}
	}
	s := r.slot(seq)
	if !s.present {
		r.held++
	}
	s.present = true
	s.body = body
}

// takeBase removes and returns the body at base, advancing the window.
func (r *holdRing) takeBase() (netsim.PacketBody, bool) {
	if len(r.buf) == 0 {
		return netsim.PacketBody{}, false
	}
	s := r.slot(r.base)
	if !s.present {
		return netsim.PacketBody{}, false
	}
	body := s.body
	*s = holdSlot{}
	r.base++
	r.held--
	return body, true
}

type sourceState struct {
	src   netsim.Addr     // the stream's source (NAK destination)
	next  uint64          // next expected seq
	hold  holdRing        // held-back out-of-order bodies, window base == next
	hiSeq uint64          // highest seq seen (>= next); gap scan upper bound
	naked map[uint64]bool // outstanding NAKs
	timer sim.Handle      // pending NAK burst (weak: stale once fired)
}

// Receiver is a reliable multicast group member. One receiver can track any
// number of sources.
type Receiver struct {
	net  *netsim.Network
	loop *sim.Loop
	cfg  ReceiverConfig
	srcs map[netsim.Addr]*sourceState

	delivered uint64
	naksSent  uint64
	dups      uint64
}

// NewReceiver creates a group member.
func NewReceiver(net *netsim.Network, loop *sim.Loop, cfg ReceiverConfig) (*Receiver, error) {
	if net == nil || loop == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrMulticast)
	}
	if cfg.Addr == "" || cfg.OnData == nil {
		return nil, fmt.Errorf("%w: receiver needs addr and OnData", ErrMulticast)
	}
	if cfg.NAKDelay <= 0 {
		cfg.NAKDelay = sim.Millisecond
	}
	if cfg.NAKInterval <= 0 {
		cfg.NAKInterval = 3 * sim.Millisecond
	}
	return &Receiver{
		net:  net,
		loop: loop,
		cfg:  cfg,
		srcs: make(map[netsim.Addr]*sourceState),
	}, nil
}

// Handle consumes multicast packets; returns true when the packet belonged
// to this layer.
func (r *Receiver) Handle(pkt *netsim.Packet) bool {
	switch pkt.Kind {
	case kindData:
		r.onData(pkt.Src, pkt.Body)
		return true
	case kindSPM:
		r.onSPM(pkt.Src, pkt.Body.StreamSeq)
		return true
	default:
		return false
	}
}

// Prime (re)initializes this receiver's per-source state to expect seq
// `next` from src, discarding any held-back or NAK state. It is how a
// member joins an in-progress stream (a re-homed replica joining the
// ingress and peer-proposal streams mid-sequence) without NAKing the
// stream's entire history.
func (r *Receiver) Prime(src netsim.Addr, next uint64) {
	if next == 0 {
		next = 1
	}
	if st, ok := r.srcs[src]; ok {
		r.loop.CancelHandle(st.timer)
	}
	st := &sourceState{src: src, next: next, naked: make(map[uint64]bool)}
	st.hold.base = next
	r.srcs[src] = st
}

// Forget drops this receiver's state for a source stream (the stream's
// guest was evicted). A later stream reusing the same source address starts
// fresh at seq 1.
func (r *Receiver) Forget(src netsim.Addr) {
	if st, ok := r.srcs[src]; ok {
		r.loop.CancelHandle(st.timer)
	}
	delete(r.srcs, src)
}

func (r *Receiver) state(src netsim.Addr) *sourceState {
	st, ok := r.srcs[src]
	if !ok {
		st = &sourceState{src: src, next: 1, naked: make(map[uint64]bool)}
		st.hold.base = 1
		r.srcs[src] = st
	}
	return st
}

func (r *Receiver) onData(src netsim.Addr, body netsim.PacketBody) {
	st := r.state(src)
	seq := body.StreamSeq
	if seq < st.next || st.hold.has(seq) {
		r.dups++
		return
	}
	if seq == st.next && st.hold.held == 0 {
		// In-order with nothing held back — the overwhelmingly common
		// case. Deliver straight through without touching the ring, so a
		// well-behaved stream never allocates a holdback window at all.
		st.next++
		st.hold.base = st.next
		if seq > st.hiSeq {
			st.hiSeq = seq
		}
		delete(st.naked, seq)
		r.delivered++
		r.cfg.OnData(src, body.StreamSeq, body.StreamKind, body)
		r.requestMissing(src, st)
		return
	}
	st.hold.put(seq, body)
	if seq > st.hiSeq {
		st.hiSeq = seq
	}
	delete(st.naked, seq)
	r.drain(src, st)
	// Gap: anything between next and the highest held-back seq is missing.
	r.requestMissing(src, st)
}

func (r *Receiver) onSPM(src netsim.Addr, maxSeq uint64) {
	st := r.state(src)
	if maxSeq >= st.next {
		// Mark everything up to MaxSeq as expected.
		changed := false
		for seq := st.next; seq <= maxSeq; seq++ {
			if !st.hold.has(seq) && !st.naked[seq] {
				st.naked[seq] = true
				changed = true
			}
		}
		if changed {
			r.armNAK(src, st, r.cfg.NAKDelay)
		}
	}
}

func (r *Receiver) drain(src netsim.Addr, st *sourceState) {
	for {
		body, ok := st.hold.takeBase()
		if !ok {
			return
		}
		st.next++
		r.delivered++
		r.cfg.OnData(src, body.StreamSeq, body.StreamKind, body)
	}
}

func (r *Receiver) requestMissing(src netsim.Addr, st *sourceState) {
	changed := false
	for seq := st.next; seq < st.hiSeq; seq++ {
		if !st.hold.has(seq) && !st.naked[seq] {
			st.naked[seq] = true
			changed = true
		}
	}
	if changed {
		r.armNAK(src, st, r.cfg.NAKDelay)
	}
}

// armNAK schedules a NAK burst after the given delay unless one is already
// pending. The delay absorbs reordering (first NAK) and paces retries.
func (r *Receiver) armNAK(src netsim.Addr, st *sourceState, delay sim.Time) {
	if st.timer.Pending() {
		return
	}
	st.timer = r.loop.AfterTimer(delay, "pgm:nak", nakTimer, r, st, 0).Handle()
}

// nakTimer fires a receiver's pending NAK burst for one source stream.
func nakTimer(a, b any, _ uint64) {
	r := a.(*Receiver)
	st := b.(*sourceState)
	st.timer = sim.Handle{}
	r.sendNAKs(st.src, st)
}

func (r *Receiver) sendNAKs(src netsim.Addr, st *sourceState) {
	if len(st.naked) == 0 {
		return
	}
	seqs := make([]uint64, 0, len(st.naked))
	for seq := range st.naked {
		if seq < st.next {
			delete(st.naked, seq)
			continue
		}
		seqs = append(seqs, seq)
	}
	if len(seqs) == 0 {
		return
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	r.naksSent++
	r.net.Send(r.net.AllocPacket(r.cfg.Addr, src, 40, kindNAK, nakMsg{Seqs: seqs}))
	// Re-arm: if the repair is lost too, NAK again.
	r.armNAK(src, st, r.cfg.NAKInterval)
}

// ReceiverStats reports receiver-side counters.
type ReceiverStats struct {
	Delivered, NAKsSent, Duplicates uint64
}

// Stats returns receiver counters.
func (r *Receiver) Stats() ReceiverStats {
	return ReceiverStats{Delivered: r.delivered, NAKsSent: r.naksSent, Duplicates: r.dups}
}
