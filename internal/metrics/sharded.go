package metrics

import "sort"

// Sharded metric families back the multi-core simulation: each shard
// goroutine mutates only its own cells (no locks, no contention, no
// cross-shard happens-before needed beyond the coordinator's barriers),
// and the registry merges the cells deterministically at snapshot time.
// Merged output is identical for every shard count: counters sum, and
// labeled children render in sorted-label order — first-use order would
// depend on how traffic interleaves across shards.

// shardCounterCell is one (shard, label) counter cell.
type shardCounterCell struct{ n uint64 }

// counterShardState is one shard's slice of a ShardedCounterVec.
type counterShardState struct {
	byLabel map[string]*shardCounterCell
}

// ShardedCounterVec is a counter family keyed by one label whose
// increments are per-shard and merged at snapshot.
type ShardedCounterVec struct {
	f      *family
	shards []*counterShardState
}

// NewShardedCounterVec registers a sharded counter family for the given
// shard count.
func (r *Registry) NewShardedCounterVec(name, help, label string, shards int) *ShardedCounterVec {
	if shards < 1 {
		panic("metrics: sharded vec needs >= 1 shard")
	}
	v := &ShardedCounterVec{f: r.register(name, help, KindCounter, nonEmptyLabel(name, label))}
	for i := 0; i < shards; i++ {
		v.shards = append(v.shards, &counterShardState{byLabel: make(map[string]*shardCounterCell)})
	}
	v.f.mergeSamples = v.merged
	return v
}

// Shard returns shard k's cell view; it must only be used from that
// shard's goroutine (or while the shards are parked at a barrier).
func (v *ShardedCounterVec) Shard(k int) ShardCounterVec {
	return ShardCounterVec{s: v.shards[k]}
}

// Total sums the counter for a label value across shards (tests,
// barrier-time reads).
func (v *ShardedCounterVec) Total(labelValue string) uint64 {
	var total uint64
	for _, s := range v.shards {
		if c, ok := s.byLabel[labelValue]; ok {
			total += c.n
		}
	}
	return total
}

// merged renders sum-per-label samples in sorted-label order.
func (v *ShardedCounterVec) merged() []Sample {
	sums := make(map[string]uint64)
	for _, s := range v.shards {
		for label, c := range s.byLabel {
			sums[label] += c.n
		}
	}
	labels := make([]string, 0, len(sums))
	for label := range sums {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make([]Sample, 0, len(labels))
	for _, label := range labels {
		out = append(out, Sample{LabelValue: label, Counter: sums[label]})
	}
	return out
}

// ShardCounterVec is one shard's view of a ShardedCounterVec. The zero
// value is invalid (Valid reports false) — how detached instrumentation
// is represented without a nil-able pointer on the hot path.
type ShardCounterVec struct{ s *counterShardState }

// Valid reports whether the view is bound to a registered family.
func (v ShardCounterVec) Valid() bool { return v.s != nil }

// With returns the shard-local child counter for the label value,
// interning it on first use.
func (v ShardCounterVec) With(labelValue string) ShardCounter {
	c, ok := v.s.byLabel[labelValue]
	if !ok {
		c = &shardCounterCell{}
		v.s.byLabel[labelValue] = c
	}
	return ShardCounter{c: c}
}

// ShardCounter is one shard-local counter cell.
type ShardCounter struct{ c *shardCounterCell }

// Inc adds one.
func (c ShardCounter) Inc() { c.c.n++ }

// Add adds n.
func (c ShardCounter) Add(n uint64) { c.c.n += n }

// ShardedHistogram is a scalar histogram whose observations are per-shard
// and merged at snapshot: every shard holds a full bucket array with the
// family's fixed bounds, and the merged sample is the element-wise sum.
type ShardedHistogram struct {
	f      *family
	bounds []int64
	cells  []*child
}

// NewShardedHistogram registers a sharded scalar histogram for the given
// shard count.
func (r *Registry) NewShardedHistogram(name, help string, bounds []int64, shards int) *ShardedHistogram {
	if shards < 1 {
		panic("metrics: sharded histogram needs >= 1 shard")
	}
	h := &ShardedHistogram{
		f:      r.register(name, help, KindHistogram, ""),
		bounds: validateBounds(name, bounds),
	}
	for i := 0; i < shards; i++ {
		c := &child{bounds: h.bounds, counts: make([]uint64, len(h.bounds)+1)}
		h.cells = append(h.cells, c)
	}
	h.f.mergeSamples = h.merged
	return h
}

// Shard returns shard k's cell as an ordinary Histogram handle: Observe on
// it is a plain shard-local update, so existing hot-path hooks (e.g. the
// device model's LatencyHist) take it without knowing about sharding.
func (h *ShardedHistogram) Shard(k int) Histogram { return Histogram{c: h.cells[k]} }

// Merged returns the cross-shard histogram state as a Histogram over a
// freshly summed cell (barrier-time reads; not a live view).
func (h *ShardedHistogram) Merged() Histogram {
	m := &child{bounds: h.bounds, counts: make([]uint64, len(h.bounds)+1)}
	for _, c := range h.cells {
		for i, n := range c.counts {
			m.counts[i] += n
		}
		m.sum += c.sum
		m.count += c.count
	}
	return Histogram{c: m}
}

// merged renders the single summed sample.
func (h *ShardedHistogram) merged() []Sample {
	m := h.Merged().c
	return []Sample{{
		Bounds: m.bounds,
		Counts: append([]uint64(nil), m.counts...),
		Sum:    m.sum,
		Count:  m.count,
	}}
}
