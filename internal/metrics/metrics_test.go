package metrics

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "ops")
	g := r.NewGauge("depth", "queue depth")
	c.Inc()
	c.Add(4)
	g.Set(2.5)
	g.Add(-0.5)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	live := 0
	r.NewGaugeFunc("live", "live things", func() float64 { return float64(live) })
	live = 7
	fams := r.Snapshot()
	if got := fams[0].Samples[0].Gauge; got != 7 {
		t.Fatalf("gauge func snapshot = %v, want 7", got)
	}
	live = 9
	if got := r.Snapshot()[0].Samples[0].Gauge; got != 9 {
		t.Fatalf("gauge func re-snapshot = %v, want 9", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 11, 99, 100, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 1+5+10+11+99+100+500+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	s := r.Snapshot()[0].Samples[0]
	// Bounds inclusive: <=10 catches {1,5,10}; <=100 {11,99,100}; <=1000 {500}; +Inf {5000}.
	want := []uint64{3, 3, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 upper bound = %d, want 1000 (last finite bound)", q)
	}
	if q := (Histogram{c: &child{}}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

func TestVecChildrenInFirstUseOrder(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("pkts_total", "packets", "kind")
	v.With("b").Inc()
	v.With("a").Add(2)
	v.With("b").Inc()
	s, ok := r.Lookup("pkts_total")
	if !ok || len(s) != 2 {
		t.Fatalf("lookup: ok=%v samples=%v", ok, s)
	}
	if s[0].LabelValue != "b" || s[0].Counter != 2 {
		t.Fatalf("first child = %+v, want b=2 (first-use order)", s[0])
	}
	if s[1].LabelValue != "a" || s[1].Counter != 2 {
		t.Fatalf("second child = %+v, want a=2", s[1])
	}
}

func TestSnapshotRegistrationOrderAndDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.NewCounter("z_first", "registered first")
		hv := r.NewHistogramVec("h", "hist", "phase", []int64{1, 2})
		hv.With("quiesce").Observe(1)
		hv.With("pause").Observe(3)
		gv := r.NewGaugeVec("g", "gauge", "host")
		gv.With("host1").Set(1)
		gv.With("host0").Set(2)
		return r
	}
	a, b := build(), build()
	if a.Prom() != b.Prom() {
		t.Fatalf("prom render not deterministic:\n%s\nvs\n%s", a.Prom(), b.Prom())
	}
	if a.JSON() != b.JSON() {
		t.Fatalf("json render not deterministic")
	}
	prom := a.Prom()
	// Registration order: z_first (despite sorting last alphabetically)
	// renders before h and g.
	zi, hi, gi := strings.Index(prom, "z_first"), strings.Index(prom, "# TYPE h "), strings.Index(prom, "# TYPE g ")
	if !(zi < hi && hi < gi) {
		t.Fatalf("families not in registration order: z@%d h@%d g@%d\n%s", zi, hi, gi, prom)
	}
	// Child order is first-use, not sorted.
	if q, p := strings.Index(prom, `phase="quiesce"`), strings.Index(prom, `phase="pause"`); q > p {
		t.Fatalf("vec children not in first-use order:\n%s", prom)
	}
}

func TestPromHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	prom := r.Prom()
	for _, want := range []string{
		`lat_bucket{le="10"} 1`,
		`lat_bucket{le="100"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 555",
		"lat_count 3",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prom page missing %q:\n%s", want, prom)
		}
	}
}

func TestJSONShape(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c", "counts").Add(3)
	g := r.NewGaugeVec("g", "", "host")
	g.With("h0").Set(1.5)
	doc := r.JSON()
	for _, want := range []string{
		`"name": "c", "kind": "counter"`,
		`"value": 3`,
		`"labelKey": "host"`,
		`"label": "h0", "value": 1.5`,
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("json missing %q:\n%s", want, doc)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("dup", "")
	r.NewCounter("dup", "")
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100, 2, 5)
	want := []int64{100, 200, 400, 800, 1600}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	// A factor close to 1 must still produce strictly increasing bounds.
	b = ExpBuckets(1, 1.01, 10)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("h", "", "k", []int64{10})
	v.With("a").Observe(5)
	v.With("a").Observe(50)
	if c := v.With("a").Count(); c != 2 {
		t.Fatalf("count = %d, want 2", c)
	}
	s, _ := r.Lookup("h")
	if s[0].Counts[0] != 1 || s[0].Counts[1] != 1 {
		t.Fatalf("counts = %v", s[0].Counts)
	}
}
