// Package metrics is the deterministic, allocation-conscious telemetry
// registry behind the observability plane. It is a leaf package (std-lib
// only, like sim): the data plane (vmm, netsim, core) and the control
// plane both feed it, and internal/obsrv publishes it over HTTP.
//
// Determinism is the design constraint (the op-log digests are the repo's
// regression oracle, and metrics snapshots join them): there is no wall
// clock anywhere, no map-order iteration — families snapshot in
// registration order, labeled children in first-use order — and histogram
// buckets are fixed at construction. Two runs with the same seed render
// byte-identical snapshots.
//
// The hot-path surface allocates nothing: Counter.Inc/Add and
// Gauge.Set/Add are plain field updates, Histogram.Observe is a linear
// bucket scan over a fixed bound slice, and Vec.With interns its child on
// first use so steady-state lookups are one map read.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates metric families.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "?"
	}
}

// family is one registered metric family. Scalar families have exactly one
// child with an empty label value; labeled families (vecs) intern children
// in first-use order.
type family struct {
	name  string
	help  string
	kind  Kind
	label string // label key for vecs; "" for scalars

	children []*child
	byLabel  map[string]*child

	// mergeSamples, when set, renders this family's samples by merging
	// per-shard cells (sharded.go) instead of walking children. Merged
	// output is sorted by label value — a partition-independent order —
	// rather than first-use order, which would vary with the shard count.
	mergeSamples func() []Sample
}

// child is one sample series of a family: a scalar counter/gauge value, a
// deferred gauge function, or a histogram's bucket state.
type child struct {
	labelValue string

	counter uint64
	gauge   float64
	gaugeFn func() float64

	// Histogram state: bounds are the fixed inclusive upper bounds (the
	// implicit +Inf bucket is counts[len(bounds)]); sum accumulates observed
	// values (int64 — observations are sim durations or counts, never wall
	// time).
	bounds []int64
	counts []uint64
	sum    int64
	count  uint64
}

// Registry holds metric families in registration order.
type Registry struct {
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind Kind, label string) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label}
	if label != "" {
		f.byLabel = make(map[string]*child)
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func (f *family) scalarChild() *child {
	if len(f.children) == 0 {
		f.children = append(f.children, &child{})
	}
	return f.children[0]
}

// with interns the child for a label value, in first-use order. First-use
// order is deterministic per seed: the simulation drives every metric
// mutation, so the same run touches labels in the same order.
func (f *family) with(labelValue string) *child {
	if c, ok := f.byLabel[labelValue]; ok {
		return c
	}
	c := &child{labelValue: labelValue}
	f.byLabel[labelValue] = c
	f.children = append(f.children, c)
	return c
}

// Counter is a monotonically increasing uint64.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.c.counter++ }

// Add adds n.
func (c Counter) Add(n uint64) { c.c.counter += n }

// Value reads the current count.
func (c Counter) Value() uint64 { return c.c.counter }

// Gauge is a settable float64.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v float64) { g.c.gauge = v }

// Add adds d (negative to subtract).
func (g Gauge) Add(d float64) { g.c.gauge += d }

// Value reads the current value.
func (g Gauge) Value() float64 {
	if g.c.gaugeFn != nil {
		return g.c.gaugeFn()
	}
	return g.c.gauge
}

// Histogram is a fixed-bucket distribution: Observe(v) increments the
// first bucket whose upper bound is >= v (or the implicit +Inf bucket).
type Histogram struct{ c *child }

// Observe records one value.
func (h Histogram) Observe(v int64) {
	c := h.c
	// Linear scan: bucket counts are small (tens) and the scan beats the
	// branch-misses of a binary search at that size.
	i := 0
	for i < len(c.bounds) && v > c.bounds[i] {
		i++
	}
	c.counts[i]++
	c.sum += v
	c.count++
}

// Count reports total observations.
func (h Histogram) Count() uint64 { return h.c.count }

// Sum reports the sum of observed values.
func (h Histogram) Sum() int64 { return h.c.sum }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from the
// bucket counts: the upper bound of the bucket the quantile falls in, or
// the last finite bound when it lands in the +Inf bucket. Zero when empty.
func (h Histogram) Quantile(q float64) int64 {
	c := h.c
	if c.count == 0 {
		return 0
	}
	rank := uint64(q * float64(c.count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range c.counts {
		seen += n
		if seen >= rank {
			if i < len(c.bounds) {
				return c.bounds[i]
			}
			break
		}
	}
	if len(c.bounds) == 0 {
		return 0
	}
	return c.bounds[len(c.bounds)-1]
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the child counter for the label value, interning it on
// first use.
func (v CounterVec) With(labelValue string) Counter { return Counter{v.f.with(labelValue)} }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label value.
func (v GaugeVec) With(labelValue string) Gauge { return Gauge{v.f.with(labelValue)} }

// HistogramVec is a histogram family keyed by one label; every child
// shares the family's fixed bounds.
type HistogramVec struct {
	f      *family
	bounds []int64
}

// With returns the child histogram for the label value.
func (v HistogramVec) With(labelValue string) Histogram {
	c := v.f.with(labelValue)
	if c.counts == nil {
		c.bounds = v.bounds
		c.counts = make([]uint64, len(v.bounds)+1)
	}
	return Histogram{c}
}

// NewCounter registers a scalar counter.
func (r *Registry) NewCounter(name, help string) Counter {
	return Counter{r.register(name, help, KindCounter, "").scalarChild()}
}

// NewGauge registers a scalar gauge.
func (r *Registry) NewGauge(name, help string) Gauge {
	return Gauge{r.register(name, help, KindGauge, "").scalarChild()}
}

// NewGaugeFunc registers a gauge evaluated at snapshot time — how live
// state (a disk backlog, an occupancy count) exports without a write on
// every change. fn runs on the snapshotting goroutine: keep it a pure read.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, "").scalarChild().gaugeFn = fn
}

// NewHistogram registers a scalar histogram over fixed inclusive upper
// bounds, which must be strictly increasing.
func (r *Registry) NewHistogram(name, help string, bounds []int64) Histogram {
	c := r.register(name, help, KindHistogram, "").scalarChild()
	c.bounds = validateBounds(name, bounds)
	c.counts = make([]uint64, len(c.bounds)+1)
	return Histogram{c}
}

// NewCounterVec registers a counter family keyed by one label.
func (r *Registry) NewCounterVec(name, help, label string) CounterVec {
	return CounterVec{r.register(name, help, KindCounter, nonEmptyLabel(name, label))}
}

// NewGaugeVec registers a gauge family keyed by one label.
func (r *Registry) NewGaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.register(name, help, KindGauge, nonEmptyLabel(name, label))}
}

// NewGaugeFuncVec registers a gauge family whose children are deferred
// functions; add children with Add.
type GaugeFuncVec struct{ f *family }

// NewGaugeFuncVec registers a deferred-gauge family keyed by one label.
func (r *Registry) NewGaugeFuncVec(name, help, label string) GaugeFuncVec {
	return GaugeFuncVec{r.register(name, help, KindGauge, nonEmptyLabel(name, label))}
}

// Add registers the child gauge function for a label value.
func (v GaugeFuncVec) Add(labelValue string, fn func() float64) {
	v.f.with(labelValue).gaugeFn = fn
}

// NewHistogramVec registers a histogram family keyed by one label, every
// child sharing the fixed bounds.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []int64) HistogramVec {
	f := r.register(name, help, KindHistogram, nonEmptyLabel(name, label))
	return HistogramVec{f: f, bounds: validateBounds(name, bounds)}
}

func nonEmptyLabel(name, label string) string {
	if label == "" {
		panic(fmt.Sprintf("metrics: vec %q needs a label key", name))
	}
	return label
}

func validateBounds(name string, bounds []int64) []int64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	return append([]int64(nil), bounds...)
}

// ExpBuckets returns n strictly increasing bounds starting at start,
// multiplying by factor (> 1) — the usual latency ladder.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%d, %v, %d)", start, factor, n))
	}
	out := make([]int64, n)
	v := float64(start)
	for i := range out {
		b := int64(v)
		if i > 0 && b <= out[i-1] {
			b = out[i-1] + 1
		}
		out[i] = b
		v *= factor
	}
	return out
}

// Sample is one rendered series of a snapshot.
type Sample struct {
	// LabelValue is empty for scalar families.
	LabelValue string `json:"label,omitempty"`
	// Counter/gauge value (Kind decides which field is meaningful).
	Counter uint64  `json:"counter,omitempty"`
	Gauge   float64 `json:"gauge,omitempty"`
	// Histogram state.
	Bounds []int64  `json:"bounds,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
	Sum    int64    `json:"sum,omitempty"`
	Count  uint64   `json:"count,omitempty"`
}

// Family is one rendered metric family of a snapshot, in registration
// order.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Kind    string   `json:"kind"`
	Label   string   `json:"labelKey,omitempty"`
	Samples []Sample `json:"samples"`
}

// Snapshot renders every family in registration order, children in
// first-use order, evaluating gauge functions. The result aliases nothing
// mutable — it is safe to hand to another goroutine.
func (r *Registry) Snapshot() []Family {
	out := make([]Family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.snapshot())
	}
	return out
}

// snapshot renders one family, evaluating gauge functions.
func (f *family) snapshot() Family {
	fam := Family{Name: f.name, Help: f.help, Kind: f.kind.String(), Label: f.label}
	if f.mergeSamples != nil {
		fam.Samples = f.mergeSamples()
		return fam
	}
	for _, c := range f.children {
		s := Sample{LabelValue: c.labelValue}
		switch f.kind {
		case KindCounter:
			s.Counter = c.counter
		case KindGauge:
			if c.gaugeFn != nil {
				s.Gauge = c.gaugeFn()
			} else {
				s.Gauge = c.gauge
			}
		case KindHistogram:
			s.Bounds = c.bounds
			s.Counts = append([]uint64(nil), c.counts...)
			s.Sum = c.sum
			s.Count = c.count
		}
		fam.Samples = append(fam.Samples, s)
	}
	return fam
}

// WriteProm renders the registry in the Prometheus text exposition format,
// deterministically (registration order, first-use child order).
func (r *Registry) WriteProm(b *strings.Builder) {
	for _, fam := range r.Snapshot() {
		if fam.Help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", fam.Name, fam.Help)
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", fam.Name, fam.Kind)
		for _, s := range fam.Samples {
			switch fam.Kind {
			case "counter":
				fmt.Fprintf(b, "%s%s %d\n", fam.Name, promLabels(fam.Label, s.LabelValue), s.Counter)
			case "gauge":
				fmt.Fprintf(b, "%s%s %g\n", fam.Name, promLabels(fam.Label, s.LabelValue), s.Gauge)
			case "histogram":
				cum := uint64(0)
				for i, n := range s.Counts {
					cum += n
					le := "+Inf"
					if i < len(s.Bounds) {
						le = fmt.Sprintf("%d", s.Bounds[i])
					}
					fmt.Fprintf(b, "%s_bucket%s %d\n", fam.Name, promLabelsLe(fam.Label, s.LabelValue, le), cum)
				}
				fmt.Fprintf(b, "%s_sum%s %d\n", fam.Name, promLabels(fam.Label, s.LabelValue), s.Sum)
				fmt.Fprintf(b, "%s_count%s %d\n", fam.Name, promLabels(fam.Label, s.LabelValue), s.Count)
			}
		}
	}
}

// Prom renders the registry as a Prometheus text page.
func (r *Registry) Prom() string {
	var b strings.Builder
	r.WriteProm(&b)
	return b.String()
}

func promLabels(key, value string) string {
	if key == "" {
		return ""
	}
	return `{` + key + `="` + value + `"}`
}

func promLabelsLe(key, value, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return `{` + key + `="` + value + `",le="` + le + `"}`
}

// WriteJSON renders the registry as canonical JSON: one object per family
// in registration order, children in first-use order, fields in a fixed
// order, no floating-point formatting surprises (%g like Prometheus). Two
// identical runs render byte-identical documents — the churn -metrics-out
// golden tests pin exactly this form.
func (r *Registry) WriteJSON(b *strings.Builder) {
	b.WriteString("{\n  \"families\": [\n")
	fams := r.Snapshot()
	for i, fam := range fams {
		fmt.Fprintf(b, "    {\"name\": %q, \"kind\": %q", fam.Name, fam.Kind)
		if fam.Label != "" {
			fmt.Fprintf(b, ", \"labelKey\": %q", fam.Label)
		}
		b.WriteString(", \"samples\": [")
		for j, s := range fam.Samples {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString("{")
			if s.LabelValue != "" {
				fmt.Fprintf(b, "\"label\": %q, ", s.LabelValue)
			}
			switch fam.Kind {
			case "counter":
				fmt.Fprintf(b, "\"value\": %d", s.Counter)
			case "gauge":
				fmt.Fprintf(b, "\"value\": %g", s.Gauge)
			case "histogram":
				b.WriteString("\"buckets\": [")
				for k, n := range s.Counts {
					if k > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(b, "%d", n)
				}
				fmt.Fprintf(b, "], \"sum\": %d, \"count\": %d", s.Sum, s.Count)
			}
			b.WriteString("}")
		}
		b.WriteString("]}")
		if i < len(fams)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  ]\n}\n")
}

// JSON renders the registry as a canonical JSON document.
func (r *Registry) JSON() string {
	var b strings.Builder
	r.WriteJSON(&b)
	return b.String()
}

// Lookup returns the family's samples by metric name (tests, admission
// reporting). The boolean reports whether the family exists.
func (r *Registry) Lookup(name string) ([]Sample, bool) {
	f, ok := r.byName[name]
	if !ok {
		return nil, false
	}
	return f.snapshot().Samples, true
}

// Names returns every registered family name, sorted (diagnostics; the
// catalog in README is the human index).
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
