package guest

import (
	"testing"
	"testing/quick"

	"stopwatch/internal/vtime"
)

// Property: a guest's observable behaviour is invariant under how its
// execution is chunked. This is the exec engine's licence to rescale and
// pause at arbitrary real times: splitting the same instruction stream into
// different Step() budgets must not change outputs, I/O actions, or
// instruction counts.
func TestChunkingInvarianceProperty(t *testing.T) {
	type result struct {
		digest  uint64
		outputs int
		instr   int64
		ios     int
	}
	run := func(chunks []int64) result {
		app := &scriptApp{}
		app.boot = func(c Ctx) {
			c.Compute(1000)
			c.Send("d", 100, "first")
			c.Compute(2500)
			c.DiskRead("blk", 512)
			c.Compute(700)
			c.Send("d", 50, "second")
		}
		clk := &fakeClock{}
		vm, err := New("g", app, clk)
		if err != nil {
			t.Fatal(err)
		}
		vm.Boot()
		var r result
		var instr int64
		i := 0
		for vm.Busy() {
			budget := chunks[i%len(chunks)]
			i++
			if budget <= 0 {
				budget = 1
			}
			res := vm.Step(budget)
			instr += res.Executed
			clk.now = vtime.Virtual(instr)
			if res.IO != nil {
				r.ios++
				if !res.IO.IsSend() {
					// Disk completion arrives "later": deliver immediately
					// after a fixed extra chunk so all runs agree.
					vm.Step(100)
					instr += 100
					clk.now = vtime.Virtual(instr)
					vm.DeliverDisk(DiskDone{Tag: res.IO.Tag, Bytes: res.IO.Bytes})
				}
			}
			if i > 100000 {
				t.Fatal("runaway")
			}
		}
		r.digest = vm.OutputDigest()
		r.outputs = vm.OutputCount()
		r.instr = vm.Stats().Branches - vm.Stats().IdleBranches
		return r
	}
	ref := run([]int64{1_000_000}) // one big chunk per step
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		chunks := make([]int64, 0, len(raw))
		for _, v := range raw {
			chunks = append(chunks, int64(v%1500)+1)
		}
		got := run(chunks)
		return got == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
	if ref.outputs != 2 || ref.ios != 3 {
		t.Fatalf("reference run wrong: %+v", ref)
	}
}
