// Package guest models a uniprocessor guest VM as StopWatch needs one: a
// deterministic, branch-counted program whose only clocks are the ones the
// VMM chooses to expose.
//
// A guest is an App (event-driven workload) plus an op queue. App callbacks
// enqueue work — compute, disk I/O, packet sends, virtual timers — and the
// hosting VMM drains the queue, counting branches. Everything the guest can
// observe (interrupt injection points, clock reads, data arrival) is a
// deterministic function of executed instruction count and the virtual
// times of injected interrupts. Replicas fed identical interrupt schedules
// therefore produce identical outputs, which Sec. VI's egress median relies
// on; the output log digest makes divergence detectable.
package guest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"

	"stopwatch/internal/netsim"
	"stopwatch/internal/vtime"
)

// ErrGuest reports invalid guest construction or use.
var ErrGuest = errors.New("guest: invalid")

// ClockView is the guest's window onto time, implemented by the hosting
// VMM. Under StopWatch all three sources derive from virtual time; under
// the baseline VMM they derive from host real time.
type ClockView interface {
	// Now returns the guest-visible clock (virtual time under StopWatch).
	Now() vtime.Virtual
	// TSC returns the guest-visible time stamp counter.
	TSC() uint64
	// PITCounter returns the guest-visible PIT countdown register.
	PITCounter() uint16
}

// Payload is an inbound network payload as the guest sees it.
type Payload struct {
	Src  netsim.Addr
	Size int
	Data any
}

// DiskDone reports a completed disk request to the guest.
type DiskDone struct {
	Tag   string
	Bytes int
	Write bool
}

// Ctx is the guest-side API available inside App callbacks. Operations are
// queued and consumed in order by the VMM's execution engine.
type Ctx interface {
	// Compute queues n branches of computation.
	Compute(n int64)
	// Send queues an outbound packet (causes a VM exit when executed).
	Send(dst netsim.Addr, size int, data any)
	// DiskRead queues an asynchronous disk read; completion arrives via
	// OnDiskDone.
	DiskRead(tag string, bytes int)
	// DiskWrite queues an asynchronous disk write; completion arrives via
	// OnDiskDone.
	DiskWrite(tag string, bytes int)
	// SetTimer requests an OnTimer callback once the guest's clock passes
	// now+d. Timer delivery is interrupt-like: it happens at a VM exit.
	SetTimer(d vtime.Virtual, tag string)
	// Clock exposes the guest-visible clocks.
	Clock() ClockView
	// ID returns the guest's identity (same across replicas).
	ID() string
}

// App is a deterministic guest workload. Callbacks run "inside" the guest:
// any instructions a handler consumes must be queued via ctx.Compute, and
// all decisions must derive from guest-visible state only.
type App interface {
	// Boot runs once when the VM starts.
	Boot(ctx Ctx)
	// OnPacket runs when a network interrupt delivers a packet.
	OnPacket(ctx Ctx, p Payload)
	// OnDiskDone runs when a disk interrupt reports completion.
	OnDiskDone(ctx Ctx, d DiskDone)
	// OnTimer runs when a timer set via SetTimer expires.
	OnTimer(ctx Ctx, tag string)
}

// Snapshotter is an optional App extension: apps that implement it can be
// checkpointed, letting the VMM truncate determinism journals and restore
// replacement replicas from the last checkpoint instead of replaying the
// guest's whole lifetime. The encoding is the app's own; it only has to be
// a deterministic function of app state (identical across replicas at
// identical instruction counts) and round-trip through RestoreSnapshot.
type Snapshotter interface {
	// SnapshotAppend appends an encoding of the app's current state to buf
	// and returns the extended slice (append-style, so callers can pool the
	// buffer across checkpoints).
	SnapshotAppend(buf []byte) []byte
	// RestoreSnapshot rebuilds the app's state from an encoding produced by
	// SnapshotAppend on a replica at the same instruction count.
	RestoreSnapshot(data []byte) error
}

// opKind enumerates queued operations.
type opKind int

const (
	opCompute opKind = iota + 1
	opSend
	opDisk
)

type op struct {
	kind     opKind
	branches int64 // opCompute: remaining branches
	// opSend:
	dst  netsim.Addr
	size int
	data any
	// opDisk:
	tag   string
	bytes int
	write bool
}

// IOAction is an I/O side effect surfaced to the VMM at a VM exit.
type IOAction struct {
	// Send fields (Dst != "" means a send).
	Dst  netsim.Addr
	Size int
	Data any
	Seq  uint64 // per-guest deterministic output sequence (sends only)
	// Disk fields (Tag != "" means a disk request).
	Tag   string
	Bytes int
	Write bool
}

// IsSend reports whether the action is an outbound packet.
func (a IOAction) IsSend() bool { return a.Dst != "" }

// StepResult reports what happened during one execution step.
type StepResult struct {
	// Executed is the number of branches consumed.
	Executed int64
	// IO is non-nil when an I/O op caused the step to end (a VM exit).
	IO *IOAction
	// Idle is true when the op queue was empty and the guest executed its
	// idle loop for the whole step.
	Idle bool
}

// Stats counts guest-observable events.
type Stats struct {
	Branches        int64
	IdleBranches    int64
	PacketsReceived int64
	PacketsSent     int64
	DiskRequests    int64
	DiskInterrupts  int64
	NetInterrupts   int64
	TimerInterrupts int64
	TimerCallbacks  int64
}

// pendingTimer is an armed guest timer.
type pendingTimer struct {
	due vtime.Virtual
	tag string
}

// VM is one replica's logical guest state. All replicas of a guest hold
// identical VMs fed identical interrupt schedules.
type VM struct {
	id    string
	app   App
	clock ClockView

	ops     []op
	timers  []pendingTimer
	sendSeq uint64

	stats  Stats
	outLog *OutputLog

	booted bool
}

// New creates a guest VM around the app. The clock view is provided by the
// hosting VMM.
func New(id string, app App, clock ClockView) (*VM, error) {
	if id == "" || app == nil || clock == nil {
		return nil, fmt.Errorf("%w: need id, app and clock", ErrGuest)
	}
	return &VM{id: id, app: app, clock: clock, outLog: newOutputLog()}, nil
}

// ID returns the guest identity.
func (vm *VM) ID() string { return vm.id }

// App returns the hosted workload instance.
func (vm *VM) App() App { return vm.app }

// Stats returns a copy of the guest counters.
func (vm *VM) Stats() Stats { return vm.stats }

// OutputDigest returns the FNV-64 digest of the output log; identical
// across correct replicas.
func (vm *VM) OutputDigest() uint64 { return vm.outLog.Digest() }

// OutputLog exposes the output log (prefix-digest lockstep checks).
func (vm *VM) OutputLog() *OutputLog { return vm.outLog }

// OutputCount returns the number of logged outputs.
func (vm *VM) OutputCount() int { return vm.outLog.Len() }

// Boot invokes the app's Boot callback (once).
func (vm *VM) Boot() {
	if vm.booted {
		return
	}
	vm.booted = true
	vm.app.Boot(vmCtx{vm})
}

// Busy reports whether the guest has queued work (vs idle-spinning).
func (vm *VM) Busy() bool { return len(vm.ops) > 0 }

// Step executes up to max branches. It returns early when an I/O op causes
// a VM exit. With an empty queue the guest spins its idle loop, consuming
// the full budget.
func (vm *VM) Step(max int64) StepResult {
	if max <= 0 {
		return StepResult{}
	}
	var executed int64
	for executed < max {
		if len(vm.ops) == 0 {
			// Idle loop: burn the remaining budget.
			idle := max - executed
			vm.stats.Branches += idle
			vm.stats.IdleBranches += idle
			return StepResult{Executed: max, Idle: true}
		}
		cur := &vm.ops[0]
		switch cur.kind {
		case opCompute:
			remaining := max - executed
			if cur.branches <= remaining {
				executed += cur.branches
				vm.stats.Branches += cur.branches
				vm.ops = vm.ops[1:]
			} else {
				cur.branches -= remaining
				vm.stats.Branches += remaining
				executed = max
			}
		case opSend:
			vm.sendSeq++
			act := &IOAction{Dst: cur.dst, Size: cur.size, Data: cur.data, Seq: vm.sendSeq}
			vm.stats.PacketsSent++
			vm.outLog.Append(vm.sendSeq, cur.dst, cur.size, cur.data)
			vm.ops = vm.ops[1:]
			// The send itself costs one branch (I/O port write).
			executed++
			vm.stats.Branches++
			return StepResult{Executed: executed, IO: act}
		case opDisk:
			act := &IOAction{Tag: cur.tag, Bytes: cur.bytes, Write: cur.write}
			vm.stats.DiskRequests++
			vm.ops = vm.ops[1:]
			executed++
			vm.stats.Branches++
			return StepResult{Executed: executed, IO: act}
		default:
			// Unreachable by construction; drop the malformed op.
			vm.ops = vm.ops[1:]
		}
	}
	return StepResult{Executed: executed}
}

// BranchesToNextIO returns the compute branches queued ahead of the next
// I/O op, and whether an I/O op is queued at all. The VMM uses it to size
// execution chunks.
func (vm *VM) BranchesToNextIO() (int64, bool) {
	var n int64
	for _, o := range vm.ops {
		switch o.kind {
		case opCompute:
			n += o.branches
		default:
			return n, true
		}
	}
	return n, false
}

// DeliverPacket injects a network interrupt: the data is copied in and the
// app handler runs. Must be called at a VM exit.
func (vm *VM) DeliverPacket(p Payload) {
	vm.stats.NetInterrupts++
	vm.stats.PacketsReceived++
	vm.app.OnPacket(vmCtx{vm}, p)
}

// DeliverDisk injects a disk-completion interrupt.
func (vm *VM) DeliverDisk(d DiskDone) {
	vm.stats.DiskInterrupts++
	vm.app.OnDiskDone(vmCtx{vm}, d)
}

// DeliverTimerTicks accounts PIT timer interrupts (kernel tick handling)
// and fires any app timers that are due at the guest clock.
func (vm *VM) DeliverTimerTicks(n int) {
	vm.stats.TimerInterrupts += int64(n)
	vm.fireDueTimers()
}

// fireDueTimers runs app timer callbacks due at the current guest clock.
func (vm *VM) fireDueTimers() {
	now := vm.clock.Now()
	kept := vm.timers[:0]
	var due []pendingTimer
	for _, t := range vm.timers {
		if t.due <= now {
			due = append(due, t)
		} else {
			kept = append(kept, t)
		}
	}
	vm.timers = kept
	for _, t := range due {
		vm.stats.TimerCallbacks++
		vm.app.OnTimer(vmCtx{vm}, t.tag)
	}
}

// NextTimerDue returns the earliest armed app-timer deadline, if any.
func (vm *VM) NextTimerDue() (vtime.Virtual, bool) {
	var best vtime.Virtual
	found := false
	for _, t := range vm.timers {
		if !found || t.due < best {
			best = t.due
			found = true
		}
	}
	return best, found
}

// vmCtx implements Ctx.
type vmCtx struct{ vm *VM }

var _ Ctx = vmCtx{}

func (c vmCtx) Compute(n int64) {
	if n <= 0 {
		return
	}
	// Coalesce with a trailing compute op to keep the queue small.
	if len(c.vm.ops) > 0 {
		last := &c.vm.ops[len(c.vm.ops)-1]
		if last.kind == opCompute {
			last.branches += n
			return
		}
	}
	c.vm.ops = append(c.vm.ops, op{kind: opCompute, branches: n})
}

func (c vmCtx) Send(dst netsim.Addr, size int, data any) {
	if dst == "" || size <= 0 {
		return
	}
	c.vm.ops = append(c.vm.ops, op{kind: opSend, dst: dst, size: size, data: data})
}

func (c vmCtx) DiskRead(tag string, bytes int) {
	if bytes <= 0 {
		return
	}
	c.vm.ops = append(c.vm.ops, op{kind: opDisk, tag: tag, bytes: bytes})
}

func (c vmCtx) DiskWrite(tag string, bytes int) {
	if bytes <= 0 {
		return
	}
	c.vm.ops = append(c.vm.ops, op{kind: opDisk, tag: tag, bytes: bytes, write: true})
}

func (c vmCtx) SetTimer(d vtime.Virtual, tag string) {
	if d < 0 {
		d = 0
	}
	c.vm.timers = append(c.vm.timers, pendingTimer{due: c.vm.clock.Now() + d, tag: tag})
}

func (c vmCtx) Clock() ClockView { return c.vm.clock }
func (c vmCtx) ID() string       { return c.vm.id }

// digestHistory bounds how many per-output digests the log retains for
// prefix comparison. Replica skew is bounded by pacing (MaxLead), which at
// any sane send rate is far fewer than this many outputs.
const digestHistory = 512

// OutputLog records the guest's outbound packets for divergence detection.
type OutputLog struct {
	n      int
	digest uint64
	empty  uint64   // digest of the empty log (n == 0)
	hist   []uint64 // ring: hist[(i-1)%digestHistory] = digest after i outputs
	buf    []byte   // formatting scratch, reused across Appends
}

// outputLogSeed is the digest of the empty log, shared by every guest.
var outputLogSeed = func() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte("stopwatch-output-log"))
	return h.Sum64()
}()

// FNV-64a parameters, for the hand-rolled fold in Append.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newOutputLog() *OutputLog {
	// The history ring is lazily allocated on the first output.
	return &OutputLog{digest: outputLogSeed, empty: outputLogSeed}
}

// Append folds an output record into the rolling digest. The record is
// formatted into a reused scratch buffer and folded with an inline FNV-64a
// — one Append per guest output makes this a hot path, and the fmt.Fprintf
// + hasher pair it replaces allocated on every call. The byte format (and
// so the digest value) is unchanged: "%d|%d|%s|%d|%v".
func (l *OutputLog) Append(seq uint64, dst netsim.Addr, size int, data any) {
	b := l.buf[:0]
	b = strconv.AppendUint(b, l.digest, 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, '|')
	b = append(b, dst...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(size), 10)
	b = append(b, '|')
	switch v := data.(type) {
	case nil:
		b = append(b, "<nil>"...)
	case int:
		b = strconv.AppendInt(b, int64(v), 10)
	case int64:
		b = strconv.AppendInt(b, v, 10)
	case uint64:
		b = strconv.AppendUint(b, v, 10)
	case string:
		b = append(b, v...)
	default:
		b = fmt.Appendf(b, "%v", v)
	}
	l.buf = b[:0]
	d := uint64(fnvOffset64)
	for _, c := range b {
		d ^= uint64(c)
		d *= fnvPrime64
	}
	l.digest = d
	if l.hist == nil {
		l.hist = make([]uint64, digestHistory)
	}
	l.n++
	l.hist[(l.n-1)%digestHistory] = l.digest
}

// DigestAt returns the digest as of the first n outputs, if still within
// the retained history. It lets replicas that are transiently skewed by a
// few packets be compared on their common prefix.
func (l *OutputLog) DigestAt(n int) (uint64, bool) {
	switch {
	case n < 0 || n > l.n:
		return 0, false
	case n == 0:
		return l.empty, true
	case l.n-n >= digestHistory:
		return 0, false
	}
	return l.hist[(n-1)%digestHistory], true
}

// Len returns the number of records folded in.
func (l *OutputLog) Len() int { return l.n }

// Digest returns the rolling FNV-64 digest.
func (l *OutputLog) Digest() uint64 { return l.digest }

// VMSnapshot is a point-in-time copy of a VM's logical state, taken at a VM
// exit: the op queue, armed timers, output-sequence counter, stats, output
// log (count, rolling digest, retained history ring) and the app's own
// encoded state. Snapshots are value-copied structured state, not byte
// serializations — checkpointing is in-process. The zero value is ready;
// SnapshotInto reuses its slices across captures so steady-state
// checkpointing does not allocate.
type VMSnapshot struct {
	sendSeq uint64
	booted  bool
	stats   Stats
	ops     []op
	timers  []pendingTimer
	logN    int
	logDig  uint64
	logHist []uint64
	app     []byte
	valid   bool
}

// Valid reports whether the snapshot holds a captured state.
func (s *VMSnapshot) Valid() bool { return s.valid }

// Outputs returns the output-log length at capture time.
func (s *VMSnapshot) Outputs() int { return s.logN }

// SizeBytes estimates the snapshot's retained size — the journal-bytes
// accounting unit for checkpoint telemetry.
func (s *VMSnapshot) SizeBytes() int {
	const opSize, timerSize = 64, 24
	return len(s.ops)*opSize + len(s.timers)*timerSize + len(s.logHist)*8 + len(s.app) + 64
}

// CopyFrom deep-copies src into s, reusing s's slices.
func (s *VMSnapshot) CopyFrom(src *VMSnapshot) {
	s.sendSeq = src.sendSeq
	s.booted = src.booted
	s.stats = src.stats
	s.ops = append(s.ops[:0], src.ops...)
	s.timers = append(s.timers[:0], src.timers...)
	s.logN = src.logN
	s.logDig = src.logDig
	s.logHist = append(s.logHist[:0], src.logHist...)
	s.app = append(s.app[:0], src.app...)
	s.valid = src.valid
}

// CanSnapshot reports whether the hosted app supports checkpointing.
func (vm *VM) CanSnapshot() bool {
	_, ok := vm.app.(Snapshotter)
	return ok
}

// SnapshotInto captures the VM's state into snap, reusing snap's slices.
// Must be called at a VM exit (never from inside an App callback). Fails if
// the app does not implement Snapshotter.
func (vm *VM) SnapshotInto(snap *VMSnapshot) error {
	sn, ok := vm.app.(Snapshotter)
	if !ok {
		return fmt.Errorf("%w: app %T is not a Snapshotter", ErrGuest, vm.app)
	}
	snap.sendSeq = vm.sendSeq
	snap.booted = vm.booted
	snap.stats = vm.stats
	snap.ops = append(snap.ops[:0], vm.ops...)
	snap.timers = append(snap.timers[:0], vm.timers...)
	snap.logN = vm.outLog.n
	snap.logDig = vm.outLog.digest
	snap.logHist = append(snap.logHist[:0], vm.outLog.hist...)
	snap.app = sn.SnapshotAppend(snap.app[:0])
	snap.valid = true
	return nil
}

// RestoreSnapshot rebuilds the VM's state from a snapshot captured on a
// replica of the same guest. The VM must not have booted; after restore it
// is in the exact logical state the snapshotted replica was in at capture,
// and replaying the same interrupt schedule reproduces its outputs
// digest-identically.
func (vm *VM) RestoreSnapshot(snap *VMSnapshot) error {
	if !snap.valid {
		return fmt.Errorf("%w: empty snapshot", ErrGuest)
	}
	if vm.booted {
		return fmt.Errorf("%w: restore into a booted VM", ErrGuest)
	}
	sn, ok := vm.app.(Snapshotter)
	if !ok {
		return fmt.Errorf("%w: app %T is not a Snapshotter", ErrGuest, vm.app)
	}
	if err := sn.RestoreSnapshot(snap.app); err != nil {
		return fmt.Errorf("guest %s: restore app: %w", vm.id, err)
	}
	vm.sendSeq = snap.sendSeq
	vm.booted = snap.booted
	vm.stats = snap.stats
	vm.ops = append(vm.ops[:0], snap.ops...)
	vm.timers = append(vm.timers[:0], snap.timers...)
	vm.outLog.n = snap.logN
	vm.outLog.digest = snap.logDig
	if len(snap.logHist) > 0 {
		if vm.outLog.hist == nil {
			vm.outLog.hist = make([]uint64, digestHistory)
		}
		copy(vm.outLog.hist, snap.logHist)
	}
	return nil
}
