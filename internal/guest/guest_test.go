package guest

import (
	"errors"
	"testing"

	"stopwatch/internal/vtime"
)

// fakeClock is a settable ClockView.
type fakeClock struct {
	now vtime.Virtual
}

func (f *fakeClock) Now() vtime.Virtual { return f.now }
func (f *fakeClock) TSC() uint64        { return uint64(f.now) * 3 }
func (f *fakeClock) PITCounter() uint16 { return 0 }

// scriptApp queues a fixed op sequence at boot and records callbacks.
type scriptApp struct {
	boot     func(c Ctx)
	packets  []Payload
	disks    []DiskDone
	timers   []string
	onPacket func(c Ctx, p Payload)
	onDisk   func(c Ctx, d DiskDone)
	onTimer  func(c Ctx, tag string)
}

func (a *scriptApp) Boot(c Ctx) {
	if a.boot != nil {
		a.boot(c)
	}
}
func (a *scriptApp) OnPacket(c Ctx, p Payload) {
	a.packets = append(a.packets, p)
	if a.onPacket != nil {
		a.onPacket(c, p)
	}
}
func (a *scriptApp) OnDiskDone(c Ctx, d DiskDone) {
	a.disks = append(a.disks, d)
	if a.onDisk != nil {
		a.onDisk(c, d)
	}
}
func (a *scriptApp) OnTimer(c Ctx, tag string) {
	a.timers = append(a.timers, tag)
	if a.onTimer != nil {
		a.onTimer(c, tag)
	}
}

func newVM(t *testing.T, app App) (*VM, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	vm, err := New("g1", app, clk)
	if err != nil {
		t.Fatal(err)
	}
	return vm, clk
}

func TestNewValidation(t *testing.T) {
	clk := &fakeClock{}
	app := &scriptApp{}
	if _, err := New("", app, clk); !errors.Is(err, ErrGuest) {
		t.Fatal("empty id should fail")
	}
	if _, err := New("g", nil, clk); !errors.Is(err, ErrGuest) {
		t.Fatal("nil app should fail")
	}
	if _, err := New("g", app, nil); !errors.Is(err, ErrGuest) {
		t.Fatal("nil clock should fail")
	}
}

func TestBootOnce(t *testing.T) {
	n := 0
	app := &scriptApp{boot: func(c Ctx) { n++ }}
	vm, _ := newVM(t, app)
	vm.Boot()
	vm.Boot()
	if n != 1 {
		t.Fatalf("boot ran %d times", n)
	}
}

func TestComputeConsumesBranches(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) { c.Compute(1000) }}
	vm, _ := newVM(t, app)
	vm.Boot()
	if !vm.Busy() {
		t.Fatal("guest should be busy after boot")
	}
	r := vm.Step(400)
	if r.Executed != 400 || r.IO != nil || r.Idle {
		t.Fatalf("step 1: %+v", r)
	}
	r = vm.Step(400)
	if r.Executed != 400 {
		t.Fatalf("step 2: %+v", r)
	}
	r = vm.Step(400)
	// 200 compute remain, then idle burns the rest.
	if r.Executed != 400 || !r.Idle {
		t.Fatalf("step 3: %+v", r)
	}
	s := vm.Stats()
	if s.Branches != 1200 || s.IdleBranches != 200 {
		t.Fatalf("stats %+v", s)
	}
}

func TestComputeCoalesces(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) {
		c.Compute(100)
		c.Compute(200) // must merge with previous op
	}}
	vm, _ := newVM(t, app)
	vm.Boot()
	if len(vm.ops) != 1 || vm.ops[0].branches != 300 {
		t.Fatalf("ops not coalesced: %+v", vm.ops)
	}
}

func TestSendCausesExit(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) {
		c.Compute(50)
		c.Send("client", 1500, "hello")
		c.Compute(50)
	}}
	vm, _ := newVM(t, app)
	vm.Boot()
	r := vm.Step(1000)
	if r.IO == nil || !r.IO.IsSend() {
		t.Fatalf("expected send exit, got %+v", r)
	}
	if r.Executed != 51 { // 50 compute + 1 for the I/O instruction
		t.Fatalf("executed %d, want 51", r.Executed)
	}
	if r.IO.Dst != "client" || r.IO.Size != 1500 || r.IO.Seq != 1 {
		t.Fatalf("send action %+v", r.IO)
	}
	// Remaining compute then idle.
	r = vm.Step(1000)
	if r.Executed != 1000 || !r.Idle {
		t.Fatalf("tail step %+v", r)
	}
	if vm.Stats().PacketsSent != 1 {
		t.Fatal("send not counted")
	}
	if vm.OutputCount() != 1 {
		t.Fatal("output log not appended")
	}
}

func TestDiskCausesExit(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) {
		c.DiskRead("blk", 4096)
		c.DiskWrite("blk2", 512)
	}}
	vm, _ := newVM(t, app)
	vm.Boot()
	r := vm.Step(10)
	if r.IO == nil || r.IO.IsSend() || r.IO.Tag != "blk" || r.IO.Write {
		t.Fatalf("disk read exit %+v", r)
	}
	r = vm.Step(10)
	if r.IO == nil || r.IO.Tag != "blk2" || !r.IO.Write {
		t.Fatalf("disk write exit %+v", r)
	}
	if vm.Stats().DiskRequests != 2 {
		t.Fatal("disk requests not counted")
	}
}

func TestBranchesToNextIO(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) {
		c.Compute(70)
		c.Send("x", 1, nil)
	}}
	vm, _ := newVM(t, app)
	vm.Boot()
	n, has := vm.BranchesToNextIO()
	if !has || n != 70 {
		t.Fatalf("BranchesToNextIO = %d,%v", n, has)
	}
	// Drain: after the send, queue is empty.
	vm.Step(100)
	n, has = vm.BranchesToNextIO()
	if has || n != 0 {
		t.Fatalf("after drain: %d,%v", n, has)
	}
}

func TestDeliverPacketRunsHandler(t *testing.T) {
	app := &scriptApp{}
	app.onPacket = func(c Ctx, p Payload) { c.Compute(500) }
	vm, _ := newVM(t, app)
	vm.Boot()
	vm.DeliverPacket(Payload{Src: "client", Size: 100, Data: "req"})
	if len(app.packets) != 1 || app.packets[0].Data != "req" {
		t.Fatalf("packets %+v", app.packets)
	}
	if !vm.Busy() {
		t.Fatal("handler's compute not queued")
	}
	s := vm.Stats()
	if s.NetInterrupts != 1 || s.PacketsReceived != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDeliverDisk(t *testing.T) {
	app := &scriptApp{}
	vm, _ := newVM(t, app)
	vm.Boot()
	vm.DeliverDisk(DiskDone{Tag: "blk", Bytes: 4096})
	if len(app.disks) != 1 || app.disks[0].Tag != "blk" {
		t.Fatalf("disks %+v", app.disks)
	}
	if vm.Stats().DiskInterrupts != 1 {
		t.Fatal("disk interrupt not counted")
	}
}

func TestTimers(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) {
		c.SetTimer(vtime.Virtual(100), "a")
		c.SetTimer(vtime.Virtual(300), "b")
	}}
	vm, clk := newVM(t, app)
	vm.Boot()
	due, ok := vm.NextTimerDue()
	if !ok || due != 100 {
		t.Fatalf("NextTimerDue = %v,%v", due, ok)
	}
	clk.now = 150
	vm.DeliverTimerTicks(1)
	if len(app.timers) != 1 || app.timers[0] != "a" {
		t.Fatalf("timers %v", app.timers)
	}
	clk.now = 300
	vm.DeliverTimerTicks(1)
	if len(app.timers) != 2 || app.timers[1] != "b" {
		t.Fatalf("timers %v", app.timers)
	}
	if _, ok := vm.NextTimerDue(); ok {
		t.Fatal("timers should be drained")
	}
	s := vm.Stats()
	if s.TimerInterrupts != 2 || s.TimerCallbacks != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTimerReentrancy(t *testing.T) {
	// A timer handler arming another timer must not fire it in the same
	// delivery round unless already due.
	app := &scriptApp{}
	app.onTimer = func(c Ctx, tag string) {
		if tag == "first" {
			c.SetTimer(vtime.Virtual(1000), "second")
		}
	}
	appBoot := func(c Ctx) { c.SetTimer(0, "first") }
	app.boot = appBoot
	vm, clk := newVM(t, app)
	vm.Boot()
	clk.now = 10
	vm.DeliverTimerTicks(1)
	if len(app.timers) != 1 {
		t.Fatalf("timers fired: %v", app.timers)
	}
	clk.now = 2000
	vm.DeliverTimerTicks(1)
	if len(app.timers) != 2 || app.timers[1] != "second" {
		t.Fatalf("timers %v", app.timers)
	}
}

func TestOutputDigestDetectsDivergence(t *testing.T) {
	mk := func(data string) *VM {
		app := &scriptApp{boot: func(c Ctx) { c.Send("d", 10, data) }}
		vm, _ := newVM(t, app)
		vm.Boot()
		vm.Step(100)
		return vm
	}
	a, b, c := mk("same"), mk("same"), mk("different")
	if a.OutputDigest() != b.OutputDigest() {
		t.Fatal("identical replicas produced different digests")
	}
	if a.OutputDigest() == c.OutputDigest() {
		t.Fatal("divergent replica produced identical digest")
	}
}

func TestOutputDigestOrderSensitive(t *testing.T) {
	mk := func(first, second string) uint64 {
		app := &scriptApp{boot: func(c Ctx) {
			c.Send("d", 10, first)
			c.Send("d", 10, second)
		}}
		vm, _ := newVM(t, app)
		vm.Boot()
		vm.Step(100)
		vm.Step(100)
		return vm.OutputDigest()
	}
	if mk("a", "b") == mk("b", "a") {
		t.Fatal("digest not order sensitive")
	}
}

func TestReplicaLockstepDeterminism(t *testing.T) {
	// Two replicas of the same app, stepped with the same chunk schedule and
	// interrupt injections, must agree on every observable.
	mkApp := func() *scriptApp {
		app := &scriptApp{}
		app.boot = func(c Ctx) { c.Compute(100) }
		app.onPacket = func(c Ctx, p Payload) {
			c.Compute(int64(p.Size) * 3)
			c.Send("client", p.Size, c.Clock().Now())
		}
		return app
	}
	run := func() *VM {
		vm, clk := newVM(t, mkApp())
		vm.Boot()
		virt := vtime.Virtual(0)
		for i := 0; i < 50; i++ {
			r := vm.Step(997) // odd chunk size on purpose
			_ = r
			virt += 997
			clk.now = virt
			if i%7 == 3 {
				vm.DeliverPacket(Payload{Src: "c", Size: 100 + i, Data: i})
			}
		}
		return vm
	}
	a, b := run(), run()
	if a.OutputDigest() != b.OutputDigest() {
		t.Fatal("replicas diverged under identical schedules")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestCtxIgnoresDegenerateOps(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) {
		c.Compute(0)
		c.Compute(-5)
		c.Send("", 10, nil)
		c.Send("x", 0, nil)
		c.DiskRead("t", 0)
		c.DiskWrite("t", -1)
	}}
	vm, _ := newVM(t, app)
	vm.Boot()
	if vm.Busy() {
		t.Fatalf("degenerate ops were queued: %+v", vm.ops)
	}
}

func TestStepZeroBudget(t *testing.T) {
	app := &scriptApp{boot: func(c Ctx) { c.Compute(10) }}
	vm, _ := newVM(t, app)
	vm.Boot()
	r := vm.Step(0)
	if r.Executed != 0 || r.IO != nil || r.Idle {
		t.Fatalf("zero budget step: %+v", r)
	}
}

func TestCtxAccessors(t *testing.T) {
	var gotID string
	var tsc uint64
	app := &scriptApp{boot: func(c Ctx) {
		gotID = c.ID()
		tsc = c.Clock().TSC()
	}}
	vm, clk := newVM(t, app)
	clk.now = 100
	vm.Boot()
	if gotID != "g1" {
		t.Fatalf("id = %q", gotID)
	}
	if tsc != 300 {
		t.Fatalf("tsc = %d", tsc)
	}
}
