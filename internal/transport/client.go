package transport

import (
	"fmt"

	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
)

// Client is a fabric endpoint that talks to cloud guests over the TCP-like
// or UDP-like transport. One Client multiplexes any number of logical
// connections; it counts every packet it sends and receives, which is how
// the Fig-6(b) packets-per-operation series is measured.
type Client struct {
	net  *netsim.Network
	loop *sim.Loop
	addr netsim.Addr

	// DelayedAck is the delayed-ACK timer (classic 1-ACK-per-2-segments
	// coalescing). Zero disables delayed ACKs (ACK every segment).
	DelayedAck sim.Time
	// NACKTimeout enables UDP NACK-based repair: if a gap persists this
	// long, the client NACKs the first missing segment. Zero disables.
	NACKTimeout sim.Time
	// Retry, when positive, retransmits unanswered SYNs and REQs after this
	// interval (client-side loss recovery).
	Retry sim.Time

	conns map[uint64]*clientConn

	nextConn uint64
	nextResp uint64

	pktsSent uint64
	pktsRecv uint64
}

type clientConn struct {
	id   uint64
	dst  netsim.Addr
	mode Flag // FlagSYN for TCP, FlagREQ for UDP

	established bool
	onConnect   func()

	// Receive state for the current response.
	resp *clientResp

	// Delayed-ACK state. Timers are generation-checked handles: the loop
	// pools fired events, so raw *Event references must not be retained.
	unacked   int
	ackTimer  sim.Handle
	recvdHigh int // highest contiguous segment count (cumulative ack value)

	synTimer sim.Handle

	// Request queue: requests issued before connect completes.
	queued []pendingReq
}

type pendingReq struct {
	respID uint64
	req    any
	onDone func(r Response)
	sentAt sim.Time
}

type clientResp struct {
	pendingReq
	total int
	got   map[int]bool
	start sim.Time
	nack  sim.Handle
	retry sim.Handle
}

// Response reports a completed request.
type Response struct {
	RespID   uint64
	Latency  sim.Time
	Segments int
	Bytes    int
}

// NewClient creates a client endpoint and attaches it to the fabric.
func NewClient(net *netsim.Network, loop *sim.Loop, addr netsim.Addr) (*Client, error) {
	if net == nil || loop == nil || addr == "" {
		return nil, fmt.Errorf("%w: client needs net, loop, addr", ErrTransport)
	}
	c := &Client{
		net:        net,
		loop:       loop,
		addr:       addr,
		DelayedAck: sim.Millisecond,
		conns:      make(map[uint64]*clientConn),
	}
	if err := net.Attach(&netsim.FuncNode{Addr: addr, Fn: c.deliver}); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr returns the client's fabric address.
func (c *Client) Addr() netsim.Addr { return c.addr }

// PacketsSent and PacketsReceived report the client-side wire counters.
func (c *Client) PacketsSent() uint64 { return c.pktsSent }

// PacketsReceived reports packets delivered to this client.
func (c *Client) PacketsReceived() uint64 { return c.pktsRecv }

func (c *Client) send(dst netsim.Addr, size int, seg Segment) {
	c.pktsSent++
	c.net.Send(&netsim.Packet{Src: c.addr, Dst: dst, Size: size, Kind: "tcpish", Payload: seg})
}

// Connect opens a TCP-like connection to dst; onConnect fires when the
// handshake completes. Returns the connection id.
func (c *Client) Connect(dst netsim.Addr, onConnect func()) uint64 {
	c.nextConn++
	conn := &clientConn{id: c.nextConn, dst: dst, mode: FlagSYN, onConnect: onConnect}
	c.conns[conn.id] = conn
	c.sendSYN(conn)
	return conn.id
}

func (c *Client) sendSYN(conn *clientConn) {
	c.send(conn.dst, CtrlSize, Segment{Conn: conn.id, Flags: FlagSYN})
	if c.Retry > 0 {
		conn.synTimer = c.loop.After(c.Retry, "tcp:syn-retry", func() {
			if !conn.established {
				c.sendSYN(conn)
			}
		}).Handle()
	}
}

// OpenUDP creates a UDP-like "connection" (no handshake). Returns its id.
func (c *Client) OpenUDP(dst netsim.Addr) uint64 {
	c.nextConn++
	conn := &clientConn{id: c.nextConn, dst: dst, mode: FlagREQ, established: true}
	c.conns[conn.id] = conn
	return conn.id
}

// Request issues a request on the connection; onDone fires when the full
// response arrived. Requests on a connecting TCP conn are queued until the
// handshake completes. One request is outstanding per connection at a time;
// additional requests queue behind it.
func (c *Client) Request(connID uint64, req any, onDone func(r Response)) error {
	conn, ok := c.conns[connID]
	if !ok {
		return fmt.Errorf("%w: unknown conn %d", ErrTransport, connID)
	}
	c.nextResp++
	p := pendingReq{respID: c.nextResp, req: req, onDone: onDone, sentAt: c.loop.Now()}
	if !conn.established || conn.resp != nil {
		conn.queued = append(conn.queued, p)
		return nil
	}
	c.issue(conn, p)
	return nil
}

func (c *Client) issue(conn *clientConn, p pendingReq) {
	p.sentAt = c.loop.Now()
	conn.resp = &clientResp{pendingReq: p, got: make(map[int]bool), start: c.loop.Now()}
	// A REQ piggybacks the cumulative ACK (cancels any pending delayed ACK).
	if conn.ackTimer.Pending() {
		c.loop.CancelHandle(conn.ackTimer)
		conn.ackTimer = sim.Handle{}
		conn.unacked = 0
	}
	c.sendREQ(conn)
}

func (c *Client) sendREQ(conn *clientConn) {
	r := conn.resp
	if r == nil {
		return
	}
	c.send(conn.dst, ReqSize, Segment{
		Conn: conn.id, Flags: FlagREQ, Seq: conn.recvdHigh, RespID: r.respID, Req: r.req,
	})
	if c.Retry > 0 {
		r.retry = c.loop.After(c.Retry, "tcp:req-retry", func() {
			r.retry = sim.Handle{}
			// Retry only while no data for this response has arrived.
			if conn.resp == r && len(r.got) == 0 {
				c.sendREQ(conn)
			}
		}).Handle()
	}
}

func (c *Client) deliver(pkt *netsim.Packet) {
	seg, ok := pkt.Payload.(Segment)
	if !ok {
		return
	}
	c.pktsRecv++
	conn, ok := c.conns[seg.Conn]
	if !ok {
		return
	}
	switch seg.Flags {
	case FlagSYNACK:
		if conn.established {
			return
		}
		conn.established = true
		c.loop.CancelHandle(conn.synTimer)
		conn.synTimer = sim.Handle{}
		c.send(conn.dst, CtrlSize, Segment{Conn: conn.id, Flags: FlagACK, Seq: 0})
		if conn.onConnect != nil {
			conn.onConnect()
		}
		c.drainQueue(conn)
	case FlagDATA:
		c.onData(conn, seg)
	}
}

func (c *Client) drainQueue(conn *clientConn) {
	if conn.resp != nil || len(conn.queued) == 0 {
		return
	}
	p := conn.queued[0]
	conn.queued = conn.queued[1:]
	c.issue(conn, p)
}

func (c *Client) onData(conn *clientConn, seg Segment) {
	r := conn.resp
	if r == nil || seg.RespID != r.respID {
		// Stale/duplicate data from an old response: ACK to keep the server
		// window moving, then drop.
		if conn.mode == FlagSYN {
			c.ackNow(conn)
		}
		return
	}
	r.total = seg.Total
	if !r.got[seg.Seq] {
		r.got[seg.Seq] = true
	}
	// Advance the cumulative counter.
	contig := 0
	for r.got[contig] {
		contig++
	}
	conn.recvdHigh = contig

	if conn.mode == FlagSYN {
		c.maybeAck(conn)
	} else if c.NACKTimeout > 0 {
		c.armNack(conn, r)
	}

	if len(r.got) >= r.total {
		c.finish(conn, r)
	}
}

func (c *Client) finish(conn *clientConn, r *clientResp) {
	c.loop.CancelHandle(r.nack)
	c.loop.CancelHandle(r.retry)
	// Flush any pending delayed ACK so the server's window closes cleanly.
	if conn.mode == FlagSYN && conn.unacked > 0 {
		c.ackNow(conn)
	}
	conn.resp = nil
	conn.recvdHigh = 0
	resp := Response{
		RespID:   r.respID,
		Latency:  c.loop.Now() - r.sentAt,
		Segments: r.total,
		Bytes:    r.total * MSS,
	}
	if r.onDone != nil {
		r.onDone(resp)
	}
	c.drainQueue(conn)
}

// maybeAck implements delayed ACK: every second segment is acked
// immediately; a lone segment is acked when the timer fires.
func (c *Client) maybeAck(conn *clientConn) {
	conn.unacked++
	if conn.unacked >= 2 || c.DelayedAck == 0 {
		c.ackNow(conn)
		return
	}
	if !conn.ackTimer.Pending() {
		conn.ackTimer = c.loop.After(c.DelayedAck, "tcp:delack", func() {
			conn.ackTimer = sim.Handle{}
			if conn.unacked > 0 {
				c.ackNow(conn)
			}
		}).Handle()
	}
}

func (c *Client) ackNow(conn *clientConn) {
	conn.unacked = 0
	c.loop.CancelHandle(conn.ackTimer)
	conn.ackTimer = sim.Handle{}
	c.send(conn.dst, CtrlSize, Segment{Conn: conn.id, Flags: FlagACK, Seq: conn.recvdHigh})
}

// armNack schedules a NACK for the first missing segment if the gap
// persists (UDP NACK-repair mode).
func (c *Client) armNack(conn *clientConn, r *clientResp) {
	if r.nack.Pending() {
		return
	}
	r.nack = c.loop.After(c.NACKTimeout, "udp:nack", func() {
		r.nack = sim.Handle{}
		if conn.resp != r || len(r.got) >= r.total {
			return
		}
		missing := 0
		for r.got[missing] {
			missing++
		}
		c.send(conn.dst, CtrlSize, Segment{Conn: conn.id, Flags: FlagNACK, Seq: missing})
		c.armNack(conn, r)
	}).Handle()
}
