package transport

import (
	"fmt"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/vtime"
)

// TCPServer is the guest-side stream stack: it answers handshakes, hands
// requests to the application, and streams window-limited responses that
// advance on cumulative ACKs. It is purely deterministic guest state.
type TCPServer struct {
	// Window is the number of unacknowledged segments allowed in flight.
	Window int
	// RTO, when positive, retransmits the lowest unacked segment if no ACK
	// progress is observed for that long (guest virtual time).
	RTO vtime.Virtual
	// OnRequest receives client requests. The app eventually calls Respond
	// (possibly after disk I/O) with the same conn and respID.
	OnRequest func(ctx guest.Ctx, src netsim.Addr, conn uint64, respID uint64, req any)
	// SegmentCompute is the branch cost the guest pays per data segment
	// sent (packetization, copies).
	SegmentCompute int64

	conns map[uint64]*serverConn
}

type serverConn struct {
	peer netsim.Addr
	resp *serverResp
}

type serverResp struct {
	id       uint64
	conn     uint64
	total    int
	bytes    int
	nextSend int // next segment index to transmit
	acked    int // cumulative acked segments
	rtoArmed bool
	rtoEpoch int // distinguishes stale RTO timers
}

// NewTCPServer returns a server stack with the given window.
func NewTCPServer(window int) (*TCPServer, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: window %d", ErrTransport, window)
	}
	return &TCPServer{
		Window:         window,
		SegmentCompute: 20_000,
		conns:          make(map[uint64]*serverConn),
	}, nil
}

// HandleSegment processes an inbound transport payload inside the guest.
// It returns true when the payload was a transport segment.
func (s *TCPServer) HandleSegment(ctx guest.Ctx, src netsim.Addr, data any) bool {
	seg, ok := data.(Segment)
	if !ok {
		return false
	}
	switch seg.Flags {
	case FlagSYN:
		s.conns[seg.Conn] = &serverConn{peer: src}
		ctx.Compute(5_000)
		ctx.Send(src, CtrlSize, Segment{Conn: seg.Conn, Flags: FlagSYNACK})
	case FlagACK:
		s.onAck(ctx, seg)
	case FlagREQ:
		c, ok := s.conns[seg.Conn]
		if !ok {
			// Implicit connection (UDP-style request on a stream server).
			c = &serverConn{peer: src}
			s.conns[seg.Conn] = c
		}
		// A REQ carries a cumulative ACK too (piggybacking).
		s.onAck(ctx, Segment{Conn: seg.Conn, Flags: FlagACK, Seq: seg.Seq})
		ctx.Compute(10_000)
		if s.OnRequest != nil {
			s.OnRequest(ctx, c.peer, seg.Conn, seg.RespID, seg.Req)
		}
	}
	return true
}

// Respond begins streaming a response of respBytes to the request's
// connection. Call from app code (e.g. after disk reads complete).
func (s *TCPServer) Respond(ctx guest.Ctx, conn uint64, respID uint64, respBytes int) error {
	c, ok := s.conns[conn]
	if !ok {
		return fmt.Errorf("%w: respond on unknown conn %d", ErrTransport, conn)
	}
	c.resp = &serverResp{
		id:    respID,
		conn:  conn,
		total: SegCount(respBytes),
		bytes: respBytes,
	}
	s.pump(ctx, c)
	return nil
}

// pump transmits segments up to the window.
func (s *TCPServer) pump(ctx guest.Ctx, c *serverConn) {
	r := c.resp
	if r == nil {
		return
	}
	for r.nextSend < r.total && r.nextSend-r.acked < s.Window {
		ctx.Compute(s.SegmentCompute)
		ctx.Send(c.peer, segSize(r.nextSend, r.total, r.bytes), Segment{
			Conn: r.conn, Flags: FlagDATA, Seq: r.nextSend, Total: r.total, RespID: r.id,
		})
		r.nextSend++
	}
	if s.RTO > 0 && r.acked < r.total && !r.rtoArmed {
		r.rtoArmed = true
		epoch := r.rtoEpoch
		ctx.SetTimer(s.RTO, rtoTag(r.conn, epoch))
	}
	if r.acked >= r.total {
		c.resp = nil
	}
}

func rtoTag(conn uint64, epoch int) string {
	return fmt.Sprintf("tcp-rto:%d:%d", conn, epoch)
}

// onAck advances the window.
func (s *TCPServer) onAck(ctx guest.Ctx, seg Segment) {
	c, ok := s.conns[seg.Conn]
	if !ok || c.resp == nil {
		return
	}
	r := c.resp
	if seg.Seq > r.acked {
		r.acked = seg.Seq
		r.rtoEpoch++ // progress: stale RTOs are ignored
		r.rtoArmed = false
	}
	s.pump(ctx, c)
}

// HandleTimer processes RTO expirations; wire it from App.OnTimer. Returns
// true when the tag belonged to this stack.
func (s *TCPServer) HandleTimer(ctx guest.Ctx, tag string) bool {
	var conn uint64
	var epoch int
	if _, err := fmt.Sscanf(tag, "tcp-rto:%d:%d", &conn, &epoch); err != nil {
		return false
	}
	c, ok := s.conns[conn]
	if !ok || c.resp == nil {
		return true
	}
	r := c.resp
	if epoch != r.rtoEpoch || r.acked >= r.total {
		return true // stale
	}
	// Retransmit the lowest unacked segment and re-arm.
	ctx.Compute(s.SegmentCompute)
	ctx.Send(c.peer, segSize(r.acked, r.total, r.bytes), Segment{
		Conn: r.conn, Flags: FlagDATA, Seq: r.acked, Total: r.total, RespID: r.id,
	})
	ctx.SetTimer(s.RTO, rtoTag(conn, epoch))
	return true
}

// UDPServer blasts responses with no acknowledgments; an optional NACK
// listener retransmits missing segments (the PGM-style adapted service).
type UDPServer struct {
	// SegmentCompute is the branch cost per data segment sent.
	SegmentCompute int64
	// OnRequest receives client requests.
	OnRequest func(ctx guest.Ctx, src netsim.Addr, conn uint64, respID uint64, req any)

	// sent remembers responses for NACK repair: conn → last response.
	sent map[uint64]*udpResp
}

type udpResp struct {
	peer  netsim.Addr
	id    uint64
	total int
	bytes int
}

// NewUDPServer returns a datagram server stack.
func NewUDPServer() *UDPServer {
	return &UDPServer{SegmentCompute: 20_000, sent: make(map[uint64]*udpResp)}
}

// HandleSegment processes an inbound payload; true when consumed.
func (s *UDPServer) HandleSegment(ctx guest.Ctx, src netsim.Addr, data any) bool {
	seg, ok := data.(Segment)
	if !ok {
		return false
	}
	switch seg.Flags {
	case FlagREQ:
		ctx.Compute(10_000)
		if s.OnRequest != nil {
			s.OnRequest(ctx, src, seg.Conn, seg.RespID, seg.Req)
		}
	case FlagNACK:
		r, ok := s.sent[seg.Conn]
		if !ok {
			return true
		}
		ctx.Compute(s.SegmentCompute)
		ctx.Send(r.peer, segSize(seg.Seq, r.total, r.bytes), Segment{
			Conn: seg.Conn, Flags: FlagDATA, Seq: seg.Seq, Total: r.total, RespID: r.id,
		})
	}
	return true
}

// Respond blasts all segments of the response immediately.
func (s *UDPServer) Respond(ctx guest.Ctx, dst netsim.Addr, conn uint64, respID uint64, respBytes int) {
	total := SegCount(respBytes)
	s.sent[conn] = &udpResp{peer: dst, id: respID, total: total, bytes: respBytes}
	for i := 0; i < total; i++ {
		ctx.Compute(s.SegmentCompute)
		ctx.Send(dst, segSize(i, total, respBytes), Segment{
			Conn: conn, Flags: FlagDATA, Seq: i, Total: total, RespID: respID,
		})
	}
}
