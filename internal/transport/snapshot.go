// Server-side transport state serialization, used by apps that implement
// guest.Snapshotter (checkpointed journals): a file server mid-response
// must capture its connection table and window positions, or a replica
// restored from a checkpoint would silently drop in-flight responses.
//
// Encodings are deterministic — map entries are emitted in sorted key
// order — so identical server states serialize to identical bytes on
// every replica. Only mutable state is captured; configuration (window,
// RTO, callbacks, per-segment costs) is rebuilt by the app factory.

package transport

import (
	"encoding/binary"
	"fmt"
	"sort"

	"stopwatch/internal/netsim"
)

func appendAddr(buf []byte, a netsim.Addr) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(a)))
	return append(buf, a...)
}

// stateReader is a varint cursor with sticky errors.
type stateReader struct {
	data []byte
	err  error
}

func (r *stateReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: snapshot: bad %s", ErrTransport, what)
	}
}

func (r *stateReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *stateReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *stateReader) byteVal(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) == 0 {
		r.fail(what)
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *stateReader) addr(what string) netsim.Addr {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if uint64(len(r.data)) < n {
		r.fail(what)
		return ""
	}
	a := netsim.Addr(r.data[:n])
	r.data = r.data[n:]
	return a
}

// AppendState serializes the stream server's mutable state (connections
// and in-flight responses) onto buf.
func (s *TCPServer) AppendState(buf []byte) []byte {
	ids := make([]uint64, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		c := s.conns[id]
		buf = binary.AppendUvarint(buf, id)
		buf = appendAddr(buf, c.peer)
		if c.resp == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		r := c.resp
		buf = binary.AppendUvarint(buf, r.id)
		buf = binary.AppendUvarint(buf, r.conn)
		buf = binary.AppendVarint(buf, int64(r.total))
		buf = binary.AppendVarint(buf, int64(r.bytes))
		buf = binary.AppendVarint(buf, int64(r.nextSend))
		buf = binary.AppendVarint(buf, int64(r.acked))
		armed := byte(0)
		if r.rtoArmed {
			armed = 1
		}
		buf = append(buf, armed)
		buf = binary.AppendVarint(buf, int64(r.rtoEpoch))
	}
	return buf
}

// RestoreState rebuilds the stream server's mutable state from the prefix
// of data written by AppendState, returning the unconsumed remainder.
func (s *TCPServer) RestoreState(data []byte) ([]byte, error) {
	r := &stateReader{data: data}
	n := r.uvarint("tcp conn count")
	conns := make(map[uint64]*serverConn, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		id := r.uvarint("tcp conn id")
		c := &serverConn{peer: r.addr("tcp peer")}
		if r.byteVal("tcp resp flag") == 1 {
			c.resp = &serverResp{
				id:       r.uvarint("tcp resp id"),
				conn:     r.uvarint("tcp resp conn"),
				total:    int(r.varint("tcp resp total")),
				bytes:    int(r.varint("tcp resp bytes")),
				nextSend: int(r.varint("tcp resp nextSend")),
				acked:    int(r.varint("tcp resp acked")),
			}
			c.resp.rtoArmed = r.byteVal("tcp resp rtoArmed") == 1
			c.resp.rtoEpoch = int(r.varint("tcp resp rtoEpoch"))
		}
		conns[id] = c
	}
	if r.err != nil {
		return nil, r.err
	}
	s.conns = conns
	return r.data, nil
}

// AppendState serializes the datagram server's NACK-repair memory onto
// buf.
func (s *UDPServer) AppendState(buf []byte) []byte {
	ids := make([]uint64, 0, len(s.sent))
	for id := range s.sent {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		r := s.sent[id]
		buf = binary.AppendUvarint(buf, id)
		buf = appendAddr(buf, r.peer)
		buf = binary.AppendUvarint(buf, r.id)
		buf = binary.AppendVarint(buf, int64(r.total))
		buf = binary.AppendVarint(buf, int64(r.bytes))
	}
	return buf
}

// RestoreState rebuilds the datagram server's state from the prefix of
// data written by AppendState, returning the unconsumed remainder.
func (s *UDPServer) RestoreState(data []byte) ([]byte, error) {
	r := &stateReader{data: data}
	n := r.uvarint("udp resp count")
	sent := make(map[uint64]*udpResp, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		id := r.uvarint("udp conn id")
		sent[id] = &udpResp{
			peer:  r.addr("udp peer"),
			id:    r.uvarint("udp resp id"),
			total: int(r.varint("udp resp total")),
			bytes: int(r.varint("udp resp bytes")),
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	s.sent = sent
	return r.data, nil
}
