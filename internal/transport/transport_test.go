package transport

import (
	"errors"
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vmm"
	"stopwatch/internal/vtime"
)

// getReq is the test request descriptor.
type getReq struct {
	Bytes int
}

// tcpFileApp is a minimal guest app serving byte blobs over TCPServer.
type tcpFileApp struct {
	srv *TCPServer
}

func newTCPFileApp(t *testing.T, window int, rto vtime.Virtual) *tcpFileApp {
	t.Helper()
	srv, err := NewTCPServer(window)
	if err != nil {
		t.Fatal(err)
	}
	srv.RTO = rto
	a := &tcpFileApp{srv: srv}
	srv.OnRequest = func(ctx guest.Ctx, src netsim.Addr, conn, respID uint64, req any) {
		g, ok := req.(getReq)
		if !ok {
			return
		}
		ctx.Compute(30_000)
		if err := srv.Respond(ctx, conn, respID, g.Bytes); err != nil {
			t.Errorf("respond: %v", err)
		}
	}
	return a
}

func (a *tcpFileApp) Boot(ctx guest.Ctx) {}
func (a *tcpFileApp) OnPacket(ctx guest.Ctx, p guest.Payload) {
	a.srv.HandleSegment(ctx, p.Src, p.Data)
}
func (a *tcpFileApp) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {}
func (a *tcpFileApp) OnTimer(ctx guest.Ctx, tag string) {
	a.srv.HandleTimer(ctx, tag)
}

// udpFileApp serves blobs over UDPServer.
type udpFileApp struct {
	srv *UDPServer
}

func (a *udpFileApp) Boot(ctx guest.Ctx) {}
func (a *udpFileApp) OnPacket(ctx guest.Ctx, p guest.Payload) {
	a.srv.HandleSegment(ctx, p.Src, p.Data)
}
func (a *udpFileApp) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {}
func (a *udpFileApp) OnTimer(ctx guest.Ctx, tag string)          {}

// harness wires one baseline guest serving at "svc:g" plus a client.
type harness struct {
	loop   *sim.Loop
	net    *netsim.Network
	rt     *vmm.BaselineRuntime
	client *Client
}

func newHarness(t *testing.T, app guest.App, link netsim.LinkConfig) *harness {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(99)
	net, err := netsim.New(loop, src.Stream("net"), link)
	if err != nil {
		t.Fatal(err)
	}
	host, err := vmm.NewHost("h", loop, src.Stream("host"), sim.NewClock(0, 0), vmm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vmm.NewBaselineRuntime(host, "g", app)
	if err != nil {
		t.Fatal(err)
	}
	svc := netsim.Addr("svc:g")
	rt.OnSend = vmm.SendSinkFunc(func(a guest.IOAction) {
		net.Send(&netsim.Packet{Src: svc, Dst: a.Dst, Size: a.Size, Kind: "tcpish", Payload: a.Data})
	})
	if err := net.Attach(&netsim.FuncNode{Addr: svc, Fn: func(p *netsim.Packet) {
		rt.HandleInbound(guest.Payload{Src: p.Src, Size: p.Size, Data: p.Payload})
	}}); err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(net, loop, "client")
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	return &harness{loop: loop, net: net, rt: rt, client: cl}
}

func TestSegCountAndSize(t *testing.T) {
	if SegCount(0) != 1 || SegCount(1) != 1 || SegCount(MSS) != 1 || SegCount(MSS+1) != 2 {
		t.Fatal("SegCount wrong")
	}
	if segSize(0, 2, MSS+100) != DataSize {
		t.Fatal("full segment size wrong")
	}
	if got := segSize(1, 2, MSS+100); got != 100+(DataSize-MSS) {
		t.Fatalf("tail segment size = %d", got)
	}
	if FlagSYN.String() != "SYN" || FlagDATA.String() != "DATA" || Flag(99).String() != "?" {
		t.Fatal("flag strings wrong")
	}
}

func TestTCPDownloadCompletes(t *testing.T) {
	h := newHarness(t, newTCPFileApp(t, 16, 0), netsim.LinkConfig{Latency: 2 * sim.Millisecond})
	var done []Response
	conn := h.client.Connect("svc:g", nil)
	if err := h.client.Request(conn, getReq{Bytes: 100 << 10}, func(r Response) { done = append(done, r) }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("completed %d downloads", len(done))
	}
	want := SegCount(100 << 10)
	if done[0].Segments != want {
		t.Fatalf("segments = %d, want %d", done[0].Segments, want)
	}
	if done[0].Latency <= 0 || done[0].Latency > sim.Second {
		t.Fatalf("latency %v out of range", done[0].Latency)
	}
}

func TestTCPDelayedAckCoalesces(t *testing.T) {
	h := newHarness(t, newTCPFileApp(t, 16, 0), netsim.LinkConfig{Latency: 2 * sim.Millisecond})
	var finished bool
	conn := h.client.Connect("svc:g", nil)
	if err := h.client.Request(conn, getReq{Bytes: 1 << 20}, func(Response) { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("download did not finish")
	}
	segs := uint64(SegCount(1 << 20))
	sent := h.client.PacketsSent()
	// SYN + handshake ACK + REQ + data ACKs; delayed ACK should keep data
	// ACKs near segs/2.
	if sent > segs*3/4+10 {
		t.Fatalf("client sent %d packets for %d segments — delayed ACK not coalescing", sent, segs)
	}
	if sent < segs/3 {
		t.Fatalf("client sent only %d packets — ACK clocking broken?", sent)
	}
}

func TestTCPSequentialRequestsOneConnection(t *testing.T) {
	h := newHarness(t, newTCPFileApp(t, 16, 0), netsim.LinkConfig{Latency: sim.Millisecond})
	var done []Response
	conn := h.client.Connect("svc:g", nil)
	for i := 0; i < 5; i++ {
		if err := h.client.Request(conn, getReq{Bytes: 10 << 10}, func(r Response) { done = append(done, r) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.loop.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(done) != 5 {
		t.Fatalf("completed %d/5 pipelined requests", len(done))
	}
}

func TestTCPRequestBeforeConnectQueues(t *testing.T) {
	h := newHarness(t, newTCPFileApp(t, 16, 0), netsim.LinkConfig{Latency: sim.Millisecond})
	var got bool
	conn := h.client.Connect("svc:g", nil)
	// Issue immediately — handshake not yet complete.
	if err := h.client.Request(conn, getReq{Bytes: 1000}, func(Response) { got = true }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("queued request never completed")
	}
}

func TestTCPRecoversFromLossViaRTO(t *testing.T) {
	// 10% loss both ways; server RTO drives retransmission.
	h := newHarness(t, newTCPFileApp(t, 8, vtime.Virtual(60*sim.Millisecond)),
		netsim.LinkConfig{Latency: 2 * sim.Millisecond, LossProb: 0.10})
	h.client.Retry = 500 * sim.Millisecond
	var done bool
	conn := h.client.Connect("svc:g", nil)
	if err := h.client.Request(conn, getReq{Bytes: 64 << 10}, func(Response) { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("download never completed despite RTO retransmissions")
	}
}

func TestUDPDownload(t *testing.T) {
	app := &udpFileApp{srv: NewUDPServer()}
	app.srv.OnRequest = func(ctx guest.Ctx, src netsim.Addr, conn, respID uint64, req any) {
		g := req.(getReq)
		app.srv.Respond(ctx, src, conn, respID, g.Bytes)
	}
	h := newHarness(t, app, netsim.LinkConfig{Latency: 2 * sim.Millisecond})
	var done []Response
	conn := h.client.OpenUDP("svc:g")
	if err := h.client.Request(conn, getReq{Bytes: 100 << 10}, func(r Response) { done = append(done, r) }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("udp downloads completed: %d", len(done))
	}
	// UDP: client sends only the request — no ACKs at all.
	if h.client.PacketsSent() != 1 {
		t.Fatalf("client sent %d packets over UDP, want 1", h.client.PacketsSent())
	}
}

func TestUDPNackRepairUnderLoss(t *testing.T) {
	app := &udpFileApp{srv: NewUDPServer()}
	app.srv.OnRequest = func(ctx guest.Ctx, src netsim.Addr, conn, respID uint64, req any) {
		g := req.(getReq)
		app.srv.Respond(ctx, src, conn, respID, g.Bytes)
	}
	h := newHarness(t, app, netsim.LinkConfig{Latency: 2 * sim.Millisecond, LossProb: 0.15})
	h.client.NACKTimeout = 30 * sim.Millisecond
	h.client.Retry = 500 * sim.Millisecond
	var done bool
	conn := h.client.OpenUDP("svc:g")
	if err := h.client.Request(conn, getReq{Bytes: 64 << 10}, func(Response) { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("NACK repair never completed the download")
	}
}

func TestClientValidation(t *testing.T) {
	loop := sim.NewLoop()
	net, err := netsim.New(loop, sim.NewSource(1).Stream("n"), netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(nil, loop, "c"); !errors.Is(err, ErrTransport) {
		t.Fatal("nil net should fail")
	}
	if _, err := NewClient(net, loop, ""); !errors.Is(err, ErrTransport) {
		t.Fatal("empty addr should fail")
	}
	c, err := NewClient(net, loop, "c")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Request(999, nil, nil); !errors.Is(err, ErrTransport) {
		t.Fatal("unknown conn should fail")
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewTCPServer(0); !errors.Is(err, ErrTransport) {
		t.Fatal("window 0 should fail")
	}
}
