// Package transport provides the teaching-grade transports the evaluation
// needs: a TCP-like reliable stream (three-way handshake, cumulative ACKs
// with delayed-ACK coalescing, fixed window, server-side RTO) and a
// UDP-like datagram blast, plus a NACK-reliable variant of the latter (the
// paper's Sec. VII-C adaptation argument: reliability via negative
// acknowledgments keeps packets out of the server's inbound path, which is
// where StopWatch's cost lives).
//
// The server sides run inside guests (driven by guest.Ctx); the client
// sides are fabric endpoints. The protocol is modeled at segment
// granularity with MSS-sized data packets.
package transport

import "errors"

// ErrTransport reports invalid transport use.
var ErrTransport = errors.New("transport: invalid")

// MSS is the data bytes carried per segment.
const MSS = 1448

// Sizes of wire artifacts (bytes), roughly Ethernet-framed.
const (
	CtrlSize = 66   // SYN / SYN-ACK / ACK / NACK
	ReqSize  = 120  // request carrying an op descriptor
	DataSize = 1514 // full-MSS data segment
)

// Flag enumerates segment types.
type Flag int

// Segment flags.
const (
	FlagSYN Flag = iota + 1
	FlagSYNACK
	FlagACK
	FlagREQ
	FlagDATA
	FlagNACK
)

func (f Flag) String() string {
	switch f {
	case FlagSYN:
		return "SYN"
	case FlagSYNACK:
		return "SYNACK"
	case FlagACK:
		return "ACK"
	case FlagREQ:
		return "REQ"
	case FlagDATA:
		return "DATA"
	case FlagNACK:
		return "NACK"
	default:
		return "?"
	}
}

// Segment is the wire payload for both transports.
type Segment struct {
	Conn  uint64 // connection id (client-chosen)
	Flags Flag
	// DATA: index of this segment within the response; ACK: cumulative next
	// expected index; NACK: first missing index.
	Seq int
	// DATA: total segments in the response.
	Total int
	// RespID identifies which request a DATA segment answers.
	RespID uint64
	// REQ: opaque request descriptor.
	Req any
}

// SegCount returns the number of MSS segments needed for n bytes.
func SegCount(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + MSS - 1) / MSS
}

// segSize returns the wire size of the i-th of total segments for n bytes.
func segSize(i, total, n int) int {
	if i < total-1 {
		return DataSize
	}
	rem := n - (total-1)*MSS
	if rem <= 0 {
		return CtrlSize
	}
	return rem + (DataSize - MSS)
}
