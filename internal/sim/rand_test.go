package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamsIndependentOfRegistrationOrder(t *testing.T) {
	s1 := NewSource(7)
	a1 := s1.Stream("alpha")
	_ = s1.Stream("beta")
	first := []float64{a1.Float64(), a1.Float64(), a1.Float64()}

	s2 := NewSource(7)
	_ = s2.Stream("gamma") // different interleaving of stream creation
	a2 := s2.Stream("alpha")
	for i, want := range first {
		if got := a2.Float64(); got != want {
			t.Fatalf("draw %d: got %v want %v — streams not order-independent", i, got, want)
		}
	}
}

func TestStreamsDifferByLabelAndSeed(t *testing.T) {
	s := NewSource(7)
	a := s.Stream("alpha")
	b := s.Stream("beta")
	if a.Float64() == b.Float64() {
		t.Fatal("distinct labels produced identical first draws")
	}
	c := NewSource(8).Stream("alpha")
	d := NewSource(7).Stream("alpha")
	if c.Float64() == d.Float64() {
		t.Fatal("distinct seeds produced identical first draws")
	}
}

func TestExpMean(t *testing.T) {
	r := NewSource(1).Stream("exp")
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0) // mean 0.5
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) sample mean = %v, want ~0.5", mean)
	}
}

func TestExpDurMean(t *testing.T) {
	r := NewSource(1).Stream("expdur")
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.ExpDur(10 * Millisecond))
	}
	mean := sum / n / float64(Millisecond)
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("ExpDur(10ms) sample mean = %vms, want ~10ms", mean)
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewSource(3).Stream("uni")
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
	if got := r.Uniform(4, 4); got != 4 {
		t.Fatalf("degenerate Uniform = %v, want 4", got)
	}
}

func TestUniformDurBounds(t *testing.T) {
	r := NewSource(3).Stream("unidur")
	for i := 0; i < 10000; i++ {
		v := r.UniformDur(Millisecond, 2*Millisecond)
		if v < Millisecond || v >= 2*Millisecond {
			t.Fatalf("UniformDur out of range: %v", v)
		}
	}
	if got := r.UniformDur(5, 5); got != 5 {
		t.Fatalf("degenerate UniformDur = %v, want 5", got)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewSource(4).Stream("bool")
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	p := float64(n) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
}

func TestExpZeroRate(t *testing.T) {
	r := NewSource(5).Stream("z")
	if !math.IsInf(r.Exp(0), 1) {
		t.Fatal("Exp(0) should be +Inf")
	}
	if got := r.ExpDur(0); got != 0 {
		t.Fatalf("ExpDur(0) = %v, want 0", got)
	}
}

// Property: the same (seed,label) always reproduces the same prefix.
func TestStreamReproducibility(t *testing.T) {
	f := func(seed uint64, label string) bool {
		a := NewSource(seed).Stream(label)
		b := NewSource(seed).Stream(label)
		for i := 0; i < 16; i++ {
			if a.Int63() != b.Int63() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClockReadAndInverse(t *testing.T) {
	c := NewClock(5*Second, 1e-4)
	if got := c.Read(0); got != 5*Second {
		t.Fatalf("Read(0) = %v, want offset", got)
	}
	at := Time(1e9)
	h := c.Read(at)
	want := 5*Second + at + Time(float64(at)*1e-4)
	if h != want {
		t.Fatalf("Read = %v, want %v", h, want)
	}
	back := c.FabricFor(h)
	if diff := back - at; diff < -2 || diff > 2 {
		t.Fatalf("FabricFor(Read(t)) = %v, want ~%v", back, at)
	}
	if c.Offset() != 5*Second || c.Drift() != 1e-4 {
		t.Fatal("accessors wrong")
	}
}

func TestClockZeroDrift(t *testing.T) {
	c := NewClock(0, 0)
	for _, tt := range []Time{0, 1, Second, 100 * Second} {
		if c.Read(tt) != tt {
			t.Fatalf("zero clock should be identity at %v", tt)
		}
		if c.FabricFor(tt) != tt {
			t.Fatalf("zero clock inverse should be identity at %v", tt)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatal("FromSeconds wrong")
	}
	if FromMillis(2.5) != 2500*Microsecond {
		t.Fatal("FromMillis wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds wrong")
	}
	if (3 * Millisecond).Milliseconds() != 3.0 {
		t.Fatal("Milliseconds wrong")
	}
	if Never.String() != "never" {
		t.Fatal("Never.String wrong")
	}
	if (1500 * Millisecond).String() != "t=1.500000s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
	if (2 * Second).Duration().Seconds() != 2.0 {
		t.Fatal("Duration wrong")
	}
}
