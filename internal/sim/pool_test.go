package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// TestEventPoolReuse: a fired event's *Event is recycled for later
// schedulings (the pool-miss counter plateaus), and its generation bump
// makes retained handles stale.
func TestEventPoolReuse(t *testing.T) {
	l := NewLoop()
	e1 := l.At(1, "a", func() {})
	h1 := e1.Handle()
	if !h1.Pending() {
		t.Fatal("fresh handle should be pending")
	}
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if h1.Pending() {
		t.Fatal("handle must go stale after fire")
	}
	if got := l.EventAllocs(); got != 1 {
		t.Fatalf("EventAllocs = %d, want 1", got)
	}
	e2 := l.At(2, "b", func() {})
	if e2 != e1 {
		t.Fatal("fired event was not recycled")
	}
	if h1.Pending() {
		t.Fatal("stale handle must not resurrect on pointer reuse")
	}
	if got := l.EventAllocs(); got != 1 {
		t.Fatalf("EventAllocs after reuse = %d, want 1", got)
	}
	// Steady-state: a self-re-arming timer chain plateaus at two Events
	// (the firing event is recycled only after its callback — which
	// schedules the next tick — returns), no matter how many ticks run.
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 100 {
			l.After(1, "tick", tick)
		}
	}
	l.After(1, "tick", tick)
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l.EventAllocs(); got > 2 {
		t.Fatalf("EventAllocs after 100 sequential timers = %d, want <= 2", got)
	}
}

// TestCancelRecyclesEvent: canceling returns the event to the pool; a stale
// handle cancel is a no-op even after the pooled Event is re-armed by an
// unrelated scheduling.
func TestCancelRecyclesEvent(t *testing.T) {
	l := NewLoop()
	e := l.At(5, "x", func() { t.Fatal("canceled event fired") })
	h := e.Handle()
	l.Cancel(e)
	if h.Pending() {
		t.Fatal("handle pending after cancel")
	}
	// The recycled Event now carries an unrelated callback.
	fired := false
	e2 := l.At(3, "y", func() { fired = true })
	if e2 != e {
		t.Fatal("canceled event was not recycled")
	}
	// Canceling through the STALE handle must not kill the new event.
	l.CancelHandle(h)
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("stale CancelHandle killed an unrelated re-armed event")
	}
}

// TestRescheduleSemantics: a pending event moves and keeps its callback; a
// fired or canceled event returns nil and is NOT silently re-armed from its
// (stale, possibly recycled) name/closure pair.
func TestRescheduleSemantics(t *testing.T) {
	l := NewLoop()
	var at Time
	e := l.At(5, "x", func() { at = l.Now() })
	if got := l.Reschedule(e, 9); got != e {
		t.Fatalf("Reschedule(pending) = %v, want the same armed event", got)
	}
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 9 {
		t.Fatalf("rescheduled event fired at %v, want 9", at)
	}
	// Fired: nothing to re-arm.
	if got := l.Reschedule(e, 20); got != nil {
		t.Fatalf("Reschedule(fired) = %v, want nil", got)
	}
	if l.Pending() != 0 {
		t.Fatal("Reschedule(fired) re-armed a stale event")
	}
	// Canceled: same rule.
	e2 := l.At(30, "y", func() {})
	l.Cancel(e2)
	if got := l.Reschedule(e2, 40); got != nil {
		t.Fatalf("Reschedule(canceled) = %v, want nil", got)
	}
	if l.Pending() != 0 {
		t.Fatal("Reschedule(canceled) re-armed a stale event")
	}
}

// TestRescheduleInsideCallback: the firing event is detached during its own
// callback; rescheduling it there must not re-arm it.
func TestRescheduleInsideCallback(t *testing.T) {
	l := NewLoop()
	var e *Event
	fired := 0
	e = l.At(1, "self", func() {
		fired++
		if got := l.Reschedule(e, 5); got != nil {
			t.Errorf("Reschedule(self) during callback = %v, want nil", got)
		}
	})
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
}

// TestAtTimerTypedCallback: AtTimer passes its argument words through and
// interleaves deterministically with closure events.
func TestAtTimerTypedCallback(t *testing.T) {
	l := NewLoop()
	type rec struct {
		label string
		u     uint64
	}
	var got []rec
	l.AtTimer(2, "typed", func(a, b any, u uint64) {
		got = append(got, rec{a.(string) + b.(string), u})
	}, "x", "y", 42)
	l.At(1, "plain", func() { got = append(got, rec{"plain", 0}) })
	l.AfterTimer(3, "typed2", func(a, _ any, u uint64) {
		got = append(got, rec{a.(string), u})
	}, "z", nil, 7)
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []rec{{"plain", 0}, {"xy", 42}, {"z", 7}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// shadowEvent / shadowHeap: the container/heap reference model the rebuilt
// scheduler is checked against.
type shadowEvent struct {
	when  Time
	seq   uint64
	id    int
	index int
}

type shadowHeap []*shadowEvent

func (h shadowHeap) Len() int { return len(h) }
func (h shadowHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h shadowHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *shadowHeap) Push(x any) {
	e := x.(*shadowEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *shadowHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// TestHeapShadowModel drives 10k random At/Cancel/Reschedule operations
// through the 4-ary pooled heap and a container/heap shadow sharing one
// logical sequence counter, then verifies both fire the same ids in the
// same order.
func TestHeapShadowModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLoop()
	var sh shadowHeap
	var seq uint64

	var firedReal []int
	type livePair struct {
		h  Handle
		se *shadowEvent
	}
	var live []livePair

	nextID := 0
	const ops = 10000
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 6: // schedule
			when := Time(rng.Intn(1 << 20))
			id := nextID
			nextID++
			e := l.At(when, "s", func() { firedReal = append(firedReal, id) })
			se := &shadowEvent{when: e.When, seq: seq, id: id}
			seq++
			heap.Push(&sh, se)
			live = append(live, livePair{h: e.Handle(), se: se})
		case k < 8: // cancel a random live-ish entry (possibly stale)
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			p := live[i]
			wasPending := p.h.Pending()
			l.CancelHandle(p.h)
			if wasPending != (p.se.index >= 0) {
				t.Fatalf("pending mismatch: real %v shadow %v", wasPending, p.se.index >= 0)
			}
			if p.se.index >= 0 {
				heap.Remove(&sh, p.se.index)
			}
			live = append(live[:i], live[i+1:]...)
		default: // reschedule a random entry (possibly stale)
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			p := live[i]
			when := Time(rng.Intn(1 << 20))
			if !p.h.Pending() {
				// Stale: the pooled Event may already be someone else's;
				// per the aliasing rule it must not be touched. Drop it.
				live = append(live[:i], live[i+1:]...)
				continue
			}
			if when < l.Now() {
				when = l.Now()
			}
			if got := l.Reschedule(p.h.e, when); got == nil {
				t.Fatal("Reschedule(pending) returned nil")
			}
			p.se.when = when
			p.se.seq = seq
			seq++
			// The real loop consumed one sequence number too; mirror it.
			heap.Fix(&sh, p.se.index)
		}
		// Occasionally advance time and fire a prefix.
		if op%97 == 0 {
			horizon := l.Now() + Time(rng.Intn(1<<18))
			if err := l.RunUntil(horizon); err != nil {
				t.Fatalf("RunUntil: %v", err)
			}
			for len(sh) > 0 && sh[0].when <= horizon {
				se := heap.Pop(&sh).(*shadowEvent)
				expect := se.id
				if len(firedReal) == 0 {
					t.Fatalf("shadow fired id %d, real loop fired nothing", expect)
				}
				if firedReal[0] != expect {
					t.Fatalf("fire order diverged: real %d shadow %d", firedReal[0], expect)
				}
				firedReal = firedReal[1:]
			}
			if len(firedReal) != 0 {
				t.Fatalf("real loop fired %d extra events", len(firedReal))
			}
		}
	}
	// Drain both completely.
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for len(sh) > 0 {
		se := heap.Pop(&sh).(*shadowEvent)
		if len(firedReal) == 0 {
			t.Fatalf("shadow fired id %d, real loop fired nothing", se.id)
		}
		if firedReal[0] != se.id {
			t.Fatalf("drain order diverged: real %d shadow %d", firedReal[0], se.id)
		}
		firedReal = firedReal[1:]
	}
	if len(firedReal) != 0 {
		t.Fatalf("real loop fired %d extra events", len(firedReal))
	}
}
