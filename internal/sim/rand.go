package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source produces named, independent, deterministic random streams. Streams
// are derived from a master seed and a string label, so adding a new stream
// to a component never perturbs the draws seen by existing components — a
// property the figure harnesses rely on for stable series.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory for the given master seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Stream returns the deterministic stream named label.
func (s *Source) Stream(label string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	mixed := splitmix64(s.seed ^ h.Sum64())
	return &Rand{r: rand.New(rand.NewSource(int64(mixed)))}
}

// splitmix64 is the SplitMix64 finalizer, used to decorrelate seed/label
// combinations before they reach math/rand.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FastStream returns the deterministic SplitMix64 counter stream named
// label: 8 bytes of state and no seeding pass, where Stream costs a ~5KB
// math/rand source and a 607-word seed loop. Use it where streams are
// created in bulk and only need the simple draws FastRand offers — the
// fabric holds one per directed link. Like Stream, the sequence is a pure
// function of (master seed, label); creation order is irrelevant.
func (s *Source) FastStream(label string) *FastRand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return &FastRand{state: splitmix64(s.seed ^ h.Sum64())}
}

// FastRand is a SplitMix64 counter generator: statistically solid for
// physics draws (jitter, loss), trivially cheap to create, 8 bytes of
// state. Not safe for concurrent use.
type FastRand struct {
	state uint64
}

func (r *FastRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform draw in [0,1).
func (r *FastRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// UniformDur returns a uniform duration in [lo,hi).
func (r *FastRand) UniformDur(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	// Modulo bias is ~range/2^64 — immaterial for sub-millisecond jitter.
	return lo + Time(r.next()%uint64(hi-lo))
}

// Bool returns true with probability p.
func (r *FastRand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Rand is a deterministic random stream with the distribution helpers the
// simulator needs. It is not safe for concurrent use; the event loop is
// single-threaded by design.
type Rand struct {
	r *rand.Rand
}

// Float64 returns a uniform draw in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return r.r.Int63() }

// Uint64 returns a uniform 64-bit draw. Used to derive sub-seeds (e.g. the
// fabric's per-link streams) from a component's stream without consuming a
// label in the Source namespace.
func (r *Rand) Uint64() uint64 { return r.r.Uint64() }

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Exp returns an exponential draw with the given rate (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.r.ExpFloat64() / rate
}

// ExpDur returns an exponential duration with the given mean.
func (r *Rand) ExpDur(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(r.r.ExpFloat64() * float64(mean))
}

// Uniform returns a uniform draw in [lo,hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.r.Float64()
}

// UniformDur returns a uniform duration in [lo,hi).
func (r *Rand) UniformDur(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.r.Int63n(int64(hi-lo)))
}

// Normal returns a normal draw with the given mean and standard deviation.
func (r *Rand) Normal(mean, sd float64) float64 {
	return mean + sd*r.r.NormFloat64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.r.Float64() < p
}
