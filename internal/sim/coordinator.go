package sim

import "fmt"

// Coordinator synchronizes one control Loop and K shard Loops under
// conservative lookahead. Simulated time advances in half-open windows
// [cur, w) whose width never exceeds the fabric's minimum link latency L:
// within a window every shard may run independently (in parallel, when
// enabled), because no event it executes can affect another shard before
// the window ends — any cross-shard packet sent at time s arrives at
// s+latency >= s+L >= w. At each window boundary the coordinator runs a
// barrier: cross-shard traffic parked in per-shard outboxes is exchanged
// (injected into destination loops with its partition-invariant arrival
// key), deferred barrier work (e.g. stall suspicions) is drained in a
// sorted, shard-count-independent order, and the control loop catches up
// to the barrier time.
//
// Two properties follow:
//
//   - Determinism across K. The window grid depends only on L, the horizon
//     and control-event times — not on K — and same-time event order inside
//     every loop is fixed by the (When, band, k1, k2, seq) key, which
//     travels with the traffic rather than with the scheduling order. The
//     same seed therefore produces byte-identical op logs and output
//     digests for K=1 and K>1, sequential or parallel.
//
//   - Control-before-data at equal timestamps. Windows are cut at the next
//     pending control event, and shards execute strictly-before the cut,
//     so a control action at time t always runs before any data event at t.
type Coordinator struct {
	ctrl   *Loop
	shards []*Loop

	// lookahead returns the current conservative window bound L: the
	// minimum latency of any fabric link. It is re-read every window so
	// that barrier-time topology changes (SetLink) take effect, and it is
	// deliberately the global minimum — not the per-partition cross-shard
	// minimum — so the window grid is identical for every K.
	lookahead func() Time

	// exchange drains cross-shard outboxes into destination loops.
	// onBarrier runs deferred barrier work. Both run on the coordinator
	// goroutine while all shard loops are parked at the barrier time.
	exchange  func()
	onBarrier func()

	parallel bool
	depth    int // RunUntil re-entrancy depth; workers span the outermost call

	workers []chan shardCmd
	done    []chan error
}

// shardCmd is one window grant to a shard worker.
type shardCmd struct {
	t         Time
	inclusive bool // RunUntil(t) instead of RunBefore(t)
}

// NewCoordinator builds a coordinator over a control loop and one or more
// shard loops. lookahead must return a positive bound; exchange and
// onBarrier may be nil.
func NewCoordinator(ctrl *Loop, shards []*Loop, lookahead func() Time, exchange, onBarrier func()) *Coordinator {
	if ctrl == nil || len(shards) == 0 || lookahead == nil {
		panic("sim: coordinator needs a control loop, >=1 shard, and a lookahead bound")
	}
	return &Coordinator{
		ctrl:      ctrl,
		shards:    shards,
		lookahead: lookahead,
		exchange:  exchange,
		onBarrier: onBarrier,
	}
}

// SetParallel selects goroutine-per-shard window execution. Determinism is
// unaffected — parallel and sequential modes produce identical schedules —
// so this is purely a throughput knob. It may only be toggled while no
// RunUntil is in flight.
func (c *Coordinator) SetParallel(on bool) {
	if c.depth != 0 {
		panic("sim: SetParallel during RunUntil")
	}
	c.parallel = on
}

// Parallel reports whether goroutine-per-shard mode is selected.
func (c *Coordinator) Parallel() bool { return c.parallel }

// Shards returns the shard loops (read-only; used for aggregate stats).
func (c *Coordinator) Shards() []*Loop { return c.shards }

// Ctrl returns the control loop.
func (c *Coordinator) Ctrl() *Loop { return c.ctrl }

// FiredTotal sums executed events across the control loop and all shards.
func (c *Coordinator) FiredTotal() uint64 {
	total := c.ctrl.Fired()
	for _, s := range c.shards {
		total += s.Fired()
	}
	return total
}

// startWorkers spawns one persistent goroutine per shard. The channel
// handshake (cmd send, done receive) establishes the happens-before edges
// that make barrier-time access to shard state race-free.
func (c *Coordinator) startWorkers() {
	c.workers = make([]chan shardCmd, len(c.shards))
	c.done = make([]chan error, len(c.shards))
	for i := range c.shards {
		cmd := make(chan shardCmd)
		done := make(chan error)
		c.workers[i] = cmd
		c.done[i] = done
		go func(l *Loop, cmd <-chan shardCmd, done chan<- error) {
			for w := range cmd {
				if w.inclusive {
					done <- l.RunUntil(w.t)
				} else {
					done <- l.RunBefore(w.t)
				}
			}
		}(c.shards[i], cmd, done)
	}
}

// stopWorkers shuts the per-shard goroutines down; they hold no state, so
// this is leak-free across repeated RunUntil calls (bench iterations).
func (c *Coordinator) stopWorkers() {
	for _, cmd := range c.workers {
		close(cmd)
	}
	c.workers = nil
	c.done = nil
}

// runShards grants the window ending at t to every shard and waits for all
// of them to park there. Sequential mode visits shards in index order; the
// schedule is identical either way.
func (c *Coordinator) runShards(t Time, inclusive bool) error {
	if c.workers != nil {
		for _, cmd := range c.workers {
			cmd <- shardCmd{t: t, inclusive: inclusive}
		}
		var first error
		for _, done := range c.done {
			if err := <-done; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for _, s := range c.shards {
		var err error
		if inclusive {
			err = s.RunUntil(t)
		} else {
			err = s.RunBefore(t)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances the whole simulation to t: all events with When <= t on
// the control loop and every shard loop execute, and every loop is left
// positioned at t. Nested calls (a control callback running the simulation
// further) are permitted and execute sequentially within the outer call's
// barrier.
func (c *Coordinator) RunUntil(t Time) error {
	c.depth++
	if c.depth == 1 && c.parallel && len(c.shards) > 1 {
		c.startWorkers()
	}
	defer func() {
		c.depth--
		if c.depth == 0 && c.workers != nil {
			c.stopWorkers()
		}
	}()

	cur := c.ctrl.Now()
	for {
		// A nested RunUntil may have advanced the control clock while a
		// barrier callback ran; never step backwards.
		if n := c.ctrl.Now(); n > cur {
			cur = n
		}
		// Barrier: merge cross-shard traffic, drain deferred work, then
		// let the control loop catch up. Control events at cur run here,
		// before any shard executes a data event at cur.
		if c.exchange != nil {
			c.exchange()
		}
		if c.onBarrier != nil {
			c.onBarrier()
		}
		if err := c.ctrl.RunUntil(cur); err != nil {
			return err
		}
		if cur >= t {
			break
		}
		// Next window: bounded by lookahead, the horizon, and the next
		// control event (so control stays ahead of same-time data).
		la := c.lookahead()
		if la <= 0 {
			panic(fmt.Sprintf("sim: non-positive lookahead %d", la))
		}
		w := cur + la
		if w > t {
			w = t
		}
		if nc := c.ctrl.PeekNextEventTime(); nc < w {
			w = nc
		}
		if err := c.runShards(w, false); err != nil {
			return err
		}
		cur = w
	}
	// Horizon reached: shards still hold events at exactly t (windows are
	// half-open). Run them inclusively; cross-shard traffic they emit
	// arrives strictly after t and is exchanged by the next call.
	return c.runShards(t, true)
}
