package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLoopFiresInOrder(t *testing.T) {
	l := NewLoop()
	var got []Time
	for _, d := range []Time{5, 1, 3, 2, 4} {
		d := d
		l.At(d, "e", func() { got = append(got, d) })
	}
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch: got %v want %v", got, want)
		}
	}
	if l.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", l.Now())
	}
}

func TestLoopTieBreakBySchedulingOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(7, "tie", func() { got = append(got, i) })
	}
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break violated FIFO: %v", got)
		}
	}
}

func TestLoopEventsScheduledDuringRun(t *testing.T) {
	l := NewLoop()
	var got []Time
	l.At(1, "a", func() {
		got = append(got, l.Now())
		l.After(2, "b", func() { got = append(got, l.Now()) })
	})
	l.At(2, "c", func() { got = append(got, l.Now()) })
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestLoopPastSchedulingClamped(t *testing.T) {
	l := NewLoop()
	fired := false
	l.At(10, "outer", func() {
		l.At(3, "past", func() {
			fired = true
			if l.Now() != 10 {
				t.Errorf("past event ran at %v, want clamp to 10", l.Now())
			}
		})
	})
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
}

func TestLoopCancel(t *testing.T) {
	l := NewLoop()
	fired := false
	e := l.At(5, "x", func() { fired = true })
	l.Cancel(e)
	if !e.Canceled() {
		t.Fatal("event should report canceled")
	}
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double-cancel is a no-op.
	l.Cancel(e)
}

func TestLoopReschedule(t *testing.T) {
	l := NewLoop()
	var at Time
	e := l.At(5, "x", func() { at = l.Now() })
	l.Reschedule(e, 9)
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 9 {
		t.Fatalf("rescheduled event fired at %v, want 9", at)
	}
}

func TestLoopStop(t *testing.T) {
	l := NewLoop()
	n := 0
	l.At(1, "a", func() { n++; l.Stop() })
	l.At(2, "b", func() { n++ })
	if err := l.Run(); err != ErrStopped {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if n != 1 {
		t.Fatalf("fired %d events, want 1", n)
	}
	// Resume runs the remainder.
	if err := l.Run(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if n != 2 {
		t.Fatalf("fired %d events total, want 2", n)
	}
}

func TestLoopRunUntil(t *testing.T) {
	l := NewLoop()
	var got []Time
	for _, d := range []Time{1, 5, 10} {
		d := d
		l.At(d, "e", func() { got = append(got, d) })
	}
	if err := l.RunUntil(5); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 2 || l.Now() != 5 {
		t.Fatalf("got %v now=%v, want 2 events and now=5", got, l.Now())
	}
	if err := l.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("remaining event did not fire: %v", got)
	}
}

func TestLoopRunUntilAdvancesEmptyQueue(t *testing.T) {
	l := NewLoop()
	if err := l.RunUntil(42); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if l.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", l.Now())
	}
}

// Property: any batch of randomly-timed events fires in nondecreasing time
// order, with FIFO among equal times.
func TestLoopOrderProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		l := NewLoop()
		type rec struct {
			when Time
			seq  int
		}
		var fired []rec
		for i, v := range raw {
			when := Time(v % 64) // force many ties
			i := i
			l.At(when, "p", func() { fired = append(fired, rec{l.Now(), i}) })
		}
		if err := l.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].when != fired[b].when {
				return fired[a].when < fired[b].when
			}
			return fired[a].seq < fired[b].seq
		}) {
			return false
		}
		// Already in fire order, so sortedness check above suffices; also
		// confirm times are those requested.
		for k, r := range fired {
			if r.when != Time(raw[r.seq]%64) {
				t.Logf("event %d fired at %v", k, r.when)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopDeterminism(t *testing.T) {
	run := func() []Time {
		l := NewLoop()
		src := NewSource(99)
		rng := src.Stream("det")
		var got []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			got = append(got, l.Now())
			if depth >= 4 {
				return
			}
			for i := 0; i < 3; i++ {
				l.After(Time(rng.Intn(100)+1), "d", func() { spawn(depth + 1) })
			}
		}
		l.At(0, "root", func() { spawn(0) })
		if err := l.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
