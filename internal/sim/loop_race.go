//go:build race

package sim

// Race builds turn on the event pool's poisoning checks: recycled events get
// a poisoned Name/When, and acquire panics if a pooled event was mutated
// after release — the signature of a caller retaining a recycled *Event in
// violation of the aliasing rule documented on Event.
func init() { raceChecks = true }
