// Package sim provides a deterministic discrete-event simulation kernel:
// an event loop with a stable total order on events, seeded random-number
// streams, and per-host drifting real-time clocks.
//
// Everything in the StopWatch reproduction runs on this kernel. Determinism
// is a hard requirement: two runs with the same seed produce bit-identical
// event sequences, which is what makes replica-divergence detection and the
// figure-regeneration harnesses meaningful.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of simulated fabric time, in nanoseconds since the
// start of the simulation. It is the global timeline of the event loop;
// individual hosts observe skewed versions of it through Clock.
type Time int64

// Common durations in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable instant.
const Never Time = 1<<63 - 1

// Duration converts t to a time.Duration for display purposes.
func (t Time) Duration() time.Duration { return time.Duration(int64(t)) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the instant with millisecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("t=%.6fs", t.Seconds())
}

// FromSeconds converts seconds to a simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts milliseconds to a simulated Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }
