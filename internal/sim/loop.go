package sim

import (
	"errors"
	"fmt"
)

// ErrStopped is returned by Run when the loop was halted by Stop before the
// horizon or event exhaustion was reached.
var ErrStopped = errors.New("sim: loop stopped")

// TimerFunc is the typed-callback form of an event: instead of capturing
// state in a per-event closure (one heap allocation per scheduling), the
// callback is a package-level function and its state rides in the event's
// two pointer slots and one scalar slot. The hot per-packet paths (chunk
// timers, device-model processing, proposal deadlines, fabric delivery)
// schedule exclusively through this form.
type TimerFunc func(a, b any, u uint64)

// Event is a scheduled callback. Events fire in (When, order-of-scheduling)
// order; the sequence number makes the ordering total and deterministic.
//
// Events are pooled: once an event fires or is canceled, the loop recycles
// its *Event for a future scheduling. The aliasing rule is therefore strict:
// a caller must never retain or dereference an *Event after it has fired or
// been canceled — the pointer may already be someone else's event. Code that
// holds an event across callbacks must either clear its reference inside the
// callback (before anything else can schedule) or hold a generation-checked
// Handle, which detects recycling and turns stale cancels into no-ops.
// In race builds the pool additionally poisons recycled events and verifies
// freelist discipline on every checkout.
type Event struct {
	When Time   // fire time; read-only for callers
	Name string // diagnostic label, not used for ordering

	fn   func()
	tfn  TimerFunc
	a, b any
	u    uint64

	// Partition-invariant ordering key for same-timestamp events. Local
	// events (band 0) order by scheduling sequence, exactly as before.
	// Fabric arrivals (band 1, via AtArrivalTimer) order by (k1, k2) —
	// a stable hash of the directed link and the per-link send counter —
	// so the order of same-time arrivals from different sources does not
	// depend on which shard's loop they were scheduled on, or in what
	// order a coordinator injected them.
	band uint8
	k1   uint64
	k2   uint64

	seq   uint64
	gen   uint64 // bumped on every recycle; Handle staleness check
	index int32  // heap index; -1 once fired, canceled, or free
}

// Canceled reports whether the event was canceled or has already fired.
func (e *Event) Canceled() bool { return e.index < 0 }

// Gen returns the event's current generation. It changes every time the
// pooled event is recycled, which is how a Handle detects staleness.
func (e *Event) Gen() uint64 { return e.gen }

// Handle returns a weak, generation-checked reference to the event, safe to
// retain indefinitely: once the event fires or is canceled (and its *Event
// is recycled for an unrelated scheduling), the handle goes stale and
// Pending reports false. Take the handle immediately after scheduling, while
// the event is still pending.
func (e *Event) Handle() Handle { return Handle{e: e, gen: e.gen} }

// Handle is a weak reference to a pooled event. The zero Handle is valid and
// permanently stale. Unlike a raw *Event, a Handle may be kept after the
// event fires — the generation check makes stale use harmless.
type Handle struct {
	e   *Event
	gen uint64
}

// Pending reports whether the handle still refers to a live, queued event.
func (h Handle) Pending() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.index >= 0
}

// raceChecks enables pool-poisoning assertions; set by loop_race.go in
// -race builds.
var raceChecks = false

// Loop is a deterministic discrete-event loop built on a hand-rolled 4-ary
// indexed min-heap over a pooled event freelist: no container/heap interface
// indirection, no per-push boxing, and no steady-state Event garbage. The
// zero value is not usable; construct with NewLoop.
type Loop struct {
	now     Time
	pq      []*Event
	free    []*Event
	seq     uint64
	stopped bool
	fired   uint64
	horizon Time
	allocs  uint64 // pool misses: distinct Events ever allocated
}

// NewLoop returns an empty loop positioned at time zero.
func NewLoop() *Loop {
	return &Loop{horizon: Never}
}

// Now returns the current simulated fabric time.
func (l *Loop) Now() Time { return l.now }

// Fired returns the number of events executed so far.
func (l *Loop) Fired() uint64 { return l.fired }

// Pending returns the number of events still queued.
func (l *Loop) Pending() int { return len(l.pq) }

// EventAllocs returns how many distinct Event structs the loop has ever
// allocated — the pool-miss count. Steady-state workloads should see this
// plateau at the maximum concurrently-pending event count (tests).
func (l *Loop) EventAllocs() uint64 { return l.allocs }

// acquire checks an event out of the pool.
func (l *Loop) acquire() *Event {
	if n := len(l.free); n > 0 {
		e := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		if raceChecks && (e.index != -1 || e.fn != nil || e.tfn != nil || e.a != nil || e.b != nil || e.band != 0 || e.k1 != 0 || e.k2 != 0) {
			panic(fmt.Sprintf("sim: corrupted pooled event %+v — retained after fire/cancel?", e))
		}
		return e
	}
	l.allocs++
	return &Event{index: -1}
}

// release recycles a fired or canceled event. The generation bump is what
// invalidates outstanding Handles.
func (l *Loop) release(e *Event) {
	e.gen++
	e.fn = nil
	e.tfn = nil
	e.a = nil
	e.b = nil
	e.u = 0
	e.band = 0
	e.k1 = 0
	e.k2 = 0
	if raceChecks {
		e.Name = "sim:recycled"
		e.When = -1 << 60
	}
	l.free = append(l.free, e)
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and is reported by scheduling at the current instant
// instead (events never run backwards). The returned *Event is valid only
// until the event fires or is canceled (see the pooling rule on Event).
func (l *Loop) At(t Time, name string, fn func()) *Event {
	if t < l.now {
		t = l.now
	}
	e := l.acquire()
	e.When = t
	e.Name = name
	e.fn = fn
	l.insert(e)
	return e
}

// AtTimer schedules a typed callback at absolute time t: fn(a, b, u) runs at
// t with no closure allocation. Same clamping and pooling rules as At.
func (l *Loop) AtTimer(t Time, name string, fn TimerFunc, a, b any, u uint64) *Event {
	if t < l.now {
		t = l.now
	}
	e := l.acquire()
	e.When = t
	e.Name = name
	e.tfn = fn
	e.a = a
	e.b = b
	e.u = u
	l.insert(e)
	return e
}

// AtArrivalTimer schedules a fabric-arrival callback at absolute time t,
// ordered among same-time arrivals by the partition-invariant key (k1, k2)
// — by convention a stable hash of the directed link and the per-link send
// counter — rather than by scheduling order. Local events at the same time
// run first. This is what keeps cross-shard merges byte-identical to the
// single-loop schedule: the key travels with the packet, so it does not
// matter which shard's loop the arrival lands on.
func (l *Loop) AtArrivalTimer(t Time, name string, fn TimerFunc, a, b any, u, k1, k2 uint64) *Event {
	if t < l.now {
		t = l.now
	}
	e := l.acquire()
	e.When = t
	e.Name = name
	e.tfn = fn
	e.a = a
	e.b = b
	e.u = u
	e.band = 1
	e.k1 = k1
	e.k2 = k2
	l.insert(e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (l *Loop) After(d Time, name string, fn func()) *Event {
	return l.At(l.now+d, name, fn)
}

// AfterTimer schedules a typed callback d nanoseconds from now.
func (l *Loop) AfterTimer(d Time, name string, fn TimerFunc, a, b any, u uint64) *Event {
	return l.AtTimer(l.now+d, name, fn, a, b, u)
}

// Cancel removes a pending event and recycles it. Canceling a fired or
// already-canceled event is a no-op. The caller must drop its reference:
// after Cancel the *Event belongs to the pool.
func (l *Loop) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	l.remove(int(e.index))
	l.release(e)
}

// CancelHandle cancels through a weak handle: a no-op when the handle is
// stale (the event already fired, was canceled, or its Event was recycled).
func (l *Loop) CancelHandle(h Handle) {
	if h.e == nil || h.e.gen != h.gen {
		return
	}
	l.Cancel(h.e)
}

// Reschedule moves a pending event to a new time, keeping its callback, and
// returns the (same) armed event. A fired or canceled event cannot be
// rescheduled — its pooled Event may already carry an unrelated callback —
// so Reschedule returns nil and the caller must schedule a fresh event.
// (Historically this path silently re-armed the stale name/closure pair.)
func (l *Loop) Reschedule(e *Event, t Time) *Event {
	if e == nil || e.index < 0 {
		return nil
	}
	if t < l.now {
		t = l.now
	}
	e.When = t
	e.seq = l.seq
	l.seq++
	l.fix(int(e.index))
	return e
}

// less orders events by (When, band, k1, k2, seq): the deterministic total
// order. Local events (band 0, k1=k2=0) at the same instant keep their
// scheduling order; fabric arrivals (band 1) at the same instant order by
// the partition-invariant (link hash, link seq) key, after locals. The key
// — not insertion order — decides, so the order is identical whether the
// arrivals were scheduled by one loop or merged in from K shards.
func less(x, y *Event) bool {
	if x.When != y.When {
		return x.When < y.When
	}
	if x.band != y.band {
		return x.band < y.band
	}
	if x.band != 0 {
		if x.k1 != y.k1 {
			return x.k1 < y.k1
		}
		if x.k2 != y.k2 {
			return x.k2 < y.k2
		}
	}
	return x.seq < y.seq
}

// insert assigns the scheduling sequence number and pushes onto the heap.
func (l *Loop) insert(e *Event) {
	e.seq = l.seq
	l.seq++
	i := len(l.pq)
	l.pq = append(l.pq, e)
	e.index = int32(i)
	l.siftUp(i)
}

// siftUp restores the heap property upward from i (4-ary: parent (i-1)/4).
func (l *Loop) siftUp(i int) {
	e := l.pq[i]
	for i > 0 {
		p := (i - 1) >> 2
		pe := l.pq[p]
		if less(pe, e) {
			break
		}
		l.pq[i] = pe
		pe.index = int32(i)
		i = p
	}
	l.pq[i] = e
	e.index = int32(i)
}

// siftDown restores the heap property downward from i (children 4i+1..4i+4).
func (l *Loop) siftDown(i int) {
	e := l.pq[i]
	n := len(l.pq)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m, me := c, l.pq[c]
		hi := c + 4
		if hi > n {
			hi = n
		}
		for k := c + 1; k < hi; k++ {
			if ke := l.pq[k]; less(ke, me) {
				m, me = k, ke
			}
		}
		if less(e, me) {
			break
		}
		l.pq[i] = me
		me.index = int32(i)
		i = m
	}
	l.pq[i] = e
	e.index = int32(i)
}

// fix re-positions the event at i after its key changed.
func (l *Loop) fix(i int) {
	e := l.pq[i]
	l.siftUp(i)
	if int(e.index) == i {
		l.siftDown(i)
	}
}

// remove detaches the event at heap index i (it is NOT released).
func (l *Loop) remove(i int) {
	n := len(l.pq) - 1
	e := l.pq[i]
	last := l.pq[n]
	l.pq[n] = nil
	l.pq = l.pq[:n]
	if i != n {
		l.pq[i] = last
		last.index = int32(i)
		l.fix(i)
	}
	e.index = -1
}

// pop detaches and returns the minimum event (it is NOT released).
func (l *Loop) pop() *Event {
	top := l.pq[0]
	n := len(l.pq) - 1
	last := l.pq[n]
	l.pq[n] = nil
	l.pq = l.pq[:n]
	if n > 0 {
		l.pq[0] = last
		last.index = 0
		l.siftDown(0)
	}
	top.index = -1
	return top
}

// Stop halts Run after the currently executing event returns.
func (l *Loop) Stop() { l.stopped = true }

// HasPendingEvents reports whether any event is still queued. With
// PeekNextEventTime and ProcessNextEvent it forms the steppable interface a
// shard coordinator drives: the coordinator decides which loop advances,
// the loop only ever executes its own minimum.
func (l *Loop) HasPendingEvents() bool { return len(l.pq) > 0 }

// PeekNextEventTime returns the fire time of the earliest pending event,
// or Never when the queue is empty.
func (l *Loop) PeekNextEventTime() Time {
	if len(l.pq) == 0 {
		return Never
	}
	return l.pq[0].When
}

// ProcessNextEvent pops and executes the earliest pending event, advancing
// the loop clock to its fire time. It must not be called on an empty queue.
func (l *Loop) ProcessNextEvent() {
	next := l.pop()
	l.now = next.When
	l.fired++
	// The event is recycled only after the callback returns: during the
	// callback, Cancel/Reschedule on the (detached) event are safe
	// no-ops, and nothing scheduled inside the callback can be handed
	// this *Event while legacy references to it may still be live.
	if tfn := next.tfn; tfn != nil {
		tfn(next.a, next.b, next.u)
	} else if fn := next.fn; fn != nil {
		fn()
	}
	l.release(next)
}

// Run executes events in order until the queue is empty, the horizon is
// passed, or Stop is called. It returns ErrStopped in the latter case.
func (l *Loop) Run() error {
	l.stopped = false
	for l.HasPendingEvents() {
		if l.stopped {
			return ErrStopped
		}
		if l.PeekNextEventTime() > l.horizon {
			l.now = l.horizon
			return nil
		}
		l.ProcessNextEvent()
	}
	return nil
}

// RunUntil executes events with When <= t and leaves the loop positioned
// at t (or at the time of the last fired event if the queue drains early;
// the loop time still advances to t).
func (l *Loop) RunUntil(t Time) error {
	prev := l.horizon
	l.horizon = t
	err := l.Run()
	l.horizon = prev
	if err == nil && l.now < t {
		l.now = t
	}
	return err
}

// RunBefore executes events with When strictly less than t and leaves the
// loop positioned at t. This is the shard-window primitive: a conservative
// coordinator grants a shard the half-open window [now, t), with events at
// exactly t held for after the next barrier so that barrier-time control
// actions run first. A no-op when t <= now.
func (l *Loop) RunBefore(t Time) error {
	if t <= l.now {
		return nil
	}
	err := l.RunUntil(t - 1)
	if err == nil {
		l.now = t
	}
	return err
}

// String summarizes loop state for diagnostics.
func (l *Loop) String() string {
	return fmt.Sprintf("loop{now=%s fired=%d pending=%d}", l.now, l.fired, len(l.pq))
}
