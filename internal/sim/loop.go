package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrStopped is returned by Run when the loop was halted by Stop before the
// horizon or event exhaustion was reached.
var ErrStopped = errors.New("sim: loop stopped")

// Event is a scheduled callback. Events fire in (When, order-of-scheduling)
// order; the sequence number makes the ordering total and deterministic.
type Event struct {
	When Time
	Name string // diagnostic label, not used for ordering
	fn   func()

	seq   uint64
	index int // heap index; -1 once fired or canceled
}

// Canceled reports whether the event was canceled or has already fired.
func (e *Event) Canceled() bool { return e.index < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Loop is a deterministic discrete-event loop. The zero value is not usable;
// construct with NewLoop.
type Loop struct {
	now     Time
	pq      eventHeap
	seq     uint64
	stopped bool
	fired   uint64
	horizon Time
}

// NewLoop returns an empty loop positioned at time zero.
func NewLoop() *Loop {
	return &Loop{horizon: Never}
}

// Now returns the current simulated fabric time.
func (l *Loop) Now() Time { return l.now }

// Fired returns the number of events executed so far.
func (l *Loop) Fired() uint64 { return l.fired }

// Pending returns the number of events still queued.
func (l *Loop) Pending() int { return len(l.pq) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and is reported by scheduling at the current instant
// instead (events never run backwards).
func (l *Loop) At(t Time, name string, fn func()) *Event {
	if t < l.now {
		t = l.now
	}
	e := &Event{When: t, Name: name, fn: fn, seq: l.seq}
	l.seq++
	heap.Push(&l.pq, e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (l *Loop) After(d Time, name string, fn func()) *Event {
	return l.At(l.now+d, name, fn)
}

// Cancel removes a pending event. Canceling a fired or already-canceled
// event is a no-op.
func (l *Loop) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&l.pq, e.index)
}

// Reschedule moves a pending event to a new time, keeping its callback.
// If the event already fired it is re-armed as a fresh event.
func (l *Loop) Reschedule(e *Event, t Time) *Event {
	if e == nil {
		return nil
	}
	if t < l.now {
		t = l.now
	}
	if e.index >= 0 {
		e.When = t
		e.seq = l.seq
		l.seq++
		heap.Fix(&l.pq, e.index)
		return e
	}
	return l.At(t, e.Name, e.fn)
}

// Stop halts Run after the currently executing event returns.
func (l *Loop) Stop() { l.stopped = true }

// Run executes events in order until the queue is empty, the horizon is
// passed, or Stop is called. It returns ErrStopped in the latter case.
func (l *Loop) Run() error {
	l.stopped = false
	for len(l.pq) > 0 {
		if l.stopped {
			return ErrStopped
		}
		next := l.pq[0]
		if next.When > l.horizon {
			l.now = l.horizon
			return nil
		}
		heap.Pop(&l.pq)
		l.now = next.When
		l.fired++
		next.fn()
	}
	return nil
}

// RunUntil executes events with When <= t and leaves the loop positioned
// at t (or at the time of the last fired event if the queue drains early;
// the loop time still advances to t).
func (l *Loop) RunUntil(t Time) error {
	prev := l.horizon
	l.horizon = t
	err := l.Run()
	l.horizon = prev
	if err == nil && l.now < t {
		l.now = t
	}
	return err
}

// String summarizes loop state for diagnostics.
func (l *Loop) String() string {
	return fmt.Sprintf("loop{now=%s fired=%d pending=%d}", l.now, l.fired, len(l.pq))
}
