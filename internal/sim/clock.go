package sim

// Clock models a host's hardware real-time clock. Hosts do not observe the
// fabric timeline directly: each clock has a fixed boot offset and a small
// rate error (drift), so the "real time" exchanged between StopWatch VMMs —
// e.g. when choosing the median boot time (Sec. IV-A) — differs per host
// exactly as it would across physical machines.
//
// hostTime(t) = offset + t·(1+drift)
type Clock struct {
	offset Time
	drift  float64 // fractional rate error, e.g. 2e-5 = 20 ppm fast
}

// NewClock returns a clock with the given boot offset and fractional drift.
func NewClock(offset Time, drift float64) *Clock {
	return &Clock{offset: offset, drift: drift}
}

// Read returns the host's view of real time at fabric time t.
func (c *Clock) Read(t Time) Time {
	return c.offset + t + Time(float64(t)*c.drift)
}

// Offset returns the clock's boot offset.
func (c *Clock) Offset() Time { return c.offset }

// Drift returns the clock's fractional rate error.
func (c *Clock) Drift() float64 { return c.drift }

// FabricFor inverts Read: the fabric time at which this clock shows h.
// Used when a host schedules an action "at host time h".
func (c *Clock) FabricFor(h Time) Time {
	return Time(float64(h-c.offset) / (1 + c.drift))
}
