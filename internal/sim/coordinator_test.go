package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// miniFabric is a toy sharded transport for coordinator tests, shaped like
// the real netsim: nodes are pinned to shards, cross-shard sends park in
// per-destination-shard outboxes and are injected at Exchange with the
// partition-invariant (arrival, link-hash, link-seq) key, and each NODE
// records its own arrival trace — per-node order is the invariant the
// coordinator guarantees; a global cross-shard interleaving is not defined.
type miniFabric struct {
	loops   []*Loop
	shardOf []int         // node -> shard
	outs    [][][]miniMsg // [src shard][dst shard]; single writer = src shard
	traces  [][]string    // per destination node; single writer = its shard
	linkSeq [64]uint64    // per directed link; single writer = src's shard
}

type miniMsg struct {
	when    Time
	k1, k2  uint64
	dstNode int
	label   string
}

func newMiniFabric(loops []*Loop, shardOf []int) *miniFabric {
	outs := make([][][]miniMsg, len(loops))
	for i := range outs {
		outs[i] = make([][]miniMsg, len(loops))
	}
	return &miniFabric{
		loops:   loops,
		shardOf: shardOf,
		outs:    outs,
		traces:  make([][]string, len(shardOf)),
	}
}

// send schedules an arrival at node dst at now+lat. Same-shard arrivals go
// straight onto the loop; cross-shard arrivals wait for the exchange.
func (f *miniFabric) send(src, dst int, lat Time) {
	link := src*8 + dst
	f.linkSeq[link]++
	ks, kd := f.shardOf[src], f.shardOf[dst]
	m := miniMsg{when: f.loops[ks].Now() + lat, k1: uint64(link), k2: f.linkSeq[link],
		dstNode: dst, label: fmt.Sprintf("msg:%d->%d", src, dst)}
	if ks == kd {
		f.inject(m)
		return
	}
	f.outs[ks][kd] = append(f.outs[ks][kd], m)
}

func (f *miniFabric) inject(m miniMsg) {
	f.loops[f.shardOf[m.dstNode]].AtArrivalTimer(m.when, m.label, func(a, _ any, _ uint64) {
		mm := a.(miniMsg)
		f.traces[mm.dstNode] = append(f.traces[mm.dstNode], fmt.Sprintf("%d@%s", mm.when, mm.label))
	}, m, nil, 0, m.k1, m.k2)
}

func (f *miniFabric) exchange() {
	for src := range f.outs {
		for dst, box := range f.outs[src] {
			for _, m := range box {
				f.inject(m)
			}
			f.outs[src][dst] = f.outs[src][dst][:0]
		}
	}
}

func TestCoordinatorControlBeforeShardDataAtEqualTime(t *testing.T) {
	ctrl := NewLoop()
	shard := NewLoop()
	var order []string
	shard.At(10, "data", func() { order = append(order, "data@10") })
	ctrl.At(10, "ctrl", func() { order = append(order, "ctrl@10") })
	co := NewCoordinator(ctrl, []*Loop{shard}, func() Time { return 3 }, nil, nil)
	if err := co.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	want := []string{"ctrl@10", "data@10"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v (control events must precede same-time shard data)", order, want)
	}
	if ctrl.Now() != 20 || shard.Now() != 20 {
		t.Fatalf("loops left at ctrl=%d shard=%d, want 20", ctrl.Now(), shard.Now())
	}
	if got := co.FiredTotal(); got != 2 {
		t.Fatalf("FiredTotal = %d, want 2", got)
	}
}

func TestCoordinatorBarrierSeesParkedShards(t *testing.T) {
	ctrl := NewLoop()
	shards := []*Loop{NewLoop(), NewLoop()}
	for _, s := range shards {
		s := s
		s.At(7, "tick", func() { s.After(9, "tick", func() {}) })
	}
	barriers := 0
	co := NewCoordinator(ctrl, shards, func() Time { return 5 }, nil, func() {
		barriers++
		// At a barrier every shard is parked at the control clock: no
		// shard may be mid-window or hold unexecuted events in the past.
		for i, s := range shards {
			if s.Now() > ctrl.Now()+5 || (s.HasPendingEvents() && s.PeekNextEventTime() < ctrl.Now()) {
				t.Fatalf("barrier %d: shard %d at %d with next=%d, ctrl at %d",
					barriers, i, s.Now(), s.PeekNextEventTime(), ctrl.Now())
			}
		}
	})
	if err := co.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if barriers == 0 {
		t.Fatal("onBarrier never ran")
	}
}

// TestCoordinatorPartitionInvariance is the determinism core: the same
// traffic pattern over one shard, two/four sequential shards and two/four
// parallel shards must give every node a byte-identical arrival trace.
func TestCoordinatorPartitionInvariance(t *testing.T) {
	// run executes a fixed cross-node message pattern on nShards shards
	// (node i lives on shard i%nShards) and returns per-node traces.
	run := func(nShards int, parallel bool) [][]string {
		loops := make([]*Loop, nShards)
		for i := range loops {
			loops[i] = NewLoop()
		}
		const nodes = 4
		const lat = Time(10) // lookahead bound: min link latency
		shardOf := make([]int, nodes)
		for i := range shardOf {
			shardOf[i] = i % nShards
		}
		f := newMiniFabric(loops, shardOf)
		ctrl := NewLoop()
		// Each node sends to (node+1)%nodes and (node+2)%nodes every 7
		// ticks; per-node latency offsets make distinct links collide at
		// equal arrival instants so the (k1, k2) tie-break is exercised.
		var pump func(node int, n int)
		pump = func(node, n int) {
			if n == 0 {
				return
			}
			loops[shardOf[node]].After(7, fmt.Sprintf("pump:%d", node), func() {
				for _, d := range []int{1, 2} {
					f.send(node, (node+d)%nodes, lat+Time(node))
				}
				pump(node, n-1)
			})
		}
		for node := 0; node < nodes; node++ {
			pump(node, 5)
		}
		co := NewCoordinator(ctrl, loops, func() Time { return lat }, f.exchange, nil)
		co.SetParallel(parallel)
		if err := co.RunUntil(100); err != nil {
			t.Fatal(err)
		}
		return f.traces
	}

	base := run(1, false)
	total := 0
	for _, tr := range base {
		total += len(tr)
	}
	if total == 0 {
		t.Fatal("no messages delivered")
	}
	for _, tc := range []struct {
		k        int
		parallel bool
	}{{2, false}, {2, true}, {4, false}, {4, true}} {
		got := run(tc.k, tc.parallel)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("K=%d parallel=%v: per-node traces diverged from single-shard baseline\ngot  %v\nwant %v",
				tc.k, tc.parallel, got, base)
		}
	}
}

func TestCoordinatorNestedRunUntil(t *testing.T) {
	ctrl := NewLoop()
	shard := NewLoop()
	var order []string
	shard.At(15, "late", func() { order = append(order, "late") })
	co := NewCoordinator(ctrl, []*Loop{shard}, func() Time { return 4 }, nil, nil)
	ctrl.At(5, "nest", func() {
		// A control callback advancing the simulation further — the
		// nested call runs inside the outer barrier and must not step
		// any loop backwards afterwards.
		order = append(order, "nest-begin")
		if err := co.RunUntil(20); err != nil {
			t.Error(err)
		}
		order = append(order, "nest-end")
	})
	if err := co.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	want := []string{"nest-begin", "late", "nest-end"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if ctrl.Now() < 20 || shard.Now() < 20 {
		t.Fatalf("nested advance lost: ctrl=%d shard=%d", ctrl.Now(), shard.Now())
	}
}

func TestCoordinatorNonPositiveLookaheadPanics(t *testing.T) {
	ctrl := NewLoop()
	shard := NewLoop()
	shard.At(5, "x", func() {})
	co := NewCoordinator(ctrl, []*Loop{shard}, func() Time { return 0 }, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil with zero lookahead did not panic")
		}
	}()
	_ = co.RunUntil(10)
}

func TestCoordinatorSetParallelDuringRunPanics(t *testing.T) {
	ctrl := NewLoop()
	shard := NewLoop()
	co := NewCoordinator(ctrl, []*Loop{shard}, func() Time { return 5 }, nil, nil)
	ctrl.At(1, "toggle", func() {
		defer func() {
			if recover() == nil {
				t.Error("SetParallel mid-run did not panic")
			}
		}()
		co.SetParallel(true)
	})
	if err := co.RunUntil(2); err != nil {
		t.Fatal(err)
	}
}
