// Package vtime implements StopWatch's virtual time (Sec. IV): the guest's
// only view of "real" time, a deterministic function of the instructions
// (branches) it has executed so far:
//
//	virt(instr) = slope·instr + start          (Eqn. 1)
//
// start is set once from the median of the replicas' boot real times;
// slope starts from the hosts' tick rate. Optionally, after each epoch of I
// instructions the VMMs exchange (duration D_k, real time R_k) pairs, pick
// the median real time R*_k and the duration D*_k from the same machine,
// and re-fit:
//
//	start_{k+1} = virt_k(I)
//	slope_{k+1} = clamp[ℓ,u]( (R*_k − virt_k(I) + D*_k) / I )
//
// Because the inputs to every adjustment are identical medians across
// replicas, all replicas compute identical virtual clocks — which is what
// makes guest execution deterministic.
package vtime

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"stopwatch/internal/sim"
)

// ErrBadClock reports invalid virtual-clock parameters.
var ErrBadClock = errors.New("vtime: invalid clock parameter")

// Virtual is a virtual-time instant in nanoseconds, the guest-visible
// analogue of sim.Time.
type Virtual int64

// Milliseconds expresses v in milliseconds.
func (v Virtual) Milliseconds() float64 { return float64(v) / 1e6 }

// Seconds expresses v in seconds.
func (v Virtual) Seconds() float64 { return float64(v) / 1e9 }

// String renders the virtual instant.
func (v Virtual) String() string { return fmt.Sprintf("v=%.6fs", v.Seconds()) }

// Clock is the per-guest virtual clock. All replicas of a guest hold
// identical Clock state at identical instruction counts.
type Clock struct {
	start Virtual // virt at epochBase instructions
	slope float64 // virtual ns per instruction

	epochBase int64 // instruction count where current epoch began

	lo, hi float64 // slope clamp [ℓ,u]
}

// Config parameterizes a virtual clock.
type Config struct {
	// BootTimes are the replicas' boot real times (host clock reads); the
	// median becomes `start`. One entry (degenerate deployment) is allowed.
	BootTimes []sim.Time
	// Slope is the initial virtual-ns-per-instruction, derived from the
	// machines' tick rate. Must be positive.
	Slope float64
	// SlopeLo/SlopeHi clamp epoch adjustments ([ℓ,u] in the paper).
	// SlopeLo must be > 0 so virtual time always advances.
	SlopeLo, SlopeHi float64
}

// New builds a virtual clock from the replica boot times and slope bounds.
func New(cfg Config) (*Clock, error) {
	if len(cfg.BootTimes) == 0 {
		return nil, fmt.Errorf("%w: no boot times", ErrBadClock)
	}
	if cfg.Slope <= 0 {
		return nil, fmt.Errorf("%w: slope %v", ErrBadClock, cfg.Slope)
	}
	if cfg.SlopeLo <= 0 || cfg.SlopeHi < cfg.SlopeLo {
		return nil, fmt.Errorf("%w: slope bounds [%v,%v]", ErrBadClock, cfg.SlopeLo, cfg.SlopeHi)
	}
	if cfg.Slope < cfg.SlopeLo || cfg.Slope > cfg.SlopeHi {
		return nil, fmt.Errorf("%w: initial slope %v outside [%v,%v]", ErrBadClock, cfg.Slope, cfg.SlopeLo, cfg.SlopeHi)
	}
	return &Clock{
		start: Virtual(medianTime(cfg.BootTimes)),
		slope: cfg.Slope,
		lo:    cfg.SlopeLo,
		hi:    cfg.SlopeHi,
	}, nil
}

func medianTime(ts []sim.Time) sim.Time {
	// Replica groups are 3 (or 5) wide: sort a stack copy instead of
	// allocating a slice + sort.Slice scratch per clock construction.
	var buf [8]sim.Time
	var s []sim.Time
	if len(ts) <= len(buf) {
		s = buf[:len(ts)]
	} else {
		s = make([]sim.Time, len(ts))
	}
	copy(s, ts)
	slices.Sort(s)
	return s[len(s)/2]
}

// At returns the virtual time after instr total executed instructions.
// instr must be nondecreasing across calls within an epoch; the clock does
// not itself track the guest's counter.
func (c *Clock) At(instr int64) Virtual {
	d := instr - c.epochBase
	return c.start + Virtual(c.slope*float64(d))
}

// InstrFor inverts At: the smallest instruction count (>= epoch base) whose
// virtual time is >= v. Used by the VMM to translate virtual deadlines
// (timer ticks, delivery times) into instruction targets.
func (c *Clock) InstrFor(v Virtual) int64 {
	if v <= c.start {
		return c.epochBase
	}
	d := float64(v-c.start) / c.slope
	i := int64(d)
	if c.At(c.epochBase+i) < v {
		i++
	}
	return c.epochBase + i
}

// Slope returns the current slope (virtual ns per instruction).
func (c *Clock) Slope() float64 { return c.slope }

// Start returns the virtual time at the current epoch base.
func (c *Clock) Start() Virtual { return c.start }

// EpochBase returns the instruction count at which the current epoch began
// (0 until the first AdjustEpoch).
func (c *Clock) EpochBase() int64 { return c.epochBase }

// Restore rewinds the fit state to a recorded (start, slope, epochBase)
// triple — checkpoint restore for replica replacement. The slope must lie
// inside the clamp bounds it was recorded under.
func (c *Clock) Restore(start Virtual, slope float64, epochBase int64) error {
	if slope < c.lo || slope > c.hi {
		return fmt.Errorf("%w: restored slope %v outside [%v,%v]", ErrBadClock, slope, c.lo, c.hi)
	}
	if epochBase < 0 {
		return fmt.Errorf("%w: restored epoch base %d", ErrBadClock, epochBase)
	}
	c.start = start
	c.slope = slope
	c.epochBase = epochBase
	return nil
}

// EpochSample is one replica's report at the end of an epoch: the real-time
// duration D over which it executed the epoch's I instructions, and its
// host real time R at the end.
type EpochSample struct {
	D sim.Time // duration of the epoch on this host
	R sim.Time // host real time at epoch end
}

// AdjustEpoch re-fits the clock after an epoch of epochInstr instructions,
// given all replicas' samples. Per the paper, the median R is selected and
// the D from that same replica is used. All replicas must call this with
// identical arguments (they exchange samples via the VMM protocol), keeping
// their clocks identical.
func (c *Clock) AdjustEpoch(epochInstr int64, samples []EpochSample) error {
	if epochInstr <= 0 {
		return fmt.Errorf("%w: epoch of %d instructions", ErrBadClock, epochInstr)
	}
	if len(samples) == 0 {
		return fmt.Errorf("%w: no epoch samples", ErrBadClock)
	}
	// Median by R; take D from the same machine.
	s := make([]EpochSample, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool {
		if s[i].R != s[j].R {
			return s[i].R < s[j].R
		}
		return s[i].D < s[j].D
	})
	star := s[len(s)/2]

	virtEnd := c.At(c.epochBase + epochInstr)
	raw := (float64(star.R) - float64(virtEnd) + float64(star.D)) / float64(epochInstr)
	slope := raw
	if slope < c.lo {
		slope = c.lo
	}
	if slope > c.hi {
		slope = c.hi
	}
	c.start = virtEnd
	c.epochBase += epochInstr
	c.slope = slope
	return nil
}

// PIT models the guest's Programmable Interval Timer as virtualized by
// StopWatch: ticks occur at fixed virtual-time intervals, so the k-th timer
// interrupt is due when virtual time crosses k·period.
type PIT struct {
	period Virtual
	next   Virtual
	count  int64
}

// NewPIT returns a PIT with the given tick frequency (Hz) in virtual time.
// The paper's guests used 250 Hz.
func NewPIT(hz int) (*PIT, error) {
	if hz <= 0 {
		return nil, fmt.Errorf("%w: PIT frequency %d", ErrBadClock, hz)
	}
	p := Virtual(int64(sim.Second) / int64(hz))
	return &PIT{period: p, next: p}, nil
}

// Due returns how many timer interrupts are pending at virtual time v and
// advances the tick cursor past them.
func (p *PIT) Due(v Virtual) int {
	n := 0
	for v >= p.next {
		n++
		p.count++
		p.next += p.period
	}
	return n
}

// Ticks returns the total interrupts delivered so far.
func (p *PIT) Ticks() int64 { return p.count }

// Next returns the next tick deadline (checkpoint capture).
func (p *PIT) Next() Virtual { return p.next }

// Restore rewinds the tick cursor to a recorded (next, count) pair —
// checkpoint restore for replica replacement.
func (p *PIT) Restore(next Virtual, count int64) {
	p.next = next
	p.count = count
}

// Period returns the virtual tick period.
func (p *PIT) Period() Virtual { return p.period }

// Counter returns the PIT countdown register value at virtual time v, as a
// guest would read it: the remaining fraction of the current period scaled
// to the hardware reload constant (65536 for the 8254 in mode 2 at maximum
// divisor). Purely virtual-time-derived, per Sec. IV-B "Reading counters".
func (p *PIT) Counter(v Virtual) uint16 {
	phase := int64(v) % int64(p.period)
	remaining := int64(p.period) - phase
	return uint16((remaining * 65536) / int64(p.period))
}

// TSC models the virtualized time stamp counter: a tick count derived from
// virtual time by a constant frequency, per Sec. IV-B "rdtsc calls".
type TSC struct {
	// HzGHz is ticks per virtual nanosecond (e.g. 3.0 for the paper's
	// 3.00GHz hosts).
	HzGHz float64
}

// Read returns the TSC value at virtual time v.
func (t TSC) Read(v Virtual) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(float64(v) * t.HzGHz)
}

// RTC models the virtualized CMOS real-time clock, which reports virtual
// time truncated to seconds (Sec. IV-B: "time to the nearest second").
type RTC struct{}

// Read returns whole virtual seconds at v.
func (RTC) Read(v Virtual) int64 {
	if v < 0 {
		return 0
	}
	return int64(v) / int64(sim.Second)
}
