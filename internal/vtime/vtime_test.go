package vtime

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"stopwatch/internal/sim"
)

func mustClock(t *testing.T, cfg Config) *Clock {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func defaultCfg() Config {
	return Config{
		BootTimes: []sim.Time{100, 200, 300},
		Slope:     1.0,
		SlopeLo:   0.25,
		SlopeHi:   4.0,
	}
}

func TestNewUsesMedianBootTime(t *testing.T) {
	c := mustClock(t, defaultCfg())
	if c.Start() != 200 {
		t.Fatalf("start = %v, want median 200", c.Start())
	}
	cfg := defaultCfg()
	cfg.BootTimes = []sim.Time{900, 100, 500}
	c = mustClock(t, cfg)
	if c.Start() != 500 {
		t.Fatalf("start = %v, want median 500", c.Start())
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{BootTimes: nil, Slope: 1, SlopeLo: 0.5, SlopeHi: 2},
		{BootTimes: []sim.Time{1}, Slope: 0, SlopeLo: 0.5, SlopeHi: 2},
		{BootTimes: []sim.Time{1}, Slope: 1, SlopeLo: 0, SlopeHi: 2},
		{BootTimes: []sim.Time{1}, Slope: 1, SlopeLo: 2, SlopeHi: 1},
		{BootTimes: []sim.Time{1}, Slope: 5, SlopeLo: 0.5, SlopeHi: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrBadClock) {
			t.Errorf("case %d: want ErrBadClock, got %v", i, err)
		}
	}
}

func TestEqn1(t *testing.T) {
	c := mustClock(t, defaultCfg())
	if got := c.At(0); got != 200 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(1000); got != 1200 {
		t.Fatalf("At(1000) = %v, want start+slope·instr", got)
	}
}

func TestInstrForInvertsAt(t *testing.T) {
	cfg := defaultCfg()
	cfg.Slope = 2.5
	c := mustClock(t, cfg)
	for _, v := range []Virtual{200, 201, 500, 12345} {
		i := c.InstrFor(v)
		if c.At(i) < v {
			t.Fatalf("At(InstrFor(%v)) = %v < %v", v, c.At(i), v)
		}
		if i > 0 && c.At(i-1) >= v {
			t.Fatalf("InstrFor(%v) = %d not minimal", v, i)
		}
	}
	if c.InstrFor(0) != 0 {
		t.Fatal("InstrFor before start should be epoch base")
	}
}

func TestAdjustEpochMedianSelection(t *testing.T) {
	c := mustClock(t, defaultCfg())
	// Three replicas report (D, R). Median R is 10_000 (replica b), so its
	// D (2_000) must be used: slope = (R* − virt(I) + D*) / I.
	const epoch = 1000
	virtEnd := c.At(epoch) // 200 + 1000 = 1200
	samples := []EpochSample{
		{D: 9000, R: 5_000},
		{D: 2000, R: 10_000},
		{D: 1000, R: 50_000},
	}
	if err := c.AdjustEpoch(epoch, samples); err != nil {
		t.Fatal(err)
	}
	wantSlope := (10_000.0 - float64(virtEnd) + 2000.0) / epoch // 10.8 → clamped to 4
	if wantSlope > 4 {
		wantSlope = 4
	}
	if math.Abs(c.Slope()-wantSlope) > 1e-12 {
		t.Fatalf("slope = %v, want %v", c.Slope(), wantSlope)
	}
	if c.Start() != virtEnd {
		t.Fatalf("start = %v, want %v", c.Start(), virtEnd)
	}
	// Virtual time is continuous across the epoch boundary.
	if c.At(epoch) != virtEnd {
		t.Fatalf("At(epoch) = %v, want continuity at %v", c.At(epoch), virtEnd)
	}
}

func TestAdjustEpochClamping(t *testing.T) {
	c := mustClock(t, defaultCfg())
	// Huge R → slope would explode; must clamp to hi.
	if err := c.AdjustEpoch(100, []EpochSample{{D: 1, R: sim.Time(1e12)}}); err != nil {
		t.Fatal(err)
	}
	if c.Slope() != 4.0 {
		t.Fatalf("slope = %v, want clamp at 4.0", c.Slope())
	}
	// R far in the past → negative raw slope; must clamp to lo (positive).
	c2 := mustClock(t, defaultCfg())
	if err := c2.AdjustEpoch(100, []EpochSample{{D: 1, R: 0}}); err != nil {
		t.Fatal(err)
	}
	if c2.Slope() != 0.25 {
		t.Fatalf("slope = %v, want clamp at 0.25", c2.Slope())
	}
}

func TestAdjustEpochErrors(t *testing.T) {
	c := mustClock(t, defaultCfg())
	if err := c.AdjustEpoch(0, []EpochSample{{D: 1, R: 1}}); !errors.Is(err, ErrBadClock) {
		t.Fatal("epoch 0 should fail")
	}
	if err := c.AdjustEpoch(10, nil); !errors.Is(err, ErrBadClock) {
		t.Fatal("no samples should fail")
	}
}

func TestReplicasStayIdenticalAcrossEpochs(t *testing.T) {
	// Three replicas constructed with the same config and fed the same
	// samples must agree exactly at every instruction count.
	mk := func() *Clock { return mustClock(t, defaultCfg()) }
	a, b, c := mk(), mk(), mk()
	samples := [][]EpochSample{
		{{D: 900, R: 1500}, {D: 1100, R: 1400}, {D: 1000, R: 1450}},
		{{D: 2000, R: 3000}, {D: 2200, R: 3100}, {D: 2100, R: 2900}},
		{{D: 500, R: 4000}, {D: 700, R: 4200}, {D: 600, R: 4100}},
	}
	instr := int64(0)
	for _, s := range samples {
		instr += 1000
		for _, cl := range []*Clock{a, b, c} {
			if err := cl.AdjustEpoch(1000, s); err != nil {
				t.Fatal(err)
			}
		}
		for probe := instr; probe < instr+500; probe += 100 {
			if a.At(probe) != b.At(probe) || b.At(probe) != c.At(probe) {
				t.Fatalf("replicas diverged at instr %d: %v %v %v",
					probe, a.At(probe), b.At(probe), c.At(probe))
			}
		}
	}
}

// Property: virtual time is strictly monotone in instruction count, for any
// sequence of epoch adjustments (slope is always clamped positive).
func TestMonotoneProperty(t *testing.T) {
	f := func(ds, rs []int64) bool {
		c, err := New(defaultCfg())
		if err != nil {
			return false
		}
		n := len(ds)
		if len(rs) < n {
			n = len(rs)
		}
		if n > 20 {
			n = 20
		}
		instr := int64(0)
		prev := c.At(0)
		for k := 0; k < n; k++ {
			d := sim.Time(abs64(ds[k]) % 1e9)
			r := sim.Time(abs64(rs[k]) % 1e9)
			if err := c.AdjustEpoch(1000, []EpochSample{{D: d, R: r}}); err != nil {
				return false
			}
			instr += 1000
			for probe := instr + 1; probe <= instr+1000; probe += 250 {
				v := c.At(probe)
				if v <= prev {
					return false
				}
				prev = v
			}
			if c.Slope() < 0.25 || c.Slope() > 4.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == math.MinInt64 {
			return math.MaxInt64
		}
		return -v
	}
	return v
}

func TestPIT(t *testing.T) {
	p, err := NewPIT(250)
	if err != nil {
		t.Fatal(err)
	}
	if p.Period() != Virtual(4*sim.Millisecond) {
		t.Fatalf("period = %v, want 4ms", p.Period())
	}
	if n := p.Due(Virtual(3 * sim.Millisecond)); n != 0 {
		t.Fatalf("early tick: %d", n)
	}
	if n := p.Due(Virtual(4 * sim.Millisecond)); n != 1 {
		t.Fatalf("tick at period: %d, want 1", n)
	}
	if n := p.Due(Virtual(20 * sim.Millisecond)); n != 4 {
		t.Fatalf("catch-up ticks: %d, want 4", n)
	}
	if p.Ticks() != 5 {
		t.Fatalf("total ticks %d, want 5", p.Ticks())
	}
	if _, err := NewPIT(0); !errors.Is(err, ErrBadClock) {
		t.Fatal("PIT(0) should fail")
	}
}

func TestPITCounter(t *testing.T) {
	p, err := NewPIT(250)
	if err != nil {
		t.Fatal(err)
	}
	// At phase 0 the counter reads full (65536 truncates to 0 in uint16 —
	// hardware-faithful wraparound); just past 0 it is near max.
	c0 := p.Counter(0)
	cQuarter := p.Counter(Virtual(sim.Millisecond))
	cHalf := p.Counter(Virtual(2 * sim.Millisecond))
	if cQuarter <= cHalf {
		t.Fatalf("counter should count down: quarter=%d half=%d", cQuarter, cHalf)
	}
	if c0 != 0 {
		t.Fatalf("full reload wraps to 0 in uint16, got %d", c0)
	}
	if math.Abs(float64(cHalf)-32768) > 2 {
		t.Fatalf("half-period counter = %d, want ~32768", cHalf)
	}
}

func TestTSCAndRTC(t *testing.T) {
	tsc := TSC{HzGHz: 3.0}
	if tsc.Read(0) != 0 || tsc.Read(-5) != 0 {
		t.Fatal("TSC at origin should be 0")
	}
	if tsc.Read(Virtual(1000)) != 3000 {
		t.Fatalf("TSC(1000ns) = %d, want 3000 ticks", tsc.Read(1000))
	}
	var rtc RTC
	if rtc.Read(Virtual(1500*sim.Millisecond)) != 1 {
		t.Fatal("RTC should truncate to seconds")
	}
	if rtc.Read(-1) != 0 {
		t.Fatal("RTC negative clamp")
	}
}

func TestVirtualStringers(t *testing.T) {
	v := Virtual(1500 * sim.Millisecond)
	if v.Seconds() != 1.5 || v.Milliseconds() != 1500 {
		t.Fatal("conversions wrong")
	}
	if v.String() != "v=1.500000s" {
		t.Fatalf("String = %q", v.String())
	}
}
