package netsim

import (
	"testing"

	"stopwatch/internal/sim"
)

func TestPartitionDropsWithoutRNGDraw(t *testing.T) {
	// A partition window covering sends 2..3 must leave the link's RNG
	// stream untouched: the faulted run's survivors see exactly the jitter
	// draws of a run where the partitioned packets were never sent at all.
	deliveries := func(send func(i int) bool, partition func(i int) bool) []sim.Time {
		n, loop := testNet(t, LinkConfig{Latency: sim.Millisecond, JitterMax: 500 * sim.Microsecond})
		var at []sim.Time
		if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { at = append(at, loop.Now()) }}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := n.SetPartitioned("a", "b", partition(i)); err != nil {
				t.Fatal(err)
			}
			if send(i) {
				n.Send(&Packet{Src: "a", Dst: "b", Size: 64, Kind: "t"})
			}
		}
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	inWindow := func(i int) bool { return i == 2 || i == 3 }
	always := func(int) bool { return true }
	never := func(int) bool { return false }
	skipped := deliveries(func(i int) bool { return !inWindow(i) }, never)
	faulted := deliveries(always, inWindow)
	if len(skipped) != 4 || len(faulted) != 4 {
		t.Fatalf("deliveries: skipped=%d faulted=%d", len(skipped), len(faulted))
	}
	for i := range faulted {
		if faulted[i] != skipped[i] {
			t.Fatalf("survivor %d arrived at %v, want %v (partition drop consumed an RNG draw)", i, faulted[i], skipped[i])
		}
	}
}

func TestInjectLossOverridesAndClears(t *testing.T) {
	n, loop := testNet(t, LinkConfig{Latency: sim.Millisecond})
	got := 0
	if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { got++ }}); err != nil {
		t.Fatal(err)
	}
	if err := n.InjectLoss("a", "b", 1.0); err != nil {
		t.Fatal(err)
	}
	if loss, part := n.LinkFaults("a", "b"); loss != 1.0 || part {
		t.Fatalf("LinkFaults = (%v, %v), want (1, false)", loss, part)
	}
	for i := 0; i < 5; i++ {
		n.Send(&Packet{Src: "a", Dst: "b", Size: 64, Kind: "t"})
	}
	if err := n.InjectLoss("a", "b", -1); err != nil { // clear
		t.Fatal(err)
	}
	if loss, _ := n.LinkFaults("a", "b"); loss != 0 {
		t.Fatalf("cleared loss = %v, want configured 0", loss)
	}
	for i := 0; i < 5; i++ {
		n.Send(&Packet{Src: "a", Dst: "b", Size: 64, Kind: "t"})
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("delivered %d, want 5 (5 dropped under total loss, 5 after clearing)", got)
	}
	if sent, dropped := n.LinkStats("a", "b"); sent != 10 || dropped != 5 {
		t.Fatalf("link stats sent=%d dropped=%d", sent, dropped)
	}
	if err := n.InjectLoss("a", "b", 1.5); err == nil {
		t.Fatal("InjectLoss(1.5) should fail")
	}
	if err := n.InjectLoss("", "b", 0.5); err == nil {
		t.Fatal("empty endpoint should fail")
	}
}

func TestHealLinkClearsBothSwitches(t *testing.T) {
	n, loop := testNet(t, LinkConfig{Latency: sim.Millisecond})
	got := 0
	if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { got++ }}); err != nil {
		t.Fatal(err)
	}
	if err := n.InjectDuplexLoss("a", "b", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := n.SetDuplexPartitioned("a", "b", true); err != nil {
		t.Fatal(err)
	}
	n.Send(&Packet{Src: "a", Dst: "b", Size: 64, Kind: "t"})
	if err := n.HealDuplexLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	if loss, part := n.LinkFaults("a", "b"); loss != 0 || part {
		t.Fatalf("after heal: LinkFaults = (%v, %v)", loss, part)
	}
	if loss, part := n.LinkFaults("b", "a"); loss != 0 || part {
		t.Fatalf("after heal reverse: LinkFaults = (%v, %v)", loss, part)
	}
	n.Send(&Packet{Src: "a", Dst: "b", Size: 64, Kind: "t"})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
}

func TestFaultLossShardInvariant(t *testing.T) {
	// The same faulted traffic on 1 and 2 shards drops the same packets:
	// the loss override feeds the link's own stream, which does not depend
	// on the partition.
	run := func(shardCount int) (delivered, lost uint64) {
		loop := sim.NewLoop()
		rng := sim.NewSource(7).Stream("net")
		n, err := New(loop, rng, LinkConfig{Latency: sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		loops := []*sim.Loop{loop}
		for i := 1; i < shardCount; i++ {
			loops = append(loops, sim.NewLoop())
		}
		if shardCount > 1 {
			if err := n.SetShards(loops); err != nil {
				t.Fatal(err)
			}
			if err := n.AssignShard("b", 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) {}}); err != nil {
			t.Fatal(err)
		}
		if err := n.InjectLoss("a", "b", 0.5); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			n.Send(&Packet{Src: "a", Dst: "b", Size: 64, Kind: "t"})
		}
		n.Exchange()
		for _, l := range loops {
			if err := l.Run(); err != nil {
				t.Fatal(err)
			}
		}
		s := n.Stats()
		return s.Delivered, s.Lost
	}
	d1, l1 := run(1)
	d2, l2 := run(2)
	if d1 != d2 || l1 != l2 {
		t.Fatalf("shard variance: 1 shard (%d, %d) vs 2 shards (%d, %d)", d1, l1, d2, l2)
	}
	if l1 == 0 || d1 == 0 {
		t.Fatalf("want a mix of drops and deliveries, got delivered=%d lost=%d", d1, l1)
	}
}
