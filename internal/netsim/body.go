package netsim

import "stopwatch/internal/vtime"

// BodyKind discriminates the typed packet-body union.
type BodyKind uint8

// Body kinds carried by the StopWatch protocols.
const (
	// BodyNone marks a packet whose structure (if any) rides in Payload.
	BodyNone BodyKind = iota
	// BodyProp is a VMM delivery-time proposal (Sec. IV-B).
	BodyProp
	// BodyPace is a Dom0 pacing beacon.
	BodyPace
	// BodyEpoch is a Sec. IV-A epoch re-synchronization sample.
	BodyEpoch
	// BodyEgress is a guest output tunnelled to the egress node (Sec. VI).
	BodyEgress
	// BodyInbound is an ingress-replicated client packet (Sec. V).
	BodyInbound
	// BodyReconcile is a survivor's pre-view-commit reconcile export: its
	// resolved-sequence ring and the dead origin's pending votes, exchanged
	// between survivors before a failure reconfiguration commits.
	BodyReconcile
	// BodyReconcileAck acknowledges a received reconcile export (the sender
	// retries over the lossy fabric until acked or out of budget).
	BodyReconcileAck
)

// PacketBody is the typed union of the hot protocol payloads. It lives
// inline in every Packet, so the steady-state paths — proposals, pacing
// beacons, egress tunnelling, ingress replication, multicast envelopes —
// carry their structure without boxing into Payload (which costs one heap
// allocation per message and an interface type-assert per delivery).
//
// Kind selects which fields are meaningful; unrelated fields are zero. The
// reliable-multicast envelope (StreamSeq, StreamKind) composes with any
// inner kind: a proposal replicated over multicast is a pgm:data packet
// whose body is BodyProp plus the stream stamp.
type PacketBody struct {
	Kind BodyKind

	// Reliable-multicast envelope (pgm:data carries the inner body;
	// pgm:spm uses StreamSeq as the advertised max sequence).
	StreamSeq  uint64
	StreamKind string

	// Proposal / pacing / epoch fields.
	GuestID string
	Origin  string // origin host (proposals, beacons) or replica (egress)
	View    uint64
	Seq     uint64 // proposal seq, or per-guest egress output seq
	Virt    vtime.Virtual
	Epoch   int64
	Sample  vtime.EpochSample

	// Egress-tunnel fields (BodyEgress).
	OrigDst Addr

	// Ingress-replication fields (BodyInbound).
	ClientSrc  Addr
	ClientKind string

	// Size is the original wire size of the carried packet (egress and
	// inbound bodies); Data is the opaque application payload.
	Size int
	Data any
}
