// Package netsim simulates the cloud's network fabric: addressable nodes
// joined by links with latency, jitter, bandwidth and loss. It carries
// client↔cloud traffic, ingress replication, VMM proposal exchange and
// egress tunnelling for the StopWatch reproduction.
//
// The model is deliberately simple — FIFO serialization per directed link,
// additive latency + jitter — because the paper's performance story is
// driven by round-trip structure and packet counts, not by queueing
// subtleties.
//
// # Sharding
//
// The fabric can be partitioned across K simulation loops (SetShards +
// AssignShard) for multi-core execution under a conservative-lookahead
// coordinator (sim.Coordinator). Every mutable hot-path structure — link
// runtime state, packet pools, label interning, delivery counters — is
// per-shard, owned by the shard of the packet's source address; a send
// whose destination lives on another shard is parked in a per-shard-pair
// outbox and injected at the next barrier (Exchange). Determinism across
// shard counts rests on two design points:
//
//   - Per-link state. Each directed link has its own FIFO horizons and its
//     own seeded RNG stream (derived from the fabric seed and the link's
//     endpoint pair), so the jitter/loss draws a packet sees depend only on
//     that link's send history — not on how fabric-wide traffic interleaves,
//     which varies with the partition.
//
//   - Partition-invariant arrival order. Every delivery is scheduled with
//     sim.Loop.AtArrivalTimer under the key (link hash, per-link send seq),
//     so same-instant arrivals at one node order identically whether they
//     were scheduled locally or merged in from K shards.
package netsim

import (
	"errors"
	"fmt"
	"hash/fnv"

	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
)

// ErrNet reports network configuration errors.
var ErrNet = errors.New("netsim: invalid configuration")

// Addr identifies a node on the fabric.
type Addr string

// Packet is a unit of traffic. The hot protocol payloads ride in Body, the
// typed union (no boxing); Payload carries any other upper-layer structure;
// Size is what the wire sees.
//
// Packets obtained from Network.AllocPacket are pooled: the fabric recycles
// them after delivery (or loss), so a Node must not retain a delivered
// *Packet past its Deliver call — Clone what must outlive it. Payloads are
// shared immutable values and may be kept.
type Packet struct {
	ID      uint64
	Src     Addr
	Dst     Addr
	Size    int // bytes on the wire
	Kind    string
	Body    PacketBody
	Payload any

	pooled bool // recycled into the owning shard's freelist after delivery
}

// Clone returns a shallow copy with a fresh identity-preserving struct
// (payload is shared; payloads must be treated as immutable). The copy is
// never pool-owned, so it is safe to retain.
func (p *Packet) Clone() *Packet {
	c := *p
	c.pooled = false
	return &c
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %s %s→%s %dB", p.ID, p.Kind, p.Src, p.Dst, p.Size)
}

// Node consumes packets delivered by the fabric.
type Node interface {
	// Address returns the node's fabric address.
	Address() Addr
	// Deliver is invoked by the fabric when a packet arrives. The packet may
	// be pool-owned: it must not be retained after Deliver returns (Clone it
	// instead); its Payload may be kept.
	Deliver(pkt *Packet)
}

// LinkConfig describes one directed link.
type LinkConfig struct {
	// Latency is the propagation delay. It must be positive on any link
	// that can cross a shard boundary: the fabric-wide minimum bounds the
	// coordinator's lookahead window.
	Latency sim.Time
	// JitterMax adds U[0,JitterMax) to each packet.
	JitterMax sim.Time
	// BandwidthBps is bytes-per-second capacity; 0 means infinite.
	BandwidthBps int64
	// LossProb drops packets with this probability (failure injection).
	LossProb float64
}

func (c LinkConfig) validate() error {
	if c.Latency < 0 || c.JitterMax < 0 || c.BandwidthBps < 0 ||
		c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("%w: %+v", ErrNet, c)
	}
	return nil
}

// link is one directed link's runtime state, owned by the source address's
// shard. The per-link RNG stream and the (hash, arrSeq) arrival key are
// what make fabric behavior independent of the partition.
type link struct {
	cfg      *LinkConfig
	rng      *sim.FastRand
	hash     uint64 // stable hash of (src, dst): arrival ordering key k1
	arrSeq   uint64 // per-link send counter: arrival ordering key k2
	dstShard int
	nextFree sim.Time // FIFO serialization horizon
	lastArr  sim.Time // FIFO delivery horizon: links never reorder
	sent     uint64
	dropped  uint64

	// Fault-injection switches (fault.go): a loss-probability override
	// (lossUnset = none) and a partition toggle. Flipped only at barriers;
	// neither resets the link's RNG stream or FIFO horizons.
	faultLoss   float64
	partitioned bool
}

// lossUnset marks a link with no loss override in effect.
const lossUnset = -1.0

// inject is one cross-shard delivery parked in an outbox until the next
// barrier.
type inject struct {
	when   sim.Time
	k1, k2 uint64
	pkt    *Packet
	label  string
}

// netShard is the per-shard slice of fabric state. Everything here is
// touched only by the owning shard's goroutine during a lookahead window,
// or by the coordinator at a barrier (never both at once).
type netShard struct {
	idx  int
	loop *sim.Loop

	// links holds runtime state for every directed link whose source
	// address this shard owns.
	links map[[2]Addr]*link
	// labels interns per-kind delivery event labels so the hot path does
	// not build a "net:deliver:"+kind string per packet.
	labels map[string]string
	// freePkts is this shard's pooled-packet freelist. Packets migrate
	// pools when delivered across shards — pools are per-shard only so
	// that alloc/recycle never race.
	freePkts []*Packet

	// outs[k] parks deliveries destined for shard k until Exchange.
	outs [][]inject

	nextID    uint64
	idBase    uint64
	delivered uint64
	lost      uint64

	mDelivered metrics.ShardCounterVec
	mDropped   metrics.ShardCounterVec
}

func newShard(idx, total int, loop *sim.Loop) *netShard {
	return &netShard{
		idx:    idx,
		loop:   loop,
		links:  make(map[[2]Addr]*link),
		labels: make(map[string]string),
		outs:   make([][]inject, total),
		idBase: uint64(idx+1) << 48,
	}
}

// deliverLabel returns the interned per-kind delivery label.
func (sh *netShard) deliverLabel(kind string) string {
	if s, ok := sh.labels[kind]; ok {
		return s
	}
	s := "net:deliver:" + kind
	sh.labels[kind] = s
	return s
}

// recycle returns a pool-owned packet to this shard's freelist.
func (sh *netShard) recycle(p *Packet) {
	if !p.pooled {
		return
	}
	p.Payload = nil
	p.Body = PacketBody{}
	p.pooled = false
	sh.freePkts = append(sh.freePkts, p)
}

// Network is the fabric. Topology (nodes, link configs, shard assignment)
// is shared and must only be mutated at initialization or a coordinator
// barrier; all per-packet state is per-shard.
type Network struct {
	nodes   map[Addr]Node
	cfgs    map[[2]Addr]*LinkConfig
	defCfg  *LinkConfig
	shardOf map[Addr]int
	shards  []*netShard

	// seedBase derives the per-link RNG streams; drawn once from the
	// fabric stream at construction.
	seedBase uint64
	linkSrc  *sim.Source

	// minLatency is the running minimum link latency — the conservative
	// lookahead bound. It only ever decreases, and depends only on the
	// configured topology, never on the partition.
	minLatency sim.Time

	// Optional observability counters, per packet kind and shard-merged at
	// snapshot. Nil by default — the uninstrumented fabric touches no
	// metrics code at all.
	svDelivered *metrics.ShardedCounterVec
	svDropped   *metrics.ShardedCounterVec
}

// New creates a network with the given default link parameters, running on
// a single loop until SetShards partitions it.
func New(loop *sim.Loop, rng *sim.Rand, def LinkConfig) (*Network, error) {
	if loop == nil || rng == nil {
		return nil, fmt.Errorf("%w: nil loop or rng", ErrNet)
	}
	if err := def.validate(); err != nil {
		return nil, err
	}
	defCfg := def
	seedBase := rng.Uint64()
	n := &Network{
		nodes:      make(map[Addr]Node),
		cfgs:       make(map[[2]Addr]*LinkConfig),
		defCfg:     &defCfg,
		shardOf:    make(map[Addr]int),
		shards:     []*netShard{newShard(0, 1, loop)},
		seedBase:   seedBase,
		linkSrc:    sim.NewSource(seedBase),
		minLatency: def.Latency,
	}
	return n, nil
}

// SetShards partitions the fabric across the given loops. It must be
// called before any traffic flows (the per-shard state starts empty).
// Addresses default to shard 0; AssignShard moves them.
func (n *Network) SetShards(loops []*sim.Loop) error {
	if len(loops) == 0 {
		return fmt.Errorf("%w: SetShards needs at least one loop", ErrNet)
	}
	for _, l := range loops {
		if l == nil {
			return fmt.Errorf("%w: nil shard loop", ErrNet)
		}
	}
	shards := make([]*netShard, len(loops))
	for i, l := range loops {
		shards[i] = newShard(i, len(loops), l)
	}
	n.shards = shards
	n.bindMetrics()
	return nil
}

// NumShards returns the shard count.
func (n *Network) NumShards() int { return len(n.shards) }

// AssignShard places an address's fabric endpoint on shard k: deliveries
// to it run on that shard's loop, and sends from it draw on that shard's
// state. Must be called before the address sends or receives traffic.
func (n *Network) AssignShard(addr Addr, k int) error {
	if addr == "" || k < 0 || k >= len(n.shards) {
		return fmt.Errorf("%w: AssignShard(%q, %d) of %d shards", ErrNet, addr, k, len(n.shards))
	}
	n.shardOf[addr] = k
	return nil
}

// ShardOf returns the shard index owning an address (0 by default).
func (n *Network) ShardOf(addr Addr) int { return n.shardIdx(addr) }

func (n *Network) shardIdx(addr Addr) int {
	if len(n.shards) == 1 {
		return 0
	}
	return n.shardOf[addr] // absent ⇒ 0
}

// ShardLoop returns shard k's loop.
func (n *Network) ShardLoop(k int) *sim.Loop { return n.shards[k].loop }

// Lookahead returns the conservative window bound: the minimum latency of
// any configured link. A coordinator may let shards run this far ahead of
// the last barrier without any cross-shard effect arriving early.
func (n *Network) Lookahead() sim.Time { return n.minLatency }

// AllocPacket checks a packet out of the source address's shard pool,
// populated with the given header. The fabric reclaims it after delivery
// or loss, so senders hand it straight to Send and never keep it. Set
// Body on the returned packet for the typed hot-path payloads.
func (n *Network) AllocPacket(src, dst Addr, size int, kind string, payload any) *Packet {
	sh := n.shards[n.shardIdx(src)]
	var p *Packet
	if k := len(sh.freePkts); k > 0 {
		p = sh.freePkts[k-1]
		sh.freePkts[k-1] = nil
		sh.freePkts = sh.freePkts[:k-1]
	} else {
		p = &Packet{}
	}
	*p = Packet{Src: src, Dst: dst, Size: size, Kind: kind, Payload: payload, pooled: true}
	return p
}

// SetMetrics wires per-packet-kind fabric counters: delivered counts
// packets handed to an attached node, dropped counts loss-model drops and
// arrivals at detached addresses. Counting is per-shard and merged
// deterministically at snapshot time, so an instrumented fabric renders
// byte-identical metric pages for any shard count. Pass nils to detach.
func (n *Network) SetMetrics(delivered, dropped *metrics.ShardedCounterVec) {
	n.svDelivered = delivered
	n.svDropped = dropped
	n.bindMetrics()
}

// bindMetrics hands each shard its cell of the sharded counter vecs.
func (n *Network) bindMetrics() {
	for i, sh := range n.shards {
		sh.mDelivered = metrics.ShardCounterVec{}
		sh.mDropped = metrics.ShardCounterVec{}
		if n.svDelivered != nil {
			sh.mDelivered = n.svDelivered.Shard(i)
		}
		if n.svDropped != nil {
			sh.mDropped = n.svDropped.Shard(i)
		}
	}
}

// Attach registers a node. Re-attaching an address replaces the previous
// node (used for failure injection: replacing a node with a black hole).
// Topology mutation: initialization or barrier context only.
func (n *Network) Attach(node Node) error {
	if node == nil || node.Address() == "" {
		return fmt.Errorf("%w: nil node or empty address", ErrNet)
	}
	n.nodes[node.Address()] = node
	return nil
}

// Detach removes a node; packets in flight to it are dropped on arrival.
func (n *Network) Detach(addr Addr) {
	delete(n.nodes, addr)
}

// SetLink installs a directed link between two addresses, resetting any
// existing runtime state (FIFO horizons, counters, RNG position) for the
// pair. Topology mutation: initialization or barrier context only.
func (n *Network) SetLink(src, dst Addr, cfg LinkConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	c := cfg
	n.cfgs[[2]Addr{src, dst}] = &c
	if cfg.Latency < n.minLatency {
		n.minLatency = cfg.Latency
	}
	// Reset the pair's runtime state so the new config takes effect even
	// if traffic already flowed (it lives on the source's shard).
	delete(n.shards[n.shardIdx(src)].links, [2]Addr{src, dst})
	return nil
}

// SetDuplexLink installs the link in both directions.
func (n *Network) SetDuplexLink(a, b Addr, cfg LinkConfig) error {
	if err := n.SetLink(a, b, cfg); err != nil {
		return err
	}
	return n.SetLink(b, a, cfg)
}

// linkOn returns (creating on first use) the directed link's runtime state
// on the owning shard.
func (n *Network) linkOn(sh *netShard, src, dst Addr) *link {
	key := [2]Addr{src, dst}
	if l, ok := sh.links[key]; ok {
		return l
	}
	cfg := n.cfgs[key]
	if cfg == nil {
		cfg = n.defCfg
	}
	l := &link{
		cfg:       cfg,
		rng:       n.linkSrc.FastStream(string(src) + "|" + string(dst)),
		hash:      linkHash(src, dst),
		dstShard:  n.shardIdx(dst),
		faultLoss: lossUnset,
	}
	sh.links[key] = l
	return l
}

// linkHash is the stable directed-link hash used as arrival ordering key
// k1: a pure function of the endpoint names, identical for every shard
// count and every run.
func linkHash(src, dst Addr) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(src))
	_, _ = h.Write([]byte{'|'})
	_, _ = h.Write([]byte(dst))
	return h.Sum64()
}

// Send transmits the packet. The packet's ID is assigned if zero. Delivery
// is scheduled on the destination shard's loop — directly for a same-shard
// destination, via the outbox (drained at the next barrier) otherwise.
// Lost packets are counted and dropped silently (loss recovery belongs to
// upper layers). A pool-owned packet (AllocPacket) is reclaimed by the
// fabric once delivered or lost.
//
// Concurrency contract: Send may only be called from the source address's
// own shard (a node reacting to a delivery) or from coordinator/barrier
// context while all shards are parked.
func (n *Network) Send(pkt *Packet) {
	ks := n.shardIdx(pkt.Src)
	sh := n.shards[ks]
	if pkt.ID == 0 {
		sh.nextID++
		pkt.ID = sh.idBase | sh.nextID
	}
	l := n.linkOn(sh, pkt.Src, pkt.Dst)
	l.sent++
	cfg := l.cfg
	// A partitioned link (fault.go) drops without a loss draw, so healing
	// resumes the RNG stream exactly where the fault found it.
	if l.partitioned {
		l.dropped++
		sh.lost++
		if c := sh.mDropped; c.Valid() {
			c.With(pkt.Kind).Inc()
		}
		sh.recycle(pkt)
		return
	}
	loss := cfg.LossProb
	if l.faultLoss >= 0 {
		loss = l.faultLoss
	}
	if loss > 0 && l.rng.Bool(loss) {
		l.dropped++
		sh.lost++
		if c := sh.mDropped; c.Valid() {
			c.With(pkt.Kind).Inc()
		}
		sh.recycle(pkt)
		return
	}
	start := sh.loop.Now()
	if l.nextFree > start {
		start = l.nextFree
	}
	var tx sim.Time
	if cfg.BandwidthBps > 0 {
		tx = sim.Time(int64(pkt.Size) * int64(sim.Second) / cfg.BandwidthBps)
	}
	l.nextFree = start + tx
	arrival := start + tx + cfg.Latency
	if cfg.JitterMax > 0 {
		arrival += l.rng.UniformDur(0, cfg.JitterMax)
	}
	// Links are FIFO (the paper's inter-node streams are TCP tunnels):
	// jitter never reorders packets within one directed link.
	if arrival < l.lastArr {
		arrival = l.lastArr
	}
	l.lastArr = arrival
	l.arrSeq++
	label := sh.deliverLabel(pkt.Kind)
	if l.dstShard == ks {
		sh.loop.AtArrivalTimer(arrival, label, deliverTimer, n, pkt, uint64(ks), l.hash, l.arrSeq)
		return
	}
	sh.outs[l.dstShard] = append(sh.outs[l.dstShard], inject{
		when: arrival, k1: l.hash, k2: l.arrSeq, pkt: pkt, label: label,
	})
}

// Exchange drains every cross-shard outbox, scheduling the parked
// deliveries on their destination shards' loops. Coordinator barrier
// context only (all shards parked). The injection order is irrelevant to
// the schedule — the (when, k1, k2) key decides — but it is deterministic
// anyway: shard-index order, append order within a box.
func (n *Network) Exchange() {
	for _, src := range n.shards {
		for dstIdx := range src.outs {
			box := src.outs[dstIdx]
			if len(box) == 0 {
				continue
			}
			dst := n.shards[dstIdx]
			for i := range box {
				in := &box[i]
				dst.loop.AtArrivalTimer(in.when, in.label, deliverTimer, n, in.pkt, uint64(dstIdx), in.k1, in.k2)
				box[i] = inject{}
			}
			src.outs[dstIdx] = box[:0]
		}
	}
}

// PendingExchange reports parked cross-shard deliveries (tests).
func (n *Network) PendingExchange() int {
	total := 0
	for _, sh := range n.shards {
		for _, box := range sh.outs {
			total += len(box)
		}
	}
	return total
}

// deliverTimer is the fabric's typed delivery callback: hand the packet to
// the destination node (if still attached) and reclaim pooled packets into
// the destination shard's pool (u carries the shard index).
func deliverTimer(a, b any, u uint64) {
	n := a.(*Network)
	pkt := b.(*Packet)
	sh := n.shards[u]
	if node, ok := n.nodes[pkt.Dst]; ok {
		sh.delivered++
		if c := sh.mDelivered; c.Valid() {
			c.With(pkt.Kind).Inc()
		}
		node.Deliver(pkt)
	} else {
		sh.lost++
		if c := sh.mDropped; c.Valid() {
			c.With(pkt.Kind).Inc()
		}
	}
	sh.recycle(pkt)
}

// Stats reports fabric counters.
type Stats struct {
	Delivered uint64
	Lost      uint64
}

// Stats returns current fabric counters, summed across shards. Barrier
// context only while a coordinator is driving the shards.
func (n *Network) Stats() Stats {
	var s Stats
	for _, sh := range n.shards {
		s.Delivered += sh.delivered
		s.Lost += sh.lost
	}
	return s
}

// LinkStats reports per-link counters for the directed pair.
func (n *Network) LinkStats(src, dst Addr) (sent, dropped uint64) {
	sh := n.shards[n.shardIdx(src)]
	l := n.linkOn(sh, src, dst)
	return l.sent, l.dropped
}

// FuncNode adapts a function into a Node — handy for tests and simple
// endpoints.
type FuncNode struct {
	Addr Addr
	Fn   func(pkt *Packet)
}

var _ Node = (*FuncNode)(nil)

// Address implements Node.
func (f *FuncNode) Address() Addr { return f.Addr }

// Deliver implements Node.
func (f *FuncNode) Deliver(pkt *Packet) {
	if f.Fn != nil {
		f.Fn(pkt)
	}
}
