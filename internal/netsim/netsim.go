// Package netsim simulates the cloud's network fabric: addressable nodes
// joined by links with latency, jitter, bandwidth and loss. It carries
// client↔cloud traffic, ingress replication, VMM proposal exchange and
// egress tunnelling for the StopWatch reproduction.
//
// The model is deliberately simple — FIFO serialization per link, additive
// latency + jitter — because the paper's performance story is driven by
// round-trip structure and packet counts, not by queueing subtleties.
package netsim

import (
	"errors"
	"fmt"

	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
)

// ErrNet reports network configuration errors.
var ErrNet = errors.New("netsim: invalid configuration")

// Addr identifies a node on the fabric.
type Addr string

// Packet is a unit of traffic. Payload carries the upper layer's structure;
// Size is what the wire sees.
//
// Packets obtained from Network.AllocPacket are pooled: the fabric recycles
// them after delivery (or loss), so a Node must not retain a delivered
// *Packet past its Deliver call — Clone what must outlive it. Payloads are
// shared immutable values and may be kept.
type Packet struct {
	ID      uint64
	Src     Addr
	Dst     Addr
	Size    int // bytes on the wire
	Kind    string
	Payload any

	pooled bool // recycled into the owning Network's freelist after delivery
}

// Clone returns a shallow copy with a fresh identity-preserving struct
// (payload is shared; payloads must be treated as immutable). The copy is
// never pool-owned, so it is safe to retain.
func (p *Packet) Clone() *Packet {
	c := *p
	c.pooled = false
	return &c
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %s %s→%s %dB", p.ID, p.Kind, p.Src, p.Dst, p.Size)
}

// Node consumes packets delivered by the fabric.
type Node interface {
	// Address returns the node's fabric address.
	Address() Addr
	// Deliver is invoked by the fabric when a packet arrives. The packet may
	// be pool-owned: it must not be retained after Deliver returns (Clone it
	// instead); its Payload may be kept.
	Deliver(pkt *Packet)
}

// LinkConfig describes one directed link.
type LinkConfig struct {
	// Latency is the propagation delay.
	Latency sim.Time
	// JitterMax adds U[0,JitterMax) to each packet.
	JitterMax sim.Time
	// BandwidthBps is bytes-per-second capacity; 0 means infinite.
	BandwidthBps int64
	// LossProb drops packets with this probability (failure injection).
	LossProb float64
}

func (c LinkConfig) validate() error {
	if c.Latency < 0 || c.JitterMax < 0 || c.BandwidthBps < 0 ||
		c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("%w: %+v", ErrNet, c)
	}
	return nil
}

type link struct {
	cfg      LinkConfig
	nextFree sim.Time // FIFO serialization horizon
	lastArr  sim.Time // FIFO delivery horizon: links never reorder
	sent     uint64
	dropped  uint64
}

// Network is the fabric. It is driven by the simulation loop and a
// deterministic RNG stream for jitter and loss.
type Network struct {
	loop  *sim.Loop
	rng   *sim.Rand
	nodes map[Addr]Node
	links map[[2]Addr]*link
	def   *link // default link used when no explicit link exists

	// labels interns per-kind delivery event labels so the hot path does
	// not build a "net:deliver:"+kind string per packet.
	labels map[string]string
	// freePkts is the pooled-packet freelist (AllocPacket / recycle).
	freePkts []*Packet

	nextID    uint64
	delivered uint64
	lost      uint64

	// Optional observability counters, per packet kind. Nil by default —
	// the uninstrumented fabric touches no metrics code at all.
	mDelivered *metrics.CounterVec
	mDropped   *metrics.CounterVec
}

// New creates a network with the given default link parameters.
func New(loop *sim.Loop, rng *sim.Rand, def LinkConfig) (*Network, error) {
	if loop == nil || rng == nil {
		return nil, fmt.Errorf("%w: nil loop or rng", ErrNet)
	}
	if err := def.validate(); err != nil {
		return nil, err
	}
	return &Network{
		loop:   loop,
		rng:    rng,
		nodes:  make(map[Addr]Node),
		links:  make(map[[2]Addr]*link),
		labels: make(map[string]string),
		def:    &link{cfg: def},
	}, nil
}

// AllocPacket checks a packet out of the fabric's pool, populated with the
// given header. The fabric reclaims it after delivery or loss, so senders
// hand it straight to Send and never keep it.
func (n *Network) AllocPacket(src, dst Addr, size int, kind string, payload any) *Packet {
	var p *Packet
	if k := len(n.freePkts); k > 0 {
		p = n.freePkts[k-1]
		n.freePkts[k-1] = nil
		n.freePkts = n.freePkts[:k-1]
	} else {
		p = &Packet{}
	}
	*p = Packet{Src: src, Dst: dst, Size: size, Kind: kind, Payload: payload, pooled: true}
	return p
}

// recycle returns a pool-owned packet to the freelist.
func (n *Network) recycle(p *Packet) {
	if !p.pooled {
		return
	}
	p.Payload = nil
	p.pooled = false
	n.freePkts = append(n.freePkts, p)
}

// deliverLabel returns the interned per-kind delivery label.
func (n *Network) deliverLabel(kind string) string {
	if s, ok := n.labels[kind]; ok {
		return s
	}
	s := "net:deliver:" + kind
	n.labels[kind] = s
	return s
}

// SetMetrics wires per-packet-kind fabric counters: delivered counts
// packets handed to an attached node, dropped counts loss-model drops and
// arrivals at detached addresses. Vec children intern in first-use order,
// which under a fixed seed is deterministic, so an instrumented fabric
// renders byte-identical metric pages across identical runs. Pass nils to
// detach.
func (n *Network) SetMetrics(delivered, dropped *metrics.CounterVec) {
	n.mDelivered = delivered
	n.mDropped = dropped
}

// Attach registers a node. Re-attaching an address replaces the previous
// node (used for failure injection: replacing a node with a black hole).
func (n *Network) Attach(node Node) error {
	if node == nil || node.Address() == "" {
		return fmt.Errorf("%w: nil node or empty address", ErrNet)
	}
	n.nodes[node.Address()] = node
	return nil
}

// Detach removes a node; packets in flight to it are dropped on arrival.
func (n *Network) Detach(addr Addr) {
	delete(n.nodes, addr)
}

// SetLink installs a directed link between two addresses.
func (n *Network) SetLink(src, dst Addr, cfg LinkConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	n.links[[2]Addr{src, dst}] = &link{cfg: cfg}
	return nil
}

// SetDuplexLink installs the link in both directions.
func (n *Network) SetDuplexLink(a, b Addr, cfg LinkConfig) error {
	if err := n.SetLink(a, b, cfg); err != nil {
		return err
	}
	return n.SetLink(b, a, cfg)
}

func (n *Network) linkFor(src, dst Addr) *link {
	if l, ok := n.links[[2]Addr{src, dst}]; ok {
		return l
	}
	return n.def
}

// NextID allocates a globally unique packet ID.
func (n *Network) NextID() uint64 {
	n.nextID++
	return n.nextID
}

// Send transmits the packet. The packet's ID is assigned if zero. Delivery
// is scheduled on the loop; lost packets are counted and dropped silently
// (loss recovery belongs to upper layers). A pool-owned packet (AllocPacket)
// is reclaimed by the fabric once delivered or lost.
func (n *Network) Send(pkt *Packet) {
	if pkt.ID == 0 {
		pkt.ID = n.NextID()
	}
	l := n.linkFor(pkt.Src, pkt.Dst)
	l.sent++
	if l.cfg.LossProb > 0 && n.rng.Bool(l.cfg.LossProb) {
		l.dropped++
		n.lost++
		if n.mDropped != nil {
			n.mDropped.With(pkt.Kind).Inc()
		}
		n.recycle(pkt)
		return
	}
	now := n.loop.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	var tx sim.Time
	if l.cfg.BandwidthBps > 0 {
		tx = sim.Time(int64(pkt.Size) * int64(sim.Second) / l.cfg.BandwidthBps)
	}
	l.nextFree = start + tx
	arrival := start + tx + l.cfg.Latency
	if l.cfg.JitterMax > 0 {
		arrival += n.rng.UniformDur(0, l.cfg.JitterMax)
	}
	// Links are FIFO (the paper's inter-node streams are TCP tunnels):
	// jitter never reorders packets within one directed link.
	if arrival < l.lastArr {
		arrival = l.lastArr
	}
	l.lastArr = arrival
	n.loop.AtTimer(arrival, n.deliverLabel(pkt.Kind), deliverTimer, n, pkt, 0)
}

// deliverTimer is the fabric's typed delivery callback: hand the packet to
// the destination node (if still attached) and reclaim pooled packets.
func deliverTimer(a, b any, _ uint64) {
	n := a.(*Network)
	pkt := b.(*Packet)
	if node, ok := n.nodes[pkt.Dst]; ok {
		n.delivered++
		if n.mDelivered != nil {
			n.mDelivered.With(pkt.Kind).Inc()
		}
		node.Deliver(pkt)
	} else {
		n.lost++
		if n.mDropped != nil {
			n.mDropped.With(pkt.Kind).Inc()
		}
	}
	n.recycle(pkt)
}

// Stats reports fabric counters.
type Stats struct {
	Delivered uint64
	Lost      uint64
}

// Stats returns current fabric counters.
func (n *Network) Stats() Stats {
	return Stats{Delivered: n.delivered, Lost: n.lost}
}

// LinkStats reports per-link counters for the directed pair, falling back
// to the default link when no explicit link exists.
func (n *Network) LinkStats(src, dst Addr) (sent, dropped uint64) {
	l := n.linkFor(src, dst)
	return l.sent, l.dropped
}

// FuncNode adapts a function into a Node — handy for tests and simple
// endpoints.
type FuncNode struct {
	Addr Addr
	Fn   func(pkt *Packet)
}

var _ Node = (*FuncNode)(nil)

// Address implements Node.
func (f *FuncNode) Address() Addr { return f.Addr }

// Deliver implements Node.
func (f *FuncNode) Deliver(pkt *Packet) {
	if f.Fn != nil {
		f.Fn(pkt)
	}
}
