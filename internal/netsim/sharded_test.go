package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"stopwatch/internal/sim"
)

// runShardedEcho drives a fixed ping/echo pattern over `nodes` FuncNodes
// pinned round-robin onto K shard loops under a conservative-lookahead
// coordinator, with every packet drawn from the fabric's pools (so
// cross-shard pool handoff and recycled-event poisoning are exercised),
// and returns each node's delivery trace. The traces must be identical
// for every K and for sequential vs parallel window execution.
func runShardedEcho(t *testing.T, shards int, parallel bool) [][]string {
	t.Helper()
	ctrl := sim.NewLoop()
	rng := sim.NewSource(7).Stream("net")
	n, err := New(ctrl, rng, LinkConfig{Latency: 2 * sim.Millisecond, JitterMax: 500 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	loops := make([]*sim.Loop, shards)
	for i := range loops {
		loops[i] = sim.NewLoop()
	}
	if err := n.SetShards(loops); err != nil {
		t.Fatal(err)
	}
	const nodes = 6
	traces := make([][]string, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		addr := Addr(fmt.Sprintf("n%d", i))
		node := &FuncNode{Addr: addr, Fn: func(p *Packet) {
			traces[i] = append(traces[i], fmt.Sprintf("%d:%s->%s/%s", loops[i%shards].Now(), p.Src, p.Dst, p.Kind))
			// Echo pings back — the reply is pool-owned and usually
			// crosses a shard boundary.
			if p.Kind == "ping" {
				n.Send(n.AllocPacket(addr, p.Src, 64, "echo", nil))
			}
		}}
		if err := n.Attach(node); err != nil {
			t.Fatal(err)
		}
		if err := n.AssignShard(addr, i%shards); err != nil {
			t.Fatal(err)
		}
	}
	// Every node pings its two clockwise neighbours every 3ms, staggered
	// by node index so distinct links produce co-timed arrivals.
	for i := 0; i < nodes; i++ {
		i := i
		src := Addr(fmt.Sprintf("n%d", i))
		l := loops[i%shards]
		var pump func(k int)
		pump = func(k int) {
			if k == 0 {
				return
			}
			l.AfterTimer(3*sim.Millisecond+sim.Time(i)*sim.Microsecond, "pump", func(_, _ any, _ uint64) {
				for _, d := range []int{1, 2} {
					dst := Addr(fmt.Sprintf("n%d", (i+d)%nodes))
					n.Send(n.AllocPacket(src, dst, 128, "ping", nil))
				}
				pump(k - 1)
			}, nil, nil, 0)
		}
		pump(8)
	}
	co := sim.NewCoordinator(ctrl, loops, n.Lookahead, n.Exchange, nil)
	co.SetParallel(parallel)
	if err := co.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n.PendingExchange() != 0 {
		// The last inclusive window may park sends emitted at the horizon;
		// drain them so the traces are complete and pools reclaim.
		n.Exchange()
		if err := co.RunUntil(110 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return traces
}

// TestShardedFabricPartitionInvariance pins the fabric's core guarantee:
// the shard partition is unobservable. Per-node delivery traces (time,
// endpoints, kind) are byte-identical for K=1, K=2 and K=3, sequential
// and parallel.
func TestShardedFabricPartitionInvariance(t *testing.T) {
	base := runShardedEcho(t, 1, false)
	total := 0
	for _, tr := range base {
		total += len(tr)
	}
	if total == 0 {
		t.Fatal("no deliveries")
	}
	for _, tc := range []struct {
		k        int
		parallel bool
	}{{2, false}, {2, true}, {3, false}, {3, true}} {
		got := runShardedEcho(t, tc.k, tc.parallel)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("K=%d parallel=%v: per-node delivery traces diverged from K=1\ngot  %v\nwant %v",
				tc.k, tc.parallel, got, base)
		}
	}
}

// TestCrossShardSendParksUntilExchange verifies the conservative-lookahead
// contract at the fabric layer: a cross-shard send does not appear on the
// destination loop until Exchange runs, and arrives at its exact latency
// afterwards.
func TestCrossShardSendParksUntilExchange(t *testing.T) {
	ctrl := sim.NewLoop()
	n, err := New(ctrl, sim.NewSource(1).Stream("net"), LinkConfig{Latency: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	loops := []*sim.Loop{sim.NewLoop(), sim.NewLoop()}
	if err := n.SetShards(loops); err != nil {
		t.Fatal(err)
	}
	var at sim.Time
	sink := &FuncNode{Addr: "b", Fn: func(p *Packet) { at = loops[1].Now() }}
	if err := n.Attach(sink); err != nil {
		t.Fatal(err)
	}
	if err := n.AssignShard("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AssignShard("b", 1); err != nil {
		t.Fatal(err)
	}
	n.Send(&Packet{Src: "a", Dst: "b", Size: 10, Kind: "x"})
	if got := n.PendingExchange(); got != 1 {
		t.Fatalf("PendingExchange = %d, want 1 (cross-shard send must park)", got)
	}
	if loops[1].HasPendingEvents() {
		t.Fatal("cross-shard send reached the destination loop before Exchange")
	}
	n.Exchange()
	if got := n.PendingExchange(); got != 0 {
		t.Fatalf("PendingExchange = %d after Exchange, want 0", got)
	}
	if err := loops[1].RunUntil(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if at != sim.Millisecond {
		t.Fatalf("delivered at %v, want 1ms", at)
	}
}

// TestShardOfFollowsAssignment covers the assignment bookkeeping used by
// the cluster when placing hosts and gateways.
func TestShardOfFollowsAssignment(t *testing.T) {
	ctrl := sim.NewLoop()
	n, err := New(ctrl, sim.NewSource(1).Stream("net"), LinkConfig{Latency: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumShards() != 1 {
		t.Fatalf("NumShards = %d before SetShards, want 1", n.NumShards())
	}
	loops := []*sim.Loop{sim.NewLoop(), sim.NewLoop(), sim.NewLoop()}
	if err := n.SetShards(loops); err != nil {
		t.Fatal(err)
	}
	if n.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", n.NumShards())
	}
	if got := n.ShardOf("unassigned"); got != 0 {
		t.Fatalf("ShardOf(unassigned) = %d, want default 0", got)
	}
	if err := n.AssignShard("x", 2); err != nil {
		t.Fatal(err)
	}
	if got := n.ShardOf("x"); got != 2 {
		t.Fatalf("ShardOf(x) = %d, want 2", got)
	}
	if err := n.AssignShard("x", 5); err == nil {
		t.Fatal("AssignShard out of range did not error")
	}
}
