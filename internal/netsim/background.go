package netsim

import (
	"fmt"

	"stopwatch/internal/sim"
)

// Broadcaster reproduces the paper's experimental backdrop: the three hosts
// sat on a /24 campus subnet whose broadcast traffic (ARP and friends,
// 50–100 packets per second) was replicated to every guest throughout the
// experiments. A Broadcaster injects that background load so the
// reproduction's numbers, like the paper's, include it.
type Broadcaster struct {
	net      *Network
	loop     *sim.Loop
	rng      *sim.Rand
	src      Addr
	targets  []Addr
	meanGap  sim.Time
	size     int
	running  bool
	sent     uint64
	stopTime sim.Time
}

// BroadcasterConfig configures background broadcast traffic.
type BroadcasterConfig struct {
	Src Addr
	// Targets receive each broadcast packet.
	Targets []Addr
	// RatePerSec is the mean broadcast rate (Poisson arrivals).
	RatePerSec float64
	// Size is bytes per packet (ARP-ish: 60).
	Size int
}

// NewBroadcaster creates the generator; call Start to begin.
func NewBroadcaster(net *Network, loop *sim.Loop, rng *sim.Rand, cfg BroadcasterConfig) (*Broadcaster, error) {
	if net == nil || loop == nil || rng == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrNet)
	}
	if cfg.RatePerSec <= 0 || cfg.Size <= 0 || len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("%w: broadcaster %+v", ErrNet, cfg)
	}
	return &Broadcaster{
		net:     net,
		loop:    loop,
		rng:     rng,
		src:     cfg.Src,
		targets: append([]Addr(nil), cfg.Targets...),
		meanGap: sim.Time(float64(sim.Second) / cfg.RatePerSec),
		size:    cfg.Size,
	}, nil
}

// Start begins emitting broadcasts until the given stop time.
func (b *Broadcaster) Start(until sim.Time) {
	if b.running {
		return
	}
	b.running = true
	b.stopTime = until
	b.scheduleNext()
}

func (b *Broadcaster) scheduleNext() {
	gap := b.rng.ExpDur(b.meanGap)
	b.loop.AfterTimer(gap, "bcast", broadcastTimer, b, nil, 0)
}

func broadcastTimer(a, _ any, _ uint64) {
	b := a.(*Broadcaster)
	if b.loop.Now() >= b.stopTime {
		b.running = false
		return
	}
	for _, dst := range b.targets {
		b.net.Send(b.net.AllocPacket(b.src, dst, b.size, "broadcast", nil))
	}
	b.sent++
	b.scheduleNext()
}

// Sent returns the number of broadcast rounds emitted.
func (b *Broadcaster) Sent() uint64 { return b.sent }
