package netsim

import (
	"errors"
	"testing"

	"stopwatch/internal/sim"
)

func testNet(t *testing.T, def LinkConfig) (*Network, *sim.Loop) {
	t.Helper()
	loop := sim.NewLoop()
	rng := sim.NewSource(42).Stream("net")
	n, err := New(loop, rng, def)
	if err != nil {
		t.Fatal(err)
	}
	return n, loop
}

func TestSendDeliversAfterLatency(t *testing.T) {
	n, loop := testNet(t, LinkConfig{Latency: 5 * sim.Millisecond})
	var at sim.Time
	var got *Packet
	sink := &FuncNode{Addr: "b", Fn: func(p *Packet) { at = loop.Now(); got = p }}
	if err := n.Attach(sink); err != nil {
		t.Fatal(err)
	}
	n.Send(&Packet{Src: "a", Dst: "b", Size: 100, Kind: "test"})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if at != 5*sim.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", at)
	}
	if got.ID == 0 {
		t.Fatal("packet ID not assigned")
	}
	if s := n.Stats(); s.Delivered != 1 || s.Lost != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000 B/s → a 500B packet takes 500ms on the wire; two back-to-back
	// packets serialize.
	n, loop := testNet(t, LinkConfig{BandwidthBps: 1000})
	var arrivals []sim.Time
	sink := &FuncNode{Addr: "b", Fn: func(p *Packet) { arrivals = append(arrivals, loop.Now()) }}
	if err := n.Attach(sink); err != nil {
		t.Fatal(err)
	}
	n.Send(&Packet{Src: "a", Dst: "b", Size: 500, Kind: "p1"})
	n.Send(&Packet{Src: "a", Dst: "b", Size: 500, Kind: "p2"})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[0] != 500*sim.Millisecond || arrivals[1] != sim.Second {
		t.Fatalf("serialization wrong: %v", arrivals)
	}
}

func TestPerPairLinkOverride(t *testing.T) {
	n, loop := testNet(t, LinkConfig{Latency: sim.Millisecond})
	if err := n.SetDuplexLink("a", "b", LinkConfig{Latency: 20 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var atAB, atBC sim.Time
	if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { atAB = loop.Now() }}); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(&FuncNode{Addr: "c", Fn: func(*Packet) { atBC = loop.Now() }}); err != nil {
		t.Fatal(err)
	}
	n.Send(&Packet{Src: "a", Dst: "b", Size: 1, Kind: "x"})
	n.Send(&Packet{Src: "b", Dst: "c", Size: 1, Kind: "y"})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if atAB != 20*sim.Millisecond {
		t.Fatalf("override link latency not applied: %v", atAB)
	}
	if atBC != sim.Millisecond {
		t.Fatalf("default link latency not applied: %v", atBC)
	}
}

func TestLossInjection(t *testing.T) {
	n, loop := testNet(t, LinkConfig{LossProb: 1.0})
	delivered := 0
	if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		n.Send(&Packet{Src: "a", Dst: "b", Size: 1, Kind: "x"})
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("loss=1.0 delivered %d packets", delivered)
	}
	if s := n.Stats(); s.Lost != 50 {
		t.Fatalf("lost = %d, want 50", s.Lost)
	}
	sent, dropped := n.LinkStats("a", "b")
	if sent != 50 || dropped != 50 {
		t.Fatalf("link stats sent=%d dropped=%d", sent, dropped)
	}
}

func TestPartialLossRate(t *testing.T) {
	n, loop := testNet(t, LinkConfig{LossProb: 0.25})
	delivered := 0
	if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	const total = 20000
	for i := 0; i < total; i++ {
		n.Send(&Packet{Src: "a", Dst: "b", Size: 1, Kind: "x"})
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(delivered) / total
	if rate < 0.73 || rate > 0.77 {
		t.Fatalf("delivery rate %v, want ~0.75", rate)
	}
}

func TestDeliveryToUnknownAddressCountsLost(t *testing.T) {
	n, loop := testNet(t, LinkConfig{})
	n.Send(&Packet{Src: "a", Dst: "ghost", Size: 1, Kind: "x"})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.Lost != 1 || s.Delivered != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDetach(t *testing.T) {
	n, loop := testNet(t, LinkConfig{})
	delivered := 0
	if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	n.Detach("b")
	n.Send(&Packet{Src: "a", Dst: "b", Size: 1, Kind: "x"})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("detached node received packet")
	}
}

func TestValidation(t *testing.T) {
	loop := sim.NewLoop()
	rng := sim.NewSource(1).Stream("x")
	if _, err := New(nil, rng, LinkConfig{}); !errors.Is(err, ErrNet) {
		t.Fatal("nil loop should fail")
	}
	if _, err := New(loop, nil, LinkConfig{}); !errors.Is(err, ErrNet) {
		t.Fatal("nil rng should fail")
	}
	if _, err := New(loop, rng, LinkConfig{LossProb: 2}); !errors.Is(err, ErrNet) {
		t.Fatal("bad loss prob should fail")
	}
	n, _ := New(loop, rng, LinkConfig{})
	if err := n.Attach(nil); !errors.Is(err, ErrNet) {
		t.Fatal("nil node should fail")
	}
	if err := n.Attach(&FuncNode{Addr: ""}); !errors.Is(err, ErrNet) {
		t.Fatal("empty addr should fail")
	}
	if err := n.SetLink("a", "b", LinkConfig{Latency: -1}); !errors.Is(err, ErrNet) {
		t.Fatal("negative latency should fail")
	}
}

func TestJitterWithinBounds(t *testing.T) {
	n, loop := testNet(t, LinkConfig{Latency: 10 * sim.Millisecond, JitterMax: 5 * sim.Millisecond})
	var arrivals []sim.Time
	if err := n.Attach(&FuncNode{Addr: "b", Fn: func(*Packet) { arrivals = append(arrivals, loop.Now()) }}); err != nil {
		t.Fatal(err)
	}
	const total = 500
	for i := 0; i < total; i++ {
		// Distinct send times so serialization doesn't matter.
		i := i
		loop.At(sim.Time(i)*sim.Second, "send", func() {
			n.Send(&Packet{Src: "a", Dst: "b", Size: 1, Kind: "x"})
		})
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	varied := false
	for i, at := range arrivals {
		base := sim.Time(i)*sim.Second + 10*sim.Millisecond
		d := at - base
		if d < 0 || d >= 5*sim.Millisecond {
			t.Fatalf("jitter out of bounds: %v", d)
		}
		if d != 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never varied")
	}
}

func TestPacketCloneAndString(t *testing.T) {
	p := &Packet{ID: 9, Src: "a", Dst: "b", Size: 42, Kind: "k"}
	c := p.Clone()
	c.Dst = "c"
	if p.Dst != "b" {
		t.Fatal("clone aliases original")
	}
	if p.String() != "pkt#9 k a→b 42B" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestBroadcaster(t *testing.T) {
	n, loop := testNet(t, LinkConfig{})
	rng := sim.NewSource(42).Stream("bcast")
	counts := map[Addr]int{}
	for _, a := range []Addr{"h1", "h2", "h3"} {
		a := a
		if err := n.Attach(&FuncNode{Addr: a, Fn: func(*Packet) { counts[a]++ }}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := NewBroadcaster(n, loop, rng, BroadcasterConfig{
		Src: "subnet", Targets: []Addr{"h1", "h2", "h3"}, RatePerSec: 75, Size: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Start(10 * sim.Second)
	if err := loop.RunUntil(11 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// ~75/s for 10s → ~750 rounds; each host sees each round.
	if b.Sent() < 600 || b.Sent() > 900 {
		t.Fatalf("broadcast rounds = %d, want ~750", b.Sent())
	}
	for a, c := range counts {
		if uint64(c) != b.Sent() {
			t.Fatalf("host %s saw %d broadcasts, want %d", a, c, b.Sent())
		}
	}
}

func TestBroadcasterValidation(t *testing.T) {
	n, loop := testNet(t, LinkConfig{})
	rng := sim.NewSource(1).Stream("b")
	if _, err := NewBroadcaster(nil, loop, rng, BroadcasterConfig{}); !errors.Is(err, ErrNet) {
		t.Fatal("nil net should fail")
	}
	if _, err := NewBroadcaster(n, loop, rng, BroadcasterConfig{RatePerSec: 0, Size: 60, Targets: []Addr{"x"}}); !errors.Is(err, ErrNet) {
		t.Fatal("rate 0 should fail")
	}
	if _, err := NewBroadcaster(n, loop, rng, BroadcasterConfig{RatePerSec: 10, Size: 60}); !errors.Is(err, ErrNet) {
		t.Fatal("no targets should fail")
	}
}

func TestBroadcasterDoubleStartNoop(t *testing.T) {
	n, loop := testNet(t, LinkConfig{})
	rng := sim.NewSource(2).Stream("b2")
	got := 0
	if err := n.Attach(&FuncNode{Addr: "h", Fn: func(*Packet) { got++ }}); err != nil {
		t.Fatal(err)
	}
	b, err := NewBroadcaster(n, loop, rng, BroadcasterConfig{
		Src: "s", Targets: []Addr{"h"}, RatePerSec: 100, Size: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Start(sim.Second)
	b.Start(sim.Second) // must not double the rate
	if err := loop.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got < 60 || got > 140 {
		t.Fatalf("got %d broadcasts in 1s at 100/s — double start?", got)
	}
}
