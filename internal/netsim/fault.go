// Fabric fault injection: per-link loss overrides and partition toggles
// layered on the existing per-link runtime state. Unlike SetLink — which
// resets a pair's FIFO horizons and RNG position to apply a new config —
// these switches flip mid-run without disturbing the link's stream, so a
// fault window is deterministic for every shard count and leaves the
// link's jitter/loss draw sequence exactly where an un-faulted run of the
// same traffic would have left it when the fault clears.
//
// Determinism: a partitioned link drops without consuming an RNG draw; a
// loss override redirects the probability fed to the link's own seeded
// stream. Both effects are functions of (link, send history, fault
// schedule) only — never of the shard partition.
//
// Concurrency contract: like all topology mutation, fault switches may
// only be flipped at initialization or from coordinator/barrier context
// (e.g. a control-loop event) while shard loops are parked.

package netsim

import "fmt"

// faultOn returns the directed pair's link runtime state for fault
// mutation, creating it (on the source's shard) if no traffic has flowed
// yet.
func (n *Network) faultOn(src, dst Addr) (*link, error) {
	if src == "" || dst == "" {
		return nil, fmt.Errorf("%w: fault on link %q→%q", ErrNet, src, dst)
	}
	return n.linkOn(n.shards[n.shardIdx(src)], src, dst), nil
}

// InjectLoss overrides the directed link's loss probability: p in [0, 1]
// replaces the configured LossProb for subsequent sends; p < 0 clears the
// override, restoring the configured value. The link's RNG stream is not
// reset. Barrier context only.
func (n *Network) InjectLoss(src, dst Addr, p float64) error {
	if p > 1 {
		return fmt.Errorf("%w: loss probability %v on %q→%q", ErrNet, p, src, dst)
	}
	l, err := n.faultOn(src, dst)
	if err != nil {
		return err
	}
	if p < 0 {
		p = lossUnset
	}
	l.faultLoss = p
	return nil
}

// InjectDuplexLoss applies InjectLoss in both directions.
func (n *Network) InjectDuplexLoss(a, b Addr, p float64) error {
	if err := n.InjectLoss(a, b, p); err != nil {
		return err
	}
	return n.InjectLoss(b, a, p)
}

// SetPartitioned cuts (or heals) the directed link: while partitioned,
// every send on the pair is dropped and counted, without consuming a loss
// draw — healing resumes the link's RNG stream exactly where the fault
// found it. Barrier context only.
func (n *Network) SetPartitioned(src, dst Addr, on bool) error {
	l, err := n.faultOn(src, dst)
	if err != nil {
		return err
	}
	l.partitioned = on
	return nil
}

// SetDuplexPartitioned applies SetPartitioned in both directions.
func (n *Network) SetDuplexPartitioned(a, b Addr, on bool) error {
	if err := n.SetPartitioned(a, b, on); err != nil {
		return err
	}
	return n.SetPartitioned(b, a, on)
}

// HealLink clears both fault switches (loss override and partition) on
// the directed link. Barrier context only.
func (n *Network) HealLink(src, dst Addr) error {
	l, err := n.faultOn(src, dst)
	if err != nil {
		return err
	}
	l.faultLoss = lossUnset
	l.partitioned = false
	return nil
}

// HealDuplexLink applies HealLink in both directions.
func (n *Network) HealDuplexLink(a, b Addr) error {
	if err := n.HealLink(a, b); err != nil {
		return err
	}
	return n.HealLink(b, a)
}

// LinkFaults reports the directed link's current fault state: the
// effective loss override (the configured LossProb if none is set) and
// whether the link is partitioned.
func (n *Network) LinkFaults(src, dst Addr) (loss float64, partitioned bool) {
	sh := n.shards[n.shardIdx(src)]
	l := n.linkOn(sh, src, dst)
	loss = l.cfg.LossProb
	if l.faultLoss >= 0 {
		loss = l.faultLoss
	}
	return loss, l.partitioned
}
