package scenario

import (
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestInterpreterImportsOnlyPublicSurfaces: the scenario harness is a pure
// client of the control plane. Its production sources may import the
// standard library, the stopwatch façade, and — as the one sanctioned
// internal vocabulary — the netsim fault-injection surface. Nothing else:
// reaching into internal/core, internal/vmm or internal/controlplane here
// would silently grow a private side-channel past the operations API this
// package exists to prove sufficient.
func TestInterpreterImportsOnlyPublicSurfaces(t *testing.T) {
	allowed := map[string]bool{
		"stopwatch":                 true,
		"stopwatch/internal/netsim": true,
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasPrefix(path, "stopwatch") {
				if !allowed[path] {
					t.Errorf("%s imports %s — the scenario harness may only use the stopwatch façade and the netsim fault surface", name, path)
				}
				continue
			}
			if strings.Contains(strings.SplitN(path, "/", 2)[0], ".") {
				t.Errorf("%s imports non-stdlib package %s", name, path)
			}
		}
	}
}
