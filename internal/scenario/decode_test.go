package scenario

import (
	"strings"
	"testing"
)

// minimal wraps a fleet/events/assertions body in a valid scenario head.
const head = "name: t\ndescription: d\nduration_ms: 2000\n"

const goodFleet = `fleet:
  machines: 6
  capacity: 3
  guests:
    - name: g
      count: 2
      app:
        kind: beacon
        period_ms: 5
`

func mustParse(t *testing.T, src string) *Scenario {
	t.Helper()
	sc, err := Parse("test.yaml", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sc
}

// wantErr parses (and, when parsing succeeds, validates) the document and
// requires the exact golden message.
func wantErr(t *testing.T, src, want string) {
	t.Helper()
	sc, err := Parse("test.yaml", []byte(src))
	if err == nil {
		err = sc.Validate()
	}
	if err == nil {
		t.Fatalf("document accepted, want error %q", want)
	}
	for _, line := range strings.Split(err.Error(), "\n") {
		if line == want {
			return
		}
	}
	t.Fatalf("error = %q, want golden line %q", err, want)
}

func TestDecodeFullDocument(t *testing.T) {
	sc := mustParse(t, `# a comment
name: full
description: "quoted: description"
duration_ms: 3000
seeds: [1, 2]
ci: true
digests:
  1: 0123456789abcdef
fleet:
  machines: 9
  capacity: 3
  shards: 2
  checkpoint_instr: 2000000
  stall_detector: true
  planned_migration: true
  guests:
    - name: g
      count: 2
      app:
        kind: beacon
        period_ms: 5
        compute: 500000
        disk_kb: 64
        sink: sink
      traffic:
        kind: pings
        period_ms: 20
        from: probe
    - name: v
      count: 1
      app:
        kind: fileserver
        transport: udp
      traffic:
        kind: downloads
        period_ms: 100
        size_kb: 32
events:
  - at_ms: 300
    action: admit
    guest: g
    count: 1
  - at_ms: 500
    action: kill-machine
    machine: busiest
    detected: true
    repair_after_ms: 600
  - at_ms: 900
    action: inject-loss
    from: machine:0
    to: machine:1
    prob: 0.25
    duplex: true
assertions:
  - check: stats
    field: admitted
    min: 3
  - check: oplog
    op: fail
    detected: true
    min: 1
    within_ms: 500
  - check: lockstep
    guest: all
`)
	if err := sc.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sc.Name != "full" || !sc.CI || len(sc.Seeds) != 2 || sc.Digests[1] != "0123456789abcdef" {
		t.Fatalf("head decoded wrong: %+v", sc)
	}
	f := sc.Fleet
	if f.Machines != 9 || f.CheckpointInstr != 2_000_000 || !f.StallDetector || !f.PlannedMigration {
		t.Fatalf("fleet decoded wrong: %+v", f)
	}
	if f.Guests[1].App.Transport != "udp" || f.Guests[1].Traffic.SizeKB != 32 {
		t.Fatalf("guest spec decoded wrong: %+v", f.Guests[1])
	}
	ev := sc.Events[1]
	if !ev.Busiest || !ev.Detected || ev.RepairAfterMS != 600 {
		t.Fatalf("kill-machine decoded wrong: %+v", ev)
	}
	if fault := sc.Events[2]; fault.Prob != 0.25 || !fault.Duplex || fault.ToAddr != "machine:1" {
		t.Fatalf("inject-loss decoded wrong: %+v", fault)
	}
	a := sc.Assertions[1]
	if a.Op != "fail" || a.Detected == nil || !*a.Detected || a.WithinMS != 500 || *a.Min != 1 {
		t.Fatalf("oplog assertion decoded wrong: %+v", a)
	}
}

// TestDecodeJSONEquivalent: a JSON document decodes into the same schema.
func TestDecodeJSONEquivalent(t *testing.T) {
	sc := mustParse(t, `{
  "name": "j", "description": "d", "duration_ms": 2000,
  "fleet": {"machines": 6, "capacity": 3,
    "guests": [{"name": "g", "count": 1, "app": {"kind": "probe"}}]},
  "events": [{"at_ms": 100, "action": "evict", "guest": "g"}]
}`)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.Guests[0].App.Kind != "probe" || sc.Events[0].Action != "evict" {
		t.Fatalf("json decoded wrong: %+v", sc)
	}
}

func TestDecodeGoldenErrors(t *testing.T) {
	// Unknown action.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: explode
`, `test.yaml:14: unknown action "explode"`)
	// Unknown key on a known action.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: evict
    guest: g-0
    force: true
`, `test.yaml:17: unknown evict event key "force" (allowed: at_ms, action, guest)`)
	// Unknown assertion check.
	wantErr(t, head+goodFleet+`assertions:
  - check: vibes
`, `test.yaml:14: unknown check "vibes"`)
	// Unknown app kind.
	wantErr(t, head+`fleet:
  machines: 6
  capacity: 3
  guests:
    - name: g
      count: 1
      app:
        kind: kubernetes
`, `test.yaml:11: unknown app kind "kubernetes" (beacon, fileserver, probe)`)
	// Missing at_ms.
	wantErr(t, head+goodFleet+`events:
  - action: evict
    guest: g-0
`, `test.yaml:14: event needs at_ms`)
	// Malformed digest pin.
	wantErr(t, head+"digests:\n  1: abc\n"+goodFleet,
		`test.yaml:5: digest for seed 1 must be 16 hex chars`)
	// Malformed output-digest pin.
	wantErr(t, head+"output_digests:\n  1:\n    g-0: abc\n"+goodFleet,
		`test.yaml:6: output digest for guest "g-0" under seed 1 must be 16 hex chars`)
	// Non-seed output-digest key.
	wantErr(t, head+"output_digests:\n  alpha:\n    g-0: 0123456789abcdef\n"+goodFleet,
		`test.yaml:5: output_digests key must be a seed, got "alpha"`)
}

// TestDecodeNotFiredAndOutputDigests: the not_fired oplog form and the
// per-guest output-digest pins decode into the schema.
func TestDecodeNotFiredAndOutputDigests(t *testing.T) {
	sc := mustParse(t, head+"output_digests:\n  1:\n    g-0: 0123456789abcdef\n"+goodFleet+`assertions:
  - check: oplog
    op: repair
    not_fired: true
`)
	if err := sc.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sc.OutputDigests[1]["g-0"] != "0123456789abcdef" {
		t.Fatalf("output digests decoded wrong: %+v", sc.OutputDigests)
	}
	a := sc.Assertions[0]
	if !a.NotFired || a.Min != nil || a.Max != nil {
		t.Fatalf("not_fired assertion decoded wrong: %+v", a)
	}
}

func TestValidateGoldenErrors(t *testing.T) {
	// Events out of order.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 500
    action: evict
    guest: g-0
  - at_ms: 300
    action: evict
    guest: g-1
`, `test.yaml:17: events out of order: at_ms 300 after 500`)
	// Undeclared guest target.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: evict
    guest: ghost
`, `test.yaml:14: evict event references undeclared guest "ghost"`)
	// Bare name for a multi-instance spec.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: evict
    guest: g
`, `test.yaml:14: evict event: guest spec "g" has 2 instances — reference one as "g-0" etc.`)
	// Instance index beyond the population.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: evict
    guest: g-7
`, `test.yaml:14: evict event: guest "g-7" out of range (spec "g" has 2 instances)`)
	// Machine out of range.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: drain
    machine: 11
`, `test.yaml:14: drain event: machine 11 out of range (fleet has 6 machines)`)
	// Event beyond the run.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 2500
    action: drain
    machine: 0
`, `test.yaml:14: drain event at_ms 2500 is beyond the scenario duration 2000`)
	// Detected kill without the detector armed.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: kill-machine
    machine: 0
    detected: true
`, `test.yaml:14: kill-machine event: detected kill needs fleet stall_detector: true`)
	// within_ms without detected FailOps.
	wantErr(t, head+goodFleet+`assertions:
  - check: oplog
    op: evict
    min: 1
    within_ms: 100
`, `test.yaml:14: oplog assertion: within_ms needs op: fail with detected: true`)
	// Unknown stats counter.
	wantErr(t, head+goodFleet+`assertions:
  - check: stats
    field: vibes
    min: 1
`, `test.yaml:14: stats assertion: unknown field "vibes"`)
	// Coresident arity.
	wantErr(t, head+goodFleet+`assertions:
  - check: coresident
    guests: [g-0]
`, `test.yaml:14: coresident assertion needs exactly 2 guests, got 1`)
	// saturate-disk on a spec with no disk load.
	wantErr(t, head+goodFleet+`events:
  - at_ms: 100
    action: saturate-disk
    guest: g
    count: 1
`, `test.yaml:14: saturate-disk event: guest spec "g" has no disk load (set app disk_kb)`)
	// not_fired combined with a bound.
	wantErr(t, head+goodFleet+`assertions:
  - check: oplog
    op: repair
    not_fired: true
    max: 1
`, `test.yaml:14: oplog assertion: not_fired excludes min/max/within_ms`)
	// An oplog assertion with no bound at all.
	wantErr(t, head+goodFleet+`assertions:
  - check: oplog
    op: repair
`, `test.yaml:14: oplog assertion needs min and/or max (or not_fired: true)`)
	// Output-digest pin for an undeclared instance.
	wantErr(t, head+"output_digests:\n  1:\n    ghost: 0123456789abcdef\n"+goodFleet,
		`test.yaml:1: output_digests seed 1 references undeclared guest "ghost"`)
}

func TestParserRejectsMalformedYAML(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"\tname: x\n", "test.yaml:1: tab in indentation"},
		{"name: x\nname: y\n", `test.yaml:2: duplicate key "name"`},
		{"name: \"unterminated\n", `test.yaml:1: unterminated quoted string "unterminated`},
		{"name: [a, b\n", `test.yaml:1: unterminated flow list "[a, b"`},
	} {
		_, err := Parse("test.yaml", []byte(tc.src))
		if err == nil || err.Error() != tc.want {
			t.Errorf("src %q: err = %v, want %q", tc.src, err, tc.want)
		}
	}
}

// TestParserYAMLShapes: comments, quoting, flow lists and nested blocks
// land in the right nodes.
func TestParserYAMLShapes(t *testing.T) {
	sc := mustParse(t, head+`seeds: [3, 5]  # trailing comment
fleet:
  machines: 6
  capacity: 3
  nodes: ['a#1', "b c"]
  guests:
    - name: g
      count: 1
      app:
        kind: probe
`)
	if len(sc.Seeds) != 2 || sc.Seeds[0] != 3 || sc.Seeds[1] != 5 {
		t.Fatalf("seeds = %v", sc.Seeds)
	}
	if len(sc.Fleet.Nodes) != 2 || sc.Fleet.Nodes[0] != "a#1" || sc.Fleet.Nodes[1] != "b c" {
		t.Fatalf("nodes = %q", sc.Fleet.Nodes)
	}
}
