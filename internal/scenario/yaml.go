// A hand-rolled parser for the YAML subset scenario files use — block
// maps, block sequences, plain/quoted scalars, flow lists, comments —
// plus JSON, both producing the same line-numbered node tree. No
// external dependencies: the repo's go.mod stays empty.

package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

type nodeKind int

const (
	scalarNode nodeKind = iota + 1
	mapNode
	seqNode
)

// node is one parsed value with provenance.
type node struct {
	kind   nodeKind
	line   int
	scalar string

	// map fields (insertion order preserved for deterministic errors)
	keys    []string
	vals    map[string]*node
	keyLine map[string]int

	// sequence items
	items []*node
}

func newMapNode(line int) *node {
	return &node{kind: mapNode, line: line, vals: map[string]*node{}, keyLine: map[string]int{}}
}

// parseTree parses a scenario document (YAML subset, or JSON when the
// first non-space byte opens an object).
func parseTree(path string, src []byte) (*node, error) {
	for _, b := range src {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return parseJSONTree(path, src)
		}
		break
	}
	return parseYAMLTree(path, src)
}

// --- YAML subset ---

type yline struct {
	indent int
	text   string
	line   int
}

type yparser struct {
	path  string
	lines []yline
	pos   int
}

func (p *yparser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.path, line, fmt.Sprintf(format, args...))
}

func parseYAMLTree(path string, src []byte) (*node, error) {
	p := &yparser{path: path}
	for i, raw := range strings.Split(string(src), "\n") {
		lineNo := i + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, p.errf(lineNo, "tab in indentation")
		}
		text := stripComment(raw[indent:])
		text = strings.TrimRight(text, " \r")
		if text == "" || text == "---" {
			continue
		}
		p.lines = append(p.lines, yline{indent: indent, text: text, line: lineNo})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty document", path)
	}
	root, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, p.errf(p.lines[p.pos].line, "unexpected content at indent %d", p.lines[p.pos].indent)
	}
	return root, nil
}

// stripComment removes a trailing "# ..." outside quotes. A '#' only
// starts a comment at the beginning of the content or after a space.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '#':
			if i == 0 || s[i-1] == ' ' {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// parseBlock parses the map or sequence starting at the current line,
// whose members sit at exactly the given indent.
func (p *yparser) parseBlock(indent int) (*node, error) {
	if p.pos >= len(p.lines) {
		return nil, p.errf(0, "unexpected end of document")
	}
	if ln := p.lines[p.pos]; ln.indent != indent {
		return nil, p.errf(ln.line, "bad indentation %d (expected %d)", ln.indent, indent)
	}
	if isSeqItem(p.lines[p.pos].text) {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *yparser) parseMap(indent int) (*node, error) {
	m := newMapNode(p.lines[p.pos].line)
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, p.errf(ln.line, "unexpected indentation %d (expected %d)", ln.indent, indent)
		}
		if isSeqItem(ln.text) {
			break
		}
		key, rest, err := splitKey(ln.text)
		if err != nil {
			return nil, p.errf(ln.line, "%v", err)
		}
		if _, dup := m.vals[key]; dup {
			return nil, p.errf(ln.line, "duplicate key %q", key)
		}
		p.pos++
		var val *node
		if rest == "" {
			// Block value: anything more-indented; else an empty scalar.
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				val, err = p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
			} else {
				val = &node{kind: scalarNode, line: ln.line}
			}
		} else {
			val, err = p.parseInline(rest, ln.line)
			if err != nil {
				return nil, err
			}
		}
		m.keys = append(m.keys, key)
		m.vals[key] = val
		m.keyLine[key] = ln.line
	}
	return m, nil
}

func (p *yparser) parseSeq(indent int) (*node, error) {
	s := &node{kind: seqNode, line: p.lines[p.pos].line}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !isSeqItem(ln.text) {
			if ln.indent > indent {
				return nil, p.errf(ln.line, "unexpected indentation %d (expected %d)", ln.indent, indent)
			}
			break
		}
		p.pos++
		if ln.text == "-" {
			// Item body on the following more-indented lines.
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				s.items = append(s.items, &node{kind: scalarNode, line: ln.line})
				continue
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			s.items = append(s.items, item)
			continue
		}
		rest := strings.TrimLeft(ln.text[1:], " ")
		childIndent := indent + (len(ln.text) - len(rest))
		if _, _, err := splitKey(rest); err == nil {
			// "- key: ..." — first entry of the item's map; re-queue it at
			// the key's own column so parseMap sees one coherent block.
			p.lines = append(p.lines[:p.pos], append([]yline{{indent: childIndent, text: rest, line: ln.line}}, p.lines[p.pos:]...)...)
			item, err := p.parseMap(childIndent)
			if err != nil {
				return nil, err
			}
			s.items = append(s.items, item)
			continue
		}
		item, err := p.parseInline(rest, ln.line)
		if err != nil {
			return nil, err
		}
		s.items = append(s.items, item)
	}
	return s, nil
}

// splitKey splits "key: rest" / "key:"; errors when the text is not a
// mapping entry.
func splitKey(text string) (key, rest string, err error) {
	var quote byte
	for i := 0; i < len(text); i++ {
		c := text[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case ':':
			if i+1 == len(text) {
				return strings.TrimSpace(text[:i]), "", nil
			}
			if text[i+1] == ' ' {
				return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+2:]), nil
			}
		}
	}
	return "", "", fmt.Errorf("not a key: value pair: %q", text)
}

// parseInline parses a scalar or flow list appearing after "key: " or
// "- ".
func (p *yparser) parseInline(s string, line int) (*node, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, p.errf(line, "unterminated flow list %q", s)
		}
		seq := &node{kind: seqNode, line: line}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return seq, nil
		}
		for _, part := range splitFlow(body) {
			item, err := p.parseScalar(strings.TrimSpace(part), line)
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, item)
		}
		return seq, nil
	}
	return p.parseScalar(s, line)
}

// splitFlow splits a flow-list body on top-level commas.
func splitFlow(s string) []string {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func (p *yparser) parseScalar(s string, line int) (*node, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		if s[len(s)-1] != s[0] {
			return nil, p.errf(line, "unterminated quoted string %s", s)
		}
		body := s[1 : len(s)-1]
		if s[0] == '"' {
			var err error
			if body, err = unescapeDouble(body); err != nil {
				return nil, p.errf(line, "%v in %s", err, s)
			}
		} else {
			body = strings.ReplaceAll(body, "''", "'")
		}
		return &node{kind: scalarNode, line: line, scalar: body}, nil
	}
	if s == "~" || s == "null" {
		return &node{kind: scalarNode, line: line}, nil
	}
	return &node{kind: scalarNode, line: line, scalar: s}, nil
}

func unescapeDouble(s string) (string, error) {
	if !strings.Contains(s, "\\") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling escape")
		}
		switch s[i] {
		case '"', '\\', '/':
			b.WriteByte(s[i])
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("unsupported escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

// --- JSON ---

func parseJSONTree(path string, src []byte) (*node, error) {
	dec := json.NewDecoder(strings.NewReader(string(src)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil {
		return nil, fmt.Errorf("%s: trailing JSON content", path)
	}
	return jsonNode(v), nil
}

// jsonNode converts a decoded JSON value. JSON carries no positions, so
// every node reports line 1; map keys are sorted for deterministic
// error output.
func jsonNode(v any) *node {
	switch t := v.(type) {
	case map[string]any:
		m := newMapNode(1)
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m.keys = append(m.keys, k)
			m.vals[k] = jsonNode(t[k])
			m.keyLine[k] = 1
		}
		return m
	case []any:
		s := &node{kind: seqNode, line: 1}
		for _, item := range t {
			s.items = append(s.items, jsonNode(item))
		}
		return s
	case json.Number:
		return &node{kind: scalarNode, line: 1, scalar: t.String()}
	case string:
		return &node{kind: scalarNode, line: 1, scalar: t}
	case bool:
		if t {
			return &node{kind: scalarNode, line: 1, scalar: "true"}
		}
		return &node{kind: scalarNode, line: 1, scalar: "false"}
	case nil:
		return &node{kind: scalarNode, line: 1}
	default:
		return &node{kind: scalarNode, line: 1, scalar: fmt.Sprint(t)}
	}
}
