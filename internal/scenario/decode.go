// Strict decoding from the parsed node tree into the Scenario schema:
// every map is checked against its allowed key set, every scalar against
// its expected type, and every error carries file:line provenance.

package scenario

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Load reads and decodes a scenario file (YAML subset or JSON by
// content). Static validation (Validate) is a separate pass.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, src)
}

// Parse decodes scenario source; path labels error messages.
func Parse(path string, src []byte) (*Scenario, error) {
	root, err := parseTree(path, src)
	if err != nil {
		return nil, err
	}
	d := &dec{path: path}
	sc, err := d.scenario(root)
	if err != nil {
		return nil, err
	}
	sc.Path = path
	return sc, nil
}

type dec struct {
	path string
}

func (d *dec) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", d.path, line, fmt.Sprintf(format, args...))
}

func (d *dec) wantMap(n *node, what string) error {
	if n.kind != mapNode {
		return d.errf(n.line, "%s must be a mapping", what)
	}
	return nil
}

// checkKeys rejects unknown keys, in file order.
func (d *dec) checkKeys(n *node, what string, allowed ...string) error {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	for _, k := range n.keys {
		if !ok[k] {
			return d.errf(n.keyLine[k], "unknown %s key %q (allowed: %s)", what, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

func (d *dec) str(n *node, key string) (string, error) {
	v, ok := n.vals[key]
	if !ok {
		return "", nil
	}
	if v.kind != scalarNode {
		return "", d.errf(v.line, "%q must be a scalar", key)
	}
	return v.scalar, nil
}

func (d *dec) intField(n *node, key string, def int64) (int64, error) {
	v, ok := n.vals[key]
	if !ok {
		return def, nil
	}
	if v.kind != scalarNode || v.scalar == "" {
		return 0, d.errf(v.line, "%q must be an integer", key)
	}
	i, err := strconv.ParseInt(strings.ReplaceAll(v.scalar, "_", ""), 10, 64)
	if err != nil {
		return 0, d.errf(v.line, "%q must be an integer, got %q", key, v.scalar)
	}
	return i, nil
}

func (d *dec) floatField(n *node, key string, def float64) (float64, error) {
	v, ok := n.vals[key]
	if !ok {
		return def, nil
	}
	if v.kind != scalarNode || v.scalar == "" {
		return 0, d.errf(v.line, "%q must be a number", key)
	}
	f, err := strconv.ParseFloat(v.scalar, 64)
	if err != nil {
		return 0, d.errf(v.line, "%q must be a number, got %q", key, v.scalar)
	}
	return f, nil
}

func (d *dec) boolField(n *node, key string, def bool) (bool, error) {
	v, ok := n.vals[key]
	if !ok {
		return def, nil
	}
	switch v.scalar {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, d.errf(v.line, "%q must be true or false, got %q", key, v.scalar)
}

// optFloat returns a pointer for presence-sensitive bounds.
func (d *dec) optFloat(n *node, key string) (*float64, error) {
	if _, ok := n.vals[key]; !ok {
		return nil, nil
	}
	f, err := d.floatField(n, key, 0)
	if err != nil {
		return nil, err
	}
	return &f, nil
}

func (d *dec) strList(n *node, key string) ([]string, error) {
	v, ok := n.vals[key]
	if !ok {
		return nil, nil
	}
	if v.kind != seqNode {
		return nil, d.errf(v.line, "%q must be a list", key)
	}
	var out []string
	for _, item := range v.items {
		if item.kind != scalarNode {
			return nil, d.errf(item.line, "%q entries must be scalars", key)
		}
		out = append(out, item.scalar)
	}
	return out, nil
}

func (d *dec) scenario(root *node) (*Scenario, error) {
	if err := d.wantMap(root, "scenario"); err != nil {
		return nil, err
	}
	if err := d.checkKeys(root, "scenario",
		"name", "description", "duration_ms", "seeds", "ci", "digests", "output_digests", "fleet", "events", "assertions"); err != nil {
		return nil, err
	}
	sc := &Scenario{}
	var err error
	if sc.Name, err = d.str(root, "name"); err != nil {
		return nil, err
	}
	if sc.Description, err = d.str(root, "description"); err != nil {
		return nil, err
	}
	if sc.DurationMS, err = d.intField(root, "duration_ms", 0); err != nil {
		return nil, err
	}
	if sc.CI, err = d.boolField(root, "ci", false); err != nil {
		return nil, err
	}
	seeds, err := d.strList(root, "seeds")
	if err != nil {
		return nil, err
	}
	for _, s := range seeds {
		u, perr := strconv.ParseUint(s, 10, 64)
		if perr != nil || u == 0 {
			return nil, d.errf(root.vals["seeds"].line, "seeds must be positive integers, got %q", s)
		}
		sc.Seeds = append(sc.Seeds, u)
	}
	if len(sc.Seeds) == 0 {
		sc.Seeds = []uint64{1}
	}
	if dg, ok := root.vals["digests"]; ok {
		if err := d.wantMap(dg, "digests"); err != nil {
			return nil, err
		}
		sc.Digests = map[uint64]string{}
		for _, k := range dg.keys {
			seed, perr := strconv.ParseUint(k, 10, 64)
			if perr != nil {
				return nil, d.errf(dg.keyLine[k], "digest key must be a seed, got %q", k)
			}
			v := dg.vals[k]
			if v.kind != scalarNode || len(v.scalar) != 16 {
				return nil, d.errf(v.line, "digest for seed %s must be 16 hex chars", k)
			}
			sc.Digests[seed] = v.scalar
		}
	}
	if od, ok := root.vals["output_digests"]; ok {
		if err := d.wantMap(od, "output_digests"); err != nil {
			return nil, err
		}
		sc.OutputDigests = map[uint64]map[string]string{}
		for _, k := range od.keys {
			seed, perr := strconv.ParseUint(k, 10, 64)
			if perr != nil {
				return nil, d.errf(od.keyLine[k], "output_digests key must be a seed, got %q", k)
			}
			per := od.vals[k]
			if err := d.wantMap(per, "output_digests seed "+k); err != nil {
				return nil, err
			}
			byGuest := map[string]string{}
			for _, g := range per.keys {
				v := per.vals[g]
				if v.kind != scalarNode || len(v.scalar) != 16 {
					return nil, d.errf(v.line, "output digest for guest %q under seed %s must be 16 hex chars", g, k)
				}
				byGuest[g] = v.scalar
			}
			sc.OutputDigests[seed] = byGuest
		}
	}
	fl, ok := root.vals["fleet"]
	if !ok {
		return nil, d.errf(root.line, "missing fleet section")
	}
	if sc.Fleet, err = d.fleet(fl); err != nil {
		return nil, err
	}
	if ev, ok := root.vals["events"]; ok {
		if ev.kind != seqNode {
			return nil, d.errf(ev.line, "events must be a list")
		}
		for _, item := range ev.items {
			e, err := d.event(item)
			if err != nil {
				return nil, err
			}
			sc.Events = append(sc.Events, e)
		}
	}
	if as, ok := root.vals["assertions"]; ok {
		if as.kind != seqNode {
			return nil, d.errf(as.line, "assertions must be a list")
		}
		for _, item := range as.items {
			a, err := d.assertion(item)
			if err != nil {
				return nil, err
			}
			sc.Assertions = append(sc.Assertions, a)
		}
	}
	return sc, nil
}

func (d *dec) fleet(n *node) (Fleet, error) {
	var f Fleet
	if err := d.wantMap(n, "fleet"); err != nil {
		return f, err
	}
	if err := d.checkKeys(n, "fleet",
		"machines", "capacity", "shards", "checkpoint_instr", "stall_detector",
		"planned_migration", "load_aware", "nodes", "guests"); err != nil {
		return f, err
	}
	var err error
	if v, e := d.intField(n, "machines", 0); e != nil {
		return f, e
	} else {
		f.Machines = int(v)
	}
	if v, e := d.intField(n, "capacity", 3); e != nil {
		return f, e
	} else {
		f.Capacity = int(v)
	}
	if v, e := d.intField(n, "shards", 1); e != nil {
		return f, e
	} else {
		f.Shards = int(v)
	}
	if f.CheckpointInstr, err = d.intField(n, "checkpoint_instr", 0); err != nil {
		return f, err
	}
	if f.StallDetector, err = d.boolField(n, "stall_detector", false); err != nil {
		return f, err
	}
	if f.PlannedMigration, err = d.boolField(n, "planned_migration", false); err != nil {
		return f, err
	}
	if f.LoadAware, err = d.boolField(n, "load_aware", false); err != nil {
		return f, err
	}
	if f.Nodes, err = d.strList(n, "nodes"); err != nil {
		return f, err
	}
	gs, ok := n.vals["guests"]
	if !ok {
		return f, d.errf(n.line, "fleet needs a guests list")
	}
	if gs.kind != seqNode {
		return f, d.errf(gs.line, "guests must be a list")
	}
	for _, item := range gs.items {
		spec, err := d.guestSpec(item)
		if err != nil {
			return f, err
		}
		f.Guests = append(f.Guests, spec)
	}
	return f, nil
}

func (d *dec) guestSpec(n *node) (GuestSpec, error) {
	var g GuestSpec
	if err := d.wantMap(n, "guest spec"); err != nil {
		return g, err
	}
	if err := d.checkKeys(n, "guest spec", "name", "count", "app", "traffic"); err != nil {
		return g, err
	}
	g.Line = n.line
	var err error
	if g.Name, err = d.str(n, "name"); err != nil {
		return g, err
	}
	if g.Name == "" {
		return g, d.errf(n.line, "guest spec needs a name")
	}
	if v, e := d.intField(n, "count", 1); e != nil {
		return g, e
	} else {
		g.Count = int(v)
	}
	app, ok := n.vals["app"]
	if !ok {
		return g, d.errf(n.line, "guest %q needs an app", g.Name)
	}
	if g.App, err = d.appSpec(app); err != nil {
		return g, err
	}
	if tr, ok := n.vals["traffic"]; ok {
		if g.Traffic, err = d.trafficSpec(tr); err != nil {
			return g, err
		}
	}
	return g, nil
}

func (d *dec) appSpec(n *node) (AppSpec, error) {
	var a AppSpec
	if err := d.wantMap(n, "app"); err != nil {
		return a, err
	}
	if err := d.checkKeys(n, "app", "kind", "period_ms", "compute", "disk_kb", "sink", "transport"); err != nil {
		return a, err
	}
	var err error
	if a.Kind, err = d.str(n, "kind"); err != nil {
		return a, err
	}
	switch a.Kind {
	case "beacon", "fileserver", "probe":
	default:
		return a, d.errf(n.line, "unknown app kind %q (beacon, fileserver, probe)", a.Kind)
	}
	if a.PeriodMS, err = d.floatField(n, "period_ms", 5); err != nil {
		return a, err
	}
	if a.Compute, err = d.intField(n, "compute", 500_000); err != nil {
		return a, err
	}
	if v, e := d.intField(n, "disk_kb", 0); e != nil {
		return a, e
	} else {
		a.DiskKB = int(v)
	}
	if a.Sink, err = d.str(n, "sink"); err != nil {
		return a, err
	}
	if a.Transport, err = d.str(n, "transport"); err != nil {
		return a, err
	}
	if a.Transport == "" {
		a.Transport = "tcp"
	}
	if a.Transport != "tcp" && a.Transport != "udp" {
		return a, d.errf(n.keyLine["transport"], "unknown transport %q (tcp, udp)", a.Transport)
	}
	return a, nil
}

func (d *dec) trafficSpec(n *node) (TrafficSpec, error) {
	var t TrafficSpec
	if err := d.wantMap(n, "traffic"); err != nil {
		return t, err
	}
	if err := d.checkKeys(n, "traffic",
		"kind", "period_ms", "from", "size_kb", "constant", "start_ms", "stop_ms"); err != nil {
		return t, err
	}
	var err error
	if t.Kind, err = d.str(n, "kind"); err != nil {
		return t, err
	}
	switch t.Kind {
	case "", "pings", "probe-stream", "downloads":
	default:
		return t, d.errf(n.line, "unknown traffic kind %q (pings, probe-stream, downloads)", t.Kind)
	}
	if t.PeriodMS, err = d.floatField(n, "period_ms", 20); err != nil {
		return t, err
	}
	if t.From, err = d.str(n, "from"); err != nil {
		return t, err
	}
	if v, e := d.intField(n, "size_kb", 64); e != nil {
		return t, e
	} else {
		t.SizeKB = int(v)
	}
	if t.Constant, err = d.boolField(n, "constant", false); err != nil {
		return t, err
	}
	if t.StartMS, err = d.intField(n, "start_ms", 0); err != nil {
		return t, err
	}
	if t.StopMS, err = d.intField(n, "stop_ms", 0); err != nil {
		return t, err
	}
	return t, nil
}

// eventKeys lists each action's allowed keys beyond at_ms/action.
var eventKeys = map[string][]string{
	"admit":         {"guest", "count"},
	"saturate-disk": {"guest", "count"},
	"evict":         {"guest"},
	"kill-machine":  {"machine", "detected", "repair_after_ms"},
	"kill-replica":  {"guest", "slot"},
	"drain":         {"machine"},
	"undrain":       {"machine"},
	"migrate":       {"guest", "to"},
	"inject-loss":   {"from", "to", "prob", "duplex"},
	"partition":     {"from", "to", "duplex"},
	"heal":          {"from", "to", "duplex"},
}

func (d *dec) event(n *node) (Event, error) {
	ev := Event{Machine: -1}
	if err := d.wantMap(n, "event"); err != nil {
		return ev, err
	}
	ev.Line = n.line
	var err error
	if ev.AtMS, err = d.intField(n, "at_ms", -1); err != nil {
		return ev, err
	}
	if ev.AtMS < 0 {
		return ev, d.errf(n.line, "event needs at_ms")
	}
	if ev.Action, err = d.str(n, "action"); err != nil {
		return ev, err
	}
	extra, ok := eventKeys[ev.Action]
	if !ok {
		return ev, d.errf(n.line, "unknown action %q", ev.Action)
	}
	if err := d.checkKeys(n, ev.Action+" event", append([]string{"at_ms", "action"}, extra...)...); err != nil {
		return ev, err
	}
	if ev.Guest, err = d.str(n, "guest"); err != nil {
		return ev, err
	}
	if v, e := d.intField(n, "count", 1); e != nil {
		return ev, e
	} else {
		ev.Count = int(v)
	}
	if m, ok := n.vals["machine"]; ok {
		if m.scalar == "busiest" {
			ev.Busiest = true
		} else {
			v, e := d.intField(n, "machine", -1)
			if e != nil {
				return ev, e
			}
			ev.Machine = int(v)
		}
	}
	if ev.Detected, err = d.boolField(n, "detected", true); err != nil {
		return ev, err
	}
	if ev.RepairAfterMS, err = d.intField(n, "repair_after_ms", 0); err != nil {
		return ev, err
	}
	if v, e := d.intField(n, "slot", 0); e != nil {
		return ev, e
	} else {
		ev.Slot = int(v)
	}
	if ev.To, err = d.str(n, "to"); err != nil {
		return ev, err
	}
	if ev.Action == "inject-loss" || ev.Action == "partition" || ev.Action == "heal" {
		if ev.From, err = d.str(n, "from"); err != nil {
			return ev, err
		}
		ev.ToAddr, ev.To = ev.To, ""
	}
	if ev.Prob, err = d.floatField(n, "prob", 0); err != nil {
		return ev, err
	}
	if ev.Duplex, err = d.boolField(n, "duplex", false); err != nil {
		return ev, err
	}
	return ev, nil
}

// assertKeys lists each check's allowed keys beyond check.
var assertKeys = map[string][]string{
	"lockstep":   {"guest", "strict"},
	"placement":  {},
	"coresident": {"guests", "min_shared"},
	"stats":      {"field", "min", "max"},
	"oplog":      {"op", "detected", "min", "max", "within_ms", "not_fired"},
	"metric":     {"name", "label", "min", "max"},
	"journal":    {"guest", "min_checkpoints"},
}

func (d *dec) assertion(n *node) (Assertion, error) {
	var a Assertion
	if err := d.wantMap(n, "assertion"); err != nil {
		return a, err
	}
	a.Line = n.line
	var err error
	if a.Check, err = d.str(n, "check"); err != nil {
		return a, err
	}
	extra, ok := assertKeys[a.Check]
	if !ok {
		return a, d.errf(n.line, "unknown check %q", a.Check)
	}
	if err := d.checkKeys(n, a.Check+" assertion", append([]string{"check"}, extra...)...); err != nil {
		return a, err
	}
	if a.Guest, err = d.str(n, "guest"); err != nil {
		return a, err
	}
	if a.Guests, err = d.strList(n, "guests"); err != nil {
		return a, err
	}
	if a.Strict, err = d.boolField(n, "strict", false); err != nil {
		return a, err
	}
	if a.Field, err = d.str(n, "field"); err != nil {
		return a, err
	}
	if a.Op, err = d.str(n, "op"); err != nil {
		return a, err
	}
	if _, ok := n.vals["detected"]; ok {
		det, e := d.boolField(n, "detected", false)
		if e != nil {
			return a, e
		}
		a.Detected = &det
	}
	if a.WithinMS, err = d.intField(n, "within_ms", 0); err != nil {
		return a, err
	}
	if a.Name, err = d.str(n, "name"); err != nil {
		return a, err
	}
	if a.Label, err = d.str(n, "label"); err != nil {
		return a, err
	}
	if a.Min, err = d.optFloat(n, "min"); err != nil {
		return a, err
	}
	if a.Max, err = d.optFloat(n, "max"); err != nil {
		return a, err
	}
	if a.NotFired, err = d.boolField(n, "not_fired", false); err != nil {
		return a, err
	}
	if v, e := d.intField(n, "min_shared", 1); e != nil {
		return a, e
	} else {
		a.MinShared = int(v)
	}
	if a.MinCheckpoints, err = d.intField(n, "min_checkpoints", 1); err != nil {
		return a, err
	}
	return a, nil
}
