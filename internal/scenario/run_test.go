package scenario

import (
	"strings"
	"testing"
)

// tiny is a fast end-to-end scenario exercising admission, an eviction,
// a drain cycle and a fabric fault.
const tiny = `name: tiny
description: smoke
duration_ms: 900
fleet:
  machines: 7
  capacity: 3
  guests:
    - name: g
      count: 3
      app:
        kind: beacon
        period_ms: 5
        compute: 500000
        sink: sink
      traffic:
        kind: pings
        period_ms: 25
        from: probe
        stop_ms: 800
events:
  - at_ms: 150
    action: inject-loss
    from: probe
    to: guest:g-0
    prob: 0.5
  - at_ms: 250
    action: heal
    from: probe
    to: guest:g-0
  - at_ms: 300
    action: evict
    guest: g-1
  - at_ms: 400
    action: drain
    machine: 0
  - at_ms: 700
    action: undrain
    machine: 0
assertions:
  - check: stats
    field: admitted
    min: 3
  - check: stats
    field: evicted
    min: 1
  - check: stats
    field: host_drains
    min: 1
  - check: placement
  - check: lockstep
    guest: all
`

// TestRunShardInvariantDigest: the same scenario produces a byte-identical
// op-log digest for every shard count — fault injection included.
func TestRunShardInvariantDigest(t *testing.T) {
	sc := mustParse(t, tiny)
	var digest string
	for _, shards := range []int{1, 2, 4} {
		res, err := Run(sc, Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !res.Passed() {
			t.Fatalf("shards=%d failures: %v", shards, res.Failures)
		}
		if digest == "" {
			digest = res.Digest
		} else if res.Digest != digest {
			t.Fatalf("shards=%d digest %s, want %s", shards, res.Digest, digest)
		}
	}
}

// TestRunReportsAssertionFailures: an unmeetable assertion lands in
// Result.Failures without erroring the run.
func TestRunReportsAssertionFailures(t *testing.T) {
	sc := mustParse(t, strings.Replace(tiny, "field: evicted\n    min: 1", "field: evicted\n    min: 99", 1))
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("unmeetable assertion passed")
	}
	found := false
	for _, f := range res.Failures {
		if strings.Contains(f, "stats assertion evicted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failures = %v, want a stats assertion defect", res.Failures)
	}
}

// TestRunChecksDigestPin: a wrong pin for the run's seed is a failure.
func TestRunChecksDigestPin(t *testing.T) {
	sc := mustParse(t, "digests:\n  1: 00000000deadbeef\n"+tiny)
	res, err := Run(sc, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, f := range res.Failures {
		if strings.Contains(f, "does not match the pin") {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("failures = %v, want a digest-pin mismatch", res.Failures)
	}
}

// TestRunRejectsInvalidScenario: Run refuses a scenario that fails static
// validation.
func TestRunRejectsInvalidScenario(t *testing.T) {
	sc := mustParse(t, strings.Replace(tiny, "guest: g-1", "guest: ghost", 1))
	if _, err := Run(sc, Options{}); err == nil {
		t.Fatal("invalid scenario ran")
	}
}
