// The interpreter: builds a cluster + control plane from the Fleet,
// schedules the event script on the simulation loop, drives traffic, and
// hands the run to assert.go. Every lifecycle mutation is a
// ControlPlane.Apply; every observation goes through Watch, the op log,
// the pool's read API and the metrics registry. The only exception is the
// netsim fault vocabulary (inject-loss / partition / heal), reached
// through Cluster.Net.
package scenario

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"

	"stopwatch"
)

// Options configures one scenario run.
type Options struct {
	// Seed overrides the scenario's first seed (0 = use the scenario's).
	Seed uint64
	// Shards overrides the fleet's shard count (0 = use the fleet's). The
	// op-log digest is identical for every value.
	Shards int
	// Out, when non-nil, receives a narration of the op stream.
	Out io.Writer
	// Listen, when non-empty, serves the observability plane
	// (/metrics, /ops) on this address for the duration of the run.
	Listen string
	// DisableReconcile turns off the pre-view-commit survivor reconcile
	// round (failure-injection experiments: demonstrate the divergence the
	// round exists to prevent).
	DisableReconcile bool
}

// Result is one scenario run's outcome.
type Result struct {
	Name   string
	Seed   uint64
	Shards int
	// Ops is the op-log length.
	Ops int
	// Digest is the op-log digest ("%016x" fnv-64a over the formatted
	// log); Pinned is the scenario's expected digest for this seed ("" =
	// unpinned).
	Digest string
	Pinned string
	// Stats is FoldOpStats over the log.
	Stats stopwatch.ControlPlaneStats
	// Failures lists every assertion or runtime defect (empty = pass).
	Failures []string
}

// Passed reports whether the run finished with no failures.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// Run validates and executes a scenario under one seed.
func Run(sc *Scenario, opt Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	seed := opt.Seed
	if seed == 0 {
		seed = sc.Seeds[0]
	}
	shards := opt.Shards
	if shards == 0 {
		shards = sc.Fleet.Shards
	}
	r := &runner{
		sc:           sc,
		opt:          opt,
		seed:         seed,
		shards:       shards,
		totals:       map[string]int{},
		nextIdx:      map[string]int{},
		evictedCkpts: map[string]int{},
		killTimes:    map[int][]stopwatch.Time{},
		repairAfter:  map[int]stopwatch.Time{},
	}
	if err := r.build(); err != nil {
		return nil, err
	}
	if r.srv != nil {
		defer r.srv.Close()
	}
	r.wire()
	if err := r.c.Run(stopwatch.Millis(float64(sc.DurationMS))); err != nil {
		return nil, err
	}
	return r.finish(), nil
}

type runner struct {
	sc     *Scenario
	opt    Options
	seed   uint64
	shards int

	c   *stopwatch.Cluster
	cp  *stopwatch.ControlPlane
	reg *stopwatch.MetricsRegistry
	srv *stopwatch.ObsrvServer

	// totals/nextIdx name instances per spec ("<name>-<i>", or the bare
	// name for single-instance specs).
	totals  map[string]int
	nextIdx map[string]int

	// evictedCkpts accumulates journal checkpoints of guests that left
	// the cloud (the journal assertion counts them alongside residents).
	evictedCkpts map[string]int

	// killTimes records kill-machine firing instants per machine (the
	// oplog within_ms assertion measures detection latency against them).
	killTimes map[int][]stopwatch.Time
	// repairAfter schedules a RepairOp that long after a machine's
	// evacuation completes.
	repairAfter map[int]stopwatch.Time

	failures []string
}

func (r *runner) failf(format string, args ...any) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
}

func (r *runner) logf(format string, args ...any) {
	if r.opt.Out != nil {
		fmt.Fprintf(r.opt.Out, format+"\n", args...)
	}
}

// build constructs the cluster, control plane, metrics registry and the
// fabric nodes the traffic models need.
func (r *runner) build() error {
	f := &r.sc.Fleet
	cfg := stopwatch.DefaultClusterConfig()
	cfg.Hosts = f.Machines
	cfg.Seed = r.seed
	cfg.Shards = r.shards
	cfg.VMM.CheckpointInstr = f.CheckpointInstr
	c, err := stopwatch.NewCluster(cfg)
	if err != nil {
		return err
	}
	cp, err := stopwatch.NewControlPlane(c, stopwatch.DefaultControlPlaneConfig(f.Capacity))
	if err != nil {
		return err
	}
	r.c, r.cp = c, cp
	if r.opt.DisableReconcile {
		c.DisableViewReconcile()
	}
	if f.PlannedMigration {
		cp.EnablePlannedMigration()
	}
	if f.LoadAware {
		cp.EnableLoadAwareAdmission(stopwatch.LoadAwareConfig{})
	}
	if f.StallDetector {
		if err := cp.EnableStallDetector(0); err != nil {
			return err
		}
	}
	// Instrumentation is digest-neutral, so the registry is always on and
	// metric assertions always have data.
	r.reg = stopwatch.NewMetricsRegistry()
	cp.InstrumentMetrics(r.reg)
	c.InstrumentMetrics(r.reg)
	if r.opt.Listen != "" {
		r.srv = stopwatch.NewObsrvServer()
		r.srv.Attach(cp, r.reg)
		if err := r.srv.Start(r.opt.Listen); err != nil {
			return err
		}
		r.logf("observability: serving http://%s/{metrics,ops}", r.srv.Addr())
	}
	// Fabric endpoints: declared extras, beacon sinks, and the traffic
	// sources, attached in sorted order for determinism.
	nodes := map[string]bool{}
	for _, n := range f.Nodes {
		nodes[n] = true
	}
	for i := range f.Guests {
		g := &f.Guests[i]
		if g.App.Sink != "" {
			nodes[g.App.Sink] = true
		}
		switch g.Traffic.Kind {
		case "pings", "probe-stream":
			nodes[r.trafficFrom(g)] = true
		}
	}
	addrs := make([]string, 0, len(nodes))
	for n := range nodes {
		addrs = append(addrs, n)
	}
	sort.Strings(addrs)
	for _, n := range addrs {
		if err := c.Net().Attach(&stopwatch.FuncNode{Addr: stopwatch.Addr(n), Fn: func(*stopwatch.Packet) {}}); err != nil {
			return err
		}
	}
	// One placement audit per completed top-level op, keyed off the event
	// stream; child moves are covered by their parent's audit.
	cp.Watch(func(ev stopwatch.OpEvent) {
		if ev.Parent != 0 || (ev.Kind != stopwatch.OpCompleted && ev.Kind != stopwatch.OpFailed) {
			return
		}
		if err := cp.Verify(); err != nil {
			r.failf("placement audit after %v: %v", ev.Op, err)
		}
	})
	// Evacuation completions — scripted or detector-chained — classify
	// errors, audit the moved guests, and schedule the repair.
	cp.Watch(func(ev stopwatch.OpEvent) {
		op, ok := ev.Op.(stopwatch.EvacuateOp)
		if !ok || (ev.Kind != stopwatch.OpCompleted && ev.Kind != stopwatch.OpFailed) {
			return
		}
		oc, _ := cp.Outcome(ev.Seq)
		r.evacuationFinished(op.Machine, oc)
	})
	if r.opt.Out != nil {
		cp.Watch(func(ev stopwatch.OpEvent) {
			switch ev.Kind {
			case stopwatch.OpCompleted:
				r.logf("t=%7.3fs  done %v", seconds(ev.At), ev.Op)
			case stopwatch.OpFailed:
				r.logf("t=%7.3fs  FAIL %v: %v", seconds(ev.At), ev.Op, ev.Err)
			}
		})
	}
	return nil
}

func seconds(t stopwatch.Time) float64 { return float64(t) / 1e9 }

// trafficFrom resolves a spec's traffic source address.
func (r *runner) trafficFrom(g *GuestSpec) string {
	if g.Traffic.From != "" {
		return g.Traffic.From
	}
	switch g.Traffic.Kind {
	case "pings":
		return g.Name + "-pinger"
	case "probe-stream":
		return g.Name + "-prober"
	default:
		return g.Name + "-client"
	}
}

// window resolves a spec's traffic window (defaults: 50ms after start to
// one second before the end, clamped to the run).
func (r *runner) window(g *GuestSpec) (start, stop stopwatch.Time) {
	dur := stopwatch.Millis(float64(r.sc.DurationMS))
	start = stopwatch.Millis(50)
	if g.Traffic.StartMS > 0 {
		start = stopwatch.Millis(float64(g.Traffic.StartMS))
	}
	stop = dur - stopwatch.Seconds(1)
	if g.Traffic.StopMS > 0 {
		stop = stopwatch.Millis(float64(g.Traffic.StopMS))
	}
	if stop > dur {
		stop = dur
	}
	if stop < start {
		stop = start
	}
	return start, stop
}

// wire admits the initial guest mix, starts the cluster, and schedules
// traffic and the event script.
func (r *runner) wire() {
	f := &r.sc.Fleet
	// The totals decide instance naming before anything runs.
	for i := range f.Guests {
		r.totals[f.Guests[i].Name] = f.Guests[i].Count
	}
	for _, ev := range r.sc.Events {
		if ev.Action == "admit" || ev.Action == "saturate-disk" {
			r.totals[ev.Guest] += ev.Count
		}
	}
	for i := range f.Guests {
		r.admitBurst(&f.Guests[i], f.Guests[i].Count)
	}
	r.c.Start()
	for i := range f.Guests {
		r.startSpecTraffic(&f.Guests[i])
	}
	for _, ev := range r.sc.Events {
		ev := ev
		r.c.Loop().At(stopwatch.Millis(float64(ev.AtMS)), "scenario:"+ev.Action, func() { r.exec(ev) })
	}
}

// instanceID names instance idx of a spec: the bare spec name when the
// population is a singleton, "<name>-<idx>" otherwise.
func (r *runner) instanceID(spec string, idx int) string {
	if r.totals[spec] == 1 {
		return spec
	}
	return fmt.Sprintf("%s-%d", spec, idx)
}

// instances returns the spec's currently-deployed instance ids, in index
// order.
func (r *runner) instances(spec string) []string {
	var ids []string
	for i := 0; i < r.nextIdx[spec]; i++ {
		id := r.instanceID(spec, i)
		if _, ok := r.c.Guest(id); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// factory builds the spec's app constructor.
func (r *runner) factory(g *GuestSpec) func() stopwatch.App {
	app := g.App
	switch app.Kind {
	case "beacon":
		period := stopwatch.Virtual(stopwatch.Millis(app.PeriodMS))
		return func() stopwatch.App {
			b := stopwatch.NewBeaconApp(period)
			b.Compute = app.Compute
			b.DiskBytes = app.DiskKB << 10
			b.Sink = stopwatch.Addr(app.Sink)
			return b
		}
	case "fileserver":
		cfg := stopwatch.DefaultFileServerConfig()
		if app.Transport == "udp" {
			cfg.Mode = stopwatch.ModeUDP
		}
		return func() stopwatch.App {
			fs, err := stopwatch.NewFileServer(cfg)
			if err != nil {
				panic(err) // config validated statically
			}
			return fs
		}
	default: // "probe"
		return func() stopwatch.App { return stopwatch.NewProbeApp() }
	}
}

// admitBurst admits count fresh instances of a spec. A full cloud
// (ErrNoFeasibleHost) is an expected outcome, not a failure.
func (r *runner) admitBurst(g *GuestSpec, count int) {
	for i := 0; i < count; i++ {
		idx := r.nextIdx[g.Name]
		r.nextIdx[g.Name]++
		id := r.instanceID(g.Name, idx)
		r.cp.Apply(stopwatch.AdmitOp{GuestID: id, Factory: r.factory(g), Done: func(oc *stopwatch.Outcome) {
			if oc.Err != nil && !errors.Is(oc.Err, stopwatch.ErrNoFeasibleHost) {
				r.failf("admit %s: %v", id, oc.Err)
			}
		}})
	}
}

// startSpecTraffic launches the spec's traffic model. Pings and fetches
// re-resolve the live instance set every period, so instances admitted or
// evicted mid-run join and leave the load naturally.
func (r *runner) startSpecTraffic(g *GuestSpec) {
	if g.Traffic.Kind == "" {
		return
	}
	start, stop := r.window(g)
	period := stopwatch.Millis(g.Traffic.PeriodMS)
	from := stopwatch.Addr(r.trafficFrom(g))
	loop := r.c.Loop()
	switch g.Traffic.Kind {
	case "pings":
		var tick func()
		tick = func() {
			if loop.Now() >= stop {
				return
			}
			for _, id := range r.instances(g.Name) {
				r.c.Net().Send(&stopwatch.Packet{Src: from, Dst: stopwatch.GuestAddr(id), Size: 128, Kind: "ping"})
			}
			loop.After(period, "scenario:ping", tick)
		}
		loop.At(start, "scenario:ping", tick)
	case "probe-stream":
		// One deterministic stream per possible instance, keyed by id, so
		// the gap sequence is independent of admission interleaving.
		for i := 0; i < r.totals[g.Name]; i++ {
			id := r.instanceID(g.Name, i)
			ps := stopwatch.NewProbeSource(r.c.Net(), loop, r.c.Source().Stream("scenario:probe:"+id),
				from, stopwatch.GuestAddr(id), period)
			ps.Constant = g.Traffic.Constant
			loop.At(start, "scenario:probe", func() { ps.Start(stop) })
		}
	case "downloads":
		cl, err := r.c.NewClient(from)
		if err != nil {
			r.failf("downloads client %s: %v", from, err)
			return
		}
		dl := stopwatch.NewDownloader(cl)
		mode := stopwatch.ModeTCP
		if g.App.Transport == "udp" {
			mode = stopwatch.ModeUDP
		}
		size := g.Traffic.SizeKB << 10
		if size <= 0 {
			size = 64 << 10
		}
		var tick func()
		tick = func() {
			if loop.Now() >= stop {
				return
			}
			for _, id := range r.instances(g.Name) {
				if err := dl.Fetch(stopwatch.GuestAddr(id), mode, size, nil); err != nil {
					r.failf("fetch from %s: %v", id, err)
				}
			}
			loop.After(period, "scenario:fetch", tick)
		}
		loop.At(start, "scenario:fetch", tick)
	}
}

// exec runs one scripted event. Events fire as loop callbacks, i.e. at
// coordinator barriers — the context where control-plane calls and fabric
// fault injection are safe.
func (r *runner) exec(ev Event) {
	switch ev.Action {
	case "admit", "saturate-disk":
		for i := range r.sc.Fleet.Guests {
			if g := &r.sc.Fleet.Guests[i]; g.Name == ev.Guest {
				r.logf("t=%7.3fs  %s %d x %s", seconds(r.c.Loop().Now()), ev.Action, ev.Count, ev.Guest)
				r.admitBurst(g, ev.Count)
				return
			}
		}
	case "evict":
		r.evict(ev.Guest, 0)
	case "kill-machine":
		r.killMachine(ev)
	case "kill-replica":
		r.killReplica(ev)
	case "drain":
		r.cp.Apply(stopwatch.DrainOp{Machine: ev.Machine, Done: func(oc *stopwatch.Outcome) {
			r.classify(fmt.Sprintf("drain %d", ev.Machine), oc.Err)
			r.auditGuests(oc.Guests)
		}})
	case "undrain":
		if oc := r.cp.Apply(stopwatch.UndrainOp{Machine: ev.Machine}); oc.Err != nil {
			r.failf("undrain %d: %v", ev.Machine, oc.Err)
		}
	case "migrate":
		r.migrate(ev)
	case "inject-loss", "partition", "heal":
		r.fault(ev)
	}
}

// classify folds an op error into failures, tolerating infeasible packing
// (the guest serves degraded on its live pair — expected under
// saturation).
func (r *runner) classify(what string, err error) {
	if err == nil {
		return
	}
	for _, sub := range unjoin(err) {
		if !errors.Is(sub, stopwatch.ErrNoFeasibleHost) {
			r.failf("%s: %v", what, sub)
		}
	}
}

func unjoin(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// auditGuests checks each moved guest's replica agreement right after its
// operation (frozen replicas excluded — a degraded guest still serves in
// lockstep on its live pair).
func (r *runner) auditGuests(ids []string) {
	for _, id := range ids {
		g, ok := r.c.Guest(id)
		if !ok {
			continue
		}
		if _, err := auditLockstep(g, false); err != nil {
			r.failf("lockstep %s: %v", id, err)
		}
	}
}

// evict departs a guest, retrying while its lifecycle is mid-operation.
func (r *runner) evict(id string, tries int) {
	g, ok := r.c.Guest(id)
	if !ok {
		r.failf("evict %s: not deployed", id)
		return
	}
	if _, busy := r.cp.InFlight(id); busy {
		if tries >= 50 {
			r.failf("evict %s: still busy after %d retries", id, tries)
			return
		}
		r.c.Loop().After(stopwatch.Millis(100), "scenario:evict-retry", func() { r.evict(id, tries+1) })
		return
	}
	if _, err := auditLockstep(g, false); err != nil {
		r.failf("lockstep before evict %s: %v", id, err)
	}
	ckpts := g.JournalStats().Checkpoints
	if oc := r.cp.Apply(stopwatch.EvictOp{GuestID: id}); oc.Err != nil {
		r.failf("evict %s: %v", id, oc.Err)
		return
	}
	r.evictedCkpts[id] += ckpts
}

func (r *runner) killMachine(ev Event) {
	m := ev.Machine
	if ev.Busiest {
		m = 0
		for h := 1; h < r.sc.Fleet.Machines; h++ {
			if len(r.cp.Pool().Residents(h)) > len(r.cp.Pool().Residents(m)) {
				m = h
			}
		}
	}
	r.logf("t=%7.3fs  kill machine %d (detected=%v)", seconds(r.c.Loop().Now()), m, ev.Detected)
	r.killTimes[m] = append(r.killTimes[m], r.c.Loop().Now())
	if ev.RepairAfterMS > 0 {
		r.repairAfter[m] = stopwatch.Millis(float64(ev.RepairAfterMS))
	}
	if ev.Detected {
		// Data-plane kill only: the stall detector notices the silent VMM,
		// auto-fails the machine and chains the evacuation; the watch
		// subscription picks the outcome up.
		if err := r.c.FailMachine(m); err != nil {
			r.failf("kill machine %d: %v", m, err)
		}
		return
	}
	if oc := r.cp.Apply(stopwatch.FailOp{Machine: m}); oc.Rejected() {
		r.failf("fail machine %d: %v", m, oc.Err)
		return
	}
	if oc := r.cp.Apply(stopwatch.EvacuateOp{Machine: m}); oc.Rejected() {
		r.failf("evacuate machine %d: %v", m, oc.Err)
	}
}

// evacuationFinished is the watch hook for every completed evacuation.
func (r *runner) evacuationFinished(m int, oc *stopwatch.Outcome) {
	r.classify(fmt.Sprintf("evacuate machine %d", m), oc.Err)
	r.auditGuests(oc.Guests)
	delay, ok := r.repairAfter[m]
	if !ok {
		return
	}
	delete(r.repairAfter, m)
	r.c.Loop().After(delay, "scenario:repair", func() {
		// A degraded guest stuck on the machine (infeasible move) keeps it
		// failed; a RepairOp would rightly refuse.
		if len(r.cp.Pool().Residents(m)) > 0 {
			return
		}
		if oc := r.cp.Apply(stopwatch.RepairOp{Machine: m}); oc.Err != nil {
			r.failf("repair machine %d: %v", m, oc.Err)
		}
	})
}

func (r *runner) killReplica(ev Event) {
	id := ev.Guest
	g, ok := r.c.Guest(id)
	if !ok {
		r.failf("kill-replica %s: not deployed", id)
		return
	}
	if _, busy := r.cp.InFlight(id); busy || len(frozenSlots(g)) > 0 {
		r.failf("kill-replica %s: guest busy or already degraded", id)
		return
	}
	victim := g.Replica(ev.Slot)
	deadHost := victim.Host()
	victim.Runtime().Stop() // the crash
	r.cp.Apply(stopwatch.ReplaceOp{GuestID: id, DeadHost: deadHost, Done: func(oc *stopwatch.Outcome) {
		r.classify(fmt.Sprintf("replace %s", id), oc.Err)
	}})
}

func (r *runner) migrate(ev Event) {
	id := ev.Guest
	tri, ok := r.cp.Pool().Triangle(id)
	if !ok {
		r.failf("migrate %s: not placed", id)
		return
	}
	from := tri[0]
	to := -1
	if ev.To == "" || ev.To == "auto" {
		to = r.migrationTarget(id, tri)
		if to < 0 {
			r.failf("migrate %s: no feasible destination", id)
			return
		}
	} else {
		to, _ = strconv.Atoi(ev.To)
	}
	r.cp.Apply(stopwatch.MigrateOp{GuestID: id, From: from, To: to, Done: func(oc *stopwatch.Outcome) {
		r.classify(fmt.Sprintf("migrate %s %d->%d", id, from, to), oc.Err)
	}})
}

// migrationTarget finds a destination keeping the triangle edge-disjoint:
// a healthy host, not in the triangle, with capacity, whose edges to the
// two remaining replicas are unused by any resident. Edge usage and load
// are recomputed from the resident triangles — the same view the
// barrier's pinned re-home will check.
func (r *runner) migrationTarget(id string, tri stopwatch.Triangle) int {
	pool := r.cp.Pool()
	used := map[[2]int]bool{}
	load := make([]int, r.sc.Fleet.Machines)
	edge := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for _, gid := range pool.IDs() {
		t, ok := pool.Triangle(gid)
		if !ok || gid == id {
			continue
		}
		for a := 0; a < 3; a++ {
			load[t[a]]++
			for b := a + 1; b < 3; b++ {
				used[edge(t[a], t[b])] = true
			}
		}
	}
	for h := 0; h < r.sc.Fleet.Machines; h++ {
		if h == tri[0] || h == tri[1] || h == tri[2] {
			continue
		}
		if pool.Drained(h) || r.cp.Failed(h) || load[h] >= pool.Capacity() {
			continue
		}
		if !used[edge(h, tri[1])] && !used[edge(h, tri[2])] {
			return h
		}
	}
	return -1
}

// fault applies a fabric fault event through the netsim injection surface.
func (r *runner) fault(ev Event) {
	a := r.linkAddr(ev.From)
	b := r.linkAddr(ev.ToAddr)
	net := r.c.Net()
	var err error
	switch ev.Action {
	case "inject-loss":
		if ev.Duplex {
			err = net.InjectDuplexLoss(a, b, ev.Prob)
		} else {
			err = net.InjectLoss(a, b, ev.Prob)
		}
	case "partition":
		if ev.Duplex {
			err = net.SetDuplexPartitioned(a, b, true)
		} else {
			err = net.SetPartitioned(a, b, true)
		}
	case "heal":
		if ev.Duplex {
			err = net.HealDuplexLink(a, b)
		} else {
			err = net.HealLink(a, b)
		}
	}
	if err != nil {
		r.failf("%s %s->%s: %v", ev.Action, a, b, err)
	} else {
		r.logf("t=%7.3fs  %s %s->%s", seconds(r.c.Loop().Now()), ev.Action, a, b)
	}
}

// linkAddr resolves a fault endpoint: "machine:N" names the host's Dom0,
// "guest:ID" the guest's public service address, anything else a literal
// fabric address.
func (r *runner) linkAddr(s string) stopwatch.Addr {
	if rest, ok := strings.CutPrefix(s, "machine:"); ok {
		return stopwatch.Addr("dom0:host" + rest)
	}
	if rest, ok := strings.CutPrefix(s, "guest:"); ok {
		return stopwatch.GuestAddr(rest)
	}
	return stopwatch.Addr(s)
}

// frozenSlots returns the slots of g's replicas whose execution is halted
// (crashed, or frozen by an abandoned move); audits exclude them.
func frozenSlots(g *stopwatch.Guest) []int {
	var slots []int
	for _, rep := range g.Replicas() {
		if rep.Runtime().Stopped() {
			slots = append(slots, rep.Slot())
		}
	}
	return slots
}

// auditLockstep checks replica agreement: frozen replicas are excluded
// and flagged as degraded; strict escalates fully-live guests to the
// exact digest+count check.
func auditLockstep(g *stopwatch.Guest, strict bool) (degraded bool, err error) {
	if dead := frozenSlots(g); len(dead) > 0 {
		return true, g.CheckLockstepPrefixExcluding(dead...)
	}
	if strict {
		return false, g.CheckLockstep()
	}
	return false, g.CheckLockstepPrefix()
}

// finish publishes the final snapshot, evaluates the assertions and digest
// pin, and assembles the result.
func (r *runner) finish() *Result {
	if r.srv != nil {
		r.srv.Publish(r.reg)
	}
	log := r.cp.Log()
	digest := fnv.New64a()
	_, _ = digest.Write([]byte(stopwatch.FormatOpLog(log)))
	res := &Result{
		Name:   r.sc.Name,
		Seed:   r.seed,
		Shards: r.shards,
		Ops:    len(log),
		Digest: fmt.Sprintf("%016x", digest.Sum64()),
		Pinned: r.sc.Digests[r.seed],
		Stats:  stopwatch.FoldOpStats(log),
	}
	r.assertAll(log, res)
	if res.Pinned != "" && res.Pinned != res.Digest {
		r.failf("op-log digest %s does not match the pin %s for seed %d", res.Digest, res.Pinned, r.seed)
	}
	r.checkOutputDigests()
	res.Failures = r.failures
	return res
}

// checkOutputDigests compares every live replica of each pinned instance
// against the scenario's per-guest output-digest pin for this seed — the
// data-plane counterpart of the op-log pin.
func (r *runner) checkOutputDigests() {
	pins := r.sc.OutputDigests[r.seed]
	for _, id := range sortedGuests(pins) {
		want := pins[id]
		g, ok := r.c.Guest(id)
		if !ok {
			r.failf("output digest %s: guest not deployed", id)
			continue
		}
		for _, rep := range g.Replicas() {
			if rep.Runtime().Stopped() {
				continue // a frozen replica's output is the degraded prefix
			}
			got := fmt.Sprintf("%016x", rep.Runtime().VM().OutputDigest())
			if got != want {
				r.failf("output digest %s slot %d: %s does not match the pin %s for seed %d",
					id, rep.Slot(), got, want, r.seed)
			}
		}
	}
}
