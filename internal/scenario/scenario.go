// Package scenario is the declarative fleet-scenario harness (Navarch
// style): YAML/JSON scenario files describe a fleet (machines, capacity,
// guest mix with app kinds and traffic models), a script of virtual-
// time-stamped events (admit bursts, evictions, machine kills, drains,
// migrations, fabric faults) and a set of end-of-run assertions (guest
// lockstep, placement verification, op-log expectations, metric
// predicates, per-seed op-log digest pins).
//
// The interpreter is deliberately a pure client of the public control
// surface: every lifecycle mutation goes through ControlPlane.Apply,
// every observation through Watch, the op log, FoldOpStats, the pool's
// read API and the metrics registry. The only internal vocabulary it
// speaks is the netsim fault-injection surface (per-link loss overrides
// and partition toggles), which exists precisely to be scripted. This
// package importing nothing but the stopwatch façade and that fault
// vocabulary is enforced by a test — the harness doubles as proof that
// the operations API is sufficient for external tooling.
//
// Parsing has no external dependencies: a small YAML-subset parser
// (block maps and sequences, scalars, quoted strings, flow lists,
// comments) with line-numbered errors; JSON documents decode into the
// same tree.
package scenario

// Scenario is one parsed scenario file.
type Scenario struct {
	// Name identifies the scenario (reports, CI).
	Name string
	// Description is free-form documentation.
	Description string
	// DurationMS is the simulated run length in milliseconds.
	DurationMS int64
	// Seeds are the master seeds the scenario is pinned/run under
	// (default: [1]).
	Seeds []uint64
	// CI marks the scenario for execution (not just validation) in CI.
	CI bool
	// Digests pins the op-log digest per seed ("%016x"); empty means
	// unpinned. A digest mismatch is an assertion failure.
	Digests map[uint64]string
	// OutputDigests pins per-guest output digests per seed
	// (seed → instance → "%016x"): the data-plane counterpart of Digests,
	// checked against every live replica of the instance at end of run.
	OutputDigests map[uint64]map[string]string

	Fleet      Fleet
	Events     []Event
	Assertions []Assertion

	// Path is the file the scenario was parsed from (error messages).
	Path string
}

// Fleet describes the cloud a scenario runs on.
type Fleet struct {
	// Machines is the host count.
	Machines int
	// Capacity is the per-host guest-replica capacity (control plane).
	Capacity int
	// Shards is the default fabric shard count (CLI -shards overrides;
	// results are identical for every value).
	Shards int
	// CheckpointInstr enables journal checkpoints every N instructions
	// (0 = off; must be a multiple of the VMM exit quantum).
	CheckpointInstr int64
	// StallDetector arms the proposal-deadline stall detector.
	StallDetector bool
	// PlannedMigration turns infeasible placements into one-move plans.
	PlannedMigration bool
	// LoadAware enables telemetry-driven admission.
	LoadAware bool
	// Nodes are extra fabric sink addresses to attach (beacon sinks,
	// probe sources are attached automatically; list any extras here).
	Nodes []string
	// Guests is the guest mix.
	Guests []GuestSpec
}

// GuestSpec declares one guest population: an app kind, an optional
// traffic model, and how many instances are admitted at t=0 (events may
// admit more). A spec whose total instance count is 1 is addressed by its
// bare name; otherwise instances are "<name>-0", "<name>-1", …
type GuestSpec struct {
	Name    string
	Count   int
	App     AppSpec
	Traffic TrafficSpec

	// Line is the spec's position in the file.
	Line int
}

// AppSpec selects and parameterizes the guest application.
type AppSpec struct {
	// Kind: "beacon" | "fileserver" | "probe".
	Kind string
	// PeriodMS is the beacon burst period (guest virtual time).
	PeriodMS float64
	// Compute is the beacon per-burst compute (instructions).
	Compute int64
	// DiskKB is the beacon per-burst disk read (KB).
	DiskKB int
	// Sink is the beacon's packet sink address ("" disables).
	Sink string
	// Transport: "tcp" | "udp" (fileserver).
	Transport string
}

// TrafficSpec drives external load at a guest population.
type TrafficSpec struct {
	// Kind: "" (none) | "pings" | "probe-stream" | "downloads".
	Kind string
	// PeriodMS is the ping/fetch period, or the probe-stream mean gap.
	PeriodMS float64
	// From names the fabric source (pings, probe-stream) or the transport
	// client (downloads). Defaults derive from the spec name.
	From string
	// SizeKB is the downloads fetch size.
	SizeKB int
	// Constant makes probe-stream gaps constant instead of Poisson.
	Constant bool
	// StartMS/StopMS bound the traffic window (defaults: 50ms to
	// duration−1s).
	StartMS int64
	StopMS  int64
}

// Event is one scripted action at a virtual time.
type Event struct {
	// AtMS is the firing time in milliseconds of simulated time.
	AtMS int64
	// Action discriminates the union: admit | saturate-disk | evict |
	// kill-machine | kill-replica | drain | undrain | migrate |
	// inject-loss | partition | heal.
	Action string
	// Line is the event's position in the file.
	Line int

	// Guest targets a spec (admit, saturate-disk) or an instance (evict,
	// kill-replica, migrate).
	Guest string
	// Count is the admit/saturate burst size.
	Count int
	// Machine targets a host (kill-machine, drain, undrain); -1 unset.
	Machine int
	// Busiest picks the machine with the most residents (kill-machine).
	Busiest bool
	// Detected routes a kill through the data plane only, leaving the
	// stall detector to fail the machine; false scripts the FailOp +
	// EvacuateOp directly.
	Detected bool
	// RepairAfterMS schedules a RepairOp that long after the machine's
	// evacuation completes (0 = never).
	RepairAfterMS int64
	// Slot selects the replica for kill-replica.
	Slot int
	// To is the migrate destination: "auto" or a machine index.
	To string
	// From/ToAddr are link endpoints for fabric faults. Forms:
	// "machine:N" (the host's Dom0), "guest:NAME" (the guest's public
	// service address), or a literal fabric address.
	From   string
	ToAddr string
	// Prob is the inject-loss probability.
	Prob float64
	// Duplex applies the fault in both directions.
	Duplex bool
}

// Assertion is one end-of-run check.
type Assertion struct {
	// Check discriminates the union: lockstep | placement | coresident |
	// stats | oplog | metric | journal.
	Check string
	// Line is the assertion's position in the file.
	Line int

	// Guest targets one instance, or "all" (lockstep, journal).
	Guest string
	// Guests are the coresident pair.
	Guests []string
	// Strict requires exact lockstep (no degraded prefix tolerance).
	Strict bool
	// Field is the FoldOpStats counter name (snake_case).
	Field string
	// Op is the op-log kind: admit | evict | replace | drain | undrain |
	// fail | evacuate | repair | migrate.
	Op string
	// Detected filters FailOps by their Detected flag (nil = both).
	Detected *bool
	// WithinMS bounds detection latency: every counted detected FailOp
	// must be submitted within this many ms of the kill event on its
	// machine.
	WithinMS int64
	// Name/Label select a metric family and sample.
	Name  string
	Label string
	// Min/Max bound the asserted value (stats, oplog count, metric).
	Min *float64
	Max *float64
	// NotFired asserts the op never appeared on the log at all (oplog) —
	// the readable spelling of max: 0, mutually exclusive with bounds.
	NotFired bool
	// MinShared is the coresident host-overlap lower bound.
	MinShared int
	// MinCheckpoints is the journal checkpoint lower bound.
	MinCheckpoints int64
}
