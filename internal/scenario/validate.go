// Static validation: everything that can be rejected before building a
// cluster — unknown hosts, events out of order, references to undeclared
// guests, fault endpoints out of range, assertion vocabulary. Every
// message carries file:line provenance; Validate reports all defects,
// joined.

package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// statsFields is the FoldOpStats vocabulary of the "stats" assertion.
var statsFields = map[string]bool{
	"admitted": true, "rejected": true, "evicted": true,
	"replacements": true, "replacement_failures": true,
	"drain_retries": true, "host_drains": true,
	"evacuations": true, "evacuation_failures": true,
	"host_failures": true, "crash_evacuations": true,
	"crash_evacuation_failures": true,
	"migrations":                true, "migration_failures": true, "migrations_planned": true,
	"reconcile_rounds": true, "reconcile_repairs": true, "reconcile_retries": true,
}

// opKinds is the op-log vocabulary of the "oplog" assertion.
var opKinds = map[string]bool{
	"admit": true, "evict": true, "replace": true, "drain": true,
	"undrain": true, "fail": true, "evacuate": true, "repair": true,
	"migrate": true,
}

// Validate runs every static check and returns the joined defects (nil
// when clean).
func (sc *Scenario) Validate() error {
	v := &validator{sc: sc, totals: map[string]int{}, specs: map[string]*GuestSpec{}}
	v.fleet()
	v.events()
	v.assertions()
	return errors.Join(v.errs...)
}

type validator struct {
	sc     *Scenario
	errs   []error
	specs  map[string]*GuestSpec
	totals map[string]int // spec → total instances over the whole script
}

func (v *validator) errf(line int, format string, args ...any) {
	v.errs = append(v.errs, fmt.Errorf("%s:%d: %s", v.sc.Path, line, fmt.Sprintf(format, args...)))
}

func (v *validator) fleet() {
	sc := v.sc
	if sc.Name == "" {
		v.errf(1, "scenario needs a name")
	}
	if sc.DurationMS <= 0 {
		v.errf(1, "scenario needs a positive duration_ms")
	}
	f := &sc.Fleet
	if f.Machines < 3 {
		v.errf(1, "fleet needs at least 3 machines, got %d", f.Machines)
	}
	if f.Capacity < 1 {
		v.errf(1, "fleet capacity must be at least 1, got %d", f.Capacity)
	}
	if f.Shards < 1 || f.Shards > max(f.Machines, 1) {
		v.errf(1, "fleet shards %d out of range [1, %d]", f.Shards, f.Machines)
	}
	for i := range f.Guests {
		g := &f.Guests[i]
		if _, dup := v.specs[g.Name]; dup {
			v.errf(g.Line, "duplicate guest spec %q", g.Name)
			continue
		}
		if g.Count < 0 {
			v.errf(g.Line, "guest %q count must be >= 0", g.Name)
		}
		v.specs[g.Name] = g
		v.totals[g.Name] = g.Count
		switch g.Traffic.Kind {
		case "downloads":
			if g.App.Kind != "fileserver" {
				v.errf(g.Line, "guest %q: downloads traffic needs a fileserver app, not %q", g.Name, g.App.Kind)
			}
		case "probe-stream", "pings", "":
		}
		if g.Traffic.Kind != "" && g.Traffic.PeriodMS <= 0 {
			v.errf(g.Line, "guest %q: traffic period_ms must be positive", g.Name)
		}
		if g.App.Kind == "beacon" && g.App.PeriodMS <= 0 {
			v.errf(g.Line, "guest %q: beacon period_ms must be positive", g.Name)
		}
	}
	if len(f.Guests) == 0 {
		v.errf(1, "fleet needs at least one guest spec")
	}
	// Admit bursts extend each spec's instance total.
	for _, ev := range sc.Events {
		if ev.Action == "admit" || ev.Action == "saturate-disk" {
			if _, ok := v.specs[ev.Guest]; ok {
				v.totals[ev.Guest] += ev.Count
			}
		}
	}
	for _, seed := range sortedSeeds(sc.OutputDigests) {
		for _, g := range sortedGuests(sc.OutputDigests[seed]) {
			v.guestRef(1, g, fmt.Sprintf("output_digests seed %d", seed))
		}
	}
}

// sortedSeeds/sortedGuests order the digest-pin maps for deterministic
// validation reports.
func sortedSeeds(m map[uint64]map[string]string) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedGuests(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// guestRef checks a guest reference: a spec name (when the spec's total
// is 1) or "<spec>-<i>" with i under the spec's total.
func (v *validator) guestRef(line int, ref, what string) {
	if ref == "" {
		v.errf(line, "%s needs a guest", what)
		return
	}
	if spec, ok := v.specs[ref]; ok {
		if v.totals[spec.Name] > 1 {
			v.errf(line, "%s: guest spec %q has %d instances — reference one as %q etc.",
				what, ref, v.totals[spec.Name], ref+"-0")
		}
		return
	}
	if i := strings.LastIndexByte(ref, '-'); i > 0 {
		specName, idxStr := ref[:i], ref[i+1:]
		if spec, ok := v.specs[specName]; ok {
			idx, err := strconv.Atoi(idxStr)
			if err == nil && idx >= 0 && idx < v.totals[spec.Name] {
				return
			}
			v.errf(line, "%s: guest %q out of range (spec %q has %d instances)",
				what, ref, specName, v.totals[spec.Name])
			return
		}
	}
	v.errf(line, "%s references undeclared guest %q", what, ref)
}

func (v *validator) machineRef(line int, m int, what string) {
	if m < 0 || m >= v.sc.Fleet.Machines {
		v.errf(line, "%s: machine %d out of range (fleet has %d machines)", what, m, v.sc.Fleet.Machines)
	}
}

// linkEndpoint checks a fault endpoint: "machine:N", "guest:NAME" or a
// literal address.
func (v *validator) linkEndpoint(line int, s, what string) {
	if s == "" {
		v.errf(line, "%s needs from and to endpoints", what)
		return
	}
	if rest, ok := strings.CutPrefix(s, "machine:"); ok {
		m, err := strconv.Atoi(rest)
		if err != nil {
			v.errf(line, "%s: bad machine endpoint %q", what, s)
			return
		}
		v.machineRef(line, m, what)
		return
	}
	if rest, ok := strings.CutPrefix(s, "guest:"); ok {
		v.guestRef(line, rest, what)
	}
}

func (v *validator) events() {
	sc := v.sc
	var prev int64
	for i, ev := range sc.Events {
		what := ev.Action + " event"
		if i > 0 && ev.AtMS < prev {
			v.errf(ev.Line, "events out of order: at_ms %d after %d", ev.AtMS, prev)
		}
		prev = ev.AtMS
		if ev.AtMS >= sc.DurationMS {
			v.errf(ev.Line, "%s at_ms %d is beyond the scenario duration %d", what, ev.AtMS, sc.DurationMS)
		}
		switch ev.Action {
		case "admit", "saturate-disk":
			if ev.Guest == "" {
				v.errf(ev.Line, "%s needs a guest spec", what)
			} else if spec, ok := v.specs[ev.Guest]; !ok {
				v.errf(ev.Line, "%s references undeclared guest %q", what, ev.Guest)
			} else if ev.Action == "saturate-disk" && spec.App.DiskKB <= 0 {
				v.errf(ev.Line, "saturate-disk event: guest spec %q has no disk load (set app disk_kb)", ev.Guest)
			}
			if ev.Count < 1 {
				v.errf(ev.Line, "%s count must be >= 1", what)
			}
		case "evict", "migrate":
			v.guestRef(ev.Line, ev.Guest, what)
			if ev.Action == "migrate" {
				if ev.To == "" || ev.To == "auto" {
					break
				}
				m, err := strconv.Atoi(ev.To)
				if err != nil {
					v.errf(ev.Line, "migrate event: to must be \"auto\" or a machine index, got %q", ev.To)
					break
				}
				v.machineRef(ev.Line, m, what)
			}
		case "kill-replica":
			v.guestRef(ev.Line, ev.Guest, what)
			if ev.Slot < 0 || ev.Slot > 2 {
				v.errf(ev.Line, "kill-replica event: slot %d out of range [0, 2]", ev.Slot)
			}
		case "kill-machine":
			if !ev.Busiest {
				v.machineRef(ev.Line, ev.Machine, what)
			}
			if ev.Detected && !sc.Fleet.StallDetector {
				v.errf(ev.Line, "kill-machine event: detected kill needs fleet stall_detector: true")
			}
		case "drain", "undrain":
			v.machineRef(ev.Line, ev.Machine, what)
		case "inject-loss", "partition", "heal":
			v.linkEndpoint(ev.Line, ev.From, what)
			v.linkEndpoint(ev.Line, ev.ToAddr, what)
			if ev.Action == "inject-loss" && (ev.Prob < 0 || ev.Prob > 1) {
				v.errf(ev.Line, "inject-loss event: prob %v out of range [0, 1]", ev.Prob)
			}
		}
	}
}

func (v *validator) assertions() {
	for _, a := range v.sc.Assertions {
		what := a.Check + " assertion"
		switch a.Check {
		case "lockstep":
			if a.Guest != "" && a.Guest != "all" {
				v.guestRef(a.Line, a.Guest, what)
			}
		case "journal":
			if a.Guest != "all" {
				v.guestRef(a.Line, a.Guest, what)
			}
		case "placement":
		case "coresident":
			if len(a.Guests) != 2 {
				v.errf(a.Line, "coresident assertion needs exactly 2 guests, got %d", len(a.Guests))
				break
			}
			for _, g := range a.Guests {
				v.guestRef(a.Line, g, what)
			}
		case "stats":
			if !statsFields[a.Field] {
				v.errf(a.Line, "stats assertion: unknown field %q", a.Field)
			}
			if a.Min == nil && a.Max == nil {
				v.errf(a.Line, "stats assertion needs min and/or max")
			}
		case "oplog":
			if !opKinds[a.Op] {
				v.errf(a.Line, "oplog assertion: unknown op %q", a.Op)
			}
			if a.NotFired && (a.Min != nil || a.Max != nil || a.WithinMS > 0) {
				v.errf(a.Line, "oplog assertion: not_fired excludes min/max/within_ms")
			}
			if !a.NotFired && a.Min == nil && a.Max == nil {
				v.errf(a.Line, "oplog assertion needs min and/or max (or not_fired: true)")
			}
			if a.WithinMS > 0 && (a.Op != "fail" || a.Detected == nil || !*a.Detected) {
				v.errf(a.Line, "oplog assertion: within_ms needs op: fail with detected: true")
			}
		case "metric":
			if a.Name == "" {
				v.errf(a.Line, "metric assertion needs a name")
			}
			if a.Min == nil && a.Max == nil {
				v.errf(a.Line, "metric assertion needs min and/or max")
			}
		}
	}
}
