// End-of-run assertion evaluation: lockstep, placement, coresidency,
// FoldOpStats counters, op-log expectations (counts, detection latency),
// metric predicates over the registry snapshot, and journal checkpoint
// floors. Every check reads the same public surfaces external tooling
// would: the op log, the pool, the metrics registry and the guest audit
// API.
package scenario

import (
	"fmt"

	"stopwatch"
)

// assertAll evaluates every assertion against the finished run, folding
// defects into r.failures.
func (r *runner) assertAll(log []*stopwatch.Outcome, res *Result) {
	for _, a := range r.sc.Assertions {
		switch a.Check {
		case "lockstep":
			r.assertLockstep(a)
		case "placement":
			if err := r.cp.Verify(); err != nil {
				r.failf("placement assertion: %v", err)
			}
		case "coresident":
			r.assertCoresident(a)
		case "stats":
			r.assertBound(fmt.Sprintf("stats assertion %s", a.Field), float64(statsField(res.Stats, a.Field)), a.Min, a.Max)
		case "oplog":
			r.assertOplog(a, log)
		case "metric":
			r.assertMetric(a)
		case "journal":
			r.assertJournal(a)
		}
	}
}

// assertBound checks min <= v <= max (whichever bounds are present).
func (r *runner) assertBound(what string, v float64, min, max *float64) {
	if min != nil && v < *min {
		r.failf("%s: %v below min %v", what, v, *min)
	}
	if max != nil && v > *max {
		r.failf("%s: %v above max %v", what, v, *max)
	}
}

// assertLockstep audits one instance or every resident. Strict requires
// the exact digest+count check on fully-live guests; the default
// tolerates a degraded guest's frozen replicas.
func (r *runner) assertLockstep(a Assertion) {
	ids := []string{a.Guest}
	if a.Guest == "" || a.Guest == "all" {
		ids = r.cp.Pool().IDs()
	}
	for _, id := range ids {
		g, ok := r.c.Guest(id)
		if !ok {
			r.failf("lockstep assertion: guest %s not deployed", id)
			continue
		}
		degraded, err := auditLockstep(g, a.Strict)
		if err != nil {
			r.failf("lockstep assertion %s: %v", id, err)
		}
		if degraded && a.Strict {
			r.failf("lockstep assertion %s: degraded (frozen replica) under strict", id)
		}
	}
}

// assertCoresident checks the two guests' triangles share at least
// MinShared hosts (default 1) — the paper's attacker/victim coresidency
// condition.
func (r *runner) assertCoresident(a Assertion) {
	t0, ok0 := r.cp.Pool().Triangle(a.Guests[0])
	t1, ok1 := r.cp.Pool().Triangle(a.Guests[1])
	if !ok0 || !ok1 {
		r.failf("coresident assertion: %s placed=%v, %s placed=%v", a.Guests[0], ok0, a.Guests[1], ok1)
		return
	}
	shared := 0
	for _, h0 := range t0 {
		for _, h1 := range t1 {
			if h0 == h1 {
				shared++
			}
		}
	}
	want := a.MinShared
	if want == 0 {
		want = 1
	}
	if shared < want {
		r.failf("coresident assertion: %s %v and %s %v share %d hosts, want >= %d",
			a.Guests[0], t0, a.Guests[1], t1, shared, want)
	}
}

// statsField maps a snake_case name to its FoldOpStats counter. The
// vocabulary is closed by the validator.
func statsField(st stopwatch.ControlPlaneStats, field string) int {
	switch field {
	case "admitted":
		return st.Admitted
	case "rejected":
		return st.Rejected
	case "evicted":
		return st.Evicted
	case "replacements":
		return st.Replacements
	case "replacement_failures":
		return st.ReplacementFailures
	case "drain_retries":
		return st.DrainRetries
	case "host_drains":
		return st.HostDrains
	case "evacuations":
		return st.Evacuations
	case "evacuation_failures":
		return st.EvacuationFailures
	case "host_failures":
		return st.HostFailures
	case "crash_evacuations":
		return st.CrashEvacuations
	case "crash_evacuation_failures":
		return st.CrashEvacuationFailures
	case "migrations":
		return st.Migrations
	case "migration_failures":
		return st.MigrationFailures
	case "migrations_planned":
		return st.MigrationsPlanned
	case "reconcile_rounds":
		return st.ReconcileRounds
	case "reconcile_repairs":
		return st.ReconcileRepairs
	case "reconcile_retries":
		return st.ReconcileRetries
	}
	return 0
}

// assertOplog counts log entries of the given kind (optionally filtered
// by the FailOp Detected flag) and bounds the count; within_ms
// additionally bounds each detected failure's submission latency against
// the scripted kill instant on its machine.
func (r *runner) assertOplog(a Assertion, log []*stopwatch.Outcome) {
	count := 0
	for _, oc := range log {
		if oc.Op.Kind().String() != a.Op {
			continue
		}
		if a.Detected != nil {
			fop, ok := oc.Op.(stopwatch.FailOp)
			if !ok || fop.Detected != *a.Detected {
				continue
			}
		}
		count++
		if a.WithinMS > 0 {
			fop := oc.Op.(stopwatch.FailOp) // within_ms implies op: fail, detected: true
			kill, ok := r.lastKillBefore(fop.Machine, oc.Submitted)
			if !ok {
				r.failf("oplog assertion: detected FailOp on machine %d with no scripted kill", fop.Machine)
				continue
			}
			if lat := oc.Submitted - kill; lat > stopwatch.Millis(float64(a.WithinMS)) {
				r.failf("oplog assertion: machine %d failure detected %.1fms after the kill, want <= %dms",
					fop.Machine, float64(lat)/1e6, a.WithinMS)
			}
		}
	}
	if a.NotFired {
		if count > 0 {
			r.failf("oplog assertion %s: fired %d times, want not fired at all", a.Op, count)
		}
		return
	}
	r.assertBound(fmt.Sprintf("oplog assertion %s", a.Op), float64(count), a.Min, a.Max)
}

// lastKillBefore returns the latest scripted kill on the machine at or
// before t.
func (r *runner) lastKillBefore(m int, t stopwatch.Time) (stopwatch.Time, bool) {
	var best stopwatch.Time
	found := false
	for _, kt := range r.killTimes[m] {
		if kt <= t && (!found || kt > best) {
			best, found = kt, true
		}
	}
	return best, found
}

// assertMetric bounds one sample of the end-of-run registry snapshot:
// counters and gauges by value, histograms by observation count.
func (r *runner) assertMetric(a Assertion) {
	for _, fam := range r.reg.Snapshot() {
		if fam.Name != a.Name {
			continue
		}
		for _, s := range fam.Samples {
			if a.Label != "" && s.LabelValue != a.Label {
				continue
			}
			var v float64
			switch fam.Kind {
			case "histogram":
				var n uint64
				for _, c := range s.Counts {
					n += c
				}
				v = float64(n)
			case "gauge":
				v = s.Gauge
			default:
				v = float64(s.Counter)
			}
			r.assertBound(fmt.Sprintf("metric assertion %s{%s}", a.Name, s.LabelValue), v, a.Min, a.Max)
			return
		}
	}
	// An absent sample still satisfies a pure max bound (nothing exceeded
	// it); a min bound needs the sample to exist.
	if a.Min != nil {
		r.failf("metric assertion %s{%s}: no such sample", a.Name, a.Label)
	}
}

// assertJournal floors the cumulative checkpoint count of one instance or
// of the whole run (residents plus evicted guests).
func (r *runner) assertJournal(a Assertion) {
	total := 0
	if a.Guest == "all" {
		for _, id := range r.cp.Pool().IDs() {
			if g, ok := r.c.Guest(id); ok {
				total += g.JournalStats().Checkpoints
			}
		}
		for _, n := range r.evictedCkpts {
			total += n
		}
	} else {
		if g, ok := r.c.Guest(a.Guest); ok {
			total = g.JournalStats().Checkpoints
		} else if n, ok := r.evictedCkpts[a.Guest]; ok {
			total = n
		} else {
			r.failf("journal assertion: guest %s never deployed", a.Guest)
			return
		}
	}
	if int64(total) < a.MinCheckpoints {
		r.failf("journal assertion %s: %d checkpoints, want >= %d", a.Guest, total, a.MinCheckpoints)
	}
}
