// Package gateway implements StopWatch's cloud edge: the ingress node that
// replicates every inbound guest packet to the guest's three replica hosts
// (Sec. V), and the egress node that forwards each guest output packet when
// its second copy arrives — the median emission timing of the three
// replicas (Sec. VI).
package gateway

import (
	"errors"
	"fmt"

	"stopwatch/internal/multicast"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vmm"
)

// ErrGateway reports gateway configuration errors.
var ErrGateway = errors.New("gateway: invalid")

// ServiceAddr returns the public fabric address of a guest VM: the address
// clients talk to, owned by the ingress on the inbound side and used as the
// source of egress-forwarded packets.
func ServiceAddr(guestID string) netsim.Addr {
	return netsim.Addr("svc:" + guestID)
}

// InboundMsg is the ingress-replicated form of a client packet.
type InboundMsg struct {
	ClientSrc netsim.Addr
	Kind      string
	Size      int
	Data      any
}

// Ingress replicates packets destined for guests to their replica hosts via
// reliable multicast. One ingress can serve any number of guests; a cloud
// can run several ingresses (the paper: "there need not be only one").
type Ingress struct {
	net  *netsim.Network
	loop *sim.Loop
	addr netsim.Addr

	senders map[string]*multicast.Sender

	// paused guests buffer client packets instead of replicating them —
	// the quiesce barrier replica replacement rewires the group behind.
	paused map[string][]*netsim.Packet

	replicated uint64
}

// NewIngress creates an ingress node rooted at addr.
func NewIngress(net *netsim.Network, loop *sim.Loop, addr netsim.Addr) (*Ingress, error) {
	if net == nil || loop == nil || addr == "" {
		return nil, fmt.Errorf("%w: ingress needs net, loop, addr", ErrGateway)
	}
	return &Ingress{
		net:     net,
		loop:    loop,
		addr:    addr,
		senders: make(map[string]*multicast.Sender),
		paused:  make(map[string][]*netsim.Packet),
	}, nil
}

// SourceAddr returns the per-guest multicast source address, which receivers
// use to identify the stream.
func (in *Ingress) SourceAddr(guestID string) netsim.Addr {
	return netsim.Addr(string(in.addr) + "/" + guestID)
}

// RegisterGuest wires a guest: client packets to ServiceAddr(guestID) are
// replicated to the given replica host (Dom0) addresses.
func (in *Ingress) RegisterGuest(guestID string, replicaHosts []netsim.Addr) error {
	if guestID == "" || len(replicaHosts) == 0 {
		return fmt.Errorf("%w: RegisterGuest(%q, %v)", ErrGateway, guestID, replicaHosts)
	}
	if _, dup := in.senders[guestID]; dup {
		return fmt.Errorf("%w: guest %q already registered", ErrGateway, guestID)
	}
	src := in.SourceAddr(guestID)
	snd, err := multicast.NewSender(in.net, in.loop, multicast.SenderConfig{
		Src:   src,
		Group: replicaHosts,
	})
	if err != nil {
		return err
	}
	in.senders[guestID] = snd
	// NAKs for this stream come back to the stream source address.
	if err := in.net.Attach(&netsim.FuncNode{Addr: src, Fn: func(p *netsim.Packet) { snd.Handle(p) }}); err != nil {
		return err
	}
	// Client traffic to the guest's public address lands here.
	gid := guestID
	return in.net.Attach(&netsim.FuncNode{
		Addr: ServiceAddr(guestID),
		Fn:   func(p *netsim.Packet) { in.forward(gid, p) },
	})
}

func (in *Ingress) forward(guestID string, p *netsim.Packet) {
	snd, ok := in.senders[guestID]
	if !ok {
		return
	}
	if buf, isPaused := in.paused[guestID]; isPaused {
		in.paused[guestID] = append(buf, p.Clone())
		return
	}
	in.replicated++
	snd.Multicast("swin", p.Size, InboundMsg{
		ClientSrc: p.Src,
		Kind:      p.Kind,
		Size:      p.Size,
		Data:      p.Payload,
	})
}

// Pause starts buffering a guest's inbound traffic instead of replicating
// it: the first half of the make-before-break barrier used while a replica
// group is reconfigured. Pausing an already-paused guest is a no-op.
func (in *Ingress) Pause(guestID string) {
	if _, ok := in.paused[guestID]; !ok {
		in.paused[guestID] = []*netsim.Packet{}
	}
}

// Paused reports whether the guest's inbound stream is paused.
func (in *Ingress) Paused(guestID string) bool {
	_, ok := in.paused[guestID]
	return ok
}

// Resume ends a guest's pause, flushing the buffered packets (in arrival
// order) to the — possibly reconfigured — replica group.
func (in *Ingress) Resume(guestID string) {
	buf, ok := in.paused[guestID]
	if !ok {
		return
	}
	delete(in.paused, guestID)
	for _, p := range buf {
		in.forward(guestID, p)
	}
}

// UpdateGroup repoints a guest's replication group — the rewire step of
// replica replacement. The joining member must be primed with NextSeq.
func (in *Ingress) UpdateGroup(guestID string, replicaHosts []netsim.Addr) error {
	snd, ok := in.senders[guestID]
	if !ok {
		return fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.SetGroup(replicaHosts)
}

// NextSeq returns the next stream sequence for the guest's ingress
// multicast — what a joining receiver primes with.
func (in *Ingress) NextSeq(guestID string) (uint64, error) {
	snd, ok := in.senders[guestID]
	if !ok {
		return 0, fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.NextSeq(), nil
}

// Group returns the guest's current replication group (replica Dom0
// addresses) — the membership audit for group reconfiguration: a dead
// machine's Dom0 must leave the group, a replacement's must join it.
func (in *Ingress) Group(guestID string) ([]netsim.Addr, error) {
	snd, ok := in.senders[guestID]
	if !ok {
		return nil, fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.Group(), nil
}

// UnregisterGuest tears down a guest's ingress wiring: the public service
// address and the stream source detach from the fabric, and buffered
// paused traffic is dropped. The guest id becomes reusable.
func (in *Ingress) UnregisterGuest(guestID string) error {
	snd, ok := in.senders[guestID]
	if !ok {
		return fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	snd.Close()
	delete(in.senders, guestID)
	delete(in.paused, guestID)
	in.net.Detach(ServiceAddr(guestID))
	in.net.Detach(in.SourceAddr(guestID))
	return nil
}

// Replicated reports how many client packets were replicated.
func (in *Ingress) Replicated() uint64 { return in.replicated }

// Egress forwards guest outputs at the median timing: each replica tunnels
// its copy of every output packet here; the second copy to arrive is
// forwarded to the true destination, later copies are absorbed.
type Egress struct {
	net  *netsim.Network
	loop *sim.Loop
	addr netsim.Addr

	// copies[guestID][seq] counts tunnel arrivals.
	copies map[string]map[uint64]int
	// replicas is the expected copy count per packet (3 by default).
	replicas int
	// forwardOn is which copy triggers forwarding (2 = median of 3).
	forwardOn int

	forwarded uint64
	absorbed  uint64

	// OnForward observes forwarded packets (external-observer experiments).
	OnForward func(guestID string, seq uint64, at sim.Time)
}

// NewEgress creates an egress node for groups of `replicas` replicas,
// forwarding on the copy that represents the median emission (replicas/2+1).
func NewEgress(net *netsim.Network, loop *sim.Loop, addr netsim.Addr, replicas int) (*Egress, error) {
	if net == nil || loop == nil || addr == "" {
		return nil, fmt.Errorf("%w: egress needs net, loop, addr", ErrGateway)
	}
	if replicas < 1 || replicas%2 == 0 {
		return nil, fmt.Errorf("%w: egress replica count %d must be odd", ErrGateway, replicas)
	}
	e := &Egress{
		net:       net,
		loop:      loop,
		addr:      addr,
		copies:    make(map[string]map[uint64]int),
		replicas:  replicas,
		forwardOn: replicas/2 + 1,
	}
	if err := net.Attach(&netsim.FuncNode{Addr: addr, Fn: e.deliver}); err != nil {
		return nil, err
	}
	return e, nil
}

// Addr returns the egress fabric address replicas tunnel to.
func (e *Egress) Addr() netsim.Addr { return e.addr }

func (e *Egress) deliver(p *netsim.Packet) {
	msg, ok := p.Payload.(vmm.EgressMsg)
	if !ok {
		return
	}
	byGuest, ok := e.copies[msg.GuestID]
	if !ok {
		byGuest = make(map[uint64]int)
		e.copies[msg.GuestID] = byGuest
	}
	byGuest[msg.Seq]++
	n := byGuest[msg.Seq]
	switch {
	case n == e.forwardOn:
		e.forwarded++
		if e.OnForward != nil {
			e.OnForward(msg.GuestID, msg.Seq, e.loop.Now())
		}
		e.net.Send(&netsim.Packet{
			Src:     ServiceAddr(msg.GuestID),
			Dst:     msg.OrigDst,
			Size:    msg.Size,
			Kind:    "guest:data",
			Payload: msg.Data,
		})
	case n >= e.replicas:
		e.absorbed++
		delete(byGuest, msg.Seq)
	default:
		e.absorbed++
	}
}

// Forwarded reports packets forwarded to their destinations.
func (e *Egress) Forwarded() uint64 { return e.forwarded }

// DropGuest discards the copy-counting state of an evicted guest so a later
// tenant reusing the id starts from a clean slate.
func (e *Egress) DropGuest(guestID string) { delete(e.copies, guestID) }

// ReclaimForwardedUpTo discards a guest's already-forwarded copy groups
// with sequence <= maxSeq. After a replica replacement this frees the
// crash window's groups: for outputs up to the replayed send count the
// dead replica's copy will never arrive (and the reconstructed replica
// suppresses replayed sends), so once forwarded they could only wait
// forever. Sequences beyond maxSeq are left alone — the replacement
// emits those live, and deleting a group whose final copy is still in
// flight would resurrect it as a bogus stuck entry.
func (e *Egress) ReclaimForwardedUpTo(guestID string, maxSeq uint64) {
	byGuest := e.copies[guestID]
	for seq, n := range byGuest {
		if seq <= maxSeq && n >= e.forwardOn {
			delete(byGuest, seq)
		}
	}
}

// PendingGroups reports output sequences still awaiting their forwarding
// copy (tests / liveness checks).
func (e *Egress) PendingGroups() int {
	n := 0
	for _, m := range e.copies {
		n += len(m)
	}
	return n
}

// StuckBelowForward reports output sequences that have NOT yet reached the
// forwarding copy count — packets an external client is still waiting for.
func (e *Egress) StuckBelowForward() int {
	n := 0
	for _, m := range e.copies {
		for _, c := range m {
			if c < e.forwardOn {
				n++
			}
		}
	}
	return n
}
