// Package gateway implements StopWatch's cloud edge: the ingress node that
// replicates every inbound guest packet to the guest's three replica hosts
// (Sec. V), and the egress node that forwards each guest output packet when
// its second copy arrives — the median emission timing of the three
// replicas (Sec. VI).
package gateway

import (
	"errors"
	"fmt"

	"stopwatch/internal/multicast"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
)

// ErrGateway reports gateway configuration errors.
var ErrGateway = errors.New("gateway: invalid")

// ServiceAddr returns the public fabric address of a guest VM: the address
// clients talk to, owned by the ingress on the inbound side and used as the
// source of egress-forwarded packets.
func ServiceAddr(guestID string) netsim.Addr {
	return netsim.Addr("svc:" + guestID)
}

// Ingress replicates packets destined for guests to their replica hosts via
// reliable multicast. One ingress can serve any number of guests; a cloud
// can run several ingresses (the paper: "there need not be only one").
type Ingress struct {
	net  *netsim.Network
	loop *sim.Loop
	addr netsim.Addr

	senders map[string]*multicast.Sender

	// paused guests buffer client packets instead of replicating them —
	// the quiesce barrier replica replacement rewires the group behind.
	paused map[string][]*netsim.Packet

	replicated uint64
}

// NewIngress creates an ingress node rooted at addr.
func NewIngress(net *netsim.Network, loop *sim.Loop, addr netsim.Addr) (*Ingress, error) {
	if net == nil || loop == nil || addr == "" {
		return nil, fmt.Errorf("%w: ingress needs net, loop, addr", ErrGateway)
	}
	return &Ingress{
		net:     net,
		loop:    loop,
		addr:    addr,
		senders: make(map[string]*multicast.Sender),
		paused:  make(map[string][]*netsim.Packet),
	}, nil
}

// SourceAddr returns the per-guest multicast source address, which receivers
// use to identify the stream.
func (in *Ingress) SourceAddr(guestID string) netsim.Addr {
	return netsim.Addr(string(in.addr) + "/" + guestID)
}

// RegisterGuest wires a guest: client packets to ServiceAddr(guestID) are
// replicated to the given replica host (Dom0) addresses.
func (in *Ingress) RegisterGuest(guestID string, replicaHosts []netsim.Addr) error {
	if guestID == "" || len(replicaHosts) == 0 {
		return fmt.Errorf("%w: RegisterGuest(%q, %v)", ErrGateway, guestID, replicaHosts)
	}
	if _, dup := in.senders[guestID]; dup {
		return fmt.Errorf("%w: guest %q already registered", ErrGateway, guestID)
	}
	src := in.SourceAddr(guestID)
	snd, err := multicast.NewSender(in.net, in.loop, multicast.SenderConfig{
		Src:   src,
		Group: replicaHosts,
	})
	if err != nil {
		return err
	}
	in.senders[guestID] = snd
	// NAKs for this stream come back to the stream source address: the
	// sender is its own fabric node.
	if err := in.net.Attach(snd); err != nil {
		return err
	}
	// Client traffic to the guest's public address lands here.
	return in.net.Attach(&svcNode{in: in, guestID: guestID, addr: ServiceAddr(guestID)})
}

// svcNode is a guest's public service endpoint: client packets delivered to
// it are replicated (or buffered, while paused) by the owning ingress.
type svcNode struct {
	in      *Ingress
	guestID string
	addr    netsim.Addr
}

func (n *svcNode) Address() netsim.Addr     { return n.addr }
func (n *svcNode) Deliver(p *netsim.Packet) { n.in.forward(n.guestID, p) }

func (in *Ingress) forward(guestID string, p *netsim.Packet) {
	snd, ok := in.senders[guestID]
	if !ok {
		return
	}
	if buf, isPaused := in.paused[guestID]; isPaused {
		in.paused[guestID] = append(buf, p.Clone())
		return
	}
	in.replicated++
	snd.Multicast("swin", p.Size, netsim.PacketBody{
		Kind:       netsim.BodyInbound,
		ClientSrc:  p.Src,
		ClientKind: p.Kind,
		Size:       p.Size,
		Data:       p.Payload,
	})
}

// Pause starts buffering a guest's inbound traffic instead of replicating
// it: the first half of the make-before-break barrier used while a replica
// group is reconfigured. Pausing an already-paused guest is a no-op.
func (in *Ingress) Pause(guestID string) {
	if _, ok := in.paused[guestID]; !ok {
		in.paused[guestID] = []*netsim.Packet{}
	}
}

// Paused reports whether the guest's inbound stream is paused.
func (in *Ingress) Paused(guestID string) bool {
	_, ok := in.paused[guestID]
	return ok
}

// Resume ends a guest's pause, flushing the buffered packets (in arrival
// order) to the — possibly reconfigured — replica group.
func (in *Ingress) Resume(guestID string) {
	buf, ok := in.paused[guestID]
	if !ok {
		return
	}
	delete(in.paused, guestID)
	for _, p := range buf {
		in.forward(guestID, p)
	}
}

// UpdateGroup repoints a guest's replication group — the rewire step of
// replica replacement. The joining member must be primed with NextSeq.
func (in *Ingress) UpdateGroup(guestID string, replicaHosts []netsim.Addr) error {
	snd, ok := in.senders[guestID]
	if !ok {
		return fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.SetGroup(replicaHosts)
}

// NextSeq returns the next stream sequence for the guest's ingress
// multicast — what a joining receiver primes with.
func (in *Ingress) NextSeq(guestID string) (uint64, error) {
	snd, ok := in.senders[guestID]
	if !ok {
		return 0, fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.NextSeq(), nil
}

// Group returns the guest's current replication group (replica Dom0
// addresses) — the membership audit for group reconfiguration: a dead
// machine's Dom0 must leave the group, a replacement's must join it.
func (in *Ingress) Group(guestID string) ([]netsim.Addr, error) {
	snd, ok := in.senders[guestID]
	if !ok {
		return nil, fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.Group(), nil
}

// UnregisterGuest tears down a guest's ingress wiring: the public service
// address and the stream source detach from the fabric, and buffered
// paused traffic is dropped. The guest id becomes reusable.
func (in *Ingress) UnregisterGuest(guestID string) error {
	snd, ok := in.senders[guestID]
	if !ok {
		return fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	snd.Close()
	delete(in.senders, guestID)
	delete(in.paused, guestID)
	in.net.Detach(ServiceAddr(guestID))
	in.net.Detach(in.SourceAddr(guestID))
	return nil
}

// Replicated reports how many client packets were replicated.
func (in *Ingress) Replicated() uint64 { return in.replicated }

// Egress forwards guest outputs at the median timing: each replica tunnels
// its copy of every output packet here; the second copy to arrive is
// forwarded to the true destination, later copies are absorbed.
type Egress struct {
	net  *netsim.Network
	loop *sim.Loop
	addr netsim.Addr

	// groups tracks tunnel arrivals per guest in a seq-indexed ring —
	// output sequences are contiguous and retire almost in order, so the
	// ring replaces the old copies[guestID][seq] map (one map insert +
	// delete per output packet) with two slot writes.
	groups map[string]*guestGroups
	// replicas is the expected copy count per packet (3 by default).
	replicas int
	// forwardOn is which copy triggers forwarding (2 = median of 3).
	forwardOn int
	// live, per guest, overrides the expected copy count while the guest's
	// replica group is degraded — the egress-side mirror of the device
	// models' live view. Absent means the full group.
	live map[string]int

	forwarded uint64
	absorbed  uint64

	// OnForward observes forwarded packets (external-observer experiments).
	OnForward func(guestID string, seq uint64, at sim.Time)
}

// NewEgress creates an egress node for groups of `replicas` replicas,
// forwarding on the copy that represents the median emission (replicas/2+1).
func NewEgress(net *netsim.Network, loop *sim.Loop, addr netsim.Addr, replicas int) (*Egress, error) {
	if net == nil || loop == nil || addr == "" {
		return nil, fmt.Errorf("%w: egress needs net, loop, addr", ErrGateway)
	}
	if replicas < 1 || replicas%2 == 0 {
		return nil, fmt.Errorf("%w: egress replica count %d must be odd", ErrGateway, replicas)
	}
	e := &Egress{
		net:       net,
		loop:      loop,
		addr:      addr,
		groups:    make(map[string]*guestGroups),
		replicas:  replicas,
		forwardOn: replicas/2 + 1,
		live:      make(map[string]int),
	}
	if err := net.Attach(&netsim.FuncNode{Addr: addr, Fn: e.deliver}); err != nil {
		return nil, err
	}
	return e, nil
}

// Addr returns the egress fabric address replicas tunnel to.
func (e *Egress) Addr() netsim.Addr { return e.addr }

// copyGroup states. A slot is empty until its first copy arrives, open
// while copies are being counted, and retired once the full group arrived
// (or the group was reclaimed) — retired slots absorb stragglers instead
// of resurrecting as phantom groups.
const (
	groupEmpty uint8 = iota
	groupOpen
	groupRetired
)

// copyGroup tracks one output packet's tunnel arrivals. forwarded is a
// flag, not a count comparison: the forwarding threshold can change
// between copies (a live-view change mid-group), so "has this packet been
// sent" must be remembered, never re-derived. The packet fields are kept
// (all copies are identical — that is what lockstep means) so a group made
// eligible by a later view shrink can still be flushed.
type copyGroup struct {
	state     uint8
	forwarded bool
	n         int
	origDst   netsim.Addr
	size      int
	data      any
}

// guestGroups is one guest's seq-indexed ring of copy groups over the
// window [base, top): base is the lowest unretired sequence, top is one
// past the highest opened one. Slots recycle in place as the window slides,
// so steady-state output traffic allocates nothing.
type guestGroups struct {
	buf  []copyGroup
	base uint64
	top  uint64
	open int
}

func (r *guestGroups) slot(seq uint64) *copyGroup {
	return &r.buf[seq&uint64(len(r.buf)-1)]
}

// ensure grows the ring (power of two) until seq's slot is inside the
// window starting at base.
func (r *guestGroups) ensure(seq uint64) {
	need := seq - r.base + 1
	if len(r.buf) != 0 && need <= uint64(len(r.buf)) {
		return
	}
	newLen := 64
	for uint64(newLen) < need {
		newLen <<= 1
	}
	old := r.buf
	oldBase := r.base
	r.buf = make([]copyGroup, newLen)
	for i := range old {
		if old[i].state != groupEmpty {
			// Recover the slot's absolute seq from its index.
			seqOf := oldBase + ((uint64(i) - oldBase) & uint64(len(old)-1))
			*r.slot(seqOf) = old[i]
		}
	}
}

// retire marks seq's group done and slides the window past any retired
// prefix. Empty mid-window slots (copies still in flight) block the slide.
func (r *guestGroups) retire(seq uint64) {
	g := r.slot(seq)
	g.state = groupRetired
	g.data = nil
	r.open--
	r.advance()
}

func (r *guestGroups) advance() {
	for r.base < r.top && r.slot(r.base).state == groupRetired {
		*r.slot(r.base) = copyGroup{}
		r.base++
	}
}

func (e *Egress) deliver(p *netsim.Packet) {
	if p.Body.Kind != netsim.BodyEgress {
		return
	}
	gid, seq := p.Body.GuestID, p.Body.Seq
	gr, ok := e.groups[gid]
	if !ok {
		gr = &guestGroups{base: 1, top: 1}
		e.groups[gid] = gr
	}
	if seq < gr.base {
		// Straggler below the window: its group was already retired or
		// reclaimed, so the copy can only be absorbed.
		e.absorbed++
		return
	}
	gr.ensure(seq)
	g := gr.slot(seq)
	if g.state == groupRetired {
		e.absorbed++
		return
	}
	if g.state == groupEmpty {
		*g = copyGroup{state: groupOpen, origDst: p.Body.OrigDst, size: p.Body.Size, data: p.Body.Data}
		gr.open++
		if seq >= gr.top {
			gr.top = seq + 1
		}
	}
	g.n++
	if !g.forwarded && g.n >= e.forwardOnFor(gid) {
		e.forward(gid, seq, g)
	} else {
		e.absorbed++
	}
	// Retire the group only at the FULL replica count: a degraded group's
	// missing copies may still be in flight from the moment before their
	// sender died, and retiring early would misclassify such stragglers.
	// Degraded groups that never see their remaining copies are reclaimed
	// by ReclaimForwardedUpTo at replacement, like every crash window.
	if g.n >= e.replicas {
		gr.retire(seq)
	}
}

// forward sends a group's packet to its true destination and marks it.
func (e *Egress) forward(guestID string, seq uint64, g *copyGroup) {
	g.forwarded = true
	e.forwarded++
	if e.OnForward != nil {
		e.OnForward(guestID, seq, e.loop.Now())
	}
	e.net.Send(e.net.AllocPacket(ServiceAddr(guestID), g.origDst, g.size, "guest:data", g.data))
}

// forwardOnFor returns the copy that triggers forwarding for a guest: the
// median copy of the full group, or of the installed live count while the
// group is degraded.
func (e *Egress) forwardOnFor(guestID string) int {
	if n, ok := e.live[guestID]; ok {
		return n/2 + 1
	}
	return e.forwardOn
}

// SetLiveReplicas installs a guest's live replica count — the egress-side
// mirror of the device models' live-group view, kept by the cluster's group
// reconciliation. While degraded to n live replicas the guest's output is
// forwarded at copy n/2+1: the later of a surviving pair's two emissions
// (the upper-median bias the delivery side also uses), and the sole copy of
// a single survivor — whose output would otherwise wait forever for a
// second emission. Restoring n to the full group size clears the override.
//
// Pending groups made eligible by a shrink are flushed immediately, in
// sequence order: a packet whose counted copies all came from now-dead
// replicas will see no further emission, so its eligibility can only be
// acted on here.
func (e *Egress) SetLiveReplicas(guestID string, n int) error {
	if n < 1 || n > e.replicas {
		return fmt.Errorf("%w: live replica count %d of %d", ErrGateway, n, e.replicas)
	}
	if n == e.replicas {
		delete(e.live, guestID)
		return nil
	}
	e.live[guestID] = n
	forwardOn := n/2 + 1
	if gr, ok := e.groups[guestID]; ok {
		// The ring iterates in sequence order by construction — no sort.
		for seq := gr.base; seq < gr.top; seq++ {
			g := gr.slot(seq)
			if g.state == groupOpen && !g.forwarded && g.n >= forwardOn {
				e.forward(guestID, seq, g)
			}
		}
	}
	return nil
}

// Forwarded reports packets forwarded to their destinations.
func (e *Egress) Forwarded() uint64 { return e.forwarded }

// DropGuest discards the copy-counting and live-view state of an evicted
// guest so a later tenant reusing the id starts from a clean slate.
func (e *Egress) DropGuest(guestID string) {
	delete(e.groups, guestID)
	delete(e.live, guestID)
}

// ReclaimForwardedUpTo discards a guest's already-forwarded copy groups
// with sequence <= maxSeq. After a replica replacement this frees the
// crash window's groups: for outputs up to the replayed send count the
// dead replica's copy will never arrive (and the reconstructed replica
// suppresses replayed sends), so once forwarded they could only wait
// forever. Sequences beyond maxSeq are left alone — the replacement
// emits those live, and deleting a group whose final copy is still in
// flight would resurrect it as a bogus stuck entry.
func (e *Egress) ReclaimForwardedUpTo(guestID string, maxSeq uint64) {
	gr, ok := e.groups[guestID]
	if !ok {
		return
	}
	hi := maxSeq + 1
	if hi > gr.top {
		hi = gr.top
	}
	for seq := gr.base; seq < hi; seq++ {
		g := gr.slot(seq)
		if g.state == groupOpen && g.forwarded {
			g.state = groupRetired
			g.data = nil
			gr.open--
		}
	}
	gr.advance()
}

// PendingGroups reports output sequences whose copy groups are still open
// (tests / liveness checks).
func (e *Egress) PendingGroups() int {
	n := 0
	for _, gr := range e.groups {
		n += gr.open
	}
	return n
}

// StuckBelowForward reports output sequences that have NOT yet been
// forwarded — packets an external client is still waiting for.
func (e *Egress) StuckBelowForward() int {
	n := 0
	for _, gr := range e.groups {
		for seq := gr.base; seq < gr.top; seq++ {
			g := gr.slot(seq)
			if g.state == groupOpen && !g.forwarded {
				n++
			}
		}
	}
	return n
}
