// Package gateway implements StopWatch's cloud edge: the ingress node that
// replicates every inbound guest packet to the guest's three replica hosts
// (Sec. V), and the egress node that forwards each guest output packet when
// its second copy arrives — the median emission timing of the three
// replicas (Sec. VI).
package gateway

import (
	"errors"
	"fmt"
	"sort"

	"stopwatch/internal/multicast"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vmm"
)

// ErrGateway reports gateway configuration errors.
var ErrGateway = errors.New("gateway: invalid")

// ServiceAddr returns the public fabric address of a guest VM: the address
// clients talk to, owned by the ingress on the inbound side and used as the
// source of egress-forwarded packets.
func ServiceAddr(guestID string) netsim.Addr {
	return netsim.Addr("svc:" + guestID)
}

// InboundMsg is the ingress-replicated form of a client packet.
type InboundMsg struct {
	ClientSrc netsim.Addr
	Kind      string
	Size      int
	Data      any
}

// Ingress replicates packets destined for guests to their replica hosts via
// reliable multicast. One ingress can serve any number of guests; a cloud
// can run several ingresses (the paper: "there need not be only one").
type Ingress struct {
	net  *netsim.Network
	loop *sim.Loop
	addr netsim.Addr

	senders map[string]*multicast.Sender

	// paused guests buffer client packets instead of replicating them —
	// the quiesce barrier replica replacement rewires the group behind.
	paused map[string][]*netsim.Packet

	replicated uint64
}

// NewIngress creates an ingress node rooted at addr.
func NewIngress(net *netsim.Network, loop *sim.Loop, addr netsim.Addr) (*Ingress, error) {
	if net == nil || loop == nil || addr == "" {
		return nil, fmt.Errorf("%w: ingress needs net, loop, addr", ErrGateway)
	}
	return &Ingress{
		net:     net,
		loop:    loop,
		addr:    addr,
		senders: make(map[string]*multicast.Sender),
		paused:  make(map[string][]*netsim.Packet),
	}, nil
}

// SourceAddr returns the per-guest multicast source address, which receivers
// use to identify the stream.
func (in *Ingress) SourceAddr(guestID string) netsim.Addr {
	return netsim.Addr(string(in.addr) + "/" + guestID)
}

// RegisterGuest wires a guest: client packets to ServiceAddr(guestID) are
// replicated to the given replica host (Dom0) addresses.
func (in *Ingress) RegisterGuest(guestID string, replicaHosts []netsim.Addr) error {
	if guestID == "" || len(replicaHosts) == 0 {
		return fmt.Errorf("%w: RegisterGuest(%q, %v)", ErrGateway, guestID, replicaHosts)
	}
	if _, dup := in.senders[guestID]; dup {
		return fmt.Errorf("%w: guest %q already registered", ErrGateway, guestID)
	}
	src := in.SourceAddr(guestID)
	snd, err := multicast.NewSender(in.net, in.loop, multicast.SenderConfig{
		Src:   src,
		Group: replicaHosts,
	})
	if err != nil {
		return err
	}
	in.senders[guestID] = snd
	// NAKs for this stream come back to the stream source address: the
	// sender is its own fabric node.
	if err := in.net.Attach(snd); err != nil {
		return err
	}
	// Client traffic to the guest's public address lands here.
	return in.net.Attach(&svcNode{in: in, guestID: guestID, addr: ServiceAddr(guestID)})
}

// svcNode is a guest's public service endpoint: client packets delivered to
// it are replicated (or buffered, while paused) by the owning ingress.
type svcNode struct {
	in      *Ingress
	guestID string
	addr    netsim.Addr
}

func (n *svcNode) Address() netsim.Addr     { return n.addr }
func (n *svcNode) Deliver(p *netsim.Packet) { n.in.forward(n.guestID, p) }

func (in *Ingress) forward(guestID string, p *netsim.Packet) {
	snd, ok := in.senders[guestID]
	if !ok {
		return
	}
	if buf, isPaused := in.paused[guestID]; isPaused {
		in.paused[guestID] = append(buf, p.Clone())
		return
	}
	in.replicated++
	snd.Multicast("swin", p.Size, InboundMsg{
		ClientSrc: p.Src,
		Kind:      p.Kind,
		Size:      p.Size,
		Data:      p.Payload,
	})
}

// Pause starts buffering a guest's inbound traffic instead of replicating
// it: the first half of the make-before-break barrier used while a replica
// group is reconfigured. Pausing an already-paused guest is a no-op.
func (in *Ingress) Pause(guestID string) {
	if _, ok := in.paused[guestID]; !ok {
		in.paused[guestID] = []*netsim.Packet{}
	}
}

// Paused reports whether the guest's inbound stream is paused.
func (in *Ingress) Paused(guestID string) bool {
	_, ok := in.paused[guestID]
	return ok
}

// Resume ends a guest's pause, flushing the buffered packets (in arrival
// order) to the — possibly reconfigured — replica group.
func (in *Ingress) Resume(guestID string) {
	buf, ok := in.paused[guestID]
	if !ok {
		return
	}
	delete(in.paused, guestID)
	for _, p := range buf {
		in.forward(guestID, p)
	}
}

// UpdateGroup repoints a guest's replication group — the rewire step of
// replica replacement. The joining member must be primed with NextSeq.
func (in *Ingress) UpdateGroup(guestID string, replicaHosts []netsim.Addr) error {
	snd, ok := in.senders[guestID]
	if !ok {
		return fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.SetGroup(replicaHosts)
}

// NextSeq returns the next stream sequence for the guest's ingress
// multicast — what a joining receiver primes with.
func (in *Ingress) NextSeq(guestID string) (uint64, error) {
	snd, ok := in.senders[guestID]
	if !ok {
		return 0, fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.NextSeq(), nil
}

// Group returns the guest's current replication group (replica Dom0
// addresses) — the membership audit for group reconfiguration: a dead
// machine's Dom0 must leave the group, a replacement's must join it.
func (in *Ingress) Group(guestID string) ([]netsim.Addr, error) {
	snd, ok := in.senders[guestID]
	if !ok {
		return nil, fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	return snd.Group(), nil
}

// UnregisterGuest tears down a guest's ingress wiring: the public service
// address and the stream source detach from the fabric, and buffered
// paused traffic is dropped. The guest id becomes reusable.
func (in *Ingress) UnregisterGuest(guestID string) error {
	snd, ok := in.senders[guestID]
	if !ok {
		return fmt.Errorf("%w: guest %q not registered", ErrGateway, guestID)
	}
	snd.Close()
	delete(in.senders, guestID)
	delete(in.paused, guestID)
	in.net.Detach(ServiceAddr(guestID))
	in.net.Detach(in.SourceAddr(guestID))
	return nil
}

// Replicated reports how many client packets were replicated.
func (in *Ingress) Replicated() uint64 { return in.replicated }

// Egress forwards guest outputs at the median timing: each replica tunnels
// its copy of every output packet here; the second copy to arrive is
// forwarded to the true destination, later copies are absorbed.
type Egress struct {
	net  *netsim.Network
	loop *sim.Loop
	addr netsim.Addr

	// copies[guestID][seq] tracks tunnel arrivals per output packet.
	copies map[string]map[uint64]*copyGroup
	// replicas is the expected copy count per packet (3 by default).
	replicas int
	// forwardOn is which copy triggers forwarding (2 = median of 3).
	forwardOn int
	// live, per guest, overrides the expected copy count while the guest's
	// replica group is degraded — the egress-side mirror of the device
	// models' live view. Absent means the full group.
	live map[string]int

	forwarded uint64
	absorbed  uint64

	// freeGroups pools copyGroup records: one is opened per guest output
	// packet and retired when the full group has arrived, so steady-state
	// traffic recycles instead of allocating.
	freeGroups []*copyGroup

	// OnForward observes forwarded packets (external-observer experiments).
	OnForward func(guestID string, seq uint64, at sim.Time)
}

// NewEgress creates an egress node for groups of `replicas` replicas,
// forwarding on the copy that represents the median emission (replicas/2+1).
func NewEgress(net *netsim.Network, loop *sim.Loop, addr netsim.Addr, replicas int) (*Egress, error) {
	if net == nil || loop == nil || addr == "" {
		return nil, fmt.Errorf("%w: egress needs net, loop, addr", ErrGateway)
	}
	if replicas < 1 || replicas%2 == 0 {
		return nil, fmt.Errorf("%w: egress replica count %d must be odd", ErrGateway, replicas)
	}
	e := &Egress{
		net:       net,
		loop:      loop,
		addr:      addr,
		copies:    make(map[string]map[uint64]*copyGroup),
		replicas:  replicas,
		forwardOn: replicas/2 + 1,
		live:      make(map[string]int),
	}
	if err := net.Attach(&netsim.FuncNode{Addr: addr, Fn: e.deliver}); err != nil {
		return nil, err
	}
	return e, nil
}

// Addr returns the egress fabric address replicas tunnel to.
func (e *Egress) Addr() netsim.Addr { return e.addr }

// copyGroup tracks one output packet's tunnel arrivals. forwarded is a
// flag, not a count comparison: the forwarding threshold can change
// between copies (a live-view change mid-group), so "has this packet been
// sent" must be remembered, never re-derived. The message is kept (all
// copies are identical — that is what lockstep means) so a group made
// eligible by a later view shrink can still be flushed.
type copyGroup struct {
	n         int
	forwarded bool
	msg       vmm.EgressMsg
}

func (e *Egress) deliver(p *netsim.Packet) {
	msg, ok := p.Payload.(vmm.EgressMsg)
	if !ok {
		return
	}
	byGuest, ok := e.copies[msg.GuestID]
	if !ok {
		byGuest = make(map[uint64]*copyGroup)
		e.copies[msg.GuestID] = byGuest
	}
	g, ok := byGuest[msg.Seq]
	if !ok {
		g = e.allocGroup()
		g.msg = msg
		byGuest[msg.Seq] = g
	}
	g.n++
	if !g.forwarded && g.n >= e.forwardOnFor(msg.GuestID) {
		e.forward(g)
	} else {
		e.absorbed++
	}
	// Retire the group only at the FULL replica count: a degraded group's
	// missing copies may still be in flight from the moment before their
	// sender died, and deleting early would let such a straggler recreate
	// the entry as a phantom stuck group nothing could ever clean up.
	// Degraded groups that never see their remaining copies are reclaimed
	// by ReclaimForwardedUpTo at replacement, like every crash window.
	if g.n >= e.replicas {
		delete(byGuest, msg.Seq)
		e.releaseGroup(g)
	}
}

// allocGroup checks a copy group out of the pool.
func (e *Egress) allocGroup() *copyGroup {
	if k := len(e.freeGroups); k > 0 {
		g := e.freeGroups[k-1]
		e.freeGroups[k-1] = nil
		e.freeGroups = e.freeGroups[:k-1]
		return g
	}
	return &copyGroup{}
}

// releaseGroup recycles a retired copy group.
func (e *Egress) releaseGroup(g *copyGroup) {
	*g = copyGroup{}
	e.freeGroups = append(e.freeGroups, g)
}

// forward sends a group's packet to its true destination and marks it.
func (e *Egress) forward(g *copyGroup) {
	g.forwarded = true
	e.forwarded++
	if e.OnForward != nil {
		e.OnForward(g.msg.GuestID, g.msg.Seq, e.loop.Now())
	}
	e.net.Send(e.net.AllocPacket(ServiceAddr(g.msg.GuestID), g.msg.OrigDst, g.msg.Size, "guest:data", g.msg.Data))
}

// forwardOnFor returns the copy that triggers forwarding for a guest: the
// median copy of the full group, or of the installed live count while the
// group is degraded.
func (e *Egress) forwardOnFor(guestID string) int {
	if n, ok := e.live[guestID]; ok {
		return n/2 + 1
	}
	return e.forwardOn
}

// SetLiveReplicas installs a guest's live replica count — the egress-side
// mirror of the device models' live-group view, kept by the cluster's group
// reconciliation. While degraded to n live replicas the guest's output is
// forwarded at copy n/2+1: the later of a surviving pair's two emissions
// (the upper-median bias the delivery side also uses), and the sole copy of
// a single survivor — whose output would otherwise wait forever for a
// second emission. Restoring n to the full group size clears the override.
//
// Pending groups made eligible by a shrink are flushed immediately, in
// sequence order: a packet whose counted copies all came from now-dead
// replicas will see no further emission, so its eligibility can only be
// acted on here.
func (e *Egress) SetLiveReplicas(guestID string, n int) error {
	if n < 1 || n > e.replicas {
		return fmt.Errorf("%w: live replica count %d of %d", ErrGateway, n, e.replicas)
	}
	if n == e.replicas {
		delete(e.live, guestID)
		return nil
	}
	e.live[guestID] = n
	byGuest := e.copies[guestID]
	forwardOn := n/2 + 1
	seqs := make([]uint64, 0, len(byGuest))
	for seq, g := range byGuest {
		if !g.forwarded && g.n >= forwardOn {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		e.forward(byGuest[seq])
	}
	return nil
}

// Forwarded reports packets forwarded to their destinations.
func (e *Egress) Forwarded() uint64 { return e.forwarded }

// DropGuest discards the copy-counting and live-view state of an evicted
// guest so a later tenant reusing the id starts from a clean slate.
func (e *Egress) DropGuest(guestID string) {
	for _, g := range e.copies[guestID] {
		e.releaseGroup(g)
	}
	delete(e.copies, guestID)
	delete(e.live, guestID)
}

// ReclaimForwardedUpTo discards a guest's already-forwarded copy groups
// with sequence <= maxSeq. After a replica replacement this frees the
// crash window's groups: for outputs up to the replayed send count the
// dead replica's copy will never arrive (and the reconstructed replica
// suppresses replayed sends), so once forwarded they could only wait
// forever. Sequences beyond maxSeq are left alone — the replacement
// emits those live, and deleting a group whose final copy is still in
// flight would resurrect it as a bogus stuck entry.
func (e *Egress) ReclaimForwardedUpTo(guestID string, maxSeq uint64) {
	byGuest := e.copies[guestID]
	for seq, g := range byGuest {
		if seq <= maxSeq && g.forwarded {
			delete(byGuest, seq)
			e.releaseGroup(g)
		}
	}
}

// PendingGroups reports output sequences whose copy groups are still open
// (tests / liveness checks).
func (e *Egress) PendingGroups() int {
	n := 0
	for _, m := range e.copies {
		n += len(m)
	}
	return n
}

// StuckBelowForward reports output sequences that have NOT yet been
// forwarded — packets an external client is still waiting for.
func (e *Egress) StuckBelowForward() int {
	n := 0
	for _, m := range e.copies {
		for _, g := range m {
			if !g.forwarded {
				n++
			}
		}
	}
	return n
}
