package gateway

import (
	"errors"
	"testing"

	"stopwatch/internal/multicast"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
)

func testFabric(t *testing.T, seed uint64, loss float64) (*netsim.Network, *sim.Loop) {
	t.Helper()
	loop := sim.NewLoop()
	net, err := netsim.New(loop, sim.NewSource(seed).Stream("net"), netsim.LinkConfig{
		Latency:  500 * sim.Microsecond,
		LossProb: loss,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, loop
}

func TestServiceAddr(t *testing.T) {
	if ServiceAddr("g1") != "svc:g1" {
		t.Fatalf("ServiceAddr = %q", ServiceAddr("g1"))
	}
}

func TestIngressReplicatesToAllHosts(t *testing.T) {
	net, loop := testFabric(t, 1, 0)
	in, err := NewIngress(net, loop, "ingress")
	if err != nil {
		t.Fatal(err)
	}
	hosts := []netsim.Addr{"dom0:A", "dom0:B", "dom0:C"}
	got := map[netsim.Addr][]netsim.PacketBody{}
	for _, h := range hosts {
		h := h
		rx, err := multicast.NewReceiver(net, loop, multicast.ReceiverConfig{
			Addr: h,
			OnData: func(_ netsim.Addr, _ uint64, _ string, body netsim.PacketBody) {
				got[h] = append(got[h], body)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(&netsim.FuncNode{Addr: h, Fn: func(p *netsim.Packet) { rx.Handle(p) }}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.RegisterGuest("g1", hosts); err != nil {
		t.Fatal(err)
	}
	// Client sends two packets to the guest's public address.
	for i := 0; i < 2; i++ {
		net.Send(&netsim.Packet{Src: "client", Dst: ServiceAddr("g1"), Size: 100, Kind: "req", Payload: i})
	}
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if in.Replicated() != 2 {
		t.Fatalf("replicated = %d", in.Replicated())
	}
	for _, h := range hosts {
		if len(got[h]) != 2 {
			t.Fatalf("host %s got %d messages", h, len(got[h]))
		}
		if got[h][0].ClientSrc != "client" || got[h][0].Data != 0 || got[h][1].Data != 1 {
			t.Fatalf("host %s payloads wrong: %+v", h, got[h])
		}
	}
}

func TestIngressRecoversFromLoss(t *testing.T) {
	net, loop := testFabric(t, 3, 0.25)
	in, err := NewIngress(net, loop, "ingress")
	if err != nil {
		t.Fatal(err)
	}
	hosts := []netsim.Addr{"dom0:A", "dom0:B", "dom0:C"}
	counts := map[netsim.Addr]int{}
	for _, h := range hosts {
		h := h
		rx, err := multicast.NewReceiver(net, loop, multicast.ReceiverConfig{
			Addr:   h,
			OnData: func(netsim.Addr, uint64, string, netsim.PacketBody) { counts[h]++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(&netsim.FuncNode{Addr: h, Fn: func(p *netsim.Packet) { rx.Handle(p) }}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.RegisterGuest("g1", hosts); err != nil {
		t.Fatal(err)
	}
	// The lossy legs under test are ingress→hosts (the multicast). The
	// client→ingress leg is a plain fabric hop whose reliability belongs to
	// the transport layer, so keep it clean here.
	if err := net.SetLink("client", ServiceAddr("g1"), netsim.LinkConfig{Latency: 500 * sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		loop.At(sim.Time(i)*sim.Millisecond, "send", func() {
			net.Send(&netsim.Packet{Src: "client", Dst: ServiceAddr("g1"), Size: 100, Kind: "req", Payload: i})
		})
	}
	if err := loop.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		if counts[h] != n {
			t.Fatalf("host %s got %d/%d despite NAK recovery", h, counts[h], n)
		}
	}
}

func TestIngressValidation(t *testing.T) {
	net, loop := testFabric(t, 5, 0)
	if _, err := NewIngress(nil, loop, "i"); !errors.Is(err, ErrGateway) {
		t.Fatal("nil net should fail")
	}
	if _, err := NewIngress(net, loop, ""); !errors.Is(err, ErrGateway) {
		t.Fatal("empty addr should fail")
	}
	in, err := NewIngress(net, loop, "ingress")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.RegisterGuest("", []netsim.Addr{"a"}); !errors.Is(err, ErrGateway) {
		t.Fatal("empty guest should fail")
	}
	if err := in.RegisterGuest("g", nil); !errors.Is(err, ErrGateway) {
		t.Fatal("no hosts should fail")
	}
	if err := in.RegisterGuest("g", []netsim.Addr{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := in.RegisterGuest("g", []netsim.Addr{"a"}); !errors.Is(err, ErrGateway) {
		t.Fatal("duplicate registration should fail")
	}
}

func tunnel(net *netsim.Network, egress netsim.Addr, replica string, guestID string, seq uint64, dst netsim.Addr, data any) {
	net.Send(&netsim.Packet{
		Src:  netsim.Addr("dom0:" + replica),
		Dst:  egress,
		Size: 100,
		Kind: "egress:tunnel",
		Body: netsim.PacketBody{
			Kind:    netsim.BodyEgress,
			GuestID: guestID,
			Origin:  replica,
			Seq:     seq,
			OrigDst: dst,
			Size:    100,
			Data:    data,
		},
	})
}

func TestEgressForwardsOnSecondCopy(t *testing.T) {
	net, loop := testFabric(t, 7, 0)
	var arrivals []sim.Time
	var payloads []any
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(p *netsim.Packet) {
		arrivals = append(arrivals, loop.Now())
		payloads = append(payloads, p.Payload)
	}}); err != nil {
		t.Fatal(err)
	}
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	var fwdAt []sim.Time
	eg.OnForward = func(g string, seq uint64, at sim.Time) { fwdAt = append(fwdAt, at) }

	// Replica copies arrive at 1ms, 5ms, 9ms — forward must fire at the
	// SECOND copy (5ms), the median emission.
	loop.At(1*sim.Millisecond, "a", func() { tunnel(net, "egress", "A", "g1", 1, "client", "resp") })
	loop.At(5*sim.Millisecond, "b", func() { tunnel(net, "egress", "B", "g1", 1, "client", "resp") })
	loop.At(9*sim.Millisecond, "c", func() { tunnel(net, "egress", "C", "g1", 1, "client", "resp") })
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 1 {
		t.Fatalf("client got %d packets, want exactly 1", len(arrivals))
	}
	if payloads[0] != "resp" {
		t.Fatalf("payload %v", payloads[0])
	}
	if len(fwdAt) != 1 || fwdAt[0] < 5*sim.Millisecond+500*sim.Microsecond || fwdAt[0] > 6*sim.Millisecond+500*sim.Microsecond {
		t.Fatalf("forward time %v, want ~5.5ms (2nd copy arrival)", fwdAt)
	}
	if eg.Forwarded() != 1 {
		t.Fatalf("forwarded = %d", eg.Forwarded())
	}
	if eg.PendingGroups() != 0 {
		t.Fatalf("pending groups = %d, want 0 after third copy", eg.PendingGroups())
	}
}

func TestEgressToleratesOneDeadReplica(t *testing.T) {
	net, loop := testFabric(t, 9, 0)
	delivered := 0
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(*netsim.Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Only replicas A and B tunnel copies (C is dead).
	tunnel(net, "egress", "A", "g1", 1, "client", "x")
	tunnel(net, "egress", "B", "g1", 1, "client", "x")
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("client got %d packets with one dead replica, want 1", delivered)
	}
	if eg.StuckBelowForward() != 0 {
		t.Fatalf("stuck packets: %d", eg.StuckBelowForward())
	}
}

func TestEgressStuckWithTwoDeadReplicas(t *testing.T) {
	net, loop := testFabric(t, 11, 0)
	delivered := 0
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(*netsim.Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	tunnel(net, "egress", "A", "g1", 1, "client", "x")
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("packet forwarded with a single copy — median semantics broken")
	}
	if eg.StuckBelowForward() != 1 {
		t.Fatalf("stuck = %d, want 1", eg.StuckBelowForward())
	}
}

func TestEgressOrderIndependentPerSeq(t *testing.T) {
	net, loop := testFabric(t, 13, 0)
	var got []any
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(p *netsim.Packet) { got = append(got, p.Payload) }}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEgress(net, loop, "egress", 3); err != nil {
		t.Fatal(err)
	}
	// Interleave copies of two sequences.
	tunnel(net, "egress", "A", "g1", 1, "client", "s1")
	tunnel(net, "egress", "A", "g1", 2, "client", "s2")
	tunnel(net, "egress", "B", "g1", 2, "client", "s2")
	tunnel(net, "egress", "B", "g1", 1, "client", "s1")
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("client got %d packets", len(got))
	}
}

func TestEgressMedianOfFive(t *testing.T) {
	net, loop := testFabric(t, 15, 0)
	var fwdAt []sim.Time
	delivered := 0
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(*netsim.Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	eg, err := NewEgress(net, loop, "egress", 5)
	if err != nil {
		t.Fatal(err)
	}
	eg.OnForward = func(g string, seq uint64, at sim.Time) { fwdAt = append(fwdAt, at) }
	for i, rep := range []string{"A", "B", "C", "D", "E"} {
		at := sim.Time(i+1) * sim.Millisecond
		rep := rep
		loop.At(at, "t", func() { tunnel(net, "egress", rep, "g1", 1, "client", "x") })
	}
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
	// Median of five = third copy at 3ms (+link latency).
	if len(fwdAt) != 1 || fwdAt[0] < 3*sim.Millisecond || fwdAt[0] > 4*sim.Millisecond {
		t.Fatalf("median-of-5 forward at %v, want ~3.5ms", fwdAt)
	}
}

func TestEgressIgnoresGarbage(t *testing.T) {
	net, loop := testFabric(t, 17, 0)
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	net.Send(&netsim.Packet{Src: "x", Dst: "egress", Size: 10, Kind: "egress:tunnel", Payload: "garbage"})
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if eg.Forwarded() != 0 || eg.PendingGroups() != 0 {
		t.Fatal("garbage affected egress state")
	}
}

func TestEgressValidation(t *testing.T) {
	net, loop := testFabric(t, 19, 0)
	if _, err := NewEgress(nil, loop, "e", 3); !errors.Is(err, ErrGateway) {
		t.Fatal("nil net should fail")
	}
	if _, err := NewEgress(net, loop, "", 3); !errors.Is(err, ErrGateway) {
		t.Fatal("empty addr should fail")
	}
	if _, err := NewEgress(net, loop, "e", 2); !errors.Is(err, ErrGateway) {
		t.Fatal("even replicas should fail")
	}
	if _, err := NewEgress(net, loop, "e", 0); !errors.Is(err, ErrGateway) {
		t.Fatal("zero replicas should fail")
	}
}

// TestEgressSingleSurvivorForwardsSoleCopy: the per-guest live view. A
// guest degraded to one live replica must have its output forwarded at the
// sole copy instead of waiting forever for a second emission.
func TestEgressSingleSurvivorForwardsSoleCopy(t *testing.T) {
	net, loop := testFabric(t, 21, 0)
	delivered := 0
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(*netsim.Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eg.SetLiveReplicas("g1", 1); err != nil {
		t.Fatal(err)
	}
	tunnel(net, "egress", "A", "g1", 1, "client", "x")
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("single survivor's copy not forwarded (delivered=%d)", delivered)
	}
	if eg.StuckBelowForward() != 0 {
		t.Fatalf("stuck=%d after sole-copy forward", eg.StuckBelowForward())
	}
	// The forwarded group lingers for possible stragglers; the replacement
	// path's reclaim retires it.
	eg.ReclaimForwardedUpTo("g1", 1)
	if eg.PendingGroups() != 0 {
		t.Fatalf("pending=%d after reclaim", eg.PendingGroups())
	}
}

// TestEgressViewShrinkFlushesEligibleGroups: copies counted under the full
// group must still forward when a view shrink makes them eligible — the
// counted copies may all be from now-dead replicas, so no further emission
// will ever re-trigger the check.
func TestEgressViewShrinkFlushesEligibleGroups(t *testing.T) {
	net, loop := testFabric(t, 27, 0)
	delivered := 0
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(*netsim.Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	// One copy arrives under the full group (forwardOn 2): absorbed.
	tunnel(net, "egress", "A", "g1", 1, "client", "x")
	if err := loop.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("forwarded below the median copy")
	}
	// The group degrades to a single survivor: the already-counted copy is
	// now the whole group and must flush.
	if err := eg.SetLiveReplicas("g1", 1); err != nil {
		t.Fatal(err)
	}
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("view shrink did not flush the eligible group (delivered=%d)", delivered)
	}
	if eg.StuckBelowForward() != 0 {
		t.Fatalf("stuck=%d after flush", eg.StuckBelowForward())
	}
}

// TestEgressLivePairForwardsOnSecondAndToleratesStraggler: a degraded pair
// forwards at the later of its two emissions (the upper-median bias); the
// group stays open for the dead replica's in-flight straggler copy, which
// retires it at the full count instead of resurrecting a phantom stuck
// entry.
func TestEgressLivePairForwardsOnSecondAndToleratesStraggler(t *testing.T) {
	net, loop := testFabric(t, 23, 0)
	delivered := 0
	if err := net.Attach(&netsim.FuncNode{Addr: "client", Fn: func(*netsim.Packet) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eg.SetLiveReplicas("g1", 2); err != nil {
		t.Fatal(err)
	}
	tunnel(net, "egress", "A", "g1", 1, "client", "x")
	tunnel(net, "egress", "B", "g1", 1, "client", "x")
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered=%d, want forward on second copy", delivered)
	}
	// The dead replica's copy — tunnelled just before its VMM died — lands
	// late: absorbed, group retired, never re-forwarded, never stuck.
	tunnel(net, "egress", "C", "g1", 1, "client", "x")
	if err := loop.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("straggler re-forwarded (delivered=%d)", delivered)
	}
	if eg.PendingGroups() != 0 || eg.StuckBelowForward() != 0 {
		t.Fatalf("straggler left pending=%d stuck=%d", eg.PendingGroups(), eg.StuckBelowForward())
	}
	// Restoring the full group clears the override: the next sequence
	// needs two of three copies again.
	if err := eg.SetLiveReplicas("g1", 3); err != nil {
		t.Fatal(err)
	}
	tunnel(net, "egress", "A", "g1", 2, "client", "y")
	if err := loop.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("restored group forwarded on first copy (delivered=%d)", delivered)
	}
	if eg.StuckBelowForward() != 1 {
		t.Fatalf("stuck=%d, want the half-arrived seq 2", eg.StuckBelowForward())
	}
}

// TestEgressSetLiveReplicasValidation pins the bounds and the DropGuest
// cleanup.
func TestEgressSetLiveReplicasValidation(t *testing.T) {
	net, loop := testFabric(t, 25, 0)
	eg, err := NewEgress(net, loop, "egress", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eg.SetLiveReplicas("g", 0); !errors.Is(err, ErrGateway) {
		t.Fatal("live count 0 accepted")
	}
	if err := eg.SetLiveReplicas("g", 4); !errors.Is(err, ErrGateway) {
		t.Fatal("live count beyond the group accepted")
	}
	if err := eg.SetLiveReplicas("g", 1); err != nil {
		t.Fatal(err)
	}
	eg.DropGuest("g")
	// A later tenant reusing the id starts from the full group again.
	tunnel(net, "egress", "A", "g", 1, "client", "x")
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if eg.Forwarded() != 0 {
		t.Fatal("stale live view survived DropGuest")
	}
}
