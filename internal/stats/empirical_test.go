package stats

import (
	"errors"
	"math/rand"
	"testing"
)

func TestEmpiricalPowerNullCalibration(t *testing.T) {
	// Sampling from the NULL itself: rejection rate at confidence c should
	// be ≈ 1−c (the test's size), for moderately large n.
	e := Exponential{Rate: 1}
	bn, err := EqualProbBins(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	nullProbs := bn.CellProbs(e.CDF)
	rng := rand.New(rand.NewSource(1))
	p, err := EmpiricalPower(bn, nullProbs, func(u func() float64) float64 { return e.Sample(u) },
		0.95, 500, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.02 || p > 0.10 {
		t.Fatalf("size of the test = %v, want ≈0.05", p)
	}
}

func TestEmpiricalPowerDetectsShift(t *testing.T) {
	base := Exponential{Rate: 1}
	vict := Exponential{Rate: 0.5}
	bn, err := EqualProbBins(base, 10)
	if err != nil {
		t.Fatal(err)
	}
	nullProbs := bn.CellProbs(base.CDF)
	rng := rand.New(rand.NewSource(2))
	p, err := EmpiricalPower(bn, nullProbs, func(u func() float64) float64 { return vict.Sample(u) },
		0.95, 100, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.95 {
		t.Fatalf("power at n=100 for λ'=1/2 = %v, want ≈1", p)
	}
	if _, err := EmpiricalPower(bn, nullProbs, nil, 0.95, 10, 10, rng); !errors.Is(err, ErrBadParam) {
		t.Fatal("nil sampler should fail")
	}
	if _, err := EmpiricalPower(bn, nullProbs, func(u func() float64) float64 { return 0 }, 0.95, 0, 10, rng); !errors.Is(err, ErrBadParam) {
		t.Fatal("n=0 should fail")
	}
}

func TestEmpiricalObsToDetectOrdering(t *testing.T) {
	base := Exponential{Rate: 1}
	bn, err := EqualProbBins(base, 10)
	if err != nil {
		t.Fatal(err)
	}
	nullProbs := bn.CellProbs(base.CDF)
	rng := rand.New(rand.NewSource(3))
	// Raw victim pair: quickly detectable.
	nRaw, err := EmpiricalObsToDetect(bn, nullProbs,
		func(u func() float64) float64 { return Exponential{Rate: 0.5}.Sample(u) },
		0.95, 100, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Median-of-3 pair, binned on its own null: harder.
	med3 := MedianOf3Dist(base, base, base)
	bnM, err := EqualProbBins(med3, 10)
	if err != nil {
		t.Fatal(err)
	}
	nMed, err := EmpiricalObsToDetect(bnM, bnM.CellProbs(med3.CDF),
		MedianOf3Sampler(Exponential{Rate: 0.5}, base, base),
		0.95, 100, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if nMed < 3*nRaw {
		t.Fatalf("median should need several times more observations: raw=%d med=%d", nRaw, nMed)
	}
	if _, err := EmpiricalObsToDetect(bn, nullProbs, func(u func() float64) float64 { return 0 }, 0.95, 10, 0, rng); !errors.Is(err, ErrBadParam) {
		t.Fatal("maxN=0 should fail")
	}
}

func TestEmpiricalObsToDetectIdenticalHitsMaxN(t *testing.T) {
	base := Exponential{Rate: 1}
	bn, err := EqualProbBins(base, 10)
	if err != nil {
		t.Fatal(err)
	}
	nullProbs := bn.CellProbs(base.CDF)
	rng := rand.New(rand.NewSource(4))
	n, err := EmpiricalObsToDetect(bn, nullProbs,
		func(u func() float64) float64 { return base.Sample(u) },
		0.99, 50, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("identical distributions should exhaust maxN, got %d", n)
	}
}

func TestMedianOf3SamplerMatchesCDF(t *testing.T) {
	base := Exponential{Rate: 1}
	vict := Exponential{Rate: 0.5}
	s := MedianOf3Sampler(vict, base, base)
	med := MedianOf3CDF(vict.CDF, base.CDF, base.CDF)
	rng := rand.New(rand.NewSource(5))
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if s(rng.Float64) <= 1.0 {
			below++
		}
	}
	got := float64(below) / n
	if d := got - med(1.0); d > 0.01 || d < -0.01 {
		t.Fatalf("sampler fraction %v vs CDF %v", got, med(1.0))
	}
}

func TestExpPlusUniformSampler(t *testing.T) {
	s := ExpPlusUniformSampler(1, 4)
	f := ExpPlusUniformCDF(1, 4)
	rng := rand.New(rand.NewSource(6))
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if s(rng.Float64) <= 3.0 {
			below++
		}
	}
	got := float64(below) / n
	if d := got - f(3.0); d > 0.01 || d < -0.01 {
		t.Fatalf("sampler fraction %v vs CDF %v", got, f(3.0))
	}
}

func TestMinNoiseToSuppress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// With a generous observation budget the attacker detects the raw pair,
	// so suppression needs b > 0.
	b, err := MinNoiseToSuppress(1, 0.5, 10, 200, 100, 0.95, rng, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Fatalf("b = %v, want > 0 at n=200", b)
	}
	// With a single observation the attacker cannot reject at 0.95 anyway:
	// no noise needed.
	b0, err := MinNoiseToSuppress(1, 0.5, 10, 1, 200, 0.95, rng, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if b0 != 0 {
		t.Fatalf("b at n=1 = %v, want 0", b0)
	}
	if _, err := MinNoiseToSuppress(0, 0.5, 10, 1, 10, 0.95, rng, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("λ=0 should fail")
	}
}
