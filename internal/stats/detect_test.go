package stats

import (
	"errors"
	"math"
	"testing"
)

func TestEqualProbBins(t *testing.T) {
	e := Exponential{Rate: 1}
	b, err := EqualProbBins(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Edges) != 9 {
		t.Fatalf("edges = %d, want 9", len(b.Edges))
	}
	probs := b.CellProbs(e.CDF)
	if len(probs) != 10 {
		t.Fatalf("cells = %d, want 10", len(probs))
	}
	var sum float64
	for _, p := range probs {
		if math.Abs(p-0.1) > 1e-6 {
			t.Fatalf("cell prob %v, want 0.1 (probs=%v)", p, probs)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
	if _, err := EqualProbBins(e, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("n=1 should fail")
	}
}

func TestCellCountsMatchProbs(t *testing.T) {
	e := Exponential{Rate: 2}
	b, err := EqualProbBins(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := uniSrc(17)
	const n = 80000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = e.Sample(u)
	}
	counts := b.CellCounts(sample)
	if len(counts) != 8 {
		t.Fatalf("count cells = %d", len(counts))
	}
	total := 0
	for _, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.125) > 0.01 {
			t.Fatalf("cell fraction %v, want ~0.125", frac)
		}
		total += c
	}
	if total != n {
		t.Fatalf("counts total %d, want %d", total, n)
	}
}

func TestChiSqDiscrimination(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.6, 0.4}
	d, err := ChiSqDiscrimination(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.01/0.5 + 0.01/0.5
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("D = %v, want %v", d, want)
	}
	if d2, _ := ChiSqDiscrimination(p, p); d2 != 0 {
		t.Fatal("D(p,p) should be 0")
	}
	if _, err := ChiSqDiscrimination(p, []float64{1}); !errors.Is(err, ErrBadParam) {
		t.Fatal("length mismatch should fail")
	}
}

func TestObservationsToDetectIdenticalDistsInfinite(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25}
	n, err := ObservationsToDetect(p, p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(n, 1) {
		t.Fatalf("identical dists need %v observations, want +Inf", n)
	}
}

func TestObservationsMonotoneInConfidence(t *testing.T) {
	e := Exponential{Rate: 1}
	v := Exponential{Rate: 0.5}
	b, err := EqualProbBins(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := b.CellProbs(e.CDF)
	q := b.CellProbs(v.CDF)
	curve, err := DetectionCurve(p, q, StandardConfidences())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("detection curve not monotone: %v", curve)
		}
	}
}

// The headline comparison of Fig. 1(b): under StopWatch the attacker needs
// orders of magnitude more observations than without it.
func TestStopWatchRaisesDetectionCost(t *testing.T) {
	base := Exponential{Rate: 1}
	vict := Exponential{Rate: 0.5}

	// Without StopWatch: attacker sees Exp(λ) vs Exp(λ′) directly.
	bn, err := EqualProbBins(base, 10)
	if err != nil {
		t.Fatal(err)
	}
	pRaw := bn.CellProbs(base.CDF)
	qRaw := bn.CellProbs(vict.CDF)
	nRaw, err := ObservationsToDetect(pRaw, qRaw, 0.95)
	if err != nil {
		t.Fatal(err)
	}

	// With StopWatch: attacker sees median-of-3.
	noVictim := MedianOf3CDF(base.CDF, base.CDF, base.CDF)
	withVictim := MedianOf3CDF(vict.CDF, base.CDF, base.CDF)
	fd := &FuncDist{F: noVictim}
	bnM, err := EqualProbBins(fd, 10)
	if err != nil {
		t.Fatal(err)
	}
	pMed := bnM.CellProbs(noVictim)
	qMed := bnM.CellProbs(withVictim)
	nMed, err := ObservationsToDetect(pMed, qMed, 0.95)
	if err != nil {
		t.Fatal(err)
	}

	// Paper, Sec. V-B: "StopWatch strengthens defense against timing attacks
	// by an order of magnitude". With 10 equal-probability bins the χ²
	// noncentrality framework yields a ~6x gap here; finer binning widens it
	// (the χ² divergence of the raw pair diverges while the median pair's
	// converges). Assert the conservative bound.
	if nMed < 5*nRaw {
		t.Fatalf("StopWatch gain too small: raw=%v med=%v", nRaw, nMed)
	}
}

func TestChiSqStatistic(t *testing.T) {
	counts := []int{50, 50}
	probs := []float64{0.5, 0.5}
	stat, df, err := ChiSqStatistic(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || df != 1 {
		t.Fatalf("stat=%v df=%d, want 0,1", stat, df)
	}
	counts = []int{60, 40}
	stat, df, err = ChiSqStatistic(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	want := (10.0*10)/50 + (10.0*10)/50
	if math.Abs(stat-want) > 1e-12 || df != 1 {
		t.Fatalf("stat=%v, want %v", stat, want)
	}
	if _, _, err := ChiSqStatistic([]int{1}, probs); !errors.Is(err, ErrBadParam) {
		t.Fatal("mismatch should fail")
	}
	if _, _, err := ChiSqStatistic([]int{0, 0}, probs); !errors.Is(err, ErrBadParam) {
		t.Fatal("empty counts should fail")
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Fatalf("root = %v", root)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 10); !errors.Is(err, ErrBadParam) {
		t.Fatal("non-bracketing should fail")
	}
	// Exact endpoint roots.
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 10); err != nil || r != 0 {
		t.Fatalf("endpoint root: %v, %v", r, err)
	}
}

func TestBinningCellLookup(t *testing.T) {
	b := Binning{Edges: []float64{1, 2, 3}}
	cases := []struct {
		v    float64
		want int
	}{{0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {2.5, 2}, {3, 2}, {9, 3}}
	for _, c := range cases {
		if got := b.cell(c.v); got != c.want {
			t.Errorf("cell(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}
