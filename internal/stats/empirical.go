package stats

import (
	"fmt"
	"math/rand"
)

// Empirical (Monte-Carlo) χ² detection: instead of the noncentrality
// approximation N ≈ quantile/D, actually run the attacker's test — draw N
// observations from the alternative, compute the Pearson statistic against
// the null's cell probabilities, and check rejection at the target
// confidence. "Observations needed" is the smallest N rejecting in at
// least half the trials. This is the literal reading of the paper's
// "using a χ-squared test" experiments and reproduces their floor effects
// (tiny N for wildly different distributions).

// Sampler draws one observation given a uniform source.
type Sampler func(u func() float64) float64

// EmpiricalPower estimates the probability that a Pearson χ² test on n
// draws from alt rejects the null (given by nullProbs over bn) at the
// given confidence.
func EmpiricalPower(bn Binning, nullProbs []float64, alt Sampler, confidence float64, n, trials int, rng *rand.Rand) (float64, error) {
	if n <= 0 || trials <= 0 || alt == nil {
		return 0, fmt.Errorf("%w: EmpiricalPower(n=%d, trials=%d)", ErrBadParam, n, trials)
	}
	thresh, err := ChiSquareQuantile(float64(len(nullProbs)-1), confidence)
	if err != nil {
		return 0, err
	}
	rejections := 0
	sample := make([]float64, n)
	for t := 0; t < trials; t++ {
		for i := 0; i < n; i++ {
			sample[i] = alt(rng.Float64)
		}
		counts := bn.CellCounts(sample)
		stat, _, err := ChiSqStatistic(counts, nullProbs)
		if err != nil {
			return 0, err
		}
		if stat >= thresh {
			rejections++
		}
	}
	return float64(rejections) / float64(trials), nil
}

// EmpiricalObsToDetect finds the smallest observation count whose rejection
// power reaches 0.5, scanning N geometrically up to maxN. Returns maxN if
// the power never reaches 0.5 (the distributions are too close to detect
// within budget).
func EmpiricalObsToDetect(bn Binning, nullProbs []float64, alt Sampler, confidence float64, trials, maxN int, rng *rand.Rand) (int, error) {
	if maxN <= 0 {
		return 0, fmt.Errorf("%w: maxN=%d", ErrBadParam, maxN)
	}
	n := 1
	for n <= maxN {
		p, err := EmpiricalPower(bn, nullProbs, alt, confidence, n, trials, rng)
		if err != nil {
			return 0, err
		}
		if p >= 0.5 {
			return n, nil
		}
		next := n * 5 / 4
		if next == n {
			next = n + 1
		}
		n = next
	}
	return maxN, nil
}

// MedianOf3Sampler samples the median of three independent draws.
func MedianOf3Sampler(d1, d2, d3 Dist) Sampler {
	return func(u func() float64) float64 {
		return MedianSample3(d1.Sample(u), d2.Sample(u), d3.Sample(u))
	}
}

// ExpPlusUniformSampler samples Exp(rate) + U(0,b).
func ExpPlusUniformSampler(rate, b float64) Sampler {
	e := Exponential{Rate: rate}
	n := Uniform{Lo: 0, Hi: b}
	return func(u func() float64) float64 {
		return e.Sample(u) + n.Sample(u)
	}
}

// MinNoiseToSuppress finds the smallest uniform-noise bound b such that an
// attacker running the empirical χ² test at the given confidence with
// nObs observations fails (power < 0.5) to distinguish Exp(λ)+U(0,b) from
// Exp(λ′)+U(0,b). The χ² cells are fixed to the noiseless null's
// equal-probability quantiles. Returns 0 when even no noise keeps the
// attacker below power 0.5.
func MinNoiseToSuppress(lambda, lambdaP float64, bins, nObs, trials int, confidence float64, rng *rand.Rand, maxB float64) (float64, error) {
	if lambda <= 0 || lambdaP <= 0 || bins < 2 || nObs <= 0 || maxB <= 0 {
		return 0, fmt.Errorf("%w: MinNoiseToSuppress params", ErrBadParam)
	}
	bn, err := EqualProbBins(Exponential{Rate: lambda}, bins)
	if err != nil {
		return 0, err
	}
	powerAt := func(b float64) (float64, error) {
		nullProbs := bn.CellProbs(ExpPlusUniformCDF(lambda, b))
		return EmpiricalPower(bn, nullProbs, ExpPlusUniformSampler(lambdaP, b), confidence, nObs, trials, rng)
	}
	p0, err := powerAt(0)
	if err != nil {
		return 0, err
	}
	if p0 < 0.5 {
		return 0, nil
	}
	// Bracket upward.
	hi := 1.0
	for hi <= maxB {
		p, err := powerAt(hi)
		if err != nil {
			return 0, err
		}
		if p < 0.5 {
			break
		}
		hi *= 2
	}
	if hi > maxB {
		return maxB, nil
	}
	lo := hi / 2
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		p, err := powerAt(mid)
		if err != nil {
			return 0, err
		}
		if p >= 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
