package stats

import (
	"errors"
	"math"
	"testing"
)

func TestAbsDiffExpTailMonteCarlo(t *testing.T) {
	lambda, lambdaP := 1.0, 0.5
	u := uniSrc(23)
	x := Exponential{Rate: lambda}
	y := Exponential{Rate: lambdaP}
	const n = 300000
	for _, d := range []float64{0.5, 1, 2, 4} {
		cnt := 0
		// Reseed per threshold for independence of checks.
		for i := 0; i < n; i++ {
			if math.Abs(x.Sample(u)-y.Sample(u)) > d {
				cnt++
			}
		}
		want, err := AbsDiffExpTail(lambda, lambdaP, d)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(cnt) / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("tail(%v): MC %v vs analytic %v", d, got, want)
		}
	}
}

func TestAbsDiffExpTailEdges(t *testing.T) {
	v, err := AbsDiffExpTail(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("tail at 0 should be 1, got %v", v)
	}
	if _, err := AbsDiffExpTail(0, 1, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("λ=0 should fail")
	}
	if _, err := AbsDiffExpTail(1, 1, -1); !errors.Is(err, ErrBadParam) {
		t.Fatal("d<0 should fail")
	}
}

func TestDeltaNForCoverage(t *testing.T) {
	// The paper's choice: P[|X1−X′1| <= Δn] >= 0.9999.
	d, err := DeltaNForCoverage(1, 0.5, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := AbsDiffExpTail(1, 0.5, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tail-1e-4) > 1e-6 {
		t.Fatalf("coverage at Δn=%v gives tail %v, want 1e-4", d, tail)
	}
	// Must be increasing in coverage.
	d2, err := DeltaNForCoverage(1, 0.5, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if d2 >= d {
		t.Fatalf("Δn not monotone in coverage: %v vs %v", d2, d)
	}
	if _, err := DeltaNForCoverage(1, 0.5, 1.5); !errors.Is(err, ErrBadParam) {
		t.Fatal("bad coverage should fail")
	}
}

func TestExpPlusUniformCDFAgainstMonteCarlo(t *testing.T) {
	lambda, b := 1.0, 4.0
	f := ExpPlusUniformCDF(lambda, b)
	u := uniSrc(77)
	x := Exponential{Rate: lambda}
	noise := Uniform{Lo: 0, Hi: b}
	const n = 200000
	for _, probe := range []float64{0.5, 1, 2, 4, 6, 10} {
		cnt := 0
		for i := 0; i < n; i++ {
			if x.Sample(u)+noise.Sample(u) <= probe {
				cnt++
			}
		}
		got := float64(cnt) / n
		if math.Abs(got-f(probe)) > 0.005 {
			t.Errorf("CDF(%v): MC %v vs analytic %v", probe, got, f(probe))
		}
	}
	// Degenerate b: falls back to the bare exponential.
	f0 := ExpPlusUniformCDF(2, 0)
	if math.Abs(f0(1)-Exponential{Rate: 2}.CDF(1)) > 1e-12 {
		t.Fatal("b=0 should reduce to Exp CDF")
	}
}

func TestUniformNoiseForProtection(t *testing.T) {
	// Discrimination without noise.
	bn, err := EqualProbBins(Exponential{Rate: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := ChiSqDiscrimination(
		bn.CellProbs(Exponential{Rate: 1}.CDF),
		bn.CellProbs(Exponential{Rate: 0.5}.CDF))
	if err != nil {
		t.Fatal(err)
	}

	target := d0 / 50
	b, err := UniformNoiseForProtection(1, 0.5, 10, target)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Fatalf("noise bound %v", b)
	}
	// Verify the achieved discrimination really is <= target over the
	// fixed binning.
	d1, err := ChiSqDiscrimination(
		bn.CellProbs(ExpPlusUniformCDF(1, b)),
		bn.CellProbs(ExpPlusUniformCDF(0.5, b)))
	if err != nil {
		t.Fatal(err)
	}
	if d1 > target*1.01 {
		t.Fatalf("achieved discrimination %v exceeds target %v", d1, target)
	}
	// A tougher target needs more noise.
	b2, err := UniformNoiseForProtection(1, 0.5, 10, target/4)
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= b {
		t.Fatalf("noise bound not monotone: %v vs %v", b2, b)
	}
	if _, err := UniformNoiseForProtection(1, 0.5, 10, 0); !errors.Is(err, ErrBadParam) {
		t.Fatal("target 0 should fail")
	}
}
