package stats

import (
	"fmt"
	"math"
)

// Regularized lower incomplete gamma P(a,x) and the χ² distribution built on
// it. Implementation follows the classic series/continued-fraction split
// (series for x < a+1, Lentz continued fraction otherwise).

const (
	gammaEps     = 1e-14
	gammaMaxIter = 1000
)

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a,x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
func RegIncGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("%w: RegIncGammaP(a=%v, x=%v)", ErrBadParam, a, x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		v, err := gammaPSeries(a, x)
		return v, err
	}
	q, err := gammaQContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// gammaPSeries evaluates P(a,x) by its power series.
func gammaPSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("%w: gamma series did not converge (a=%v,x=%v)", ErrBadParam, a, x)
}

// gammaQContinuedFraction evaluates Q(a,x) = 1 - P(a,x) by modified Lentz.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("%w: gamma continued fraction did not converge (a=%v,x=%v)", ErrBadParam, a, x)
}

// ChiSquareCDF returns P(X <= x) for X ~ χ² with df degrees of freedom.
func ChiSquareCDF(df float64, x float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("%w: ChiSquareCDF df=%v", ErrBadParam, df)
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncGammaP(df/2, x/2)
}

// ChiSquareQuantile returns the p-quantile of the χ² distribution with df
// degrees of freedom, i.e. the x with CDF(x)=p, by monotone bisection.
func ChiSquareQuantile(df float64, p float64) (float64, error) {
	if df <= 0 || p < 0 || p >= 1 {
		return 0, fmt.Errorf("%w: ChiSquareQuantile(df=%v, p=%v)", ErrBadParam, df, p)
	}
	if p == 0 {
		return 0, nil
	}
	lo, hi := 0.0, df+10
	for {
		v, err := ChiSquareCDF(df, hi)
		if err != nil {
			return 0, err
		}
		if v >= p || hi > 1e9 {
			break
		}
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		v, err := ChiSquareCDF(df, mid)
		if err != nil {
			return 0, err
		}
		if v < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
