package stats

import "fmt"

// Order statistics of independent (not necessarily identically distributed)
// random variables, per Güngör et al. as cited in the paper's appendix:
//
//	F_{r:m}(x) = Σ_{ℓ=r}^{m} (-1)^{ℓ-r} C(ℓ-1, r-1) Σ_{|I|=ℓ} Π_{i∈I} F_i(x)
//
// StopWatch uses r=2, m=3 (the median of three replicas' timings).

// OrderStatCDF returns the CDF of the r-th smallest of m independent draws,
// one from each of the given CDFs. len(cdfs) must equal m and 1 <= r <= m.
func OrderStatCDF(r int, cdfs []func(float64) float64) (func(float64) float64, error) {
	m := len(cdfs)
	if m == 0 || r < 1 || r > m {
		return nil, fmt.Errorf("%w: OrderStatCDF r=%d m=%d", ErrBadParam, r, m)
	}
	// Precompute binomials C(ℓ-1, r-1) for ℓ=r..m.
	return func(x float64) float64 {
		f := make([]float64, m)
		for i, c := range cdfs {
			f[i] = c(x)
		}
		var total float64
		for l := r; l <= m; l++ {
			esym := elementarySymmetric(f, l)
			sign := 1.0
			if (l-r)%2 == 1 {
				sign = -1
			}
			total += sign * binom(l-1, r-1) * esym
		}
		return clamp01(total)
	}, nil
}

// elementarySymmetric returns e_k(v), the sum over all k-subsets of the
// product of elements, via the Newton triangle in O(n·k).
func elementarySymmetric(v []float64, k int) float64 {
	n := len(v)
	if k > n {
		return 0
	}
	e := make([]float64, k+1)
	e[0] = 1
	for i := 0; i < n; i++ {
		hi := i + 1
		if hi > k {
			hi = k
		}
		for j := hi; j >= 1; j-- {
			e[j] += v[i] * e[j-1]
		}
	}
	return e[k]
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// MedianOf3CDF returns F_{2:3} for three independent variables with the
// given CDFs. This is the microaggregation function at the heart of
// StopWatch: per the appendix,
//
//	F_{2:3} = F1·F2 + F1·F3 + F2·F3 − 2·F1·F2·F3
func MedianOf3CDF(f1, f2, f3 func(float64) float64) func(float64) float64 {
	return func(x float64) float64 {
		a, b, c := f1(x), f2(x), f3(x)
		return clamp01(a*b + a*c + b*c - 2*a*b*c)
	}
}

// MedianOf3Dist wraps MedianOf3CDF into a Dist with numerically-derived
// mean and inversion sampling (upper bound found automatically).
func MedianOf3Dist(d1, d2, d3 Dist) Dist {
	f := MedianOf3CDF(d1.CDF, d2.CDF, d3.CDF)
	return &FuncDist{F: f}
}

// MedianOfOdd returns the median-of-m CDF for odd m given per-replica CDFs.
// StopWatch's Sec. IX countermeasure against collaborating attackers raises
// m from 3 to 5; this supports the ablation.
func MedianOfOdd(cdfs []func(float64) float64) (func(float64) float64, error) {
	m := len(cdfs)
	if m == 0 || m%2 == 0 {
		return nil, fmt.Errorf("%w: MedianOfOdd needs odd m, got %d", ErrBadParam, m)
	}
	return OrderStatCDF((m+1)/2, cdfs)
}

// KSDistanceFunc returns the Kolmogorov–Smirnov distance
// max_x |F(x) − G(x)| evaluated on a uniform grid over [lo,hi] with n
// points. The appendix's Theorems 3–4 are stated in terms of this metric.
func KSDistanceFunc(f, g func(float64) float64, lo, hi float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	var d float64
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		if v := abs(f(x) - g(x)); v > d {
			d = v
		}
	}
	return d
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// MedianSample3 returns the median of three sampled values.
func MedianSample3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
