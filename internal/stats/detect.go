package stats

import (
	"fmt"
	"math"
)

// Detection power machinery for the "observations needed to detect the
// victim" curves (Figs. 1(b), 1(c), 4(b)).
//
// Model: the attacker draws N observations from the true distribution Q and
// applies a Pearson χ² goodness-of-fit test against the null distribution P
// (the no-victim behaviour). The expected χ² statistic grows as N·D(P,Q)
// with the discrimination
//
//	D(P,Q) = Σ_i (q_i − p_i)² / p_i
//
// over the binned cell probabilities, so rejecting the null at confidence c
// (χ² quantile Q_{df}(c), df = bins−1) needs about
//
//	N(c) = Q_{df}(c) / D(P,Q)
//
// observations. This is the standard noncentrality argument and is the
// natural formalization of the paper's χ-square experiments.

// Binning maps the real line into len(Edges)+1 cells:
// (−inf, e0], (e0, e1], …, (e_{k−1}, +inf).
type Binning struct {
	Edges []float64
}

// EqualProbBins chooses edges so that the null distribution P has equal
// mass in each of n cells — the usual way to bin for a χ² test.
func EqualProbBins(p Dist, n int) (Binning, error) {
	if n < 2 {
		return Binning{}, fmt.Errorf("%w: EqualProbBins n=%d", ErrBadParam, n)
	}
	edges := make([]float64, n-1)
	for i := 1; i < n; i++ {
		target := float64(i) / float64(n)
		edges[i-1] = invertCDF(p.CDF, target)
	}
	return Binning{Edges: edges}, nil
}

// invertCDF finds x with F(x)=target by doubling + bisection. F must be a
// nondecreasing CDF of a (mostly) nonnegative variable; negative support is
// handled by expanding the bracket downward as well.
func invertCDF(f func(float64) float64, target float64) float64 {
	lo, hi := 0.0, 1.0
	for f(hi) < target && hi < 1e12 {
		hi *= 2
	}
	for f(lo) > target && lo > -1e12 {
		if lo == 0 {
			lo = -1
		} else {
			lo *= 2
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}

// CellProbs returns the probability mass of each cell under CDF f.
func (b Binning) CellProbs(f func(float64) float64) []float64 {
	k := len(b.Edges)
	out := make([]float64, k+1)
	prev := 0.0
	for i, e := range b.Edges {
		c := clamp01(f(e))
		out[i] = c - prev
		prev = c
	}
	out[k] = 1 - prev
	for i, v := range out {
		if v < 0 {
			out[i] = 0
		}
	}
	return out
}

// CellCounts histograms a sample into the binning's cells.
func (b Binning) CellCounts(sample []float64) []int {
	out := make([]int, len(b.Edges)+1)
	for _, v := range sample {
		out[b.cell(v)]++
	}
	return out
}

func (b Binning) cell(v float64) int {
	lo, hi := 0, len(b.Edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= b.Edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ChiSqDiscrimination returns D(P,Q) = Σ (q_i−p_i)²/p_i. Cells where p_i is
// ~zero are skipped to keep the statistic finite (the test would pool them).
func ChiSqDiscrimination(p, q []float64) (float64, error) {
	if len(p) != len(q) || len(p) < 2 {
		return 0, fmt.Errorf("%w: discrimination needs matched cells (%d vs %d)", ErrBadParam, len(p), len(q))
	}
	var d float64
	for i := range p {
		if p[i] < 1e-12 {
			continue
		}
		diff := q[i] - p[i]
		d += diff * diff / p[i]
	}
	return d, nil
}

// ObservationsToDetect returns N(c) = χ²-quantile(df=bins−1, c) / D(P,Q):
// the approximate number of observations an attacker needs to reject, at
// confidence c, the hypothesis that it is NOT coresident with the victim.
func ObservationsToDetect(p, q []float64, confidence float64) (float64, error) {
	d, err := ChiSqDiscrimination(p, q)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return math.Inf(1), nil
	}
	qv, err := ChiSquareQuantile(float64(len(p)-1), confidence)
	if err != nil {
		return 0, err
	}
	n := qv / d
	if n < 1 {
		n = 1
	}
	return n, nil
}

// DetectionCurve evaluates ObservationsToDetect at each confidence level.
func DetectionCurve(p, q []float64, confidences []float64) ([]float64, error) {
	out := make([]float64, len(confidences))
	for i, c := range confidences {
		n, err := ObservationsToDetect(p, q, c)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// StandardConfidences are the x-axis of the paper's detection figures.
func StandardConfidences() []float64 {
	return []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99}
}

// ChiSqStatistic computes the Pearson statistic for observed counts against
// expected cell probabilities, pooling cells with tiny expectation.
func ChiSqStatistic(counts []int, expectedProbs []float64) (stat float64, df int, err error) {
	if len(counts) != len(expectedProbs) {
		return 0, 0, fmt.Errorf("%w: counts/probs length mismatch", ErrBadParam)
	}
	var n int
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: empty counts", ErrBadParam)
	}
	cells := 0
	for i := range counts {
		exp := expectedProbs[i] * float64(n)
		if exp < 1e-9 {
			continue
		}
		cells++
		d := float64(counts[i]) - exp
		stat += d * d / exp
	}
	if cells < 2 {
		return 0, 0, fmt.Errorf("%w: too few usable cells", ErrBadParam)
	}
	return stat, cells - 1, nil
}

// Bisect finds a root of f in [lo,hi] assuming f(lo) and f(hi) bracket zero.
func Bisect(f func(float64) float64, lo, hi float64, iters int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("%w: Bisect endpoints do not bracket a root (f(%v)=%v f(%v)=%v)", ErrBadParam, lo, flo, hi, fhi)
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (fhi > 0) {
			hi, fhi = mid, fm
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, nil
}
