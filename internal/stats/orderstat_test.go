package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMedianOf3IIDClosedForm(t *testing.T) {
	// For iid F: F_{2:3} = 3F² − 2F³.
	f := Exponential{Rate: 1}.CDF
	med := MedianOf3CDF(f, f, f)
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		v := f(x)
		want := 3*v*v - 2*v*v*v
		if math.Abs(med(x)-want) > 1e-12 {
			t.Errorf("median CDF(%v) = %v, want %v", x, med(x), want)
		}
	}
}

func TestOrderStatCDFMatchesMedianOf3(t *testing.T) {
	f1 := Exponential{Rate: 1}.CDF
	f2 := Exponential{Rate: 2}.CDF
	f3 := Uniform{Lo: 0, Hi: 3}.CDF
	viaFormula := MedianOf3CDF(f1, f2, f3)
	viaOrder, err := OrderStatCDF(2, []func(float64) float64{f1, f2, f3})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 6; x += 0.25 {
		if math.Abs(viaFormula(x)-viaOrder(x)) > 1e-12 {
			t.Fatalf("mismatch at %v: %v vs %v", x, viaFormula(x), viaOrder(x))
		}
	}
}

func TestOrderStatExtremes(t *testing.T) {
	// r=1 is the minimum: F_{1:m} = 1 − Π(1−F_i);
	// r=m is the maximum: F_{m:m} = ΠF_i.
	cdfs := []func(float64) float64{
		Exponential{Rate: 1}.CDF,
		Exponential{Rate: 0.5}.CDF,
		Uniform{Lo: 0, Hi: 2}.CDF,
	}
	minC, err := OrderStatCDF(1, cdfs)
	if err != nil {
		t.Fatal(err)
	}
	maxC, err := OrderStatCDF(3, cdfs)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 5; x += 0.5 {
		prodSurv, prod := 1.0, 1.0
		for _, f := range cdfs {
			prodSurv *= 1 - f(x)
			prod *= f(x)
		}
		if math.Abs(minC(x)-(1-prodSurv)) > 1e-12 {
			t.Fatalf("min CDF wrong at %v", x)
		}
		if math.Abs(maxC(x)-prod) > 1e-12 {
			t.Fatalf("max CDF wrong at %v", x)
		}
	}
}

func TestOrderStatMonteCarlo(t *testing.T) {
	// Median-of-3 CDF must match simulation.
	d1 := Exponential{Rate: 1}
	d2 := Exponential{Rate: 0.5}
	d3 := Uniform{Lo: 0, Hi: 4}
	med := MedianOf3CDF(d1.CDF, d2.CDF, d3.CDF)
	u := uniSrc(31)
	const n = 200000
	xs := []float64{0.5, 1, 2, 3}
	counts := make([]int, len(xs))
	for i := 0; i < n; i++ {
		m := MedianSample3(d1.Sample(u), d2.Sample(u), d3.Sample(u))
		for j, x := range xs {
			if m <= x {
				counts[j]++
			}
		}
	}
	for j, x := range xs {
		emp := float64(counts[j]) / n
		if math.Abs(emp-med(x)) > 0.006 {
			t.Errorf("at %v: MC %v vs analytic %v", x, emp, med(x))
		}
	}
}

func TestMedianSample3(t *testing.T) {
	cases := []struct{ a, b, c, want float64 }{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 1, 3, 2},
		{1, 1, 5, 1}, {5, 5, 1, 5}, {2, 2, 2, 2},
	}
	for _, tc := range cases {
		if got := MedianSample3(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("median(%v,%v,%v) = %v, want %v", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestMedianOfOdd(t *testing.T) {
	f := Exponential{Rate: 1}.CDF
	med5, err := MedianOfOdd([]func(float64) float64{f, f, f, f, f})
	if err != nil {
		t.Fatal(err)
	}
	// iid median-of-5: F_{3:5} = 10F³(1−F)² + 5F⁴(1−F) + F⁵.
	for _, x := range []float64{0.2, 0.7, 1.5, 3} {
		v := f(x)
		want := 10*math.Pow(v, 3)*math.Pow(1-v, 2) + 5*math.Pow(v, 4)*(1-v) + math.Pow(v, 5)
		if math.Abs(med5(x)-want) > 1e-12 {
			t.Errorf("median-of-5 at %v: %v want %v", x, med5(x), want)
		}
	}
	if _, err := MedianOfOdd(nil); !errors.Is(err, ErrBadParam) {
		t.Fatal("empty MedianOfOdd should fail")
	}
	if _, err := MedianOfOdd(make([]func(float64) float64, 4)); !errors.Is(err, ErrBadParam) {
		t.Fatal("even MedianOfOdd should fail")
	}
}

func TestOrderStatBadParams(t *testing.T) {
	f := Exponential{Rate: 1}.CDF
	if _, err := OrderStatCDF(0, []func(float64) float64{f}); !errors.Is(err, ErrBadParam) {
		t.Fatal("r=0 should fail")
	}
	if _, err := OrderStatCDF(2, []func(float64) float64{f}); !errors.Is(err, ErrBadParam) {
		t.Fatal("r>m should fail")
	}
	if _, err := OrderStatCDF(1, nil); !errors.Is(err, ErrBadParam) {
		t.Fatal("m=0 should fail")
	}
}

// Property (Theorem 3): for overlapping F2,F3, the KS distance between the
// two median distributions is strictly smaller than between the originals:
// D(F_{2:3}, F′_{2:3}) < D(F1, F′1).
func TestTheorem3KSContraction(t *testing.T) {
	f := func(seedRaw int64) bool {
		r := rand.New(rand.NewSource(seedRaw))
		l1 := 0.2 + 3*r.Float64()
		l1p := 0.2 + 3*r.Float64()
		if math.Abs(l1-l1p) < 0.05 {
			l1p = l1 + 0.3
		}
		l2 := 0.2 + 3*r.Float64()
		l3 := 0.2 + 3*r.Float64()
		f1 := Exponential{Rate: l1}.CDF
		f1p := Exponential{Rate: l1p}.CDF
		f2 := Exponential{Rate: l2}.CDF
		f3 := Exponential{Rate: l3}.CDF
		base := MedianOf3CDF(f1, f2, f3)
		vict := MedianOf3CDF(f1p, f2, f3)
		dMed := KSDistanceFunc(base, vict, 0, 40, 8000)
		dOrig := KSDistanceFunc(f1, f1p, 0, 40, 8000)
		return dMed < dOrig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 4: if X2, X3 are identically distributed,
// D(F_{2:3}, F′_{2:3}) <= D(F1, F′1)/2.
func TestTheorem4HalfContraction(t *testing.T) {
	f := func(seedRaw int64) bool {
		r := rand.New(rand.NewSource(seedRaw))
		l1 := 0.2 + 3*r.Float64()
		l1p := 0.2 + 3*r.Float64()
		l23 := 0.2 + 3*r.Float64()
		f1 := Exponential{Rate: l1}.CDF
		f1p := Exponential{Rate: l1p}.CDF
		f23 := Exponential{Rate: l23}.CDF
		base := MedianOf3CDF(f1, f23, f23)
		vict := MedianOf3CDF(f1p, f23, f23)
		dMed := KSDistanceFunc(base, vict, 0, 40, 8000)
		dOrig := KSDistanceFunc(f1, f1p, 0, 40, 8000)
		return dMed <= dOrig/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKSDistanceFunc(t *testing.T) {
	f := Uniform{Lo: 0, Hi: 1}.CDF
	g := Uniform{Lo: 0.5, Hi: 1.5}.CDF
	d := KSDistanceFunc(f, g, -1, 2, 4000)
	if math.Abs(d-0.5) > 1e-3 {
		t.Fatalf("KS distance = %v, want 0.5", d)
	}
	if KSDistanceFunc(f, f, 0, 1, 2) != 0 {
		t.Fatal("KS(f,f) should be 0")
	}
}

func TestElementarySymmetric(t *testing.T) {
	v := []float64{1, 2, 3}
	if e := elementarySymmetric(v, 1); e != 6 {
		t.Fatalf("e1 = %v, want 6", e)
	}
	if e := elementarySymmetric(v, 2); e != 11 {
		t.Fatalf("e2 = %v, want 11", e)
	}
	if e := elementarySymmetric(v, 3); e != 6 {
		t.Fatalf("e3 = %v, want 6", e)
	}
	if e := elementarySymmetric(v, 4); e != 0 {
		t.Fatalf("e4 = %v, want 0", e)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0}, {10, 3, 120}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
