// Package stats provides the statistical machinery behind the StopWatch
// analysis: continuous distributions, empirical CDFs, order statistics
// (the median-of-3 microaggregation of the paper's appendix), χ²
// goodness-of-fit power calculations ("observations needed to detect a
// victim", Figs. 1 and 4), Kolmogorov–Smirnov distances (Theorems 3–4),
// and numeric convolution for the additive-noise comparison (Fig. 8).
//
// Everything is deterministic and stdlib-only.
package stats

import (
	"errors"
	"math"
)

// ErrBadParam reports an invalid distribution or test parameter.
var ErrBadParam = errors.New("stats: invalid parameter")

// Dist is a real-valued probability distribution.
type Dist interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Mean returns E[X].
	Mean() float64
	// Sample draws using the provided uniform source.
	Sample(u func() float64) float64
}

// Exponential is the Exp(rate) distribution with mean 1/rate. The paper
// models inter-event timings as exponential (baseline rate λ, victim rate
// λ′ < λ).
type Exponential struct {
	Rate float64
}

var _ Dist = Exponential{}

// CDF returns 1 - exp(-rate·x) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Mean returns 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Sample draws by inversion.
func (e Exponential) Sample(u func() float64) float64 {
	v := u()
	if v >= 1 {
		v = math.Nextafter(1, 0)
	}
	return -math.Log1p(-v) / e.Rate
}

// Uniform is the U(Lo,Hi) distribution — the additive-noise alternative the
// appendix compares against (XN ~ U(0,b)).
type Uniform struct {
	Lo, Hi float64
}

var _ Dist = Uniform{}

// CDF of the uniform distribution.
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x <= d.Lo:
		return 0
	case x >= d.Hi:
		return 1
	default:
		return (x - d.Lo) / (d.Hi - d.Lo)
	}
}

// Mean returns (Lo+Hi)/2.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Sample draws uniformly.
func (d Uniform) Sample(u func() float64) float64 {
	return d.Lo + (d.Hi-d.Lo)*u()
}

// Shifted is X + C for a base distribution X — e.g. a proposal time
// X shifted by the constant offset Δn.
type Shifted struct {
	Base Dist
	C    float64
}

var _ Dist = Shifted{}

// CDF of the shifted distribution.
func (s Shifted) CDF(x float64) float64 { return s.Base.CDF(x - s.C) }

// Mean returns E[X] + C.
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.C }

// Sample draws from the base and shifts.
func (s Shifted) Sample(u func() float64) float64 { return s.Base.Sample(u) + s.C }

// Sum is the sum of two independent distributions, sampled exactly and
// with CDF evaluated by numeric integration over the first component.
// Used for X + XN (signal plus additive noise).
type Sum struct {
	A, B Dist
	// GridN controls CDF integration resolution (default 4096).
	GridN int
	// Support bounds for A used during integration (default [0, hi] where
	// hi covers 1-1e-9 of A's mass found by doubling search).
	ALo, AHi float64
}

var _ Dist = &Sum{}

// CDF integrates P(B <= x - a) dF_A(a) on a grid.
func (s *Sum) CDF(x float64) float64 {
	n := s.GridN
	if n <= 0 {
		n = 4096
	}
	lo, hi := s.ALo, s.AHi
	if hi <= lo {
		lo = 0
		hi = 1
		for s.A.CDF(hi) < 1-1e-9 && hi < 1e12 {
			hi *= 2
		}
	}
	// Stieltjes sum: sum over grid cells of (F_A(a_{i+1})-F_A(a_i)) * F_B(x-mid).
	var acc float64
	prev := s.A.CDF(lo)
	step := (hi - lo) / float64(n)
	for i := 0; i < n; i++ {
		a1 := lo + float64(i+1)*step
		cur := s.A.CDF(a1)
		mid := lo + (float64(i)+0.5)*step
		acc += (cur - prev) * s.B.CDF(x-mid)
		prev = cur
	}
	// Mass below lo contributes F_B(x-lo) approximately; above hi ~0 or 1.
	acc += s.A.CDF(lo) * s.B.CDF(x-lo)
	return clamp01(acc)
}

// Mean returns E[A] + E[B].
func (s *Sum) Mean() float64 { return s.A.Mean() + s.B.Mean() }

// Sample draws both components independently.
func (s *Sum) Sample(u func() float64) float64 {
	return s.A.Sample(u) + s.B.Sample(u)
}

// FuncDist adapts a plain CDF function into a Dist. Mean is computed by
// numeric integration of the survival function on [0, Hi] (suitable for
// nonnegative variables), and sampling by inversion via bisection.
type FuncDist struct {
	F  func(float64) float64
	Hi float64 // integration/sampling upper bound; default found by doubling
}

var _ Dist = &FuncDist{}

// CDF evaluates the wrapped function, clamped to [0,1].
func (f *FuncDist) CDF(x float64) float64 { return clamp01(f.F(x)) }

// Mean integrates 1-F over [0, hi] with the trapezoid rule.
func (f *FuncDist) Mean() float64 {
	hi := f.hi()
	const n = 200000
	step := hi / n
	var acc float64
	prev := 1 - f.CDF(0)
	for i := 1; i <= n; i++ {
		cur := 1 - f.CDF(float64(i)*step)
		acc += (prev + cur) / 2 * step
		prev = cur
	}
	return acc
}

// Sample inverts the CDF by bisection.
func (f *FuncDist) Sample(u func() float64) float64 {
	target := u()
	lo, hi := 0.0, f.hi()
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f.CDF(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func (f *FuncDist) hi() float64 {
	if f.Hi > 0 {
		return f.Hi
	}
	hi := 1.0
	for f.CDF(hi) < 1-1e-9 && hi < 1e12 {
		hi *= 2
	}
	return hi
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
