package stats

import (
	"errors"
	"math"
	"testing"
)

func TestRegIncGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}; P(0.5, x) = erf(sqrt(x)).
	cases := []struct {
		a, x, want float64
	}{
		{1, 1, 1 - math.Exp(-1)},
		{1, 2, 1 - math.Exp(-2)},
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		{2, 3, 1 - math.Exp(-3)*(1+3)},
		{5, 5, 0.5595067149347875}, // cross-checked against scipy gammainc(5,5)
	}
	for _, c := range cases {
		got, err := RegIncGammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("RegIncGammaP(%v,%v): %v", c.a, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("P(%v,%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestRegIncGammaPEdges(t *testing.T) {
	if v, err := RegIncGammaP(3, 0); err != nil || v != 0 {
		t.Fatalf("P(3,0) = %v,%v", v, err)
	}
	for _, bad := range []struct{ a, x float64 }{{0, 1}, {-1, 1}, {1, -1}, {math.NaN(), 1}, {1, math.NaN()}} {
		if _, err := RegIncGammaP(bad.a, bad.x); !errors.Is(err, ErrBadParam) {
			t.Fatalf("P(%v,%v) should fail with ErrBadParam, got %v", bad.a, bad.x, err)
		}
	}
}

func TestChiSquareCDFMonotoneAndKnown(t *testing.T) {
	// χ²(2) has CDF 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		got, err := ChiSquareCDF(2, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x/2)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(2,%v) = %v, want %v", x, got, want)
		}
	}
	prev := -1.0
	for x := 0.0; x < 40; x += 0.5 {
		v, err := ChiSquareCDF(7, x)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("χ² CDF not monotone at %v", x)
		}
		prev = v
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 9, 20} {
		for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
			x, err := ChiSquareQuantile(df, p)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ChiSquareCDF(df, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-p) > 1e-8 {
				t.Errorf("df=%v p=%v: CDF(quantile)=%v", df, p, back)
			}
		}
	}
}

func TestChiSquareQuantileKnownValues(t *testing.T) {
	// Textbook values.
	cases := []struct {
		df, p, want float64
	}{
		{1, 0.95, 3.841458820694124},
		{2, 0.95, 5.991464547107979},
		{9, 0.99, 21.665994333461924},
		{10, 0.90, 15.987179172105261},
	}
	for _, c := range cases {
		got, err := ChiSquareQuantile(c.df, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("quantile(df=%v,p=%v) = %v, want %v", c.df, c.p, got, c.want)
		}
	}
}

func TestChiSquareQuantileEdges(t *testing.T) {
	if v, err := ChiSquareQuantile(3, 0); err != nil || v != 0 {
		t.Fatalf("quantile(3,0) = %v,%v", v, err)
	}
	for _, bad := range []struct{ df, p float64 }{{0, 0.5}, {-1, 0.5}, {3, 1}, {3, -0.1}} {
		if _, err := ChiSquareQuantile(bad.df, bad.p); !errors.Is(err, ErrBadParam) {
			t.Fatalf("quantile(%v,%v) should fail, got %v", bad.df, bad.p, err)
		}
	}
	if _, err := ChiSquareCDF(0, 1); !errors.Is(err, ErrBadParam) {
		t.Fatal("ChiSquareCDF(0,·) should fail")
	}
	if v, err := ChiSquareCDF(3, -1); err != nil || v != 0 {
		t.Fatalf("ChiSquareCDF(3,-1) = %v,%v want 0,nil", v, err)
	}
}
