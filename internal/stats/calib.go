package stats

import (
	"fmt"
	"math"
)

// Δn calibration (Sec. VII-A and the appendix's Fig. 8 setup).
//
// StopWatch picks the network-interrupt offset Δn large enough that the
// probability of a desynchronization — a replica's virtual time overtaking
// the chosen median before delivery — is tiny. The appendix formalizes this
// as choosing Δn with P[|X1 − X′1| <= Δn] >= coverage (0.9999 there), where
// X1 ~ Exp(λ) is the baseline proposal-offset distribution and X′1 ~ Exp(λ′)
// is the victim-influenced one.

// AbsDiffExpTail returns P(|X − Y| > d) for independent X~Exp(λ), Y~Exp(λ′):
//
//	P(|X−Y| > d) = (λ′·e^{−λd} + λ·e^{−λ′d}) / (λ + λ′)
func AbsDiffExpTail(lambda, lambdaP, d float64) (float64, error) {
	if lambda <= 0 || lambdaP <= 0 || d < 0 {
		return 0, fmt.Errorf("%w: AbsDiffExpTail(λ=%v, λ′=%v, d=%v)", ErrBadParam, lambda, lambdaP, d)
	}
	return (lambdaP*math.Exp(-lambda*d) + lambda*math.Exp(-lambdaP*d)) / (lambda + lambdaP), nil
}

// DeltaNForCoverage returns the smallest Δn with
// P[|X − X′| <= Δn] >= coverage for X~Exp(λ), X′~Exp(λ′).
func DeltaNForCoverage(lambda, lambdaP, coverage float64) (float64, error) {
	if coverage <= 0 || coverage >= 1 {
		return 0, fmt.Errorf("%w: coverage=%v", ErrBadParam, coverage)
	}
	tail := 1 - coverage
	hi := 1.0
	for {
		v, err := AbsDiffExpTail(lambda, lambdaP, hi)
		if err != nil {
			return 0, err
		}
		if v <= tail || hi > 1e12 {
			break
		}
		hi *= 2
	}
	f := func(d float64) float64 {
		v, _ := AbsDiffExpTail(lambda, lambdaP, d)
		return v - tail
	}
	return Bisect(f, 0, hi, 200)
}

// ExpPlusUniformCDF returns the exact CDF of X + U(0,b) for X ~ Exp(rate):
//
//	F(t) = (A(t) − A(t−b)) / b,  A(x) = ∫₀^x (1 − e^{−λs}) ds
//	                                 = x − (1 − e^{−λx})/λ  for x ≥ 0.
func ExpPlusUniformCDF(rate, b float64) func(float64) float64 {
	a := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return x + math.Expm1(-rate*x)/rate
	}
	return func(t float64) float64 {
		if b <= 0 {
			return Exponential{Rate: rate}.CDF(t)
		}
		return clamp01((a(t) - a(t-b)) / b)
	}
}

// UniformNoiseForProtection finds the smallest noise bound b such that
// XN ~ U(0,b) reduces the attacker's χ² discrimination between X1+XN and
// X′1+XN (exponentials with the given rates) to at most targetD.
//
// The χ² cells are FIXED to equal-probability quantiles of the noiseless
// null X1 — the a-priori binning of the paper's appendix procedure. (With
// adaptive per-b rebinning D would fall like 1/b² instead of 1/b and the
// required noise would be far smaller than the paper's Fig-8 magnitudes.)
func UniformNoiseForProtection(lambda, lambdaP float64, bins int, targetD float64) (float64, error) {
	if targetD <= 0 || lambda <= 0 || lambdaP <= 0 || bins < 2 {
		return 0, fmt.Errorf("%w: UniformNoiseForProtection(λ=%v, λ'=%v, bins=%d, D=%v)",
			ErrBadParam, lambda, lambdaP, bins, targetD)
	}
	bn, err := EqualProbBins(Exponential{Rate: lambda}, bins)
	if err != nil {
		return 0, err
	}
	discAt := func(b float64) (float64, error) {
		p := bn.CellProbs(ExpPlusUniformCDF(lambda, b))
		q := bn.CellProbs(ExpPlusUniformCDF(lambdaP, b))
		return ChiSqDiscrimination(p, q)
	}
	// Bracket: find hi with D(hi) <= targetD.
	hi := 1.0
	for i := 0; i < 80; i++ {
		d, err := discAt(hi)
		if err != nil {
			return 0, err
		}
		if d <= targetD {
			break
		}
		hi *= 2
	}
	dHi, err := discAt(hi)
	if err != nil {
		return 0, err
	}
	if dHi > targetD {
		return 0, fmt.Errorf("%w: cannot reach target discrimination %v with uniform noise", ErrBadParam, targetD)
	}
	lo := 0.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		d, err := discAt(mid)
		if err != nil {
			return 0, err
		}
		if d > targetD {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
