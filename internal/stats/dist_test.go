package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniSrc(seed int64) func() float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64
}

func TestExponentialCDF(t *testing.T) {
	e := Exponential{Rate: 2}
	if e.CDF(-1) != 0 || e.CDF(0) != 0 {
		t.Fatal("CDF should be 0 for x<=0")
	}
	if math.Abs(e.CDF(1)-(1-math.Exp(-2))) > 1e-12 {
		t.Fatal("CDF(1) wrong")
	}
	if e.Mean() != 0.5 {
		t.Fatal("mean wrong")
	}
}

func TestExponentialSampleMatchesCDF(t *testing.T) {
	e := Exponential{Rate: 1.5}
	u := uniSrc(42)
	var below float64
	const n = 100000
	x := 0.7
	for i := 0; i < n; i++ {
		if e.Sample(u) <= x {
			below++
		}
	}
	if math.Abs(below/n-e.CDF(x)) > 0.01 {
		t.Fatalf("sample fraction %v vs CDF %v", below/n, e.CDF(x))
	}
}

func TestUniformCDFAndMean(t *testing.T) {
	d := Uniform{Lo: 1, Hi: 3}
	if d.CDF(0) != 0 || d.CDF(4) != 1 {
		t.Fatal("tails wrong")
	}
	if d.CDF(2) != 0.5 {
		t.Fatal("midpoint wrong")
	}
	if d.Mean() != 2 {
		t.Fatal("mean wrong")
	}
	u := uniSrc(7)
	for i := 0; i < 1000; i++ {
		v := d.Sample(u)
		if v < 1 || v > 3 {
			t.Fatalf("sample %v out of support", v)
		}
	}
}

func TestShifted(t *testing.T) {
	s := Shifted{Base: Exponential{Rate: 1}, C: 5}
	if s.CDF(5) != 0 {
		t.Fatal("shifted CDF should be 0 at shift point")
	}
	if math.Abs(s.Mean()-6) > 1e-12 {
		t.Fatal("shifted mean wrong")
	}
	u := uniSrc(9)
	if s.Sample(u) < 5 {
		t.Fatal("shifted sample below shift")
	}
}

func TestSumCDFAgainstAnalytic(t *testing.T) {
	// Exp(1) + U(0,2): analytic CDF is
	// F(x) = (1/2)·(x - (1 - e^{-x}))               for 0<=x<2   ... derived:
	// F(x) = ∫0^min(x,2) (1/2)·(1-e^{-(x-u)}) du
	sum := &Sum{A: Uniform{Lo: 0, Hi: 2}, B: Exponential{Rate: 1}}
	analytic := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		up := math.Min(x, 2)
		// ∫0^up (1 - e^{-(x-u)}) du / 2 = [u - e^{-(x-u)}]_0^up / 2
		v := (up - math.Exp(-(x - up)) + math.Exp(-x)) / 2
		return v
	}
	for _, x := range []float64{0.1, 0.5, 1, 1.9, 2.5, 4, 8} {
		got := sum.CDF(x)
		want := analytic(x)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("Sum CDF(%v) = %v, want %v", x, got, want)
		}
	}
	if math.Abs(sum.Mean()-2) > 1e-12 {
		t.Fatal("Sum mean should be 1+1=2")
	}
}

func TestSumSample(t *testing.T) {
	sum := &Sum{A: Exponential{Rate: 1}, B: Uniform{Lo: 0, Hi: 1}}
	u := uniSrc(11)
	const n = 60000
	var mean float64
	for i := 0; i < n; i++ {
		mean += sum.Sample(u)
	}
	mean /= n
	if math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("Sum sample mean %v, want ~1.5", mean)
	}
}

func TestFuncDistMeanAndSample(t *testing.T) {
	// Wrap Exp(2): mean must come out 0.5 and samples must follow the CDF.
	fd := &FuncDist{F: Exponential{Rate: 2}.CDF}
	if m := fd.Mean(); math.Abs(m-0.5) > 1e-3 {
		t.Fatalf("FuncDist mean %v, want 0.5", m)
	}
	u := uniSrc(13)
	var below float64
	const n = 40000
	for i := 0; i < n; i++ {
		if fd.Sample(u) <= 0.3 {
			below++
		}
	}
	want := Exponential{Rate: 2}.CDF(0.3)
	if math.Abs(below/n-want) > 0.015 {
		t.Fatalf("FuncDist sample fraction %v, want %v", below/n, want)
	}
}

// Property: all CDFs are monotone and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	dists := []Dist{
		Exponential{Rate: 0.5},
		Exponential{Rate: 3},
		Uniform{Lo: -1, Hi: 4},
		Shifted{Base: Exponential{Rate: 1}, C: 2},
	}
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 50)
		b = math.Mod(math.Abs(b), 50)
		if a > b {
			a, b = b, a
		}
		for _, d := range dists {
			ca, cb := d.CDF(a), d.CDF(b)
			if ca < 0 || cb > 1 || ca > cb+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
