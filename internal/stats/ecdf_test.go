package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 3 || e.Min() != 1 || e.Max() != 3 {
		t.Fatal("basic accessors wrong")
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Mean() != 2 {
		t.Fatal("mean wrong")
	}
	if math.Abs(e.Std()-1) > 1e-12 {
		t.Fatalf("std = %v, want 1", e.Std())
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); !errors.Is(err, ErrBadParam) {
		t.Fatal("empty sample should fail")
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{5, 1, 3}
	e, err := NewECDF(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = -100
	if e.Min() != 1 {
		t.Fatal("ECDF aliased caller slice")
	}
}

func TestECDFQuantile(t *testing.T) {
	var sample []float64
	for i := 1; i <= 100; i++ {
		sample = append(sample, float64(i))
	}
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	if q := e.Quantile(0.5); q != 50 {
		t.Fatalf("P50 = %v", q)
	}
	if q := e.Quantile(0.95); q != 95 {
		t.Fatalf("P95 = %v", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Fatalf("P0 = %v", q)
	}
	if q := e.Quantile(1); q != 100 {
		t.Fatalf("P100 = %v", q)
	}
}

func TestKSDistanceECDFShifted(t *testing.T) {
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 500
	}
	ea, err := NewECDF(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewECDF(b)
	if err != nil {
		t.Fatal(err)
	}
	d := KSDistanceECDF(ea, eb)
	if math.Abs(d-0.5) > 0.01 {
		t.Fatalf("KS = %v, want ~0.5", d)
	}
	if KSDistanceECDF(ea, ea) != 0 {
		t.Fatal("KS(a,a) should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrBadParam) {
		t.Fatal("empty summarize should fail")
	}
}

// Property: ECDF is a valid CDF — monotone, 0 before min, 1 at max.
func TestECDFProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
			// Bound magnitudes so x-1/x+1 probes below remain meaningful
			// (at 1e308, min-1 == min in float64).
			raw[i] = math.Mod(raw[i], 1e6)
		}
		e, err := NewECDF(raw)
		if err != nil {
			return false
		}
		if e.CDF(e.Min()-1) != 0 || e.CDF(e.Max()) != 1 {
			return false
		}
		prev := -1.0
		for i := 0; i <= 50; i++ {
			x := e.Min() + (e.Max()-e.Min())*float64(i)/50
			v := e.CDF(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
