package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample (which it copies and sorts).
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrBadParam)
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// CDF returns the fraction of the sample <= x.
func (e *ECDF) CDF(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile (nearest-rank).
func (e *ECDF) Quantile(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Min returns the smallest sample value.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 {
	var s float64
	for _, v := range e.sorted {
		s += v
	}
	return s / float64(len(e.sorted))
}

// Std returns the sample standard deviation (n-1 denominator).
func (e *ECDF) Std() float64 {
	n := len(e.sorted)
	if n < 2 {
		return 0
	}
	m := e.Mean()
	var ss float64
	for _, v := range e.sorted {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// KSDistanceECDF returns the exact Kolmogorov–Smirnov distance between two
// ECDFs, evaluated at all jump points of both.
func KSDistanceECDF(a, b *ECDF) float64 {
	var d float64
	check := func(x float64) {
		if v := abs(a.CDF(x) - b.CDF(x)); v > d {
			d = v
		}
		// Also check the left limit (just below the jump).
		xl := math.Nextafter(x, math.Inf(-1))
		if v := abs(a.CDF(xl) - b.CDF(xl)); v > d {
			d = v
		}
	}
	for _, x := range a.sorted {
		check(x)
	}
	for _, x := range b.sorted {
		check(x)
	}
	return d
}

// Summary captures the usual sample statistics for result reporting.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, P50, P95 float64
	P99, Max      float64
}

// Summarize computes a Summary of the sample.
func Summarize(sample []float64) (Summary, error) {
	e, err := NewECDF(sample)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:    e.N(),
		Mean: e.Mean(),
		Std:  e.Std(),
		Min:  e.Min(),
		P50:  e.Quantile(0.50),
		P95:  e.Quantile(0.95),
		P99:  e.Quantile(0.99),
		Max:  e.Max(),
	}, nil
}
