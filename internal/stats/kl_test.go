package stats

import (
	"errors"
	"math"
	"testing"
)

func TestKLDivergenceExponentials(t *testing.T) {
	// KL(Exp(a)‖Exp(b)) = ln(a/b) + b/a − 1.
	cases := []struct{ a, b float64 }{{0.5, 1}, {1, 0.5}, {2, 3}, {10.0 / 11, 1}}
	for _, c := range cases {
		got, err := KLDivergence(ExpPDF(c.a), ExpPDF(c.b), 0, 200, 400000)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Log(c.a/c.b) + c.b/c.a - 1
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("KL(Exp(%v)‖Exp(%v)) = %v, want %v", c.a, c.b, got, want)
		}
	}
}

func TestKLDivergenceSelfZero(t *testing.T) {
	got, err := KLDivergence(ExpPDF(1), ExpPDF(1), 0, 100, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("KL(p‖p) = %v, want 0", got)
	}
}

func TestKLDivergenceDisjointSupport(t *testing.T) {
	q := func(x float64) float64 {
		if x >= 0 && x < 1 {
			return 1
		}
		return 0
	}
	p := func(x float64) float64 {
		if x >= 2 && x < 3 {
			return 1
		}
		return 0
	}
	got, err := KLDivergence(q, p, 0, 4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("disjoint KL = %v, want +Inf", got)
	}
}

func TestKLDivergenceBadParams(t *testing.T) {
	if _, err := KLDivergence(ExpPDF(1), ExpPDF(1), 0, 10, 5); !errors.Is(err, ErrBadParam) {
		t.Fatal("tiny grid should fail")
	}
	if _, err := KLDivergence(ExpPDF(1), ExpPDF(1), 5, 1, 100); !errors.Is(err, ErrBadParam) {
		t.Fatal("inverted bounds should fail")
	}
}

func TestKLDivergenceFromCDFs(t *testing.T) {
	got, err := KLDivergenceFromCDFs(Exponential{Rate: 0.5}.CDF, Exponential{Rate: 1}.CDF, 0, 120, 60000)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.5) + 2 - 1
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("KL from CDFs = %v, want %v", got, want)
	}
}

func TestObservationsToDetectLRT(t *testing.T) {
	n, err := ObservationsToDetectLRT(0.30685, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// χ²₁(0.95) = 3.841; N = 3.841/(2·0.30685) ≈ 6.26.
	if math.Abs(n-6.26) > 0.05 {
		t.Fatalf("N = %v, want ~6.26", n)
	}
	if v, err := ObservationsToDetectLRT(0, 0.95); err != nil || !math.IsInf(v, 1) {
		t.Fatalf("KL=0 should give +Inf, got %v, %v", v, err)
	}
	if _, err := ObservationsToDetectLRT(-1, 0.95); !errors.Is(err, ErrBadParam) {
		t.Fatal("negative KL should fail")
	}
	// Floor at 1 observation.
	if v, _ := ObservationsToDetectLRT(1000, 0.95); v != 1 {
		t.Fatalf("floor = %v, want 1", v)
	}
}

func TestMedianOf3PDFIntegratesToCDF(t *testing.T) {
	fB := Exponential{Rate: 1}.CDF
	fV := Exponential{Rate: 0.5}.CDF
	pdf := MedianOf3PDF(fV, fB, fB, ExpPDF(0.5), ExpPDF(1), ExpPDF(1))
	cdf := MedianOf3CDF(fV, fB, fB)
	// ∫0^x pdf must equal cdf(x).
	for _, x := range []float64{0.5, 1, 2, 4} {
		var acc float64
		n := 20000
		step := x / float64(n)
		for i := 0; i < n; i++ {
			acc += pdf((float64(i)+0.5)*step) * step
		}
		if math.Abs(acc-cdf(x)) > 1e-5 {
			t.Errorf("∫pdf to %v = %v, cdf = %v", x, acc, cdf(x))
		}
	}
}

// The LRT estimator reproduces the paper's Fig-1(b) magnitudes:
// w/ StopWatch ~70 observations at confidence 0.99 (paper shows ~70-80),
// and a ~6x gap over the no-StopWatch case at equal confidence.
func TestLRTFig1Magnitudes(t *testing.T) {
	fB := Exponential{Rate: 1}.CDF
	fV := Exponential{Rate: 0.5}.CDF
	klRaw, err := KLDivergence(ExpPDF(0.5), ExpPDF(1), 0, 200, 200000)
	if err != nil {
		t.Fatal(err)
	}
	pdfBase := MedianOf3PDF(fB, fB, fB, ExpPDF(1), ExpPDF(1), ExpPDF(1))
	pdfVict := MedianOf3PDF(fV, fB, fB, ExpPDF(0.5), ExpPDF(1), ExpPDF(1))
	klMed, err := KLDivergence(pdfVict, pdfBase, 0, 200, 200000)
	if err != nil {
		t.Fatal(err)
	}
	nRaw, err := ObservationsToDetectLRT(klRaw, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	nMed, err := ObservationsToDetectLRT(klMed, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if nMed < 50 || nMed > 100 {
		t.Errorf("Nmed(0.99) = %v, want ~70 (paper's Fig 1b magnitude)", nMed)
	}
	if nMed < 4*nRaw {
		t.Errorf("gap too small: raw %v med %v", nRaw, nMed)
	}
}
