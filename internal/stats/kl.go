package stats

import (
	"fmt"
	"math"
)

// Likelihood-ratio-test power estimate, the second formalization of
// "observations needed". Under the alternative Q, the expected log
// likelihood ratio per observation is KL(Q‖P); Wilks' theorem puts the
// rejection threshold for the LRT at confidence c at χ²₁(c)/2, so
//
//	N(c) ≈ χ²₁(c) / (2·KL(Q‖P))
//
// This estimator is less conservative than the binned Pearson one and lands
// close to the paper's displayed Fig-1 magnitudes.

// KLDivergence computes KL(Q‖P) = ∫ q·ln(q/p) over [lo,hi] by midpoint
// integration of the given densities.
func KLDivergence(q, p func(float64) float64, lo, hi float64, n int) (float64, error) {
	if n < 10 || hi <= lo {
		return 0, fmt.Errorf("%w: KLDivergence grid", ErrBadParam)
	}
	step := (hi - lo) / float64(n)
	var acc, orphan float64
	for i := 0; i < n; i++ {
		x := lo + (float64(i)+0.5)*step
		qv, pv := q(x), p(x)
		if qv <= 1e-300 {
			continue
		}
		if pv <= 1e-300 {
			// Q puts mass where P has none. Far-tail float underflow lands
			// here too, so only call the divergence infinite if the orphaned
			// mass is non-negligible.
			orphan += qv * step
			continue
		}
		acc += qv * math.Log(qv/pv) * step
	}
	if orphan > 1e-6 {
		return math.Inf(1), nil
	}
	if acc < 0 {
		acc = 0 // numeric noise on nearly-identical densities
	}
	return acc, nil
}

// KLDivergenceFromCDFs derives densities by central differences from CDFs
// and integrates KL(Q‖P).
func KLDivergenceFromCDFs(qc, pc func(float64) float64, lo, hi float64, n int) (float64, error) {
	h := (hi - lo) / float64(n) / 4
	deriv := func(f func(float64) float64) func(float64) float64 {
		return func(x float64) float64 {
			d := (f(x+h) - f(x-h)) / (2 * h)
			if d < 0 {
				return 0
			}
			return d
		}
	}
	return KLDivergence(deriv(qc), deriv(pc), lo, hi, n)
}

// ObservationsToDetectLRT returns the LRT-based sample-size estimate at the
// given confidence for KL divergence kl.
func ObservationsToDetectLRT(kl, confidence float64) (float64, error) {
	if kl < 0 {
		return 0, fmt.Errorf("%w: negative KL", ErrBadParam)
	}
	if kl == 0 {
		return math.Inf(1), nil
	}
	q, err := ChiSquareQuantile(1, confidence)
	if err != nil {
		return 0, err
	}
	n := q / (2 * kl)
	if n < 1 {
		n = 1
	}
	return n, nil
}

// MedianOf3PDF returns the density of the median of three independent
// variables with the given CDFs and densities:
//
//	f_{2:3} = f1(F2+F3−2F2F3) + f2(F1+F3−2F1F3) + f3(F1+F2−2F1F2)
func MedianOf3PDF(f1, f2, f3, d1, d2, d3 func(float64) float64) func(float64) float64 {
	return func(x float64) float64 {
		F1, F2, F3 := f1(x), f2(x), f3(x)
		return d1(x)*(F2+F3-2*F2*F3) + d2(x)*(F1+F3-2*F1*F3) + d3(x)*(F1+F2-2*F1*F2)
	}
}

// ExpPDF returns the density of Exp(rate).
func ExpPDF(rate float64) func(float64) float64 {
	return func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return rate * math.Exp(-rate*x)
	}
}
