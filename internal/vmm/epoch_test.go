package vmm

import (
	"errors"
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// buildEpochSet wires three runtimes with epoch coordinators exchanging
// samples over loop-delayed links.
func buildEpochSet(t *testing.T, interval int64) (*sim.Loop, []*Runtime, []*EpochCoordinator) {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(123)
	// Distinct base rates: replicas progress at very different real speeds,
	// so the barrier is actually exercised.
	rates := []int64{1_000_000_000, 1_400_000_000, 800_000_000}
	var rts []*Runtime
	var ecs []*EpochCoordinator
	for i := 0; i < 3; i++ {
		cfg := DefaultConfig()
		cfg.BaseRate = rates[i]
		// Disable pacing interference for a focused epoch test.
		cfg.MaxLead = vtime.Virtual(sim.Second)
		h, err := NewHost([]string{"A", "B", "C"}[i], loop, src.Stream("h"+string(rune('A'+i))), sim.NewClock(sim.Time(i)*sim.Millisecond, float64(i)*1e-5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0, sim.Millisecond, 2 * sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
		ec, err := NewEpochCoordinator(rt, interval, 3)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
		ecs = append(ecs, ec)
	}
	for i := range ecs {
		i := i
		origin := rts[i].Host().Name()
		ecs[i].SendSample = func(epoch int64, s vtime.EpochSample) {
			for j := range ecs {
				if j == i {
					continue
				}
				j := j
				loop.After(300*sim.Microsecond, "epoch:sample", func() { ecs[j].OnPeerSample(origin, epoch, s) })
			}
		}
	}
	return loop, rts, ecs
}

func TestEpochCoordinatorValidation(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(1)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEpochCoordinator(nil, 1000, 3); !errors.Is(err, ErrVMM) {
		t.Fatal("nil runtime should fail")
	}
	if _, err := NewEpochCoordinator(rt, 0, 3); !errors.Is(err, ErrVMM) {
		t.Fatal("zero interval should fail")
	}
	if _, err := NewEpochCoordinator(rt, h.Config().ExitEvery+1, 3); !errors.Is(err, ErrVMM) {
		t.Fatal("non-multiple interval should fail")
	}
	if _, err := NewEpochCoordinator(rt, h.Config().ExitEvery, 0); !errors.Is(err, ErrVMM) {
		t.Fatal("zero replicas should fail")
	}
}

func TestEpochAdjustmentsKeepReplicasIdentical(t *testing.T) {
	const interval = 10_000_000 // 40 exits per epoch
	loop, rts, ecs := buildEpochSet(t, interval)
	for _, rt := range rts {
		rt.Start()
	}
	if err := loop.RunUntil(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Several epochs must have been applied on every replica.
	for i, ec := range ecs {
		if ec.Adjustments() < 3 {
			t.Fatalf("replica %d applied %d adjustments", i, ec.Adjustments())
		}
		if ec.Adjustments() != ecs[0].Adjustments() && absInt(ec.Adjustments()-ecs[0].Adjustments()) > 1 {
			t.Fatalf("adjustment counts diverged: %d vs %d", ec.Adjustments(), ecs[0].Adjustments())
		}
	}
	// The virtual clocks must agree exactly at any common instruction count
	// (take the minimum progress across replicas).
	minInstr := rts[0].Instr()
	for _, rt := range rts[1:] {
		if rt.Instr() < minInstr {
			minInstr = rt.Instr()
		}
	}
	// Probe a few instruction counts at or below the common progress that
	// are covered by the same number of applied epochs on all replicas.
	common := ecs[0].Adjustments()
	for _, ec := range ecs[1:] {
		if ec.Adjustments() < common {
			common = ec.Adjustments()
		}
	}
	probe := int64(common) * interval // end of last commonly-applied epoch
	if probe > minInstr {
		probe = minInstr
	}
	v0 := rts[0].vclock.At(probe)
	for i, rt := range rts[1:] {
		if rt.vclock.At(probe) != v0 {
			t.Fatalf("replica %d virtual clock diverged at instr %d: %v vs %v",
				i+1, probe, rt.vclock.At(probe), v0)
		}
	}
}

func TestEpochBarrierHoldsFastReplica(t *testing.T) {
	const interval = 10_000_000
	loop, rts, _ := buildEpochSet(t, interval)
	for _, rt := range rts {
		rt.Start()
	}
	// Run briefly: the fast replica (B, 1.4e9/s) must not be a full epoch
	// ahead of the slow one (C, 0.8e9/s) despite the 1.75x speed gap.
	if err := loop.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var minI, maxI int64
	for i, rt := range rts {
		in := rt.Instr()
		if i == 0 || in < minI {
			minI = in
		}
		if i == 0 || in > maxI {
			maxI = in
		}
	}
	if maxI-minI > interval+int64(DefaultConfig().ExitEvery) {
		t.Fatalf("epoch barrier leaked: spread %d instructions (> one epoch)", maxI-minI)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
