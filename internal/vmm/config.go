// Package vmm models the machines of the cloud and the two hypervisors the
// paper compares: the StopWatch VMM (virtual-time clocks, Δd disk delivery,
// Δn median network delivery, egress tunnelling, replica pacing) and a
// baseline unmodified-Xen-like VMM (interrupts delivered as they happen,
// guests see real time).
//
// The host model is where the timing side channel physically lives:
// coresident activity changes a guest's CPU share (and hence how fast its
// virtual time advances in real time) and the host's I/O service delays
// (and hence when the device model observes packets). Under the baseline
// VMM both leak directly into guest-observable timings; under StopWatch
// they perturb only one of three median inputs.
package vmm

import (
	"errors"
	"fmt"

	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// ErrVMM reports invalid VMM configuration or use.
var ErrVMM = errors.New("vmm: invalid")

// Config carries the tunables shared by both VMM flavors. The zero value is
// not valid; use DefaultConfig.
type Config struct {
	// BaseRate is the host CPU's nominal guest execution rate in branches
	// per second. Contended guests share it.
	BaseRate int64
	// ExitEvery bounds branches between guest-caused VM exits during long
	// computations. Exits also happen at every I/O instruction.
	ExitEvery int64
	// PITHz is the guest timer frequency (paper: 250 Hz).
	PITHz int
	// Slope is the initial virtual-ns-per-branch (Eqn. 1).
	Slope float64
	// SlopeLo/SlopeHi clamp epoch slope adjustments.
	SlopeLo, SlopeHi float64
	// DeltaN is the network-interrupt delivery offset Δn in virtual time
	// (paper: translates to ~7–12 ms real).
	DeltaN vtime.Virtual
	// DeltaD is the disk/DMA-interrupt delivery offset Δd in virtual time
	// (paper: ~8–15 ms real).
	DeltaD vtime.Virtual
	// MaxLead bounds how far (in virtual time) a replica may run ahead of
	// the farthest-behind peer before it is paused ("slowing the fastest
	// replica", Sec. V-A).
	MaxLead vtime.Virtual
	// PaceInterval is how often replicas report progress to peers.
	PaceInterval sim.Time

	// IOBaseDelay is the Dom0 device-model processing delay floor for an
	// inbound packet.
	IOBaseDelay sim.Time
	// IOJitterMean is the mean of the exponential jitter added to packet
	// processing on an otherwise-idle host.
	IOJitterMean sim.Time
	// IOLoadFactor scales the jitter mean per unit of concurrent host I/O
	// activity (the coresidency channel).
	IOLoadFactor float64
	// SchedSlice is the VCPU scheduling-latency bound: when another guest
	// is busy on the host, device-model work for a waking guest waits
	// U[0,SchedSlice) for CPU. This is the dominant coresidency timing
	// channel on a real hypervisor (the attacker's interrupt waits out the
	// victim's time slice).
	SchedSlice sim.Time

	// DiskSeek is the fixed per-request disk positioning time.
	DiskSeek sim.Time
	// DiskBytesPerSec is disk transfer bandwidth.
	DiskBytesPerSec int64
	// DiskJitterMean is the mean exponential service-time jitter.
	DiskJitterMean sim.Time

	// EpochInstr, when positive, enables the optional coarse
	// re-synchronization of virtual and real time every EpochInstr branches
	// (Sec. IV-A).
	EpochInstr int64

	// CheckpointInstr, when positive, makes each replica whose app supports
	// snapshotting (guest.Snapshotter) capture a checkpoint into the guest's
	// determinism journal every CheckpointInstr branches. The journal then
	// truncates its pre-checkpoint prefix, bounding replacement replay work
	// by the checkpoint interval instead of the guest's lifetime. Must be a
	// multiple of ExitEvery, like EpochInstr.
	CheckpointInstr int64
}

// DefaultConfig returns the tunables used throughout the reproduction.
// Rates are chosen so that one branch ≈ one virtual nanosecond, putting Δn
// and Δd in the paper's regime relative to packet RTTs and disk times.
func DefaultConfig() Config {
	return Config{
		BaseRate:  1_000_000_000, // 1e9 branches/s
		ExitEvery: 250_000,       // 0.25 ms of virtual time between exits
		PITHz:     250,
		Slope:     1.0,
		SlopeLo:   0.25,
		SlopeHi:   4.0,
		// Δn must cover: pacing slack between the two fastest replicas
		// (MaxLead + reporting lag), Dom0 processing-delay tails, and
		// proposal propagation. 12ms over a 4ms MaxLead leaves ~6ms of
		// margin against the I/O tail — the regime the paper reports as
		// "7-12ms real" (Sec. VII-A).
		DeltaN:       vtime.Virtual(12 * sim.Millisecond),
		DeltaD:       vtime.Virtual(12 * sim.Millisecond),
		MaxLead:      vtime.Virtual(4 * sim.Millisecond),
		PaceInterval: 2 * sim.Millisecond,
		// The coresidency channel: Dom0 processing delay scales with
		// concurrent host I/O. The median tolerates one slow proposal —
		// divergence needs a single delay exceeding the full Δn — so a
		// strong load coupling is safe at Δn=12ms.
		IOBaseDelay:     200 * sim.Microsecond,
		IOJitterMean:    200 * sim.Microsecond,
		IOLoadFactor:    1.0,
		SchedSlice:      3 * sim.Millisecond,
		DiskSeek:        4 * sim.Millisecond,
		DiskBytesPerSec: 80 << 20, // 80 MB/s rotating disk
		DiskJitterMean:  sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.BaseRate <= 0:
		return fmt.Errorf("%w: BaseRate %d", ErrVMM, c.BaseRate)
	case c.ExitEvery <= 0:
		return fmt.Errorf("%w: ExitEvery %d", ErrVMM, c.ExitEvery)
	case c.PITHz <= 0:
		return fmt.Errorf("%w: PITHz %d", ErrVMM, c.PITHz)
	case c.Slope <= 0 || c.SlopeLo <= 0 || c.SlopeHi < c.SlopeLo:
		return fmt.Errorf("%w: slope %v bounds [%v,%v]", ErrVMM, c.Slope, c.SlopeLo, c.SlopeHi)
	case c.DeltaN <= 0 || c.DeltaD <= 0:
		return fmt.Errorf("%w: DeltaN %v DeltaD %v", ErrVMM, c.DeltaN, c.DeltaD)
	case c.MaxLead <= 0 || c.PaceInterval <= 0:
		return fmt.Errorf("%w: MaxLead %v PaceInterval %v", ErrVMM, c.MaxLead, c.PaceInterval)
	case c.IOBaseDelay < 0 || c.IOJitterMean < 0 || c.IOLoadFactor < 0 || c.SchedSlice < 0:
		return fmt.Errorf("%w: IO delay params", ErrVMM)
	case c.DiskSeek < 0 || c.DiskBytesPerSec <= 0 || c.DiskJitterMean < 0:
		return fmt.Errorf("%w: disk params", ErrVMM)
	case c.EpochInstr < 0:
		return fmt.Errorf("%w: EpochInstr %d", ErrVMM, c.EpochInstr)
	case c.CheckpointInstr < 0:
		return fmt.Errorf("%w: CheckpointInstr %d", ErrVMM, c.CheckpointInstr)
	case c.CheckpointInstr > 0 && c.CheckpointInstr%c.ExitEvery != 0:
		return fmt.Errorf("%w: CheckpointInstr %d must be a multiple of ExitEvery %d",
			ErrVMM, c.CheckpointInstr, c.ExitEvery)
	}
	return nil
}
