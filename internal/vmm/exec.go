package vmm

import (
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
)

// exec is the shared guest execution engine. It advances a guest VM in
// chunks, producing guest-caused VM exits at deterministic points of the
// instruction stream:
//
//   - at every absolute multiple of ExitEvery branches, and
//   - at every I/O instruction (guest.Step stops there).
//
// Exit points MUST be a pure function of the guest's instruction stream —
// never of host real time — because interrupts are injected only at exits,
// and replicas must inject at identical instruction counts. Contention
// rescaling and pacing pauses therefore only stretch the real-time mapping
// of the same instruction trajectory; they never move an exit point.
type exec struct {
	host *Host
	vm   *guest.VM
	loop *sim.Loop

	exitEvery int64
	instr     int64

	busy    bool
	paused  bool
	stopped bool

	ev          *sim.Event
	chunkStart  sim.Time
	chunkRate   float64 // branches per fabric second
	chunkBudget int64

	// onExit processes a guest-caused VM exit (interrupt injection etc.).
	// It runs after instr has been advanced.
	onExit func(res guest.StepResult)
}

// start boots the guest and begins execution.
func (e *exec) start() {
	e.vm.Boot()
	e.syncBusy()
	e.arm()
}

// stop halts execution permanently (end of scenario, or a replica being
// evicted/replaced). The host's busy-population accounting is released so
// surviving residents stop paying contention for a corpse.
func (e *exec) stop() {
	e.stopped = true
	if e.ev != nil {
		e.loop.Cancel(e.ev)
		e.ev = nil
	}
	if e.busy {
		e.busy = false
		e.host.setBusy(-1)
	}
}

// arm schedules the next execution chunk toward the next deterministic
// exit point.
func (e *exec) arm() {
	if e.stopped || e.paused || e.ev != nil {
		return
	}
	boundary := (e.instr/e.exitEvery + 1) * e.exitEvery
	budget := boundary - e.instr
	if toIO, has := e.vm.BranchesToNextIO(); has && toIO+1 < budget {
		budget = toIO + 1
	}
	rate := e.host.idleRate()
	if e.busy {
		rate = e.host.busyRate()
	}
	dur := sim.Time(float64(budget) / rate * 1e9)
	if dur < 1 {
		dur = 1
	}
	e.chunkStart = e.loop.Now()
	e.chunkRate = rate
	e.chunkBudget = budget
	e.ev = e.loop.AfterTimer(dur, "vmm:chunk", chunkTimer, e, nil, 0)
}

// chunkTimer is the typed chunk-completion callback — the single hottest
// event in the simulator (one per execution chunk per replica), so it must
// not allocate a closure or method value per arm.
func chunkTimer(a, _ any, _ uint64) { a.(*exec).fire() }

// fire completes a chunk: a guest-caused VM exit.
func (e *exec) fire() {
	e.ev = nil
	res := e.vm.Step(e.chunkBudget)
	e.instr += res.Executed
	e.onExit(res)
	e.syncBusy()
	e.arm()
}

// rescale implements cpuConsumer: the host's contention changed, so the
// in-flight chunk must be re-timed. Partial progress is materialized; if
// that lands exactly on the planned exit point, the exit is taken.
func (e *exec) rescale() {
	if e.ev == nil {
		return
	}
	elapsed := e.loop.Now() - e.chunkStart
	done := int64(float64(elapsed) * e.chunkRate / 1e9)
	if done > e.chunkBudget {
		done = e.chunkBudget
	}
	e.loop.Cancel(e.ev)
	e.ev = nil
	if done > 0 {
		res := e.vm.Step(done)
		e.instr += res.Executed
		if res.IO != nil || done == e.chunkBudget {
			e.onExit(res)
			e.syncBusy()
			e.arm()
			return
		}
	}
	e.arm()
}

// pause suspends execution in real time (the "slow the fastest replica"
// mechanism). Partial progress is materialized first.
func (e *exec) pause() {
	if e.paused || e.stopped {
		return
	}
	e.paused = true
	if e.ev == nil {
		return
	}
	elapsed := e.loop.Now() - e.chunkStart
	done := int64(float64(elapsed) * e.chunkRate / 1e9)
	if done > e.chunkBudget {
		done = e.chunkBudget
	}
	e.loop.Cancel(e.ev)
	e.ev = nil
	if done > 0 {
		res := e.vm.Step(done)
		e.instr += res.Executed
		if res.IO != nil || done == e.chunkBudget {
			e.onExit(res)
			e.syncBusy()
		}
	}
}

// resume continues execution after a pause.
func (e *exec) resume() {
	if !e.paused {
		return
	}
	e.paused = false
	e.arm()
}

// syncBusy keeps the host's busy-population accounting in step with the
// guest's op queue.
func (e *exec) syncBusy() {
	nb := e.vm.Busy()
	if nb == e.busy {
		return
	}
	e.busy = nb
	if nb {
		e.host.setBusy(1)
	} else {
		e.host.setBusy(-1)
	}
}
