package vmm

import (
	"fmt"

	"stopwatch/internal/sim"
)

// cpuConsumer is anything the host schedules: replica runtimes register and
// report busy/idle transitions; the host rescales all consumers when the
// busy set changes (processor sharing).
type cpuConsumer interface {
	// rescale tells the consumer the host's per-busy-guest rate changed; it
	// must materialize partial progress and re-arm its execution.
	rescale()
}

// Host is one physical machine: a drifting clock, a CPU shared by resident
// guest replicas, a disk with FIFO service, and an I/O activity level that
// modulates device-model delays (the coresidency channel).
type Host struct {
	name  string
	loop  *sim.Loop
	rng   *sim.Rand
	clock *sim.Clock
	cfg   Config

	consumers []cpuConsumer
	busyCount int

	// Disk FIFO horizon (like link serialization).
	diskFree sim.Time
	diskOps  uint64
	// diskBusy accumulates total disk service time (seek + transfer +
	// jitter, summed over requests) — the observability plane's per-host
	// disk-load signal.
	diskBusy sim.Time

	// ioInFlight counts device-model work in progress (packets being
	// processed, disk requests outstanding) across all residents.
	ioInFlight int

	// failed marks a machine whose VMM died: its device models process
	// nothing and its fabric endpoint goes silent until Revive.
	failed bool
}

// NewHost creates a host.
func NewHost(name string, loop *sim.Loop, rng *sim.Rand, clock *sim.Clock, cfg Config) (*Host, error) {
	if name == "" || loop == nil || rng == nil || clock == nil {
		return nil, fmt.Errorf("%w: host needs name, loop, rng, clock", ErrVMM)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Host{name: name, loop: loop, rng: rng, clock: clock, cfg: cfg}, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Clock returns the host's hardware clock.
func (h *Host) Clock() *sim.Clock { return h.clock }

// Loop returns the simulation loop.
func (h *Host) Loop() *sim.Loop { return h.loop }

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// Fail marks the machine's VMM dead: the whole-machine failure domain. The
// cluster stops the resident runtimes and silences the host's fabric
// endpoint; the flag is what device models and liveness checks consult.
func (h *Host) Fail() { h.failed = true }

// Failed reports whether the machine's VMM is dead.
func (h *Host) Failed() bool { return h.failed }

// Revive clears the failed mark after repair — the machine rejoins the
// cloud empty (its previous residents were evacuated or torn down).
func (h *Host) Revive() { h.failed = false }

// register adds a CPU consumer (called by runtimes at construction).
func (h *Host) register(c cpuConsumer) {
	h.consumers = append(h.consumers, c)
}

// unregister removes a CPU consumer (an evicted or replaced replica) so
// the host's rescale fan-out does not grow without bound under churn.
func (h *Host) unregister(c cpuConsumer) {
	for i, have := range h.consumers {
		if have == c {
			h.consumers = append(h.consumers[:i], h.consumers[i+1:]...)
			return
		}
	}
}

// setBusy reports a consumer's busy/idle transition and triggers a rescale
// of everyone when the busy population changes.
func (h *Host) setBusy(delta int) {
	h.busyCount += delta
	if h.busyCount < 0 {
		h.busyCount = 0
	}
	for _, c := range h.consumers {
		c.rescale()
	}
}

// busyRate returns the per-guest execution rate (branches per fabric
// second) for a busy guest under the current contention, including the
// host's clock drift.
func (h *Host) busyRate() float64 {
	n := h.busyCount
	if n < 1 {
		n = 1
	}
	return float64(h.cfg.BaseRate) * (1 + h.clock.Drift()) / float64(n)
}

// idleRate returns the instruction rate of an idle-looping guest. Idle
// guests cost the host ~nothing (their HLT wakeups are negligible), so they
// advance at the nominal unshared rate; see DESIGN.md "Modeling decisions".
func (h *Host) idleRate() float64 {
	return float64(h.cfg.BaseRate) * (1 + h.clock.Drift())
}

// ioBegin marks the start of device-model work; ioEnd its completion.
func (h *Host) ioBegin() { h.ioInFlight++ }

// ioEndTimer is the typed callback form of ioEnd — per disk request and per
// processed packet, so it must not allocate a method value per scheduling.
func ioEndTimer(a, _ any, _ uint64) { a.(*Host).ioEnd() }
func (h *Host) ioEnd() {
	if h.ioInFlight > 0 {
		h.ioInFlight--
	}
}

// IOInFlight reports current device-model concurrency (for tests).
func (h *Host) IOInFlight() int { return h.ioInFlight }

// BusyCount reports the number of busy guests (for tests).
func (h *Host) BusyCount() int { return h.busyCount }

// ioDelay draws the Dom0 packet-processing delay: a floor, exponential
// jitter whose mean grows with concurrent host I/O, and — when some guest
// is busy on the CPU — a VCPU scheduling wait of up to one slice. Together
// these are the paper's λ→λ′ shift when a coresident victim is active.
func (h *Host) ioDelay() sim.Time {
	mean := float64(h.cfg.IOJitterMean) * (1 + h.cfg.IOLoadFactor*float64(h.ioInFlight))
	d := h.cfg.IOBaseDelay + h.rng.ExpDur(sim.Time(mean))
	if h.busyCount > 0 && h.cfg.SchedSlice > 0 {
		d += h.rng.UniformDur(0, h.cfg.SchedSlice)
	}
	return d
}

// diskService reserves the disk for one request and returns when the data
// will be ready: FIFO behind earlier requests, seek + transfer + jitter.
func (h *Host) diskService(bytes int) sim.Time {
	start := h.loop.Now()
	if h.diskFree > start {
		start = h.diskFree
	}
	transfer := sim.Time(int64(bytes) * int64(sim.Second) / h.cfg.DiskBytesPerSec)
	svc := h.cfg.DiskSeek + transfer + h.rng.ExpDur(h.cfg.DiskJitterMean)
	h.diskFree = start + svc
	h.diskOps++
	h.diskBusy += svc
	return h.diskFree
}

// DiskOps reports the number of disk requests serviced.
func (h *Host) DiskOps() uint64 { return h.diskOps }

// DiskBusy reports the accumulated disk service time across all requests —
// monotone, so a sampler can difference it for utilization.
func (h *Host) DiskBusy() sim.Time { return h.diskBusy }

// DiskBacklog reports how far the disk's FIFO horizon extends past now: the
// time a new request would wait before service begins. Zero on an idle
// disk. This is the load signal telemetry-driven admission consumes — a
// host whose Dom0 disk tail is long will also stretch its device-model
// processing delays (ioDelay grows with in-flight I/O), pushing proposal
// latencies toward the stall detector's deadline.
func (h *Host) DiskBacklog(now sim.Time) sim.Time {
	if h.diskFree > now {
		return h.diskFree - now
	}
	return 0
}

// DiskRequest submits Dom0 background disk load (log shipping, image
// prefetch, an experiment's interference generator): the request occupies
// the disk FIFO and counts as in-flight device-model I/O until the data is
// ready, exactly like a guest-issued transfer, but delivers no interrupt to
// any guest. It returns the ready time.
func (h *Host) DiskRequest(bytes int) sim.Time {
	h.ioBegin()
	ready := h.diskService(bytes)
	h.loop.AtTimer(ready, "vmm:dom0disk", ioEndTimer, h, nil, 0)
	return ready
}
