package vmm

import (
	"fmt"
	"sort"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// SendSink consumes a replica's guest output packets (Sec. VI tunnelling).
type SendSink interface {
	GuestSend(a guest.IOAction)
}

// SendSinkFunc adapts a function to SendSink (tests, experiments).
type SendSinkFunc func(a guest.IOAction)

// GuestSend implements SendSink.
func (f SendSinkFunc) GuestSend(a guest.IOAction) { f(a) }

// PaceSink consumes a replica's pacing beacons (Sec. V-A).
type PaceSink interface {
	PaceReport(v vtime.Virtual)
}

// PaceSinkFunc adapts a function to PaceSink (tests, experiments).
type PaceSinkFunc func(v vtime.Virtual)

// PaceReport implements PaceSink.
func (f PaceSinkFunc) PaceReport(v vtime.Virtual) { f(v) }

// netDelivery is a network interrupt scheduled in virtual time.
type netDelivery struct {
	deliverVirt vtime.Virtual
	seq         uint64 // ingress sequence: deterministic tiebreak
	payload     guest.Payload
}

// diskDelivery is a disk interrupt scheduled in virtual time, with the real
// time at which the data transfer actually completes (for overrun checks).
type diskDelivery struct {
	deliverVirt vtime.Virtual
	seq         uint64
	readyReal   sim.Time
	done        guest.DiskDone
}

// RuntimeStats counts StopWatch-runtime events.
type RuntimeStats struct {
	// Divergences counts median delivery times that had already passed the
	// guest's virtual time when resolved (synchrony violations, Sec. V-A
	// footnote 4).
	Divergences int
	// DiskOverruns counts disk interrupts delivered before the simulated
	// data transfer finished (Δd too small).
	DiskOverruns int
	// NetDelivered counts network interrupts injected.
	NetDelivered int
	// Pauses counts pacing pauses ("slowing the fastest replica").
	Pauses int
	// ReplayedSends counts outputs suppressed during replacement replay
	// (the survivors already emitted them).
	ReplayedSends int
	// Checkpoints counts checkpoint captures by this replica (accepted or
	// deduplicated by the journal's first-write-wins rule).
	Checkpoints int
	// ReplayedRecords is the journal suffix length a replacement replay
	// preloaded (0 for live-started replicas) — the bounded-replay metric.
	ReplayedRecords int
	// RestoredInstr is the checkpoint instruction count a replacement
	// restore started from (0: full replay from boot).
	RestoredInstr int64
}

// Runtime hosts one replica of a guest under the StopWatch VMM: it owns the
// replica's virtual clock, PIT, pending interrupt queues and pacing state,
// and drives the guest through the shared exec engine.
type Runtime struct {
	ex     exec
	host   *Host
	cfg    Config
	vm     *guest.VM
	vclock *vtime.Clock
	pit    *vtime.PIT
	tsc    vtime.TSC

	virtLastExit vtime.Virtual

	pendingNet  []netDelivery
	pendingDisk []diskDelivery
	diskSeq     uint64

	peerVirt map[string]vtime.Virtual

	stats RuntimeStats

	// Wiring (set before Start). OnSend and OnPace are interfaces rather
	// than func fields so the cluster can wire its per-replica state in
	// directly (a pointer into an interface allocates nothing, a closure or
	// bound method per replica does — guest admission is a hot path under
	// churn).
	// OnSend tunnels a guest output toward the egress node.
	OnSend SendSink
	// OnPace reports this replica's virtual progress to its peers.
	OnPace PaceSink
	// OnNetDeliver observes each injected network interrupt (experiments).
	OnNetDeliver func(seq uint64, deliverVirt vtime.Virtual, real sim.Time)

	// epochHook, set by an EpochCoordinator, runs at each exit; returning
	// true holds the replica at an epoch barrier.
	epochHook func(instr int64) bool
	// epochWait reports whether the replica is held at an epoch barrier
	// (pacing must not resume it).
	epochWait func() bool

	// Checkpoint capture state (EnableCheckpoints). Captures happen before
	// any epoch adjustment at the same exit, so every replica checkpoints
	// identical pre-adjust state.
	journal   *Journal
	ckEvery   int64
	ckNext    int64
	ckScratch *Checkpoint
}

// NewRuntime builds a replica runtime. bootTimes are the three replica
// hosts' clock readings at deployment; all replicas must receive the same
// slice so their virtual clocks agree.
func NewRuntime(host *Host, guestID string, app guest.App, bootTimes []sim.Time) (*Runtime, error) {
	if host == nil {
		return nil, fmt.Errorf("%w: nil host", ErrVMM)
	}
	cfg := host.Config()
	vc, err := vtime.New(vtime.Config{
		BootTimes: bootTimes,
		Slope:     cfg.Slope,
		SlopeLo:   cfg.SlopeLo,
		SlopeHi:   cfg.SlopeHi,
	})
	if err != nil {
		return nil, err
	}
	pit, err := vtime.NewPIT(cfg.PITHz)
	if err != nil {
		return nil, err
	}
	// peerVirt is lazily initialized on the first pacing report.
	rt := &Runtime{
		host:   host,
		cfg:    cfg,
		vclock: vc,
		pit:    pit,
		tsc:    vtime.TSC{HzGHz: 3.0},
	}
	// The PIT tick schedule starts at the clock's start value, not at
	// virtual zero, so early guests aren't flooded with catch-up ticks.
	rt.pit.Due(vc.Start())
	rt.virtLastExit = vc.Start()
	vm, err := guest.New(guestID, app, rt)
	if err != nil {
		return nil, err
	}
	rt.vm = vm
	rt.ex = exec{
		host:      host,
		vm:        vm,
		loop:      host.Loop(),
		exitEvery: cfg.ExitEvery,
		onExit:    rt.exit,
	}
	host.register(&rt.ex)
	return rt, nil
}

var _ guest.ClockView = (*Runtime)(nil)

// Now implements guest.ClockView: the guest sees only virtual time.
func (rt *Runtime) Now() vtime.Virtual { return rt.vclock.At(rt.ex.instr) }

// TSC implements guest.ClockView from virtual time (Sec. IV-B).
func (rt *Runtime) TSC() uint64 { return rt.tsc.Read(rt.Now()) }

// PITCounter implements guest.ClockView from virtual time (Sec. IV-B).
func (rt *Runtime) PITCounter() uint16 { return rt.pit.Counter(rt.Now()) }

// VM returns the hosted guest.
func (rt *Runtime) VM() *guest.VM { return rt.vm }

// Host returns the hosting machine.
func (rt *Runtime) Host() *Host { return rt.host }

// Stats returns runtime counters.
func (rt *Runtime) Stats() RuntimeStats { return rt.stats }

// Instr returns the replica's executed branch count.
func (rt *Runtime) Instr() int64 { return rt.ex.instr }

// VirtAtLastExit returns the guest's virtual time as of its last VM exit —
// what the device model reads when forming a Δn proposal (Sec. V-B).
func (rt *Runtime) VirtAtLastExit() vtime.Virtual { return rt.virtLastExit }

// Start boots the guest and begins execution and pacing.
func (rt *Runtime) Start() {
	rt.ex.start()
	if rt.OnPace != nil {
		rt.paceTick()
	}
}

// Stop halts the replica.
func (rt *Runtime) Stop() { rt.ex.stop() }

// Stopped reports whether the replica's guest execution is halted (crashed,
// or frozen for evacuation); the VMM-side device models stay live.
func (rt *Runtime) Stopped() bool { return rt.ex.stopped }

// Release permanently stops the replica and detaches it from its host's
// scheduler — the teardown path for eviction and replacement, after which
// the runtime costs the host nothing.
func (rt *Runtime) Release() {
	rt.ex.stop()
	rt.host.unregister(&rt.ex)
}

func (rt *Runtime) paceTick() {
	if rt.ex.stopped {
		return
	}
	rt.OnPace.PaceReport(rt.virtLastExit)
	rt.host.Loop().AfterTimer(rt.cfg.PaceInterval, "vmm:pace", paceTimer, rt, nil, 0)
}

// paceTimer is the typed pacing-beacon callback (periodic per replica).
func paceTimer(a, _ any, _ uint64) { a.(*Runtime).paceTick() }

// DropPeer forgets a peer replica's pacing state — the peer was declared
// dead and replaced; its frozen progress report must not linger in the
// max-lead comparison. A paced pause is re-evaluated against the remaining
// peers.
func (rt *Runtime) DropPeer(peer string) {
	delete(rt.peerVirt, peer)
	rt.maybeResume()
}

// OnPeerVirt records a peer replica's progress report and resumes a paced
// pause if the gap has closed (never an epoch barrier).
func (rt *Runtime) OnPeerVirt(peer string, v vtime.Virtual) {
	if rt.peerVirt == nil {
		rt.peerVirt = make(map[string]vtime.Virtual)
	}
	rt.peerVirt[peer] = v
	rt.maybeResume()
}

// maybeResume lifts a pacing pause once the lead has closed, unless the
// replica is held at an epoch barrier.
func (rt *Runtime) maybeResume() {
	if rt.ex.paused && !rt.tooFarAhead() && (rt.epochWait == nil || !rt.epochWait()) {
		rt.ex.resume()
	}
}

// tooFarAhead reports whether this replica leads ALL peers by more than
// MaxLead — i.e. it is the unique fastest and must be slowed (Sec. V-A).
func (rt *Runtime) tooFarAhead() bool {
	if len(rt.peerVirt) == 0 {
		return false
	}
	var maxPeer vtime.Virtual
	first := true
	for _, v := range rt.peerVirt {
		if first || v > maxPeer {
			maxPeer = v
			first = false
		}
	}
	return rt.virtLastExit-maxPeer > rt.cfg.MaxLead
}

// EnqueueNetDelivery schedules a network interrupt at the median-agreed
// virtual time. A delivery time at or before the replica's current virtual
// time is a synchrony violation and is counted as a divergence; the packet
// is still delivered at the next exit so the scenario can proceed.
func (rt *Runtime) EnqueueNetDelivery(seq uint64, deliverVirt vtime.Virtual, p guest.Payload) {
	if deliverVirt <= rt.virtLastExit {
		rt.stats.Divergences++
	}
	d := netDelivery{deliverVirt: deliverVirt, seq: seq, payload: p}
	i := sort.Search(len(rt.pendingNet), func(i int) bool {
		if rt.pendingNet[i].deliverVirt != d.deliverVirt {
			return rt.pendingNet[i].deliverVirt > d.deliverVirt
		}
		return rt.pendingNet[i].seq > d.seq
	})
	rt.pendingNet = append(rt.pendingNet, netDelivery{})
	copy(rt.pendingNet[i+1:], rt.pendingNet[i:])
	rt.pendingNet[i] = d
}

// RequestDisk is invoked at a VM exit when the guest issued a disk op: the
// device model starts the real transfer and schedules the interrupt at
// virtual time V+Δd (Sec. V-A).
func (rt *Runtime) requestDisk(a guest.IOAction, atVirt vtime.Virtual) {
	rt.host.ioBegin()
	ready := rt.host.diskService(a.Bytes)
	rt.host.Loop().AtTimer(ready, "vmm:diskdone", ioEndTimer, rt.host, nil, 0)
	rt.diskSeq++
	rt.enqueueDisk(diskDelivery{
		deliverVirt: atVirt + rt.cfg.DeltaD,
		seq:         rt.diskSeq,
		readyReal:   ready,
		done:        guest.DiskDone{Tag: a.Tag, Bytes: a.Bytes, Write: a.Write},
	})
}

// enqueueDisk inserts a disk delivery in (deliverVirt, seq) order — the
// one ordering live execution and replacement replay must share exactly.
func (rt *Runtime) enqueueDisk(d diskDelivery) {
	i := sort.Search(len(rt.pendingDisk), func(i int) bool {
		if rt.pendingDisk[i].deliverVirt != d.deliverVirt {
			return rt.pendingDisk[i].deliverVirt > d.deliverVirt
		}
		return rt.pendingDisk[i].seq > d.seq
	})
	rt.pendingDisk = append(rt.pendingDisk, diskDelivery{})
	copy(rt.pendingDisk[i+1:], rt.pendingDisk[i:])
	rt.pendingDisk[i] = d
}

// exit is the guest-caused VM exit handler: the only place interrupts are
// injected (Sec. IV-B / V-B).
func (rt *Runtime) exit(res guest.StepResult) {
	virt := rt.vclock.At(rt.ex.instr)
	rt.virtLastExit = virt

	if res.IO != nil {
		if res.IO.IsSend() {
			if rt.OnSend != nil {
				rt.OnSend.GuestSend(*res.IO)
			}
		} else {
			rt.requestDisk(*res.IO, virt)
		}
	}

	// Timer interrupts first (the kernel services the tick before device
	// interrupts), then disk before network at equal virtual times — a
	// fixed, deterministic order.
	if n := rt.pit.Due(virt); n > 0 {
		rt.vm.DeliverTimerTicks(n)
	}
	rt.deliverDue(virt)

	// Checkpoint before any epoch adjustment at this exit: the pre-adjust
	// state is what every replica reproduces identically, and replacement
	// replay re-applies the journaled star afterwards.
	if rt.ckEvery > 0 && rt.ex.instr >= rt.ckNext {
		rt.captureCheckpoint(virt)
		rt.ckNext = (rt.ex.instr/rt.ckEvery + 1) * rt.ckEvery
	}

	if rt.epochHook != nil && rt.epochHook(rt.ex.instr) {
		rt.ex.pause()
		return
	}
	if rt.tooFarAhead() {
		rt.stats.Pauses++
		rt.ex.pause()
	}
}

func (rt *Runtime) deliverDue(virt vtime.Virtual) {
	for len(rt.pendingDisk) > 0 || len(rt.pendingNet) > 0 {
		haveDisk := len(rt.pendingDisk) > 0 && rt.pendingDisk[0].deliverVirt <= virt
		haveNet := len(rt.pendingNet) > 0 && rt.pendingNet[0].deliverVirt <= virt
		if !haveDisk && !haveNet {
			return
		}
		// Disk wins ties; otherwise earliest virtual time first.
		if haveDisk && (!haveNet || rt.pendingDisk[0].deliverVirt <= rt.pendingNet[0].deliverVirt) {
			d := rt.pendingDisk[0]
			rt.pendingDisk = rt.pendingDisk[1:]
			if d.readyReal > rt.host.Loop().Now() {
				rt.stats.DiskOverruns++
			}
			rt.vm.DeliverDisk(d.done)
			continue
		}
		d := rt.pendingNet[0]
		rt.pendingNet = rt.pendingNet[1:]
		rt.stats.NetDelivered++
		if rt.OnNetDeliver != nil {
			rt.OnNetDeliver(d.seq, d.deliverVirt, rt.host.Loop().Now())
		}
		rt.vm.DeliverPacket(d.payload)
	}
}
