package vmm

import (
	"errors"
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

func testHost(t *testing.T, name string, loop *sim.Loop, src *sim.Source, offset sim.Time, drift float64) *Host {
	t.Helper()
	cfg := DefaultConfig()
	h, err := NewHost(name, loop, src.Stream("host:"+name), sim.NewClock(offset, drift), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := []func(*Config){
		func(c *Config) { c.BaseRate = 0 },
		func(c *Config) { c.ExitEvery = 0 },
		func(c *Config) { c.PITHz = 0 },
		func(c *Config) { c.Slope = 0 },
		func(c *Config) { c.SlopeHi = c.SlopeLo / 2 },
		func(c *Config) { c.DeltaN = 0 },
		func(c *Config) { c.DeltaD = 0 },
		func(c *Config) { c.MaxLead = 0 },
		func(c *Config) { c.PaceInterval = 0 },
		func(c *Config) { c.IOLoadFactor = -1 },
		func(c *Config) { c.DiskBytesPerSec = 0 },
		func(c *Config) { c.EpochInstr = -1 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); !errors.Is(err, ErrVMM) {
			t.Errorf("mutation %d not rejected: %v", i, err)
		}
	}
}

func TestHostProcessorSharing(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(1)
	h := testHost(t, "h", loop, src, 0, 0)
	full := h.busyRate()
	h.setBusy(1)
	if h.busyRate() != full {
		t.Fatal("single busy guest should get full rate")
	}
	h.setBusy(1)
	if h.busyRate() != full/2 {
		t.Fatalf("two busy guests: rate %v, want %v", h.busyRate(), full/2)
	}
	if h.idleRate() != full {
		t.Fatal("idle rate should stay nominal")
	}
	h.setBusy(-1)
	h.setBusy(-1)
	h.setBusy(-1) // extra decrement must clamp at 0
	if h.BusyCount() != 0 {
		t.Fatalf("busy count %d", h.BusyCount())
	}
}

func TestHostIODelayGrowsWithLoad(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(2)
	h := testHost(t, "h", loop, src, 0, 0)
	mean := func() float64 {
		var s float64
		for i := 0; i < 4000; i++ {
			s += float64(h.ioDelay())
		}
		return s / 4000
	}
	idle := mean()
	const burst = 8 // an ACK burst's worth of concurrent Dom0 work
	for i := 0; i < burst; i++ {
		h.ioBegin()
	}
	loaded := mean()
	for i := 0; i < burst; i++ {
		h.ioEnd()
	}
	if loaded <= idle*1.5 {
		t.Fatalf("io delay under load %v not ≫ idle %v", loaded, idle)
	}
	if h.IOInFlight() != 0 {
		t.Fatal("ioEnd accounting wrong")
	}
}

func TestHostDiskFIFO(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(3)
	h := testHost(t, "h", loop, src, 0, 0)
	r1 := h.diskService(1 << 20)
	r2 := h.diskService(1 << 20)
	if r2 <= r1 {
		t.Fatalf("disk requests must serialize: %v then %v", r1, r2)
	}
	if h.DiskOps() != 2 {
		t.Fatal("disk op count wrong")
	}
	// Transfer time must scale with bytes: at 80MB/s, 80MB takes ~1s.
	r3start := h.diskFree
	r3 := h.diskService(80 << 20)
	if got := r3 - r3start; got < sim.Second {
		t.Fatalf("80MB transfer took %v, want >= 1s", got)
	}
}

func TestGroupMedianOddCounts(t *testing.T) {
	if m := GroupMedian([]vtime.Virtual{5, 1, 9, 3, 7}); m != 5 {
		t.Fatalf("median5 = %v", m)
	}
}

// echoApp computes on boot, then echoes every packet with a response whose
// payload includes the guest-visible clock; it also does periodic disk I/O.
type echoApp struct{}

func (echoApp) Boot(c guest.Ctx) {
	c.Compute(500_000)
	c.DiskRead("boot-block", 8192)
}

func (echoApp) OnPacket(c guest.Ctx, p guest.Payload) {
	c.Compute(50_000)
	c.Send(p.Src, p.Size, c.Clock().Now())
}

func (echoApp) OnDiskDone(c guest.Ctx, d guest.DiskDone) {
	c.Compute(20_000)
}

func (echoApp) OnTimer(c guest.Ctx, tag string) {}

// loadApp alternates busy compute bursts and disk reads forever, driven by
// guest timers: a stand-in for an active coresident VM.
type loadApp struct{}

func (loadApp) Boot(c guest.Ctx)                         { c.SetTimer(0, "burst") }
func (loadApp) OnPacket(c guest.Ctx, p guest.Payload)    {}
func (loadApp) OnDiskDone(c guest.Ctx, d guest.DiskDone) {}
func (loadApp) OnTimer(c guest.Ctx, tag string) {
	c.Compute(2_000_000)
	c.DiskRead("victim-block", 64<<10)
	c.SetTimer(vtime.Virtual(8*sim.Millisecond), "burst")
}

// replicaSet wires three StopWatch runtimes across three hosts with direct
// (loop-delayed) proposal links, standing in for the multicast layer.
type replicaSet struct {
	loop *sim.Loop
	rts  []*Runtime
	nds  []*NetDevice
}

func buildReplicaSet(t *testing.T, seed uint64, app guest.App, propDelay sim.Time) *replicaSet {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(seed)
	offsets := []sim.Time{0, 3 * sim.Millisecond, 7 * sim.Millisecond}
	drifts := []float64{0, 2e-5, -1.5e-5}
	rs := &replicaSet{loop: loop}
	boots := make([]sim.Time, 3)
	hosts := make([]*Host, 3)
	for i := 0; i < 3; i++ {
		hosts[i] = testHost(t, []string{"A", "B", "C"}[i], loop, src, offsets[i], drifts[i])
		boots[i] = hosts[i].Clock().Read(0)
	}
	for i := 0; i < 3; i++ {
		rt, err := NewRuntime(hosts[i], "guest-1", app, boots)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := NewNetDevice(rt, 3)
		if err != nil {
			t.Fatal(err)
		}
		rs.rts = append(rs.rts, rt)
		rs.nds = append(rs.nds, nd)
	}
	// Wire proposals and pacing across replicas with a fixed link delay.
	for i := range rs.nds {
		i := i
		origin := rs.rts[i].Host().Name()
		rs.nds[i].SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) {
			for j := range rs.nds {
				if j == i {
					continue
				}
				j := j
				loop.After(propDelay, "prop", func() { rs.nds[j].HandlePeerProposal(origin, view, seq, v) })
			}
		})
		rs.rts[i].OnPace = PaceSinkFunc(func(v vtime.Virtual) {
			for j := range rs.rts {
				if j == i {
					continue
				}
				j := j
				name := rs.rts[i].Host().Name()
				loop.After(propDelay, "pace", func() { rs.rts[j].OnPeerVirt(name, v) })
			}
		})
	}
	return rs
}

// inject replicates a packet to all three device models with per-host
// arrival skew, as the ingress node would.
func (rs *replicaSet) inject(seq uint64, p guest.Payload, skews []sim.Time) {
	for i, nd := range rs.nds {
		nd := nd
		rs.loop.After(skews[i%len(skews)], "ingress", func() { nd.HandleInbound(seq, p) })
	}
}

func TestReplicaLockstep(t *testing.T) {
	app := echoApp{}
	rs := buildReplicaSet(t, 42, app, 500*sim.Microsecond)
	var deliveries [3][]vtime.Virtual
	for i, rt := range rs.rts {
		i := i
		rt.OnNetDeliver = func(seq uint64, v vtime.Virtual, _ sim.Time) {
			deliveries[i] = append(deliveries[i], v)
		}
		rt.OnSend = SendSinkFunc(func(a guest.IOAction) {}) // discard outputs
		rt.Start()
	}
	// A packet stream with arrival skew across hosts.
	skews := []sim.Time{0, 300 * sim.Microsecond, 800 * sim.Microsecond}
	for k := 0; k < 40; k++ {
		seq := uint64(k + 1)
		at := sim.Time(k+1) * 20 * sim.Millisecond
		rs.loop.At(at, "client", func() {
			rs.inject(seq, guest.Payload{Src: "client", Size: 512, Data: seq}, skews)
		})
	}
	if err := rs.loop.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}

	// All replicas: identical outputs, identical delivery virtual times,
	// identical guest stats.
	d0 := rs.rts[0].VM().OutputDigest()
	for i, rt := range rs.rts {
		if rt.VM().OutputDigest() != d0 {
			t.Fatalf("replica %d output digest diverged", i)
		}
		// Raw branch counts differ at a fixed real-time cutoff (replicas are
		// in lockstep in virtual time, not real time); every event counter
		// must agree exactly.
		a, b := rt.VM().Stats(), rs.rts[0].VM().Stats()
		a.Branches, a.IdleBranches = 0, 0
		b.Branches, b.IdleBranches = 0, 0
		if a != b {
			t.Fatalf("replica %d stats diverged:\n%+v\n%+v", i, a, b)
		}
		if rt.Stats().Divergences != 0 {
			t.Fatalf("replica %d saw %d divergences", i, rt.Stats().Divergences)
		}
	}
	if len(deliveries[0]) != 40 {
		t.Fatalf("delivered %d/40 packets", len(deliveries[0]))
	}
	for i := 1; i < 3; i++ {
		if len(deliveries[i]) != len(deliveries[0]) {
			t.Fatalf("replica %d delivered %d packets vs %d", i, len(deliveries[i]), len(deliveries[0]))
		}
		for k := range deliveries[0] {
			if deliveries[i][k] != deliveries[0][k] {
				t.Fatalf("replica %d delivery %d at %v vs %v", i, k, deliveries[i][k], deliveries[0][k])
			}
		}
	}
	// Outputs flowed: one response per packet.
	if got := rs.rts[0].VM().Stats().PacketsSent; got != 40 {
		t.Fatalf("guest sent %d packets, want 40", got)
	}
}

func TestReplicaLockstepWithCoresidentLoad(t *testing.T) {
	// Same as above, but host A also runs an active load guest (the
	// "victim"): replica A slows down in real time, yet all replicas must
	// remain in virtual lockstep.
	rs := buildReplicaSet(t, 77, echoApp{}, 500*sim.Microsecond)
	victim, err := NewRuntime(rs.rts[0].Host(), "victim-1", loadApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	victim.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	var deliveries [3][]vtime.Virtual
	for i, rt := range rs.rts {
		i := i
		rt.OnNetDeliver = func(seq uint64, v vtime.Virtual, _ sim.Time) {
			deliveries[i] = append(deliveries[i], v)
		}
		rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
		rt.Start()
	}
	victim.Start()
	skews := []sim.Time{0, 300 * sim.Microsecond, 800 * sim.Microsecond}
	for k := 0; k < 30; k++ {
		seq := uint64(k + 1)
		at := sim.Time(k+1) * 25 * sim.Millisecond
		rs.loop.At(at, "client", func() {
			rs.inject(seq, guest.Payload{Src: "client", Size: 512, Data: seq}, skews)
		})
	}
	if err := rs.loop.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	d0 := rs.rts[0].VM().OutputDigest()
	for i, rt := range rs.rts {
		if rt.VM().OutputDigest() != d0 {
			t.Fatalf("replica %d diverged under coresident load", i)
		}
		if rt.Stats().Divergences != 0 {
			t.Fatalf("replica %d divergences: %d", i, rt.Stats().Divergences)
		}
	}
	for i := 1; i < 3; i++ {
		for k := range deliveries[0] {
			if deliveries[i][k] != deliveries[0][k] {
				t.Fatalf("delivery virt diverged under load at %d", k)
			}
		}
	}
	// The loaded host's replica must have been slower in real time —
	// verify contention actually happened: host A had 2+ busy guests at
	// some point. (Indirect check: victim did disk work.)
	if victim.VM().Stats().DiskRequests == 0 {
		t.Fatal("victim never generated load")
	}
}

func TestPacingSlowsFastestReplica(t *testing.T) {
	// Make host A 3x faster than B and C by lowering B/C's base rate via
	// separate configs is not possible per-host (shared cfg); instead give
	// host A a large positive drift — pacing must kick in.
	loop := sim.NewLoop()
	src := sim.NewSource(5)
	cfg := DefaultConfig()
	mkHost := func(name string, rate int64) *Host {
		c := cfg
		c.BaseRate = rate
		h, err := NewHost(name, loop, src.Stream("h"+name), sim.NewClock(0, 0), c)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	fast := mkHost("fast", 3_000_000_000)
	slow1 := mkHost("slow1", 1_000_000_000)
	slow2 := mkHost("slow2", 1_000_000_000)
	boots := []sim.Time{0, 0, 0}
	var rts []*Runtime
	for _, h := range []*Host{fast, slow1, slow2} {
		rt, err := NewRuntime(h, "g", echoApp{}, boots)
		if err != nil {
			t.Fatal(err)
		}
		rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
		rts = append(rts, rt)
	}
	for i := range rts {
		i := i
		rts[i].OnPace = PaceSinkFunc(func(v vtime.Virtual) {
			for j := range rts {
				if j != i {
					j := j
					name := rts[i].Host().Name()
					loop.After(200*sim.Microsecond, "pace", func() { rts[j].OnPeerVirt(name, v) })
				}
			}
		})
		rts[i].Start()
	}
	if err := loop.RunUntil(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rts[0].Stats().Pauses == 0 {
		t.Fatal("fast replica was never paused")
	}
	lead := rts[0].VirtAtLastExit() - rts[1].VirtAtLastExit()
	if lead < 0 {
		lead = -lead
	}
	maxAllowed := cfg.MaxLead + vtime.Virtual(10*sim.Millisecond) // slack for reporting lag
	if lead > maxAllowed {
		t.Fatalf("virtual lead %v exceeds bound %v", lead, maxAllowed)
	}
}

func TestDivergenceCountedWhenMedianAlreadyPassed(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(9)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", echoApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	rt.Start()
	if err := loop.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Enqueue a delivery in the past.
	rt.EnqueueNetDelivery(1, rt.VirtAtLastExit()-1, guest.Payload{Src: "x", Size: 1})
	if rt.Stats().Divergences != 1 {
		t.Fatalf("divergences = %d, want 1", rt.Stats().Divergences)
	}
	// It must still be delivered (at the next exit).
	if err := loop.RunUntil(110 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().NetDelivered != 1 {
		t.Fatal("past-due packet never delivered")
	}
}

func TestDiskDeliveryAtDeltaD(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(11)
	h := testHost(t, "h", loop, src, 0, 0)
	var diskVirts []vtime.Virtual
	app := &recordApp{onDisk: func(c guest.Ctx, d guest.DiskDone) {
		diskVirts = append(diskVirts, c.Clock().Now())
	}}
	app.boot = func(c guest.Ctx) {
		c.Compute(1_000_000)
		c.DiskRead("blk", 4096)
	}
	rt, err := NewRuntime(h, "g", app, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	rt.Start()
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(diskVirts) != 1 {
		t.Fatalf("disk interrupts: %d", len(diskVirts))
	}
	// Issued at virt ≈ 1e6 branches ≈ 1ms; delivered at ≥ issue+Δd,
	// quantized up to the next exit boundary (≤ ExitEvery).
	issue := vtime.Virtual(1_000_000 + 2) // boot compute + disk I/O instruction
	wantMin := issue + h.Config().DeltaD
	wantMax := wantMin + vtime.Virtual(h.Config().ExitEvery)*vtime.Virtual(h.Config().Slope)
	if diskVirts[0] < wantMin || diskVirts[0] > wantMax {
		t.Fatalf("disk delivered at %v, want in [%v, %v]", diskVirts[0], wantMin, wantMax)
	}
	if rt.Stats().DiskOverruns != 0 {
		t.Fatal("unexpected disk overrun with default Δd")
	}
}

func TestDiskOverrunDetected(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(13)
	cfg := DefaultConfig()
	cfg.DeltaD = vtime.Virtual(100 * sim.Microsecond) // far below seek time
	h, err := NewHost("h", loop, src.Stream("h"), sim.NewClock(0, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	app := &recordApp{}
	app.boot = func(c guest.Ctx) { c.DiskRead("blk", 1<<20) }
	rt, err := NewRuntime(h, "g", app, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	rt.Start()
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().DiskOverruns != 1 {
		t.Fatalf("overruns = %d, want 1 with tiny Δd", rt.Stats().DiskOverruns)
	}
}

// recordApp is a configurable scripted app.
type recordApp struct {
	boot    func(c guest.Ctx)
	onDisk  func(c guest.Ctx, d guest.DiskDone)
	onPkt   func(c guest.Ctx, p guest.Payload)
	onTimer func(c guest.Ctx, tag string)
}

func (a *recordApp) Boot(c guest.Ctx) {
	if a.boot != nil {
		a.boot(c)
	}
}
func (a *recordApp) OnPacket(c guest.Ctx, p guest.Payload) {
	if a.onPkt != nil {
		a.onPkt(c, p)
	}
}
func (a *recordApp) OnDiskDone(c guest.Ctx, d guest.DiskDone) {
	if a.onDisk != nil {
		a.onDisk(c, d)
	}
}
func (a *recordApp) OnTimer(c guest.Ctx, tag string) {
	if a.onTimer != nil {
		a.onTimer(c, tag)
	}
}

func TestPITTicksAtVirtualRate(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(15)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	rt.Start()
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	// Idle guest at nominal rate: virt advances ≈ 1s → ~250 ticks.
	ticks := rt.VM().Stats().TimerInterrupts
	if ticks < 240 || ticks > 260 {
		t.Fatalf("timer interrupts in 1s: %d, want ~250", ticks)
	}
}

func TestBaselinePITByRealTime(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(17)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewBaselineRuntime(h, "g", &recordApp{})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	rt.Start()
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	ticks := rt.VM().Stats().TimerInterrupts
	if ticks < 240 || ticks > 260 {
		t.Fatalf("baseline ticks in 1s: %d, want ~250", ticks)
	}
}

func TestBaselineDeliversPromptly(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(19)
	h := testHost(t, "h", loop, src, 0, 0)
	var deliveredAt []sim.Time
	rt, err := NewBaselineRuntime(h, "g", &recordApp{})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	rt.OnNetDeliver = func(seq uint64, real sim.Time) { deliveredAt = append(deliveredAt, real) }
	rt.Start()
	sendAt := 10 * sim.Millisecond
	loop.At(sendAt, "pkt", func() { rt.HandleInbound(guest.Payload{Src: "c", Size: 100}) })
	if err := loop.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 1 {
		t.Fatalf("delivered %d packets", len(deliveredAt))
	}
	lat := deliveredAt[0] - sendAt
	// Baseline latency: io delay (~0.5ms) + exit quantization (0.25ms).
	if lat > 3*sim.Millisecond {
		t.Fatalf("baseline delivery latency %v too high", lat)
	}
	// StopWatch latency for comparison would be ≥ Δn = 10ms (virtual ≈ real
	// at slope 1); the baseline must beat that comfortably.
	if lat >= sim.Time(h.Config().DeltaN) {
		t.Fatalf("baseline latency %v not below Δn-equivalent %v", lat, h.Config().DeltaN)
	}
}

func TestNetDeviceProtocol(t *testing.T) {
	rs := buildReplicaSet(t, 21, &recordApp{}, 300*sim.Microsecond)
	for _, rt := range rs.rts {
		rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
		rt.Start()
	}
	rs.inject(1, guest.Payload{Src: "c", Size: 64, Data: "x"}, []sim.Time{0, 0, 0})
	if err := rs.loop.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i, nd := range rs.nds {
		if nd.Proposed() != 1 {
			t.Fatalf("nd %d proposed %d", i, nd.Proposed())
		}
		if nd.Resolved() != 1 {
			t.Fatalf("nd %d resolved %d", i, nd.Resolved())
		}
		if nd.Pending() != 0 {
			t.Fatalf("nd %d pending %d", i, nd.Pending())
		}
	}
	for i, rt := range rs.rts {
		if rt.Stats().NetDelivered != 1 {
			t.Fatalf("rt %d delivered %d", i, rt.Stats().NetDelivered)
		}
	}
}

func TestNetDeviceValidation(t *testing.T) {
	if _, err := NewNetDevice(nil, 3); !errors.Is(err, ErrVMM) {
		t.Fatal("nil runtime should fail")
	}
	loop := sim.NewLoop()
	src := sim.NewSource(23)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetDevice(rt, 2); !errors.Is(err, ErrVMM) {
		t.Fatal("even replica count should fail")
	}
	if _, err := NewNetDevice(rt, 0); !errors.Is(err, ErrVMM) {
		t.Fatal("zero replica count should fail")
	}
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(nil, "g", &recordApp{}, []sim.Time{0}); !errors.Is(err, ErrVMM) {
		t.Fatal("nil host should fail")
	}
	loop := sim.NewLoop()
	src := sim.NewSource(25)
	h := testHost(t, "h", loop, src, 0, 0)
	if _, err := NewRuntime(h, "", &recordApp{}, []sim.Time{0}); err == nil {
		t.Fatal("empty guest id should fail")
	}
	if _, err := NewRuntime(h, "g", &recordApp{}, nil); err == nil {
		t.Fatal("no boot times should fail")
	}
	if _, err := NewBaselineRuntime(nil, "g", &recordApp{}); !errors.Is(err, ErrVMM) {
		t.Fatal("baseline nil host should fail")
	}
}

func TestHostValidation(t *testing.T) {
	loop := sim.NewLoop()
	rng := sim.NewSource(1).Stream("x")
	clk := sim.NewClock(0, 0)
	if _, err := NewHost("", loop, rng, clk, DefaultConfig()); !errors.Is(err, ErrVMM) {
		t.Fatal("empty name should fail")
	}
	if _, err := NewHost("h", nil, rng, clk, DefaultConfig()); !errors.Is(err, ErrVMM) {
		t.Fatal("nil loop should fail")
	}
	bad := DefaultConfig()
	bad.BaseRate = -1
	if _, err := NewHost("h", loop, rng, clk, bad); !errors.Is(err, ErrVMM) {
		t.Fatal("bad config should fail")
	}
}
