package vmm

import (
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// Regression tests for the NetDevice group protocol: the resolved-seq
// watermark (late stragglers must not resurrect a propState and wedge
// quiescence), per-origin proposal dedupe (a duplicated proposal must not
// displace another peer's), the live-group view (2-of-3 resolution after a
// VMM death, with deterministic re-proposal), and the per-seq proposal
// deadline (the failure-detector hook).

func groupTestDevice(t *testing.T, seed uint64) (*sim.Loop, *Runtime, *NetDevice) {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(seed)
	h := testHost(t, "A", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	nd, err := NewNetDevice(rt, 3)
	if err != nil {
		t.Fatal(err)
	}
	nd.SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) {})
	return loop, rt, nd
}

// TestLateProposalAfterResolveIsDropped is the quiescence-leak regression:
// a straggler proposal arriving after maybeResolve has retired the seq used
// to re-create an unresolvable propState, pinning Pending() above zero
// forever and wedging every later replacement barrier for the guest.
func TestLateProposalAfterResolveIsDropped(t *testing.T) {
	loop, rt, nd := groupTestDevice(t, 71)
	delivered := 0
	rt.OnNetDeliver = func(uint64, vtime.Virtual, sim.Time) { delivered++ }
	rt.Start()
	loop.At(10*sim.Millisecond, "pkt", func() { nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
	loop.At(15*sim.Millisecond, "peerB", func() { nd.HandlePeerProposal("B", 0, 1, vtime.Virtual(30*sim.Millisecond)) })
	loop.At(16*sim.Millisecond, "peerC", func() { nd.HandlePeerProposal("C", 0, 1, vtime.Virtual(31*sim.Millisecond)) })
	// The straggle: a duplicate retransmission of C's proposal lands long
	// after the seq resolved.
	loop.At(80*sim.Millisecond, "straggler", func() { nd.HandlePeerProposal("C", 0, 1, vtime.Virtual(31*sim.Millisecond)) })
	if err := loop.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 || nd.Resolved() != 1 {
		t.Fatalf("delivered=%d resolved=%d", delivered, nd.Resolved())
	}
	if nd.Pending() != 0 {
		t.Fatalf("straggler resurrected a propState: Pending()=%d", nd.Pending())
	}
	if nd.StaleDrops() != 1 {
		t.Fatalf("stale drops = %d, want 1", nd.StaleDrops())
	}
}

// TestDuplicatePeerProposalDoesNotSkewMedian pins per-origin dedupe: before
// the fix, a peer's replayed proposal displaced the missing third proposal
// and the median resolved early over a skewed sample.
func TestDuplicatePeerProposalDoesNotSkewMedian(t *testing.T) {
	loop, rt, nd := groupTestDevice(t, 73)
	var deliveredAt []vtime.Virtual
	rt.OnNetDeliver = func(_ uint64, v vtime.Virtual, _ sim.Time) { deliveredAt = append(deliveredAt, v) }
	var own vtime.Virtual
	nd.OnPropose = func(_ uint64, v vtime.Virtual) { own = v }
	rt.Start()
	vB := vtime.Virtual(200 * sim.Millisecond)
	vC := vtime.Virtual(90 * sim.Millisecond)
	loop.At(10*sim.Millisecond, "pkt", func() { nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
	loop.At(15*sim.Millisecond, "peerB", func() { nd.HandlePeerProposal("B", 0, 1, vB) })
	loop.At(16*sim.Millisecond, "peerB-dup", func() { nd.HandlePeerProposal("B", 0, 1, vB) })
	loop.At(40*sim.Millisecond, "check", func() {
		if len(deliveredAt) != 0 {
			t.Errorf("resolved on a duplicated proposal: %v", deliveredAt)
		}
	})
	loop.At(50*sim.Millisecond, "peerC", func() { nd.HandlePeerProposal("C", 0, 1, vC) })
	if err := loop.RunUntil(400 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if nd.DuplicateDrops() != 1 {
		t.Fatalf("duplicate drops = %d, want 1", nd.DuplicateDrops())
	}
	if len(deliveredAt) != 1 {
		t.Fatalf("delivered %d packets", len(deliveredAt))
	}
	want := GroupMedian([]vtime.Virtual{own, vB, vC})
	if deliveredAt[0] != want {
		t.Fatalf("delivered at %v, want true 3-way median %v (own=%v)", deliveredAt[0], want, own)
	}
}

// TestSetLiveReplicasResolvesTwoOfThree exercises the degraded regime: a
// seq stalls because peer C's VMM died before proposing; installing the
// live view re-proposes among the live pair under the new view number and
// resolves on their upper median, while C's straggling old-view proposal
// is discarded.
func TestSetLiveReplicasResolvesTwoOfThree(t *testing.T) {
	loop, rt, nd := groupTestDevice(t, 75)
	var deliveredAt []vtime.Virtual
	rt.OnNetDeliver = func(_ uint64, v vtime.Virtual, _ sim.Time) { deliveredAt = append(deliveredAt, v) }
	var reProposed []vtime.Virtual
	nd.SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) {
		if view == 1 {
			reProposed = append(reProposed, v)
		}
	})
	rt.Start()
	loop.At(10*sim.Millisecond, "pkt", func() { nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
	loop.At(15*sim.Millisecond, "peerB", func() { nd.HandlePeerProposal("B", 0, 1, vtime.Virtual(30*sim.Millisecond)) })
	// C is dead; the group is reconfigured onto {A, B} at view 1.
	vB2 := vtime.Virtual(500 * sim.Millisecond)
	loop.At(60*sim.Millisecond, "mark", func() {
		if nd.Pending() != 1 {
			t.Errorf("seq should be stalled pre-reconfig, Pending()=%d", nd.Pending())
		}
		nd.SetLiveReplicas(1, []string{"A", "B"})
		if len(reProposed) != 1 {
			t.Errorf("pending seq not re-proposed under the new view: %v", reProposed)
		}
		// C's straggling view-0 proposal lands between the reconfiguration
		// and B's round-2 proposal: it must be dropped, not counted.
		nd.HandlePeerProposal("C", 0, 1, vtime.Virtual(31*sim.Millisecond))
		// B's own re-proposal for the stalled seq arrives under view 1.
		loop.After(sim.Millisecond, "peerB2", func() { nd.HandlePeerProposal("B", 1, 1, vB2) })
	})
	if err := loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 1 {
		t.Fatalf("degraded pair never resolved: delivered=%d pending=%d", len(deliveredAt), nd.Pending())
	}
	// Upper median of {own re-proposal, vB2}: vB2 is far later, so it wins.
	if deliveredAt[0] != vB2 {
		t.Fatalf("delivered at %v, want upper median %v", deliveredAt[0], vB2)
	}
	if nd.Pending() != 0 {
		t.Fatalf("Pending()=%d after live-set resolution", nd.Pending())
	}
	if nd.ViewDrops() == 0 {
		t.Fatal("stale-view straggler was not dropped")
	}
}

// TestGroupMedianTieRule pins the deterministic tie-rule: odd counts take
// the true median, even (degraded) counts the upper median.
func TestGroupMedianTieRule(t *testing.T) {
	if m := GroupMedian([]vtime.Virtual{30, 10, 20}); m != 20 {
		t.Fatalf("median of 3 = %v", m)
	}
	if m := GroupMedian([]vtime.Virtual{40, 10}); m != 40 {
		t.Fatalf("upper median of 2 = %v, want 40", m)
	}
	if m := GroupMedian([]vtime.Virtual{7}); m != 7 {
		t.Fatalf("median of 1 = %v", m)
	}
}

// TestProposalDeadlineFiresOnStall exercises the failure-detector hook: a
// seq that cannot resolve (a peer never proposes) trips OnStall at the
// host-loop deadline; a resolving seq does not.
func TestProposalDeadlineFiresOnStall(t *testing.T) {
	loop, rt, nd := groupTestDevice(t, 77)
	rt.OnNetDeliver = func(uint64, vtime.Virtual, sim.Time) {}
	nd.ProposalDeadline = 40 * sim.Millisecond
	var stalled []uint64
	nd.OnStall = func(seq uint64) { stalled = append(stalled, seq) }
	rt.Start()
	// Seq 1 resolves in time; seq 2 stalls (C never proposes for it).
	loop.At(10*sim.Millisecond, "pkt1", func() { nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
	loop.At(12*sim.Millisecond, "b1", func() { nd.HandlePeerProposal("B", 0, 1, vtime.Virtual(30*sim.Millisecond)) })
	loop.At(13*sim.Millisecond, "c1", func() { nd.HandlePeerProposal("C", 0, 1, vtime.Virtual(31*sim.Millisecond)) })
	loop.At(20*sim.Millisecond, "pkt2", func() { nd.HandleInbound(2, guest.Payload{Src: "c", Size: 64}) })
	loop.At(22*sim.Millisecond, "b2", func() { nd.HandlePeerProposal("B", 0, 2, vtime.Virtual(40*sim.Millisecond)) })
	if err := loop.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(stalled) != 1 || stalled[0] != 2 {
		t.Fatalf("OnStall fired for %v, want [2]", stalled)
	}
}

// TestPrimeResolvedDiscardsHistory: a replacement replica joining an
// in-progress stream must treat the stream's history as handled, both for
// already-pending states and future stragglers.
func TestPrimeResolvedDiscardsHistory(t *testing.T) {
	loop, rt, nd := groupTestDevice(t, 79)
	rt.OnNetDeliver = func(uint64, vtime.Virtual, sim.Time) {}
	rt.Start()
	loop.At(5*sim.Millisecond, "old", func() { nd.HandlePeerProposal("B", 0, 3, vtime.Virtual(30*sim.Millisecond)) })
	loop.At(10*sim.Millisecond, "prime", func() {
		if nd.Pending() != 1 {
			t.Errorf("pre-prime pending = %d", nd.Pending())
		}
		nd.PrimeResolved(7)
		if nd.Pending() != 0 {
			t.Errorf("PrimeResolved left pending = %d", nd.Pending())
		}
	})
	loop.At(20*sim.Millisecond, "straggler", func() { nd.HandlePeerProposal("C", 0, 5, vtime.Virtual(31*sim.Millisecond)) })
	if err := loop.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if nd.Pending() != 0 {
		t.Fatalf("historic straggler resurrected state: Pending()=%d", nd.Pending())
	}
	if nd.StaleDrops() == 0 {
		t.Fatal("historic straggler was not counted as stale")
	}
}

// TestMissingProposalsNamesSilentOrigins: the detector read-out. With a
// live view installed, a pending sequence names exactly the members whose
// proposal has not arrived (sorted); resolved or unknown sequences, and
// devices without a view, name nothing.
func TestMissingProposalsNamesSilentOrigins(t *testing.T) {
	loop, _, nd := groupTestDevice(t, 91)
	// No live view yet: membership names are unknown to the device.
	nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64})
	if err := loop.RunUntil(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := nd.MissingProposals(1); got != nil {
		t.Fatalf("no view installed, but MissingProposals = %v", got)
	}
	// Install the full view: B and C are now nameable.
	nd.SetLiveReplicas(1, []string{"A", "B", "C"})
	if got := nd.MissingProposals(1); len(got) != 2 || got[0] != "B" || got[1] != "C" {
		t.Fatalf("missing = %v, want [B C]", got)
	}
	nd.HandlePeerProposal("B", 1, 1, vtime.Virtual(30*sim.Millisecond))
	if got := nd.MissingProposals(1); len(got) != 1 || got[0] != "C" {
		t.Fatalf("missing after B = %v, want [C]", got)
	}
	nd.HandlePeerProposal("C", 1, 1, vtime.Virtual(31*sim.Millisecond))
	if err := loop.RunUntil(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if nd.Resolved() != 1 {
		t.Fatalf("resolved=%d", nd.Resolved())
	}
	if got := nd.MissingProposals(1); got != nil {
		t.Fatalf("resolved seq still names %v", got)
	}
	if got := nd.MissingProposals(99); got != nil {
		t.Fatalf("unknown seq names %v", got)
	}
}
