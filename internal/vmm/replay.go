package vmm

import (
	"fmt"
	"sort"
	"sync"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// This file implements the Sec. VII replica-replacement sketch: "the state
// of the crashed VM can be recovered from the other two replicas". Because
// a StopWatch guest is a deterministic function of (boot median, the
// median-agreed interrupt schedule), copying a survivor's state is
// equivalent to re-executing the guest against the recorded schedule. The
// cluster keeps that schedule in a Journal; NewReplacementRuntime replays
// it synchronously (state transfer takes no guest-visible time — it is the
// control plane's copy, not guest execution) and hands back a Runtime that
// is instruction-for-instruction level with the chosen survivor.

// JournalRecord is one resolved network delivery: the median-agreed virtual
// delivery time for an ingress sequence number, identical at every replica.
type JournalRecord struct {
	Seq     uint64
	Deliver vtime.Virtual
	Payload guest.Payload
}

// Journal is a guest's determinism log: every resolved network-interrupt
// delivery since boot. Replicas resolve identical medians, so the journal
// is replica-independent; the cluster records it once per guest and replica
// replacement replays it. Disk and timer interrupts need no journal — their
// delivery times are pure functions of the instruction stream (V+Δd and the
// virtual PIT).
//
// The mutex exists for the sharded simulation: a guest's replicas live on
// different shard loops and resolve within the same lookahead window, so
// their first-write-wins Records race in wall-clock order. The recorded
// content is identical either way (that is the determinism the journal
// logs), so the lock only makes the map access safe, not the outcome.
type Journal struct {
	mu   sync.Mutex
	recs map[uint64]JournalRecord
}

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{} // recs is lazily initialized on the first Record
}

// OnResolve implements ResolveSink: the journal wires directly into a
// NetDevice with no adapter allocation.
func (j *Journal) OnResolve(seq uint64, deliver vtime.Virtual, p guest.Payload) {
	j.Record(seq, deliver, p)
}

// Record stores a resolution. Replicas record identical values for a seq;
// the first write wins and later duplicates are ignored.
func (j *Journal) Record(seq uint64, deliver vtime.Virtual, p guest.Payload) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.recs[seq]; dup {
		return
	}
	if j.recs == nil {
		j.recs = make(map[uint64]JournalRecord)
	}
	j.recs[seq] = JournalRecord{Seq: seq, Deliver: deliver, Payload: p}
}

// Len returns the number of recorded deliveries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Sorted returns the records in delivery order (Deliver, then Seq) — the
// order the runtime's pending queue maintains.
func (j *Journal) Sorted() []JournalRecord {
	j.mu.Lock()
	out := make([]JournalRecord, 0, len(j.recs))
	for _, r := range j.recs {
		out = append(out, r)
	}
	j.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if out[i].Deliver != out[k].Deliver {
			return out[i].Deliver < out[k].Deliver
		}
		return out[i].Seq < out[k].Seq
	})
	return out
}

// NewReplacementRuntime reconstructs a replica on `host` by replaying the
// guest's journal up to targetInstr — a surviving replica's current
// instruction count. The returned runtime holds the same virtual clock,
// PIT, op-queue, app state, output digest and pending interrupt queues the
// survivor holds at that instruction count, and has not been started:
// the caller wires OnSend/OnPace/SendProposal and calls Start, after which
// the replica executes live and in lockstep.
//
// Replayed guest outputs are suppressed — the survivors already tunnelled
// those packets and the egress has forwarded them. Replayed disk requests
// do not touch the new host's disk model (the data arrives with the state
// copy); their interrupts still fire at the deterministic V+Δd points.
//
// Preconditions (returned as errors): the journal must hold every delivery
// the survivors resolved (quiesce the ingress first), epochs must be
// disabled (EpochInstr == 0 — epoch re-fits depend on peer samples the
// journal does not carry), and bootTimes must be the guest's original boot
// median inputs.
func NewReplacementRuntime(host *Host, guestID string, app guest.App, bootTimes []sim.Time, j *Journal, targetInstr int64) (*Runtime, error) {
	if j == nil {
		return nil, fmt.Errorf("%w: replacement needs a journal", ErrVMM)
	}
	if targetInstr < 0 {
		return nil, fmt.Errorf("%w: target instruction count %d", ErrVMM, targetInstr)
	}
	if host != nil && host.Config().EpochInstr > 0 {
		return nil, fmt.Errorf("%w: replica replacement requires epoch re-sync disabled (EpochInstr=0)", ErrVMM)
	}
	rt, err := NewRuntime(host, guestID, app, bootTimes)
	if err != nil {
		return nil, err
	}
	// Preload the full resolved schedule; deliveries due during the replay
	// fire at their deterministic exits, the rest stay pending exactly as
	// they are pending at the survivors.
	for _, rec := range j.Sorted() {
		rt.pendingNet = append(rt.pendingNet, netDelivery{deliverVirt: rec.Deliver, seq: rec.Seq, payload: rec.Payload})
	}
	rt.vm.Boot()
	for rt.ex.instr < targetInstr {
		boundary := (rt.ex.instr/rt.cfg.ExitEvery + 1) * rt.cfg.ExitEvery
		budget := boundary - rt.ex.instr
		if toIO, has := rt.vm.BranchesToNextIO(); has && toIO+1 < budget {
			budget = toIO + 1
		}
		partial := false
		if rem := targetInstr - rt.ex.instr; rem < budget {
			// The survivor materialized partial chunk progress (a pacing
			// pause or contention rescale); mirror the cut.
			budget, partial = rem, true
		}
		res := rt.vm.Step(budget)
		if res.Executed <= 0 {
			rt.Release()
			return nil, fmt.Errorf("%w: replay stalled at instr %d (target %d)", ErrVMM, rt.ex.instr, targetInstr)
		}
		rt.ex.instr += res.Executed
		if res.IO == nil && partial {
			continue // mid-chunk materialization: not an exit
		}
		rt.replayExit(res)
	}
	if rt.ex.instr != targetInstr {
		rt.Release()
		return nil, fmt.Errorf("%w: replay overshot target %d at %d", ErrVMM, targetInstr, rt.ex.instr)
	}
	return rt, nil
}

// replayExit mirrors Runtime.exit for synchronous replay: same virtual
// clock update and interrupt injection order, but outputs are suppressed,
// disk requests skip the real disk model, and pacing/epoch logic (which
// depends on live peers) does not run.
func (rt *Runtime) replayExit(res guest.StepResult) {
	virt := rt.vclock.At(rt.ex.instr)
	rt.virtLastExit = virt
	if res.IO != nil {
		if res.IO.IsSend() {
			rt.stats.ReplayedSends++
		} else {
			rt.diskSeq++
			rt.enqueueDisk(diskDelivery{
				deliverVirt: virt + rt.cfg.DeltaD,
				seq:         rt.diskSeq,
				readyReal:   rt.host.Loop().Now(),
				done:        guest.DiskDone{Tag: res.IO.Tag, Bytes: res.IO.Bytes, Write: res.IO.Write},
			})
		}
	}
	if n := rt.pit.Due(virt); n > 0 {
		rt.vm.DeliverTimerTicks(n)
	}
	rt.deliverDue(virt)
}
