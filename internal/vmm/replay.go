package vmm

import (
	"fmt"
	"sort"
	"sync"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// This file implements the Sec. VII replica-replacement sketch: "the state
// of the crashed VM can be recovered from the other two replicas". Because
// a StopWatch guest is a deterministic function of (boot median, the
// median-agreed interrupt schedule), copying a survivor's state is
// equivalent to re-executing the guest against the recorded schedule. The
// cluster keeps that schedule in a Journal; NewReplacementRuntime replays
// it synchronously (state transfer takes no guest-visible time — it is the
// control plane's copy, not guest execution) and hands back a Runtime that
// is instruction-for-instruction level with the chosen survivor.

// JournalRecord is one resolved network delivery: the median-agreed virtual
// delivery time for an ingress sequence number, identical at every replica.
type JournalRecord struct {
	Seq     uint64
	Deliver vtime.Virtual
	Payload guest.Payload
}

// Journal is a guest's determinism log: every resolved network-interrupt
// delivery since the last checkpoint, the per-epoch median samples (stars)
// applied by epoch re-sync, and the latest checkpoint. Replicas resolve
// identical medians and capture identical checkpoints at identical
// instruction counts, so the journal is replica-independent; the cluster
// records it once per guest and replica replacement replays it. Disk and
// timer interrupts need no journal — their delivery times are pure
// functions of the instruction stream (V+Δd and the virtual PIT).
//
// The mutex exists for the sharded simulation: a guest's replicas live on
// different shard loops and resolve within the same lookahead window, so
// their first-write-wins Records race in wall-clock order. The recorded
// content is identical either way (that is the determinism the journal
// logs), so the lock only makes the map access safe, not the outcome.
type Journal struct {
	mu    sync.Mutex
	recs  map[uint64]JournalRecord
	stars map[int64]vtime.EpochSample

	// ck is the latest accepted checkpoint; truncVirt fences stragglers —
	// a Record whose delivery the checkpoint already covers is dropped.
	ck        *Checkpoint
	truncVirt vtime.Virtual

	// Cumulative accounting (survives truncation).
	checkpoints    int
	truncatedRecs  int
	truncatedBytes int64
}

// JournalStats is a journal's telemetry snapshot.
type JournalStats struct {
	// Records is the retained (post-truncation) delivery-record count.
	Records int
	// Bytes estimates the retained size: records plus the checkpoint.
	Bytes int64
	// Stars is the retained epoch-star count.
	Stars int
	// Checkpoints is the cumulative accepted-checkpoint count.
	Checkpoints int
	// CheckpointInstr/CheckpointVirt locate the latest checkpoint (0 when
	// none has been captured).
	CheckpointInstr int64
	CheckpointVirt  vtime.Virtual
	// TruncatedRecords/TruncatedBytes count what checkpointing has dropped.
	TruncatedRecords int
	TruncatedBytes   int64
}

// journalRecBytes estimates one delivery record's retained size.
func journalRecBytes(r JournalRecord) int64 { return 56 + int64(r.Payload.Size) }

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{} // recs is lazily initialized on the first Record
}

// OnResolve implements ResolveSink: the journal wires directly into a
// NetDevice with no adapter allocation.
func (j *Journal) OnResolve(seq uint64, deliver vtime.Virtual, p guest.Payload) {
	j.Record(seq, deliver, p)
}

// Record stores a resolution. Replicas record identical values for a seq;
// the first write wins and later duplicates are ignored, as is a straggler
// whose delivery the latest checkpoint already covers.
func (j *Journal) Record(seq uint64, deliver vtime.Virtual, p guest.Payload) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ck != nil && deliver <= j.truncVirt {
		return
	}
	if _, dup := j.recs[seq]; dup {
		return
	}
	if j.recs == nil {
		j.recs = make(map[uint64]JournalRecord)
	}
	j.recs[seq] = JournalRecord{Seq: seq, Deliver: deliver, Payload: p}
}

// RecordEpochStar stores the (D*, R*) median sample an epoch adjustment
// selected — identical on every replica — so replacement replay can re-fit
// the virtual clock's slope at the same boundary deterministically. First
// write wins, like delivery records.
func (j *Journal) RecordEpochStar(epoch int64, star vtime.EpochSample) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.stars[epoch]; dup {
		return
	}
	if j.ck != nil && epoch < j.ck.EpochsApplied {
		return // the checkpoint's clock already folds this epoch in
	}
	if j.stars == nil {
		j.stars = make(map[int64]vtime.EpochSample)
	}
	j.stars[epoch] = star
}

// EpochStar returns the journaled star for an epoch, if recorded.
func (j *Journal) EpochStar(epoch int64) (vtime.EpochSample, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	s, ok := j.stars[epoch]
	return s, ok
}

// OfferCheckpoint installs ck as the journal's checkpoint if it is newer
// than the current one, truncating every delivery record and epoch star the
// checkpoint covers. It returns a checkpoint object the caller should keep
// as capture scratch (the previously retained checkpoint, or ck itself when
// rejected as a duplicate) — the ping-pong that makes steady-state
// checkpointing allocation-free. The returned value may be nil on the first
// accepted offer.
func (j *Journal) OfferCheckpoint(ck *Checkpoint) *Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ck != nil && j.ck.Instr >= ck.Instr {
		return ck // duplicate from a peer replica, or stale
	}
	old := j.ck
	j.ck = ck
	j.truncVirt = ck.Virt
	j.checkpoints++
	for seq, r := range j.recs {
		if r.Deliver <= ck.Virt {
			delete(j.recs, seq)
			j.truncatedRecs++
			j.truncatedBytes += journalRecBytes(r)
		}
	}
	for e := range j.stars {
		if e < ck.EpochsApplied {
			delete(j.stars, e)
		}
	}
	return old
}

// CopyCheckpoint copies the latest checkpoint into dst (reusing dst's
// slices) and reports whether one exists.
func (j *Journal) CopyCheckpoint(dst *Checkpoint) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ck == nil {
		return false
	}
	dst.copyFrom(j.ck)
	return true
}

// Len returns the number of retained delivery records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Stats returns the journal's telemetry snapshot.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JournalStats{
		Records:          len(j.recs),
		Stars:            len(j.stars),
		Checkpoints:      j.checkpoints,
		TruncatedRecords: j.truncatedRecs,
		TruncatedBytes:   j.truncatedBytes,
	}
	for _, r := range j.recs {
		s.Bytes += journalRecBytes(r)
	}
	if j.ck != nil {
		s.CheckpointInstr = j.ck.Instr
		s.CheckpointVirt = j.ck.Virt
		s.Bytes += j.ck.sizeBytes()
	}
	return s
}

// Sorted returns the records in delivery order (Deliver, then Seq) — the
// order the runtime's pending queue maintains.
func (j *Journal) Sorted() []JournalRecord {
	j.mu.Lock()
	out := make([]JournalRecord, 0, len(j.recs))
	for _, r := range j.recs {
		out = append(out, r)
	}
	j.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if out[i].Deliver != out[k].Deliver {
			return out[i].Deliver < out[k].Deliver
		}
		return out[i].Seq < out[k].Seq
	})
	return out
}

// NewReplacementRuntime reconstructs a replica on `host` by restoring the
// journal's latest checkpoint (when one exists) and replaying the journal
// suffix up to targetInstr — a surviving replica's current instruction
// count. The returned runtime holds the same virtual clock, PIT, op-queue,
// app state, output digest and pending interrupt queues the survivor holds
// at that instruction count, and has not been started: the caller wires
// OnSend/OnPace/SendProposal and calls Start, after which the replica
// executes live and in lockstep.
//
// Replayed guest outputs are suppressed — the survivors already tunnelled
// those packets and the egress has forwarded them. Replayed disk requests
// do not touch the new host's disk model (the data arrives with the state
// copy); their interrupts still fire at the deterministic V+Δd points.
//
// With epoch re-sync enabled (EpochInstr > 0), each boundary crossed during
// replay re-fits the clock from the journaled (D*, R*) star exactly as the
// survivors did live. A boundary whose star is not yet journaled is one the
// survivors are still paused at; replay stops there and the cluster joins
// the fresh replica to the barrier (EpochCoordinator.RestoreAt).
//
// When the dead replica checkpointed ahead of every survivor (it led the
// pace window across a checkpoint boundary before freezing), the checkpoint
// state is already past targetInstr; the replica is restored to the
// checkpoint and simply starts ahead — a legal paced state the survivors
// catch up to.
//
// Precondition (returned as an error): the journal must hold every delivery
// the survivors resolved since its checkpoint (quiesce the ingress first),
// and bootTimes must be the guest's original boot median inputs.
func NewReplacementRuntime(host *Host, guestID string, app guest.App, bootTimes []sim.Time, j *Journal, targetInstr int64) (*Runtime, error) {
	if j == nil {
		return nil, fmt.Errorf("%w: replacement needs a journal", ErrVMM)
	}
	if targetInstr < 0 {
		return nil, fmt.Errorf("%w: target instruction count %d", ErrVMM, targetInstr)
	}
	rt, err := NewRuntime(host, guestID, app, bootTimes)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	restored := j.CopyCheckpoint(&ck)
	if restored {
		if err := rt.restoreCheckpoint(&ck); err != nil {
			rt.Release()
			return nil, fmt.Errorf("%w: restore checkpoint at instr %d: %v", ErrVMM, ck.Instr, err)
		}
		rt.stats.RestoredInstr = ck.Instr
		if ck.Instr > targetInstr {
			targetInstr = ck.Instr
		}
	} else {
		rt.vm.Boot()
	}
	// Preload the resolved schedule the checkpoint does not cover:
	// deliveries due during the replay fire at their deterministic exits,
	// the rest stay pending exactly as they are pending at the survivors.
	// Records still pending at the checkpoint were restored with it, so a
	// suffix record is skipped when the pending queue already holds its seq.
	pendingSeqs := make(map[uint64]bool, len(rt.pendingNet))
	for _, d := range rt.pendingNet {
		pendingSeqs[d.seq] = true
	}
	for _, rec := range j.Sorted() {
		if restored && (rec.Deliver <= ck.Virt || pendingSeqs[rec.Seq]) {
			continue
		}
		rt.pendingNet = append(rt.pendingNet, netDelivery{deliverVirt: rec.Deliver, seq: rec.Seq, payload: rec.Payload})
	}
	sort.Slice(rt.pendingNet, func(i, k int) bool {
		if rt.pendingNet[i].deliverVirt != rt.pendingNet[k].deliverVirt {
			return rt.pendingNet[i].deliverVirt < rt.pendingNet[k].deliverVirt
		}
		return rt.pendingNet[i].seq < rt.pendingNet[k].seq
	})
	rt.stats.ReplayedRecords = len(rt.pendingNet)
	// applyStars re-fits the clock at every epoch boundary replay has
	// crossed whose star is journaled — the same first-exit-at-or-past-the-
	// boundary points live execution adjusted at.
	applyStars := func() error {
		epochInstr := rt.cfg.EpochInstr
		if epochInstr <= 0 {
			return nil
		}
		for {
			epoch := rt.vclock.EpochBase() / epochInstr
			if rt.ex.instr < (epoch+1)*epochInstr {
				return nil
			}
			star, ok := j.EpochStar(epoch)
			if !ok {
				if rt.ex.instr < targetInstr {
					return fmt.Errorf("%w: journal missing epoch %d star at instr %d (target %d)",
						ErrVMM, epoch, rt.ex.instr, targetInstr)
				}
				return nil // survivors are paused at this barrier; join it after wiring
			}
			if err := rt.vclock.AdjustEpoch(epochInstr, []vtime.EpochSample{star}); err != nil {
				return err
			}
		}
	}
	if err := applyStars(); err != nil {
		rt.Release()
		return nil, err
	}
	for rt.ex.instr < targetInstr {
		boundary := (rt.ex.instr/rt.cfg.ExitEvery + 1) * rt.cfg.ExitEvery
		budget := boundary - rt.ex.instr
		if toIO, has := rt.vm.BranchesToNextIO(); has && toIO+1 < budget {
			budget = toIO + 1
		}
		partial := false
		if rem := targetInstr - rt.ex.instr; rem < budget {
			// The survivor materialized partial chunk progress (a pacing
			// pause or contention rescale); mirror the cut.
			budget, partial = rem, true
		}
		res := rt.vm.Step(budget)
		if res.Executed <= 0 {
			rt.Release()
			return nil, fmt.Errorf("%w: replay stalled at instr %d (target %d)", ErrVMM, rt.ex.instr, targetInstr)
		}
		rt.ex.instr += res.Executed
		if res.IO == nil && partial {
			continue // mid-chunk materialization: not an exit
		}
		rt.replayExit(res)
		if err := applyStars(); err != nil {
			rt.Release()
			return nil, err
		}
	}
	if rt.ex.instr != targetInstr {
		rt.Release()
		return nil, fmt.Errorf("%w: replay overshot target %d at %d", ErrVMM, targetInstr, rt.ex.instr)
	}
	return rt, nil
}

// replayExit mirrors Runtime.exit for synchronous replay: same virtual
// clock update and interrupt injection order, but outputs are suppressed,
// disk requests skip the real disk model, and pacing/epoch logic (which
// depends on live peers) does not run.
func (rt *Runtime) replayExit(res guest.StepResult) {
	virt := rt.vclock.At(rt.ex.instr)
	rt.virtLastExit = virt
	if res.IO != nil {
		if res.IO.IsSend() {
			rt.stats.ReplayedSends++
		} else {
			rt.diskSeq++
			rt.enqueueDisk(diskDelivery{
				deliverVirt: virt + rt.cfg.DeltaD,
				seq:         rt.diskSeq,
				readyReal:   rt.host.Loop().Now(),
				done:        guest.DiskDone{Tag: res.IO.Tag, Bytes: res.IO.Bytes, Write: res.IO.Write},
			})
		}
	}
	if n := rt.pit.Due(virt); n > 0 {
		rt.vm.DeliverTimerTicks(n)
	}
	rt.deliverDue(virt)
}
