package vmm

import (
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
)

// Unit tests for the exec engine's deterministic-exit-point invariant under
// rescaling and pausing.

// chunkApp computes a long burst, then one send, then idles.
type chunkApp struct{}

func (chunkApp) Boot(c guest.Ctx) {
	c.Compute(1_000_000)
	c.Send("sink", 64, "done")
}
func (chunkApp) OnPacket(c guest.Ctx, p guest.Payload)    {}
func (chunkApp) OnDiskDone(c guest.Ctx, d guest.DiskDone) {}
func (chunkApp) OnTimer(c guest.Ctx, tag string)          {}

// exitRecorder wraps a runtime and records exit instruction counts.
func buildExecProbe(t *testing.T, rate int64) (*sim.Loop, *Runtime, *[]int64) {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(99)
	cfg := DefaultConfig()
	cfg.BaseRate = rate
	h, err := NewHost("h", loop, src.Stream("h"), sim.NewClock(0, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(h, "g", chunkApp{}, []sim.Time{0})
	if err != nil {
		t.Fatal(err)
	}
	var exits []int64
	origExit := rt.ex.onExit
	rt.ex.onExit = func(res guest.StepResult) {
		exits = append(exits, rt.ex.instr)
		origExit(res)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	return loop, rt, &exits
}

func TestExitPointsAreAbsoluteBoundaries(t *testing.T) {
	loop, rt, exits := buildExecProbe(t, 1_000_000_000)
	rt.Start()
	if err := loop.RunUntil(3 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	exitEvery := rt.cfg.ExitEvery
	sendInstr := int64(1_000_001) // compute + the I/O instruction
	for _, e := range *exits {
		if e%exitEvery != 0 && e != sendInstr {
			t.Fatalf("exit at %d: neither a boundary of %d nor the I/O point %d",
				e, exitEvery, sendInstr)
		}
	}
	if len(*exits) < 5 {
		t.Fatalf("too few exits: %v", exits)
	}
}

func TestExitPointsInvariantUnderRescale(t *testing.T) {
	// Run once undisturbed, once with a sibling guest churning busy/idle
	// (forcing rescales at odd real times): exit instruction sequences of
	// the probe guest must be identical.
	collect := func(withChurn bool) []int64 {
		loop, rt, exits := buildExecProbe(t, 1_000_000_000)
		if withChurn {
			churn, err := NewRuntime(rt.Host(), "churn", loadApp{}, []sim.Time{0})
			if err != nil {
				t.Fatal(err)
			}
			churn.OnSend = SendSinkFunc(func(a guest.IOAction) {})
			churn.Start()
		}
		rt.Start()
		if err := loop.RunUntil(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		out := make([]int64, len(*exits))
		copy(out, *exits)
		return out
	}
	calm := collect(false)
	churned := collect(true)
	// The churned run progresses more slowly in real time (shared CPU), so
	// compare the common prefix.
	n := len(calm)
	if len(churned) < n {
		n = len(churned)
	}
	if n < 5 {
		t.Fatalf("too few comparable exits: %d vs %d", len(calm), len(churned))
	}
	for i := 0; i < n; i++ {
		if calm[i] != churned[i] {
			t.Fatalf("exit %d moved under contention: %d vs %d", i, calm[i], churned[i])
		}
	}
}

func TestPauseResumePreservesTrajectory(t *testing.T) {
	loop, rt, exits := buildExecProbe(t, 1_000_000_000)
	rt.Start()
	// Pause at an arbitrary real time mid-chunk, resume later.
	loop.At(137*sim.Microsecond, "pause", func() { rt.ex.pause() })
	loop.At(900*sim.Microsecond, "resume", func() { rt.ex.resume() })
	if err := loop.RunUntil(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	exitEvery := rt.cfg.ExitEvery
	sendInstr := int64(1_000_001)
	for _, e := range *exits {
		if e%exitEvery != 0 && e != sendInstr {
			t.Fatalf("pause/resume moved an exit to %d", e)
		}
	}
	// The guest finished its program despite the pause.
	if rt.VM().Stats().PacketsSent != 1 {
		t.Fatal("send lost across pause/resume")
	}
}

func TestDoublePauseAndResumeAreIdempotent(t *testing.T) {
	loop, rt, _ := buildExecProbe(t, 1_000_000_000)
	rt.Start()
	loop.At(100*sim.Microsecond, "p1", func() { rt.ex.pause(); rt.ex.pause() })
	loop.At(200*sim.Microsecond, "r1", func() { rt.ex.resume(); rt.ex.resume() })
	if err := loop.RunUntil(3 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rt.VM().Stats().PacketsSent != 1 {
		t.Fatal("execution did not complete after double pause/resume")
	}
}

func TestStopHaltsExecution(t *testing.T) {
	loop, rt, _ := buildExecProbe(t, 1_000_000_000)
	rt.Start()
	loop.At(50*sim.Microsecond, "stop", func() { rt.Stop() })
	if err := loop.RunUntil(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := rt.Instr()
	if err := loop.RunUntil(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rt.Instr() != before {
		t.Fatal("guest advanced after Stop")
	}
	// Resume after stop is a no-op (stopped wins).
	rt.ex.resume()
	if err := loop.RunUntil(12 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rt.Instr() != before {
		t.Fatal("guest advanced after Stop+resume")
	}
}
