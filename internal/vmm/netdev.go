package vmm

import (
	"fmt"
	"slices"
	"sort"

	"stopwatch/internal/guest"
	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// DeliveryPolicy selects how a NetDevice turns proposals into a delivery
// time. PolicyMedian is StopWatch; PolicyOwn models the prior-work
// replication designs the paper argues against (Sec. II: "all prior systems
// ... permit one replica to dictate timing-related events"), where each
// replica delivers at its own local timing — used only for ablations.
type DeliveryPolicy int

// Delivery policies.
const (
	PolicyMedian DeliveryPolicy = iota + 1
	PolicyOwn
)

// NetDevice is the StopWatch network device model for one guest replica
// (Fig. 3): it buffers inbound packets hidden from the guest, forms a
// proposed delivery time virt_lastexit+Δn, exchanges proposals with the
// peer replicas' device models, and hands the median to the runtime.
//
// The device carries a live-group view (SetLiveReplicas) so a machine whose
// VMM died does not stall the median forever: when the cluster reconfigures
// the group, pending sequences are re-proposed among the live members and
// resolve on the live set (upper median for the degraded even counts), and
// proposals from dead members or earlier views are discarded. Each view
// change is identified by a monotonically increasing view number that the
// cluster installs in every live member in the same simulated instant, so
// the re-proposal round stays deterministic across replicas.
type NetDevice struct {
	rt       *Runtime
	replicas int    // total replica count (3, or 5 for the Sec. IX ablation)
	self     string // this replica's origin (host name) in the proposal map

	// Policy defaults to PolicyMedian.
	Policy DeliveryPolicy

	props map[uint64]*propState

	// live, when non-nil, is the group view: the origins (host names,
	// this replica's own included) currently believed alive. nil means the
	// full group of `replicas` members is assumed live. A slice, not a map:
	// groups are 3 (or 5) wide, and the backing array is reused across view
	// changes.
	live []string
	// view is the group-view number proposals are exchanged under; it only
	// moves via SetLiveReplicas and must match across live members.
	view uint64

	// Resolved-sequence watermark: every seq <= resolvedLo has resolved
	// (or predates this device's join); resolvedHi holds resolved seqs
	// above the watermark awaiting compaction. Straggler proposals for
	// resolved seqs are dropped instead of resurrecting a propState that
	// could never resolve and would wedge quiescence forever.
	resolvedLo uint64
	resolvedHi map[uint64]bool

	// resRing is a bounded ring of recent (seq, deliver) resolutions — what
	// the device exports during a pre-view-commit reconcile round so a
	// survivor that lost the dead member's vote can adopt the decision
	// instead of wedging. An inline array: recording is one store on the
	// resolution hot path, and the device allocates nothing for it.
	resRing [resRingCap]resolvedRec
	resNext int

	// forced holds delivery decisions adopted from a peer's reconcile
	// export for sequences whose payload has not arrived here yet; the
	// payload's eventual arrival delivers at the adopted time instead of
	// proposing. Survives view changes — the decision is final.
	forced map[uint64]vtime.Virtual

	// ProposalDeadline, when positive, arms a host-loop timer per proposed
	// sequence; OnStall fires if the sequence has not resolved by then —
	// the hook a failure detector uses to notice a dead peer VMM. Disabled
	// (zero) by default.
	ProposalDeadline sim.Time
	// OnStall observes sequences that missed their proposal deadline.
	OnStall func(seq uint64)

	// SendProposal transmits this replica's proposal for an ingress
	// sequence number, under the given group view, to the peer device
	// models (wired by the cluster; an interface so the wiring needs no
	// per-replica closure).
	SendProposal ProposalSink
	// OnPropose observes this replica's own proposals (experiments).
	OnPropose func(seq uint64, v vtime.Virtual)
	// OnResolve observes each resolved delivery decision — the cluster
	// journals these for replica replacement (all replicas resolve
	// identical medians, so any replica's stream is authoritative).
	OnResolve ResolveSink

	// LatencyHist, when non-nil, observes the loop-time latency from this
	// replica's own proposal (the last one, if a view change re-proposed)
	// to the sequence's median resolution. Observation is passive — the
	// histogram never feeds back into device behavior.
	LatencyHist *metrics.Histogram

	proposed uint64
	resolved uint64

	staleDrops uint64 // proposals for already-resolved seqs
	dupDrops   uint64 // second proposal from one origin for one seq
	viewDrops  uint64 // proposals from an earlier view or a dead origin

	// Steady-state scratch, reused across packets so the per-resolution
	// hot path allocates nothing: freed propStates, freed inbound work
	// items, the median slice, and the re-propose seq slice.
	freeStates []*propState
	freeWork   []*inboundWork
	medScratch []vtime.Virtual
	seqScratch []uint64
}

// ProposalSink consumes a replica's delivery-time proposals.
type ProposalSink interface {
	SendProposal(view, seq uint64, v vtime.Virtual)
}

// ProposalSinkFunc adapts a function to ProposalSink (tests, experiments).
type ProposalSinkFunc func(view, seq uint64, v vtime.Virtual)

// SendProposal implements ProposalSink.
func (f ProposalSinkFunc) SendProposal(view, seq uint64, v vtime.Virtual) { f(view, seq, v) }

// ResolveSink consumes resolved delivery decisions (the determinism
// journal).
type ResolveSink interface {
	OnResolve(seq uint64, deliver vtime.Virtual, p guest.Payload)
}

// ResolveSinkFunc adapts a function to ResolveSink (tests, experiments).
type ResolveSinkFunc func(seq uint64, deliver vtime.Virtual, p guest.Payload)

// OnResolve implements ResolveSink.
func (f ResolveSinkFunc) OnResolve(seq uint64, deliver vtime.Virtual, p guest.Payload) {
	f(seq, deliver, p)
}

// propState accumulates one sequence's proposals, keyed by origin so a
// duplicated or replayed proposal from one peer can never displace (or
// stand in for) another's. States are pooled per device: on resolution the
// state is cleared (map retained) and recycled for a later sequence.
type propState struct {
	payload    guest.Payload
	hasPayload bool
	props      map[string]vtime.Virtual
	own        bool
	ownVirt    vtime.Virtual
	proposedAt sim.Time // loop time of this replica's own (last) proposal
}

// inboundWork carries one inbound packet through the Dom0 processing-delay
// timer without a per-packet closure; items are pooled per device.
type inboundWork struct {
	seq uint64
	p   guest.Payload
}

// NewNetDevice builds the device model for a runtime participating in a
// group of `replicas` total replicas.
func NewNetDevice(rt *Runtime, replicas int) (*NetDevice, error) {
	if rt == nil {
		return nil, fmt.Errorf("%w: nil runtime", ErrVMM)
	}
	if replicas < 1 || replicas%2 == 0 {
		return nil, fmt.Errorf("%w: replica count %d must be odd", ErrVMM, replicas)
	}
	// props and resolvedHi are lazily initialized on first use: a freshly
	// wired device (guest admission is itself a hot path under churn)
	// allocates nothing until traffic arrives.
	return &NetDevice{
		rt:       rt,
		replicas: replicas,
		self:     rt.Host().Name(),
		Policy:   PolicyMedian,
	}, nil
}

// HandleInbound accepts a packet replicated by the ingress node. After the
// host's device-model processing delay, the VMM reads the guest's virtual
// time as of its last VM exit, adds Δn, and multicasts the proposal.
func (nd *NetDevice) HandleInbound(seq uint64, p guest.Payload) {
	host := nd.rt.Host()
	if host.Failed() {
		return // a dead VMM's device model processes nothing
	}
	if nd.isResolved(seq) {
		nd.staleDrops++
		return
	}
	host.ioBegin()
	var w *inboundWork
	if k := len(nd.freeWork); k > 0 {
		w = nd.freeWork[k-1]
		nd.freeWork[k-1] = nil
		nd.freeWork = nd.freeWork[:k-1]
	} else {
		w = &inboundWork{}
	}
	w.seq, w.p = seq, p
	host.Loop().AfterTimer(host.ioDelay(), "netdev:process", processTimer, nd, w, 0)
}

// processTimer completes the Dom0 device-model processing delay for one
// inbound packet: record the payload, form this replica's proposal, and try
// to resolve.
func processTimer(a, b any, _ uint64) {
	nd := a.(*NetDevice)
	w := b.(*inboundWork)
	seq, p := w.seq, w.p
	w.p = guest.Payload{}
	nd.freeWork = append(nd.freeWork, w)
	nd.rt.Host().ioEnd()
	if nd.isResolved(seq) {
		nd.staleDrops++
		return
	}
	st := nd.state(seq)
	if !st.hasPayload {
		st.payload = p
		st.hasPayload = true
	}
	// A reconcile round may have adopted this sequence's delivery decision
	// before the payload arrived: deliver at the agreed time, don't propose.
	if v, ok := nd.forced[seq]; ok {
		delete(nd.forced, seq)
		nd.adoptResolution(seq, st, v)
		return
	}
	if !st.own {
		st.own = true
		nd.propose(seq, st)
	}
	nd.maybeResolve(seq, st)
}

// propose forms this replica's delivery-time proposal for seq at the current
// virtual time and sends it to the peers under the current view.
func (nd *NetDevice) propose(seq uint64, st *propState) {
	prop := nd.rt.VirtAtLastExit() + nd.rt.cfg.DeltaN
	st.ownVirt = prop
	st.proposedAt = nd.rt.Host().Loop().Now()
	st.props[nd.self] = prop
	nd.proposed++
	if nd.OnPropose != nil {
		nd.OnPropose(seq, prop)
	}
	if nd.SendProposal != nil {
		nd.SendProposal.SendProposal(nd.view, seq, prop)
	}
	nd.armDeadline(seq)
}

// HandlePeerProposal records a proposal from the peer device model on host
// `origin` under group view `view`. Stragglers for already-resolved
// sequences, duplicates from one origin, and proposals from dead members or
// stale views are dropped.
func (nd *NetDevice) HandlePeerProposal(origin string, view, seq uint64, v vtime.Virtual) {
	if nd.isResolved(seq) {
		nd.staleDrops++
		return
	}
	if view != nd.view || (nd.live != nil && !nd.liveHas(origin)) {
		nd.viewDrops++
		return
	}
	st := nd.state(seq)
	if _, dup := st.props[origin]; dup {
		nd.dupDrops++
		return
	}
	st.props[origin] = v
	nd.maybeResolve(seq, st)
}

// SetLiveReplicas installs a new group view: `origins` are the host names
// currently believed alive (this replica's own host included), `view` the
// group-synchronized view number. Every pending sequence is re-proposed
// from scratch under the new view — the proposals of the previous view are
// discarded wholesale, so all live members resolve each sequence from the
// same proposal multiset, and the fresh Δn offset keeps the agreed delivery
// time in every live replica's future (no synchrony divergence from the
// stall window). The cluster must install the same (view, origins) in every
// live member within one simulated instant.
func (nd *NetDevice) SetLiveReplicas(view uint64, origins []string) {
	nd.live = append(nd.live[:0], origins...)
	nd.view = view
	seqs := nd.seqScratch[:0]
	for seq := range nd.props {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		st := nd.props[seq]
		clear(st.props)
		if st.own {
			nd.propose(seq, st)
		}
		nd.maybeResolve(seq, st)
	}
	nd.seqScratch = seqs[:0]
}

// View returns the current group-view number.
func (nd *NetDevice) View() uint64 { return nd.view }

// liveCount returns the proposal count a resolution needs: the live-set
// size under an installed view, the full group otherwise.
func (nd *NetDevice) liveCount() int {
	if nd.live != nil {
		return len(nd.live)
	}
	return nd.replicas
}

// liveHas reports membership in the installed live view (linear: the view
// is at most the replica group width).
func (nd *NetDevice) liveHas(origin string) bool {
	for _, o := range nd.live {
		if o == origin {
			return true
		}
	}
	return false
}

func (nd *NetDevice) state(seq uint64) *propState {
	if nd.props == nil {
		nd.props = make(map[uint64]*propState)
	}
	st, ok := nd.props[seq]
	if !ok {
		if k := len(nd.freeStates); k > 0 {
			st = nd.freeStates[k-1]
			nd.freeStates[k-1] = nil
			nd.freeStates = nd.freeStates[:k-1]
		} else {
			st = &propState{props: make(map[string]vtime.Virtual)}
		}
		nd.props[seq] = st
	}
	return st
}

// releaseState clears and recycles a resolved sequence's state.
func (nd *NetDevice) releaseState(st *propState) {
	clear(st.props)
	st.payload = guest.Payload{}
	st.hasPayload = false
	st.own = false
	st.ownVirt = 0
	st.proposedAt = 0
	nd.freeStates = append(nd.freeStates, st)
}

func (nd *NetDevice) maybeResolve(seq uint64, st *propState) {
	if !st.hasPayload || !st.own {
		return
	}
	var deliver vtime.Virtual
	switch nd.Policy {
	case PolicyOwn:
		// Prior-work ablation: the local replica dictates its own timing.
		deliver = st.ownVirt
	default:
		if len(st.props) < nd.liveCount() {
			return
		}
		vs := nd.medScratch[:0]
		for _, v := range st.props {
			vs = append(vs, v)
		}
		deliver = groupMedianInPlace(vs)
		nd.medScratch = vs[:0]
	}
	nd.resolved++
	if nd.LatencyHist != nil && st.own {
		nd.LatencyHist.Observe(int64(nd.rt.Host().Loop().Now() - st.proposedAt))
	}
	nd.finishResolve(seq, st, deliver)
}

// finishResolve commits a delivery decision for seq: watermark, resolution
// ring, journal hook and runtime delivery. Shared by the median path and
// reconcile adoption.
func (nd *NetDevice) finishResolve(seq uint64, st *propState, deliver vtime.Virtual) {
	nd.markResolved(seq)
	nd.resRing[nd.resNext] = resolvedRec{seq: seq, deliver: deliver}
	nd.resNext = (nd.resNext + 1) % resRingCap
	delete(nd.props, seq)
	payload := st.payload
	nd.releaseState(st)
	if nd.OnResolve != nil {
		nd.OnResolve.OnResolve(seq, deliver, payload)
	}
	nd.rt.EnqueueNetDelivery(seq, deliver, payload)
}

// adoptResolution installs a peer-resolved delivery decision for a sequence
// whose payload is present: the decision was reached by a full median at the
// exporting survivor, so it is adopted verbatim instead of re-proposed.
func (nd *NetDevice) adoptResolution(seq uint64, st *propState, deliver vtime.Virtual) {
	nd.resolved++
	nd.finishResolve(seq, st, deliver)
}

// markResolved records seq as resolved, compacting into the watermark.
func (nd *NetDevice) markResolved(seq uint64) {
	switch {
	case seq == nd.resolvedLo+1:
		nd.resolvedLo++
		for nd.resolvedHi[nd.resolvedLo+1] {
			nd.resolvedLo++
			delete(nd.resolvedHi, nd.resolvedLo)
		}
	case seq > nd.resolvedLo:
		if nd.resolvedHi == nil {
			nd.resolvedHi = make(map[uint64]bool)
		}
		nd.resolvedHi[seq] = true
	}
}

// isResolved reports whether seq has already resolved (or predates this
// device's join point).
func (nd *NetDevice) isResolved(seq uint64) bool {
	return seq <= nd.resolvedLo || nd.resolvedHi[seq]
}

// PrimeResolved declares every sequence <= seq already handled — how a
// replacement replica's device joins an in-progress ingress stream without
// treating the stream's history (resolved by its predecessors and replayed
// from the journal) as forever-pending.
func (nd *NetDevice) PrimeResolved(seq uint64) {
	if seq > nd.resolvedLo {
		nd.resolvedLo = seq
	}
	for s := range nd.resolvedHi {
		if s <= nd.resolvedLo {
			delete(nd.resolvedHi, s)
		}
	}
	for nd.resolvedHi[nd.resolvedLo+1] {
		nd.resolvedLo++
		delete(nd.resolvedHi, nd.resolvedLo)
	}
	for s, st := range nd.props {
		if s <= nd.resolvedLo {
			delete(nd.props, s)
			nd.releaseState(st)
		}
	}
}

// MissingProposals names the group members whose proposal for a pending
// sequence has not arrived — what a failure detector reads when OnStall
// fires to turn "this sequence stalled" into "these machines are silent".
// It requires an installed live view (the cluster installs one at every
// deploy and reconfiguration); without one the device knows only peer
// counts, not membership, and reports nothing. Resolved or unknown
// sequences report nothing. The result is sorted for determinism.
func (nd *NetDevice) MissingProposals(seq uint64) []string {
	if nd.live == nil || nd.isResolved(seq) {
		return nil
	}
	st, ok := nd.props[seq]
	if !ok {
		return nil
	}
	var missing []string
	for _, origin := range nd.live {
		if _, have := st.props[origin]; !have {
			missing = append(missing, origin)
		}
	}
	sort.Strings(missing)
	return missing
}

// armDeadline schedules the per-seq proposal deadline on the host loop.
func (nd *NetDevice) armDeadline(seq uint64) {
	if nd.ProposalDeadline <= 0 {
		return
	}
	nd.rt.Host().Loop().AfterTimer(nd.ProposalDeadline, "netdev:deadline", deadlineTimer, nd, nil, seq)
}

// deadlineTimer fires a proposal deadline: report the sequence to the stall
// hook unless it resolved in time.
func deadlineTimer(a, _ any, seq uint64) {
	nd := a.(*NetDevice)
	if !nd.isResolved(seq) && nd.OnStall != nil {
		nd.OnStall(seq)
	}
}

// Pending returns the number of unresolved inbound packets (tests).
func (nd *NetDevice) Pending() int { return len(nd.props) }

// Proposed and Resolved report protocol counters.
func (nd *NetDevice) Proposed() uint64 { return nd.proposed }

// Resolved reports how many packets reached a median decision here.
func (nd *NetDevice) Resolved() uint64 { return nd.resolved }

// StaleDrops reports proposals dropped for already-resolved sequences.
func (nd *NetDevice) StaleDrops() uint64 { return nd.staleDrops }

// DuplicateDrops reports second-proposal-per-origin drops.
func (nd *NetDevice) DuplicateDrops() uint64 { return nd.dupDrops }

// ViewDrops reports stale-view and dead-origin proposal drops.
func (nd *NetDevice) ViewDrops() uint64 { return nd.viewDrops }

// GroupMedian returns the delivery time agreed from a proposal set: the
// median for the odd counts of a healthy group, and the upper median (the
// later of the two middle values) for the even counts of a degraded group —
// the deterministic 2-of-3 tie-rule, biased into the future and so away
// from synchrony violations. It panics on an empty set; callers guarantee
// at least the local proposal is present.
func GroupMedian(vs []vtime.Virtual) vtime.Virtual {
	s := make([]vtime.Virtual, len(vs))
	copy(s, vs)
	return groupMedianInPlace(s)
}

// groupMedianInPlace is GroupMedian over a caller-owned scratch slice: it
// sorts in place and allocates nothing (slices.Sort, unlike sort.Slice,
// needs no closure or reflection scratch).
func groupMedianInPlace(s []vtime.Virtual) vtime.Virtual {
	slices.Sort(s)
	return s[len(s)/2]
}
