package vmm

import (
	"fmt"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/vtime"
)

// DeliveryPolicy selects how a NetDevice turns proposals into a delivery
// time. PolicyMedian is StopWatch; PolicyOwn models the prior-work
// replication designs the paper argues against (Sec. II: "all prior systems
// ... permit one replica to dictate timing-related events"), where each
// replica delivers at its own local timing — used only for ablations.
type DeliveryPolicy int

// Delivery policies.
const (
	PolicyMedian DeliveryPolicy = iota + 1
	PolicyOwn
)

// NetDevice is the StopWatch network device model for one guest replica
// (Fig. 3): it buffers inbound packets hidden from the guest, forms a
// proposed delivery time virt_lastexit+Δn, exchanges proposals with the
// peer replicas' device models, and hands the median to the runtime.
type NetDevice struct {
	rt       *Runtime
	replicas int // total replica count (3, or 5 for the Sec. IX ablation)

	// Policy defaults to PolicyMedian.
	Policy DeliveryPolicy

	props map[uint64]*propState

	// SendProposal transmits this replica's proposal for an ingress
	// sequence number to the peer device models (wired by the cluster).
	SendProposal func(seq uint64, v vtime.Virtual)
	// OnPropose observes this replica's own proposals (experiments).
	OnPropose func(seq uint64, v vtime.Virtual)
	// OnResolve observes each resolved delivery decision — the cluster
	// journals these for replica replacement (all replicas resolve
	// identical medians, so any replica's stream is authoritative).
	OnResolve func(seq uint64, deliver vtime.Virtual, p guest.Payload)

	proposed uint64
	resolved uint64
}

type propState struct {
	payload  *guest.Payload
	proposal []vtime.Virtual
	own      bool
	ownVirt  vtime.Virtual
	done     bool
}

// NewNetDevice builds the device model for a runtime participating in a
// group of `replicas` total replicas.
func NewNetDevice(rt *Runtime, replicas int) (*NetDevice, error) {
	if rt == nil {
		return nil, fmt.Errorf("%w: nil runtime", ErrVMM)
	}
	if replicas < 1 || replicas%2 == 0 {
		return nil, fmt.Errorf("%w: replica count %d must be odd", ErrVMM, replicas)
	}
	return &NetDevice{
		rt:       rt,
		replicas: replicas,
		Policy:   PolicyMedian,
		props:    make(map[uint64]*propState),
	}, nil
}

// HandleInbound accepts a packet replicated by the ingress node. After the
// host's device-model processing delay, the VMM reads the guest's virtual
// time as of its last VM exit, adds Δn, and multicasts the proposal.
func (nd *NetDevice) HandleInbound(seq uint64, p guest.Payload) {
	host := nd.rt.Host()
	host.ioBegin()
	host.Loop().After(host.ioDelay(), "netdev:process", func() {
		host.ioEnd()
		st := nd.state(seq)
		if st.payload == nil {
			cp := p
			st.payload = &cp
		}
		if !st.own {
			st.own = true
			prop := nd.rt.VirtAtLastExit() + nd.rt.cfg.DeltaN
			st.ownVirt = prop
			st.proposal = append(st.proposal, prop)
			nd.proposed++
			if nd.OnPropose != nil {
				nd.OnPropose(seq, prop)
			}
			if nd.SendProposal != nil {
				nd.SendProposal(seq, prop)
			}
		}
		nd.maybeResolve(seq, st)
	})
}

// HandlePeerProposal records a proposal from a peer replica's device model.
func (nd *NetDevice) HandlePeerProposal(seq uint64, v vtime.Virtual) {
	st := nd.state(seq)
	st.proposal = append(st.proposal, v)
	nd.maybeResolve(seq, st)
}

func (nd *NetDevice) state(seq uint64) *propState {
	st, ok := nd.props[seq]
	if !ok {
		st = &propState{}
		nd.props[seq] = st
	}
	return st
}

func (nd *NetDevice) maybeResolve(seq uint64, st *propState) {
	if st.done || st.payload == nil || !st.own {
		return
	}
	var deliver vtime.Virtual
	switch nd.Policy {
	case PolicyOwn:
		// Prior-work ablation: the local replica dictates its own timing.
		deliver = st.ownVirt
	default:
		if len(st.proposal) < nd.replicas {
			return
		}
		med, err := MedianVirtual(st.proposal[:nd.replicas])
		if err != nil {
			return
		}
		deliver = med
	}
	st.done = true
	nd.resolved++
	if nd.OnResolve != nil {
		nd.OnResolve(seq, deliver, *st.payload)
	}
	nd.rt.EnqueueNetDelivery(seq, deliver, *st.payload)
	delete(nd.props, seq)
}

// Pending returns the number of unresolved inbound packets (tests).
func (nd *NetDevice) Pending() int { return len(nd.props) }

// Proposed and Resolved report protocol counters.
func (nd *NetDevice) Proposed() uint64 { return nd.proposed }

// Resolved reports how many packets reached a median decision here.
func (nd *NetDevice) Resolved() uint64 { return nd.resolved }

// EgressMsg is the tunnelled form of a guest output packet, sent by each
// replica's device model to the egress node (Sec. VI).
type EgressMsg struct {
	GuestID string
	Replica string
	Seq     uint64 // deterministic per-guest output sequence
	OrigDst netsim.Addr
	Size    int
	Data    any
}
