package vmm

// Pre-view-commit reconcile protocol state (ROADMAP item 6). On a lossy
// fabric a crashed VMM's in-flight proposals can be partially delivered:
// one survivor resolves a 3-median with the dead member's vote while the
// other never sees it. After the view commits, the wedged survivor
// re-proposes the sequence and the resolved one stale-drops the
// re-proposal — the group diverges permanently. Before committing a new
// live view, each survivor therefore exports what it knows and imports
// what its peers knew:
//
//   - Resolutions: the device's recent (seq, deliver) decisions. A peer
//     that holds the payload but never resolved the sequence adopts the
//     decision verbatim; a peer whose payload has not arrived yet stashes
//     it (forced) and delivers on arrival without proposing.
//   - DeadVotes: proposals this survivor holds *from the dead origin* for
//     still-pending sequences. A peer that lost the dead member's vote can
//     merge it and resolve the exact 3-median it would have reached had
//     the fabric not dropped the packet.
//
// Sequences nobody resolved and nobody holds a dead vote for are left to
// the view change's re-proposal round, exactly as before. Imports are
// idempotent and strictly fenced by view: repeated or reordered reconcile
// messages are no-ops.

import (
	"sort"

	"stopwatch/internal/vtime"
)

// resRingCap bounds the resolution ring. The reconcile round only needs
// decisions from the failure window (in-flight proposals of one
// DrainWindow); 64 covers that with a wide margin at any modeled rate.
const resRingCap = 64

// resolvedRec is one retained delivery decision.
type resolvedRec struct {
	seq     uint64
	deliver vtime.Virtual
}

// ReconcileEntry is one (seq, virt) pair of a reconcile export: a resolved
// delivery decision, or the dead origin's pending vote.
type ReconcileEntry struct {
	Seq  uint64
	Virt vtime.Virtual
}

// ReconcileExport is one survivor's contribution to a pre-view-commit
// reconcile round.
type ReconcileExport struct {
	// Origin is the exporting replica's host name; View the group view the
	// export was taken under (imports from any other view are dropped).
	Origin string
	View   uint64
	// DeadOrigin names the crashed member whose votes DeadVotes carries.
	DeadOrigin string
	// Watermark is the exporter's resolved-sequence low watermark — every
	// seq at or below it has resolved there.
	Watermark uint64
	// Resolutions are the exporter's retained delivery decisions, seq-sorted.
	Resolutions []ReconcileEntry
	// DeadVotes are the dead origin's proposals the exporter still holds
	// for pending sequences, seq-sorted.
	DeadVotes []ReconcileEntry
}

// ExportReconcile snapshots this device's reconcile contribution for a
// round triggered by deadOrigin's crash. Entries are seq-sorted so the
// export — and everything downstream of it — is independent of map
// iteration order.
func (nd *NetDevice) ExportReconcile(deadOrigin string) ReconcileExport {
	x := ReconcileExport{
		Origin:     nd.self,
		View:       nd.view,
		DeadOrigin: deadOrigin,
		Watermark:  nd.resolvedLo,
	}
	for _, r := range nd.resRing {
		if r.seq != 0 {
			x.Resolutions = append(x.Resolutions, ReconcileEntry{Seq: r.seq, Virt: r.deliver})
		}
	}
	sort.Slice(x.Resolutions, func(i, j int) bool { return x.Resolutions[i].Seq < x.Resolutions[j].Seq })
	for seq, st := range nd.props {
		if v, ok := st.props[deadOrigin]; ok {
			x.DeadVotes = append(x.DeadVotes, ReconcileEntry{Seq: seq, Virt: v})
		}
	}
	sort.Slice(x.DeadVotes, func(i, j int) bool { return x.DeadVotes[i].Seq < x.DeadVotes[j].Seq })
	return x
}

// ImportReconcile merges a peer's reconcile export into this device and
// returns the number of sequences it repaired (decisions adopted or
// stashed, dead votes merged). Imports are idempotent: an export applied
// twice — or after its information arrived another way — repairs nothing
// further. Exports from another view, from this device itself, or from an
// origin outside the live set are rejected outright.
func (nd *NetDevice) ImportReconcile(x ReconcileExport) int {
	if x.View != nd.view || x.Origin == nd.self {
		return 0
	}
	if nd.live != nil && !nd.liveHas(x.Origin) {
		return 0
	}
	repairs := 0
	for _, e := range x.Resolutions {
		if nd.isResolved(e.Seq) {
			continue
		}
		if _, dup := nd.forced[e.Seq]; dup {
			continue
		}
		if st, ok := nd.props[e.Seq]; ok && st.hasPayload {
			nd.adoptResolution(e.Seq, st, e.Virt)
		} else {
			if nd.forced == nil {
				nd.forced = make(map[uint64]vtime.Virtual)
			}
			nd.forced[e.Seq] = e.Virt
		}
		repairs++
	}
	for _, e := range x.DeadVotes {
		if nd.isResolved(e.Seq) {
			continue
		}
		if _, dup := nd.forced[e.Seq]; dup {
			continue
		}
		st := nd.state(e.Seq)
		if _, have := st.props[x.DeadOrigin]; have {
			continue
		}
		st.props[x.DeadOrigin] = e.Virt
		repairs++
		nd.maybeResolve(e.Seq, st)
	}
	return repairs
}

// ForcedPending reports adopted decisions still awaiting their payload
// (tests).
func (nd *NetDevice) ForcedPending() int { return len(nd.forced) }
