package vmm

import (
	"fmt"

	"stopwatch/internal/guest"
	"stopwatch/internal/vtime"
)

// Checkpointed journals (ROADMAP item 5a). A checkpoint is a
// replica-identical snapshot of a guest replica taken at a deterministic
// instruction point: because every replica holds identical logical state at
// identical instruction counts, all replicas capture byte-identical
// checkpoints and the journal keeps whichever arrives first (the same
// first-write-wins rule the delivery records use). Once a checkpoint is
// accepted the journal truncates every delivery record the checkpoint
// already covers, so replacement replay cost is bounded by the checkpoint
// interval instead of the guest's lifetime.
//
// Capture happens at the first VM exit at or past each multiple of
// Config.CheckpointInstr, BEFORE any epoch adjustment at the same exit —
// the pre-adjust clock state is what every replica can reproduce, and
// replay re-applies the journaled epoch star afterwards exactly as live
// execution did.

// Checkpoint is one captured replica state. Fields cover everything a
// replacement runtime needs to resume mid-stream: the instruction count and
// virtual time of the capturing exit, the virtual-clock fit, the PIT tick
// cursor, the disk-interrupt sequence, both pending interrupt queues, and
// the guest VM snapshot (op queue, timers, output log, app state).
type Checkpoint struct {
	Instr int64
	Virt  vtime.Virtual

	ClockStart     vtime.Virtual
	ClockSlope     float64
	ClockEpochBase int64
	// EpochsApplied is the number of epoch adjustments folded into the
	// clock at capture (journaled stars below it can be pruned).
	EpochsApplied int64

	PITNext  vtime.Virtual
	PITCount int64

	DiskSeq     uint64
	PendingNet  []netDelivery
	PendingDisk []diskDelivery

	VM guest.VMSnapshot
}

// copyFrom deep-copies src into ck, reusing ck's slices.
func (ck *Checkpoint) copyFrom(src *Checkpoint) {
	ck.Instr = src.Instr
	ck.Virt = src.Virt
	ck.ClockStart = src.ClockStart
	ck.ClockSlope = src.ClockSlope
	ck.ClockEpochBase = src.ClockEpochBase
	ck.EpochsApplied = src.EpochsApplied
	ck.PITNext = src.PITNext
	ck.PITCount = src.PITCount
	ck.DiskSeq = src.DiskSeq
	ck.PendingNet = append(ck.PendingNet[:0], src.PendingNet...)
	ck.PendingDisk = append(ck.PendingDisk[:0], src.PendingDisk...)
	ck.VM.CopyFrom(&src.VM)
}

// sizeBytes estimates the checkpoint's retained size for journal telemetry.
func (ck *Checkpoint) sizeBytes() int64 {
	const netSize, diskSize = 48, 56
	return int64(len(ck.PendingNet)*netSize+len(ck.PendingDisk)*diskSize) +
		int64(ck.VM.SizeBytes()) + 96
}

// EnableCheckpoints arms periodic checkpoint capture into j every `every`
// branches. The journal must be the guest's determinism journal (the same
// one the resolve sink records into) and the app must support snapshotting;
// the cluster checks guest.VM.CanSnapshot before enabling.
func (rt *Runtime) EnableCheckpoints(j *Journal, every int64) error {
	if j == nil {
		return fmt.Errorf("%w: checkpoints need a journal", ErrVMM)
	}
	if every <= 0 || every%rt.cfg.ExitEvery != 0 {
		return fmt.Errorf("%w: checkpoint interval %d must be a positive multiple of ExitEvery %d",
			ErrVMM, every, rt.cfg.ExitEvery)
	}
	if !rt.vm.CanSnapshot() {
		return fmt.Errorf("%w: app %T is not a guest.Snapshotter", ErrVMM, rt.vm.App())
	}
	rt.journal = j
	rt.ckEvery = every
	rt.ckNext = (rt.ex.instr/every + 1) * every
	return nil
}

// captureCheckpoint snapshots the replica at the current exit and offers it
// to the journal. The scratch checkpoint ping-pongs with the journal's
// retained one, so steady-state checkpointing allocates nothing.
func (rt *Runtime) captureCheckpoint(virt vtime.Virtual) {
	ck := rt.ckScratch
	if ck == nil {
		ck = new(Checkpoint)
	}
	ck.Instr = rt.ex.instr
	ck.Virt = virt
	ck.ClockStart = rt.vclock.Start()
	ck.ClockSlope = rt.vclock.Slope()
	ck.ClockEpochBase = rt.vclock.EpochBase()
	ck.EpochsApplied = 0
	if rt.cfg.EpochInstr > 0 {
		ck.EpochsApplied = ck.ClockEpochBase / rt.cfg.EpochInstr
	}
	ck.PITNext = rt.pit.Next()
	ck.PITCount = rt.pit.Ticks()
	ck.DiskSeq = rt.diskSeq
	ck.PendingNet = append(ck.PendingNet[:0], rt.pendingNet...)
	ck.PendingDisk = append(ck.PendingDisk[:0], rt.pendingDisk...)
	if err := rt.vm.SnapshotInto(&ck.VM); err != nil {
		// Unreachable after the EnableCheckpoints CanSnapshot gate; disarm
		// rather than journal a torn checkpoint.
		rt.ckEvery = 0
		rt.ckScratch = ck
		return
	}
	rt.stats.Checkpoints++
	rt.ckScratch = rt.journal.OfferCheckpoint(ck)
}

// restoreCheckpoint rewinds a freshly built (un-booted) runtime to the
// checkpointed state. Pending disk interrupts are re-timed to "ready now":
// their data arrived with the state copy, only the deterministic V+Δd
// delivery points remain.
func (rt *Runtime) restoreCheckpoint(ck *Checkpoint) error {
	if err := rt.vm.RestoreSnapshot(&ck.VM); err != nil {
		return err
	}
	if err := rt.vclock.Restore(ck.ClockStart, ck.ClockSlope, ck.ClockEpochBase); err != nil {
		return err
	}
	rt.pit.Restore(ck.PITNext, ck.PITCount)
	rt.ex.instr = ck.Instr
	rt.virtLastExit = ck.Virt
	rt.diskSeq = ck.DiskSeq
	rt.pendingNet = append(rt.pendingNet[:0], ck.PendingNet...)
	now := rt.host.Loop().Now()
	rt.pendingDisk = rt.pendingDisk[:0]
	for _, d := range ck.PendingDisk {
		d.readyReal = now
		rt.pendingDisk = append(rt.pendingDisk, d)
	}
	return nil
}
