package vmm

import (
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// TestPolicyOwnDeliversAtOwnProposal verifies the leader-dictates ablation
// policy: the device model resolves immediately at its own proposal,
// without waiting for peers.
func TestPolicyOwnDeliversAtOwnProposal(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(42)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	nd, err := NewNetDevice(rt, 3)
	if err != nil {
		t.Fatal(err)
	}
	nd.Policy = PolicyOwn
	sentProposals := 0
	nd.SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) { sentProposals++ })
	var deliveredAt []vtime.Virtual
	var proposed []vtime.Virtual
	nd.OnPropose = func(seq uint64, v vtime.Virtual) { proposed = append(proposed, v) }
	rt.OnNetDeliver = func(seq uint64, v vtime.Virtual, _ sim.Time) { deliveredAt = append(deliveredAt, v) }
	rt.Start()
	loop.At(20*sim.Millisecond, "pkt", func() {
		nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64})
	})
	if err := loop.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 1 || len(proposed) != 1 {
		t.Fatalf("delivered %d proposed %d", len(deliveredAt), len(proposed))
	}
	// Delivery time equals the local proposal — no peers consulted.
	if deliveredAt[0] != proposed[0] {
		t.Fatalf("delivered at %v, own proposal %v", deliveredAt[0], proposed[0])
	}
	// Proposals are still multicast (the ablation changes only the decision).
	if sentProposals != 1 {
		t.Fatalf("proposals sent: %d", sentProposals)
	}
	if nd.Resolved() != 1 || nd.Pending() != 0 {
		t.Fatalf("resolved=%d pending=%d", nd.Resolved(), nd.Pending())
	}
}

// TestPolicyMedianWaitsForAllProposals pins the default policy's liveness
// condition: no delivery until all replica proposals are in.
func TestPolicyMedianWaitsForAllProposals(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(43)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	nd, err := NewNetDevice(rt, 3)
	if err != nil {
		t.Fatal(err)
	}
	nd.SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) {})
	delivered := 0
	rt.OnNetDeliver = func(uint64, vtime.Virtual, sim.Time) { delivered++ }
	rt.Start()
	loop.At(10*sim.Millisecond, "pkt", func() { nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
	// Only one peer proposal arrives — median of 3 cannot resolve.
	loop.At(15*sim.Millisecond, "peer1", func() { nd.HandlePeerProposal("B", 0, 1, vtime.Virtual(30*sim.Millisecond)) })
	if err := loop.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 || nd.Pending() != 1 {
		t.Fatalf("delivered=%d pending=%d before full proposal set", delivered, nd.Pending())
	}
	// The last proposal arrives: delivery proceeds.
	loop.At(110*sim.Millisecond, "peer2", func() { nd.HandlePeerProposal("C", 0, 1, vtime.Virtual(120*sim.Millisecond)) })
	if err := loop.RunUntil(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered=%d after full proposal set", delivered)
	}
}

// TestProposalBeforePayload covers the ordering race: peer proposals can
// arrive before the ingress data reaches this host.
func TestProposalBeforePayload(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(44)
	h := testHost(t, "h", loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	nd, err := NewNetDevice(rt, 3)
	if err != nil {
		t.Fatal(err)
	}
	nd.SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) {})
	delivered := 0
	rt.OnNetDeliver = func(uint64, vtime.Virtual, sim.Time) { delivered++ }
	rt.Start()
	// Peers propose first; local data arrives later.
	loop.At(5*sim.Millisecond, "peer1", func() { nd.HandlePeerProposal("B", 0, 1, vtime.Virtual(40*sim.Millisecond)) })
	loop.At(6*sim.Millisecond, "peer2", func() { nd.HandlePeerProposal("C", 0, 1, vtime.Virtual(45*sim.Millisecond)) })
	loop.At(20*sim.Millisecond, "pkt", func() { nd.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
	if err := loop.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered=%d with out-of-order proposal arrival", delivered)
	}
}
