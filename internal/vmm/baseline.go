package vmm

import (
	"fmt"
	"sort"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// BaselineRuntime hosts a guest under an unmodified-Xen-like VMM: a single
// replica, interrupts delivered as soon as the device models finish (at the
// next guest-caused exit), and guest clocks that expose scaled host real
// time. This is the paper's "Baseline" in every figure.
type BaselineRuntime struct {
	ex   exec
	host *Host
	cfg  Config
	vm   *guest.VM

	pitPeriod sim.Time
	pitFired  int64

	pendingNet  []baseNetDelivery
	pendingDisk []baseDiskDelivery
	seq         uint64

	netDelivered int

	// OnSend forwards a guest output packet (wired by the cluster).
	OnSend SendSink
	// OnNetDeliver observes injected network interrupts (experiments).
	OnNetDeliver func(seq uint64, real sim.Time)
}

type baseNetDelivery struct {
	readyReal sim.Time
	seq       uint64
	payload   guest.Payload
}

type baseDiskDelivery struct {
	readyReal sim.Time
	seq       uint64
	done      guest.DiskDone
}

// NewBaselineRuntime builds a baseline (unmodified Xen) runtime.
func NewBaselineRuntime(host *Host, guestID string, app guest.App) (*BaselineRuntime, error) {
	if host == nil {
		return nil, fmt.Errorf("%w: nil host", ErrVMM)
	}
	cfg := host.Config()
	rt := &BaselineRuntime{
		host:      host,
		cfg:       cfg,
		pitPeriod: sim.Time(int64(sim.Second) / int64(cfg.PITHz)),
	}
	vm, err := guest.New(guestID, app, rt)
	if err != nil {
		return nil, err
	}
	rt.vm = vm
	rt.ex = exec{
		host:      host,
		vm:        vm,
		loop:      host.Loop(),
		exitEvery: cfg.ExitEvery,
		onExit:    rt.exit,
	}
	host.register(&rt.ex)
	return rt, nil
}

var _ guest.ClockView = (*BaselineRuntime)(nil)

// Now implements guest.ClockView: the baseline guest reads (scaled) host
// real time.
func (rt *BaselineRuntime) Now() vtime.Virtual {
	return vtime.Virtual(rt.host.Clock().Read(rt.host.Loop().Now()))
}

// TSC implements guest.ClockView from host real time.
func (rt *BaselineRuntime) TSC() uint64 { return uint64(rt.Now()) * 3 }

// PITCounter implements guest.ClockView from host real time.
func (rt *BaselineRuntime) PITCounter() uint16 {
	phase := int64(rt.Now()) % int64(rt.pitPeriod)
	remaining := int64(rt.pitPeriod) - phase
	return uint16((remaining * 65536) / int64(rt.pitPeriod))
}

// VM returns the hosted guest.
func (rt *BaselineRuntime) VM() *guest.VM { return rt.vm }

// Host returns the hosting machine.
func (rt *BaselineRuntime) Host() *Host { return rt.host }

// NetDelivered reports injected network interrupts.
func (rt *BaselineRuntime) NetDelivered() int { return rt.netDelivered }

// Start boots the guest and begins execution.
func (rt *BaselineRuntime) Start() { rt.ex.start() }

// Stop halts the replica.
func (rt *BaselineRuntime) Stop() { rt.ex.stop() }

// Release permanently stops the guest and detaches it from its host's
// scheduler (eviction teardown).
func (rt *BaselineRuntime) Release() {
	rt.ex.stop()
	rt.host.unregister(&rt.ex)
}

// HandleInbound accepts a packet from the fabric: after the device-model
// processing delay it becomes deliverable at the next guest exit.
func (rt *BaselineRuntime) HandleInbound(p guest.Payload) {
	host := rt.host
	host.ioBegin()
	host.Loop().After(host.ioDelay(), "base:netdev", func() {
		host.ioEnd()
		rt.seq++
		rt.pendingNet = append(rt.pendingNet, baseNetDelivery{
			readyReal: host.Loop().Now(),
			seq:       rt.seq,
			payload:   p,
		})
	})
}

// requestDisk starts a disk transfer; the completion interrupt becomes
// deliverable when the transfer finishes.
func (rt *BaselineRuntime) requestDisk(a guest.IOAction) {
	host := rt.host
	host.ioBegin()
	ready := host.diskService(a.Bytes)
	rt.seq++
	seq := rt.seq
	host.Loop().At(ready, "base:diskdone", func() {
		host.ioEnd()
		rt.pendingDisk = append(rt.pendingDisk, baseDiskDelivery{
			readyReal: host.Loop().Now(),
			seq:       seq,
			done:      guest.DiskDone{Tag: a.Tag, Bytes: a.Bytes, Write: a.Write},
		})
		// Keep arrival order deterministic under equal ready times.
		sort.SliceStable(rt.pendingDisk, func(i, j int) bool {
			if rt.pendingDisk[i].readyReal != rt.pendingDisk[j].readyReal {
				return rt.pendingDisk[i].readyReal < rt.pendingDisk[j].readyReal
			}
			return rt.pendingDisk[i].seq < rt.pendingDisk[j].seq
		})
	})
}

// exit is the baseline VM-exit handler: inject whatever is ready.
func (rt *BaselineRuntime) exit(res guest.StepResult) {
	now := rt.host.Loop().Now()

	if res.IO != nil {
		if res.IO.IsSend() {
			if rt.OnSend != nil {
				rt.OnSend.GuestSend(*res.IO)
			}
		} else {
			rt.requestDisk(*res.IO)
		}
	}

	// Timer ticks by host real time.
	due := int64(rt.Now()) / int64(rt.pitPeriod)
	if due > rt.pitFired {
		rt.vm.DeliverTimerTicks(int(due - rt.pitFired))
		rt.pitFired = due
	}

	for len(rt.pendingDisk) > 0 && rt.pendingDisk[0].readyReal <= now {
		d := rt.pendingDisk[0]
		rt.pendingDisk = rt.pendingDisk[1:]
		rt.vm.DeliverDisk(d.done)
	}
	for len(rt.pendingNet) > 0 && rt.pendingNet[0].readyReal <= now {
		d := rt.pendingNet[0]
		rt.pendingNet = rt.pendingNet[1:]
		rt.netDelivered++
		if rt.OnNetDeliver != nil {
			rt.OnNetDeliver(d.seq, now)
		}
		rt.vm.DeliverPacket(d.payload)
	}
}
