package vmm

import (
	"fmt"
	"sort"

	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// Epoch-based re-synchronization of virtual and real time (Sec. IV-A,
// optional). After each epoch of I instructions, every replica reports the
// real-time duration D over which it executed the epoch and its host real
// time R at the epoch's end. All replicas then re-fit the virtual clock's
// slope from the median R (taking D from that same machine), clamped to
// [ℓ,u].
//
// Determinism demands that all replicas apply the adjustment at the same
// instruction count with the same sample set, so the epoch boundary is a
// barrier: a replica reaching it pauses (in real time — virtual time is
// unaffected) until every peer's sample for that epoch has arrived.

// EpochCoordinator manages epoch sampling and barrier synchronization for
// one replica runtime.
type EpochCoordinator struct {
	rt       *Runtime
	interval int64 // instructions per epoch
	replicas int

	epoch      int64 // current epoch index (0-based)
	epochStart sim.Time
	samples    map[int64][]vtime.EpochSample // keyed by epoch index
	waiting    bool

	// SendSample broadcasts this replica's sample for an epoch (wired by
	// the cluster to the peer coordinators).
	SendSample func(epoch int64, s vtime.EpochSample)

	adjustments int
}

// NewEpochCoordinator attaches epoch re-synchronization to a runtime.
func NewEpochCoordinator(rt *Runtime, interval int64, replicas int) (*EpochCoordinator, error) {
	if rt == nil {
		return nil, fmt.Errorf("%w: nil runtime", ErrVMM)
	}
	if interval <= 0 || interval%rt.cfg.ExitEvery != 0 {
		return nil, fmt.Errorf("%w: epoch interval %d must be a positive multiple of ExitEvery %d",
			ErrVMM, interval, rt.cfg.ExitEvery)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("%w: replicas %d", ErrVMM, replicas)
	}
	ec := &EpochCoordinator{
		rt:       rt,
		interval: interval,
		replicas: replicas,
		samples:  make(map[int64][]vtime.EpochSample),
	}
	ec.epochStart = rt.Host().Loop().Now()
	rt.epochHook = ec.onExit
	rt.epochWait = func() bool { return ec.waiting }
	return ec, nil
}

// Adjustments reports how many epoch adjustments have been applied.
func (ec *EpochCoordinator) Adjustments() int { return ec.adjustments }

// onExit is called by the runtime at every guest-caused exit, after instr
// has advanced. It returns true when the runtime must pause at a barrier.
func (ec *EpochCoordinator) onExit(instr int64) bool {
	boundary := (ec.epoch + 1) * ec.interval
	if instr < boundary {
		return false
	}
	if !ec.waiting {
		ec.waiting = true
		now := ec.rt.Host().Loop().Now()
		s := vtime.EpochSample{
			D: now - ec.epochStart,
			R: ec.rt.Host().Clock().Read(now),
		}
		ec.addSample(ec.epoch, s)
		if ec.SendSample != nil {
			ec.SendSample(ec.epoch, s)
		}
	}
	return !ec.tryAdjust()
}

// OnPeerSample records a peer's epoch sample and, if the barrier is
// complete and this replica is waiting at it, resumes execution (unless
// pacing still holds it back).
func (ec *EpochCoordinator) OnPeerSample(epoch int64, s vtime.EpochSample) {
	ec.addSample(epoch, s)
	if ec.waiting && ec.tryAdjust() && !ec.rt.tooFarAhead() {
		ec.rt.ex.resume()
	}
}

func (ec *EpochCoordinator) addSample(epoch int64, s vtime.EpochSample) {
	if epoch < ec.epoch {
		return // stale
	}
	ec.samples[epoch] = append(ec.samples[epoch], s)
}

// tryAdjust applies the epoch adjustment when all samples are in. It
// returns true when the barrier is released.
func (ec *EpochCoordinator) tryAdjust() bool {
	got := ec.samples[ec.epoch]
	if len(got) < ec.replicas {
		return false
	}
	// Deterministic sample order across replicas.
	s := make([]vtime.EpochSample, ec.replicas)
	copy(s, got[:ec.replicas])
	sort.Slice(s, func(i, j int) bool {
		if s[i].R != s[j].R {
			return s[i].R < s[j].R
		}
		return s[i].D < s[j].D
	})
	if err := ec.rt.vclock.AdjustEpoch(ec.interval, s); err != nil {
		// Cannot happen with validated parameters; drop the epoch rather
		// than diverge silently.
		return true
	}
	ec.adjustments++
	delete(ec.samples, ec.epoch)
	ec.epoch++
	ec.epochStart = ec.rt.Host().Loop().Now()
	ec.waiting = false
	return true
}
