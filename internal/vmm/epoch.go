package vmm

import (
	"fmt"
	"sort"

	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// Epoch-based re-synchronization of virtual and real time (Sec. IV-A,
// optional). After each epoch of I instructions, every replica reports the
// real-time duration D over which it executed the epoch and its host real
// time R at the epoch's end. All replicas then re-fit the virtual clock's
// slope from the median R (taking D from that same machine), clamped to
// [ℓ,u].
//
// Determinism demands that all replicas apply the adjustment at the same
// instruction count with the same sample set, so the epoch boundary is a
// barrier: a replica reaching it pauses (in real time — virtual time is
// unaffected) until every group member's sample for that epoch has arrived.
//
// Samples are keyed by origin (the sampling replica's host name), and the
// barrier completes against the current replica group — the same
// origin-keyed, group-scoped discipline the proposal path uses. That makes
// the sample set immune to duplicate deliveries, lets the cluster shrink
// the group when a member dies (SetGroup unwedges survivors waiting on a
// corpse's sample), and lets a replacement replica adopt the survivors'
// pending samples and join an in-progress barrier (RestoreAt).

// EpochCoordinator manages epoch sampling and barrier synchronization for
// one replica runtime.
type EpochCoordinator struct {
	rt       *Runtime
	interval int64  // instructions per epoch
	replicas int    // fallback barrier width until SetGroup
	self     string // this replica's origin key (host name)

	epoch      int64 // current epoch index (0-based)
	epochStart sim.Time
	samples    map[int64]map[string]vtime.EpochSample // epoch → origin → sample
	group      []string                               // live origins; empty until SetGroup
	waiting    bool

	// SendSample broadcasts this replica's sample for an epoch (wired by
	// the cluster to the peer coordinators; the fabric carries the origin).
	SendSample func(epoch int64, s vtime.EpochSample)
	// OnAdjust, when set, observes each applied adjustment's selected star
	// sample — the journaling hook replacement replay re-fits from.
	OnAdjust func(epoch int64, star vtime.EpochSample)

	adjustments int

	// scratch backs the per-adjustment sample sort.
	scratch []vtime.EpochSample
}

// NewEpochCoordinator attaches epoch re-synchronization to a runtime. The
// runtime's host name keys this replica's samples; until SetGroup installs
// explicit membership, a barrier completes at `replicas` distinct origins.
func NewEpochCoordinator(rt *Runtime, interval int64, replicas int) (*EpochCoordinator, error) {
	if rt == nil {
		return nil, fmt.Errorf("%w: nil runtime", ErrVMM)
	}
	if interval <= 0 || interval%rt.cfg.ExitEvery != 0 {
		return nil, fmt.Errorf("%w: epoch interval %d must be a positive multiple of ExitEvery %d",
			ErrVMM, interval, rt.cfg.ExitEvery)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("%w: replicas %d", ErrVMM, replicas)
	}
	ec := &EpochCoordinator{
		rt:       rt,
		interval: interval,
		replicas: replicas,
		self:     rt.Host().Name(),
		samples:  make(map[int64]map[string]vtime.EpochSample),
	}
	ec.epochStart = rt.Host().Loop().Now()
	rt.epochHook = ec.onExit
	rt.epochWait = func() bool { return ec.waiting }
	return ec, nil
}

// Adjustments reports how many epoch adjustments have been applied.
func (ec *EpochCoordinator) Adjustments() int { return ec.adjustments }

// Epoch returns the current epoch index.
func (ec *EpochCoordinator) Epoch() int64 { return ec.epoch }

// Waiting reports whether the replica is held at an epoch barrier.
func (ec *EpochCoordinator) Waiting() bool { return ec.waiting }

// SetGroup installs the live replica group (origins, self included). Called
// by the cluster whenever membership changes; a shrink re-evaluates the
// barrier, so survivors waiting on a dead member's sample unwedge
// deterministically.
func (ec *EpochCoordinator) SetGroup(origins []string) {
	ec.group = append(ec.group[:0], origins...)
	if ec.waiting && ec.tryAdjust() && !ec.rt.tooFarAhead() {
		ec.rt.ex.resume()
	}
}

// onExit is called by the runtime at every guest-caused exit, after instr
// has advanced. It returns true when the runtime must pause at a barrier.
func (ec *EpochCoordinator) onExit(instr int64) bool {
	boundary := (ec.epoch + 1) * ec.interval
	if instr < boundary {
		return false
	}
	if !ec.waiting {
		ec.waiting = true
		now := ec.rt.Host().Loop().Now()
		s := vtime.EpochSample{
			D: now - ec.epochStart,
			R: ec.rt.Host().Clock().Read(now),
		}
		ec.addSample(ec.self, ec.epoch, s)
		if ec.SendSample != nil {
			ec.SendSample(ec.epoch, s)
		}
	}
	return !ec.tryAdjust()
}

// OnPeerSample records a peer's epoch sample and, if the barrier is
// complete and this replica is waiting at it, resumes execution (unless
// pacing still holds it back).
func (ec *EpochCoordinator) OnPeerSample(origin string, epoch int64, s vtime.EpochSample) {
	ec.addSample(origin, epoch, s)
	if ec.waiting && ec.tryAdjust() && !ec.rt.tooFarAhead() {
		ec.rt.ex.resume()
	}
}

func (ec *EpochCoordinator) addSample(origin string, epoch int64, s vtime.EpochSample) {
	if epoch < ec.epoch {
		return // stale
	}
	m := ec.samples[epoch]
	if m == nil {
		m = make(map[string]vtime.EpochSample)
		ec.samples[epoch] = m
	}
	if _, dup := m[origin]; dup {
		return // first write wins; replicas send identical values anyway
	}
	m[origin] = s
}

// barrierSamples collects the current epoch's samples for the live group
// into ec.scratch, reporting whether the barrier is complete. With explicit
// membership, completeness means a sample from every live origin; before
// SetGroup it falls back to `replicas` distinct origins (order-insensitive
// either way, so arrival order cannot skew the median).
func (ec *EpochCoordinator) barrierSamples() bool {
	got := ec.samples[ec.epoch]
	ec.scratch = ec.scratch[:0]
	if len(ec.group) > 0 {
		for _, o := range ec.group {
			s, ok := got[o]
			if !ok {
				return false
			}
			ec.scratch = append(ec.scratch, s)
		}
		return true
	}
	if len(got) < ec.replicas {
		return false
	}
	for _, s := range got {
		ec.scratch = append(ec.scratch, s)
	}
	// Deterministic order for the map-collected fallback.
	sort.Slice(ec.scratch, func(i, j int) bool {
		if ec.scratch[i].R != ec.scratch[j].R {
			return ec.scratch[i].R < ec.scratch[j].R
		}
		return ec.scratch[i].D < ec.scratch[j].D
	})
	ec.scratch = ec.scratch[:ec.replicas]
	return true
}

// tryAdjust applies the epoch adjustment when all samples are in. It
// returns true when the barrier is released.
func (ec *EpochCoordinator) tryAdjust() bool {
	if !ec.barrierSamples() {
		return false
	}
	s := ec.scratch
	if err := ec.rt.vclock.AdjustEpoch(ec.interval, s); err != nil {
		// Cannot happen with validated parameters; drop the epoch rather
		// than diverge silently.
		return true
	}
	if ec.OnAdjust != nil {
		// Recompute the star AdjustEpoch selected (same sort, same pick).
		sort.Slice(s, func(i, j int) bool {
			if s[i].R != s[j].R {
				return s[i].R < s[j].R
			}
			return s[i].D < s[j].D
		})
		ec.OnAdjust(ec.epoch, s[len(s)/2])
	}
	ec.adjustments++
	delete(ec.samples, ec.epoch)
	ec.epoch++
	ec.epochStart = ec.rt.Host().Loop().Now()
	ec.waiting = false
	return true
}

// RestoreAt primes a replacement replica's coordinator after journal
// replay: the epoch index is read off the restored clock, pending samples
// for the in-progress epoch are adopted from a surviving donor, and — when
// replay stopped exactly at a boundary whose star the survivors are still
// waiting to resolve — this replica samples, broadcasts, and joins the
// barrier (starting paused if the barrier stays incomplete, exactly like a
// survivor that reached the boundary live).
//
// Must be called after the cluster has wired SendSample and installed the
// post-replacement group, and before Runtime.Start.
func (ec *EpochCoordinator) RestoreAt(donor *EpochCoordinator) {
	ec.epoch = ec.rt.vclock.EpochBase() / ec.interval
	ec.adjustments = int(ec.epoch)
	now := ec.rt.Host().Loop().Now()
	ec.epochStart = now
	if donor != nil {
		for origin, s := range donor.samples[ec.epoch] {
			ec.addSample(origin, ec.epoch, s)
		}
	}
	if ec.rt.Instr() >= (ec.epoch+1)*ec.interval {
		ec.waiting = true
		s := vtime.EpochSample{D: 0, R: ec.rt.Host().Clock().Read(now)}
		ec.addSample(ec.self, ec.epoch, s)
		if ec.SendSample != nil {
			ec.SendSample(ec.epoch, s)
		}
		if !ec.tryAdjust() {
			ec.rt.ex.pause()
		}
	}
}
