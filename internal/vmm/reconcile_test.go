package vmm

import (
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// Tests for the pre-view-commit reconcile protocol (ExportReconcile /
// ImportReconcile): the split-delivery repair the view change depends on.
// The scenario throughout is the one the protocol exists for — machine C's
// VMM crashed mid-flight and the lossy fabric delivered C's last proposal
// to survivor B but not survivor A.

// reconcileTestDevice builds a standalone device named `name` with its own
// loop, mirroring groupTestDevice but with the host name parameterized so a
// test can hold two distinct survivors.
func reconcileTestDevice(t *testing.T, name string, seed uint64) (*sim.Loop, *Runtime, *NetDevice) {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(seed)
	h := testHost(t, name, loop, src, 0, 0)
	rt, err := NewRuntime(h, "g", &recordApp{}, []sim.Time{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
	nd, err := NewNetDevice(rt, 3)
	if err != nil {
		t.Fatal(err)
	}
	nd.SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) {})
	return loop, rt, nd
}

// TestReconcileRepairsSplitDelivery is the protocol's reason to exist, as a
// table over its three repair paths. In every case the dead origin C's
// information reached survivor B only; a reconcile export from B must leave
// survivor A delivering the exact value it would have reached had the
// fabric not dropped C's packet — and a second, duplicated import must
// repair nothing further.
func TestReconcileRepairsSplitDelivery(t *testing.T) {
	vB := vtime.Virtual(30 * sim.Millisecond)
	vC := vtime.Virtual(31 * sim.Millisecond)
	cases := []struct {
		name string
		// withPayload: seq 1's payload reached A before the reconcile round
		// (false exercises the forced-adoption stash).
		withPayload bool
		// resolvedAtB: B resolved seq 1 (C's vote completed its median), so
		// the export repairs A through Resolutions; otherwise B is pending
		// too and the export replays C's vote through DeadVotes.
		resolvedAtB bool
	}{
		{name: "dead vote replay, exact median", withPayload: true, resolvedAtB: false},
		{name: "resolution adopted verbatim", withPayload: true, resolvedAtB: true},
		{name: "resolution forced, delivered on payload arrival", withPayload: false, resolvedAtB: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loopA, rtA, ndA := reconcileTestDevice(t, "A", 81)
			loopB, rtB, ndB := reconcileTestDevice(t, "B", 83)
			var deliveredA []vtime.Virtual
			rtA.OnNetDeliver = func(_ uint64, v vtime.Virtual, _ sim.Time) { deliveredA = append(deliveredA, v) }
			var ownA vtime.Virtual
			ndA.OnPropose = func(_ uint64, v vtime.Virtual) { ownA = v }
			rtA.Start()
			rtB.Start()

			// Survivor A: the payload (maybe) arrived, B's proposal arrived,
			// C's was lost — one vote short of the full-view median forever.
			if tc.withPayload {
				loopA.At(10*sim.Millisecond, "pktA", func() { ndA.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
			}
			loopA.At(15*sim.Millisecond, "peerB@A", func() { ndA.HandlePeerProposal("B", 0, 1, vB) })
			if err := loopA.RunUntil(50 * sim.Millisecond); err != nil {
				t.Fatal(err)
			}
			if len(deliveredA) != 0 {
				t.Fatalf("A resolved without C's vote: %v", deliveredA)
			}

			// Survivor B: hand-deliver the dead origin's proposal here only.
			loopB.At(10*sim.Millisecond, "pktB", func() { ndB.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
			loopB.At(14*sim.Millisecond, "peerC@B", func() { ndB.HandlePeerProposal("C", 0, 1, vC) })
			if tc.resolvedAtB {
				// A's proposal did reach B, so B resolved the 3-median. In
				// the no-payload case A itself proposed nothing; the stand-in
				// value models a proposal from before A's pending state was
				// wiped (a view change re-proposal round does exactly that).
				vA := ownA
				if !tc.withPayload {
					vA = vtime.Virtual(29 * sim.Millisecond)
				}
				loopB.At(15*sim.Millisecond, "peerA@B", func() { ndB.HandlePeerProposal("A", 0, 1, vA) })
			}
			if err := loopB.RunUntil(50 * sim.Millisecond); err != nil {
				t.Fatal(err)
			}
			if got := ndB.Resolved() == 1; got != tc.resolvedAtB {
				t.Fatalf("B resolved=%v, want %v", got, tc.resolvedAtB)
			}

			// The round: B exports, A imports. Exactly one sequence repairs.
			x := ndB.ExportReconcile("C")
			if x.Origin != "B" || x.DeadOrigin != "C" {
				t.Fatalf("export origin=%q dead=%q", x.Origin, x.DeadOrigin)
			}
			if tc.resolvedAtB && len(x.Resolutions) != 1 {
				t.Fatalf("export resolutions = %+v, want seq 1", x.Resolutions)
			}
			if !tc.resolvedAtB && len(x.DeadVotes) != 1 {
				t.Fatalf("export dead votes = %+v, want seq 1", x.DeadVotes)
			}
			if got := ndA.ImportReconcile(x); got != 1 {
				t.Fatalf("first import repaired %d, want 1", got)
			}
			// Idempotence: the fabric may duplicate or the round may retry;
			// a second import of the same export must be a no-op.
			if got := ndA.ImportReconcile(x); got != 0 {
				t.Fatalf("repeated import repaired %d, want 0", got)
			}

			want := GroupMedian([]vtime.Virtual{ownA, vB, vC})
			if tc.resolvedAtB {
				want = x.Resolutions[0].Virt
			}
			if !tc.withPayload {
				// The decision is stashed until the payload shows up; its
				// arrival delivers without proposing.
				if len(deliveredA) != 0 || ndA.ForcedPending() != 1 {
					t.Fatalf("delivered=%v forced=%d before payload", deliveredA, ndA.ForcedPending())
				}
				proposals := 0
				ndA.OnPropose = func(uint64, vtime.Virtual) { proposals++ }
				loopA.At(60*sim.Millisecond, "latePktA", func() { ndA.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
				if err := loopA.RunUntil(100 * sim.Millisecond); err != nil {
					t.Fatal(err)
				}
				if proposals != 0 {
					t.Fatalf("forced delivery proposed %d times", proposals)
				}
			}
			if err := loopA.RunUntil(120 * sim.Millisecond); err != nil {
				t.Fatal(err)
			}
			if len(deliveredA) != 1 || deliveredA[0] != want {
				t.Fatalf("A delivered %v, want [%v]", deliveredA, want)
			}
			if ndA.Pending() != 0 || ndA.ForcedPending() != 0 {
				t.Fatalf("repair left residue: pending=%d forced=%d", ndA.Pending(), ndA.ForcedPending())
			}
			if ndA.Resolved() != 1 {
				t.Fatalf("A resolved=%d, want 1", ndA.Resolved())
			}
		})
	}
}

// TestReconcileImportFences pins the rejection fences: an export from
// another view, from the device itself, or from an origin outside the
// installed live set must repair nothing.
func TestReconcileImportFences(t *testing.T) {
	loopA, rtA, ndA := reconcileTestDevice(t, "A", 85)
	rtA.OnNetDeliver = func(uint64, vtime.Virtual, sim.Time) {}
	rtA.Start()
	loopA.At(10*sim.Millisecond, "pkt", func() { ndA.HandleInbound(1, guest.Payload{Src: "c", Size: 64}) })
	if err := loopA.RunUntil(30 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	entry := []ReconcileEntry{{Seq: 1, Virt: vtime.Virtual(40 * sim.Millisecond)}}
	for _, tc := range []struct {
		name string
		x    ReconcileExport
	}{
		{name: "wrong view", x: ReconcileExport{Origin: "B", View: 7, DeadOrigin: "C", Resolutions: entry}},
		{name: "own export", x: ReconcileExport{Origin: "A", View: 0, DeadOrigin: "C", Resolutions: entry}},
	} {
		if got := ndA.ImportReconcile(tc.x); got != 0 {
			t.Fatalf("%s: repaired %d, want 0", tc.name, got)
		}
	}
	// Install a live view excluding B; B's (now stale) export must bounce.
	ndA.SetLiveReplicas(1, []string{"A", "C"})
	x := ReconcileExport{Origin: "B", View: 1, DeadOrigin: "C", Resolutions: entry}
	if got := ndA.ImportReconcile(x); got != 0 {
		t.Fatalf("dead-origin export repaired %d, want 0", got)
	}
}
