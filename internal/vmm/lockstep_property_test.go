package vmm

import (
	"testing"
	"testing/quick"

	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// Property: three replicas of a randomized workload on hosts with random
// clock offsets, drifts, rates and coresident load stay in virtual-time
// lockstep — identical outputs and interrupt counts — under the full
// proposal/pacing machinery.
func TestReplicaLockstepProperty(t *testing.T) {
	f := func(seed uint64, offRaw [3]uint16, driftRaw [3]int8, rateRaw [3]uint8, loadHost uint8, burstRaw uint8) bool {
		loop := sim.NewLoop()
		src := sim.NewSource(seed)
		boots := make([]sim.Time, 3)
		hosts := make([]*Host, 3)
		for i := 0; i < 3; i++ {
			cfg := DefaultConfig()
			// 0.8e9 .. 1.3e9 branches/s.
			cfg.BaseRate = 800_000_000 + int64(rateRaw[i]%6)*100_000_000
			offset := sim.Time(offRaw[i]%10000) * sim.Microsecond
			drift := float64(driftRaw[i]) * 1e-6
			h, err := NewHost([]string{"A", "B", "C"}[i], loop,
				src.Stream("h"+string(rune('A'+i))), sim.NewClock(offset, drift), cfg)
			if err != nil {
				return false
			}
			hosts[i] = h
			boots[i] = h.Clock().Read(0)
		}
		var rts []*Runtime
		var nds []*NetDevice
		for i := 0; i < 3; i++ {
			rt, err := NewRuntime(hosts[i], "g", echoApp{}, boots)
			if err != nil {
				return false
			}
			rt.OnSend = SendSinkFunc(func(a guest.IOAction) {})
			nd, err := NewNetDevice(rt, 3)
			if err != nil {
				return false
			}
			rts = append(rts, rt)
			nds = append(nds, nd)
		}
		for i := range nds {
			i := i
			origin := rts[i].Host().Name()
			nds[i].SendProposal = ProposalSinkFunc(func(view, seq uint64, v vtime.Virtual) {
				for j := range nds {
					if j != i {
						j := j
						loop.After(400*sim.Microsecond, "prop", func() { nds[j].HandlePeerProposal(origin, view, seq, v) })
					}
				}
			})
			rts[i].OnPace = PaceSinkFunc(func(v vtime.Virtual) {
				for j := range rts {
					if j != i {
						j := j
						name := rts[i].Host().Name()
						loop.After(400*sim.Microsecond, "pace", func() { rts[j].OnPeerVirt(name, v) })
					}
				}
			})
			rts[i].Start()
		}
		// Coresident load on one random host.
		load, err := NewRuntime(hosts[loadHost%3], "load", loadApp{}, []sim.Time{0, 0, 0})
		if err != nil {
			return false
		}
		load.OnSend = SendSinkFunc(func(a guest.IOAction) {})
		load.Start()
		// A short randomized packet stream.
		bursts := int(burstRaw%12) + 4
		for k := 0; k < bursts; k++ {
			seq := uint64(k + 1)
			at := sim.Time(k+1) * 15 * sim.Millisecond
			for i, nd := range nds {
				nd := nd
				skew := sim.Time(i) * 200 * sim.Microsecond
				loop.At(at+skew, "in", func() {
					nd.HandleInbound(seq, guest.Payload{Src: "c", Size: 256, Data: seq})
				})
			}
		}
		if err := loop.RunUntil(sim.Second); err != nil {
			return false
		}
		d0 := rts[0].VM().OutputDigest()
		for _, rt := range rts {
			if rt.VM().OutputDigest() != d0 {
				return false
			}
			// At a fixed REAL-time cutoff, replicas sit at different points
			// of the same virtual trajectory, so progress-dependent counters
			// (branches, timer ticks) legitimately differ. Event counters
			// tied to the finite packet stream must agree exactly.
			a, b := rt.VM().Stats(), rts[0].VM().Stats()
			if a.NetInterrupts != b.NetInterrupts ||
				a.DiskInterrupts != b.DiskInterrupts ||
				a.PacketsSent != b.PacketsSent ||
				a.PacketsReceived != b.PacketsReceived {
				return false
			}
			if rt.Stats().Divergences != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
