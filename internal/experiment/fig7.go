package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// Fig7Config parameterizes the PARSEC-like computation experiment.
type Fig7Config struct {
	Seed     uint64
	Profiles []apps.ParsecProfile
	// Timeout per run.
	Timeout sim.Time
}

// DefaultFig7Config returns the paper's five applications with the
// calibration described in DESIGN.md.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Seed:     17,
		Profiles: apps.PaperParsecProfiles(),
		Timeout:  120 * sim.Second,
	}
}

// fig7VMMConfig returns the disk regime calibrated for the PARSEC runs:
// mean disk service ≈ 1.7 ms (fast rotational access with cache effects),
// Δd = 8 ms, per the calibration notes in DESIGN.md.
func fig7VMMConfig() ClusterVMMPatch {
	return func(cc *core.ClusterConfig) {
		cc.VMM.DiskSeek = sim.Millisecond
		cc.VMM.DiskJitterMean = 500 * sim.Microsecond
		cc.VMM.DeltaD = vtime.Virtual(8 * sim.Millisecond)
	}
}

// ClusterVMMPatch mutates a cluster config before use.
type ClusterVMMPatch func(*core.ClusterConfig)

// Fig7Point is one application's row.
type Fig7Point struct {
	Name string
	// Measured runtimes (ms).
	Baseline, StopWatch float64
	Ratio               float64
	// DiskInterrupts observed at the guest (Fig. 7(b)).
	DiskInterrupts int64
	// Paper's values for reference.
	PaperBaseline, PaperStopWatch float64
}

// Fig7Result is the suite result.
type Fig7Result struct {
	Config Fig7Config
	Points []Fig7Point
}

// RunFig7 measures each profile under both VMMs.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	if len(cfg.Profiles) == 0 {
		return nil, fmt.Errorf("%w: no profiles", core.ErrCluster)
	}
	res := &Fig7Result{Config: cfg}
	for _, prof := range cfg.Profiles {
		base, _, err := fig7One(cfg, prof, core.ModeBaseline)
		if err != nil {
			return nil, err
		}
		sw, ints, err := fig7One(cfg, prof, core.ModeStopWatch)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig7Point{
			Name:           prof.Name,
			Baseline:       base.Milliseconds(),
			StopWatch:      sw.Milliseconds(),
			Ratio:          float64(sw) / float64(base),
			DiskInterrupts: ints,
			PaperBaseline:  prof.BaselinePaperMS,
			PaperStopWatch: prof.StopWatchPaperMS,
		})
	}
	return res, nil
}

func fig7One(cfg Fig7Config, prof apps.ParsecProfile, mode core.Mode) (sim.Time, int64, error) {
	cc := core.DefaultClusterConfig()
	cc.Seed = cfg.Seed
	cc.Mode = mode
	fig7VMMConfig()(&cc)
	hostIdx := []int{0, 1, 2}
	if mode == core.ModeBaseline {
		cc.Hosts = 1
		hostIdx = []int{0}
	}
	c, err := core.New(cc)
	if err != nil {
		return 0, 0, err
	}
	var doneAt sim.Time
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "collector", Fn: func(p *netsim.Packet) {
		if doneAt == 0 {
			doneAt = c.Loop().Now()
			c.Stop()
		}
	}}); err != nil {
		return 0, 0, err
	}
	g, err := c.Deploy("parsec", hostIdx, func() guest.App {
		a, aerr := apps.NewParsecApp(prof, "collector")
		if aerr != nil {
			panic(aerr)
		}
		return a
	})
	if err != nil {
		return 0, 0, err
	}
	c.Start()
	if err := c.Run(cfg.Timeout); err != nil {
		return 0, 0, err
	}
	if doneAt == 0 {
		return 0, 0, fmt.Errorf("%w: %s under %v never finished", core.ErrCluster, prof.Name, mode)
	}
	var ints int64
	if g.Baseline != nil {
		ints = g.Baseline.VM().Stats().DiskInterrupts
	} else {
		ints = g.Replica(0).Runtime().VM().Stats().DiskInterrupts
	}
	return doneAt, ints, nil
}

// Render prints the Fig-7 table.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7(a): PARSEC-like runtimes (ms); 7(b): disk interrupts\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %7s %7s %12s %12s\n",
		"app", "baseline", "stopwatch", "ratio", "disk#", "paper base", "paper SW")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-14s %10.0f %10.0f %7.2f %7d %12.0f %12.0f\n",
			p.Name, p.Baseline, p.StopWatch, p.Ratio, p.DiskInterrupts,
			p.PaperBaseline, p.PaperStopWatch)
	}
	return b.String()
}
