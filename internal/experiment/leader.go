package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/stats"
	"stopwatch/internal/vmm"
)

// LeaderConfig parameterizes the median-vs-leader ablation: Sec. II argues
// that prior replication systems, where one replica dictates event timing,
// would simply copy a coresident victim's signal to all replicas. This
// experiment compares StopWatch's median delivery against that design by
// letting the victim-coresident replica dictate its own timings.
type LeaderConfig struct {
	Seed         uint64
	Duration     sim.Time
	ProbeMeanGap sim.Time
	VictimFileKB int
}

// DefaultLeaderConfig mirrors the Fig-4 scenario (dense probing). The
// victim serves 128KB files: heavy enough that the coresident replica's
// Dom0 contention stands clearly above the KS sampling floor at the
// default duration (~10k probe gaps), which is what the ablation needs to
// separate the two policies — the leader leak exceeds the median leak by
// ~0.01 KS, and the floor at n samples is ~1.36·sqrt(2/n).
func DefaultLeaderConfig() LeaderConfig {
	return LeaderConfig{
		Seed:         31,
		Duration:     20 * sim.Second,
		ProbeMeanGap: 2 * sim.Millisecond,
		VictimFileKB: 128,
	}
}

// LeaderResult reports the leak under both policies.
type LeaderResult struct {
	Config LeaderConfig
	// KSMedian is the victim-induced KS shift under median delivery.
	KSMedian float64
	// KSLeader is the shift when the coresident replica dictates timing.
	KSLeader float64
	// Obs95Median / Obs95Leader: attacker effort at 95% confidence.
	Obs95Median, Obs95Leader float64
}

// RunLeader measures the leak with PolicyMedian vs PolicyOwn at the
// victim-coresident replica.
func RunLeader(cfg LeaderConfig) (*LeaderResult, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: leader config %+v", core.ErrCluster, cfg)
	}
	res := &LeaderResult{Config: cfg}

	run := func(policy vmm.DeliveryPolicy, withVictim bool) ([]float64, error) {
		cc := core.DefaultClusterConfig()
		cc.Seed = cfg.Seed
		cc.Hosts = 5
		c, err := core.New(cc)
		if err != nil {
			return nil, err
		}
		att, err := c.Deploy("attacker", []int{0, 1, 2}, func() guest.App { return apps.NewProbeApp() })
		if err != nil {
			return nil, err
		}
		for _, r := range att.Replicas() {
			r.NetDev().Policy = policy
		}
		if withVictim {
			if _, err := c.Deploy("victim", []int{2, 3, 4}, func() guest.App {
				fs, ferr := apps.NewFileServer(apps.DefaultFileServerConfig())
				if ferr != nil {
					panic(ferr)
				}
				return fs
			}); err != nil {
				return nil, err
			}
		}
		c.Start()
		ps := apps.NewProbeSource(c.Net(), c.Loop(), c.Source().Stream("probe"),
			"colluder", core.ServiceAddr("attacker"), cfg.ProbeMeanGap)
		ps.Constant = true
		ps.Start(cfg.Duration)
		if withVictim {
			cl, err := c.NewClient("victim-client")
			if err != nil {
				return nil, err
			}
			dl := apps.NewDownloader(cl)
			var kick func()
			kick = func() {
				_ = dl.Fetch(core.ServiceAddr("victim"), apps.ModeTCP, cfg.VictimFileKB<<10, func(sim.Time) { kick() })
			}
			c.Loop().At(5*sim.Millisecond, "victim-load", kick)
		}
		if err := c.Run(cfg.Duration + 200*sim.Millisecond); err != nil {
			return nil, err
		}
		// Read the VICTIM-CORESIDENT replica's observations (index 2 =
		// host 2, the shared host). Under PolicyOwn replicas diverge by
		// design; that replica is the "leader" whose timings prior systems
		// would propagate.
		probe := att.App(2).(*apps.ProbeApp)
		var gaps []float64
		for _, g := range probe.InterDeliveryGaps() {
			gaps = append(gaps, g/1e6)
		}
		if len(gaps) < 20 {
			return nil, fmt.Errorf("%w: only %d gaps", core.ErrCluster, len(gaps))
		}
		return gaps, nil
	}

	measure := func(policy vmm.DeliveryPolicy) (ks, obs float64, err error) {
		withV, err := run(policy, true)
		if err != nil {
			return 0, 0, err
		}
		withoutV, err := run(policy, false)
		if err != nil {
			return 0, 0, err
		}
		eV, err := stats.NewECDF(withV)
		if err != nil {
			return 0, 0, err
		}
		eN, err := stats.NewECDF(withoutV)
		if err != nil {
			return 0, 0, err
		}
		ks = stats.KSDistanceECDF(eV, eN)
		bn := stats.Binning{}
		for i := 1; i < 10; i++ {
			bn.Edges = append(bn.Edges, eN.Quantile(float64(i)/10))
		}
		obs, err = stats.ObservationsToDetect(bn.CellProbs(eN.CDF), bn.CellProbs(eV.CDF), 0.95)
		return ks, obs, err
	}

	var err error
	if res.KSMedian, res.Obs95Median, err = measure(vmm.PolicyMedian); err != nil {
		return nil, err
	}
	if res.KSLeader, res.Obs95Leader, err = measure(vmm.PolicyOwn); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the ablation.
func (r *LeaderResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: median delivery vs leader-dictated timing (Sec. II argument)\n")
	fmt.Fprintf(&b, "%-18s %10s %12s\n", "policy", "KS leak", "obs @0.95")
	fmt.Fprintf(&b, "%-18s %10.4f %12.1f\n", "median (StopWatch)", r.KSMedian, r.Obs95Median)
	fmt.Fprintf(&b, "%-18s %10.4f %12.1f\n", "leader-dictates", r.KSLeader, r.Obs95Leader)
	return b.String()
}
