package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"stopwatch/internal/stats"
)

// Fig8Config parameterizes the StopWatch-vs-uniform-noise comparison
// (appendix, Fig. 8). The comparison follows the paper's procedure
// literally: run the attacker's χ² test (Monte Carlo) to find the
// observations StopWatch forces at each confidence, then find the minimum
// uniform-noise bound that denies the attacker that confidence after the
// same number of observations.
type Fig8Config struct {
	Seed        int64
	Lambda      float64
	LambdaPrime float64
	// Coverage sets Δn via P[|X1−X′1| <= Δn] >= Coverage (paper: 0.9999).
	Coverage float64
	// Bins is the χ² cell count used for both schemes.
	Bins int
	// Trials per Monte-Carlo power estimate.
	Trials int
	// MaxN bounds the observation search.
	MaxN int
	// MaxNoise bounds the noise search.
	MaxNoise float64
	// Confidences to evaluate (default: 0.7, 0.8, 0.9, 0.99 as in Fig. 8).
	Confidences []float64
}

// DefaultFig8Config returns the paper's λ=1, λ′=1/2 panel.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Seed:        8,
		Lambda:      1,
		LambdaPrime: 0.5,
		Coverage:    0.9999,
		Bins:        10,
		Trials:      200,
		MaxN:        200000,
		MaxNoise:    1e6,
		Confidences: []float64{0.7, 0.8, 0.9, 0.99},
	}
}

// Fig8Point is one confidence level's delay comparison.
type Fig8Point struct {
	Confidence float64
	// ObsNeeded is the attacker effort StopWatch forces at this confidence;
	// the noise scheme is calibrated to force the same effort.
	ObsNeeded float64
	// NoiseBound is the matched uniform noise bound b (XN ~ U(0,b)).
	NoiseBound float64
	// Expected delays of the four curves in the paper's panel.
	EDelayStopWatch       float64 // E[X2:3 + Δn]
	EDelayStopWatchVictim float64 // E[X′2:3 + Δn]
	EDelayNoise           float64 // E[X1 + XN]
	EDelayNoiseVictim     float64 // E[X′1 + XN]
}

// Fig8Result carries the delay-vs-confidence comparison.
type Fig8Result struct {
	Config Fig8Config
	DeltaN float64
	Points []Fig8Point
}

// RunFig8 computes the comparison: for each confidence, the attacker's
// empirical χ² test determines the observations StopWatch forces; the
// minimal uniform-noise bound denying the attacker that confidence after
// the same number of observations is then found, and the expected delays
// of both schemes are reported.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.Lambda <= 0 || cfg.LambdaPrime <= 0 || cfg.Bins < 2 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("%w: fig8 config %+v", stats.ErrBadParam, cfg)
	}
	if len(cfg.Confidences) == 0 {
		cfg.Confidences = []float64{0.7, 0.8, 0.9, 0.99}
	}
	base := stats.Exponential{Rate: cfg.Lambda}
	vict := stats.Exponential{Rate: cfg.LambdaPrime}

	deltaN, err := stats.DeltaNForCoverage(cfg.Lambda, cfg.LambdaPrime, cfg.Coverage)
	if err != nil {
		return nil, err
	}

	med3 := stats.MedianOf3Dist(base, base, base)
	med21 := stats.MedianOf3Dist(vict, base, base)

	// StopWatch detection difficulty: the attacker tests median-of-3
	// observations against the no-victim median distribution.
	bn, err := stats.EqualProbBins(med3, cfg.Bins)
	if err != nil {
		return nil, err
	}
	nullProbs := bn.CellProbs(med3.CDF)
	altSampler := stats.MedianOf3Sampler(vict, base, base)

	eMed3 := med3.Mean()
	eMed21 := med21.Mean()

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Fig8Result{Config: cfg, DeltaN: deltaN}
	for _, conf := range cfg.Confidences {
		n, err := stats.EmpiricalObsToDetect(bn, nullProbs, altSampler, conf, cfg.Trials, cfg.MaxN, rng)
		if err != nil {
			return nil, err
		}
		b, err := stats.MinNoiseToSuppress(cfg.Lambda, cfg.LambdaPrime, cfg.Bins, n, cfg.Trials, conf, rng, cfg.MaxNoise)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig8Point{
			Confidence:            conf,
			ObsNeeded:             float64(n),
			NoiseBound:            b,
			EDelayStopWatch:       eMed3 + deltaN,
			EDelayStopWatchVictim: eMed21 + deltaN,
			EDelayNoise:           base.Mean() + b/2,
			EDelayNoiseVictim:     vict.Mean() + b/2,
		})
	}
	return res, nil
}

// Render prints the delay comparison.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: expected delay, StopWatch vs uniform noise (λ=%.3g, λ'=%.3g, Δn=%.2f)\n",
		r.Config.Lambda, r.Config.LambdaPrime, r.DeltaN)
	fmt.Fprintf(&b, "%10s %10s %10s %12s %14s %12s %14s\n",
		"confidence", "obs", "noise b", "E[X2:3+Δn]", "E[X'2:3+Δn]", "E[X1+XN]", "E[X'1+XN]")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.2f %10.1f %10.2f %12.3f %14.3f %12.3f %14.3f\n",
			p.Confidence, p.ObsNeeded, p.NoiseBound,
			p.EDelayStopWatch, p.EDelayStopWatchVictim, p.EDelayNoise, p.EDelayNoiseVictim)
	}
	return b.String()
}
