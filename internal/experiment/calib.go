package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// CalibConfig parameterizes the Δn sweep of Sec. VII-A: how large must the
// network-interrupt offset be before synchrony violations (divergences)
// vanish, and what latency does each choice cost?
type CalibConfig struct {
	Seed uint64
	// DeltaNsMS are the Δn values to sweep, in milliseconds of virtual time.
	DeltaNsMS []float64
	// Duration of each run.
	Duration sim.Time
	// ProbeMeanGap drives the packet stream under test.
	ProbeMeanGap sim.Time
	// WithLoad adds a coresident active guest to stress the I/O path.
	WithLoad bool
}

// DefaultCalibConfig sweeps 2–16 ms.
func DefaultCalibConfig() CalibConfig {
	return CalibConfig{
		Seed:         23,
		DeltaNsMS:    []float64{2, 4, 6, 8, 10, 12, 16},
		Duration:     10 * sim.Second,
		ProbeMeanGap: 15 * sim.Millisecond,
		WithLoad:     true,
	}
}

// CalibPoint is one Δn's outcome.
type CalibPoint struct {
	DeltaNMS float64
	// Divergences across the guest's replicas (synchrony violations).
	Divergences int
	// Deliveries is the number of packets delivered.
	Deliveries int
	// MeanLatencyMS is the mean ingress→guest delivery latency (real ms,
	// measured at replica 0).
	MeanLatencyMS float64
}

// CalibResult is the sweep outcome.
type CalibResult struct {
	Config CalibConfig
	Points []CalibPoint
}

// RunCalib sweeps Δn and reports the divergence/latency tradeoff.
func RunCalib(cfg CalibConfig) (*CalibResult, error) {
	if len(cfg.DeltaNsMS) == 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: calib config %+v", core.ErrCluster, cfg)
	}
	res := &CalibResult{Config: cfg}
	for _, dn := range cfg.DeltaNsMS {
		pt, err := calibOne(cfg, dn)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func calibOne(cfg CalibConfig, deltaNMS float64) (CalibPoint, error) {
	cc := core.DefaultClusterConfig()
	cc.Seed = cfg.Seed
	cc.Hosts = 5
	cc.VMM.DeltaN = vtime.Virtual(deltaNMS * float64(sim.Millisecond))
	c, err := core.New(cc)
	if err != nil {
		return CalibPoint{}, err
	}
	att, err := c.Deploy("probe", []int{0, 1, 2}, func() guest.App { return apps.NewProbeApp() })
	if err != nil {
		return CalibPoint{}, err
	}
	if cfg.WithLoad {
		if _, err := c.Deploy("load", []int{2, 3, 4}, func() guest.App {
			b := apps.NewBeaconApp(vtime.Virtual(6 * sim.Millisecond))
			b.Sink = "load-sink"
			return b
		}); err != nil {
			return CalibPoint{}, err
		}
	}
	// Measure delivery latency: record send times by probe sequence and
	// match against replica-0 injections.
	sentAt := make(map[uint64]sim.Time)
	var latencies []sim.Time
	base := c.Net()
	_ = base
	att.Replica(0).Runtime().OnNetDeliver = func(seq uint64, v vtime.Virtual, real sim.Time) {
		if t0, ok := sentAt[seq]; ok {
			latencies = append(latencies, real-t0)
		}
	}
	c.Start()
	ps := apps.NewProbeSource(c.Net(), c.Loop(), c.Source().Stream("probe"),
		"colluder", core.ServiceAddr("probe"), cfg.ProbeMeanGap)
	// Probes are the only traffic to this guest, so the ingress multicast
	// sequence equals the probe emission sequence.
	ps.OnSend = func(seq uint64, at sim.Time) { sentAt[seq] = at }
	ps.Start(cfg.Duration)
	if err := c.Run(cfg.Duration + 200*sim.Millisecond); err != nil {
		return CalibPoint{}, err
	}
	var meanMS float64
	for _, l := range latencies {
		meanMS += l.Milliseconds()
	}
	if len(latencies) > 0 {
		meanMS /= float64(len(latencies))
	}
	return CalibPoint{
		DeltaNMS:      deltaNMS,
		Divergences:   att.Divergences(),
		Deliveries:    len(latencies),
		MeanLatencyMS: meanMS,
	}, nil
}

// Render prints the calibration table.
func (r *CalibResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec VII-A: Δn calibration (load=%v)\n", r.Config.WithLoad)
	fmt.Fprintf(&b, "%8s %12s %12s %14s\n", "Δn ms", "divergences", "deliveries", "mean lat ms")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.0f %12d %12d %14.2f\n", p.DeltaNMS, p.Divergences, p.Deliveries, p.MeanLatencyMS)
	}
	return b.String()
}
