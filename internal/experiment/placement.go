package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/placement"
)

// PlacementConfig parameterizes the Sec.-VIII utilization table.
type PlacementConfig struct {
	// Ns are the cluster sizes to evaluate (each ≡ 3 mod 6).
	Ns []int
	// Capacity overrides per-machine capacity; 0 uses the maximum (n-1)/2.
	Capacity int
}

// DefaultPlacementConfig evaluates the theorem family across two decades.
func DefaultPlacementConfig() PlacementConfig {
	return PlacementConfig{Ns: []int{9, 15, 21, 27, 33, 63, 99, 153}}
}

// PlacementResult wraps the utilization table.
type PlacementResult struct {
	Config PlacementConfig
	Rows   []placement.UtilizationRow
}

// RunPlacement builds and verifies the Theorem-2 placements and the greedy
// comparison for each n.
func RunPlacement(cfg PlacementConfig) (*PlacementResult, error) {
	rows, err := placement.UtilizationTable(cfg.Ns, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	return &PlacementResult{Config: cfg, Rows: rows}, nil
}

// Render prints the Sec.-VIII table.
func (r *PlacementResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec VIII: replica placement utilization (Theorems 1-2)\n")
	fmt.Fprintf(&b, "%6s %5s %10s %8s %9s %10s %8s\n",
		"n", "c", "Theorem2", "greedy", "isolated", "Thm1 max", "gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %5d %10d %8d %9d %10d %8.2f\n",
			row.N, row.C, row.Theorem2, row.Greedy, row.Isolated, row.Theorem1Bound, row.UtilizationGain)
	}
	return b.String()
}
