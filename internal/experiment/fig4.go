package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/stats"
)

// Fig4Config parameterizes the live side-channel measurement: an attacker
// VM receiving a probe packet stream, with and without a victim VM whose
// one shared replica host carries its file-serving load.
type Fig4Config struct {
	Seed uint64
	// Duration of each run.
	Duration sim.Time
	// ProbeMeanGap is the mean inter-probe gap of the attacker's inbound
	// stream.
	ProbeMeanGap sim.Time
	// VictimFileKB is the file the victim continuously serves.
	VictimFileKB int
	// Bins for the χ² detection estimate.
	Bins int
}

// DefaultFig4Config gives ~15000 observations per run. The probe stream is
// dense (mean gap 2ms): with sparse probes the victim's sub-millisecond
// delay perturbations drown in the probes' own inter-arrival variance, and
// neither system shows a channel. Dense probing is the attacker's best
// strategy and the regime the paper's Fig-4 run reflects.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Seed:         7,
		Duration:     30 * sim.Second,
		ProbeMeanGap: 2 * sim.Millisecond,
		VictimFileKB: 256,
		Bins:         10,
	}
}

// Fig4Result carries the empirical inter-delivery distributions and the
// derived detection-difficulty curves.
type Fig4Result struct {
	Config Fig4Config

	// Virtual inter-delivery gaps (ms) at the attacker's replicas under
	// StopWatch, with and without the victim.
	SWGapsVictim, SWGapsNoVictim []float64
	// Real inter-delivery gaps (ms) at the baseline attacker.
	BaseGapsVictim, BaseGapsNoVictim []float64

	// KS distances between the with/without distributions.
	KSStopWatch, KSBaseline float64

	Confidences []float64
	// Observations needed (χ² on ECDF bins).
	ObsWith, ObsWithout []float64

	// Divergences across attacker replicas during the victim run.
	Divergences int
}

// RunFig4 performs the four runs (StopWatch/baseline × victim/no-victim)
// and derives Fig. 4(a) and 4(b).
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Duration <= 0 || cfg.ProbeMeanGap <= 0 || cfg.Bins < 2 {
		return nil, fmt.Errorf("%w: fig4 config %+v", core.ErrCluster, cfg)
	}
	res := &Fig4Result{Config: cfg, Confidences: stats.StandardConfidences()}

	swV, div, err := runSWProbe(cfg, true)
	if err != nil {
		return nil, err
	}
	res.SWGapsVictim = swV
	res.Divergences = div
	swN, _, err := runSWProbe(cfg, false)
	if err != nil {
		return nil, err
	}
	res.SWGapsNoVictim = swN

	bV, err := runBaseProbe(cfg, true)
	if err != nil {
		return nil, err
	}
	res.BaseGapsVictim = bV
	bN, err := runBaseProbe(cfg, false)
	if err != nil {
		return nil, err
	}
	res.BaseGapsNoVictim = bN

	// KS distances.
	eSWV, err := stats.NewECDF(res.SWGapsVictim)
	if err != nil {
		return nil, err
	}
	eSWN, err := stats.NewECDF(res.SWGapsNoVictim)
	if err != nil {
		return nil, err
	}
	res.KSStopWatch = stats.KSDistanceECDF(eSWV, eSWN)
	eBV, err := stats.NewECDF(res.BaseGapsVictim)
	if err != nil {
		return nil, err
	}
	eBN, err := stats.NewECDF(res.BaseGapsNoVictim)
	if err != nil {
		return nil, err
	}
	res.KSBaseline = stats.KSDistanceECDF(eBV, eBN)

	// Detection curves: bin by the no-victim ECDF's quantiles.
	obsFrom := func(noVict, vict *stats.ECDF) ([]float64, error) {
		bn := stats.Binning{}
		for i := 1; i < cfg.Bins; i++ {
			bn.Edges = append(bn.Edges, noVict.Quantile(float64(i)/float64(cfg.Bins)))
		}
		p := bn.CellProbs(noVict.CDF)
		q := bn.CellProbs(vict.CDF)
		return stats.DetectionCurve(p, q, res.Confidences)
	}
	res.ObsWith, err = obsFrom(eSWN, eSWV)
	if err != nil {
		return nil, err
	}
	res.ObsWithout, err = obsFrom(eBN, eBV)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runSWProbe runs the StopWatch scenario: 5 hosts, attacker on {0,1,2},
// victim (when present) on {2,3,4} — exactly one shared host.
func runSWProbe(cfg Fig4Config, withVictim bool) (gapsMS []float64, divergences int, err error) {
	cc := core.DefaultClusterConfig()
	cc.Seed = cfg.Seed
	cc.Hosts = 5
	c, err := core.New(cc)
	if err != nil {
		return nil, 0, err
	}
	att, err := c.Deploy("attacker", []int{0, 1, 2}, func() guest.App { return apps.NewProbeApp() })
	if err != nil {
		return nil, 0, err
	}
	var vic *core.Guest
	if withVictim {
		vic, err = c.Deploy("victim", []int{2, 3, 4}, func() guest.App {
			fs, ferr := apps.NewFileServer(apps.DefaultFileServerConfig())
			if ferr != nil {
				panic(ferr) // factory cannot fail with the default config
			}
			return fs
		})
		if err != nil {
			return nil, 0, err
		}
	}
	c.Start()

	ps := apps.NewProbeSource(c.Net(), c.Loop(), c.Source().Stream("probe"),
		"colluder", core.ServiceAddr("attacker"), cfg.ProbeMeanGap)
	ps.Constant = true
	ps.Start(cfg.Duration)

	if withVictim {
		cl, err := c.NewClient("victim-client")
		if err != nil {
			return nil, 0, err
		}
		dl := apps.NewDownloader(cl)
		var kick func()
		kick = func() {
			_ = dl.Fetch(core.ServiceAddr("victim"), apps.ModeTCP, cfg.VictimFileKB<<10, func(sim.Time) { kick() })
		}
		// Three concurrent download streams give the victim a realistic
		// serving duty cycle on its hosts.
		for i := 0; i < 3; i++ {
			c.Loop().At(sim.Time(i+1)*5*sim.Millisecond, "victim-load", kick)
		}
	}

	if err := c.Run(cfg.Duration + 200*sim.Millisecond); err != nil {
		return nil, 0, err
	}
	if err := att.CheckLockstep(); err != nil {
		return nil, 0, err
	}
	probe := att.App(0).(*apps.ProbeApp)
	for _, g := range probe.InterDeliveryGaps() {
		gapsMS = append(gapsMS, g/1e6)
	}
	div := att.Divergences()
	if vic != nil {
		div += vic.Divergences()
	}
	return gapsMS, div, nil
}

// runBaseProbe runs the baseline scenario: attacker alone on one host, the
// victim (when present) coresident on the same host.
func runBaseProbe(cfg Fig4Config, withVictim bool) ([]float64, error) {
	cc := core.DefaultClusterConfig()
	cc.Seed = cfg.Seed + 1000
	cc.Mode = core.ModeBaseline
	cc.Hosts = 1
	c, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	att, err := c.Deploy("attacker", []int{0}, func() guest.App { return apps.NewProbeApp() })
	if err != nil {
		return nil, err
	}
	if withVictim {
		if _, err := c.Deploy("victim", []int{0}, func() guest.App {
			fs, ferr := apps.NewFileServer(apps.DefaultFileServerConfig())
			if ferr != nil {
				panic(ferr)
			}
			return fs
		}); err != nil {
			return nil, err
		}
	}
	c.Start()
	ps := apps.NewProbeSource(c.Net(), c.Loop(), c.Source().Stream("probe"),
		"colluder", core.ServiceAddr("attacker"), cfg.ProbeMeanGap)
	ps.Constant = true
	ps.Start(cfg.Duration)
	if withVictim {
		cl, err := c.NewClient("victim-client")
		if err != nil {
			return nil, err
		}
		dl := apps.NewDownloader(cl)
		var kick func()
		kick = func() {
			_ = dl.Fetch(core.ServiceAddr("victim"), apps.ModeTCP, cfg.VictimFileKB<<10, func(sim.Time) { kick() })
		}
		// Three concurrent download streams give the victim a realistic
		// serving duty cycle on its hosts.
		for i := 0; i < 3; i++ {
			c.Loop().At(sim.Time(i+1)*5*sim.Millisecond, "victim-load", kick)
		}
	}
	if err := c.Run(cfg.Duration + 200*sim.Millisecond); err != nil {
		return nil, err
	}
	probe := att.App(0).(*apps.ProbeApp)
	var gaps []float64
	for _, g := range probe.InterDeliveryGaps() {
		gaps = append(gaps, g/1e6)
	}
	return gaps, nil
}

// Render prints the Fig-4 series.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	sumV, _ := stats.Summarize(r.SWGapsVictim)
	sumN, _ := stats.Summarize(r.SWGapsNoVictim)
	fmt.Fprintf(&b, "Fig 4(a): virtual inter-delivery gaps at attacker (ms)\n")
	fmt.Fprintf(&b, "  with victim:    n=%d mean=%.2f p50=%.2f p95=%.2f\n", sumV.N, sumV.Mean, sumV.P50, sumV.P95)
	fmt.Fprintf(&b, "  without victim: n=%d mean=%.2f p50=%.2f p95=%.2f\n", sumN.N, sumN.Mean, sumN.P50, sumN.P95)
	fmt.Fprintf(&b, "  KS distance: StopWatch=%.4f baseline=%.4f (suppression ×%.1f)\n",
		r.KSStopWatch, r.KSBaseline, r.KSBaseline/r.KSStopWatch)
	fmt.Fprintf(&b, "  attacker replica divergences: %d\n\n", r.Divergences)
	fmt.Fprintf(&b, "Fig 4(b): observations needed to detect victim\n")
	fmt.Fprintf(&b, "%10s %12s %12s\n", "confidence", "w/ SW", "w/o SW")
	for i, c := range r.Confidences {
		fmt.Fprintf(&b, "%10.2f %12.1f %12.1f\n", c, r.ObsWith[i], r.ObsWithout[i])
	}
	return b.String()
}
