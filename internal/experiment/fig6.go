package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
)

// Fig6Config parameterizes the NFS (nhfsstone) experiment.
type Fig6Config struct {
	Seed uint64
	// Rates are the offered aggregate op rates (paper: 25..400/s).
	Rates []float64
	// Processes is the client process count (paper: 5).
	Processes int
	// LoadDuration is how long ops are issued per point.
	LoadDuration sim.Time
	// DrainDuration lets in-flight ops finish.
	DrainDuration sim.Time
}

// DefaultFig6Config mirrors the paper's sweep.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Seed:          13,
		Rates:         []float64{25, 50, 100, 200, 400},
		Processes:     5,
		LoadDuration:  4 * sim.Second,
		DrainDuration: 2 * sim.Second,
	}
}

// Fig6Point is one offered-rate row.
type Fig6Point struct {
	Rate float64
	// Mean per-op latency (ms).
	LatencyBaseline, LatencyStopWatch float64
	Ratio                             float64
	// Packets per op at the client (StopWatch runs).
	ClientToServerPerOp, ServerToClientPerOp float64
	// Ops completed in the StopWatch run.
	OpsCompleted uint64
}

// Fig6Result is the sweep.
type Fig6Result struct {
	Config Fig6Config
	Points []Fig6Point
}

// RunFig6 sweeps offered rates under both VMMs.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	if len(cfg.Rates) == 0 || cfg.Processes <= 0 || cfg.LoadDuration <= 0 {
		return nil, fmt.Errorf("%w: fig6 config %+v", core.ErrCluster, cfg)
	}
	res := &Fig6Result{Config: cfg}
	for _, rate := range cfg.Rates {
		base, _, _, _, err := fig6One(cfg, rate, core.ModeBaseline)
		if err != nil {
			return nil, err
		}
		sw, c2s, s2c, ops, err := fig6One(cfg, rate, core.ModeStopWatch)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig6Point{
			Rate:                rate,
			LatencyBaseline:     base,
			LatencyStopWatch:    sw,
			Ratio:               sw / base,
			ClientToServerPerOp: c2s,
			ServerToClientPerOp: s2c,
			OpsCompleted:        ops,
		})
	}
	return res, nil
}

func fig6One(cfg Fig6Config, rate float64, mode core.Mode) (meanMS, c2sPerOp, s2cPerOp float64, ops uint64, err error) {
	cc := core.DefaultClusterConfig()
	cc.Seed = cfg.Seed + uint64(rate*10)
	cc.Mode = mode
	// Warm-server disk regime: the paper's NFS server sustained 400 ops/s
	// at ~15 ms latency, which a 4 ms-seek cold disk cannot (too few IOPS);
	// its working set was clearly cached. Mean service ≈ 1.4 ms.
	cc.VMM.DiskSeek = sim.Millisecond
	cc.VMM.DiskJitterMean = 300 * sim.Microsecond
	hostIdx := []int{0, 1, 2}
	if mode == core.ModeBaseline {
		cc.Hosts = 1
		hostIdx = []int{0}
	}
	c, err := core.New(cc)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if _, err := c.Deploy("nfs", hostIdx, func() guest.App {
		s, serr := apps.NewNFSServer(16)
		if serr != nil {
			panic(serr)
		}
		return s
	}); err != nil {
		return 0, 0, 0, 0, err
	}
	cl, err := c.NewClient("nfs-client")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	c.Start()
	gen, err := apps.NewNFSLoadGen(c.Loop(), c.Source().Stream("nfsgen"), cl, core.ServiceAddr("nfs"), apps.PaperMix(), apps.NFSLoadGenConfig{
		Processes:  cfg.Processes,
		RatePerSec: rate,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	gen.Start(cfg.LoadDuration)
	if err := c.Run(cfg.LoadDuration + cfg.DrainDuration); err != nil {
		return 0, 0, 0, 0, err
	}
	lats := gen.Latencies()
	if len(lats) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("%w: no NFS ops completed at rate %v under %v", core.ErrCluster, rate, mode)
	}
	var sum sim.Time
	for _, l := range lats {
		sum += l
	}
	meanMS = (sum / sim.Time(len(lats))).Milliseconds()
	ops = gen.Completed()
	c2sPerOp = float64(cl.PacketsSent()) / float64(ops)
	s2cPerOp = float64(cl.PacketsReceived()) / float64(ops)
	return meanMS, c2sPerOp, s2cPerOp, ops, nil
}

// Render prints the Fig-6 table.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6(a): NFS mean latency per op (ms); 6(b): packets per op\n")
	fmt.Fprintf(&b, "%8s %10s %10s %7s %10s %10s %8s\n",
		"rate/s", "baseline", "stopwatch", "ratio", "c→s/op", "s→c/op", "ops")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.0f %10.2f %10.2f %7.2f %10.2f %10.2f %8d\n",
			p.Rate, p.LatencyBaseline, p.LatencyStopWatch, p.Ratio,
			p.ClientToServerPerOp, p.ServerToClientPerOp, p.OpsCompleted)
	}
	return b.String()
}
