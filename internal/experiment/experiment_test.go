package experiment

import (
	"strings"
	"testing"

	"stopwatch/internal/sim"
)

func TestFig1ShapeHalf(t *testing.T) {
	r, err := RunFig1(DefaultFig1Config())
	if err != nil {
		t.Fatal(err)
	}
	// CDFs monotone and ordered sensibly at small x: victim (slower rate)
	// is below baseline.
	for _, p := range r.Curve[1:] {
		if p.Victim > p.Baseline {
			t.Fatalf("victim CDF above baseline at %v", p.X)
		}
	}
	// The two median distributions are much closer than the raw pair
	// (Theorem 3): KS contraction by at least 2x here.
	if r.KSMedian*2 > r.KSRaw {
		t.Fatalf("median contraction too weak: raw=%v med=%v", r.KSRaw, r.KSMedian)
	}
	// Detection cost: StopWatch multiplies the observations needed at every
	// confidence, and the curves increase with confidence.
	for i := range r.Confidences {
		if r.ObsWith[i] < 4*r.ObsWithout[i] {
			t.Fatalf("conf %v: with=%v without=%v — gap too small",
				r.Confidences[i], r.ObsWith[i], r.ObsWithout[i])
		}
		if i > 0 && (r.ObsWith[i] < r.ObsWith[i-1] || r.ObsWithout[i] < r.ObsWithout[i-1]) {
			t.Fatal("detection curves not monotone in confidence")
		}
	}
	// LRT estimator lands on the paper's Fig-1(b) magnitude: ~70 obs at
	// 0.99 for the median case.
	last := len(r.Confidences) - 1
	if r.ObsWithLRT[last] < 40 || r.ObsWithLRT[last] > 110 {
		t.Fatalf("LRT w/ SW at 0.99 = %v, want ~70", r.ObsWithLRT[last])
	}
	if !strings.Contains(r.Render(), "Fig 1(a)") {
		t.Fatal("render missing header")
	}
}

func TestFig1ShapeNear(t *testing.T) {
	cfg := DefaultFig1Config()
	cfg.LambdaPrime = 10.0 / 11.0
	r, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1(c): with λ' close to λ both curves shift up dramatically
	// compared to λ'=1/2.
	half, err := RunFig1(DefaultFig1Config())
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Confidences) - 1
	if r.ObsWith[last] < 10*half.ObsWith[last] {
		t.Fatalf("near-λ case should need far more observations: %v vs %v",
			r.ObsWith[last], half.ObsWith[last])
	}
	// Paper's Fig-1(c) magnitude: hundreds to thousands at 0.99.
	if r.ObsWithLRT[last] < 800 {
		t.Fatalf("LRT w/ SW at 0.99 = %v, want thousands", r.ObsWithLRT[last])
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := RunFig8(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points: %d", len(r.Points))
	}
	prevNoise := 0.0
	for i, p := range r.Points {
		// The paper's scaling claim: StopWatch's delay is FLAT in the
		// attacker's required confidence (it is pinned by Δn), while the
		// matched uniform-noise bound GROWS.
		if p.NoiseBound < prevNoise {
			t.Fatalf("noise bound not growing with confidence: %+v", r.Points)
		}
		prevNoise = p.NoiseBound
		if p.EDelayNoise <= 0 || p.EDelayStopWatch <= 0 {
			t.Fatal("nonpositive delays")
		}
		if p.EDelayStopWatch != r.Points[0].EDelayStopWatch {
			t.Fatal("StopWatch delay should be flat in confidence")
		}
		// Attacker effort grows with confidence.
		if i > 0 && p.ObsNeeded < r.Points[i-1].ObsNeeded {
			t.Fatalf("observations not monotone: %+v", r.Points)
		}
	}
	// The StopWatch victim/no-victim delays are nearly equal (that's how
	// the defense hides the victim), per the appendix's observation.
	top := r.Points[len(r.Points)-1]
	if top.EDelayStopWatchVictim-top.EDelayStopWatch > 0.5 {
		t.Fatalf("StopWatch victim delay %v too far from %v",
			top.EDelayStopWatchVictim, top.EDelayStopWatch)
	}
	// Noise bound at 0.99 is several times the 0.70 bound (steep growth,
	// vs StopWatch's flat line). NOTE (documented in EXPERIMENTS.md): the
	// paper's absolute crossover — noise delay exceeding StopWatch's —
	// does not reproduce under our χ²-power formalization, because the
	// coverage-0.9999 Δn dominates all delays at these λ values.
	if top.NoiseBound < 3*r.Points[0].NoiseBound {
		t.Fatalf("noise growth too shallow: %+v", r.Points)
	}
	if !strings.Contains(r.Render(), "Fig 8") {
		t.Fatal("render missing header")
	}
}

func fastFig4() Fig4Config {
	cfg := DefaultFig4Config()
	cfg.Duration = 8 * sim.Second
	return cfg
}

func TestFig4SideChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := RunFig4(fastFig4())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SWGapsVictim) < 100 || len(r.BaseGapsVictim) < 100 {
		t.Fatalf("too few observations: sw=%d base=%d", len(r.SWGapsVictim), len(r.BaseGapsVictim))
	}
	// The defense: the victim's fingerprint (KS shift) must be much weaker
	// under StopWatch than under the baseline.
	if r.KSStopWatch*1.5 > r.KSBaseline {
		t.Fatalf("KS suppression too weak: SW=%v base=%v", r.KSStopWatch, r.KSBaseline)
	}
	// Observations needed: StopWatch must cost the attacker several times
	// more at every confidence (paper: an order of magnitude in this
	// scenario; the full 30s run reaches ~10x, this trimmed run a bit less).
	for i := range r.Confidences {
		if r.ObsWith[i] < 2*r.ObsWithout[i] {
			t.Fatalf("conf %v: with=%v without=%v", r.Confidences[i], r.ObsWith[i], r.ObsWithout[i])
		}
	}
	// Synchrony violations are tolerated only at a trace level (the victim's
	// TCP bursts produce rare Dom0 delay tails beyond Δn).
	if r.Divergences > 5 {
		t.Fatalf("divergences during run: %d", r.Divergences)
	}
	if !strings.Contains(r.Render(), "Fig 4(a)") {
		t.Fatal("render missing header")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultFig5Config()
	cfg.SizesKB = []int{10, 100, 1000}
	cfg.Runs = 2
	r, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Points {
		// StopWatch always costs more than baseline.
		if p.HTTPStopWatch <= p.HTTPBaseline {
			t.Fatalf("%dKB: HTTP SW %v <= base %v", p.SizeKB, p.HTTPStopWatch, p.HTTPBaseline)
		}
		if p.UDPStopWatch <= p.UDPBaseline {
			t.Fatalf("%dKB: UDP SW %v <= base %v", p.SizeKB, p.UDPStopWatch, p.UDPBaseline)
		}
		// The paper's key claims: UDP over StopWatch is far cheaper than
		// HTTP over StopWatch (the inbound-packet tax), and UDP-SW stays
		// within a small factor of UDP baseline for ≥100KB.
		if p.SizeKB >= 100 {
			if p.UDPStopWatch >= p.HTTPStopWatch {
				t.Fatalf("%dKB: UDP SW %v should beat HTTP SW %v", p.SizeKB, p.UDPStopWatch, p.HTTPStopWatch)
			}
			if p.UDPRatio > 2.0 {
				t.Fatalf("%dKB: UDP ratio %v too high", p.SizeKB, p.UDPRatio)
			}
		}
	}
	// HTTP overhead sits in the paper's regime (≤2.8x for ≥100KB; small
	// files pay at least as much).
	for _, p := range r.Points {
		if p.SizeKB >= 100 && (p.HTTPRatio < 1.3 || p.HTTPRatio > 3.5) {
			t.Fatalf("%dKB: HTTP ratio %v outside paper regime", p.SizeKB, p.HTTPRatio)
		}
	}
	if !strings.Contains(r.Render(), "Fig 5") {
		t.Fatal("render missing header")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultFig6Config()
	cfg.Rates = []float64{25, 100, 400}
	cfg.LoadDuration = 2 * sim.Second
	cfg.DrainDuration = 2 * sim.Second
	r, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Points {
		if p.LatencyStopWatch <= p.LatencyBaseline {
			t.Fatalf("rate %v: SW %v <= base %v", p.Rate, p.LatencyStopWatch, p.LatencyBaseline)
		}
		// Paper: under 2.7x at every load (ours may differ somewhat; bound
		// generously but meaningfully).
		if p.Ratio > 6 {
			t.Fatalf("rate %v: ratio %v implausible", p.Rate, p.Ratio)
		}
		if p.OpsCompleted == 0 {
			t.Fatalf("rate %v: no ops", p.Rate)
		}
	}
	// Fig 6(b): client→server packets per op decrease with offered load
	// (ACK coalescing + piggybacking).
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.ClientToServerPerOp >= first.ClientToServerPerOp {
		t.Fatalf("c→s per op should fall with load: %v → %v",
			first.ClientToServerPerOp, last.ClientToServerPerOp)
	}
	if !strings.Contains(r.Render(), "Fig 6(a)") {
		t.Fatal("render missing header")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultFig7Config()
	// Trim to three profiles for test speed; the bench runs all five.
	cfg.Profiles = cfg.Profiles[:3]
	r, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type overhead struct {
		ints int64
		ms   float64
	}
	var ovs []overhead
	for _, p := range r.Points {
		if p.StopWatch <= p.Baseline {
			t.Fatalf("%s: SW %v <= base %v", p.Name, p.StopWatch, p.Baseline)
		}
		// Paper's bound: ≤2.3x; allow a little slack for our simulator.
		if p.Ratio > 3.0 {
			t.Fatalf("%s: ratio %v above paper regime", p.Name, p.Ratio)
		}
		// Baselines land within 40% of the paper's measured values
		// (calibration sanity).
		if p.Baseline < p.PaperBaseline*0.6 || p.Baseline > p.PaperBaseline*1.4 {
			t.Fatalf("%s: baseline %v vs paper %v — calibration broken", p.Name, p.Baseline, p.PaperBaseline)
		}
		ovs = append(ovs, overhead{p.DiskInterrupts, p.StopWatch - p.Baseline})
	}
	// Fig 7(b): absolute overhead increases with disk interrupts.
	for i := range ovs {
		for j := range ovs {
			if ovs[i].ints > ovs[j].ints*2 && ovs[i].ms <= ovs[j].ms {
				t.Fatalf("overhead not correlated with disk interrupts: %+v", ovs)
			}
		}
	}
	if !strings.Contains(r.Render(), "Fig 7(a)") {
		t.Fatal("render missing header")
	}
}

func TestCalibShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultCalibConfig()
	cfg.DeltaNsMS = []float64{2, 8, 16}
	cfg.Duration = 5 * sim.Second
	r, err := RunCalib(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Divergences must vanish as Δn grows; latency must grow with Δn.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.Divergences > first.Divergences {
		t.Fatalf("divergences should not grow with Δn: %+v", r.Points)
	}
	if last.Divergences != 0 {
		t.Fatalf("Δn=16ms still diverging: %d", last.Divergences)
	}
	if last.MeanLatencyMS <= first.MeanLatencyMS {
		t.Fatalf("latency should grow with Δn: %+v", r.Points)
	}
	if !strings.Contains(r.Render(), "calibration") {
		t.Fatal("render missing header")
	}
}

func TestPlacementTable(t *testing.T) {
	r, err := RunPlacement(DefaultPlacementConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(DefaultPlacementConfig().Ns) {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// Θ(cn): the gain grows linearly in n at c=(n-1)/2.
	firstGain := r.Rows[0].UtilizationGain
	lastGain := r.Rows[len(r.Rows)-1].UtilizationGain
	if lastGain <= firstGain {
		t.Fatalf("utilization gain should grow with n: %v → %v", firstGain, lastGain)
	}
	if !strings.Contains(r.Render(), "Sec VIII") {
		t.Fatal("render missing header")
	}
}

func TestLeaderAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Run the shipped default duration: the KS floor at n gaps is
	// ~1.36·sqrt(2/n), so shortening the run drowns the ~0.01 KS
	// policy separation in sampling noise and the comparison below
	// becomes a coin flip.
	cfg := DefaultLeaderConfig()
	r, err := RunLeader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Leader-dictated timing must leak more than the median.
	if r.KSLeader <= r.KSMedian {
		t.Fatalf("leader KS %v should exceed median KS %v", r.KSLeader, r.KSMedian)
	}
	if !strings.Contains(r.Render(), "median") {
		t.Fatal("render missing header")
	}
}

func TestCollabAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultCollabConfig()
	cfg.Duration = 8 * sim.Second
	r, err := RunCollab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points: %d", len(r.Points))
	}
	if !strings.Contains(r.Render(), "Sec IX") {
		t.Fatal("render missing header")
	}
}
