// Package experiment regenerates every table and figure of the paper's
// evaluation: analytic median/detection curves (Figs. 1, 8), the simulated
// side-channel run (Fig. 4), file-download and NFS performance (Figs. 5,
// 6), PARSEC-like computation overheads (Fig. 7), the placement theorems
// (Sec. VIII), Δn/Δd calibration (Sec. VII-A), and the collaborating-
// attacker ablation (Sec. IX).
//
// Each harness returns a structured result with a Render method producing
// the paper-style series.
package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/stats"
)

// Fig1Config parameterizes the analytic median illustration (Sec. III).
type Fig1Config struct {
	// Lambda is the baseline exponential rate (paper: 1).
	Lambda float64
	// LambdaPrime is the victim-influenced rate (paper: 1/2 and 10/11).
	LambdaPrime float64
	// GridMax and GridN control the CDF sampling for Fig. 1(a).
	GridMax float64
	GridN   int
	// Bins is the χ² cell count for the detection curves.
	Bins int
}

// DefaultFig1Config returns the paper's λ=1, λ′=1/2 setting.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{Lambda: 1, LambdaPrime: 0.5, GridMax: 6, GridN: 61, Bins: 10}
}

// Fig1Point is one x of Fig. 1(a).
type Fig1Point struct {
	X                float64
	Baseline         float64 // Exp(λ) CDF
	Victim           float64 // Exp(λ′) CDF
	MedianBaselines  float64 // median of three baselines
	MedianWithVictim float64 // median of two baselines + one victim
}

// Fig1Result carries the distribution curves and both detection curves.
type Fig1Result struct {
	Config      Fig1Config
	Curve       []Fig1Point
	Confidences []float64
	// ObsWith / ObsWithout: observations needed with and without StopWatch
	// (χ²-binned noncentrality estimator).
	ObsWith, ObsWithout []float64
	// ObsWithLRT / ObsWithoutLRT: the likelihood-ratio estimator, which
	// lands on the paper's displayed magnitudes.
	ObsWithLRT, ObsWithoutLRT []float64
	// KSRaw / KSMedian: Kolmogorov–Smirnov distances before and after the
	// median microaggregation (Theorem 3 in action).
	KSRaw, KSMedian float64
}

// RunFig1 computes the analytic Fig-1 curves.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	if cfg.Lambda <= 0 || cfg.LambdaPrime <= 0 || cfg.GridN < 2 || cfg.Bins < 2 {
		return nil, fmt.Errorf("%w: fig1 config %+v", stats.ErrBadParam, cfg)
	}
	base := stats.Exponential{Rate: cfg.Lambda}
	vict := stats.Exponential{Rate: cfg.LambdaPrime}
	med3 := stats.MedianOf3CDF(base.CDF, base.CDF, base.CDF)
	med21 := stats.MedianOf3CDF(vict.CDF, base.CDF, base.CDF)

	res := &Fig1Result{Config: cfg, Confidences: stats.StandardConfidences()}
	for i := 0; i < cfg.GridN; i++ {
		x := cfg.GridMax * float64(i) / float64(cfg.GridN-1)
		res.Curve = append(res.Curve, Fig1Point{
			X:                x,
			Baseline:         base.CDF(x),
			Victim:           vict.CDF(x),
			MedianBaselines:  med3(x),
			MedianWithVictim: med21(x),
		})
	}

	// χ²-binned detection: without StopWatch the attacker tests Exp(λ′)
	// against Exp(λ); with StopWatch, the two median distributions.
	bnRaw, err := stats.EqualProbBins(base, cfg.Bins)
	if err != nil {
		return nil, err
	}
	pRaw := bnRaw.CellProbs(base.CDF)
	qRaw := bnRaw.CellProbs(vict.CDF)
	res.ObsWithout, err = stats.DetectionCurve(pRaw, qRaw, res.Confidences)
	if err != nil {
		return nil, err
	}
	medDist := &stats.FuncDist{F: med3}
	bnMed, err := stats.EqualProbBins(medDist, cfg.Bins)
	if err != nil {
		return nil, err
	}
	pMed := bnMed.CellProbs(med3)
	qMed := bnMed.CellProbs(med21)
	res.ObsWith, err = stats.DetectionCurve(pMed, qMed, res.Confidences)
	if err != nil {
		return nil, err
	}

	// LRT estimator.
	klRaw, err := stats.KLDivergence(stats.ExpPDF(cfg.LambdaPrime), stats.ExpPDF(cfg.Lambda), 0, 200/cfg.LambdaPrime, 200000)
	if err != nil {
		return nil, err
	}
	pdfBase := stats.MedianOf3PDF(base.CDF, base.CDF, base.CDF,
		stats.ExpPDF(cfg.Lambda), stats.ExpPDF(cfg.Lambda), stats.ExpPDF(cfg.Lambda))
	pdfVict := stats.MedianOf3PDF(vict.CDF, base.CDF, base.CDF,
		stats.ExpPDF(cfg.LambdaPrime), stats.ExpPDF(cfg.Lambda), stats.ExpPDF(cfg.Lambda))
	klMed, err := stats.KLDivergence(pdfVict, pdfBase, 0, 200/cfg.LambdaPrime, 200000)
	if err != nil {
		return nil, err
	}
	for _, c := range res.Confidences {
		nRaw, err := stats.ObservationsToDetectLRT(klRaw, c)
		if err != nil {
			return nil, err
		}
		nMed, err := stats.ObservationsToDetectLRT(klMed, c)
		if err != nil {
			return nil, err
		}
		res.ObsWithoutLRT = append(res.ObsWithoutLRT, nRaw)
		res.ObsWithLRT = append(res.ObsWithLRT, nMed)
	}

	res.KSRaw = stats.KSDistanceFunc(base.CDF, vict.CDF, 0, cfg.GridMax*8, 8000)
	res.KSMedian = stats.KSDistanceFunc(med3, med21, 0, cfg.GridMax*8, 8000)
	return res, nil
}

// Render prints the paper-style series.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1(a): distributions (λ=%.3g, λ'=%.3g)\n", r.Config.Lambda, r.Config.LambdaPrime)
	fmt.Fprintf(&b, "%8s %10s %10s %12s %14s\n", "x", "baseline", "victim", "median-3base", "median-2base+v")
	for _, p := range r.Curve {
		if int(p.X*10)%10 != 0 { // print integer x only; the full grid is in the struct
			continue
		}
		fmt.Fprintf(&b, "%8.2f %10.4f %10.4f %12.4f %14.4f\n",
			p.X, p.Baseline, p.Victim, p.MedianBaselines, p.MedianWithVictim)
	}
	fmt.Fprintf(&b, "\nKS distance: raw=%.4f median=%.4f (contraction ×%.2f)\n",
		r.KSRaw, r.KSMedian, r.KSRaw/r.KSMedian)
	fmt.Fprintf(&b, "\nFig 1(b/c): observations needed to detect victim\n")
	fmt.Fprintf(&b, "%10s %14s %14s %14s %14s\n", "confidence", "w/ SW (χ²)", "w/o SW (χ²)", "w/ SW (LRT)", "w/o SW (LRT)")
	for i, c := range r.Confidences {
		fmt.Fprintf(&b, "%10.2f %14.1f %14.1f %14.1f %14.1f\n",
			c, r.ObsWith[i], r.ObsWithout[i], r.ObsWithLRT[i], r.ObsWithoutLRT[i])
	}
	return b.String()
}
