package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/stats"
	"stopwatch/internal/vmm"
	"stopwatch/internal/vtime"
)

// CollabConfig parameterizes the Sec. IX collaborating-attacker study: a
// second attacker VM loads one replica host of the first attacker VM to
// marginalize that replica's influence on median calculations, and raising
// the replica count from 3 to 5 is the countermeasure.
type CollabConfig struct {
	Seed uint64
	// Duration of each run.
	Duration sim.Time
	// ProbeMeanGap drives the attacker's observed packet stream.
	ProbeMeanGap sim.Time
	// VictimFileKB sizes the victim's served file.
	VictimFileKB int
}

// DefaultCollabConfig keeps runs short enough for benches. Dense probing,
// as in Fig 4.
func DefaultCollabConfig() CollabConfig {
	return CollabConfig{
		Seed:         29,
		Duration:     20 * sim.Second,
		ProbeMeanGap: 2 * sim.Millisecond,
		VictimFileKB: 64,
	}
}

// CollabPoint reports one configuration's leak.
type CollabPoint struct {
	Name string
	// KS distance between the attacker's gap distributions with and
	// without the victim serving: the leak magnitude.
	KS float64
	// Obs95 is the estimated observations to detect at 95% confidence.
	Obs95 float64
}

// CollabResult compares the three configurations.
type CollabResult struct {
	Config CollabConfig
	Points []CollabPoint
}

// RunCollab measures the leak for: 3 replicas (no collusion), 3 replicas
// with a marginalizing colluder, and 5 replicas with the same colluder.
func RunCollab(cfg CollabConfig) (*CollabResult, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: collab config %+v", core.ErrCluster, cfg)
	}
	res := &CollabResult{Config: cfg}
	type variant struct {
		name        string
		replicas    int
		marginalize bool
	}
	for _, v := range []variant{
		{"3-replicas", 3, false},
		{"3-replicas+colluder", 3, true},
		{"5-replicas+colluder", 5, true},
	} {
		withV, err := collabGaps(cfg, v.replicas, v.marginalize, true)
		if err != nil {
			return nil, fmt.Errorf("%s (victim): %w", v.name, err)
		}
		withoutV, err := collabGaps(cfg, v.replicas, v.marginalize, false)
		if err != nil {
			return nil, fmt.Errorf("%s (no victim): %w", v.name, err)
		}
		eV, err := stats.NewECDF(withV)
		if err != nil {
			return nil, err
		}
		eN, err := stats.NewECDF(withoutV)
		if err != nil {
			return nil, err
		}
		ks := stats.KSDistanceECDF(eV, eN)
		bn := stats.Binning{}
		for i := 1; i < 10; i++ {
			bn.Edges = append(bn.Edges, eN.Quantile(float64(i)/10))
		}
		obs, err := stats.ObservationsToDetect(bn.CellProbs(eN.CDF), bn.CellProbs(eV.CDF), 0.95)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, CollabPoint{Name: v.name, KS: ks, Obs95: obs})
	}
	return res, nil
}

// collabGaps runs one configuration. Topology on 7 hosts:
//
//	attacker VM1: {0,1,2} (3 replicas) or {0,1,2,3,4} (5 replicas)
//	victim:       {2,5,6} — shares exactly host 2 with VM1
//	colluder VM2: {0,5,6} — loads VM1's host 0 to marginalize that replica
func collabGaps(cfg CollabConfig, replicas int, marginalize, withVictim bool) ([]float64, error) {
	cc := core.DefaultClusterConfig()
	cc.Seed = cfg.Seed
	cc.Hosts = 7
	cc.Replicas = replicas
	c, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	attHosts := []int{0, 1, 2}
	if replicas == 5 {
		attHosts = []int{0, 1, 2, 3, 4}
	}
	att, err := c.Deploy("attacker", attHosts, func() guest.App { return apps.NewProbeApp() })
	if err != nil {
		return nil, err
	}
	// The victim and colluder are triplicated regardless of the attacker's
	// replica count — deploy them on their own 3-host sets. With Replicas=5
	// configured cluster-wide, deploy victim/colluder with 5... the cloud
	// would size every guest equally; to keep the study focused the
	// colluder and victim use beacon-style self-driving apps deployed on a
	// separate 3-replica cluster config is not possible in one cluster, so
	// they are deployed with the cluster's replica count on distinct hosts
	// when replicas==3, and as host-local load (baseline-style beacons
	// attached directly to hosts) when replicas==5.
	if withVictim {
		if replicas == 3 {
			if _, err := c.Deploy("victim", []int{2, 5, 6}, victimFactory(cfg)); err != nil {
				return nil, err
			}
		} else {
			if err := attachLocalLoad(c, 2, "victim-local", vtime.Virtual(8*sim.Millisecond)); err != nil {
				return nil, err
			}
		}
	}
	if marginalize {
		if replicas == 3 {
			if _, err := c.Deploy("colluder-vm", []int{0, 5, 6}, func() guest.App {
				b := apps.NewBeaconApp(vtime.Virtual(4 * sim.Millisecond))
				b.Compute = 6_000_000
				b.Sink = "colluder-sink"
				return b
			}); err != nil {
				return nil, err
			}
		} else {
			if err := attachLocalLoad(c, 0, "colluder-local", vtime.Virtual(4*sim.Millisecond)); err != nil {
				return nil, err
			}
		}
	}
	c.Start()
	ps := apps.NewProbeSource(c.Net(), c.Loop(), c.Source().Stream("probe"),
		"colluder-ext", core.ServiceAddr("attacker"), cfg.ProbeMeanGap)
	ps.Constant = true
	ps.Start(cfg.Duration)
	if err := c.Run(cfg.Duration + 200*sim.Millisecond); err != nil {
		return nil, err
	}
	probe := att.App(0).(*apps.ProbeApp)
	var gaps []float64
	for _, g := range probe.InterDeliveryGaps() {
		gaps = append(gaps, g/1e6)
	}
	if len(gaps) < 20 {
		return nil, fmt.Errorf("%w: only %d gaps observed", core.ErrCluster, len(gaps))
	}
	return gaps, nil
}

func victimFactory(cfg CollabConfig) func() guest.App {
	return func() guest.App {
		b := apps.NewBeaconApp(vtime.Virtual(8 * sim.Millisecond))
		b.Compute = 4_000_000
		b.DiskBytes = cfg.VictimFileKB << 10
		b.Sink = "victim-sink"
		return b
	}
}

// attachLocalLoad puts a baseline-style load guest directly on one host
// (used where a replicated deployment would change the study's topology).
func attachLocalLoad(c *core.Cluster, host int, id string, period vtime.Virtual) error {
	b := apps.NewBeaconApp(period)
	b.Compute = 6_000_000
	b.Sink = "local-sink"
	rt, err := vmm.NewBaselineRuntime(c.Host(host), id, b)
	if err != nil {
		return err
	}
	rt.OnSend = vmm.SendSinkFunc(func(a guest.IOAction) {})
	rt.Start()
	return nil
}

// Render prints the Sec.-IX comparison.
func (r *CollabResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec IX: collaborating attackers (marginalize one replica)\n")
	fmt.Fprintf(&b, "%-22s %10s %12s\n", "configuration", "KS leak", "obs @0.95")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-22s %10.4f %12.1f\n", p.Name, p.KS, p.Obs95)
	}
	return b.String()
}
