package experiment

import (
	"fmt"
	"strings"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
)

// Fig5Config parameterizes the file-download latency sweep.
type Fig5Config struct {
	Seed uint64
	// SizesKB are the file sizes (paper: 1KB–10MB, log scale).
	SizesKB []int
	// Runs per point (paper: 10).
	Runs int
	// Timeout per download.
	Timeout sim.Time
}

// DefaultFig5Config mirrors the paper's sweep.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Seed:    11,
		SizesKB: []int{1, 10, 100, 1000, 10000},
		Runs:    10,
		Timeout: 300 * sim.Second,
	}
}

// Fig5Point is one (size, transport) row.
type Fig5Point struct {
	SizeKB int
	// Mean latencies (ms).
	HTTPBaseline, HTTPStopWatch float64
	UDPBaseline, UDPStopWatch   float64
	// Ratios.
	HTTPRatio, UDPRatio float64
}

// Fig5Result is the full sweep.
type Fig5Result struct {
	Config Fig5Config
	Points []Fig5Point
}

// RunFig5 sweeps sizes × transports × VMMs. Every download is from a cold
// start: a fresh cluster per run, as in the paper.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if len(cfg.SizesKB) == 0 || cfg.Runs <= 0 {
		return nil, fmt.Errorf("%w: fig5 config %+v", core.ErrCluster, cfg)
	}
	res := &Fig5Result{Config: cfg}
	for _, kb := range cfg.SizesKB {
		p := Fig5Point{SizeKB: kb}
		var err error
		if p.HTTPBaseline, err = fig5Mean(cfg, kb, apps.ModeTCP, core.ModeBaseline); err != nil {
			return nil, err
		}
		if p.HTTPStopWatch, err = fig5Mean(cfg, kb, apps.ModeTCP, core.ModeStopWatch); err != nil {
			return nil, err
		}
		if p.UDPBaseline, err = fig5Mean(cfg, kb, apps.ModeUDP, core.ModeBaseline); err != nil {
			return nil, err
		}
		if p.UDPStopWatch, err = fig5Mean(cfg, kb, apps.ModeUDP, core.ModeStopWatch); err != nil {
			return nil, err
		}
		p.HTTPRatio = p.HTTPStopWatch / p.HTTPBaseline
		p.UDPRatio = p.UDPStopWatch / p.UDPBaseline
		res.Points = append(res.Points, p)
	}
	return res, nil
}

func fig5Mean(cfg Fig5Config, kb int, mode apps.FileServerMode, vmmMode core.Mode) (float64, error) {
	var sum float64
	for run := 0; run < cfg.Runs; run++ {
		lat, err := fig5One(cfg.Seed+uint64(run)*1337, kb, mode, vmmMode, cfg.Timeout)
		if err != nil {
			return 0, err
		}
		sum += lat.Milliseconds()
	}
	return sum / float64(cfg.Runs), nil
}

func fig5One(seed uint64, kb int, mode apps.FileServerMode, vmmMode core.Mode, timeout sim.Time) (sim.Time, error) {
	cc := core.DefaultClusterConfig()
	cc.Seed = seed
	cc.Mode = vmmMode
	hostIdx := []int{0, 1, 2}
	if vmmMode == core.ModeBaseline {
		cc.Hosts = 1
		hostIdx = []int{0}
	}
	c, err := core.New(cc)
	if err != nil {
		return 0, err
	}
	fsCfg := apps.DefaultFileServerConfig()
	fsCfg.Mode = mode
	if _, err := c.Deploy("web", hostIdx, func() guest.App {
		fs, ferr := apps.NewFileServer(fsCfg)
		if ferr != nil {
			panic(ferr)
		}
		return fs
	}); err != nil {
		return 0, err
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		return 0, err
	}
	c.Start()
	dl := apps.NewDownloader(cl)
	var lat sim.Time
	c.Loop().At(20*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(core.ServiceAddr("web"), mode, kb<<10, func(l sim.Time) {
			lat = l
			// Quiesce quickly once done.
			c.Stop()
		})
	})
	if err := c.Run(timeout); err != nil {
		return 0, err
	}
	if lat == 0 {
		return 0, fmt.Errorf("%w: %dKB %v/%v download did not complete", core.ErrCluster, kb, mode, vmmMode)
	}
	return lat, nil
}

// Render prints the Fig-5 table.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: file-retrieval latency (ms, mean of %d runs)\n", r.Config.Runs)
	fmt.Fprintf(&b, "%8s %12s %12s %8s %12s %12s %8s\n",
		"size KB", "HTTP base", "HTTP SW", "ratio", "UDP base", "UDP SW", "ratio")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %12.2f %12.2f %8.2f %12.2f %12.2f %8.2f\n",
			p.SizeKB, p.HTTPBaseline, p.HTTPStopWatch, p.HTTPRatio,
			p.UDPBaseline, p.UDPStopWatch, p.UDPRatio)
	}
	return b.String()
}
