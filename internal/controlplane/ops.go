package controlplane

// The typed operation model. Every cluster mutation the control plane can
// perform is one value of the Op sum — AdmitOp, EvictOp, ReplaceOp,
// DrainOp, UndrainOp, FailOp, EvacuateOp, RepairOp, MigrateOp — submitted
// through the
// single ControlPlane.Apply entry point. Apply records each submission as
// an Outcome in the append-only operations log (ControlPlane.Log) and
// streams its progress to Watch subscribers, so lifecycle actions in the
// deterministic cloud are themselves serialized, logged and replayable:
// two runs with the same seed produce byte-identical logs.

import (
	"fmt"
	"strings"

	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/placement"
	"stopwatch/internal/sim"
)

// OpKind discriminates the Op sum.
type OpKind int

// Operation kinds, in submission-surface order.
const (
	KindAdmit OpKind = iota + 1
	KindEvict
	KindReplace
	KindDrain
	KindUndrain
	KindFail
	KindEvacuate
	KindRepair
	KindMigrate
)

func (k OpKind) String() string {
	switch k {
	case KindAdmit:
		return "admit"
	case KindEvict:
		return "evict"
	case KindReplace:
		return "replace"
	case KindDrain:
		return "drain"
	case KindUndrain:
		return "undrain"
	case KindFail:
		return "fail"
	case KindEvacuate:
		return "evacuate"
	case KindRepair:
		return "repair"
	case KindMigrate:
		return "migrate"
	default:
		return "?"
	}
}

// Op is one control-plane operation: a value of the closed sum below,
// submitted through ControlPlane.Apply.
type Op interface {
	Kind() OpKind
	// String renders the op deterministically for the operations log.
	String() string
}

// opCause distinguishes why a replacement was submitted: directly (a
// reported replica failure), or as one move of a host drain or crash
// evacuation. The evacuation loops set it; external callers leave it zero.
type opCause int

const (
	causeDirect opCause = iota
	causeDrain
	causeCrash
)

// AdmitOp places a new guest on an edge-disjoint replica triangle and boots
// it. The Outcome carries the deployed Guest and Triangle; an admission the
// pool cannot satisfy fails with ErrRejected (which wraps
// ErrNoFeasibleHost).
type AdmitOp struct {
	GuestID string
	// Factory builds one app instance per replica.
	Factory func() guest.App
	// Done, when non-nil, fires once the op completes. Admissions are
	// synchronous — except under EnablePlannedMigration, where a blocked
	// admission may first run a child MigrateOp and complete later.
	Done func(*Outcome)
}

// Kind returns KindAdmit.
func (AdmitOp) Kind() OpKind { return KindAdmit }

func (op AdmitOp) String() string { return "admit " + op.GuestID }

// EvictOp undeploys a guest and returns its edges and capacity to the pool.
type EvictOp struct {
	GuestID string
}

// Kind returns KindEvict.
func (EvictOp) Kind() OpKind { return KindEvict }

func (op EvictOp) String() string { return "evict " + op.GuestID }

// ReplaceOp re-homes guest GuestID's replica off DeadHost through the
// Sec. VII barrier: pause → quiesce → rehome → replace → resume, each phase
// stamped on the Outcome. Done (optional) observes completion.
type ReplaceOp struct {
	GuestID  string
	DeadHost int
	// Done, when non-nil, fires once the op completes (including a
	// synchronous validation rejection).
	Done func(*Outcome)

	cause  opCause
	parent uint64
}

// Kind returns KindReplace.
func (ReplaceOp) Kind() OpKind { return KindReplace }

func (op ReplaceOp) String() string {
	return fmt.Sprintf("replace %s off %d", op.GuestID, op.DeadHost)
}

// DrainOp removes Machine from the placement pool and evacuates every
// resident replica sequentially (guest-id order) through child ReplaceOps,
// each logged with this op as parent. Done (optional) observes completion
// with the joined per-resident move errors.
type DrainOp struct {
	Machine int
	Done    func(*Outcome)
}

// Kind returns KindDrain.
func (DrainOp) Kind() OpKind { return KindDrain }

func (op DrainOp) String() string { return fmt.Sprintf("drain %d", op.Machine) }

// UndrainOp returns a drained machine's capacity to the pool.
type UndrainOp struct {
	Machine int
}

// Kind returns KindUndrain.
func (UndrainOp) Kind() OpKind { return KindUndrain }

func (op UndrainOp) String() string { return fmt.Sprintf("undrain %d", op.Machine) }

// FailOp marks Machine crashed: its capacity leaves the pool and — one
// DrainWindow later, once the dead VMM's in-flight proposals settled — every
// resident guest is reconfigured onto its live quorum (PhaseReconfigure);
// the op completes then. Detected marks a submission by the stall detector:
// the machine must already be dead at the data plane (the detector reacted
// to its silence), so the kill step is skipped and a suspicion of a live
// machine is rejected instead of executed.
type FailOp struct {
	Machine  int
	Detected bool
	Done     func(*Outcome)
}

// Kind returns KindFail.
func (FailOp) Kind() OpKind { return KindFail }

func (op FailOp) String() string {
	if op.Detected {
		return fmt.Sprintf("fail %d (detected)", op.Machine)
	}
	return fmt.Sprintf("fail %d", op.Machine)
}

// EvacuateOp re-homes every resident of a crashed machine through child
// ReplaceOps, starting once the post-crash reconfiguration gate opens.
type EvacuateOp struct {
	Machine int
	Done    func(*Outcome)
}

// Kind returns KindEvacuate.
func (EvacuateOp) Kind() OpKind { return KindEvacuate }

func (op EvacuateOp) String() string { return fmt.Sprintf("evacuate %d", op.Machine) }

// RepairOp returns a crashed, evacuated machine to service.
type RepairOp struct {
	Machine int
}

// Kind returns KindRepair.
func (RepairOp) Kind() OpKind { return KindRepair }

func (op RepairOp) String() string { return fmt.Sprintf("repair %d", op.Machine) }

// MigrateOp moves guest GuestID's replica from host From onto host To — a
// planned migration of a live replica through the same freeze + replacement
// barrier a host drain uses (footnote 4: the frozen replica's VMM keeps
// proposing, so the 3-proposal median never stalls, and the survivors are at
// or past its instruction count by switchover). Submitted directly, or as a
// child op when EnablePlannedMigration turns an infeasible Admit/Rehome into
// a one-move plan.
type MigrateOp struct {
	GuestID  string
	From, To int
	// Done, when non-nil, fires once the op completes (including a
	// synchronous validation rejection).
	Done func(*Outcome)
}

// Kind returns KindMigrate.
func (MigrateOp) Kind() OpKind { return KindMigrate }

func (op MigrateOp) String() string {
	return fmt.Sprintf("migrate %s %d->%d", op.GuestID, op.From, op.To)
}

// doneFn extracts an op's optional completion callback.
func doneFn(op Op) func(*Outcome) {
	switch op := op.(type) {
	case AdmitOp:
		return op.Done
	case ReplaceOp:
		return op.Done
	case DrainOp:
		return op.Done
	case FailOp:
		return op.Done
	case EvacuateOp:
		return op.Done
	case MigrateOp:
		return op.Done
	default:
		return nil
	}
}

// Phase is one stage of an operation's execution, stamped on the Outcome as
// it is reached and streamed as a PhaseReached event.
type Phase string

// Operation phases. Replacements run the five-stage Sec. VII barrier;
// whole-machine ops mark their coarser milestones.
const (
	PhasePlace       Phase = "place"       // admit: triangle committed in the pool
	PhaseDeploy      Phase = "deploy"      // admit: replicas wired and booted
	PhaseRelease     Phase = "release"     // evict: wiring torn down, edges returned
	PhasePause       Phase = "pause"       // replace: ingress stream paused
	PhaseQuiesce     Phase = "quiesce"     // replace: no unresolved delivery proposals
	PhaseRehome      Phase = "rehome"      // replace: pool moved the replica
	PhaseReplace     Phase = "replace"     // replace: data-plane switchover done
	PhaseResume      Phase = "resume"      // replace: ingress resumed, buffer flushed
	PhaseDrain       Phase = "drain"       // drain/fail: capacity left the pool
	PhaseUndrain     Phase = "undrain"     // undrain: capacity returned to the pool
	PhaseReconcile   Phase = "reconcile"   // fail: survivor reconcile round repaired lost proposals
	PhaseReconfigure Phase = "reconfigure" // fail: live-quorum groups installed
	PhaseEvacuate    Phase = "evacuate"    // drain/evacuate: resident moves started
	PhasePlan        Phase = "plan"        // admit/replace: infeasible request got a migration plan
)

// PhaseTiming stamps when an operation reached a phase.
type PhaseTiming struct {
	Phase Phase
	At    sim.Time
}

// PoolDelta records the placement pool's aggregate state around an
// operation.
type PoolDelta struct {
	GuestsBefore, GuestsAfter int
	UtilBefore, UtilAfter     float64
}

// Outcome is one operation's record in the operations log. Apply returns it
// at submission; asynchronous ops (replace, drain, fail, evacuate) fill in
// phases and the result as the simulation advances — watch Done(), the
// op's Done callback, or the event stream for completion. Stats is a pure
// fold over these records (FoldStats); nothing else counts decisions.
//
// Outcomes are managed strictly by pointer (Apply and Log hand out
// *Outcome): do not copy an Outcome value — the exported Phases/Guests
// slices are backed by inline buffers, so a value copy aliases the
// original log entry's arrays.
type Outcome struct {
	// Seq is the op's position in the log, from 1.
	Seq uint64
	Op  Op
	// Parent is the Seq of the op that submitted this one (a drain or
	// evacuation submitting per-resident ReplaceOps); 0 for top-level ops.
	Parent uint64

	Submitted sim.Time
	Completed sim.Time

	// Err is the typed result: nil on success, ErrRejected /
	// ErrNoFeasibleHost / ErrControlPlane wraps otherwise; check with
	// errors.Is.
	Err error

	// Phases are the barrier milestones reached, in order.
	Phases []PhaseTiming
	// QuiesceRetries counts quiescence re-checks beyond the first.
	QuiesceRetries int

	// ReconcileRounds/Repairs/Retries/GaveUp carry a FailOp's pre-commit
	// survivor reconcile round: guest rounds run, sequences repaired at
	// importers, export resends after ack loss, and pairs abandoned at the
	// attempt cap. All zero on a loss-free fabric.
	ReconcileRounds  int
	ReconcileRepairs int
	ReconcileRetries int
	ReconcileGaveUp  int

	// Guests lists the affected guest ids (the admitted/evicted/replaced
	// guest; a whole-machine op's residents at submission).
	Guests []string
	// Guest and Triangle carry an AdmitOp's result; Triangle also carries a
	// completed ReplaceOp's post-move triangle.
	Guest    *core.Guest
	Triangle placement.Triangle

	Pool PoolDelta

	done bool

	// phasesBuf/guestsBuf back Phases and Guests for typical sizes so
	// opening and advancing an outcome does not allocate per phase or per
	// single-guest op.
	phasesBuf [6]PhaseTiming
	guestsBuf [1]string
}

// setGuest records a single-guest op's affected id without allocating.
func (oc *Outcome) setGuest(id string) {
	oc.guestsBuf[0] = id
	oc.Guests = oc.guestsBuf[:1]
}

// Done reports whether the operation has completed (Err is final).
func (oc *Outcome) Done() bool { return oc.done }

// Rejected reports a validation rejection: the op completed with an error
// before reaching any phase (no barrier ran, no state changed).
func (oc *Outcome) Rejected() bool {
	return oc.done && oc.Err != nil && len(oc.Phases) == 0
}

// PhaseAt returns when the op reached the phase.
func (oc *Outcome) PhaseAt(p Phase) (sim.Time, bool) {
	for _, pt := range oc.Phases {
		if pt.Phase == p {
			return pt.At, true
		}
	}
	return 0, false
}

// String renders the outcome deterministically for the operations log.
func (oc *Outcome) String() string {
	status := "pending"
	switch {
	case oc.done && oc.Err == nil:
		status = "ok"
	case oc.done:
		status = "err=" + oc.Err.Error()
	}
	phases := make([]string, len(oc.Phases))
	for i, pt := range oc.Phases {
		phases[i] = fmt.Sprintf("%s@%d", pt.Phase, int64(pt.At))
	}
	// The reconcile segment renders only when the round actually did
	// something: loss-free runs keep their historical log bytes (and
	// digests) unchanged.
	reconcile := ""
	if oc.ReconcileRepairs+oc.ReconcileRetries+oc.ReconcileGaveUp > 0 {
		reconcile = fmt.Sprintf(" reconcile=%d/%d/%d/%d",
			oc.ReconcileRounds, oc.ReconcileRepairs, oc.ReconcileRetries, oc.ReconcileGaveUp)
	}
	return fmt.Sprintf("#%04d %s sub=%d done=%d parent=%d retries=%d guests=%v pool=%d→%d%s phases=[%s] %s",
		oc.Seq, oc.Op, int64(oc.Submitted), int64(oc.Completed), oc.Parent,
		oc.QuiesceRetries, oc.Guests, oc.Pool.GuestsBefore, oc.Pool.GuestsAfter,
		reconcile, strings.Join(phases, " "), status)
}
