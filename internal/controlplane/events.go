package controlplane

// The operation event stream. Watch subscribes a callback to every
// operation's progress: OpStarted at submission, PhaseReached per barrier
// milestone, OpCompleted or OpFailed at the end. Events fire synchronously
// on the simulation loop in deterministic order (log order, then
// subscription order), so a subscriber can drive follow-up ops — the stall
// detector chains fail → evacuate exactly this way — without perturbing
// replay determinism.

import (
	"stopwatch/internal/sim"
)

// EventKind discriminates operation events.
type EventKind int

// Event kinds.
const (
	OpStarted EventKind = iota + 1
	PhaseReached
	OpCompleted
	OpFailed
)

func (k EventKind) String() string {
	switch k {
	case OpStarted:
		return "started"
	case PhaseReached:
		return "phase"
	case OpCompleted:
		return "completed"
	case OpFailed:
		return "failed"
	default:
		return "?"
	}
}

// Event is one observation of an operation's progress.
type Event struct {
	Kind EventKind
	// Seq identifies the operation in the log (Outcome.Seq); Parent is its
	// submitting op's Seq (0 for top-level ops) — scenario auditors key
	// their one post-outcome audit off Parent == 0.
	Seq    uint64
	Parent uint64
	Op     Op
	// Phase is set for PhaseReached events.
	Phase Phase
	At    sim.Time
	// Err is set for OpFailed events.
	Err error
}

// watcher is one Watch subscription; fn is nil once cancelled.
type watcher struct {
	fn func(Event)
}

// Watch subscribes fn to the operation event stream. Events are delivered
// synchronously, in subscription order, as ops progress. The returned
// cancel removes the subscription; cancelling twice is a no-op.
func (cp *ControlPlane) Watch(fn func(Event)) (cancel func()) {
	w := &watcher{fn: fn}
	cp.watchers = append(cp.watchers, w)
	return func() { w.fn = nil }
}

// emit delivers an event to every live subscriber.
func (cp *ControlPlane) emit(ev Event) {
	for _, w := range cp.watchers {
		if w.fn != nil {
			w.fn(ev)
		}
	}
}
