package controlplane

// The control plane's typed errors, consolidated. Every infeasibility —
// admission rejection, replacement with no non-conflicting host, evacuation
// under a saturated packing — wraps the placement pool's single sentinel,
// so callers check one thing: errors.Is(outcome.Err, ErrNoFeasibleHost).

import (
	"errors"
	"fmt"

	"stopwatch/internal/placement"
)

// ErrControlPlane reports invalid control-plane configuration or use,
// including operations rejected at validation (wrong machine, guest not
// resident, a lifecycle op already in flight).
var ErrControlPlane = errors.New("controlplane: invalid")

// ErrNoFeasibleHost is the uniform infeasibility sentinel: no candidate
// triangle or host satisfies edge-disjointness, capacity and drain state.
// It is the placement pool's sentinel re-exported, so control-plane callers
// need not import placement; expected at high utilization.
var ErrNoFeasibleHost = placement.ErrNoFeasibleHost

// ErrRejected reports an admission the placement pool cannot satisfy: no
// edge-disjoint triangle with spare capacity exists. It wraps both
// ErrControlPlane and ErrNoFeasibleHost, so
// errors.Is(outcome.Err, ErrNoFeasibleHost) holds uniformly across every
// infeasible operation, admissions included.
var ErrRejected = fmt.Errorf("%w: admission rejected: %w", ErrControlPlane, placement.ErrNoFeasibleHost)
