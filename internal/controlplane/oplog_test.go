package controlplane

// Property tests for the operations log: the full Outcome log (ops, phases,
// errors) is byte-identical across two runs with the same seed, Stats
// folded from the log equals the counters a legacy hand-kept implementation
// would have incremented, and every barrier's phases arrive in protocol
// order with coherent pool deltas.

import (
	"errors"
	"strings"
	"testing"

	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// shadowStats is the hand-kept ledger the op-log fold replaced, maintained
// here by the scenario driver exactly the way the legacy verbs incremented
// it — the migration-window oracle the fold must reproduce.
type shadowStats struct {
	Stats
}

func (s *shadowStats) admit(oc *Outcome) {
	switch {
	case oc.Err == nil:
		s.Admitted++
	case errors.Is(oc.Err, ErrRejected):
		s.Rejected++
	}
}

func (s *shadowStats) evict(oc *Outcome) {
	if oc.Err == nil {
		s.Evicted++
	}
}

func (s *shadowStats) replace(oc *Outcome) {
	s.DrainRetries += oc.QuiesceRetries
	switch {
	case oc.Err == nil:
		s.Replacements++
	case !oc.Rejected():
		s.ReplacementFailures++
	}
}

// evacuation accounts a whole-machine evacuation outcome the way the
// legacy per-move callbacks did: every resident still on the machine was
// moved; each joined error is one failed move. Quiescence retries happened
// inside the child barriers, which the legacy ledger also ticked — the
// shadow reads just that field off the children, not the fold logic.
func (s *shadowStats) evacuation(cp *ControlPlane, oc *Outcome, crash bool) {
	failed := 0
	if oc.Err != nil {
		failed = len(unjoinT(oc.Err))
	}
	moved := len(oc.Guests) - failed
	for _, child := range cp.Log() {
		if child.Parent == oc.Seq {
			s.DrainRetries += child.QuiesceRetries
		}
	}
	if crash {
		s.CrashEvacuations += moved
		s.CrashEvacuationFailures += failed
	} else {
		s.Evacuations += moved
		s.EvacuationFailures += failed
	}
	s.Replacements += moved
	s.ReplacementFailures += failed
}

func unjoinT(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// runOpLogScenario drives one deterministic mini-churn through every op
// kind and returns the rendered log, the folded stats, and the shadow
// ledger.
func runOpLogScenario(t *testing.T, seed uint64) (string, Stats, Stats) {
	t.Helper()
	cp := newTestPlane(t, 9, 2, seed)
	c := cp.Cluster()
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "probe", Fn: func(*netsim.Packet) {}}); err != nil {
		t.Fatal(err)
	}
	var shadow shadowStats
	// Admit until the pool rejects twice (both outcomes must log).
	rejected := 0
	var ids []string
	for i := 0; rejected < 2 && i < 20; i++ {
		id := []string{"ga", "gb", "gc", "gd", "ge", "gf", "gg", "gh", "gi", "gj",
			"gk", "gl", "gm", "gn", "go", "gp", "gq", "gr", "gs", "gt"}[i]
		oc := cp.Apply(AdmitOp{GuestID: id, Factory: beaconFactory(vtime.Virtual(4 * sim.Millisecond))})
		shadow.admit(oc)
		if oc.Err != nil {
			if !errors.Is(oc.Err, ErrNoFeasibleHost) {
				t.Fatalf("admit %s: %v", id, oc.Err)
			}
			rejected++
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) < 4 {
		t.Fatalf("only %d guests admitted", len(ids))
	}
	// A validation rejection is an op-log record too.
	if oc := cp.Apply(EvictOp{GuestID: "ghost"}); !oc.Rejected() {
		t.Fatal("evicting an unknown guest must reject")
	} else {
		shadow.evict(oc)
	}
	evictID := ids[1]
	if oc := cp.Apply(EvictOp{GuestID: evictID}); oc.Err != nil {
		t.Fatal(oc.Err)
	} else {
		shadow.evict(oc)
	}
	c.Start()
	startPings(t, c, ids, 20*sim.Millisecond, 8*sim.Second)

	// Direct replacement of a crashed replica.
	repID := ids[0]
	c.Loop().At(300*sim.Millisecond, "crash-replica", func() {
		g, _ := c.Guest(repID)
		tri, _ := cp.Pool().Triangle(repID)
		slot, _ := g.SlotOnHost(tri[0])
		g.Replica(slot).Runtime().Stop()
		cp.Apply(ReplaceOp{GuestID: repID, DeadHost: tri[0], Done: func(oc *Outcome) { shadow.replace(oc) }})
	})
	// Planned maintenance on the busiest machine, then undrain.
	c.Loop().At(2*sim.Second, "drain", func() {
		m := busiestMachine(cp)
		cp.Apply(DrainOp{Machine: m, Done: func(oc *Outcome) {
			shadow.HostDrains++
			shadow.evacuation(cp, oc, false)
			if oc := cp.Apply(UndrainOp{Machine: m}); oc.Err != nil {
				t.Errorf("undrain: %v", oc.Err)
			}
		}})
	})
	// Whole-machine crash: fail, evacuate, repair.
	c.Loop().At(4*sim.Second, "crash", func() {
		m := busiestMachine(cp)
		oc := cp.Apply(FailOp{Machine: m})
		if oc.Rejected() {
			t.Errorf("fail: %v", oc.Err)
			return
		}
		shadow.HostFailures++
		// Every resident has a surviving pair (nothing else failed here), so
		// the pre-commit reconcile runs one round per resident; the fabric is
		// loss-free, so the rounds repair and retry nothing.
		shadow.ReconcileRounds += len(oc.Guests)
		cp.Apply(EvacuateOp{Machine: m, Done: func(oc *Outcome) {
			shadow.evacuation(cp, oc, true)
			if oc := cp.Apply(RepairOp{Machine: m}); oc.Err != nil {
				t.Errorf("repair: %v", oc.Err)
			}
		}})
	})
	if err := c.Run(9 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
	return FormatLog(cp.Log()), cp.Stats(), shadow.Stats
}

func busiestMachine(cp *ControlPlane) int {
	m := 0
	for i := 1; i < cp.Cluster().Hosts(); i++ {
		if cp.Pool().Drained(i) || cp.Failed(i) {
			continue
		}
		if cp.Pool().Drained(m) || cp.Failed(m) || len(cp.Pool().Residents(i)) > len(cp.Pool().Residents(m)) {
			m = i
		}
	}
	return m
}

// TestOpLogByteIdenticalAcrossRuns: the replay property. Two runs with the
// same seed produce byte-identical operation logs — ops, phases, timings,
// errors — and the Stats folded from the log equal the counters a legacy
// hand-kept ledger accumulates over the same run.
func TestOpLogByteIdenticalAcrossRuns(t *testing.T) {
	for _, seed := range []uint64{101, 103} {
		log1, fold1, shadow1 := runOpLogScenario(t, seed)
		log2, fold2, _ := runOpLogScenario(t, seed)
		if log1 != log2 {
			t.Fatalf("seed %d: op logs differ:\n--- first ---\n%s\n--- second ---\n%s", seed, log1, log2)
		}
		if fold1 != fold2 {
			t.Fatalf("seed %d: folded stats differ: %+v vs %+v", seed, fold1, fold2)
		}
		if fold1 != shadow1 {
			t.Fatalf("seed %d: fold %+v != legacy shadow %+v\nlog:\n%s", seed, fold1, shadow1, log1)
		}
		// The scenario exercised the whole surface.
		if fold1.Admitted == 0 || fold1.Rejected == 0 || fold1.Evicted == 0 ||
			fold1.Replacements == 0 || fold1.HostDrains == 0 || fold1.HostFailures == 0 ||
			fold1.Evacuations == 0 || fold1.CrashEvacuations == 0 {
			t.Fatalf("seed %d: scenario too weak: %+v", seed, fold1)
		}
		if !strings.Contains(log1, "err=") {
			t.Fatalf("seed %d: no rejection on the log:\n%s", seed, log1)
		}
	}
}

// TestOutcomePhaseAndPoolInvariants: each completed barrier's phases arrive
// in protocol order with non-decreasing times, and every outcome's pool
// delta matches what its op did.
func TestOutcomePhaseAndPoolInvariants(t *testing.T) {
	_, _, _ = runOpLogScenario(t, 107) // exercises the harness
	cp := newTestPlane(t, 9, 2, 107)
	c := cp.Cluster()
	oc := cp.Apply(AdmitOp{GuestID: "web", Factory: beaconFactory(vtime.Virtual(4 * sim.Millisecond))})
	if oc.Err != nil {
		t.Fatal(oc.Err)
	}
	if oc.Pool.GuestsAfter != oc.Pool.GuestsBefore+1 {
		t.Fatalf("admit pool delta %+v", oc.Pool)
	}
	if _, ok := oc.PhaseAt(PhasePlace); !ok {
		t.Fatal("admit without place phase")
	}
	c.Start()
	tri := oc.Triangle
	var rep *Outcome
	c.Loop().At(300*sim.Millisecond, "crash", func() {
		g, _ := c.Guest("web")
		slot, _ := g.SlotOnHost(tri[2])
		g.Replica(slot).Runtime().Stop()
		rep = cp.Apply(ReplaceOp{GuestID: "web", DeadHost: tri[2]})
	})
	if err := c.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Done() || rep.Err != nil {
		t.Fatalf("replacement outcome: %+v", rep)
	}
	want := []Phase{PhasePause, PhaseQuiesce, PhaseRehome, PhaseReplace, PhaseResume}
	if len(rep.Phases) != len(want) {
		t.Fatalf("phases %v, want %v", rep.Phases, want)
	}
	for i, pt := range rep.Phases {
		if pt.Phase != want[i] {
			t.Fatalf("phase[%d] = %s, want %s", i, pt.Phase, want[i])
		}
		if i > 0 && pt.At < rep.Phases[i-1].At {
			t.Fatalf("phase %s at %v before %s", pt.Phase, pt.At, want[i-1])
		}
	}
	if pause, _ := rep.PhaseAt(PhasePause); pause != rep.Submitted {
		t.Fatalf("pause at %v, submitted %v", pause, rep.Submitted)
	}
	if rep.Completed < rep.Submitted {
		t.Fatalf("completed %v before submitted %v", rep.Completed, rep.Submitted)
	}
	if rep.Triangle == tri || rep.Triangle.Contains(tri[2]) {
		t.Fatalf("post-move triangle %v still matches %v", rep.Triangle, tri)
	}
	if rep.Pool.GuestsAfter != rep.Pool.GuestsBefore {
		t.Fatalf("replacement changed residency: %+v", rep.Pool)
	}
	// The log indexes every op by Seq.
	for i, oc := range cp.Log() {
		if oc.Seq != uint64(i)+1 {
			t.Fatalf("log[%d].Seq = %d", i, oc.Seq)
		}
		got, ok := cp.Outcome(oc.Seq)
		if !ok || got != oc {
			t.Fatalf("Outcome(%d) lookup broken", oc.Seq)
		}
	}
}
