package controlplane

// Control-plane metrics: a Watch subscriber translating the operation
// event stream into registry series. Everything here is derived from the
// same append-only log the digests pin — instrumentation reads events and
// outcomes, never the pool or cluster directly — so enabling it cannot
// perturb a run: the op-log digest of an instrumented run is byte-
// identical to the uninstrumented one (cmd/churn pins exactly that).

import (
	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
)

// phaseLatencyBuckets is the fixed ladder for barrier milestone-to-
// milestone latency: 10µs to ~2.6s, exponential. The interesting phases
// (pause→quiesce under a DrainWindow of 50ms, quiesce→rehome in one
// instant) all land inside it.
var phaseLatencyBuckets = metrics.ExpBuckets(int64(10*sim.Microsecond), 4, 10)

// InstrumentMetrics subscribes a metrics translator to the operation event
// stream, registering the control-plane metric families on reg:
//
//	stopwatch_cp_ops_started_total{kind}    submissions by op kind
//	stopwatch_cp_ops_completed_total{kind}  successful completions
//	stopwatch_cp_ops_failed_total{kind}     failures (validation rejections included)
//	stopwatch_cp_ops_rejected_total{kind}   the validation-rejection subset
//	stopwatch_cp_phase_latency_ns{phase}    milestone-to-milestone barrier latency
//	stopwatch_cp_quiesce_retries_total      quiescence re-checks beyond the first
//	stopwatch_cp_detector_suspicions_total  detector-submitted FailOps
//	stopwatch_cp_detector_false_alarms_total  rejected detector FailOps (machine alive)
//	stopwatch_cp_residents                  resident guests (evaluated at snapshot)
//	stopwatch_cp_utilization                pool utilization (evaluated at snapshot)
//
// The returned cancel unsubscribes the translator (the families stay
// registered; they simply stop moving).
func (cp *ControlPlane) InstrumentMetrics(reg *metrics.Registry) (cancel func()) {
	started := reg.NewCounterVec("stopwatch_cp_ops_started_total",
		"operations submitted through Apply, by kind", "kind")
	completed := reg.NewCounterVec("stopwatch_cp_ops_completed_total",
		"operations completed successfully, by kind", "kind")
	failed := reg.NewCounterVec("stopwatch_cp_ops_failed_total",
		"operations completed with an error, by kind", "kind")
	rejected := reg.NewCounterVec("stopwatch_cp_ops_rejected_total",
		"validation rejections (no barrier ran, no state changed), by kind", "kind")
	phaseLat := reg.NewHistogramVec("stopwatch_cp_phase_latency_ns",
		"latency from an op's previous milestone (or submission) to reaching this phase",
		"phase", phaseLatencyBuckets)
	retries := reg.NewCounter("stopwatch_cp_quiesce_retries_total",
		"replacement-barrier quiescence re-checks beyond the first")
	suspicions := reg.NewCounter("stopwatch_cp_detector_suspicions_total",
		"stall-detector machine suspicions (detected FailOps submitted)")
	falseAlarms := reg.NewCounter("stopwatch_cp_detector_false_alarms_total",
		"detector suspicions rejected because the machine's VMM was alive")
	gatedAdmissions := reg.NewCounter("stopwatch_cp_admissions_gated_total",
		"admissions rejected while at least one host was gated by telemetry-driven admission")
	reconcileRounds := reg.NewCounter("stopwatch_cp_reconcile_rounds_total",
		"pre-commit survivor reconcile rounds run by FailOps (one per resident guest with a live pair)")
	reconcileRepairs := reg.NewCounter("stopwatch_cp_reconcile_repairs_total",
		"sequences repaired at importers during pre-commit reconcile rounds")
	reconcileRetries := reg.NewCounter("stopwatch_cp_reconcile_retries_total",
		"reconcile export resends after ack loss")
	reg.NewGaugeFunc("stopwatch_cp_residents",
		"resident guests", func() float64 { return float64(cp.pool.Guests()) })
	reg.NewGaugeFunc("stopwatch_cp_utilization",
		"resident replicas over undrained capacity", func() float64 { return cp.pool.Utilization() })
	reg.NewGaugeFunc("stopwatch_cp_gated_hosts",
		"hosts currently gated out of placement by telemetry-driven admission",
		func() float64 { return float64(cp.pool.GatedCount()) })
	hostGated := reg.NewGaugeFuncVec("stopwatch_cp_host_gated",
		"1 when the host is gated out of new placements, else 0", "host")
	hostScore := reg.NewGaugeFuncVec("stopwatch_cp_host_score",
		"the host's placement load score (disk backlog, ns) as last fed to the pool", "host")
	for i := 0; i < cp.c.Hosts(); i++ {
		i := i
		hostGated.Add(cp.c.Host(i).Name(), func() float64 {
			if cp.pool.Gated(i) {
				return 1
			}
			return 0
		})
		hostScore.Add(cp.c.Host(i).Name(), func() float64 { return cp.pool.HostScore(i) })
	}
	return cp.Watch(func(ev Event) {
		kind := ev.Op.Kind().String()
		switch ev.Kind {
		case OpStarted:
			started.With(kind).Inc()
			if f, ok := ev.Op.(FailOp); ok && f.Detected {
				suspicions.Inc()
			}
		case PhaseReached:
			// The outcome's phase list already carries this milestone (phase()
			// appends before it emits); its predecessor anchors the delta.
			if oc, ok := cp.Outcome(ev.Seq); ok {
				prev := oc.Submitted
				if n := len(oc.Phases); n >= 2 {
					prev = oc.Phases[n-2].At
				}
				phaseLat.With(string(ev.Phase)).Observe(int64(ev.At - prev))
			}
		case OpCompleted:
			completed.With(kind).Inc()
			if oc, ok := cp.Outcome(ev.Seq); ok {
				retries.Add(uint64(oc.QuiesceRetries))
				reconcileRounds.Add(uint64(oc.ReconcileRounds))
				reconcileRepairs.Add(uint64(oc.ReconcileRepairs))
				reconcileRetries.Add(uint64(oc.ReconcileRetries))
			}
		case OpFailed:
			failed.With(kind).Inc()
			oc, ok := cp.Outcome(ev.Seq)
			if !ok {
				return
			}
			retries.Add(uint64(oc.QuiesceRetries))
			reconcileRounds.Add(uint64(oc.ReconcileRounds))
			reconcileRepairs.Add(uint64(oc.ReconcileRepairs))
			reconcileRetries.Add(uint64(oc.ReconcileRetries))
			if oc.Rejected() {
				rejected.With(kind).Inc()
				if f, isFail := ev.Op.(FailOp); isFail && f.Detected {
					falseAlarms.Inc()
				}
				if _, isAdmit := ev.Op.(AdmitOp); isAdmit && cp.pool.GatedCount() > 0 {
					gatedAdmissions.Inc()
				}
			}
		}
	})
}
