package controlplane

// Telemetry-driven admission: the control plane closes the observability
// loop by feeding the data plane's live per-host disk-load signals back
// into placement. Two mechanisms, both opt-in (EnableLoadAwareAdmission)
// so default runs place exactly as before and pinned op-log digests stand:
//
//   - Load-aware placement: each placement decision refreshes per-host
//     scores (disk backlog) on the pool, ordering equally-replica-loaded
//     machines by how long a new request would wait on their disk.
//   - Gated admission: a host whose Dom0 disk backlog exceeds the
//     false-alarm budget is gated out of new placements entirely. The
//     rationale is the stall detector's: Dom0 I/O load stretches
//     device-model processing delays (vmm.Host.ioDelay grows with
//     in-flight I/O), so proposals from a disk-saturated host arrive
//     late — placing a new replica there would push its proposal
//     latencies toward the detector deadline and manufacture false
//     alarms. Gates are transient: they re-evaluate at every placement
//     from the live backlog.

import (
	"stopwatch/internal/sim"
)

// LoadAwareConfig parameterizes telemetry-driven admission.
type LoadAwareConfig struct {
	// FalseAlarmBudget is the maximum Dom0 disk backlog (the wait a new
	// disk request would see) a host may carry and still accept new
	// replicas. 0 picks a default tied to the failure-detection loop:
	// half the armed stall-detector deadline, or a quarter of the
	// DrainWindow when no detector is armed.
	FalseAlarmBudget sim.Time
}

// EnableLoadAwareAdmission turns telemetry-driven placement on and returns
// the effective false-alarm budget. From now on every Admit and Rehome
// first refreshes the pool's per-host scores and gates from the hosts'
// live disk telemetry.
func (cp *ControlPlane) EnableLoadAwareAdmission(cfg LoadAwareConfig) sim.Time {
	budget := cfg.FalseAlarmBudget
	if budget <= 0 {
		if d := cp.c.StallDeadline(); d > 0 {
			budget = d / 2
		} else {
			budget = cp.cfg.DrainWindow / 4
		}
	}
	cp.loadAware = true
	cp.loadBudget = budget
	cp.refreshHostTelemetry()
	return budget
}

// LoadAware reports whether telemetry-driven admission is on.
func (cp *ControlPlane) LoadAware() bool { return cp.loadAware }

// refreshHostTelemetry pushes each host's current disk backlog into the
// pool as its placement score, gating hosts whose backlog exceeds the
// false-alarm budget. No-op unless EnableLoadAwareAdmission ran. Reads
// only host-local state already materialized by the data plane — no RNG
// draws, no timers — so refreshing cannot perturb the simulation.
func (cp *ControlPlane) refreshHostTelemetry() {
	if !cp.loadAware {
		return
	}
	now := cp.c.Loop().Now()
	for i := 0; i < cp.c.Hosts(); i++ {
		backlog := cp.c.Host(i).DiskBacklog(now)
		_ = cp.pool.SetHostScore(i, float64(backlog))
		_ = cp.pool.SetHostGate(i, backlog > cp.loadBudget)
	}
}
