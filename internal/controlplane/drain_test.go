package controlplane

import (
	"errors"
	"testing"

	"stopwatch/internal/placement"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// TestDrainHostEvacuatesEveryResident is the drain property test: after
// DrainHost completes on a live cloud, the machine hosts zero replicas, the
// pool is still edge-disjoint and conserves edges (3 per resident guest),
// and every affected guest passes the lockstep prefix audit. Run across
// several seeds/machines so the property is exercised on different packings.
func TestDrainHostEvacuatesEveryResident(t *testing.T) {
	for _, tc := range []struct {
		seed    uint64
		machine int
	}{{31, 0}, {33, 2}, {35, 5}} {
		cp := newTestPlane(t, 9, 3, tc.seed)
		c := cp.Cluster()
		// Fill part of the cloud so the drained machine has residents and
		// the rest has headroom to take them.
		var ids []string
		for i := 0; i < 5; i++ {
			id := []string{"ga", "gb", "gc", "gd", "ge"}[i]
			if _, _, err := cp.Admit(id, beaconFactory(vtime.Virtual(4*sim.Millisecond))); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		c.Start()
		affected := cp.Pool().Residents(tc.machine)
		if len(affected) == 0 {
			t.Fatalf("seed %d: machine %d has no residents — pick another", tc.seed, tc.machine)
		}
		var drainErr error
		drained := false
		c.Loop().At(300*sim.Millisecond, "drain", func() {
			if err := cp.DrainHost(tc.machine, func(err error) {
				drainErr = err
				drained = true
			}); err != nil {
				t.Errorf("DrainHost: %v", err)
			}
		})
		if err := c.Run(20 * sim.Second); err != nil {
			t.Fatal(err)
		}
		if !drained {
			t.Fatalf("seed %d: drain never completed", tc.seed)
		}
		if drainErr != nil {
			t.Fatalf("seed %d: evacuation errors: %v", tc.seed, drainErr)
		}
		// The machine is empty and out of the pool.
		if l := cp.Pool().Load(tc.machine); l != 0 {
			t.Fatalf("seed %d: machine %d still has load %d", tc.seed, tc.machine, l)
		}
		if got := cp.Pool().Residents(tc.machine); len(got) != 0 {
			t.Fatalf("seed %d: machine %d still hosts %v", tc.seed, tc.machine, got)
		}
		if !cp.Pool().Drained(tc.machine) {
			t.Fatalf("seed %d: machine %d not marked drained", tc.seed, tc.machine)
		}
		for _, id := range ids {
			g, ok := c.Guest(id)
			if !ok {
				t.Fatalf("seed %d: guest %s missing", tc.seed, id)
			}
			for _, h := range g.HostIndexes() {
				if h == tc.machine {
					t.Fatalf("seed %d: guest %s still deployed on drained machine %d", tc.seed, id, tc.machine)
				}
			}
		}
		// Edge-disjointness, conservation, and pool/cluster agreement.
		if err := cp.Verify(); err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if cp.Pool().EdgesUsed() != 3*cp.Pool().Guests() {
			t.Fatalf("seed %d: %d edges for %d guests", tc.seed, cp.Pool().EdgesUsed(), cp.Pool().Guests())
		}
		// Every affected guest is still in lockstep after its move.
		for _, id := range affected {
			g, _ := c.Guest(id)
			if err := g.CheckLockstepPrefix(); err != nil {
				t.Fatalf("seed %d: %v", tc.seed, err)
			}
		}
		st := cp.Stats()
		if st.HostDrains != 1 || st.Evacuations != len(affected) || st.EvacuationFailures != 0 {
			t.Fatalf("seed %d: stats %+v, want %d evacuations", tc.seed, st, len(affected))
		}
		// Undrain returns the capacity: a new tenant can land on the machine.
		if err := cp.UndrainHost(tc.machine); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cp.Admit("fresh", beaconFactory(vtime.Virtual(4*sim.Millisecond))); err != nil {
			t.Fatalf("seed %d: admit after undrain: %v", tc.seed, err)
		}
		if err := cp.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDrainHostRemovesCapacity checks that a drained machine takes no new
// replicas, that double-drain and premature undrain are rejected, and that
// an infeasible evacuation surfaces as ErrNoFeasibleHost while the guest
// keeps serving degraded.
func TestDrainHostRemovesCapacity(t *testing.T) {
	// 5 hosts, one guest: the first two drains each leave a spare machine
	// for the move; the third leaves none, so its evacuation must fail
	// typed with ErrNoFeasibleHost.
	cp := newTestPlane(t, 5, 1, 41)
	c := cp.Cluster()
	g, tri, err := cp.Admit("web", beaconFactory(vtime.Virtual(4*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := cp.DrainHost(5, nil); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	var firstErr, secondErr error
	first, second := false, false
	c.Loop().At(200*sim.Millisecond, "drain-1", func() {
		if err := cp.DrainHost(tri[0], func(err error) { firstErr, first = err, true }); err != nil {
			t.Errorf("drain 1: %v", err)
		}
		if err := cp.DrainHost(tri[0], nil); err == nil {
			t.Error("double drain accepted")
		}
		if err := cp.UndrainHost(tri[0]); err == nil {
			t.Error("undrain while evacuating accepted")
		}
	})
	c.Loop().At(5*sim.Second, "drain-2", func() {
		if !first || firstErr != nil {
			t.Errorf("first drain: done=%v err=%v", first, firstErr)
		}
		newTri, _ := cp.Pool().Triangle("web")
		if err := cp.DrainHost(newTri[0], func(err error) { second = true }); err != nil {
			t.Errorf("drain 2: %v", err)
		}
	})
	// After two drains the guest sits on the only three usable machines:
	// draining another triangle member leaves its replica nowhere to go,
	// and the guest keeps serving degraded.
	third := false
	c.Loop().At(10*sim.Second, "drain-3", func() {
		if !second {
			t.Error("second drain incomplete")
		}
		curTri, _ := cp.Pool().Triangle("web")
		if err := cp.DrainHost(curTri[0], func(err error) { secondErr, third = err, true }); err != nil {
			t.Errorf("drain 3: %v", err)
		}
	})
	if err := c.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !third {
		t.Fatal("third drain never completed")
	}
	if !errors.Is(secondErr, placement.ErrNoFeasibleHost) {
		t.Fatalf("want ErrNoFeasibleHost, got %v", secondErr)
	}
	if st := cp.Stats(); st.EvacuationFailures != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The failed guest serves degraded: frozen replica excluded, the live
	// pair still agrees.
	deadTri, _ := cp.Pool().Triangle("web")
	slot, on := g.SlotOnHost(deadTri[0])
	if !on {
		t.Fatal("failed evacuation should leave the replica resident")
	}
	if err := g.CheckLockstepPrefixExcluding(slot); err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaAccessorsSurviveLifecycle is the regression test for the
// slot-addressed Guest API: the accessors stay coherent with the wiring —
// the single source of truth — across Admit → Replace → Evict, with no
// parallel state to desync.
func TestReplicaAccessorsSurviveLifecycle(t *testing.T) {
	cp := newTestPlane(t, 7, 3, 43)
	c := cp.Cluster()
	g, tri, err := cp.Admit("web", beaconFactory(vtime.Virtual(3*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	checkCoherent := func(when string) {
		t.Helper()
		if g.NumReplicas() != 3 || len(g.Replicas()) != 3 {
			t.Fatalf("%s: replica count %d/%d", when, g.NumReplicas(), len(g.Replicas()))
		}
		hosts := g.HostIndexes()
		for _, r := range g.Replicas() {
			if r.Guest() != g {
				t.Fatalf("%s: replica %d points at wrong guest", when, r.Slot())
			}
			if hosts[r.Slot()] != r.Host() {
				t.Fatalf("%s: HostIndexes()[%d]=%d but Replica.Host()=%d", when, r.Slot(), hosts[r.Slot()], r.Host())
			}
			if r.Runtime() == nil || r.NetDev() == nil || r.App() == nil {
				t.Fatalf("%s: replica %d has nil wiring", when, r.Slot())
			}
			if r.Runtime().Host().Name() != r.HostName() {
				t.Fatalf("%s: replica %d host name mismatch", when, r.Slot())
			}
			if r.Epoch() != nil {
				t.Fatalf("%s: epochs disabled but replica %d has a coordinator", when, r.Slot())
			}
			if got, ok := g.SlotOnHost(r.Host()); !ok || got != r.Slot() {
				t.Fatalf("%s: SlotOnHost(%d)=%d,%v want %d", when, r.Host(), got, ok, r.Slot())
			}
			if g.App(r.Slot()) != r.App() {
				t.Fatalf("%s: App(%d) disagrees with Replica.App", when, r.Slot())
			}
		}
	}
	checkCoherent("after admit")
	c.Start()

	// A view taken now must read through to the slot's occupant after the
	// replacement below.
	deadHost := tri[2]
	slot, _ := g.SlotOnHost(deadHost)
	view := g.Replica(slot)
	done := false
	c.Loop().At(300*sim.Millisecond, "fail", func() {
		view.Runtime().Stop()
		if err := cp.ReplaceReplica("web", deadHost, func(err error) {
			if err != nil {
				t.Errorf("replacement: %v", err)
			}
			done = true
		}); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("replacement never finished")
	}
	checkCoherent("after replace")
	if view.Host() == deadHost {
		t.Fatal("stale view: replica slot still reads the dead host")
	}
	if g.Replica(slot).Runtime() != view.Runtime() {
		t.Fatal("view and fresh accessor disagree")
	}
	if err := g.CheckLockstepPrefix(); err != nil {
		t.Fatal(err)
	}

	// Out-of-range slots panic like the slice indexing they replaced.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Replica(3) should panic")
			}
		}()
		g.Replica(3)
	}()

	if err := cp.Evict("web"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Guest("web"); ok {
		t.Fatal("guest still deployed after evict")
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
}
