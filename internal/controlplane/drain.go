package controlplane

import (
	"errors"
	"fmt"
)

// Host drain: planned whole-machine evacuation, now one DrainOp. Each
// resident replica is moved with an ordinary child ReplaceOp (the
// pause→quiesce→rehome→replace→resume barrier), logged with the drain as
// its parent. The guest's execution on the drained machine is frozen just
// before its barrier starts while the machine's VMM stays live and keeps
// proposing — the paper's footnote-4 regime, so the 3-proposal median never
// stalls — which guarantees the survivors are at or past the frozen
// replica's instruction count by switchover (the reclaim window the egress
// already handles for crash recovery). Residents move one after another, in
// guest-id order, and the machine ends empty with every affected guest
// still in strict lockstep.
//
// The same per-resident loop also serves EvacuateOp (failure.go), where the
// machine's VMM is dead: there the replicas are already stopped (no freeze)
// and the loop waits for the post-crash group reconfiguration before
// starting.

// applyDrain starts evacuating machine: its capacity is removed from the
// placement pool immediately (no new replicas land on it), and every
// resident replica is re-homed sequentially, in guest-id order, via child
// ReplaceOps. The op completes once the last resident has been processed,
// with the joined errors of any moves that failed — e.g. ErrNoFeasibleHost
// when a saturated packing leaves a guest nowhere to go; such guests keep
// serving from their remaining replicas.
//
// The machine stays drained afterwards (ready for maintenance); UndrainOp
// returns its capacity to the pool.
func (cp *ControlPlane) applyDrain(op DrainOp, oc *Outcome) {
	machine := op.Machine
	if machine < 0 || machine >= cp.c.Hosts() {
		cp.finish(oc, fmt.Errorf("%w: machine %d out of range", ErrControlPlane, machine))
		return
	}
	if cp.Failed(machine) {
		cp.finish(oc, fmt.Errorf("%w: machine %d crashed — evacuate it with EvacuateOp", ErrControlPlane, machine))
		return
	}
	if err := cp.pool.Drain(machine); err != nil {
		cp.finish(oc, err) // typed placement.ErrDrained on a double drain
		return
	}
	cp.draining[machine] = true
	cp.phase(oc, PhaseDrain)
	cp.evacuateResidents(oc, machine, causeDrain, nil, nil)
}

// evacuateResidents moves every resident replica off machine through child
// ReplaceOps, sequentially in guest-id order, and completes the parent
// outcome with the joined move errors. cause causeDrain freezes each
// resident's guest execution first (planned drain: the VMM stays live and
// keeps proposing); a crashed machine's replicas are already stopped.
// ready, when non-nil, gates the start of the loop (the crash path must not
// run barriers before the group reconfiguration has unwedged quiescence);
// it is re-checked every DrainWindow, bounded by MaxDrainAttempts. pre,
// when non-nil, contributes errors joined ahead of the move errors (the
// crash path's reconfiguration failures).
func (cp *ControlPlane) evacuateResidents(parent *Outcome, machine int, cause opCause, ready func() bool, pre func() []error) {
	residents := cp.pool.Residents(machine)
	parent.Guests = residents
	var errs []error
	finish := func() {
		delete(cp.draining, machine)
		var all []error
		if pre != nil {
			all = append(all, pre()...)
		}
		cp.finish(parent, errors.Join(append(all, errs...)...))
	}
	var next func(i, attempts int)
	next = func(i, attempts int) {
		if i >= len(residents) {
			finish()
			return
		}
		id := residents[i]
		// The guest may have departed, or a concurrent failure replacement
		// may already have moved it off the machine: both are a completed
		// evacuation from this drain's point of view.
		tri, resident := cp.pool.Triangle(id)
		if !resident || !tri.Contains(machine) {
			next(i+1, 0)
			return
		}
		_, busy := cp.inflight[id]
		if busy && attempts+1 < cp.cfg.MaxDrainAttempts {
			// Another lifecycle op holds the guest (e.g. a failure
			// replacement racing the drain): wait a window and retry,
			// bounded like the quiescence barrier. Once the bound is hit the
			// move is submitted anyway — its rejection is then on record in
			// the op log instead of a counter nobody can replay.
			cp.c.Loop().After(cp.cfg.DrainWindow, "cp:evacuate-retry", func() { next(i, attempts+1) })
			return
		}
		// Freeze the resident's guest execution (its VMM keeps proposing)
		// so the survivors are at or past its instruction count when the
		// replacement switches over — the same regime as crash recovery. A
		// move that is then rejected leaves the guest serving degraded on
		// its live replicas. A guest another op still holds at the retry
		// bound is left running — that op owns it; only the move's
		// rejection goes on record.
		if cause == causeDrain && !busy {
			if g, ok := cp.c.Guest(id); ok {
				if slot, on := g.SlotOnHost(machine); on {
					g.Replica(slot).Runtime().Stop()
				}
			}
		}
		move := ReplaceOp{GuestID: id, DeadHost: machine, cause: cause, parent: parent.Seq}
		move.Done = func(coc *Outcome) {
			if coc.Err != nil {
				errs = append(errs, fmt.Errorf("evacuate %q off machine %d: %w", id, machine, coc.Err))
			}
			next(i+1, 0)
		}
		cp.apply(move, parent.Seq)
	}
	start := func() { next(0, 0) }
	if ready == nil {
		start()
		return
	}
	var gate func(attempts int)
	gate = func(attempts int) {
		if ready() {
			cp.phase(parent, PhaseReconfigure)
			start()
			return
		}
		if attempts+1 >= cp.cfg.MaxDrainAttempts {
			errs = append(errs, fmt.Errorf("%w: machine %d group reconfiguration never completed", ErrControlPlane, machine))
			finish()
			return
		}
		cp.c.Loop().After(cp.cfg.DrainWindow, "cp:evacuate-wait", func() { gate(attempts + 1) })
	}
	gate(0)
}

// applyUndrain returns a drained machine's capacity to the placement pool.
// It refuses while the evacuation is still moving residents, and refuses
// crashed machines (RepairOp is their way back).
func (cp *ControlPlane) applyUndrain(op UndrainOp, oc *Outcome) {
	machine := op.Machine
	if cp.draining[machine] {
		cp.finish(oc, fmt.Errorf("%w: machine %d still evacuating", ErrControlPlane, machine))
		return
	}
	if cp.Failed(machine) {
		cp.finish(oc, fmt.Errorf("%w: machine %d crashed — RepairOp returns it", ErrControlPlane, machine))
		return
	}
	if err := cp.pool.Undrain(machine); err != nil {
		cp.finish(oc, err)
		return
	}
	cp.phase(oc, PhaseUndrain)
	cp.finish(oc, nil)
}

// DrainHost is the verb wrapper over Apply(DrainOp): a validation rejection
// is returned synchronously; otherwise onDone (optional) fires once the
// last resident has been processed, with the joined move errors.
func (cp *ControlPlane) DrainHost(machine int, onDone func(error)) error {
	op := DrainOp{Machine: machine}
	op.Done = func(oc *Outcome) {
		if oc.Rejected() {
			return // reported synchronously below
		}
		if onDone != nil {
			onDone(oc.Err)
		}
	}
	if oc := cp.Apply(op); oc.Rejected() {
		return oc.Err
	}
	return nil
}

// UndrainHost is the verb wrapper over Apply(UndrainOp).
func (cp *ControlPlane) UndrainHost(machine int) error {
	return cp.Apply(UndrainOp{Machine: machine}).Err
}

// Draining reports whether machine has an evacuation in progress.
func (cp *ControlPlane) Draining(machine int) bool { return cp.draining[machine] }
