package controlplane

import (
	"errors"
	"fmt"
)

// Host drain: planned whole-machine evacuation. Each resident replica is
// moved with the ordinary pause→quiesce→rehome→replace→resume barrier. The
// guest's execution on the drained machine is frozen just before its
// barrier starts while the machine's VMM stays live and keeps proposing —
// the paper's footnote-4 regime, so the 3-proposal median never stalls —
// which guarantees the survivors are at or past the frozen replica's
// instruction count by switchover (the reclaim window the egress already
// handles for crash recovery). Residents move one after another, in
// guest-id order, and the machine ends empty with every affected guest
// still in strict lockstep.
//
// The same per-resident loop also serves EvacuateFailedHost (failure.go),
// where the machine's VMM is dead: there the replicas are already stopped
// (no freeze) and the loop waits for the post-crash group reconfiguration
// before starting.

// DrainHost starts evacuating machine: its capacity is removed from the
// placement pool immediately (no new replicas land on it), and every
// resident replica is re-homed sequentially, in guest-id order, via the
// replacement barrier. onDone (optional) fires once the last resident has
// been processed, with the joined errors of any evacuations that failed —
// e.g. ErrNoFeasibleHost when a saturated packing leaves a guest nowhere to
// go; such guests keep serving from their remaining replicas.
//
// The machine stays drained afterwards (ready for maintenance); call
// UndrainHost to return its capacity to the pool.
func (cp *ControlPlane) DrainHost(machine int, onDone func(error)) error {
	if machine < 0 || machine >= cp.c.Hosts() {
		return fmt.Errorf("%w: machine %d out of range", ErrControlPlane, machine)
	}
	if cp.Failed(machine) {
		return fmt.Errorf("%w: machine %d crashed — evacuate it with EvacuateFailedHost", ErrControlPlane, machine)
	}
	if err := cp.pool.Drain(machine); err != nil {
		return err // typed placement.ErrDrained on a double drain
	}
	cp.draining[machine] = true
	cp.stats.HostDrains++
	cp.evacuateResidents(machine, true, nil, onDone)
	return nil
}

// evacuateResidents moves every resident replica off machine through the
// replacement barrier, sequentially in guest-id order. freeze stops the
// resident's guest execution first (planned drain: the VMM stays live and
// keeps proposing); a crashed machine's replicas are already stopped.
// ready, when non-nil, gates the start of the loop (the crash path must not
// run barriers before the group reconfiguration has unwedged quiescence);
// it is re-checked every DrainWindow, bounded by MaxDrainAttempts.
func (cp *ControlPlane) evacuateResidents(machine int, freeze bool, ready func() bool, onDone func(error)) {
	residents := cp.pool.Residents(machine)
	var errs []error
	finish := func() {
		delete(cp.draining, machine)
		if onDone != nil {
			onDone(errors.Join(errs...))
		}
	}
	countOK := func() {
		if freeze {
			cp.stats.Evacuations++
		} else {
			cp.stats.CrashEvacuations++
		}
	}
	countBad := func() {
		if freeze {
			cp.stats.EvacuationFailures++
		} else {
			cp.stats.CrashEvacuationFailures++
		}
	}
	var next func(i, attempts int)
	next = func(i, attempts int) {
		if i >= len(residents) {
			finish()
			return
		}
		id := residents[i]
		// The guest may have departed, or a concurrent failure replacement
		// may already have moved it off the machine: both are a completed
		// evacuation from this drain's point of view.
		tri, resident := cp.pool.Triangle(id)
		if !resident || !tri.Contains(machine) {
			next(i+1, 0)
			return
		}
		if _, busy := cp.inflight[id]; busy {
			// Another lifecycle op holds the guest (e.g. a failure
			// replacement racing the drain): wait a window and retry,
			// bounded like the quiescence barrier.
			if attempts+1 >= cp.cfg.MaxDrainAttempts {
				countBad()
				errs = append(errs, fmt.Errorf("%w: evacuating %q off machine %d: lifecycle op still in flight", ErrControlPlane, id, machine))
				next(i+1, 0)
				return
			}
			cp.c.Loop().After(cp.cfg.DrainWindow, "cp:evacuate-retry", func() { next(i, attempts+1) })
			return
		}
		// Freeze the resident's guest execution (its VMM keeps proposing)
		// so the survivors are at or past its instruction count when the
		// replacement switches over — the same regime as crash recovery.
		if freeze {
			if g, ok := cp.c.Guest(id); ok {
				if slot, on := g.SlotOnHost(machine); on {
					g.Replica(slot).Runtime().Stop()
				}
			}
		}
		err := cp.ReplaceReplica(id, machine, func(err error) {
			if err != nil {
				countBad()
				errs = append(errs, fmt.Errorf("evacuate %q off machine %d: %w", id, machine, err))
			} else {
				countOK()
			}
			next(i+1, 0)
		})
		if err != nil {
			// Validation failure with the replica already frozen: record it
			// and move on — the guest serves degraded on its live replicas.
			countBad()
			errs = append(errs, fmt.Errorf("evacuate %q off machine %d: %w", id, machine, err))
			next(i+1, 0)
		}
	}
	start := func() { next(0, 0) }
	if ready == nil {
		start()
		return
	}
	var gate func(attempts int)
	gate = func(attempts int) {
		if ready() {
			start()
			return
		}
		if attempts+1 >= cp.cfg.MaxDrainAttempts {
			errs = append(errs, fmt.Errorf("%w: machine %d group reconfiguration never completed", ErrControlPlane, machine))
			finish()
			return
		}
		cp.c.Loop().After(cp.cfg.DrainWindow, "cp:evacuate-wait", func() { gate(attempts + 1) })
	}
	gate(0)
}

// UndrainHost returns a drained machine's capacity to the placement pool.
// It refuses while the evacuation is still moving residents, and refuses
// crashed machines (RepairHost is their way back).
func (cp *ControlPlane) UndrainHost(machine int) error {
	if cp.draining[machine] {
		return fmt.Errorf("%w: machine %d still evacuating", ErrControlPlane, machine)
	}
	if cp.Failed(machine) {
		return fmt.Errorf("%w: machine %d crashed — RepairHost returns it", ErrControlPlane, machine)
	}
	return cp.pool.Undrain(machine)
}

// Draining reports whether machine has an evacuation in progress.
func (cp *ControlPlane) Draining(machine int) bool { return cp.draining[machine] }
