package controlplane

import (
	"fmt"
	"testing"

	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// TestWatchCancelFromOwnCallback: a subscriber cancelling itself from
// inside its own callback must complete the current delivery round
// untouched and receive nothing afterwards.
func TestWatchCancelFromOwnCallback(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 1)
	var got []EventKind
	var cancel func()
	cancel = cp.Watch(func(ev Event) {
		got = append(got, ev.Kind)
		cancel()
	})
	// One admit emits OpStarted, two PhaseReached, OpCompleted.
	// Cancellation takes effect per event (emit checks w.fn before every
	// delivery), so the self-cancelling subscriber sees exactly one.
	if _, _, err := cp.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != OpStarted {
		t.Fatalf("self-cancelled subscriber saw %v, want [started]", got)
	}
	// Later ops deliver nothing to it.
	if _, _, err := cp.Admit("g1", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("cancelled subscriber still receiving: %v", got)
	}
}

// TestWatchCancelPeerFromCallback: subscriber A cancelling subscriber B
// mid-delivery. B subscribed after A, so the current event is still
// pending for B — the cancellation must take effect immediately (B never
// sees the event that triggered its cancellation).
func TestWatchCancelPeerFromCallback(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 1)
	var bSaw int
	cancelB := func() {}
	cp.Watch(func(ev Event) {
		if ev.Kind == OpStarted {
			cancelB()
		}
	})
	cancelB = cp.Watch(func(ev Event) { bSaw++ })
	if _, _, err := cp.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if bSaw != 0 {
		t.Fatalf("peer-cancelled subscriber saw %d events, want 0", bSaw)
	}
}

// TestWatchSubscribeFromCallback: subscribing from inside a callback must
// be safe (no slice-mutation skips or re-entrant corruption). Whether the
// new subscriber sees the event that was mid-delivery is defined: it does
// not — emit iterates the watcher snapshot taken at emit start.
func TestWatchSubscribeFromCallback(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 1)
	var lateSaw []EventKind
	subscribed := false
	cp.Watch(func(ev Event) {
		if subscribed {
			return
		}
		subscribed = true
		cp.Watch(func(ev Event) { lateSaw = append(lateSaw, ev.Kind) })
	})
	if _, _, err := cp.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	// The late subscriber joined during g0's OpStarted: it must have missed
	// that event but seen the rest of g0's stream (2 phases + completed).
	want := []EventKind{PhaseReached, PhaseReached, OpCompleted}
	if len(lateSaw) != len(want) {
		t.Fatalf("late subscriber saw %v, want %v", lateSaw, want)
	}
	for i := range want {
		if lateSaw[i] != want[i] {
			t.Fatalf("late subscriber saw %v, want %v", lateSaw, want)
		}
	}
	// And determinism: the same scenario delivers the same stream.
	cp2 := newTestPlane(t, 9, 3, 1)
	var lateSaw2 []EventKind
	subscribed2 := false
	cp2.Watch(func(ev Event) {
		if subscribed2 {
			return
		}
		subscribed2 = true
		cp2.Watch(func(ev Event) { lateSaw2 = append(lateSaw2, ev.Kind) })
	})
	if _, _, err := cp2.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(lateSaw) != fmt.Sprint(lateSaw2) {
		t.Fatalf("subscribe-from-callback not deterministic: %v vs %v", lateSaw, lateSaw2)
	}
}

// TestWatchCancelTwiceIsNoOp: the documented cancel contract.
func TestWatchCancelTwiceIsNoOp(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 1)
	n := 0
	cancel := cp.Watch(func(Event) { n++ })
	cancel()
	cancel()
	if _, _, err := cp.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("cancelled subscriber saw %d events", n)
	}
}

// TestStatsMemoizedMatchesFold: the incremental Stats() must equal the
// pure fold at every step of a lifecycle that interleaves synchronous and
// asynchronous (in-flight, mutating) outcomes.
func TestStatsMemoizedMatchesFold(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 2)
	check := func(when string) {
		t.Helper()
		got, want := cp.Stats(), FoldStats(cp.log.entries)
		if got != want {
			t.Fatalf("%s: Stats() = %+v, FoldStats = %+v", when, got, want)
		}
	}
	check("empty")
	for i := 0; i < 4; i++ {
		if _, _, err := cp.Admit(fmt.Sprintf("g%d", i), beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
			t.Fatal(err)
		}
		check("after admit")
	}
	cp.Cluster().Start()
	if err := cp.Cluster().Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Kill g0's replica and start an asynchronous replacement: while the
	// barrier is in flight its outcome keeps mutating (retries, phases) —
	// the frontier must hold below it.
	g, _ := cp.Cluster().Guest("g0")
	dead := g.Replica(0).Host()
	g.Replica(0).Runtime().Stop()
	if err := cp.ReplaceReplica("g0", dead, nil); err != nil {
		t.Fatal(err)
	}
	check("replacement submitted")
	// A synchronous op lands after the in-flight one; it must still count.
	if err := cp.Evict("g3"); err != nil {
		t.Fatal(err)
	}
	check("evict behind in-flight replace")
	if err := cp.Cluster().Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	check("replacement done")
	st := cp.Stats()
	if st.Replacements != 1 || st.Evicted != 1 || st.Admitted != 4 {
		t.Fatalf("lifecycle stats: %+v", st)
	}
	// The frontier must have advanced past the whole log once all is done.
	if cp.log.frontier != len(cp.log.entries) {
		t.Fatalf("frontier %d, log %d entries — memoization never caught up", cp.log.frontier, len(cp.log.entries))
	}
	check("final")
}
