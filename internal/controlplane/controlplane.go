// Package controlplane is the online orchestrator over the StopWatch
// cluster: it owns the live host inventory (capacity, residency, used K_n
// edges) and serves the guest lifecycle a real cloud needs —
//
//   - Admit places a new guest on an edge-disjoint replica triangle chosen
//     by the incremental packer (placement.Pool) and boots it into the
//     running cluster;
//   - Evict tears a guest down and returns its triangle's edges and
//     capacity to the pool;
//   - ReplaceReplica runs the Sec. VII recovery protocol for a failed
//     replica: quiesce the guest's inbound stream behind an ingress
//     barrier, re-home the replica onto a fresh non-conflicting host,
//     reconstruct its state from the survivors' determinism journal, and
//     re-sync it into lockstep.
//
// The data plane (cluster, VMMs, gateways) stays mechanism; every policy
// decision — which triangle, which replacement host, when a switchover is
// safe — lives here.
package controlplane

import (
	"errors"
	"fmt"

	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/placement"
	"stopwatch/internal/sim"
)

// ErrControlPlane reports invalid control-plane configuration or use.
var ErrControlPlane = errors.New("controlplane: invalid")

// ErrRejected reports an admission the placement pool cannot satisfy: no
// edge-disjoint triangle with spare capacity exists. It wraps
// placement.ErrNoFeasibleHost.
var ErrRejected = fmt.Errorf("%w: admission rejected", ErrControlPlane)

// Config tunes the control plane.
type Config struct {
	// Capacity is the per-host replica capacity the pool enforces
	// (placement Theorem 2's c). Required, positive. Keep c <= (n-1)/2 if
	// you want the Theorem-2 guarantees to describe the regime.
	Capacity int
	// DrainWindow is how long the replacement barrier waits after pausing
	// a guest's ingress stream before checking quiescence — it must cover
	// a fabric round trip plus Dom0 processing so in-flight packets and
	// proposals settle. Default 50ms.
	DrainWindow sim.Time
	// MaxDrainAttempts bounds quiescence re-checks (each DrainWindow
	// apart) before a replacement is abandoned. Default 40.
	MaxDrainAttempts int
}

// DefaultConfig returns control-plane defaults for the paper's LAN regime.
func DefaultConfig(capacity int) Config {
	return Config{Capacity: capacity, DrainWindow: 50 * sim.Millisecond, MaxDrainAttempts: 40}
}

// Stats counts control-plane decisions.
type Stats struct {
	// Admitted and Rejected count Admit outcomes.
	Admitted, Rejected int
	// Evicted counts completed evictions.
	Evicted int
	// Replacements counts completed replica replacements;
	// ReplacementFailures counts abandoned ones. Evacuation moves are
	// replacements too and count here as well.
	Replacements, ReplacementFailures int
	// DrainRetries counts quiescence re-checks beyond the first.
	DrainRetries int
	// HostDrains counts DrainHost operations started; Evacuations and
	// EvacuationFailures count the per-resident moves they performed.
	HostDrains, Evacuations, EvacuationFailures int
	// HostFailures counts FailHost operations (crashed machines);
	// CrashEvacuations and CrashEvacuationFailures count the per-resident
	// moves EvacuateFailedHost performed off them.
	HostFailures, CrashEvacuations, CrashEvacuationFailures int
}

// ControlPlane orchestrates guest lifecycle over a running cluster.
type ControlPlane struct {
	c    *core.Cluster
	pool *placement.Pool
	cfg  Config

	// inflight guards per-guest lifecycle exclusivity (a guest being
	// replaced must not concurrently evict).
	inflight map[string]string

	// draining marks machines with an evacuation in progress (drained in
	// the pool, residents not yet all moved).
	draining map[int]bool

	// failures tracks crashed machines (FailHost → RepairHost). Each
	// failure epoch is one *hostFailure; pointer identity doubles as the
	// epoch check, so a reconfiguration closure scheduled in one epoch
	// cannot open a later epoch's evacuation gate.
	failures map[int]*hostFailure

	stats Stats
}

// hostFailure is one machine's crash epoch, created by FailHost and
// deleted by RepairHost.
type hostFailure struct {
	// reconfigured flips once the post-crash group reconfiguration has
	// been broadcast, after the proposal settle window — the gate
	// EvacuateFailedHost waits on.
	reconfigured bool
	// drainedByFail records whether FailHost itself pulled the machine's
	// capacity (false: the operator had drained it for maintenance before
	// the crash, and repair must not undo that).
	drainedByFail bool
	// reconfigErrs collects reconfiguration failures for the evacuation
	// outcome.
	reconfigErrs []error
}

// New builds a control plane over the cluster. The cluster must be in
// StopWatch mode with 3 replicas per guest (replica triangles are what the
// placement theory packs).
func New(c *core.Cluster, cfg Config) (*ControlPlane, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil cluster", ErrControlPlane)
	}
	if c.Ingress() == nil {
		return nil, fmt.Errorf("%w: control plane needs a StopWatch-mode cluster", ErrControlPlane)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("%w: capacity %d", ErrControlPlane, cfg.Capacity)
	}
	if cfg.DrainWindow <= 0 {
		cfg.DrainWindow = 50 * sim.Millisecond
	}
	if cfg.MaxDrainAttempts <= 0 {
		cfg.MaxDrainAttempts = 40
	}
	pool, err := placement.NewPool(c.Hosts(), cfg.Capacity)
	if err != nil {
		return nil, err
	}
	return &ControlPlane{
		c:        c,
		pool:     pool,
		cfg:      cfg,
		inflight: make(map[string]string),
		draining: make(map[int]bool),
		failures: make(map[int]*hostFailure),
	}, nil
}

// Cluster returns the governed cluster.
func (cp *ControlPlane) Cluster() *core.Cluster { return cp.c }

// Pool returns the live placement pool (read it, don't mutate around the
// control plane).
func (cp *ControlPlane) Pool() *placement.Pool { return cp.pool }

// Stats returns decision counters.
func (cp *ControlPlane) Stats() Stats { return cp.stats }

// Utilization returns resident replicas over total capacity, in [0,1].
func (cp *ControlPlane) Utilization() float64 { return cp.pool.Utilization() }

// Residents returns the number of resident guests.
func (cp *ControlPlane) Residents() int { return cp.pool.Guests() }

// InFlight reports whether a lifecycle operation (e.g. a replacement
// barrier) is in progress for the guest, and which. Failure injectors
// should pick a different victim while one is.
func (cp *ControlPlane) InFlight(id string) (string, bool) {
	op, busy := cp.inflight[id]
	return op, busy
}

// Admit places and deploys a new guest on an edge-disjoint triangle. When
// the pool has no capacity the guest is rejected with ErrRejected (check
// with errors.Is) and counted; any deployment error rolls the placement
// back.
func (cp *ControlPlane) Admit(id string, factory func() guest.App) (*core.Guest, placement.Triangle, error) {
	if op, busy := cp.inflight[id]; busy {
		return nil, placement.Triangle{}, fmt.Errorf("%w: guest %q has a %s in flight", ErrControlPlane, id, op)
	}
	tri, err := cp.pool.Admit(id)
	if err != nil {
		if errors.Is(err, placement.ErrNoFeasibleHost) {
			cp.stats.Rejected++
			return nil, placement.Triangle{}, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		return nil, placement.Triangle{}, err
	}
	g, err := cp.c.Deploy(id, tri[:], factory)
	if err != nil {
		_, _ = cp.pool.Release(id)
		return nil, placement.Triangle{}, err
	}
	cp.stats.Admitted++
	return g, tri, nil
}

// Evict undeploys a guest and returns its edges and capacity to the pool.
func (cp *ControlPlane) Evict(id string) error {
	if op, busy := cp.inflight[id]; busy {
		return fmt.Errorf("%w: guest %q has a %s in flight", ErrControlPlane, id, op)
	}
	if _, ok := cp.pool.Triangle(id); !ok {
		return fmt.Errorf("%w: guest %q not resident", ErrControlPlane, id)
	}
	if err := cp.c.Undeploy(id); err != nil {
		return err
	}
	if _, err := cp.pool.Release(id); err != nil {
		return err
	}
	cp.stats.Evicted++
	return nil
}

// ReplaceReplica initiates the asynchronous replacement of guest id's
// replica on deadHost (reported failed by whatever detector the caller
// runs). The protocol, all in simulated time:
//
//  1. pause the guest's ingress stream (client packets buffer at the edge);
//  2. wait DrainWindow for in-flight fabric traffic and delivery proposals
//     to settle, re-checking up to MaxDrainAttempts times;
//  3. re-home the replica through the placement pool (least-loaded fresh
//     host whose edges to both survivors are free);
//  4. reconstruct the replica from the survivors' journal and switch the
//     multicast groups over (core.Cluster.ReplaceReplica);
//  5. resume the ingress stream, flushing the buffered packets.
//
// onDone (optional) fires with the outcome; on failure the ingress is
// resumed so the surviving replicas keep serving degraded.
func (cp *ControlPlane) ReplaceReplica(id string, deadHost int, onDone func(error)) error {
	finish := func(err error) {
		delete(cp.inflight, id)
		if err != nil {
			cp.stats.ReplacementFailures++
			cp.c.Ingress().Resume(id)
		} else {
			cp.stats.Replacements++
		}
		if onDone != nil {
			onDone(err)
		}
	}
	if op, busy := cp.inflight[id]; busy {
		return fmt.Errorf("%w: guest %q has a %s in flight", ErrControlPlane, id, op)
	}
	tri, ok := cp.pool.Triangle(id)
	if !ok {
		return fmt.Errorf("%w: guest %q not resident", ErrControlPlane, id)
	}
	if !tri.Contains(deadHost) {
		return fmt.Errorf("%w: guest %q has no replica on host %d", ErrControlPlane, id, deadHost)
	}
	cp.inflight[id] = "replacement"
	cp.c.Ingress().Pause(id)
	attempts := 0
	var barrier func()
	barrier = func() {
		if !cp.c.GuestQuiescent(id) {
			attempts++
			if attempts >= cp.cfg.MaxDrainAttempts {
				finish(fmt.Errorf("%w: guest %q never quiesced after %d drain windows", ErrControlPlane, id, attempts))
				return
			}
			cp.stats.DrainRetries++
			cp.c.Loop().After(cp.cfg.DrainWindow, "cp:drain", barrier)
			return
		}
		_, newHost, err := cp.pool.Rehome(id, deadHost)
		if err != nil {
			finish(err)
			return
		}
		if err := cp.c.ReplaceReplica(id, deadHost, newHost); err != nil {
			// Roll the pool back to the original triangle: the data plane
			// still has the (dead) replica on deadHost. The whole barrier
			// step is one simulated instant, so the freed edges cannot
			// have been claimed in between. A rollback failure leaves pool
			// and cluster divergent — join it into the outcome so it is
			// never swallowed; Verify() flags the divergence it leaves.
			if _, rbErr := cp.pool.Release(id); rbErr != nil {
				err = errors.Join(err, fmt.Errorf("rollback release %q: %w", id, rbErr))
			} else if rbErr := cp.pool.AdmitTriangle(id, tri); rbErr != nil {
				err = errors.Join(err, fmt.Errorf("rollback restore %q on %v: %w", id, tri, rbErr))
			}
			finish(err)
			return
		}
		cp.c.Ingress().Resume(id)
		finish(nil)
	}
	cp.c.Loop().After(cp.cfg.DrainWindow, "cp:drain", barrier)
	return nil
}

// Verify checks the control plane's placement invariants (edge-disjoint
// triangles, capacity, bookkeeping) and that the pool agrees with the
// cluster's deployed residency — in both directions, so a half-completed
// rollback (pool lost a guest the cluster still runs) cannot hide.
// Scenario drivers call it after every lifecycle decision.
func (cp *ControlPlane) Verify() error {
	if err := cp.pool.Verify(); err != nil {
		return err
	}
	for _, id := range cp.c.GuestIDs() {
		if _, ok := cp.pool.Triangle(id); !ok {
			return fmt.Errorf("%w: cluster deploys %q but the pool does not hold it", ErrControlPlane, id)
		}
	}
	for _, id := range cp.pool.IDs() {
		g, ok := cp.c.Guest(id)
		if !ok {
			return fmt.Errorf("%w: pool holds %q but cluster does not", ErrControlPlane, id)
		}
		tri, _ := cp.pool.Triangle(id)
		want := map[int]bool{tri[0]: true, tri[1]: true, tri[2]: true}
		hosts := g.HostIndexes()
		if len(hosts) != 3 {
			return fmt.Errorf("%w: guest %q has %d replicas", ErrControlPlane, id, len(hosts))
		}
		for _, h := range hosts {
			if !want[h] {
				return fmt.Errorf("%w: guest %q deployed on %v, pool says %v", ErrControlPlane, id, hosts, tri)
			}
		}
	}
	return nil
}
