// Package controlplane is the online orchestrator over the StopWatch
// cluster: it owns the live host inventory (capacity, residency, used K_n
// edges) and serves the guest lifecycle a real cloud needs.
//
// Every mutation is one value of the typed Op sum — AdmitOp, EvictOp,
// ReplaceOp, DrainOp, UndrainOp, FailOp, EvacuateOp, RepairOp, MigrateOp —
// submitted
// through the single entry point Apply, which returns a structured Outcome
// (typed result, per-phase barrier timings, affected guests, pool deltas),
// appends it to the operations log (Log), and streams progress to Watch
// subscribers. Stats is a pure fold over the log. The verb methods (Admit,
// Evict, ReplaceReplica, DrainHost, UndrainHost, FailHost,
// EvacuateFailedHost, RepairHost) are thin wrappers over Apply kept for
// call-site convenience.
//
// The data plane (cluster, VMMs, gateways) stays mechanism; every policy
// decision — which triangle, which replacement host, when a switchover is
// safe, when a silent machine is declared dead (EnableStallDetector) —
// lives here.
package controlplane

import (
	"errors"
	"fmt"

	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/placement"
	"stopwatch/internal/sim"
)

// Config tunes the control plane.
type Config struct {
	// Capacity is the per-host replica capacity the pool enforces
	// (placement Theorem 2's c). Required, positive. Keep c <= (n-1)/2 if
	// you want the Theorem-2 guarantees to describe the regime.
	Capacity int
	// DrainWindow is how long the replacement barrier waits after pausing
	// a guest's ingress stream before checking quiescence — it must cover
	// a fabric round trip plus Dom0 processing so in-flight packets and
	// proposals settle. Default 50ms.
	DrainWindow sim.Time
	// MaxDrainAttempts bounds quiescence re-checks (each DrainWindow
	// apart) before a replacement is abandoned. Default 40.
	MaxDrainAttempts int
}

// DefaultConfig returns control-plane defaults for the paper's LAN regime.
func DefaultConfig(capacity int) Config {
	return Config{Capacity: capacity, DrainWindow: 50 * sim.Millisecond, MaxDrainAttempts: 40}
}

// ControlPlane orchestrates guest lifecycle over a running cluster.
type ControlPlane struct {
	c    *core.Cluster
	pool *placement.Pool
	cfg  Config

	// log is the append-only operation record; every Apply opens an entry.
	log opLog
	// watchers are the live Watch subscriptions, in subscription order.
	watchers []*watcher

	// inflight guards per-guest lifecycle exclusivity (a guest being
	// replaced must not concurrently evict).
	inflight map[string]string

	// draining marks machines with an evacuation in progress (drained in
	// the pool, residents not yet all moved).
	draining map[int]bool

	// failures tracks crashed machines (FailOp → RepairOp). Each failure
	// epoch is one *hostFailure; pointer identity doubles as the epoch
	// check, so a reconfiguration closure scheduled in one epoch cannot
	// open a later epoch's evacuation gate.
	failures map[int]*hostFailure

	// suspected marks machines the stall detector has already reported, so
	// one dead machine's many stalled sequences submit one FailOp; cleared
	// by RepairOp so a repaired machine can be re-detected.
	suspected map[int]bool

	// loadAware/loadBudget: telemetry-driven admission (admission.go).
	// Off by default — placement then ignores host telemetry entirely.
	loadAware  bool
	loadBudget sim.Time

	// planned: one-move migration planning for infeasible placements
	// (migrate.go). Off by default — rejections then match the seed exactly.
	planned bool
}

// New builds a control plane over the cluster. The cluster must be in
// StopWatch mode with 3 replicas per guest (replica triangles are what the
// placement theory packs).
func New(c *core.Cluster, cfg Config) (*ControlPlane, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil cluster", ErrControlPlane)
	}
	if c.Ingress() == nil {
		return nil, fmt.Errorf("%w: control plane needs a StopWatch-mode cluster", ErrControlPlane)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("%w: capacity %d", ErrControlPlane, cfg.Capacity)
	}
	if cfg.DrainWindow <= 0 {
		cfg.DrainWindow = 50 * sim.Millisecond
	}
	if cfg.MaxDrainAttempts <= 0 {
		cfg.MaxDrainAttempts = 40
	}
	pool, err := placement.NewPool(c.Hosts(), cfg.Capacity)
	if err != nil {
		return nil, err
	}
	return &ControlPlane{
		c:         c,
		pool:      pool,
		cfg:       cfg,
		inflight:  make(map[string]string),
		draining:  make(map[int]bool),
		failures:  make(map[int]*hostFailure),
		suspected: make(map[int]bool),
	}, nil
}

// Cluster returns the governed cluster.
func (cp *ControlPlane) Cluster() *core.Cluster { return cp.c }

// Pool returns the live placement pool (read it, don't mutate around the
// control plane).
func (cp *ControlPlane) Pool() *placement.Pool { return cp.pool }

// Utilization returns resident replicas over total capacity, in [0,1].
func (cp *ControlPlane) Utilization() float64 { return cp.pool.Utilization() }

// Residents returns the number of resident guests.
func (cp *ControlPlane) Residents() int { return cp.pool.Guests() }

// InFlight reports whether a lifecycle operation (e.g. a replacement
// barrier) is in progress for the guest, and which. Failure injectors
// should pick a different victim while one is.
func (cp *ControlPlane) InFlight(id string) (string, bool) {
	op, busy := cp.inflight[id]
	return op, busy
}

// Apply submits one operation. The returned Outcome is the op's permanent
// record in the operations log: synchronous ops (admit, evict, undrain,
// repair) complete before Apply returns; asynchronous ops (replace, drain,
// fail, evacuate) complete as the simulation advances — observe completion
// via Outcome.Done, the op's Done callback, or the Watch event stream. A
// validation rejection completes immediately with Outcome.Rejected() true
// and no state changed.
func (cp *ControlPlane) Apply(op Op) *Outcome {
	return cp.apply(op, 0)
}

// apply opens the log entry and dispatches; parent links a child op (an
// evacuation's per-resident move) to the op that submitted it.
func (cp *ControlPlane) apply(op Op, parent uint64) *Outcome {
	oc := cp.log.open(op, parent, cp.c.Loop().Now(), cp.pool.Guests(), cp.pool.Utilization())
	if op == nil {
		cp.finish(oc, fmt.Errorf("%w: nil op", ErrControlPlane))
		return oc
	}
	cp.emit(Event{Kind: OpStarted, Seq: oc.Seq, Parent: oc.Parent, Op: op, At: oc.Submitted})
	switch op := op.(type) {
	case AdmitOp:
		cp.applyAdmit(op, oc)
	case EvictOp:
		cp.applyEvict(op, oc)
	case ReplaceOp:
		cp.applyReplace(op, oc)
	case DrainOp:
		cp.applyDrain(op, oc)
	case UndrainOp:
		cp.applyUndrain(op, oc)
	case FailOp:
		cp.applyFail(op, oc)
	case EvacuateOp:
		cp.applyEvacuate(op, oc)
	case RepairOp:
		cp.applyRepair(op, oc)
	case MigrateOp:
		cp.applyMigrate(op, oc)
	default:
		cp.finish(oc, fmt.Errorf("%w: unknown op %T", ErrControlPlane, op))
	}
	return oc
}

// phase stamps the outcome with a reached phase and streams it.
func (cp *ControlPlane) phase(oc *Outcome, p Phase) {
	at := cp.c.Loop().Now()
	oc.Phases = append(oc.Phases, PhaseTiming{Phase: p, At: at})
	cp.emit(Event{Kind: PhaseReached, Seq: oc.Seq, Parent: oc.Parent, Op: oc.Op, Phase: p, At: at})
}

// finish completes an outcome: final error, completion time, post-op pool
// state, the completion event, and the op's Done callback — in that order,
// so a callback already observes the finished record.
func (cp *ControlPlane) finish(oc *Outcome, err error) {
	oc.Err = err
	oc.done = true
	oc.Completed = cp.c.Loop().Now()
	oc.Pool.GuestsAfter = cp.pool.Guests()
	oc.Pool.UtilAfter = cp.pool.Utilization()
	kind := OpCompleted
	if err != nil {
		kind = OpFailed
	}
	cp.emit(Event{Kind: kind, Seq: oc.Seq, Parent: oc.Parent, Op: oc.Op, At: oc.Completed, Err: err})
	if done := doneFn(oc.Op); done != nil {
		done(oc)
	}
}

// applyAdmit places and deploys a new guest on an edge-disjoint triangle.
// When the pool has no capacity the guest is rejected with ErrRejected;
// any deployment error rolls the placement back.
func (cp *ControlPlane) applyAdmit(op AdmitOp, oc *Outcome) {
	id := op.GuestID
	if op.Factory == nil {
		cp.finish(oc, fmt.Errorf("%w: admit %q needs an app factory", ErrControlPlane, id))
		return
	}
	if verb, busy := cp.inflight[id]; busy {
		cp.finish(oc, fmt.Errorf("%w: guest %q has a %s in flight", ErrControlPlane, id, verb))
		return
	}
	cp.refreshHostTelemetry()
	tri, err := cp.pool.Admit(id)
	if err != nil {
		if errors.Is(err, placement.ErrNoFeasibleHost) {
			// A blocked admission may be one replica move away from feasible:
			// plan that move and run it as a child MigrateOp, then retry.
			if cp.planned {
				if plan, ok := cp.pool.PlanAdmitMigration(id, cp.migrationAvoid); ok {
					oc.setGuest(id)
					cp.phase(oc, PhasePlan)
					cp.admitAfterMigration(op, oc, plan)
					return
				}
			}
			cp.finish(oc, fmt.Errorf("%w: %v", ErrRejected, err))
			return
		}
		cp.finish(oc, err)
		return
	}
	oc.setGuest(id)
	cp.phase(oc, PhasePlace)
	g, err := cp.c.Deploy(id, tri[:], op.Factory)
	if err != nil {
		_, _ = cp.pool.Release(id)
		cp.finish(oc, err)
		return
	}
	oc.Guest, oc.Triangle = g, tri
	cp.phase(oc, PhaseDeploy)
	cp.finish(oc, nil)
}

// applyEvict undeploys a guest and returns its edges and capacity to the
// pool.
func (cp *ControlPlane) applyEvict(op EvictOp, oc *Outcome) {
	id := op.GuestID
	if verb, busy := cp.inflight[id]; busy {
		cp.finish(oc, fmt.Errorf("%w: guest %q has a %s in flight", ErrControlPlane, id, verb))
		return
	}
	if _, ok := cp.pool.Triangle(id); !ok {
		cp.finish(oc, fmt.Errorf("%w: guest %q not resident", ErrControlPlane, id))
		return
	}
	oc.setGuest(id)
	if err := cp.c.Undeploy(id); err != nil {
		cp.finish(oc, err)
		return
	}
	if _, err := cp.pool.Release(id); err != nil {
		cp.finish(oc, err)
		return
	}
	cp.phase(oc, PhaseRelease)
	cp.finish(oc, nil)
}

// applyReplace runs the Sec. VII replacement barrier for guest id's replica
// on op.DeadHost (reported failed by whatever detector submitted the op).
// The protocol, all in simulated time:
//
//  1. pause the guest's ingress stream (client packets buffer at the edge);
//  2. wait DrainWindow for in-flight fabric traffic and delivery proposals
//     to settle, re-checking up to MaxDrainAttempts times;
//  3. re-home the replica through the placement pool (least-loaded fresh
//     host whose edges to both survivors are free);
//  4. reconstruct the replica from the survivors' journal and switch the
//     multicast groups over (core.Cluster.ReplaceReplica);
//  5. resume the ingress stream, flushing the buffered packets.
//
// On failure the ingress is resumed so the surviving replicas keep serving
// degraded.
func (cp *ControlPlane) applyReplace(op ReplaceOp, oc *Outcome) {
	id := op.GuestID
	if verb, busy := cp.inflight[id]; busy {
		cp.finish(oc, fmt.Errorf("%w: guest %q has a %s in flight", ErrControlPlane, id, verb))
		return
	}
	tri, ok := cp.pool.Triangle(id)
	if !ok {
		cp.finish(oc, fmt.Errorf("%w: guest %q not resident", ErrControlPlane, id))
		return
	}
	if !tri.Contains(op.DeadHost) {
		cp.finish(oc, fmt.Errorf("%w: guest %q has no replica on host %d", ErrControlPlane, id, op.DeadHost))
		return
	}
	oc.setGuest(id)
	cp.inflight[id] = "replacement"
	cp.c.Ingress().Pause(id)
	cp.phase(oc, PhasePause)
	done := func(err error) {
		delete(cp.inflight, id)
		if err != nil {
			cp.c.Ingress().Resume(id)
		}
		cp.finish(oc, err)
	}
	attempts := 0
	var barrier func()
	barrier = func() {
		if !cp.c.GuestQuiescent(id) {
			attempts++
			if attempts >= cp.cfg.MaxDrainAttempts {
				done(fmt.Errorf("%w: guest %q never quiesced after %d drain windows", ErrControlPlane, id, attempts))
				return
			}
			oc.QuiesceRetries++
			cp.c.Loop().After(cp.cfg.DrainWindow, "cp:drain", barrier)
			return
		}
		cp.phase(oc, PhaseQuiesce)
		cp.refreshHostTelemetry()
		proceed := func(newTri placement.Triangle, newHost int) {
			cp.phase(oc, PhaseRehome)
			if err := cp.c.ReplaceReplica(id, op.DeadHost, newHost); err != nil {
				// Roll the pool back to the original triangle: the data plane
				// still has the (dead) replica on op.DeadHost. The whole barrier
				// step is one simulated instant, so the freed edges cannot
				// have been claimed in between. A rollback failure leaves pool
				// and cluster divergent — join it into the outcome so it is
				// never swallowed; Verify() flags the divergence it leaves.
				if _, rbErr := cp.pool.Release(id); rbErr != nil {
					err = errors.Join(err, fmt.Errorf("rollback release %q: %w", id, rbErr))
				} else if rbErr := cp.pool.AdmitTriangle(id, tri); rbErr != nil {
					err = errors.Join(err, fmt.Errorf("rollback restore %q on %v: %w", id, tri, rbErr))
				}
				done(err)
				return
			}
			oc.Triangle = newTri
			cp.phase(oc, PhaseReplace)
			cp.c.Ingress().Resume(id)
			cp.phase(oc, PhaseResume)
			done(nil)
		}
		newTri, newHost, err := cp.pool.Rehome(id, op.DeadHost)
		if err == nil {
			proceed(newTri, newHost)
			return
		}
		if !cp.planned || !errors.Is(err, placement.ErrNoFeasibleHost) {
			done(err)
			return
		}
		// No feasible host for the re-home, but perhaps one replica move
		// away from one: plan the move, run it as a child MigrateOp (the
		// guest stays paused and quiescent throughout — its ingress is shut
		// and no new proposals can arrive), then retry the re-home.
		plan, ok := cp.pool.PlanRehomeMigration(id, op.DeadHost, cp.migrationAvoid)
		if !ok {
			done(err)
			return
		}
		cp.phase(oc, PhasePlan)
		mig := MigrateOp{GuestID: plan.GuestID, From: plan.From, To: plan.To}
		mig.Done = func(moc *Outcome) {
			if moc.Err != nil {
				done(errors.Join(err, fmt.Errorf("planned migration: %w", moc.Err)))
				return
			}
			cp.refreshHostTelemetry()
			nt, nh, rerr := cp.pool.Rehome(id, op.DeadHost)
			if rerr != nil {
				done(rerr)
				return
			}
			proceed(nt, nh)
		}
		cp.apply(mig, oc.Seq)
	}
	cp.c.Loop().After(cp.cfg.DrainWindow, "cp:drain", barrier)
}

// Admit is the verb wrapper over Apply(AdmitOp): it places and deploys a
// new guest, returning the deployed guest and triangle, or ErrRejected
// (check with errors.Is) when the pool has no capacity.
func (cp *ControlPlane) Admit(id string, factory func() guest.App) (*core.Guest, placement.Triangle, error) {
	oc := cp.Apply(AdmitOp{GuestID: id, Factory: factory})
	return oc.Guest, oc.Triangle, oc.Err
}

// Evict is the verb wrapper over Apply(EvictOp).
func (cp *ControlPlane) Evict(id string) error {
	return cp.Apply(EvictOp{GuestID: id}).Err
}

// ReplaceReplica is the verb wrapper over Apply(ReplaceOp): it initiates
// the asynchronous replacement of guest id's replica on deadHost. A
// validation rejection is returned synchronously; otherwise onDone
// (optional) fires with the barrier's outcome.
func (cp *ControlPlane) ReplaceReplica(id string, deadHost int, onDone func(error)) error {
	op := ReplaceOp{GuestID: id, DeadHost: deadHost}
	op.Done = func(oc *Outcome) {
		if oc.Rejected() {
			return // reported synchronously below
		}
		if onDone != nil {
			onDone(oc.Err)
		}
	}
	if oc := cp.Apply(op); oc.Rejected() {
		return oc.Err
	}
	return nil
}

// Verify checks the control plane's placement invariants (edge-disjoint
// triangles, capacity, bookkeeping) and that the pool agrees with the
// cluster's deployed residency — in both directions, so a half-completed
// rollback (pool lost a guest the cluster still runs) cannot hide.
// Scenario drivers run it once per completed top-level op, keyed off the
// event stream (subscribe Watch, audit on OpCompleted/OpFailed of ops with
// a zero Parent) — one post-outcome audit instead of re-running the
// residency sweep at every step inside an evacuation.
func (cp *ControlPlane) Verify() error {
	if err := cp.pool.Verify(); err != nil {
		return err
	}
	for _, id := range cp.c.GuestIDs() {
		if _, ok := cp.pool.Triangle(id); !ok {
			return fmt.Errorf("%w: cluster deploys %q but the pool does not hold it", ErrControlPlane, id)
		}
	}
	for _, id := range cp.pool.IDs() {
		g, ok := cp.c.Guest(id)
		if !ok {
			return fmt.Errorf("%w: pool holds %q but cluster does not", ErrControlPlane, id)
		}
		tri, _ := cp.pool.Triangle(id)
		want := map[int]bool{tri[0]: true, tri[1]: true, tri[2]: true}
		hosts := g.HostIndexes()
		if len(hosts) != 3 {
			return fmt.Errorf("%w: guest %q has %d replicas", ErrControlPlane, id, len(hosts))
		}
		for _, h := range hosts {
			if !want[h] {
				return fmt.Errorf("%w: guest %q deployed on %v, pool says %v", ErrControlPlane, id, hosts, tri)
			}
		}
	}
	return nil
}
