package controlplane

// The append-only operations log. Every Apply opens one Outcome here at
// submission; asynchronous ops fill it in as their barriers advance. The
// log is the single source of truth for decision accounting: Stats is a
// pure fold over it (FoldStats) — there are no hand-kept counters anywhere
// in the control plane — and FormatLog renders it deterministically, so
// two runs with the same seed can be compared byte for byte.

import (
	"errors"
	"strings"

	"stopwatch/internal/sim"
)

// opLog is the control plane's append-only operation record, with a
// memoized fold frontier: Stats() folds incrementally from the last seen
// seq instead of re-walking the whole log on every call. folded caches the
// fold of entries[:frontier], which are all done — a done outcome never
// mutates again, so its contribution is final; in-flight entries (and
// everything after the first of them) keep accruing retries and phases and
// are re-folded live on each call. Stats stays a fold: the cache is just
// where the fold left off, never a hand-kept counter.
type opLog struct {
	entries []*Outcome

	frontier int   // entries[:frontier] are done and folded into `folded`
	folded   Stats // fold of the finalized prefix
}

// open appends a fresh Outcome for op, stamped with the submission time and
// the pool's pre-op aggregate state.
func (l *opLog) open(op Op, parent uint64, at sim.Time, guests int, util float64) *Outcome {
	oc := &Outcome{
		Seq:       uint64(len(l.entries)) + 1,
		Op:        op,
		Parent:    parent,
		Submitted: at,
		Pool:      PoolDelta{GuestsBefore: guests, UtilBefore: util},
	}
	oc.Phases = oc.phasesBuf[:0]
	l.entries = append(l.entries, oc)
	return oc
}

// Log returns the operations log in submission order. Entries are the live
// records — an asynchronous op's entry keeps filling in until Done() — and
// the slice is a fresh copy safe to hold.
func (cp *ControlPlane) Log() []*Outcome {
	out := make([]*Outcome, len(cp.log.entries))
	copy(out, cp.log.entries)
	return out
}

// Outcome returns the log entry with sequence number seq (from 1) — how an
// event-stream subscriber resolves an Event to its full record.
func (cp *ControlPlane) Outcome(seq uint64) (*Outcome, bool) {
	if seq < 1 || seq > uint64(len(cp.log.entries)) {
		return nil, false
	}
	return cp.log.entries[seq-1], true
}

// Stats aggregates control-plane decisions. It is derived: a pure fold over
// the operations log, never incremented by hand.
type Stats struct {
	// Admitted and Rejected count AdmitOp outcomes.
	Admitted, Rejected int
	// Evicted counts completed EvictOps.
	Evicted int
	// Replacements counts completed ReplaceOps; ReplacementFailures counts
	// ones whose barrier ran but failed. Evacuation moves are replacements
	// too and count here as well.
	Replacements, ReplacementFailures int
	// DrainRetries counts quiescence re-checks beyond the first, summed
	// over every replacement barrier.
	DrainRetries int
	// HostDrains counts DrainOps that pulled capacity; Evacuations and
	// EvacuationFailures count the per-resident moves they submitted.
	HostDrains, Evacuations, EvacuationFailures int
	// HostFailures counts FailOps that marked a machine crashed;
	// CrashEvacuations and CrashEvacuationFailures count the per-resident
	// moves EvacuateOps submitted off them.
	HostFailures, CrashEvacuations, CrashEvacuationFailures int
	// Migrations counts completed MigrateOps; MigrationFailures counts ones
	// whose barrier ran but failed. MigrationsPlanned counts blocked
	// Admit/Replace ops the planner produced a one-move plan for (PhasePlan
	// reached), whether or not the plan ultimately unblocked them.
	Migrations, MigrationFailures, MigrationsPlanned int
	// ReconcileRounds, ReconcileRepairs and ReconcileRetries sum the FailOps'
	// pre-commit survivor reconcile rounds: per-guest rounds run, sequences
	// repaired at importers, and export resends after ack loss.
	ReconcileRounds, ReconcileRepairs, ReconcileRetries int
}

// Stats folds the operations log into decision counters, incrementally:
// the frontier advances over outcomes that have completed (in log order —
// a done outcome's contribution is final) and only the live suffix is
// re-folded per call. The result is identical to FoldStats over the whole
// log at the same instant.
func (cp *ControlPlane) Stats() Stats {
	l := &cp.log
	for l.frontier < len(l.entries) && l.entries[l.frontier].done {
		accumulate(&l.folded, l.entries[l.frontier])
		l.frontier++
	}
	st := l.folded
	for _, oc := range l.entries[l.frontier:] {
		accumulate(&st, oc)
	}
	return st
}

// FoldStats derives Stats from an operations log. In-flight ops contribute
// what has already happened (a started drain counts, its unfinished moves
// do not), so a mid-run fold matches what hand-kept counters would have
// read at the same instant.
func FoldStats(entries []*Outcome) Stats {
	var st Stats
	for _, oc := range entries {
		accumulate(&st, oc)
	}
	return st
}

// accumulate folds one outcome's current contribution into st. For a done
// outcome the contribution is final (nothing mutates a finished record);
// for an in-flight one it is the partial view — retries so far, a drain
// that has pulled capacity — and the caller re-folds it until it finishes.
func accumulate(st *Stats, oc *Outcome) {
	if _, planned := oc.PhaseAt(PhasePlan); planned {
		st.MigrationsPlanned++
	}
	switch op := oc.Op.(type) {
	case AdmitOp:
		switch {
		case !oc.done:
		case oc.Err == nil:
			st.Admitted++
		case errors.Is(oc.Err, ErrRejected):
			st.Rejected++
		}
	case EvictOp:
		if oc.done && oc.Err == nil {
			st.Evicted++
		}
	case ReplaceOp:
		st.DrainRetries += oc.QuiesceRetries
		if !oc.done {
			break
		}
		if oc.Err == nil {
			st.Replacements++
			switch op.cause {
			case causeDrain:
				st.Evacuations++
			case causeCrash:
				st.CrashEvacuations++
			}
			break
		}
		// A validation rejection never ran the barrier and is not a
		// replacement failure; a rejected evacuation move still failed
		// the evacuation.
		if len(oc.Phases) > 0 {
			st.ReplacementFailures++
		}
		switch op.cause {
		case causeDrain:
			st.EvacuationFailures++
		case causeCrash:
			st.CrashEvacuationFailures++
		}
	case MigrateOp:
		st.DrainRetries += oc.QuiesceRetries
		if !oc.done {
			break
		}
		if oc.Err == nil {
			st.Migrations++
			break
		}
		if len(oc.Phases) > 0 {
			st.MigrationFailures++
		}
	case DrainOp:
		if len(oc.Phases) > 0 {
			st.HostDrains++
		}
	case FailOp:
		if len(oc.Phases) > 0 {
			st.HostFailures++
		}
		st.ReconcileRounds += oc.ReconcileRounds
		st.ReconcileRepairs += oc.ReconcileRepairs
		st.ReconcileRetries += oc.ReconcileRetries
	}
}

// FormatLog renders an operations log deterministically, one line per
// outcome in submission order — the byte-comparable replay artifact.
func FormatLog(entries []*Outcome) string {
	var b strings.Builder
	for _, oc := range entries {
		b.WriteString(oc.String())
		b.WriteByte('\n')
	}
	return b.String()
}
