package controlplane

import (
	"fmt"
	"testing"

	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

func counterValue(t *testing.T, reg *metrics.Registry, name, label string) uint64 {
	t.Helper()
	samples, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	for _, s := range samples {
		if s.LabelValue == label {
			return s.Counter
		}
	}
	return 0
}

// TestInstrumentMetricsCountsOps: the Watch translator turns the event
// stream into op counters, phase latency observations and retry counts
// that agree with the fold over the same log.
func TestInstrumentMetricsCountsOps(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 2)
	reg := metrics.NewRegistry()
	cp.InstrumentMetrics(reg)

	for i := 0; i < 3; i++ {
		if _, _, err := cp.Admit(fmt.Sprintf("g%d", i), beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Evict("g2"); err != nil {
		t.Fatal(err)
	}
	// A rejected evict (guest not resident) lands in failed+rejected.
	if err := cp.Evict("nope"); err == nil {
		t.Fatal("expected rejection")
	}
	cp.Cluster().Start()
	if err := cp.Cluster().Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	g, _ := cp.Cluster().Guest("g0")
	dead := g.Replica(0).Host()
	g.Replica(0).Runtime().Stop()
	if err := cp.ReplaceReplica("g0", dead, nil); err != nil {
		t.Fatal(err)
	}
	if err := cp.Cluster().Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}

	st := cp.Stats()
	if got := counterValue(t, reg, "stopwatch_cp_ops_completed_total", "admit"); got != uint64(st.Admitted) {
		t.Fatalf("admit completions = %d, stats say %d", got, st.Admitted)
	}
	if got := counterValue(t, reg, "stopwatch_cp_ops_completed_total", "evict"); got != uint64(st.Evicted) {
		t.Fatalf("evict completions = %d, stats say %d", got, st.Evicted)
	}
	if got := counterValue(t, reg, "stopwatch_cp_ops_started_total", "replace"); got != 1 {
		t.Fatalf("replace starts = %d, want 1", got)
	}
	if got := counterValue(t, reg, "stopwatch_cp_ops_failed_total", "evict"); got != 1 {
		t.Fatalf("evict failures = %d, want 1", got)
	}
	if got := counterValue(t, reg, "stopwatch_cp_ops_rejected_total", "evict"); got != 1 {
		t.Fatalf("evict rejections = %d, want 1", got)
	}
	if got := counterValue(t, reg, "stopwatch_cp_quiesce_retries_total", ""); got != uint64(st.DrainRetries) {
		t.Fatalf("quiesce retries = %d, stats say %d", got, st.DrainRetries)
	}

	// Every replacement-barrier phase observed at least once, with
	// plausible latency (the pause→quiesce hop covers >= one DrainWindow).
	samples, ok := reg.Lookup("stopwatch_cp_phase_latency_ns")
	if !ok {
		t.Fatal("phase latency histogram missing")
	}
	byPhase := map[string]metrics.Sample{}
	for _, s := range samples {
		byPhase[s.LabelValue] = s
	}
	for _, p := range []Phase{PhasePlace, PhaseDeploy, PhaseRelease, PhasePause, PhaseQuiesce, PhaseRehome, PhaseReplace, PhaseResume} {
		s, ok := byPhase[string(p)]
		if !ok || s.Count == 0 {
			t.Fatalf("phase %q never observed (%v)", p, byPhase)
		}
	}
	if q := byPhase[string(PhaseQuiesce)]; q.Sum < int64(50*sim.Millisecond) {
		t.Fatalf("pause→quiesce latency %dns, want >= one 50ms drain window", q.Sum)
	}

	// Determinism: an identically seeded, identically driven run renders a
	// byte-identical metrics page.
	reg2 := metrics.NewRegistry()
	cp2 := newTestPlane(t, 9, 3, 2)
	cp2.InstrumentMetrics(reg2)
	for i := 0; i < 3; i++ {
		if _, _, err := cp2.Admit(fmt.Sprintf("g%d", i), beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp2.Evict("g2"); err != nil {
		t.Fatal(err)
	}
	if err := cp2.Evict("nope"); err == nil {
		t.Fatal("expected rejection")
	}
	cp2.Cluster().Start()
	if err := cp2.Cluster().Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	g2, _ := cp2.Cluster().Guest("g0")
	g2.Replica(0).Runtime().Stop()
	if err := cp2.ReplaceReplica("g0", g2.Replica(0).Host(), nil); err != nil {
		t.Fatal(err)
	}
	if err := cp2.Cluster().Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if reg.Prom() != reg2.Prom() {
		t.Fatal("instrumented metrics not deterministic across identical runs")
	}
}

// TestInstrumentMetricsDetectorCounters: detector-submitted FailOps count
// as suspicions; rejected ones (machine alive) as false alarms.
func TestInstrumentMetricsDetectorCounters(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 111)
	c := cp.Cluster()
	reg := metrics.NewRegistry()
	cp.InstrumentMetrics(reg)
	if err := cp.EnableStallDetector(0); err != nil {
		t.Fatal(err)
	}
	ids := []string{"ga", "gb", "gc", "gd", "ge"}
	for _, id := range ids {
		if oc := cp.Apply(AdmitOp{GuestID: id, Factory: lightFactory(vtime.Virtual(4 * sim.Millisecond))}); oc.Err != nil {
			t.Fatal(oc.Err)
		}
	}
	c.Start()
	machine := busiestMachine(cp)
	startPings(t, c, ids, 10*sim.Millisecond, 15*sim.Second)
	c.Loop().At(300*sim.Millisecond, "kill", func() {
		// Data-plane kill only: nobody tells the control plane; the stall
		// detector must notice the silent proposals itself.
		if err := c.FailMachine(machine); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "stopwatch_cp_detector_suspicions_total", ""); got != 1 {
		t.Fatalf("suspicions = %d, want 1", got)
	}
	if got := counterValue(t, reg, "stopwatch_cp_detector_false_alarms_total", ""); got != 0 {
		t.Fatalf("false alarms = %d, want 0", got)
	}
	if got := counterValue(t, reg, "stopwatch_cp_ops_started_total", "evacuate"); got != 1 {
		t.Fatalf("detector-chained evacuations = %d, want 1", got)
	}
	if got := counterValue(t, reg, "stopwatch_cp_ops_started_total", "fail"); got != 1 {
		t.Fatalf("fail ops started = %d, want 1", got)
	}
}
