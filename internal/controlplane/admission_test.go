package controlplane

import (
	"errors"
	"fmt"
	"testing"

	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// TestLoadAwarePlacementAvoidsSaturatedHost: the acceptance scenario for
// telemetry-driven admission. One host's disk is saturated with Dom0
// background load; with load-aware admission on, new triangles avoid it
// (it is gated — its backlog exceeds the budget), while the default
// control plane happily places on it. The decision is visible in the
// exported gauges.
func TestLoadAwarePlacementAvoidsSaturatedHost(t *testing.T) {
	saturate := func(cp *ControlPlane) {
		// ~1s of disk backlog on host 0: one full 80MB transfer.
		cp.Cluster().Host(0).DiskRequest(80 << 20)
	}

	// Default plane: host 0 is least-loaded like everyone else and wins
	// the index tie-break — the first triangle lands on it.
	cpOff := newTestPlane(t, 9, 3, 4)
	saturate(cpOff)
	_, triOff, err := cpOff.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if !triOff.Contains(0) {
		t.Fatalf("baseline placement avoided host 0 unprompted: %v — scenario can't discriminate", triOff)
	}

	// Load-aware plane, same seed, same saturation: host 0 is gated
	// (backlog ~1s >> budget) and the triangle avoids it.
	cpOn := newTestPlane(t, 9, 3, 4)
	reg := metrics.NewRegistry()
	cpOn.InstrumentMetrics(reg)
	budget := cpOn.EnableLoadAwareAdmission(LoadAwareConfig{FalseAlarmBudget: 10 * sim.Millisecond})
	if budget != 10*sim.Millisecond {
		t.Fatalf("budget = %v", budget)
	}
	if !cpOn.LoadAware() {
		t.Fatal("LoadAware() false after enable")
	}
	saturate(cpOn)
	_, triOn, err := cpOn.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if triOn.Contains(0) {
		t.Fatalf("load-aware placement used the saturated host: %v", triOn)
	}
	if !cpOn.Pool().Gated(0) {
		t.Fatal("saturated host not gated")
	}

	// The gauges export the decision.
	lookupGauge := func(name, label string) float64 {
		t.Helper()
		samples, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("gauge %q missing", name)
		}
		for _, s := range samples {
			if s.LabelValue == label {
				return s.Gauge
			}
		}
		t.Fatalf("gauge %q has no sample %q", name, label)
		return 0
	}
	if got := lookupGauge("stopwatch_cp_gated_hosts", ""); got != 1 {
		t.Fatalf("gated hosts gauge = %v, want 1", got)
	}
	host0 := cpOn.Cluster().Host(0).Name()
	if got := lookupGauge("stopwatch_cp_host_gated", host0); got != 1 {
		t.Fatalf("host 0 gate gauge = %v, want 1", got)
	}
	if got := lookupGauge("stopwatch_cp_host_score", host0); got <= float64(budget) {
		t.Fatalf("host 0 score gauge = %v, want > budget %d", got, budget)
	}

	// Default-off guarantee: a plane with instrumentation but without
	// EnableLoadAwareAdmission places exactly like the historical pool.
	cpPlain := newTestPlane(t, 9, 3, 4)
	cpPlain.InstrumentMetrics(metrics.NewRegistry())
	saturate(cpPlain)
	_, triPlain, err := cpPlain.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if triPlain != triOff {
		t.Fatalf("metrics-only plane changed placement: %v vs %v", triPlain, triOff)
	}
}

// TestLoadAwareScoreOrdersWithoutGating: below the budget the backlog is a
// tie-break, not a veto — equally-replica-loaded hosts are scanned in
// backlog order.
func TestLoadAwareScoreOrdersWithoutGating(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 4)
	cp.EnableLoadAwareAdmission(LoadAwareConfig{FalseAlarmBudget: 10 * sim.Second})
	// ~105ms backlog on host 0: well under the huge budget, but enough to
	// sort it behind the other idle hosts.
	cp.Cluster().Host(0).DiskRequest(8 << 20)
	_, tri, err := cp.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Pool().Gated(0) {
		t.Fatal("host gated despite backlog below budget")
	}
	if tri.Contains(0) {
		t.Fatalf("score tie-break ignored: %v placed on the loaded host", tri)
	}
}

// TestGatedAdmissionRejectsAndCounts: when gating shrinks the pool below a
// feasible triangle, the admission is rejected and the gated-admission
// counter moves. 3 hosts is the minimum triangle; gating one must reject.
func TestGatedAdmissionRejectsAndCounts(t *testing.T) {
	cp := newTestPlane(t, 3, 3, 4)
	reg := metrics.NewRegistry()
	cp.InstrumentMetrics(reg)
	cp.EnableLoadAwareAdmission(LoadAwareConfig{FalseAlarmBudget: 10 * sim.Millisecond})
	cp.Cluster().Host(0).DiskRequest(80 << 20)
	_, _, err := cp.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond)))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("admit on a gated 3-host pool: %v, want rejection", err)
	}
	if got := counterValue(t, reg, "stopwatch_cp_admissions_gated_total", ""); got != 1 {
		t.Fatalf("gated admissions counter = %d, want 1", got)
	}
	// The gate is transient: once the backlog drains past the budget the
	// same admission succeeds.
	cp.Cluster().Start()
	if err := cp.Cluster().Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cp.Admit("g0", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatalf("admit after backlog drained: %v", err)
	}
	if cp.Pool().GatedCount() != 0 {
		t.Fatalf("gates not lifted after drain: %d", cp.Pool().GatedCount())
	}
}

// TestLoadAwareDefaultBudget: 0 selects half the stall deadline when a
// detector is armed, else a quarter of the drain window.
func TestLoadAwareDefaultBudget(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 4)
	if got := cp.EnableLoadAwareAdmission(LoadAwareConfig{}); got != cp.cfg.DrainWindow/4 {
		t.Fatalf("no-detector default budget = %v, want DrainWindow/4 = %v", got, cp.cfg.DrainWindow/4)
	}
	cp2 := newTestPlane(t, 9, 3, 4)
	if err := cp2.EnableStallDetector(40 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := cp2.EnableLoadAwareAdmission(LoadAwareConfig{}); got != 20*sim.Millisecond {
		t.Fatalf("detector default budget = %v, want deadline/2 = 20ms", got)
	}
}

// TestRehomeIsLoadAware: a replacement's rehome step also consults the
// telemetry — with every candidate equally replica-loaded, the saturated
// machine is not chosen as the new home.
func TestRehomeIsLoadAware(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 2)
	cp.EnableLoadAwareAdmission(LoadAwareConfig{FalseAlarmBudget: 10 * sim.Millisecond})
	for i := 0; i < 2; i++ {
		if _, _, err := cp.Admit(fmt.Sprintf("g%d", i), beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
			t.Fatal(err)
		}
	}
	cp.Cluster().Start()
	if err := cp.Cluster().Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	g, _ := cp.Cluster().Guest("g0")
	dead := g.Replica(0).Host()
	// Saturate one machine outside g0's current triangle so it would
	// otherwise be a fresh-host candidate.
	tri, _ := cp.Pool().Triangle("g0")
	victim := -1
	for m := 0; m < 9; m++ {
		if !tri.Contains(m) {
			victim = m
			break
		}
	}
	cp.Cluster().Host(victim).DiskRequest(800 << 20) // ~10s backlog
	g.Replica(0).Runtime().Stop()
	if err := cp.ReplaceReplica("g0", dead, nil); err != nil {
		t.Fatal(err)
	}
	if err := cp.Cluster().Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	nt, _ := cp.Pool().Triangle("g0")
	if nt.Contains(victim) {
		t.Fatalf("rehome landed on the saturated machine %d: %v", victim, nt)
	}
	st := cp.Stats()
	if st.Replacements != 1 {
		t.Fatalf("replacement did not complete: %+v", st)
	}
}
