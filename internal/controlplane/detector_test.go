package controlplane

import (
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// lightFactory is a sustainable burst profile for detector tests: the
// default beacon's 64KB read every 4ms saturates a shared disk once two
// replicas co-reside, a regime where Dom0 delay grows without bound and no
// deadline separates slow from dead.
func lightFactory(period vtime.Virtual) func() guest.App {
	return func() guest.App {
		b := apps.NewBeaconApp(period)
		b.Compute = 500_000
		b.DiskBytes = 0
		b.Sink = "sink"
		return b
	}
}

// TestStallDetectorDrivesFailEvacuatePipeline is the automatic-detector
// acceptance test: a machine's VMM dies at the data plane with no scripted
// FailHost anywhere; the stall detector must notice the silent proposals,
// submit FailOp{Detected}, and chain the evacuation — leaving the machine
// empty and every resident re-homed and in lockstep, all on the op log.
func TestStallDetectorDrivesFailEvacuatePipeline(t *testing.T) {
	for _, seed := range []uint64{111, 113} {
		cp := newTestPlane(t, 9, 3, seed)
		c := cp.Cluster()
		if err := cp.EnableStallDetector(0); err != nil {
			t.Fatal(err)
		}
		ids := []string{"ga", "gb", "gc", "gd", "ge"}
		for _, id := range ids {
			if oc := cp.Apply(AdmitOp{GuestID: id, Factory: lightFactory(vtime.Virtual(4 * sim.Millisecond))}); oc.Err != nil {
				t.Fatal(oc.Err)
			}
		}
		c.Start()
		machine := busiestMachine(cp)
		affected := cp.Pool().Residents(machine)
		if len(affected) < 2 {
			t.Fatalf("seed %d: machine %d hosts only %v — scenario too weak", seed, machine, affected)
		}
		startPings(t, c, ids, 10*sim.Millisecond, 15*sim.Second)
		c.Loop().At(300*sim.Millisecond, "kill", func() {
			// Data-plane kill only: the VMM dies; nobody tells the control
			// plane.
			if err := c.FailMachine(machine); err != nil {
				t.Error(err)
			}
		})
		if err := c.Run(20 * sim.Second); err != nil {
			t.Fatal(err)
		}
		st := cp.Stats()
		if st.HostFailures != 1 || st.CrashEvacuations != len(affected) || st.CrashEvacuationFailures != 0 {
			t.Fatalf("seed %d: stats %+v, want %d detector-driven evacuations", seed, st, len(affected))
		}
		// The pipeline is on the log: exactly one detected FailOp (no false
		// alarms on live machines), one chained EvacuateOp, both completed.
		fails, evacs := 0, 0
		for _, oc := range cp.Log() {
			switch op := oc.Op.(type) {
			case FailOp:
				if !op.Detected {
					t.Fatalf("seed %d: scripted FailOp on the log: %s", seed, oc)
				}
				if op.Machine != machine || !oc.Done() || oc.Err != nil {
					t.Fatalf("seed %d: detected fail outcome: %s", seed, oc)
				}
				fails++
			case EvacuateOp:
				if parent, ok := cp.Outcome(oc.Seq); !ok || parent != oc {
					t.Fatalf("seed %d: log lookup broken", seed)
				}
				if !oc.Done() || oc.Err != nil {
					t.Fatalf("seed %d: evacuation outcome: %s", seed, oc)
				}
				evacs++
			}
		}
		if fails != 1 || evacs != 1 {
			t.Fatalf("seed %d: %d detected fails, %d evacuations on the log", seed, fails, evacs)
		}
		if !cp.Failed(machine) {
			t.Fatalf("seed %d: machine %d not marked failed", seed, machine)
		}
		if got := cp.Pool().Residents(machine); len(got) != 0 {
			t.Fatalf("seed %d: dead machine still hosts %v", seed, got)
		}
		for _, id := range affected {
			g, _ := c.Guest(id)
			if g.Replaced == 0 {
				t.Fatalf("seed %d: guest %s was never re-homed", seed, id)
			}
			if err := g.CheckLockstepPrefix(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if err := cp.Verify(); err != nil {
			t.Fatal(err)
		}
		// Repair re-arms detection: an empty machine stalls nobody, so give
		// the repaired machine a fresh resident (least-loaded placement
		// lands its triangle there), then kill it again — the second death
		// must be detected too.
		if oc := cp.Apply(RepairOp{Machine: machine}); oc.Err != nil {
			t.Fatal(oc.Err)
		}
		fresh := cp.Apply(AdmitOp{GuestID: "gz", Factory: lightFactory(vtime.Virtual(4 * sim.Millisecond))})
		if fresh.Err != nil {
			t.Fatal(fresh.Err)
		}
		if !fresh.Triangle.Contains(machine) {
			t.Fatalf("seed %d: fresh guest placed on %v, not the empty machine %d", seed, fresh.Triangle, machine)
		}
		now := c.Loop().Now()
		c.Loop().At(now+300*sim.Millisecond, "rekill", func() {
			if err := c.FailMachine(machine); err != nil {
				t.Error(err)
			}
		})
		startPings(t, c, append(ids, "gz"), 10*sim.Millisecond, now+4*sim.Second)
		if err := c.Run(now + 5*sim.Second); err != nil {
			t.Fatal(err)
		}
		if cp.Stats().HostFailures != 2 {
			t.Fatalf("seed %d: repaired machine's second death not detected: %+v", seed, cp.Stats())
		}
	}
}

// TestStallDetectorFalseAlarmIsRejectedAndRecoverable: suspecting a live
// machine must reject the FailOp (on the log, never executed) and leave
// the machine detectable for a later genuine crash.
func TestStallDetectorFalseAlarmIsRejectedAndRecoverable(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 117)
	c := cp.Cluster()
	if err := cp.EnableStallDetector(0); err != nil {
		t.Fatal(err)
	}
	if oc := cp.Apply(AdmitOp{GuestID: "ga", Factory: lightFactory(vtime.Virtual(4 * sim.Millisecond))}); oc.Err != nil {
		t.Fatal(oc.Err)
	}
	tri, _ := cp.Pool().Triangle("ga")
	c.Start()
	// A spurious suspicion (as a pathologically slow Dom0 would produce).
	cp.suspectMachine(tri[0])
	log := cp.Log()
	last := log[len(log)-1]
	op, ok := last.Op.(FailOp)
	if !ok || !op.Detected || !last.Rejected() {
		t.Fatalf("false alarm not on the log as a rejected detected FailOp: %s", last)
	}
	if cp.Failed(tri[0]) || c.Host(tri[0]).Failed() {
		t.Fatal("false alarm executed the kill")
	}
	if cp.suspected[tri[0]] {
		t.Fatal("false alarm left the machine permanently unsuspectable")
	}
	// The genuine crash is still detected afterwards.
	startPings(t, c, []string{"ga"}, 10*sim.Millisecond, 5*sim.Second)
	c.Loop().At(300*sim.Millisecond, "kill", func() {
		if err := c.FailMachine(tri[0]); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(8 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if cp.Stats().HostFailures != 1 {
		t.Fatalf("genuine crash after false alarm not detected: %+v", cp.Stats())
	}
}

// TestEnableStallDetectorValidation pins the argument checks.
func TestEnableStallDetectorValidation(t *testing.T) {
	cp := newTestPlane(t, 7, 3, 119)
	if err := cp.EnableStallDetector(-1); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if err := cp.Cluster().SetStallDetector(0, func(int) {}); err == nil {
		t.Fatal("zero deadline accepted by the cluster")
	}
	if err := cp.Cluster().SetStallDetector(sim.Millisecond, nil); err == nil {
		t.Fatal("nil suspect callback accepted")
	}
	if err := cp.EnableStallDetector(0); err != nil {
		t.Fatal(err)
	}
}
