package controlplane

// Planned migration: moving a live replica between healthy hosts. A
// MigrateOp runs the same freeze + replacement barrier a host drain uses —
// the replica on the source host is frozen while its VMM keeps proposing
// (the paper's footnote-4 regime, so the 3-proposal median never stalls),
// the guest's ingress pauses and quiesces, the pool moves the replica onto
// the pinned destination (RehomeTo), the data plane reconstructs it there
// from the determinism journal, and the ingress resumes.
//
// EnablePlannedMigration additionally turns placement infeasibility into
// plans: an Admit or replacement Rehome the pool cannot satisfy first asks
// the one-move planner (placement.PlanAdmitMigration / PlanRehomeMigration)
// for a single migration that would unblock it, runs that move as a child
// MigrateOp (logged with the blocked op as parent), and retries. Plans never
// nest — a planned migration's own placement is pinned — and the planner
// never moves a guest another lifecycle op holds. Off by default, so
// existing runs place, and log, exactly as before.

import (
	"errors"
	"fmt"

	"stopwatch/internal/placement"
)

// EnablePlannedMigration turns the one-move migration planner on.
func (cp *ControlPlane) EnablePlannedMigration() { cp.planned = true }

// PlannedMigration reports whether the migration planner is on.
func (cp *ControlPlane) PlannedMigration() bool { return cp.planned }

// migrationAvoid excludes guests another lifecycle op holds — the planner
// must not move a guest whose barrier is mid-flight.
func (cp *ControlPlane) migrationAvoid(id string) bool {
	_, busy := cp.inflight[id]
	return busy
}

// applyMigrate moves guest id's replica From → To through the freeze +
// replacement barrier. On a failure after the freeze the replica stays
// frozen and the guest keeps serving degraded on its live pair — the same
// posture as a drain move whose re-home was infeasible.
func (cp *ControlPlane) applyMigrate(op MigrateOp, oc *Outcome) {
	id := op.GuestID
	if verb, busy := cp.inflight[id]; busy {
		cp.finish(oc, fmt.Errorf("%w: guest %q has a %s in flight", ErrControlPlane, id, verb))
		return
	}
	tri, ok := cp.pool.Triangle(id)
	if !ok {
		cp.finish(oc, fmt.Errorf("%w: guest %q not resident", ErrControlPlane, id))
		return
	}
	if !tri.Contains(op.From) {
		cp.finish(oc, fmt.Errorf("%w: guest %q has no replica on host %d", ErrControlPlane, id, op.From))
		return
	}
	if op.To < 0 || op.To >= cp.c.Hosts() {
		cp.finish(oc, fmt.Errorf("%w: host %d out of range", ErrControlPlane, op.To))
		return
	}
	if cp.Failed(op.From) || cp.c.Host(op.From).Failed() {
		cp.finish(oc, fmt.Errorf("%w: host %d is crashed — replace its replicas, don't migrate them", ErrControlPlane, op.From))
		return
	}
	if cp.Failed(op.To) || cp.c.Host(op.To).Failed() {
		cp.finish(oc, fmt.Errorf("%w: host %d is failed", ErrControlPlane, op.To))
		return
	}
	oc.setGuest(id)
	cp.inflight[id] = "migration"
	// Freeze the moving replica (its VMM keeps proposing): the survivors
	// reach or pass its instruction count, so the replacement journal-replay
	// lands on a consistent cut.
	if g, ok := cp.c.Guest(id); ok {
		if slot, on := g.SlotOnHost(op.From); on {
			g.Replica(slot).Runtime().Stop()
		}
	}
	cp.c.Ingress().Pause(id)
	cp.phase(oc, PhasePause)
	done := func(err error) {
		delete(cp.inflight, id)
		if err != nil {
			cp.c.Ingress().Resume(id)
		}
		cp.finish(oc, err)
	}
	attempts := 0
	var barrier func()
	barrier = func() {
		if !cp.c.GuestQuiescent(id) {
			attempts++
			if attempts >= cp.cfg.MaxDrainAttempts {
				done(fmt.Errorf("%w: guest %q never quiesced after %d drain windows", ErrControlPlane, id, attempts))
				return
			}
			oc.QuiesceRetries++
			cp.c.Loop().After(cp.cfg.DrainWindow, "cp:migrate-drain", barrier)
			return
		}
		cp.phase(oc, PhaseQuiesce)
		newTri, err := cp.pool.RehomeTo(id, op.From, op.To)
		if err != nil {
			done(err)
			return
		}
		cp.phase(oc, PhaseRehome)
		if err := cp.c.ReplaceReplica(id, op.From, op.To); err != nil {
			// Roll the pool back to the original triangle — same single-
			// instant argument as the replacement barrier's rollback.
			if _, rbErr := cp.pool.Release(id); rbErr != nil {
				err = errors.Join(err, fmt.Errorf("rollback release %q: %w", id, rbErr))
			} else if rbErr := cp.pool.AdmitTriangle(id, tri); rbErr != nil {
				err = errors.Join(err, fmt.Errorf("rollback restore %q on %v: %w", id, tri, rbErr))
			}
			done(err)
			return
		}
		oc.Triangle = newTri
		cp.phase(oc, PhaseReplace)
		cp.c.Ingress().Resume(id)
		cp.phase(oc, PhaseResume)
		done(nil)
	}
	cp.c.Loop().After(cp.cfg.DrainWindow, "cp:migrate-drain", barrier)
}

// admitAfterMigration runs a blocked admission's one-move plan as a child
// MigrateOp, then retries the placement. The admission — normally
// synchronous — completes asynchronously on this path; observe it via
// AdmitOp.Done, the outcome, or the event stream.
func (cp *ControlPlane) admitAfterMigration(op AdmitOp, oc *Outcome, plan placement.MigrationPlan) {
	id := op.GuestID
	cp.inflight[id] = "admission"
	mig := MigrateOp{GuestID: plan.GuestID, From: plan.From, To: plan.To}
	mig.Done = func(moc *Outcome) {
		delete(cp.inflight, id)
		if moc.Err != nil {
			cp.finish(oc, fmt.Errorf("%w: admit %q: planned migration failed: %v", ErrRejected, id, moc.Err))
			return
		}
		// The move ran in simulated time; the packing may have shifted under
		// other ops, so the retry re-decides from the live pool.
		cp.refreshHostTelemetry()
		tri, err := cp.pool.Admit(id)
		if err != nil {
			if errors.Is(err, placement.ErrNoFeasibleHost) {
				cp.finish(oc, fmt.Errorf("%w: %v", ErrRejected, err))
				return
			}
			cp.finish(oc, err)
			return
		}
		cp.phase(oc, PhasePlace)
		g, err := cp.c.Deploy(id, tri[:], op.Factory)
		if err != nil {
			_, _ = cp.pool.Release(id)
			cp.finish(oc, err)
			return
		}
		oc.Guest, oc.Triangle = g, tri
		cp.phase(oc, PhaseDeploy)
		cp.finish(oc, nil)
	}
	cp.apply(mig, oc.Seq)
}

// Migrate is the verb wrapper over Apply(MigrateOp): it initiates the
// asynchronous planned migration of guest id's replica from host `from` to
// host `to`. A validation rejection is returned synchronously; otherwise
// onDone (optional) fires with the barrier's outcome.
func (cp *ControlPlane) Migrate(id string, from, to int, onDone func(error)) error {
	op := MigrateOp{GuestID: id, From: from, To: to}
	op.Done = func(oc *Outcome) {
		if oc.Rejected() {
			return // reported synchronously below
		}
		if onDone != nil {
			onDone(oc.Err)
		}
	}
	if oc := cp.Apply(op); oc.Rejected() {
		return oc.Err
	}
	return nil
}
