package controlplane

import (
	"errors"
	"testing"

	"stopwatch/internal/core"
	"stopwatch/internal/netsim"
	"stopwatch/internal/placement"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// startPings wires a probe client into the fabric and sends a ping to every
// listed guest each interval until `until` — live inbound traffic keeps the
// proposal/median path busy, so a crashed machine leaves genuinely wedged
// delivery proposals for the reconfiguration to unwedge.
func startPings(t *testing.T, c *core.Cluster, ids []string, every, until sim.Time) {
	t.Helper()
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "probe", Fn: func(p *netsim.Packet) {}}); err != nil {
		t.Fatal(err)
	}
	var tick func()
	tick = func() {
		if c.Loop().Now() >= until {
			return
		}
		for _, id := range ids {
			c.Net().Send(&netsim.Packet{Src: "probe", Dst: core.ServiceAddr(id), Size: 128, Kind: "ping"})
		}
		c.Loop().After(every, "ping", tick)
	}
	c.Loop().At(100*sim.Millisecond, "ping", tick)
}

// TestEvacuateFailedHostRecoversEveryResident is the crashed-machine
// property test, mirroring the drain property test: kill a machine hosting
// >= 2 guests mid-traffic, reconfigure and evacuate, and require that every
// resident is re-placed, edges are conserved, lockstep digests match, and
// no barrier ever abandons via MaxDrainAttempts (the quiescence leak).
func TestEvacuateFailedHostRecoversEveryResident(t *testing.T) {
	for _, seed := range []uint64{51, 53, 57} {
		cp := newTestPlane(t, 9, 3, seed)
		c := cp.Cluster()
		ids := []string{"ga", "gb", "gc", "gd", "ge"}
		for _, id := range ids {
			if _, _, err := cp.Admit(id, beaconFactory(vtime.Virtual(4*sim.Millisecond))); err != nil {
				t.Fatal(err)
			}
		}
		c.Start()
		// The machine hosting the most guests: the interesting failure.
		machine := 0
		for m := 1; m < 9; m++ {
			if len(cp.Pool().Residents(m)) > len(cp.Pool().Residents(machine)) {
				machine = m
			}
		}
		affected := cp.Pool().Residents(machine)
		if len(affected) < 2 {
			t.Fatalf("seed %d: machine %d hosts only %v — scenario too weak", seed, machine, affected)
		}
		startPings(t, c, ids, 10*sim.Millisecond, 15*sim.Second)
		var evacErr error
		evacDone := false
		c.Loop().At(300*sim.Millisecond, "crash", func() {
			if err := cp.FailHost(machine); err != nil {
				t.Errorf("FailHost: %v", err)
			}
			if !cp.Failed(machine) || !cp.Pool().Drained(machine) {
				t.Error("failed machine not marked failed+drained")
			}
			if err := cp.Verify(); err != nil {
				t.Errorf("after FailHost: %v", err)
			}
			if err := cp.EvacuateFailedHost(machine, func(err error) {
				evacErr, evacDone = err, true
			}); err != nil {
				t.Errorf("EvacuateFailedHost: %v", err)
			}
		})
		if err := c.Run(20 * sim.Second); err != nil {
			t.Fatal(err)
		}
		if !evacDone {
			t.Fatalf("seed %d: evacuation never completed", seed)
		}
		if evacErr != nil {
			t.Fatalf("seed %d: evacuation errors: %v", seed, evacErr)
		}
		// Every resident is re-placed off the dead machine.
		if l := cp.Pool().Load(machine); l != 0 {
			t.Fatalf("seed %d: dead machine still has load %d", seed, l)
		}
		if got := cp.Pool().Residents(machine); len(got) != 0 {
			t.Fatalf("seed %d: dead machine still hosts %v", seed, got)
		}
		for _, id := range ids {
			g, ok := c.Guest(id)
			if !ok {
				t.Fatalf("seed %d: guest %s missing", seed, id)
			}
			for _, h := range g.HostIndexes() {
				if h == machine {
					t.Fatalf("seed %d: guest %s still deployed on dead machine %d", seed, id, machine)
				}
			}
		}
		// Edge conservation and pool/cluster agreement.
		if err := cp.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cp.Pool().EdgesUsed() != 3*cp.Pool().Guests() {
			t.Fatalf("seed %d: %d edges for %d guests", seed, cp.Pool().EdgesUsed(), cp.Pool().Guests())
		}
		// Every affected guest is fully repaired and back in lockstep, and
		// its ingress replication group has three live members again, none
		// of them the dead machine's Dom0.
		deadDom0 := netsim.Addr("dom0:" + c.Host(machine).Name())
		for _, id := range affected {
			g, _ := c.Guest(id)
			if err := g.CheckLockstepPrefix(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if g.Replaced == 0 {
				t.Fatalf("seed %d: guest %s was never re-homed", seed, id)
			}
			group, err := c.Ingress().Group(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(group) != 3 {
				t.Fatalf("seed %d: guest %s replication group %v after repair", seed, id, group)
			}
			for _, a := range group {
				if a == deadDom0 {
					t.Fatalf("seed %d: guest %s still replicates to dead %s", seed, id, deadDom0)
				}
			}
		}
		// No barrier abandoned: the quiescence leak would show up here as
		// MaxDrainAttempts failures.
		st := cp.Stats()
		if st.HostFailures != 1 || st.CrashEvacuations != len(affected) ||
			st.CrashEvacuationFailures != 0 || st.ReplacementFailures != 0 {
			t.Fatalf("seed %d: stats %+v, want %d clean crash evacuations", seed, st, len(affected))
		}
		// Repair returns the machine: a new tenant can land on it.
		if err := cp.UndrainHost(machine); err == nil {
			t.Fatalf("seed %d: UndrainHost accepted a crashed machine", seed)
		}
		if err := cp.RepairHost(machine); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cp.Admit("fresh", beaconFactory(vtime.Virtual(4*sim.Millisecond))); err != nil {
			t.Fatalf("seed %d: admit after repair: %v", seed, err)
		}
		if err := cp.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFailHostSaturatedDegradesTwoOfThree: at utilization 1.0 a crashed
// replica has nowhere to go — the evacuation must fail typed with
// ErrNoFeasibleHost while the guest keeps serving on its live pair: new
// packets still resolve (the degraded live-set median), and the live pair
// stays in lockstep with the dead slot excluded.
func TestFailHostSaturatedDegradesTwoOfThree(t *testing.T) {
	cp := newTestPlane(t, 6, 1, 61)
	c := cp.Cluster()
	for _, id := range []string{"g0", "g1"} {
		if _, _, err := cp.Admit(id, beaconFactory(vtime.Virtual(4*sim.Millisecond))); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	startPings(t, c, []string{"g0", "g1"}, 10*sim.Millisecond, 9*sim.Second)
	g, _ := c.Guest("g0")
	tri, _ := cp.Pool().Triangle("g0")
	machine := tri[0]
	deadSlot, _ := g.SlotOnHost(machine)
	var resolvedAtCrash uint64
	var evacErr error
	evacDone := false
	c.Loop().At(300*sim.Millisecond, "crash", func() {
		if err := cp.FailHost(machine); err != nil {
			t.Errorf("FailHost: %v", err)
		}
		for _, r := range g.Replicas() {
			if r.Slot() != deadSlot {
				resolvedAtCrash = r.NetDev().Resolved()
				break
			}
		}
		if err := cp.EvacuateFailedHost(machine, func(err error) { evacErr, evacDone = err, true }); err != nil {
			t.Errorf("EvacuateFailedHost: %v", err)
		}
	})
	if err := c.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !evacDone {
		t.Fatal("evacuation never completed")
	}
	if !errors.Is(evacErr, placement.ErrNoFeasibleHost) {
		t.Fatalf("want ErrNoFeasibleHost, got %v", evacErr)
	}
	if st := cp.Stats(); st.CrashEvacuationFailures != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The guest still holds its (degraded) triangle and serves on the pair;
	// the ingress replicates to the live pair only.
	if curTri, ok := cp.Pool().Triangle("g0"); !ok || curTri != tri {
		t.Fatalf("degraded guest lost its triangle: %v", curTri)
	}
	group, err := c.Ingress().Group("g0")
	if err != nil {
		t.Fatal(err)
	}
	deadDom0 := netsim.Addr("dom0:" + c.Host(machine).Name())
	if len(group) != 2 {
		t.Fatalf("degraded replication group %v, want the live pair", group)
	}
	for _, a := range group {
		if a == deadDom0 {
			t.Fatalf("degraded group still replicates to dead %s", deadDom0)
		}
	}
	if err := g.CheckLockstepPrefixExcluding(deadSlot); err != nil {
		t.Fatal(err)
	}
	// The inbound path is unwedged: the live pair kept resolving medians
	// after the crash (before the live-group view this stalled forever).
	for _, r := range g.Replicas() {
		if r.Slot() == deadSlot {
			continue
		}
		if r.NetDev().Resolved() <= resolvedAtCrash {
			t.Fatalf("slot %d stopped resolving after the crash (%d)", r.Slot(), r.NetDev().Resolved())
		}
		if r.NetDev().Pending() > 0 {
			t.Fatalf("slot %d wedged with %d pending proposals", r.Slot(), r.NetDev().Pending())
		}
	}
	// Repair must refuse while the degraded guest still sits on the dead
	// machine: reviving it would resurrect the zombie replica (permanently
	// closed proposal sender) into quiescence checks and live views.
	if err := cp.RepairHost(machine); err == nil {
		t.Fatal("RepairHost accepted a machine with un-evacuated residents")
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairHostPreservesMaintenanceDrain: a machine the operator drained
// before its VMM crashed must stay drained across the crash and repair —
// repair restores the machine, not the operator's intent.
func TestRepairHostPreservesMaintenanceDrain(t *testing.T) {
	cp := newTestPlane(t, 7, 3, 67)
	drained := false
	if err := cp.DrainHost(2, func(err error) {
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		drained = true
	}); err != nil {
		t.Fatal(err)
	}
	if !drained { // no residents: the drain completes synchronously
		t.Fatal("drain incomplete")
	}
	if err := cp.FailHost(2); err != nil {
		t.Fatal(err)
	}
	if err := cp.RepairHost(2); err != nil {
		t.Fatal(err)
	}
	if !cp.Pool().Drained(2) {
		t.Fatal("repair discarded the pre-crash maintenance drain")
	}
	if err := cp.UndrainHost(2); err != nil {
		t.Fatal(err)
	}
	if cp.Pool().Drained(2) {
		t.Fatal("undrain after repair failed")
	}
}

// TestFailHostValidation covers the failure-domain state machine's edges.
func TestFailHostValidation(t *testing.T) {
	cp := newTestPlane(t, 7, 3, 63)
	if err := cp.FailHost(7); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	if err := cp.EvacuateFailedHost(0, nil); err == nil {
		t.Fatal("evacuating a healthy machine accepted")
	}
	if err := cp.RepairHost(0); err == nil {
		t.Fatal("repairing a healthy machine accepted")
	}
	if err := cp.FailHost(0); err != nil {
		t.Fatal(err)
	}
	if err := cp.FailHost(0); err == nil {
		t.Fatal("double failure accepted")
	}
	if err := cp.DrainHost(0, nil); err == nil {
		t.Fatal("draining a crashed machine accepted")
	}
	if !cp.Failed(0) || cp.Failed(1) {
		t.Fatal("Failed() bookkeeping wrong")
	}
	if err := cp.RepairHost(0); err != nil {
		t.Fatal(err)
	}
	if cp.Failed(0) {
		t.Fatal("repair left the machine failed")
	}
	// A reconfiguration closure from the repaired (ended) first failure
	// epoch must not open a later epoch's evacuation gate early. Fail the
	// machine again 2/5 of a DrainWindow later: the first epoch's closure
	// fires at +1 window (stale — must be ignored), the second epoch's at
	// +7/5 windows; a probe between the two must find the gate shut.
	loop := cp.Cluster().Loop()
	w := cp.cfg.DrainWindow
	base := loop.Now()
	loop.At(base+2*w/5, "refail", func() {
		if err := cp.FailHost(0); err != nil {
			t.Error(err)
		}
	})
	loop.At(base+6*w/5, "probe", func() {
		if f := cp.failures[0]; f == nil || f.reconfigured {
			t.Error("stale failure-epoch closure opened the evacuation gate early")
		}
	})
	if err := cp.Cluster().Run(base + 10*w); err != nil {
		t.Fatal(err)
	}
	if f := cp.failures[0]; f == nil || !f.reconfigured {
		t.Fatal("current epoch's reconfiguration never fired")
	}
	if err := cp.RepairHost(0); err != nil {
		t.Fatal(err)
	}
	// A repaired machine drains normally again.
	if err := cp.DrainHost(0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSingleSurvivorEgressKeepsForwarding: a guest reduced to ONE live
// replica (two machines of its triangle crash) keeps serving externally —
// the egress's per-guest live view forwards its output at the sole copy
// instead of waiting forever for a second emission (the ROADMAP's
// single-survivor open item).
func TestSingleSurvivorEgressKeepsForwarding(t *testing.T) {
	cp := newTestPlane(t, 6, 1, 71)
	c := cp.Cluster()
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "sink", Fn: func(*netsim.Packet) {}}); err != nil {
		t.Fatal(err)
	}
	// Saturate the pool so evacuations are infeasible and the guest stays
	// degraded in place.
	for _, id := range []string{"g0", "g1"} {
		if oc := cp.Apply(AdmitOp{GuestID: id, Factory: beaconFactory(vtime.Virtual(4 * sim.Millisecond))}); oc.Err != nil {
			t.Fatal(oc.Err)
		}
	}
	c.Start()
	g, _ := c.Guest("g0")
	tri, _ := cp.Pool().Triangle("g0")
	var atOneDead, atTwoDead uint64
	c.Loop().At(300*sim.Millisecond, "crash-1", func() {
		atOneDead = c.Egress().Forwarded()
		if oc := cp.Apply(FailOp{Machine: tri[0]}); oc.Rejected() {
			t.Errorf("fail 1: %v", oc.Err)
		}
	})
	c.Loop().At(2*sim.Second, "crash-2", func() {
		atTwoDead = c.Egress().Forwarded()
		if atTwoDead <= atOneDead {
			t.Error("degraded pair stopped forwarding")
		}
		if oc := cp.Apply(FailOp{Machine: tri[1]}); oc.Rejected() {
			t.Errorf("fail 2: %v", oc.Err)
		}
	})
	if err := c.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// The sole survivor kept executing (its beacon needs no inbound) and
	// its outputs reached the sink at the single live copy.
	if got := c.Egress().Forwarded(); got <= atTwoDead {
		t.Fatalf("single survivor's output wedged: forwarded %d at two-dead, %d at end", atTwoDead, got)
	}
	live := -1
	for _, r := range g.Replicas() {
		if !r.Runtime().Stopped() {
			live = r.Slot()
		}
	}
	if live < 0 {
		t.Fatal("no live replica left")
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
}
