package controlplane

import (
	"errors"
	"fmt"
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/placement"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

func newTestPlane(t *testing.T, hosts, capacity int, seed uint64) *ControlPlane {
	t.Helper()
	cfg := core.DefaultClusterConfig()
	cfg.Seed = seed
	cfg.Hosts = hosts
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := New(c, DefaultConfig(capacity))
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func beaconFactory(period vtime.Virtual) func() guest.App {
	return func() guest.App {
		b := apps.NewBeaconApp(period)
		b.Sink = "sink"
		return b
	}
}

func TestAdmitEvictReadmitPreservesInvariants(t *testing.T) {
	cp := newTestPlane(t, 9, 2, 3)
	// Admit until the pool rejects.
	var resident []string
	for i := 0; ; i++ {
		id := fmt.Sprintf("g%d", i)
		_, _, err := cp.Admit(id, beaconFactory(vtime.Virtual(5*sim.Millisecond)))
		if errors.Is(err, ErrRejected) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		resident = append(resident, id)
		if err := cp.Verify(); err != nil {
			t.Fatalf("after admitting %s: %v", id, err)
		}
	}
	if len(resident) < 4 {
		t.Fatalf("only %d guests fit on 9 hosts at capacity 2", len(resident))
	}
	if cp.Utilization() <= 0 {
		t.Fatal("utilization not tracked")
	}
	// Evict half, readmit: the freed edges must be reusable.
	evicted := 0
	for i := 0; i < len(resident); i += 2 {
		if err := cp.Evict(resident[i]); err != nil {
			t.Fatal(err)
		}
		evicted++
		if err := cp.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	readmitted := 0
	for i := 0; i < evicted; i++ {
		id := fmt.Sprintf("re%d", i)
		if _, _, err := cp.Admit(id, beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
			if errors.Is(err, ErrRejected) {
				break
			}
			t.Fatal(err)
		}
		readmitted++
		if err := cp.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	if readmitted == 0 {
		t.Fatal("no guest could be readmitted into freed capacity")
	}
	st := cp.Stats()
	if st.Admitted != len(resident)+readmitted || st.Rejected == 0 || st.Evicted != evicted {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOnlineAdmissionBootsIntoRunningCluster(t *testing.T) {
	cp := newTestPlane(t, 9, 3, 5)
	c := cp.Cluster()
	if _, _, err := cp.Admit("early", beaconFactory(vtime.Virtual(4*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	c.Start()
	// Admitted mid-run: must boot immediately and reach lockstep.
	c.Loop().At(200*sim.Millisecond, "admit", func() {
		if _, _, err := cp.Admit("late", beaconFactory(vtime.Virtual(4*sim.Millisecond))); err != nil {
			t.Fatal(err)
		}
	})
	// Evicted mid-run: outputs must stop and the slot must free.
	c.Loop().At(600*sim.Millisecond, "evict", func() {
		g, _ := c.Guest("early")
		if err := g.CheckLockstepPrefix(); err != nil {
			t.Errorf("pre-evict lockstep: %v", err)
		}
		if err := cp.Evict("early"); err != nil {
			t.Fatal(err)
		}
	})
	if err := c.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	late, ok := c.Guest("late")
	if !ok {
		t.Fatal("late guest missing")
	}
	if n := late.Replica(0).Runtime().VM().OutputCount(); n == 0 {
		t.Fatal("late-admitted guest never ran")
	}
	if err := late.CheckLockstepPrefix(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Guest("early"); ok {
		t.Fatal("evicted guest still deployed")
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceReplicaProtocol(t *testing.T) {
	cp := newTestPlane(t, 7, 3, 7)
	c := cp.Cluster()
	g, tri, err := cp.Admit("web", beaconFactory(vtime.Virtual(3*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	deadHost := tri[1]
	deadRT, onHost := g.SlotOnHost(deadHost)
	if !onHost {
		t.Fatal("dead host not in guest")
	}
	var result error
	doneAt := sim.Time(-1)
	c.Loop().At(300*sim.Millisecond, "fail", func() {
		g.Replica(deadRT).Runtime().Stop() // crash the replica
		if err := cp.ReplaceReplica("web", deadHost, func(err error) {
			result = err
			doneAt = c.Loop().Now()
		}); err != nil {
			t.Fatal(err)
		}
		// Lifecycle exclusivity while the replacement is in flight.
		if err := cp.Evict("web"); err == nil {
			t.Error("evict during replacement should fail")
		}
	})
	if err := c.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if doneAt < 0 {
		t.Fatal("replacement never completed")
	}
	if result != nil {
		t.Fatalf("replacement failed: %v", result)
	}
	if cp.Stats().Replacements != 1 {
		t.Fatalf("stats: %+v", cp.Stats())
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
	newTri, _ := cp.Pool().Triangle("web")
	if newTri == tri {
		t.Fatal("pool triangle unchanged by replacement")
	}
	for _, h := range g.HostIndexes() {
		if h == deadHost {
			t.Fatalf("dead host %d still in %v", deadHost, g.HostIndexes())
		}
	}
	if err := g.CheckLockstepPrefix(); err != nil {
		t.Fatal(err)
	}
	// The guest survives eviction after replacement (wiring fully sane).
	if err := cp.Evict("web"); err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceReplicaValidation(t *testing.T) {
	cp := newTestPlane(t, 7, 3, 9)
	if err := cp.ReplaceReplica("ghost", 0, nil); err == nil {
		t.Fatal("unknown guest accepted")
	}
	if _, _, err := cp.Admit("web", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	tri, _ := cp.Pool().Triangle("web")
	off := 0
	for h := 0; h < 7; h++ {
		if h != tri[0] && h != tri[1] && h != tri[2] {
			off = h
			break
		}
	}
	if err := cp.ReplaceReplica("web", off, nil); err == nil {
		t.Fatal("replica on non-member host accepted")
	}
}

// TestReplaceReplicaRollbackRestoresPool drives the rollback path: the
// machine the pool will pick as the replacement host is killed at the data
// plane behind the control plane's back (core.FailMachine, no FailOp — the
// pool never learns), so the switchover is guaranteed to fail after the
// pool has already re-homed, and the control plane must restore the
// original triangle, report the failure (with any rollback error joined in,
// never swallowed), and leave pool and cluster coherent under Verify.
func TestReplaceReplicaRollbackRestoresPool(t *testing.T) {
	cfg := core.DefaultClusterConfig()
	cfg.Seed = 67
	cfg.Hosts = 7
	cfg.VMM.EpochInstr = 2 * cfg.VMM.ExitEvery
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := New(c, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	g, tri, err := cp.Admit("web", beaconFactory(vtime.Virtual(4*sim.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var result error
	done := false
	c.Loop().At(300*sim.Millisecond, "fail", func() {
		// Rehome scans least-loaded-first with the index as tie-break, so it
		// will pick the lowest-index non-member — kill that machine first.
		off := 0
		for h := 0; h < 7; h++ {
			if !tri.Contains(h) {
				off = h
				break
			}
		}
		if err := c.FailMachine(off); err != nil {
			t.Error(err)
			return
		}
		slot, _ := g.SlotOnHost(tri[0])
		g.Replica(slot).Runtime().Stop()
		if err := cp.ReplaceReplica("web", tri[0], func(err error) { result, done = err, true }); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("replacement never finished")
	}
	if result == nil {
		t.Fatal("epoch-mode switchover should have failed")
	}
	if errors.Is(result, placement.ErrNoFeasibleHost) {
		t.Fatalf("wrong failure: %v", result)
	}
	if got, _ := cp.Pool().Triangle("web"); got != tri {
		t.Fatalf("rollback did not restore the triangle: %v != %v", got, tri)
	}
	if st := cp.Stats(); st.ReplacementFailures != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := cp.Verify(); err != nil {
		t.Fatalf("pool/cluster diverged after rollback: %v", err)
	}
}

// TestVerifyCatchesPoolClusterDivergence pins the audit a swallowed
// rollback error used to escape: a guest the cluster runs but the pool lost
// (the exact state a failed rollback restore leaves) must fail Verify.
func TestVerifyCatchesPoolClusterDivergence(t *testing.T) {
	cp := newTestPlane(t, 7, 3, 69)
	if _, _, err := cp.Admit("web", beaconFactory(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
	tri, _ := cp.Pool().Triangle("web")
	if _, err := cp.Pool().Release("web"); err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err == nil {
		t.Fatal("Verify missed a cluster-deployed guest absent from the pool")
	}
	if err := cp.Pool().AdmitTriangle("web", tri); err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	cfg := core.DefaultClusterConfig()
	cfg.Mode = core.ModeBaseline
	cfg.Hosts = 1
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, DefaultConfig(2)); err == nil {
		t.Fatal("baseline cluster accepted")
	}
	cfg = core.DefaultClusterConfig()
	c2, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c2, Config{Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(nil, DefaultConfig(1)); err == nil {
		t.Fatal("nil cluster accepted")
	}
	if _, err := placement.NewPool(-1, 1); err == nil {
		t.Fatal("negative pool accepted")
	}
}
