package controlplane

// Crashed machines as a first-class failure domain. A planned drain
// (drain.go) can rely on the machine's live VMM to keep the 3-proposal
// median flowing; a crashed (VMM-dead) machine cannot — before this path
// existed, every co-resident guest stalled forever waiting for proposals
// that would never arrive. The recovery protocol, Paxos-style
// reconfiguration made concrete on the StopWatch data plane:
//
//  1. FailOp marks the machine failed: its capacity leaves the placement
//     pool (reusing the drain plumbing), the data plane kills its runtimes
//     and proposal senders, and — one DrainWindow later, so the dead VMM's
//     in-flight proposals land everywhere — every resident guest's group is
//     reconfigured (multicast groups, pacing peers, device live views,
//     ingress replication, egress live count) to the live quorum. Pending
//     and future delivery proposals then resolve on the live set and the
//     guests keep serving degraded 2-of-3. The op completes at the
//     reconfiguration (PhaseReconfigure).
//  2. EvacuateOp repairs membership: every resident is moved, in guest-id
//     order, through ordinary child ReplaceOps — journal replay already
//     reconstructs the replica; it only needed medians that keep resolving.
//  3. RepairOp returns the (rebooted, empty) machine to the pool.
//
// FailOps are submitted two ways: scripted (an operator or scenario driver
// calls Apply), or detector-driven — EnableStallDetector (detector.go)
// turns a stalled proposal group into a FailOp{Detected: true} and chains
// the EvacuateOp off the fail's completion event, making
// fail → reconfigure → evacuate a pipeline rather than a call sequence.

import (
	"errors"
	"fmt"

	"stopwatch/internal/core"
	"stopwatch/internal/placement"
)

// hostFailure is one machine's crash epoch, created by FailOp and deleted
// by RepairOp.
type hostFailure struct {
	// reconfigured flips once the post-crash group reconfiguration has
	// been broadcast, after the proposal settle window — the gate
	// EvacuateOp waits on.
	reconfigured bool
	// drainedByFail records whether the FailOp itself pulled the machine's
	// capacity (false: the operator had drained it for maintenance before
	// the crash, and repair must not undo that).
	drainedByFail bool
	// reconfigErrs collects reconfiguration failures for the evacuation
	// outcome.
	reconfigErrs []error
}

// applyFail marks machine as crashed (its VMM died). The machine's capacity
// leaves the placement pool immediately, its replicas' guest execution and
// proposal senders are killed, and one DrainWindow later — once the dead
// VMM's in-flight proposals have settled at every survivor — every resident
// guest's replica group is reconfigured onto its live quorum, unwedging the
// delivery medians; the op completes then. Submit an EvacuateOp afterwards
// (any time: the reconfiguration is awaited) to re-home the residents.
//
// A Detected fail (submitted by the stall detector) requires the machine to
// already be dead at the data plane — the detector reacted to its silence —
// and skips the kill; suspecting a live machine is rejected, on record.
//
// A machine can crash while a DrainOp evacuation of it is still in flight:
// the drain loop adopts the situation safely — its remaining barriers
// simply wait out quiescence until the reconfiguration fires, and its moves
// keep counting as (drain) Evacuations — while an EvacuateOp is refused
// until that loop finishes and can then pick up any residents whose moves
// it abandoned.
func (cp *ControlPlane) applyFail(op FailOp, oc *Outcome) {
	machine := op.Machine
	if machine < 0 || machine >= cp.c.Hosts() {
		cp.finish(oc, fmt.Errorf("%w: machine %d out of range", ErrControlPlane, machine))
		return
	}
	if cp.failures[machine] != nil {
		cp.finish(oc, fmt.Errorf("%w: machine %d already failed", ErrControlPlane, machine))
		return
	}
	if op.Detected {
		if !cp.c.Host(machine).Failed() {
			cp.finish(oc, fmt.Errorf("%w: detector suspected machine %d but its VMM is alive", ErrControlPlane, machine))
			return
		}
		// The machine is already dead at the data plane; there is nothing
		// to kill, only control-plane recovery to run.
	} else if err := cp.c.FailMachine(machine); err != nil {
		cp.finish(oc, err)
		return
	}
	f := &hostFailure{}
	// Reuse the drain plumbing to pull the machine's capacity: a machine
	// mid-maintenance (already drained) can crash too and simply keeps its
	// drained state — and keeps it across repair.
	switch err := cp.pool.Drain(machine); {
	case err == nil:
		f.drainedByFail = true
	case !errors.Is(err, placement.ErrDrained):
		cp.finish(oc, err)
		return
	}
	cp.failures[machine] = f
	cp.phase(oc, PhaseDrain)
	residents := cp.pool.Residents(machine)
	oc.Guests = residents
	// The view commit waits on two independent gates: the proposal settle
	// window (the dead VMM's in-flight packets land everywhere the fabric
	// will ever deliver them) AND the survivor reconcile round (survivors
	// exchange what did land, repairing deliveries the loss tore apart).
	// On a loss-free fabric the round finishes well inside the window, so
	// the commit time — and the op log — are exactly as before.
	var windowDone, reconcileDone bool
	commit := func() {
		if !windowDone || !reconcileDone {
			return
		}
		// The failure epoch may have ended (RepairOp) — or ended and
		// restarted — while the gates were in flight; only the closure
		// belonging to the current, still-active epoch may open the
		// evacuation gate. A superseded fail still completes, with the
		// reconfiguration it never performed absent from its phases.
		if cp.failures[machine] != f {
			cp.finish(oc, nil)
			return
		}
		for _, id := range residents {
			// A guest that departed or was already re-homed (a racing
			// failure replacement) needs no reconfiguration.
			tri, ok := cp.pool.Triangle(id)
			if !ok || !tri.Contains(machine) {
				continue
			}
			// A failure here (e.g. a guest whose every machine has crashed
			// has no live quorum) must reach the evacuation outcome, not
			// vanish; the gate still opens so the reconfigured guests'
			// barriers proceed.
			if err := cp.c.MarkReplicaDead(id, machine); err != nil {
				f.reconfigErrs = append(f.reconfigErrs,
					fmt.Errorf("reconfigure %q after machine %d crash: %w", id, machine, err))
			}
		}
		f.reconfigured = true
		cp.phase(oc, PhaseReconfigure)
		cp.finish(oc, nil)
	}
	cp.c.ReconcileBeforeCommit(machine, residents, func(st core.ReconcileStats) {
		reconcileDone = true
		oc.ReconcileRounds = st.Rounds
		oc.ReconcileRepairs = st.Repairs
		oc.ReconcileRetries = st.Retries
		oc.ReconcileGaveUp = st.GaveUp
		// The phase is stamped only when the round repaired or retried
		// anything, keeping loss-free op logs byte-identical.
		if st.Repairs+st.Retries+st.GaveUp > 0 {
			cp.phase(oc, PhaseReconcile)
		}
		commit()
	})
	cp.c.Loop().After(cp.cfg.DrainWindow, "cp:fail-reconfig", func() {
		windowDone = true
		commit()
	})
}

// applyEvacuate re-homes every resident of a crashed machine through child
// ReplaceOps, sequentially in guest-id order, starting once the post-crash
// group reconfiguration has unwedged quiescence. The op completes with the
// joined errors of the moves that failed — reconfiguration failures joined
// ahead of them — e.g. ErrNoFeasibleHost under a saturated packing, where
// the guest keeps serving degraded on its live pair. The machine stays
// failed afterwards; RepairOp returns it.
func (cp *ControlPlane) applyEvacuate(op EvacuateOp, oc *Outcome) {
	machine := op.Machine
	if machine < 0 || machine >= cp.c.Hosts() {
		cp.finish(oc, fmt.Errorf("%w: machine %d out of range", ErrControlPlane, machine))
		return
	}
	f := cp.failures[machine]
	if f == nil {
		cp.finish(oc, fmt.Errorf("%w: machine %d is not failed", ErrControlPlane, machine))
		return
	}
	if cp.draining[machine] {
		cp.finish(oc, fmt.Errorf("%w: machine %d already evacuating", ErrControlPlane, machine))
		return
	}
	cp.draining[machine] = true
	cp.phase(oc, PhaseEvacuate)
	// Reconfiguration failures surface through the evacuation outcome,
	// joined ahead of the per-resident move errors, and are consumed on
	// report so a documented evacuate-retry does not double-count them.
	pre := func() []error {
		re := f.reconfigErrs
		f.reconfigErrs = nil
		return re
	}
	cp.evacuateResidents(oc, machine, causeCrash, func() bool { return f.reconfigured }, pre)
}

// applyRepair returns a crashed machine to service after its evacuation:
// the (rebooted, empty) machine's capacity rejoins the placement pool and
// new replicas may land on it — unless the operator had drained it for
// maintenance before the crash, in which case it stays drained.
//
// It refuses while any resident remains (e.g. a degraded guest whose move
// was infeasible under a saturated packing): the Failed mark is what keeps
// the guest's dead replica — whose proposal sender is permanently closed —
// out of quiescence checks and group reconfigurations, so reviving the
// machine under it would re-wedge the guest. Evacuate first (retry once
// capacity frees), then repair.
func (cp *ControlPlane) applyRepair(op RepairOp, oc *Outcome) {
	machine := op.Machine
	if cp.draining[machine] {
		cp.finish(oc, fmt.Errorf("%w: machine %d still evacuating", ErrControlPlane, machine))
		return
	}
	f := cp.failures[machine]
	if f == nil {
		cp.finish(oc, fmt.Errorf("%w: machine %d is not failed", ErrControlPlane, machine))
		return
	}
	if left := cp.pool.Residents(machine); len(left) > 0 {
		cp.finish(oc, fmt.Errorf("%w: machine %d still hosts %v — evacuate before repairing", ErrControlPlane, machine, left))
		return
	}
	if err := cp.c.ReviveMachine(machine); err != nil {
		cp.finish(oc, err)
		return
	}
	delete(cp.failures, machine)
	delete(cp.suspected, machine)
	cp.phase(oc, PhasePlace)
	if f.drainedByFail {
		if err := cp.pool.Undrain(machine); err != nil {
			cp.finish(oc, err)
			return
		}
	}
	cp.finish(oc, nil)
}

// FailHost is the verb wrapper over Apply(FailOp).
func (cp *ControlPlane) FailHost(machine int) error {
	oc := cp.Apply(FailOp{Machine: machine})
	if oc.Rejected() {
		return oc.Err
	}
	return nil
}

// EvacuateFailedHost is the verb wrapper over Apply(EvacuateOp): a
// validation rejection is returned synchronously; otherwise onDone
// (optional) fires with the joined errors of the moves that failed.
func (cp *ControlPlane) EvacuateFailedHost(machine int, onDone func(error)) error {
	op := EvacuateOp{Machine: machine}
	op.Done = func(oc *Outcome) {
		if oc.Rejected() {
			return // reported synchronously below
		}
		if onDone != nil {
			onDone(oc.Err)
		}
	}
	if oc := cp.Apply(op); oc.Rejected() {
		return oc.Err
	}
	return nil
}

// RepairHost is the verb wrapper over Apply(RepairOp).
func (cp *ControlPlane) RepairHost(machine int) error {
	return cp.Apply(RepairOp{Machine: machine}).Err
}

// Failed reports whether machine is marked crashed.
func (cp *ControlPlane) Failed(machine int) bool { return cp.failures[machine] != nil }
