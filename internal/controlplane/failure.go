package controlplane

// Crashed machines as a first-class failure domain. A planned drain
// (drain.go) can rely on the machine's live VMM to keep the 3-proposal
// median flowing; a crashed (VMM-dead) machine cannot — before this path
// existed, every co-resident guest stalled forever waiting for proposals
// that would never arrive. The recovery protocol, Paxos-style
// reconfiguration made concrete on the StopWatch data plane:
//
//  1. FailHost marks the machine failed: its capacity leaves the placement
//     pool (reusing the drain plumbing), the data plane kills its runtimes
//     and proposal senders, and — one DrainWindow later, so the dead VMM's
//     in-flight proposals land everywhere — every resident guest's group is
//     reconfigured (multicast groups, pacing peers, device live views,
//     ingress replication) to the live quorum. Pending and future delivery
//     proposals then resolve on the live set and the guests keep serving
//     degraded 2-of-3.
//  2. EvacuateFailedHost repairs membership: every resident is moved, in
//     guest-id order, through the ordinary replacement barrier — journal
//     replay already reconstructs the replica; it only needed medians that
//     keep resolving.
//  3. RepairHost returns the (rebooted, empty) machine to the pool.

import (
	"errors"
	"fmt"

	"stopwatch/internal/placement"
)

// FailHost marks machine as crashed (its VMM died). The machine's capacity
// leaves the placement pool immediately, its replicas' guest execution and
// proposal senders are killed, and one DrainWindow later — once the dead
// VMM's in-flight proposals have settled at every survivor — every resident
// guest's replica group is reconfigured onto its live quorum, unwedging the
// delivery medians. Call EvacuateFailedHost afterwards (any time: the
// reconfiguration is awaited) to re-home the residents.
//
// A machine can crash while a DrainHost evacuation of it is still in
// flight: the drain loop adopts the situation safely — its remaining
// barriers simply wait out quiescence until the reconfiguration fires, and
// its moves keep counting as (drain) Evacuations — while EvacuateFailedHost
// is refused until that loop finishes and can then pick up any residents
// whose moves it abandoned.
func (cp *ControlPlane) FailHost(machine int) error {
	if machine < 0 || machine >= cp.c.Hosts() {
		return fmt.Errorf("%w: machine %d out of range", ErrControlPlane, machine)
	}
	if cp.failures[machine] != nil {
		return fmt.Errorf("%w: machine %d already failed", ErrControlPlane, machine)
	}
	if err := cp.c.FailMachine(machine); err != nil {
		return err
	}
	f := &hostFailure{}
	// Reuse the drain plumbing to pull the machine's capacity: a machine
	// mid-maintenance (already drained) can crash too and simply keeps its
	// drained state — and keeps it across repair.
	switch err := cp.pool.Drain(machine); {
	case err == nil:
		f.drainedByFail = true
	case !errors.Is(err, placement.ErrDrained):
		return err
	}
	cp.failures[machine] = f
	cp.stats.HostFailures++
	residents := cp.pool.Residents(machine)
	cp.c.Loop().After(cp.cfg.DrainWindow, "cp:fail-reconfig", func() {
		// The failure epoch may have ended (RepairHost) — or ended and
		// restarted — while this closure was in flight; only the closure
		// belonging to the current, still-active epoch may open the
		// evacuation gate.
		if cp.failures[machine] != f {
			return
		}
		for _, id := range residents {
			// A guest that departed or was already re-homed (a racing
			// failure replacement) needs no reconfiguration.
			tri, ok := cp.pool.Triangle(id)
			if !ok || !tri.Contains(machine) {
				continue
			}
			// A failure here (e.g. a guest whose every machine has crashed
			// has no live quorum) must reach the evacuation outcome, not
			// vanish; the gate still opens so the reconfigured guests'
			// barriers proceed.
			if err := cp.c.MarkReplicaDead(id, machine); err != nil {
				f.reconfigErrs = append(f.reconfigErrs,
					fmt.Errorf("reconfigure %q after machine %d crash: %w", id, machine, err))
			}
		}
		f.reconfigured = true
	})
	return nil
}

// EvacuateFailedHost re-homes every resident of a crashed machine through
// the replacement barrier, sequentially in guest-id order, starting once
// the post-crash group reconfiguration has unwedged quiescence. onDone
// (optional) fires with the joined errors of the moves that failed — e.g.
// ErrNoFeasibleHost under a saturated packing, where the guest keeps
// serving degraded on its live pair. The machine stays failed afterwards;
// RepairHost returns it.
func (cp *ControlPlane) EvacuateFailedHost(machine int, onDone func(error)) error {
	if machine < 0 || machine >= cp.c.Hosts() {
		return fmt.Errorf("%w: machine %d out of range", ErrControlPlane, machine)
	}
	f := cp.failures[machine]
	if f == nil {
		return fmt.Errorf("%w: machine %d is not failed", ErrControlPlane, machine)
	}
	if cp.draining[machine] {
		return fmt.Errorf("%w: machine %d already evacuating", ErrControlPlane, machine)
	}
	cp.draining[machine] = true
	// Reconfiguration failures surface through the evacuation outcome,
	// joined ahead of the per-resident move errors, and are consumed on
	// report so a documented evacuate-retry does not double-count them.
	// With no callback they stay stored for a later retry that has one.
	wrapped := onDone
	if onDone != nil {
		wrapped = func(err error) {
			if re := errors.Join(f.reconfigErrs...); re != nil {
				err = errors.Join(re, err)
			}
			f.reconfigErrs = nil
			onDone(err)
		}
	}
	cp.evacuateResidents(machine, false, func() bool { return f.reconfigured }, wrapped)
	return nil
}

// RepairHost returns a crashed machine to service after its evacuation: the
// (rebooted, empty) machine's capacity rejoins the placement pool and new
// replicas may land on it — unless the operator had drained it for
// maintenance before the crash, in which case it stays drained.
//
// It refuses while any resident remains (e.g. a degraded guest whose move
// was infeasible under a saturated packing): the Failed mark is what keeps
// the guest's dead replica — whose proposal sender is permanently closed —
// out of quiescence checks and group reconfigurations, so reviving the
// machine under it would re-wedge the guest. Evacuate first (retry once
// capacity frees), then repair.
func (cp *ControlPlane) RepairHost(machine int) error {
	if cp.draining[machine] {
		return fmt.Errorf("%w: machine %d still evacuating", ErrControlPlane, machine)
	}
	f := cp.failures[machine]
	if f == nil {
		return fmt.Errorf("%w: machine %d is not failed", ErrControlPlane, machine)
	}
	if left := cp.pool.Residents(machine); len(left) > 0 {
		return fmt.Errorf("%w: machine %d still hosts %v — evacuate before repairing", ErrControlPlane, machine, left)
	}
	if err := cp.c.ReviveMachine(machine); err != nil {
		return err
	}
	delete(cp.failures, machine)
	if f.drainedByFail {
		return cp.pool.Undrain(machine)
	}
	return nil
}

// Failed reports whether machine is marked crashed.
func (cp *ControlPlane) Failed(machine int) bool { return cp.failures[machine] != nil }
