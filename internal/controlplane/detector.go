package controlplane

// The automatic failure detector, closing the loop the ROADMAP left open:
// vmm.NetDevice has always been able to arm a per-sequence proposal
// deadline (ProposalDeadline / OnStall), but until now only tests wired it.
// EnableStallDetector plumbs the hook through the cluster into the control
// plane: when a delivery proposal group stalls past the deadline, the
// survivors' device models name the silent members, the cluster maps them
// to machines, and the control plane auto-submits FailOp{Detected: true}
// for each — then chains an EvacuateOp off the fail's completion event.
// fail → reconfigure → evacuate becomes a detector-driven pipeline, every
// step of it on the op log, with no scripted FailHost call anywhere.

import (
	"fmt"

	"stopwatch/internal/sim"
)

// EnableStallDetector arms the per-sequence proposal deadline on every
// guest replica device model (current and future) and turns stalled
// proposal groups into detector-driven FailOps: a machine whose proposals
// are missing past the deadline is suspected, auto-failed (reconfiguring
// its residents onto their live quorums) and then auto-evacuated. A
// suspicion of a machine whose VMM is in fact alive is rejected and logged,
// never executed — the sim's ground truth stands in for the unreachable-
// heartbeat confirmation a real deployment would use.
//
// deadline must comfortably exceed a proposal round trip (fabric latency
// plus Dom0 processing); 0 selects half the DrainWindow, which the Config
// already sizes to cover a settled round trip. Suspicion is two-step — a
// stalled sequence is re-checked one further deadline later and only an
// origin still silent then is accused — and a false alarm (the suspected
// VMM turns out alive) lands on the op log as a rejected FailOp, never
// executed, leaving the machine detectable again. Repairing a machine also
// re-arms its detection.
func (cp *ControlPlane) EnableStallDetector(deadline sim.Time) error {
	if deadline < 0 {
		return fmt.Errorf("%w: stall deadline %d", ErrControlPlane, deadline)
	}
	if deadline == 0 {
		deadline = cp.cfg.DrainWindow / 2
	}
	// Chain the pipeline: a detected fail's completion (the reconfiguration
	// has run) triggers the evacuation of its residents.
	cp.Watch(func(ev Event) {
		op, ok := ev.Op.(FailOp)
		if !ok || !op.Detected || ev.Kind != OpCompleted {
			return
		}
		cp.Apply(EvacuateOp{Machine: op.Machine})
	})
	return cp.c.SetStallDetector(deadline, cp.suspectMachine)
}

// suspectMachine receives one stall report from the data plane: origin
// machines whose proposals are missing past the deadline. One dead machine
// stalls many sequences across many guests; the suspected mark makes the
// first report the one that acts.
func (cp *ControlPlane) suspectMachine(machine int) {
	if cp.suspected[machine] || cp.failures[machine] != nil {
		return
	}
	cp.suspected[machine] = true
	if oc := cp.Apply(FailOp{Machine: machine, Detected: true}); oc.Err != nil {
		// A false alarm (the machine's VMM is alive after all) is on the op
		// log as a rejected FailOp; un-mark the machine so a later, genuine
		// crash can still be detected.
		delete(cp.suspected, machine)
	}
}
