package core

import (
	"fmt"

	"stopwatch/internal/gateway"
	"stopwatch/internal/sim"
	"stopwatch/internal/vmm"
)

// This file is the cluster's dynamic path: guests leave (Undeploy) and
// failed replicas are re-homed onto fresh hosts (ReplaceReplica) while the
// cloud keeps running. The control plane (internal/controlplane) drives
// these against its placement pool; the cluster owns the mechanics.

// Undeploy evicts a guest: replicas stop and detach from their hosts'
// schedulers, all fabric wiring (service address, ingress stream, proposal
// streams) is torn down, and the id becomes reusable.
func (c *Cluster) Undeploy(id string) error {
	g, ok := c.guests[id]
	if !ok {
		return fmt.Errorf("%w: guest %q not deployed", ErrCluster, id)
	}
	if g.Baseline != nil {
		g.Baseline.Release()
		c.net.Detach(gateway.ServiceAddr(id))
		delete(c.guests, id)
		return nil
	}
	for _, w := range g.replicas {
		c.releaseReplicaWiring(id, w)
		// Drop peer-stream state so a later tenant reusing an address
		// starts from sequence 1 instead of being discarded as duplicates.
		for _, peer := range g.replicas {
			if peer != w {
				c.hostNodes[w.hostIdx].mrx.Forget(peer.propSrc)
			}
		}
	}
	if err := c.ingress.UnregisterGuest(id); err != nil {
		return err
	}
	c.egress.DropGuest(id)
	delete(c.guests, id)
	return nil
}

// releaseReplicaWiring unwires one StopWatch replica from the fabric: the
// runtime leaves its host's scheduler, the host node forgets the guest,
// the proposal sender closes and detaches, and the ingress stream state is
// dropped. Both eviction and replacement teardown go through here.
func (c *Cluster) releaseReplicaWiring(id string, w *replicaWiring) {
	w.rt.Release()
	hn := c.hostNodes[w.hostIdx]
	delete(hn.netdevs, id)
	delete(hn.runtimes, id)
	delete(hn.epochs, id)
	w.psnd.Close()
	c.net.Detach(w.propSrc)
	hn.mrx.Forget(c.ingress.SourceAddr(id))
}

// GuestQuiescent reports whether every live replica's device model has
// resolved all inbound packets — the barrier replica replacement requires.
// Pause the guest's ingress stream and wait a network-drain interval to
// reach it. Replicas on failed (VMM-dead) machines are excluded: their
// device models resolve nothing and are torn down wholesale at switchover.
func (c *Cluster) GuestQuiescent(id string) bool {
	g, ok := c.guests[id]
	if !ok || g.Baseline != nil {
		return false
	}
	for _, w := range g.replicas {
		if c.hosts[w.hostIdx].Failed() {
			continue
		}
		if w.nd.Pending() > 0 {
			return false
		}
	}
	return true
}

// ReplaceReplica re-homes guest id's replica from deadHost onto newHost:
// the Sec. VII recovery path, where the crashed replica's state is
// reconstructed from the survivors. The new replica is rebuilt by replaying
// the guest's determinism journal to a survivor's exact instruction count,
// wired into the proposal/pacing/egress fabric, and started in lockstep.
//
// Preconditions — the control plane's barrier establishes them:
//   - the guest's ingress stream is paused (no replication in flight), and
//   - GuestQuiescent(id) holds (no unresolved delivery proposals).
//
// The failed replica itself may be long dead; only its VMM-side wiring is
// torn down here.
func (c *Cluster) ReplaceReplica(id string, deadHost, newHost int) error {
	g, ok := c.guests[id]
	if !ok {
		return fmt.Errorf("%w: guest %q not deployed", ErrCluster, id)
	}
	if g.Baseline != nil {
		return fmt.Errorf("%w: baseline guests have no replicas to replace", ErrCluster)
	}
	if newHost < 0 || newHost >= len(c.hosts) {
		return fmt.Errorf("%w: host index %d out of range", ErrCluster, newHost)
	}
	if c.hosts[newHost].Failed() {
		return fmt.Errorf("%w: host %d is failed — a replica placed there would be born dead", ErrCluster, newHost)
	}
	slot := -1
	for k, w := range g.replicas {
		if w.hostIdx == deadHost {
			slot = k
		}
		if w.hostIdx == newHost {
			return fmt.Errorf("%w: guest %q already has a replica on host %d", ErrCluster, id, newHost)
		}
	}
	if slot < 0 {
		return fmt.Errorf("%w: guest %q has no replica on host %d", ErrCluster, id, deadHost)
	}
	if !c.ingress.Paused(id) {
		return fmt.Errorf("%w: replacement of %q needs the ingress stream paused", ErrCluster, id)
	}
	if !c.GuestQuiescent(id) {
		return fmt.Errorf("%w: guest %q has unresolved inbound packets — not quiescent", ErrCluster, id)
	}

	dead := g.replicas[slot]
	survivors := make([]*replicaWiring, 0, len(g.replicas)-1)
	for _, w := range g.replicas {
		if w != dead {
			survivors = append(survivors, w)
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("%w: guest %q has no survivors to recover from", ErrCluster, id)
	}

	// Reconstruct the replica FIRST — replay can fail, and until it has
	// succeeded the dead replica's wiring must stay up (its device model
	// still proposes, which is what keeps the 3-proposal median and hence
	// the guest's inbound path alive in the crashed-guest regime). The
	// target is the most advanced survivor's instruction count (replicas
	// differ only in real-time skew; any exit point is a consistent state).
	donor := survivors[0]
	target := donor.rt.Instr()
	for _, w := range survivors[1:] {
		if w.rt.Instr() > target {
			target = w.rt.Instr()
			donor = w
		}
	}
	rt, err := vmm.NewReplacementRuntime(c.hosts[newHost], id, g.factory(), g.boots, g.journal, target)
	if err != nil {
		return fmt.Errorf("replace %q: %w", id, err)
	}

	// Point of no return: tear down the dead replica's wiring.
	c.releaseReplicaWiring(id, dead)
	hnDead := c.hostNodes[dead.hostIdx]
	for _, w := range survivors {
		c.hostNodes[w.hostIdx].mrx.Forget(dead.propSrc)
		w.rt.DropPeer(dead.hostName)
		hnDead.mrx.Forget(w.propSrc)
	}

	if err := c.wireReplica(g, slot, newHost, rt); err != nil {
		rt.Release()
		return fmt.Errorf("replace %q: %w", id, err)
	}

	// Join the in-progress streams at their current sequence: the new
	// member must not NAK history from before it existed, and survivors
	// must not hold stale state for a reused proposal address.
	hnNew := c.hostNodes[newHost]
	next, err := c.ingress.NextSeq(id)
	if err != nil {
		return err
	}
	hnNew.mrx.Prime(c.ingress.SourceAddr(id), next)
	fresh := g.replicas[slot]
	// The fresh device must not treat the stream's history — resolved by
	// its predecessors and replayed from the journal — as forever-pending.
	fresh.nd.PrimeResolved(next - 1)
	for _, w := range survivors {
		hnNew.mrx.Prime(w.propSrc, w.psnd.NextSeq())
		c.hostNodes[w.hostIdx].mrx.Forget(fresh.propSrc)
	}

	if err := c.reconcileGroups(g); err != nil {
		return err
	}
	// Under epoch re-sync the replacement's coordinator resumes at the
	// restored clock's epoch, adopting the most advanced survivor's pending
	// samples — and, when replay stopped exactly at a barrier the survivors
	// are still holding, sampling and joining it before the runtime starts.
	if fresh.ec != nil {
		fresh.ec.RestoreAt(donor.ec)
	}
	// Free the crash window's forwarded output groups: for sequences up to
	// the replayed send count the third copy will never arrive (the dead
	// replica is gone and the replacement suppresses replayed sends). A
	// second sweep after a generous tunnel-drain interval catches groups
	// whose last survivor copy was still in flight at switchover; by then
	// the guest may have been evicted, which DropGuest makes a no-op.
	boundary := uint64(fresh.rt.VM().Stats().PacketsSent)
	c.egress.ReclaimForwardedUpTo(id, boundary)
	c.loop.After(100*sim.Millisecond, "egress:reclaim", func() {
		c.egress.ReclaimForwardedUpTo(id, boundary)
	})
	g.Replaced++
	if c.replayLen != nil {
		c.replayLen.Observe(int64(fresh.rt.Stats().ReplayedRecords))
	}
	if c.started {
		fresh.rt.Start()
	}
	return nil
}

// CheckLockstepPrefix verifies the replicas agree on their common output
// prefix. Unlike CheckLockstep it tolerates the bounded skew of a running
// guest (the fastest replica may have emitted a few packets the slowest
// has not), so it is the mid-flight health check; at quiesce the two
// checks coincide.
func (g *Guest) CheckLockstepPrefix() error {
	return g.CheckLockstepPrefixExcluding()
}

// CheckLockstepPrefixExcluding is CheckLockstepPrefix over a subset of
// replicas: the listed slots are skipped. It is the health check for a
// degraded guest — one whose replica died and could not be re-homed —
// where the frozen replica would otherwise drag the common prefix
// arbitrarily far behind the digest history.
func (g *Guest) CheckLockstepPrefixExcluding(slots ...int) error {
	skip := make(map[int]bool, len(slots))
	for _, s := range slots {
		skip[s] = true
	}
	m, live := -1, 0
	for k, w := range g.replicas {
		if skip[k] {
			continue
		}
		live++
		if n := w.rt.VM().OutputCount(); m < 0 || n < m {
			m = n
		}
	}
	if live < 2 {
		return nil
	}
	var want uint64
	first := true
	for k, w := range g.replicas {
		if skip[k] {
			continue
		}
		d, ok := w.rt.VM().OutputLog().DigestAt(m)
		if !ok {
			return fmt.Errorf("%w: guest %s replica %d skewed past digest history (out=%d, prefix=%d)",
				ErrCluster, g.ID, k, w.rt.VM().OutputCount(), m)
		}
		if first {
			want, first = d, false
			continue
		}
		if d != want {
			return fmt.Errorf("%w: guest %s replica %d diverged within first %d outputs", ErrCluster, g.ID, k, m)
		}
	}
	return nil
}
