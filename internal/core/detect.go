package core

// Stall-detector plumb-through. The device model's per-sequence proposal
// deadline (vmm.NetDevice.ProposalDeadline / OnStall) fires on a survivor
// when a delivery proposal group misses its deadline; this file turns that
// device-local observation into a cluster-level suspicion — "machine m is
// silent" — for the control plane's detector to act on. The cluster only
// names suspects; declaring a machine dead (and everything that follows)
// is policy and stays above.

import (
	"fmt"
	"sort"

	"stopwatch/internal/sim"
)

// stallRec is one device-level stall observation, recorded by the replica's
// shard goroutine and handled at the next coordinator barrier. Deferring to
// the barrier keeps detection off the shard hot path AND out of shard
// execution entirely: reportStall schedules confirmation timers on the
// control loop, which only barrier context may touch.
type stallRec struct {
	when sim.Time
	id   string
	w    *replicaWiring
	seq  uint64
}

// SetStallDetector arms the per-sequence proposal deadline on every guest
// replica device model — those already deployed and every one wired later
// (admissions, replacements) — and reports the machines whose proposals are
// missing when a sequence stalls past it. onSuspect may be invoked several
// times for one dead machine (every guest it stalls reports); dedup is the
// caller's job. Reports from devices that are themselves on failed
// machines, or from wirings already replaced, are suppressed.
func (c *Cluster) SetStallDetector(deadline sim.Time, onSuspect func(machine int)) error {
	if deadline <= 0 {
		return fmt.Errorf("%w: stall deadline %d", ErrCluster, deadline)
	}
	if onSuspect == nil {
		return fmt.Errorf("%w: stall detector needs a suspect callback", ErrCluster)
	}
	c.stallDeadline = deadline
	c.onStallSuspect = onSuspect
	for _, id := range c.GuestIDs() {
		g := c.guests[id]
		for _, w := range g.replicas {
			c.armStallDetector(id, w)
		}
	}
	return nil
}

// armStallDetector wires one replica's device model into the detector; a
// no-op until SetStallDetector has been called. The OnStall hook only
// records: the shard index is the replica host's, so each queue has exactly
// one writer goroutine.
func (c *Cluster) armStallDetector(id string, w *replicaWiring) {
	if c.stallDeadline <= 0 {
		return
	}
	w.nd.ProposalDeadline = c.stallDeadline
	k := w.hostIdx % len(c.shardLoops)
	host := c.hosts[w.hostIdx]
	w.nd.OnStall = func(seq uint64) {
		c.stallQ[k] = append(c.stallQ[k], stallRec{when: host.Loop().Now(), id: id, w: w, seq: seq})
	}
}

// onBarrier is the coordinator's barrier hook: the per-shard queues the
// data plane filled during the window are drained in a fixed order —
// stall observations first, then reconcile acks and repairs.
func (c *Cluster) onBarrier() {
	c.drainStalls()
	c.drainReconcile()
}

// drainStalls runs at every coordinator barrier: it merges the per-shard
// stall queues into one deterministic order — (stall time, host index,
// guest id, seq), independent of the partition — and hands each record to
// reportStall.
func (c *Cluster) drainStalls() {
	n := 0
	for _, q := range c.stallQ {
		n += len(q)
	}
	if n == 0 {
		return
	}
	recs := make([]stallRec, 0, n)
	for k, q := range c.stallQ {
		recs = append(recs, q...)
		c.stallQ[k] = q[:0]
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.when != b.when {
			return a.when < b.when
		}
		if a.w.hostIdx != b.w.hostIdx {
			return a.w.hostIdx < b.w.hostIdx
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.seq < b.seq
	})
	for _, r := range recs {
		c.reportStall(r.id, r.w, r.seq)
	}
}

// reportStall handles one device-level stall. A missed deadline alone is
// not an accusation: a saturated Dom0 (the coresidency load coupling the
// paper models) can legitimately hold a proposal past any snappy deadline,
// so the stall is re-checked one further deadline later and only an origin
// still silent then is reported. A dead VMM never catches up; a merely
// slow one resolves the sequence in between and the alarm dissolves.
//
// The deadline timer outlives lifecycle churn, so stale sources are
// filtered at both checks: a device on a failed machine resolves nothing
// and reports nothing, and a wiring the guest no longer owns (evicted, or
// replaced at switchover) is dead state.
func (c *Cluster) reportStall(id string, w *replicaWiring, seq uint64) {
	if !c.stallSourceLive(id, w) {
		return
	}
	if len(w.nd.MissingProposals(seq)) == 0 {
		return
	}
	view := w.nd.View()
	c.loop.After(c.stallDeadline, "stall:confirm", func() {
		if c.onStallSuspect == nil || !c.stallSourceLive(id, w) {
			return
		}
		// A view change in between voids the observation: the
		// reconfiguration wiped and re-proposed every pending sequence, so
		// a proposal set that looks empty right now may just be the re-
		// proposal round still in flight. The fresh proposals armed fresh
		// deadlines; a genuine stall under the new view re-reports.
		if w.nd.View() != view {
			return
		}
		for _, origin := range w.nd.MissingProposals(seq) {
			if m, ok := c.hostIdxByName[origin]; ok {
				c.onStallSuspect(m)
			}
		}
	})
}

// stallSourceLive reports whether a stall source is still worth listening
// to: its own machine is alive and the wiring is still the guest's current
// occupant of its slot.
func (c *Cluster) stallSourceLive(id string, w *replicaWiring) bool {
	if c.hosts[w.hostIdx].Failed() {
		return false
	}
	g, ok := c.guests[id]
	if !ok {
		return false
	}
	for _, cur := range g.replicas {
		if cur == w {
			return true
		}
	}
	return false
}
