package core

import (
	"fmt"

	"stopwatch/internal/guest"
	"stopwatch/internal/vmm"
)

// This file is the guest's public replica surface. A Guest's per-slot state
// lives in exactly one place — the internal replica wiring — and the
// slot-addressed Replica view reads through it at call time. There are no
// mirrored slices to keep consistent: a view taken before a replacement
// observes the slot's new occupant afterwards.

// Replica is a read-only, slot-addressed view of one of a guest's replicas.
// The zero value is invalid; obtain views from Guest.Replica or
// Guest.Replicas.
type Replica struct {
	g    *Guest
	slot int
}

// wiring resolves the slot's current occupant.
func (r Replica) wiring() *replicaWiring { return r.g.replicas[r.slot] }

// Slot returns the replica's slot index (stable across replacements).
func (r Replica) Slot() int { return r.slot }

// Guest returns the owning guest.
func (r Replica) Guest() *Guest { return r.g }

// Host returns the index of the machine the replica currently runs on.
func (r Replica) Host() int { return r.wiring().hostIdx }

// HostName returns the name of the replica's machine.
func (r Replica) HostName() string { return r.wiring().hostName }

// Runtime returns the replica's StopWatch runtime.
func (r Replica) Runtime() *vmm.Runtime { return r.wiring().rt }

// NetDev returns the replica's network device model.
func (r Replica) NetDev() *vmm.NetDevice { return r.wiring().nd }

// App returns the replica's app instance.
func (r Replica) App() guest.App { return r.wiring().app }

// Epoch returns the replica's epoch coordinator, or nil when the optional
// Sec. IV-A re-synchronization is disabled (VMM.EpochInstr == 0).
func (r Replica) Epoch() *vmm.EpochCoordinator { return r.wiring().ec }

// NumReplicas returns the guest's StopWatch replica slot count — 0 for a
// baseline guest, consistently with Replica and Replicas, which address
// slots and have none to address in baseline mode.
func (g *Guest) NumReplicas() int { return len(g.replicas) }

// Replica returns the slot-addressed view of replica slot (0-based). It
// panics on an out-of-range slot, like the slice indexing it replaces.
func (g *Guest) Replica(slot int) Replica {
	if slot < 0 || slot >= len(g.replicas) {
		panic(fmt.Sprintf("core: guest %s has no replica slot %d", g.ID, slot))
	}
	return Replica{g: g, slot: slot}
}

// Replicas returns slot-ordered views of all replicas — the iteration
// helper replacing loops over the old parallel slices. Baseline guests have
// no StopWatch replicas and return nil.
func (g *Guest) Replicas() []Replica {
	if len(g.replicas) == 0 {
		return nil
	}
	out := make([]Replica, len(g.replicas))
	for k := range out {
		out[k] = Replica{g: g, slot: k}
	}
	return out
}

// HostIndexes returns the guest's machine indexes in slot order (a fresh
// slice; the single host for a baseline guest).
func (g *Guest) HostIndexes() []int {
	if g.Baseline != nil {
		return []int{g.baselineHost}
	}
	out := make([]int, len(g.replicas))
	for k, w := range g.replicas {
		out[k] = w.hostIdx
	}
	return out
}

// SlotOnHost returns the slot of the replica resident on machine hostIdx.
func (g *Guest) SlotOnHost(hostIdx int) (int, bool) {
	for k, w := range g.replicas {
		if w.hostIdx == hostIdx {
			return k, true
		}
	}
	return 0, false
}

// JournalStats returns the guest's determinism-journal telemetry: retained
// records and bytes, checkpoint progress, and what truncation has dropped.
// Baseline guests keep no journal and return the zero snapshot.
func (g *Guest) JournalStats() vmm.JournalStats {
	if g.journal == nil {
		return vmm.JournalStats{}
	}
	return g.journal.Stats()
}

// App returns replica i's app instance (the single app for baseline).
func (g *Guest) App(i int) guest.App {
	if g.Baseline != nil {
		return g.baselineApp
	}
	if len(g.replicas) == 0 {
		return nil
	}
	return g.replicas[i%len(g.replicas)].app
}
