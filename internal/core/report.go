package core

import (
	"fmt"
	"strings"
)

// GuestReport summarizes one guest VM's run.
type GuestReport struct {
	ID       string
	Replicas int
	// Lockstep is nil when all replicas emitted identical outputs.
	Lockstep error
	// Outputs is the per-replica output packet count (identical when in
	// lockstep).
	Outputs int
	// Divergences and Pauses aggregate replica runtime counters.
	Divergences  int
	DiskOverruns int
	Pauses       int
	// Interrupt counts from replica 0 (identical across correct replicas).
	NetInterrupts   int64
	DiskInterrupts  int64
	TimerInterrupts int64
}

// Report summarizes a cluster run: per-guest health plus gateway counters.
type Report struct {
	Mode   Mode
	Guests []GuestReport
	// Gateway counters (zero in baseline mode).
	IngressReplicated uint64
	EgressForwarded   uint64
	EgressStuck       int
	// Fabric counters.
	PacketsDelivered uint64
	PacketsLost      uint64
}

// Report collects the current run summary.
func (c *Cluster) Report() Report {
	r := Report{Mode: c.cfg.Mode}
	for _, id := range c.GuestIDs() {
		g := c.guests[id]
		gr := GuestReport{ID: id}
		if g.Baseline != nil {
			gr.Replicas = 1
			s := g.Baseline.VM().Stats()
			gr.Outputs = g.Baseline.VM().OutputCount()
			gr.NetInterrupts = s.NetInterrupts
			gr.DiskInterrupts = s.DiskInterrupts
			gr.TimerInterrupts = s.TimerInterrupts
		} else {
			gr.Replicas = len(g.replicas)
			gr.Lockstep = g.CheckLockstep()
			if len(g.replicas) > 0 {
				vm := g.replicas[0].rt.VM()
				s := vm.Stats()
				gr.Outputs = vm.OutputCount()
				gr.NetInterrupts = s.NetInterrupts
				gr.DiskInterrupts = s.DiskInterrupts
				gr.TimerInterrupts = s.TimerInterrupts
			}
			for _, w := range g.replicas {
				st := w.rt.Stats()
				gr.Divergences += st.Divergences
				gr.DiskOverruns += st.DiskOverruns
				gr.Pauses += st.Pauses
			}
		}
		r.Guests = append(r.Guests, gr)
	}
	if c.ingress != nil {
		r.IngressReplicated = c.ingress.Replicated()
	}
	if c.egress != nil {
		r.EgressForwarded = c.egress.Forwarded()
		r.EgressStuck = c.egress.StuckBelowForward()
	}
	fs := c.net.Stats()
	r.PacketsDelivered = fs.Delivered
	r.PacketsLost = fs.Lost
	return r
}

// Healthy reports whether every guest is in lockstep with no divergences
// and the egress has no stuck packets.
func (r Report) Healthy() bool {
	for _, g := range r.Guests {
		if g.Lockstep != nil || g.Divergences > 0 || g.DiskOverruns > 0 {
			return false
		}
	}
	return r.EgressStuck == 0
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster report (%s): %d guests, ingress=%d egress=%d stuck=%d fabric=%d/%d\n",
		r.Mode, len(r.Guests), r.IngressReplicated, r.EgressForwarded, r.EgressStuck,
		r.PacketsDelivered, r.PacketsDelivered+r.PacketsLost)
	for _, g := range r.Guests {
		status := "ok"
		if g.Lockstep != nil {
			status = "DIVERGED: " + g.Lockstep.Error()
		}
		fmt.Fprintf(&b, "  %-12s x%d %s: out=%d net=%d disk=%d timer=%d div=%d overrun=%d pauses=%d\n",
			g.ID, g.Replicas, status, g.Outputs, g.NetInterrupts, g.DiskInterrupts,
			g.TimerInterrupts, g.Divergences, g.DiskOverruns, g.Pauses)
	}
	return b.String()
}
