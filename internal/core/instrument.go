package core

// Data-plane metrics: passive hooks into the fabric, the device models,
// the hosts' disks, the egress and the epoch machinery. Everything here
// either counts what already happened (fabric counters, proposal-latency
// observations) or is a gauge function evaluated lazily at snapshot time
// on the simulation thread — no metric ever feeds back into scheduling,
// RNG draws or event order, so an instrumented run's op-log digest is
// byte-identical to an uninstrumented one.

import (
	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
	"stopwatch/internal/vmm"
)

// propLatencyBuckets spans a proposal round trip: 10µs (same-instant
// resolution after the Dom0 delay) up to ~2.6s (a stalled group waiting
// out a reconfiguration).
var propLatencyBuckets = metrics.ExpBuckets(int64(10*sim.Microsecond), 4, 10)

// replayLenBuckets spans a replacement replay: one record up to ~260k —
// an uncheckpointed long-lived guest's whole delivery history.
var replayLenBuckets = metrics.ExpBuckets(1, 4, 10)

// journalGaugeVecs holds the per-guest journal gauge families so guests
// admitted after InstrumentMetrics self-register at deployment.
type journalGaugeVecs struct {
	records, bytes, age metrics.GaugeFuncVec
}

// InstrumentMetrics registers the data-plane metric families on reg and
// wires their sources:
//
//	stopwatch_net_packets_delivered_total{kind}  fabric deliveries by packet kind
//	stopwatch_net_packets_dropped_total{kind}    loss-model drops and dead-address arrivals
//	stopwatch_vmm_proposal_latency_ns            own-proposal → median-resolution latency
//	stopwatch_host_disk_busy_ns{host}            accumulated disk service time
//	stopwatch_host_disk_backlog_ns{host}         disk FIFO horizon past now (queue wait)
//	stopwatch_host_io_inflight{host}             device-model work in progress
//	stopwatch_egress_pending_groups              open output copy groups (occupancy)
//	stopwatch_egress_stuck_groups                groups below their forward threshold
//	stopwatch_guest_divergences                  replica divergence counter sum
//	stopwatch_guest_journal_records{guest}       retained determinism-journal deliveries
//	stopwatch_guest_journal_bytes{guest}         retained journal size incl. checkpoint
//	stopwatch_guest_checkpoint_age_instr{guest}  instructions a replacement would replay
//	stopwatch_vmm_replay_records                 journal records replayed per replacement
//
// Call once, before or after deployments — replicas wired later inherit
// the proposal-latency histogram and guests admitted later self-register
// their journal gauges. Gauges read live cluster state and are evaluated
// at snapshot; take snapshots from the simulation thread.
func (c *Cluster) InstrumentMetrics(reg *metrics.Registry) {
	// Fabric counters and the proposal-latency histogram are sharded: each
	// fabric shard / replica host updates its own cell lock-free, and the
	// registry merges the cells deterministically at snapshot, so the
	// rendered pages are byte-identical for every shard count.
	delivered := reg.NewShardedCounterVec("stopwatch_net_packets_delivered_total",
		"fabric packets handed to an attached node, by packet kind", "kind", c.Shards())
	dropped := reg.NewShardedCounterVec("stopwatch_net_packets_dropped_total",
		"fabric packets lost to the loss model or a detached address, by packet kind", "kind", c.Shards())
	c.net.SetMetrics(delivered, dropped)

	c.propLatency = reg.NewShardedHistogram("stopwatch_vmm_proposal_latency_ns",
		"loop-time latency from a replica's own delivery-time proposal to the median resolution",
		propLatencyBuckets, c.Shards())
	for _, g := range c.guests {
		for _, w := range g.replicas {
			if w != nil && w.nd != nil {
				h := c.propLatency.Shard(w.hostIdx % len(c.shardLoops))
				w.nd.LatencyHist = &h
			}
		}
	}

	busy := reg.NewGaugeFuncVec("stopwatch_host_disk_busy_ns",
		"accumulated disk service time (seek + transfer + jitter) per host", "host")
	backlog := reg.NewGaugeFuncVec("stopwatch_host_disk_backlog_ns",
		"disk FIFO horizon past the current instant per host — the wait a new request would see", "host")
	inflight := reg.NewGaugeFuncVec("stopwatch_host_io_inflight",
		"device-model work in progress per host (packets being processed, disk requests outstanding)", "host")
	for _, h := range c.hosts {
		h := h
		busy.Add(h.Name(), func() float64 { return float64(h.DiskBusy()) })
		backlog.Add(h.Name(), func() float64 { return float64(h.DiskBacklog(c.loop.Now())) })
		inflight.Add(h.Name(), func() float64 { return float64(h.IOInFlight()) })
	}

	reg.NewGaugeFunc("stopwatch_egress_pending_groups",
		"open egress copy groups (occupancy of the median-forwarding window)",
		func() float64 { return float64(c.egress.PendingGroups()) })
	reg.NewGaugeFunc("stopwatch_egress_stuck_groups",
		"egress copy groups still below their forward threshold — outputs a client is waiting for",
		func() float64 { return float64(c.egress.StuckBelowForward()) })
	reg.NewGaugeFunc("stopwatch_guest_divergences",
		"sum of replica divergence counters across resident guests (epoch re-sync health)",
		func() float64 {
			n := 0
			for _, g := range c.guests {
				n += g.Divergences()
			}
			return float64(n)
		})

	c.journalGauges = &journalGaugeVecs{
		records: reg.NewGaugeFuncVec("stopwatch_guest_journal_records",
			"resolved deliveries retained in the guest's determinism journal (post-truncation)", "guest"),
		bytes: reg.NewGaugeFuncVec("stopwatch_guest_journal_bytes",
			"estimated retained journal size per guest — delivery records plus the latest checkpoint", "guest"),
		age: reg.NewGaugeFuncVec("stopwatch_guest_checkpoint_age_instr",
			"instructions a replacement would replay: most advanced live replica minus the latest checkpoint", "guest"),
	}
	for _, g := range c.guests {
		c.instrumentGuestJournal(g)
	}
	h := reg.NewHistogram("stopwatch_vmm_replay_records",
		"journal records replayed to reconstruct a replacement replica", replayLenBuckets)
	c.replayLen = &h
}

// instrumentGuestJournal registers guest g's journal gauges. The closures
// resolve the guest by id at snapshot time, so after eviction (or after the
// id is reused by a new tenant) the stale registration reads the current
// resident — or zero when none — instead of a released journal.
func (c *Cluster) instrumentGuestJournal(g *Guest) {
	if c.journalGauges == nil || g.journal == nil {
		return
	}
	id := g.ID
	stats := func() vmm.JournalStats {
		if cur, ok := c.guests[id]; ok && cur.journal != nil {
			return cur.journal.Stats()
		}
		return vmm.JournalStats{}
	}
	c.journalGauges.records.Add(id, func() float64 { return float64(stats().Records) })
	c.journalGauges.bytes.Add(id, func() float64 { return float64(stats().Bytes) })
	c.journalGauges.age.Add(id, func() float64 {
		cur, ok := c.guests[id]
		if !ok || cur.journal == nil {
			return 0
		}
		var instr int64
		for _, w := range cur.replicas {
			if w != nil && w.rt != nil && w.rt.Instr() > instr {
				instr = w.rt.Instr()
			}
		}
		return float64(instr - cur.journal.Stats().CheckpointInstr)
	})
}
