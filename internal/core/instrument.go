package core

// Data-plane metrics: passive hooks into the fabric, the device models,
// the hosts' disks, the egress and the epoch machinery. Everything here
// either counts what already happened (fabric counters, proposal-latency
// observations) or is a gauge function evaluated lazily at snapshot time
// on the simulation thread — no metric ever feeds back into scheduling,
// RNG draws or event order, so an instrumented run's op-log digest is
// byte-identical to an uninstrumented one.

import (
	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
)

// propLatencyBuckets spans a proposal round trip: 10µs (same-instant
// resolution after the Dom0 delay) up to ~2.6s (a stalled group waiting
// out a reconfiguration).
var propLatencyBuckets = metrics.ExpBuckets(int64(10*sim.Microsecond), 4, 10)

// InstrumentMetrics registers the data-plane metric families on reg and
// wires their sources:
//
//	stopwatch_net_packets_delivered_total{kind}  fabric deliveries by packet kind
//	stopwatch_net_packets_dropped_total{kind}    loss-model drops and dead-address arrivals
//	stopwatch_vmm_proposal_latency_ns            own-proposal → median-resolution latency
//	stopwatch_host_disk_busy_ns{host}            accumulated disk service time
//	stopwatch_host_disk_backlog_ns{host}         disk FIFO horizon past now (queue wait)
//	stopwatch_host_io_inflight{host}             device-model work in progress
//	stopwatch_egress_pending_groups              open output copy groups (occupancy)
//	stopwatch_egress_stuck_groups                groups below their forward threshold
//	stopwatch_guest_divergences                  replica divergence counter sum
//
// Call once, before or after deployments — replicas wired later inherit
// the proposal-latency histogram. Gauges read live cluster state and are
// evaluated at snapshot; take snapshots from the simulation thread.
func (c *Cluster) InstrumentMetrics(reg *metrics.Registry) {
	// Fabric counters and the proposal-latency histogram are sharded: each
	// fabric shard / replica host updates its own cell lock-free, and the
	// registry merges the cells deterministically at snapshot, so the
	// rendered pages are byte-identical for every shard count.
	delivered := reg.NewShardedCounterVec("stopwatch_net_packets_delivered_total",
		"fabric packets handed to an attached node, by packet kind", "kind", c.Shards())
	dropped := reg.NewShardedCounterVec("stopwatch_net_packets_dropped_total",
		"fabric packets lost to the loss model or a detached address, by packet kind", "kind", c.Shards())
	c.net.SetMetrics(delivered, dropped)

	c.propLatency = reg.NewShardedHistogram("stopwatch_vmm_proposal_latency_ns",
		"loop-time latency from a replica's own delivery-time proposal to the median resolution",
		propLatencyBuckets, c.Shards())
	for _, g := range c.guests {
		for _, w := range g.replicas {
			if w != nil && w.nd != nil {
				h := c.propLatency.Shard(w.hostIdx % len(c.shardLoops))
				w.nd.LatencyHist = &h
			}
		}
	}

	busy := reg.NewGaugeFuncVec("stopwatch_host_disk_busy_ns",
		"accumulated disk service time (seek + transfer + jitter) per host", "host")
	backlog := reg.NewGaugeFuncVec("stopwatch_host_disk_backlog_ns",
		"disk FIFO horizon past the current instant per host — the wait a new request would see", "host")
	inflight := reg.NewGaugeFuncVec("stopwatch_host_io_inflight",
		"device-model work in progress per host (packets being processed, disk requests outstanding)", "host")
	for _, h := range c.hosts {
		h := h
		busy.Add(h.Name(), func() float64 { return float64(h.DiskBusy()) })
		backlog.Add(h.Name(), func() float64 { return float64(h.DiskBacklog(c.loop.Now())) })
		inflight.Add(h.Name(), func() float64 { return float64(h.IOInFlight()) })
	}

	reg.NewGaugeFunc("stopwatch_egress_pending_groups",
		"open egress copy groups (occupancy of the median-forwarding window)",
		func() float64 { return float64(c.egress.PendingGroups()) })
	reg.NewGaugeFunc("stopwatch_egress_stuck_groups",
		"egress copy groups still below their forward threshold — outputs a client is waiting for",
		func() float64 { return float64(c.egress.StuckBelowForward()) })
	reg.NewGaugeFunc("stopwatch_guest_divergences",
		"sum of replica divergence counters across resident guests (epoch re-sync health)",
		func() float64 {
			n := 0
			for _, g := range c.guests {
				n += g.Divergences()
			}
			return float64(n)
		})
}
