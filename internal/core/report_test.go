package core

import (
	"strings"
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/guest"
	"stopwatch/internal/sim"
)

func TestReportStopWatchRun(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 33
	c := mustCluster(t, cfg)
	if _, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig())); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	done := false
	dl := apps.NewDownloader(cl)
	c.Loop().At(20*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 64<<10, func(sim.Time) { done = true })
	})
	if err := c.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("download incomplete")
	}
	r := c.Report()
	if !r.Healthy() {
		t.Fatalf("unhealthy report:\n%s", r)
	}
	if len(r.Guests) != 1 || r.Guests[0].Replicas != 3 {
		t.Fatalf("guest summary wrong: %+v", r.Guests)
	}
	if r.Guests[0].NetInterrupts == 0 || r.Guests[0].DiskInterrupts == 0 {
		t.Fatalf("interrupt counts empty: %+v", r.Guests[0])
	}
	if r.IngressReplicated == 0 || r.EgressForwarded == 0 {
		t.Fatalf("gateway counters empty: %+v", r)
	}
	out := r.String()
	for _, want := range []string{"cluster report", "web", "x3", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReportBaselineRun(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 35
	cfg.Mode = ModeBaseline
	cfg.Hosts = 1
	c := mustCluster(t, cfg)
	if _, err := c.Deploy("web", []int{0}, fileServerFactory(t, apps.DefaultFileServerConfig())); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	dl := apps.NewDownloader(cl)
	c.Loop().At(20*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 16<<10, nil)
	})
	if err := c.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if len(r.Guests) != 1 || r.Guests[0].Replicas != 1 {
		t.Fatalf("baseline guest summary: %+v", r.Guests)
	}
	if r.IngressReplicated != 0 || r.EgressForwarded != 0 {
		t.Fatal("baseline should have no gateway counters")
	}
	if !r.Healthy() {
		t.Fatalf("baseline unhealthy:\n%s", r)
	}
}

func TestReportFlagsDivergence(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 37
	c := mustCluster(t, cfg)
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.Run(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Force a synchrony violation on one replica.
	g.Replica(0).Runtime().EnqueueNetDelivery(999, g.Replica(0).Runtime().VirtAtLastExit()-1, guestPayload())
	if err := c.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.Healthy() {
		t.Fatal("report should be unhealthy after forced divergence")
	}
	if r.Guests[0].Divergences == 0 {
		t.Fatalf("divergence not reported: %+v", r.Guests[0])
	}
}

// guestPayload builds a minimal payload for fault injection.
func guestPayload() guest.Payload { return guest.Payload{Src: "x", Size: 1} }
