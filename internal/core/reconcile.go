package core

// The pre-view-commit survivor reconcile round (ROADMAP item 6). When a
// machine crashes on a lossy fabric, its in-flight proposals may have been
// partially delivered: one survivor resolved a 3-median with the dead
// member's vote while another never saw it and would wedge after the view
// change (the resolved survivor stale-drops the re-proposal). Before the
// control plane commits the post-crash view, every affected guest's
// survivors therefore exchange reconcile exports over the real (lossy)
// fabric — each live NetDevice's resolved-seq ring plus the dead origin's
// pending votes — with bounded per-pair timeout/retry/backoff, and the
// view commits only once every exchange is acknowledged or out of budget.
//
// Concurrency follows the cluster's control-before-data discipline:
//   - Exports are built and sent from control-loop events (all shards
//     parked at that instant, so reading any replica's device is safe).
//   - Imports and acks run as ordinary shard delivery events on the
//     receiving host's loop, touching only that shard's state; they record
//     (when, session, pair) into per-shard queues.
//   - The coordinator barrier drains the queues merge-sorted by timestamp
//     (drainReconcile, composed with drainStalls), completes pairs and
//     sessions, and fires the control plane's commit gate — the same
//     pattern the stall detector uses.
//
// Every reconcile packet travels src "rcl:<host>" → dst "dom0:<host>" on
// fresh fabric links whose seeded jitter/loss streams are label-derived,
// so enabling the round never perturbs the schedule of existing links: a
// loss-free run's op-log digest is byte-identical with the round on or off.

import (
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vmm"
)

const (
	// rclSettle delays the first export past the crash instant so the dead
	// VMM's already-in-flight proposals land everywhere first (the export
	// then reflects every vote the fabric was going to deliver anyway).
	rclSettle = 5 * sim.Millisecond
	// rclRetryBase is the per-pair ack timeout; attempt n re-sends after
	// n*rclRetryBase (linear backoff, deterministic — the fabric's seeded
	// per-link streams provide the randomness the round needs).
	rclRetryBase = 3 * sim.Millisecond
	// rclMaxAttempts bounds the per-pair send budget; an unacked pair gives
	// up after this many sends so a partitioned survivor cannot stall the
	// view commit forever.
	rclMaxAttempts = 8
)

// ReconcileStats aggregates one failure's reconcile round for the control
// plane's outcome record.
type ReconcileStats struct {
	// Rounds counts guest groups that ran a survivor exchange.
	Rounds int
	// Repairs counts sequences repaired at importers: decisions adopted or
	// stashed, dead votes merged.
	Repairs int
	// Retries counts export re-sends beyond each pair's first.
	Retries int
	// GaveUp counts survivor pairs that exhausted their send budget.
	GaveUp int
}

// rclPair is one directed exporter→importer exchange within a session.
type rclPair struct {
	fromHost, toHost int
	attempts         int
	acked            bool
	done             bool
	retry            sim.Handle
}

// rclSession is one guest's reconcile exchange: every ordered survivor
// pair, exchanged under the guest's current (pre-commit) view.
type rclSession struct {
	c       *Cluster
	id      uint64
	guest   string
	dead    string // crashed origin host name
	pairs   []rclPair
	pending int
	repairs int
	retries int
	gaveUp  int
	hand    *rclHandle
}

// rclHandle tracks one ReconcileBeforeCommit call across its sessions.
type rclHandle struct {
	open  int
	stats ReconcileStats
	done  func(ReconcileStats)
}

// rclRec is one shard-recorded reconcile event: an ack (pair >= 0) or an
// import's repair count (pair == -1), drained at the next barrier.
type rclRec struct {
	when    sim.Time
	sess    uint64
	pair    int
	repairs int
}

// reconciler owns the cluster's reconcile-round state. Sessions are
// created and completed in exclusive contexts (control events and
// barriers); the per-shard queues are the only state shard events touch.
type reconciler struct {
	disabled bool
	nextSess uint64
	sessions map[uint64]*rclSession
	q        [][]rclRec
}

// rclAddr is a host's reconcile source endpoint. A dedicated source
// address gives the round its own fabric links — and so its own seeded
// jitter/loss streams — leaving every pre-existing link's stream untouched.
func rclAddr(host string) netsim.Addr { return netsim.Addr("rcl:" + host) }

// DisableViewReconcile force-disables the pre-commit reconcile round (the
// scenario harness's ablation switch): ReconcileBeforeCommit completes
// synchronously with zero stats and the view commits on the drain window
// alone, restoring the loss-intolerant behavior.
func (c *Cluster) DisableViewReconcile() { c.rcl.disabled = true }

// ReconcileBeforeCommit runs the pre-view-commit reconcile round for every
// listed guest resident on the crashed machine, and fires onDone — exactly
// once, possibly synchronously — when every survivor exchange has been
// acknowledged or has exhausted its budget. The control plane holds the
// post-crash view commit until both this and the proposal drain window
// have completed.
func (c *Cluster) ReconcileBeforeCommit(machine int, ids []string, onDone func(ReconcileStats)) {
	if machine < 0 || machine >= len(c.hosts) {
		onDone(ReconcileStats{})
		return
	}
	dead := c.hosts[machine].Name()
	hand := &rclHandle{done: onDone}
	var started []*rclSession
	if !c.rcl.disabled {
		for _, id := range ids {
			g, ok := c.guests[id]
			if !ok {
				continue
			}
			var survivors []int
			for _, w := range g.replicas {
				if w.hostIdx != machine && !c.hosts[w.hostIdx].Failed() && !w.rt.Stopped() {
					survivors = append(survivors, w.hostIdx)
				}
			}
			if len(survivors) < 2 {
				continue // nothing to exchange
			}
			if c.rcl.sessions == nil {
				c.rcl.sessions = make(map[uint64]*rclSession)
			}
			c.rcl.nextSess++
			s := &rclSession{c: c, id: c.rcl.nextSess, guest: id, dead: dead, hand: hand}
			for _, a := range survivors {
				for _, b := range survivors {
					if a != b {
						s.pairs = append(s.pairs, rclPair{fromHost: a, toHost: b})
					}
				}
			}
			s.pending = len(s.pairs)
			c.rcl.sessions[s.id] = s
			hand.open++
			hand.stats.Rounds++
			started = append(started, s)
		}
	}
	if hand.open == 0 {
		onDone(hand.stats)
		return
	}
	c.loop.After(rclSettle, "rcl:start", func() {
		for _, s := range started {
			for i := range s.pairs {
				s.sendExport(i)
			}
		}
	})
}

// sendExport builds and transmits pair i's export from the current device
// state (a retry re-snapshots — newer state only helps; imports are
// idempotent) and arms the ack-timeout retry. Runs on the control loop
// with all shards parked.
func (s *rclSession) sendExport(i int) {
	p := &s.pairs[i]
	if p.done {
		return
	}
	c := s.c
	nd := s.surviveND(p.fromHost)
	if nd == nil || c.hosts[p.toHost].Failed() {
		// The exporter or importer died (or the guest moved on) mid-round:
		// nothing left to exchange on this edge.
		s.completePair(p)
		return
	}
	if p.attempts >= rclMaxAttempts {
		s.gaveUp++
		s.completePair(p)
		return
	}
	if p.attempts > 0 {
		s.retries++
	}
	p.attempts++
	x := nd.ExportReconcile(s.dead)
	size := 64 + 16*(len(x.Resolutions)+len(x.DeadVotes))
	pkt := c.net.AllocPacket(rclAddr(c.hosts[p.fromHost].Name()), c.hostNodes[p.toHost].addr, size, "swrcl", nil)
	pkt.Body = netsim.PacketBody{
		Kind: netsim.BodyReconcile, GuestID: s.guest, Origin: x.Origin, View: x.View,
		Seq: s.id, StreamSeq: uint64(i), Data: &x,
	}
	c.net.Send(pkt)
	p.retry = c.loop.AfterTimer(sim.Time(p.attempts)*rclRetryBase, "rcl:retry", rclRetryTimer, s, nil, uint64(i)).Handle()
}

// rclRetryTimer fires a pair's ack timeout on the control loop.
func rclRetryTimer(a, _ any, u uint64) {
	s := a.(*rclSession)
	s.sendExport(int(u))
}

// surviveND returns the live device of s.guest on the given host, nil if
// the replica died, froze or moved since the round started.
func (s *rclSession) surviveND(host int) *vmm.NetDevice {
	g, ok := s.c.guests[s.guest]
	if !ok {
		return nil
	}
	for _, w := range g.replicas {
		if w.hostIdx == host && !s.c.hosts[host].Failed() && !w.rt.Stopped() {
			return w.nd
		}
	}
	return nil
}

// completePair retires one pair; the last pair completes the session.
func (s *rclSession) completePair(p *rclPair) {
	if p.done {
		return
	}
	p.done = true
	s.c.loop.CancelHandle(p.retry)
	s.pending--
	if s.pending == 0 {
		s.complete()
	}
}

// complete folds the session into its handle and fires the commit gate
// once the last session finishes.
func (s *rclSession) complete() {
	delete(s.c.rcl.sessions, s.id)
	h := s.hand
	h.stats.Repairs += s.repairs
	h.stats.Retries += s.retries
	h.stats.GaveUp += s.gaveUp
	h.open--
	if h.open == 0 {
		h.done(h.stats)
	}
}

// handleReconcile processes an incoming export on the receiving host's
// shard: import into the local device (a vanished replica still acks — the
// exporter needs completion, not the import) and ack back to the exporter.
func (hn *hostNode) handleReconcile(p *netsim.Packet) {
	c := hn.c
	repairs := 0
	if x, ok := p.Body.Data.(*vmm.ReconcileExport); ok {
		if nd, live := hn.netdevs[p.Body.GuestID]; live {
			repairs = nd.ImportReconcile(*x)
		}
	}
	now := hn.host.Loop().Now()
	if repairs > 0 {
		c.rcl.q[hn.shard] = append(c.rcl.q[hn.shard], rclRec{
			when: now, sess: p.Body.Seq, pair: -1, repairs: repairs,
		})
	}
	ack := c.net.AllocPacket(rclAddr(hn.host.Name()), netsim.Addr("dom0:"+p.Body.Origin), 32, "swrclack", nil)
	ack.Body = netsim.PacketBody{Kind: netsim.BodyReconcileAck, GuestID: p.Body.GuestID, Seq: p.Body.Seq, StreamSeq: p.Body.StreamSeq}
	c.net.Send(ack)
}

// handleReconcileAck records an ack on the receiving (exporter) host's
// shard for the next barrier.
func (hn *hostNode) handleReconcileAck(p *netsim.Packet) {
	hn.c.rcl.q[hn.shard] = append(hn.c.rcl.q[hn.shard], rclRec{
		when: hn.host.Loop().Now(), sess: p.Body.Seq, pair: int(p.Body.StreamSeq),
	})
}

// drainReconcile runs at every coordinator barrier (composed with
// drainStalls): merge the shard queues into one deterministic order and
// apply them — repairs accumulate, acks retire pairs and cancel their
// retry timers. Identical for every shard count: the order depends only on
// event timestamps and session/pair ids, never on shard layout.
func (c *Cluster) drainReconcile() {
	total := 0
	for _, q := range c.rcl.q {
		total += len(q)
	}
	if total == 0 {
		return
	}
	recs := make([]rclRec, 0, total)
	for k, q := range c.rcl.q {
		recs = append(recs, q...)
		c.rcl.q[k] = q[:0]
	}
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && rclLess(recs[j], recs[j-1]); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	for _, rec := range recs {
		s, ok := c.rcl.sessions[rec.sess]
		if !ok {
			continue // session already completed (late ack or repair)
		}
		if rec.pair < 0 {
			s.repairs += rec.repairs
			continue
		}
		if rec.pair >= len(s.pairs) {
			continue
		}
		p := &s.pairs[rec.pair]
		if p.done || p.acked {
			continue
		}
		p.acked = true
		s.completePair(p)
	}
}

// rclLess orders drained records by (when, session, pair, repairs).
func rclLess(a, b rclRec) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.sess != b.sess {
		return a.sess < b.sess
	}
	if a.pair != b.pair {
		return a.pair < b.pair
	}
	return a.repairs < b.repairs
}
