package core

import (
	"fmt"
	"sort"
)

// This file is the crashed-machine failure domain (Sec. VII: "the state of
// the crashed VM can be recovered from the other two replicas"). A planned
// drain keeps the machine's VMM proposing (footnote-4 regime); a crash does
// not — the dead device models would stall every co-resident guest's
// 3-proposal median forever. FailMachine models the crash instant;
// MarkReplicaDead installs the degraded live-group view that lets the
// survivors resolve on the live quorum until the control plane repairs
// membership through the ordinary replacement barrier.

// GuestIDs returns the deployed guest ids in sorted order — the
// deterministic iteration order for whole-machine operations.
func (c *Cluster) GuestIDs() []string {
	ids := make([]string, 0, len(c.guests))
	for id := range c.guests {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// FailMachine models machine m's VMM dying at the current instant: every
// resident replica's guest execution halts, its proposal sender closes (a
// dead VMM neither proposes nor repairs), and the machine's fabric endpoint
// goes silent. The replica wirings stay in place — replacement needs the
// slots — and the surviving replicas keep running against the full group
// view until MarkReplicaDead reconfigures them (callers wait a settle
// window first so the dead VMM's in-flight proposals land everywhere and
// every replica sees identical proposal sets).
func (c *Cluster) FailMachine(m int) error {
	if m < 0 || m >= len(c.hosts) {
		return fmt.Errorf("%w: machine %d out of range", ErrCluster, m)
	}
	h := c.hosts[m]
	if h.Failed() {
		return fmt.Errorf("%w: machine %d already failed", ErrCluster, m)
	}
	h.Fail()
	for _, id := range c.GuestIDs() {
		g := c.guests[id]
		if g.Baseline != nil {
			if g.baselineHost == m {
				g.Baseline.Stop()
			}
			continue
		}
		if slot, on := g.SlotOnHost(m); on {
			w := g.replicas[slot]
			w.rt.Stop()
			w.psnd.Close()
		}
	}
	return nil
}

// MarkReplicaDead reconfigures guest id's group after its replica's machine
// (deadHost, already failed via FailMachine) died: the survivors' proposal
// multicast groups, pacing peer lists and device live views drop the dead
// member, and the ingress stops replicating to it. Pending delivery
// proposals are re-proposed among the live members and resolve on the live
// quorum, so the guest's inbound path is unwedged; the dead replica's own
// wiring is left for the replacement barrier to tear down.
//
// Call it one settle window after FailMachine: the degraded view is only
// deterministic once the dead VMM's in-flight proposals have landed at
// every survivor (guaranteed on a loss-free fabric; with loss, repair must
// have completed before the sender died).
func (c *Cluster) MarkReplicaDead(id string, deadHost int) error {
	g, ok := c.guests[id]
	if !ok {
		return fmt.Errorf("%w: guest %q not deployed", ErrCluster, id)
	}
	if g.Baseline != nil {
		return fmt.Errorf("%w: baseline guests have no replica groups", ErrCluster)
	}
	if deadHost < 0 || deadHost >= len(c.hosts) {
		return fmt.Errorf("%w: machine %d out of range", ErrCluster, deadHost)
	}
	if !c.hosts[deadHost].Failed() {
		return fmt.Errorf("%w: machine %d is not failed", ErrCluster, deadHost)
	}
	if _, on := g.SlotOnHost(deadHost); !on {
		return fmt.Errorf("%w: guest %q has no replica on host %d", ErrCluster, id, deadHost)
	}
	return c.reconcileGroups(g)
}

// ReviveMachine clears a failed machine's mark after repair: the machine
// rejoins the cloud empty (its residents were evacuated or replaced) and
// can host new replicas again.
func (c *Cluster) ReviveMachine(m int) error {
	if m < 0 || m >= len(c.hosts) {
		return fmt.Errorf("%w: machine %d out of range", ErrCluster, m)
	}
	if !c.hosts[m].Failed() {
		return fmt.Errorf("%w: machine %d is not failed", ErrCluster, m)
	}
	c.hosts[m].Revive()
	return nil
}
