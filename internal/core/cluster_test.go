package core

import (
	"errors"
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/transport"
)

func mustCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fileServerFactory(t *testing.T, cfg apps.FileServerConfig) func() guest.App {
	t.Helper()
	return func() guest.App {
		fs, err := apps.NewFileServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(ClusterConfig{Hosts: 0, Mode: ModeStopWatch, VMM: DefaultClusterConfig().VMM}); !errors.Is(err, ErrCluster) {
		t.Fatal("0 hosts should fail")
	}
	cfg := DefaultClusterConfig()
	cfg.Mode = 0
	if _, err := New(cfg); !errors.Is(err, ErrCluster) {
		t.Fatal("bad mode should fail")
	}
	cfg = DefaultClusterConfig()
	cfg.Replicas = 2
	if _, err := New(cfg); !errors.Is(err, ErrCluster) {
		t.Fatal("even replicas should fail")
	}
	c := mustCluster(t, DefaultClusterConfig())
	if _, err := c.Deploy("", []int{0, 1, 2}, nil); !errors.Is(err, ErrCluster) {
		t.Fatal("empty id should fail")
	}
	f := fileServerFactory(t, apps.DefaultFileServerConfig())
	if _, err := c.Deploy("g", []int{0, 1}, f); !errors.Is(err, ErrCluster) {
		t.Fatal("wrong replica count should fail")
	}
	if _, err := c.Deploy("g", []int{0, 0, 1}, f); !errors.Is(err, ErrCluster) {
		t.Fatal("duplicate hosts should fail")
	}
	if _, err := c.Deploy("g", []int{0, 1, 9}, f); !errors.Is(err, ErrCluster) {
		t.Fatal("out-of-range host should fail")
	}
	if _, err := c.Deploy("g", []int{0, 1, 2}, f); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("g", []int{0, 1, 2}, f); !errors.Is(err, ErrCluster) {
		t.Fatal("duplicate guest should fail")
	}
}

func TestStopWatchEndToEndDownload(t *testing.T) {
	c := mustCluster(t, DefaultClusterConfig())
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var lat []sim.Time
	dl := apps.NewDownloader(cl)
	c.Loop().At(50*sim.Millisecond, "fetch", func() {
		if err := dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 100<<10, func(l sim.Time) { lat = append(lat, l) }); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(lat) != 1 {
		t.Fatalf("downloads completed: %d (egress fwd=%d stuck=%d)",
			len(lat), c.Egress().Forwarded(), c.Egress().StuckBelowForward())
	}
	// Replicas stayed in lockstep and actually served.
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if g.Divergences() != 0 {
		t.Fatalf("divergences: %d", g.Divergences())
	}
	for _, r := range g.Replicas() {
		if r.App().(*apps.FileServer).Served() != 1 {
			t.Fatalf("replica %d served %d", r.Slot(), r.App().(*apps.FileServer).Served())
		}
	}
	// Latency must include the Δn tax on inbound packets: well above the
	// bare RTT, below a second.
	if lat[0] < 10*sim.Millisecond || lat[0] > sim.Second {
		t.Fatalf("download latency %v out of plausible StopWatch range", lat[0])
	}
}

func TestBaselineEndToEndDownload(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Mode = ModeBaseline
	cfg.Hosts = 1
	c := mustCluster(t, cfg)
	if _, err := c.Deploy("web", []int{0}, fileServerFactory(t, apps.DefaultFileServerConfig())); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var lat []sim.Time
	dl := apps.NewDownloader(cl)
	c.Loop().At(50*sim.Millisecond, "fetch", func() {
		if err := dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 100<<10, func(l sim.Time) { lat = append(lat, l) }); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(lat) != 1 {
		t.Fatalf("downloads completed: %d", len(lat))
	}
	if lat[0] <= 0 || lat[0] > sim.Second {
		t.Fatalf("baseline latency %v", lat[0])
	}
}

func TestStopWatchSlowerThanBaselineButBounded(t *testing.T) {
	// The headline sanity check behind Fig. 5: same download, both modes;
	// StopWatch pays more, but within a small constant factor for a 100KB
	// file (paper: <2.8x at ≥100KB; small files pay relatively more).
	fetch := func(mode Mode, hosts int, idx []int) sim.Time {
		cfg := DefaultClusterConfig()
		cfg.Mode = mode
		cfg.Hosts = hosts
		c := mustCluster(t, cfg)
		if _, err := c.Deploy("web", idx, fileServerFactory(t, apps.DefaultFileServerConfig())); err != nil {
			t.Fatal(err)
		}
		cl, err := c.NewClient("laptop")
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		var lat sim.Time
		dl := apps.NewDownloader(cl)
		c.Loop().At(50*sim.Millisecond, "fetch", func() {
			if err := dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 1<<20, func(l sim.Time) { lat = l }); err != nil {
				t.Error(err)
			}
		})
		if err := c.Run(60 * sim.Second); err != nil {
			t.Fatal(err)
		}
		if lat == 0 {
			t.Fatal("download did not complete")
		}
		return lat
	}
	base := fetch(ModeBaseline, 1, []int{0})
	sw := fetch(ModeStopWatch, 3, []int{0, 1, 2})
	if sw <= base {
		t.Fatalf("StopWatch (%v) should cost more than baseline (%v)", sw, base)
	}
	ratio := float64(sw) / float64(base)
	if ratio > 30 {
		t.Fatalf("StopWatch/baseline ratio %.1f implausibly high (sw=%v base=%v)", ratio, sw, base)
	}
}

func TestUDPDownloadThroughStopWatch(t *testing.T) {
	cfg := apps.DefaultFileServerConfig()
	cfg.Mode = apps.ModeUDP
	c := mustCluster(t, DefaultClusterConfig())
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var lat []sim.Time
	dl := apps.NewDownloader(cl)
	c.Loop().At(50*sim.Millisecond, "fetch", func() {
		if err := dl.Fetch(ServiceAddr("web"), apps.ModeUDP, 1<<20, func(l sim.Time) { lat = append(lat, l) }); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(lat) != 1 {
		t.Fatalf("udp downloads: %d", len(lat))
	}
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	// Exactly one inbound packet needed (the request): the ingress should
	// have replicated exactly 1 client packet.
	if c.Ingress().Replicated() != 1 {
		t.Fatalf("ingress replicated %d packets, want 1 for UDP", c.Ingress().Replicated())
	}
}

func TestTwoGuestsCoresident(t *testing.T) {
	// Six hosts; attacker on {0,1,2}, victim on {2,3,4}: exactly one shared
	// host (2), per the placement constraint.
	cfg := DefaultClusterConfig()
	cfg.Hosts = 5
	c := mustCluster(t, cfg)
	probeFactory := func() guest.App { return apps.NewProbeApp() }
	att, err := c.Deploy("attacker", []int{0, 1, 2}, probeFactory)
	if err != nil {
		t.Fatal(err)
	}
	vic, err := c.Deploy("victim", []int{2, 3, 4}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("victim-client")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	// Probe stream to the attacker.
	ps := apps.NewProbeSource(c.Net(), c.Loop(), c.Source().Stream("probe"), "colluder", ServiceAddr("attacker"), 20*sim.Millisecond)
	ps.Start(3 * sim.Second)
	// Victim serves continuous downloads.
	dl := apps.NewDownloader(cl)
	var victimDone int
	var kick func()
	kick = func() {
		_ = dl.Fetch(ServiceAddr("victim"), apps.ModeTCP, 64<<10, func(sim.Time) {
			victimDone++
			kick()
		})
	}
	c.Loop().At(10*sim.Millisecond, "victim-load", kick)
	if err := c.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := att.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if err := vic.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if att.Divergences() != 0 || vic.Divergences() != 0 {
		t.Fatalf("divergences att=%d vic=%d", att.Divergences(), vic.Divergences())
	}
	if victimDone == 0 {
		t.Fatal("victim never served")
	}
	probe := att.App(0).(*apps.ProbeApp)
	if len(probe.DeliveryTimes()) < 50 {
		t.Fatalf("probe saw %d deliveries", len(probe.DeliveryTimes()))
	}
	// All replicas observed IDENTICAL delivery times (that is the defense).
	for i := 1; i < 3; i++ {
		a := att.App(i).(*apps.ProbeApp).DeliveryTimes()
		b := probe.DeliveryTimes()
		if len(a) != len(b) {
			t.Fatalf("replica %d saw %d deliveries vs %d", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("replica %d delivery %d differs: %v vs %v", i, k, a[k], b[k])
			}
		}
	}
}

func TestNFSThroughStopWatch(t *testing.T) {
	c := mustCluster(t, DefaultClusterConfig())
	nfsFactory := func() guest.App {
		s, err := apps.NewNFSServer(16)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	g, err := c.Deploy("nfs", []int{0, 1, 2}, nfsFactory)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("nfs-client")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	gen, err := apps.NewNFSLoadGen(c.Loop(), c.Source().Stream("nfsgen"), cl, ServiceAddr("nfs"), apps.PaperMix(), apps.NFSLoadGenConfig{
		Processes:  5,
		RatePerSec: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(2 * sim.Second)
	if err := c.Run(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if gen.Completed() < gen.Issued()*9/10 {
		t.Fatalf("completed %d/%d ops", gen.Completed(), gen.Issued())
	}
	if gen.Completed() == 0 {
		t.Fatal("no ops completed")
	}
	lats := gen.Latencies()
	var sum sim.Time
	for _, l := range lats {
		sum += l
	}
	mean := sum / sim.Time(len(lats))
	if mean < 5*sim.Millisecond || mean > 500*sim.Millisecond {
		t.Fatalf("mean NFS latency %v implausible", mean)
	}
}

func TestParsecThroughBothModes(t *testing.T) {
	profile := apps.ParsecProfile{
		Name: "mini", ComputeBranches: 20_000_000, DiskReads: 5, BytesPerRead: 16 << 10,
	}
	run := func(mode Mode, hosts int, idx []int) sim.Time {
		cfg := DefaultClusterConfig()
		cfg.Mode = mode
		cfg.Hosts = hosts
		c := mustCluster(t, cfg)
		var doneAt sim.Time
		if err := c.Net().Attach(&netsim.FuncNode{Addr: "collector", Fn: func(p *netsim.Packet) {
			if doneAt == 0 {
				doneAt = c.Loop().Now()
			}
		}}); err != nil {
			t.Fatal(err)
		}
		factory := func() guest.App {
			a, err := apps.NewParsecApp(profile, "collector")
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		if _, err := c.Deploy("parsec", idx, factory); err != nil {
			t.Fatal(err)
		}
		c.Start()
		if err := c.Run(10 * sim.Second); err != nil {
			t.Fatal(err)
		}
		if doneAt == 0 {
			t.Fatalf("%v: workload never finished", mode)
		}
		return doneAt
	}
	base := run(ModeBaseline, 1, []int{0})
	sw := run(ModeStopWatch, 3, []int{0, 1, 2})
	if sw <= base {
		t.Fatalf("StopWatch parsec (%v) should exceed baseline (%v)", sw, base)
	}
	// Overhead should be roughly DiskReads × Δd-ish — bounded well below
	// 10x for this profile.
	if float64(sw)/float64(base) > 10 {
		t.Fatalf("parsec ratio %.1f implausible", float64(sw)/float64(base))
	}
}

func TestEgressMedianTimingOrder(t *testing.T) {
	// The egress must forward each output exactly once and in guest output
	// order for a single-threaded response stream.
	c := mustCluster(t, DefaultClusterConfig())
	if _, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig())); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	c.Egress().OnForward = func(g string, seq uint64, at sim.Time) { seqs = append(seqs, seq) }
	c.Start()
	dl := apps.NewDownloader(cl)
	done := false
	c.Loop().At(50*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 50<<10, func(sim.Time) { done = true })
	})
	if err := c.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("download incomplete")
	}
	if len(seqs) == 0 {
		t.Fatal("egress forwarded nothing")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("egress forward order broken at %d: %v", i, seqs)
		}
	}
}

var _ = transport.MSS // silence potential unused import if tests change
