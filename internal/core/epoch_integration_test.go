package core

import (
	"fmt"
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// TestEpochResyncEndToEnd enables the optional Sec. IV-A epoch
// re-synchronization across a full cluster: replicas exchange (D,R) samples
// over the fabric, hit the epoch barriers together, adjust their virtual
// clocks identically, and still serve traffic in lockstep.
func TestEpochResyncEndToEnd(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 21
	// Epoch of 50M instructions ≈ 50ms of virtual time: several epochs
	// within the run. Must be a multiple of ExitEvery.
	cfg.VMM.EpochInstr = 50_000_000
	c := mustCluster(t, cfg)
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Replicas() {
		if r.Epoch() == nil {
			t.Fatalf("replica %d has no epoch coordinator", r.Slot())
		}
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	done := 0
	dl := apps.NewDownloader(cl)
	var kick func()
	kicks := 0
	kick = func() {
		if kicks >= 3 {
			return
		}
		kicks++
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 64<<10, func(sim.Time) {
			done++
			kick()
		})
	}
	c.Loop().At(20*sim.Millisecond, "fetch", kick)
	if err := c.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("downloads with epochs enabled: %d/3", done)
	}
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if g.Divergences() != 0 {
		t.Fatalf("divergences: %d", g.Divergences())
	}
	// Epoch adjustments actually happened, and consistently across
	// replicas (counts may straggle by one at the cutoff).
	minAdj, maxAdj := g.Replica(0).Epoch().Adjustments(), g.Replica(0).Epoch().Adjustments()
	for _, r := range g.Replicas()[1:] {
		if a := r.Epoch().Adjustments(); a < minAdj {
			minAdj = a
		} else if a > maxAdj {
			maxAdj = a
		}
	}
	if minAdj < 5 {
		t.Fatalf("too few epoch adjustments: %d", minAdj)
	}
	if maxAdj-minAdj > 1 {
		t.Fatalf("epoch adjustment counts diverged: %d..%d", minAdj, maxAdj)
	}
}

// TestEpochReplacementLockstepProperty is the epoch-compatible replacement
// property: across seeds, with and without checkpointed journals, a guest
// running under Sec. IV-A epoch re-synchronization whose replica crashes
// mid-traffic is replaced through the quiesce barrier and ends in lockstep,
// with epoch adjustment counts still consistent — the regime the journal
// replay path used to reject outright (`EpochInstr > 0` was an error).
func TestEpochReplacementLockstepProperty(t *testing.T) {
	for _, seed := range []uint64{3, 5, 9} {
		for _, ckpt := range []int64{0, 4_000_000} {
			t.Run(fmt.Sprintf("seed%d_ckpt%d", seed, ckpt), func(t *testing.T) {
				cfg := DefaultClusterConfig()
				cfg.Seed = seed
				cfg.Hosts = 5
				// ~50ms of virtual time per epoch (the end-to-end test's
				// cadence): the run crosses tens of barriers, several of
				// them around the replacement window.
				cfg.VMM.EpochInstr = 50_000_000
				cfg.VMM.CheckpointInstr = ckpt
				c := mustCluster(t, cfg)
				g, err := c.Deploy("web", []int{0, 1, 2}, func() guest.App {
					b := apps.NewBeaconApp(vtime.Virtual(3 * sim.Millisecond))
					// No disk: under epoch mode, disk-heavy bursts push a
					// replica's clock past median-agreed ping deliveries
					// (counted as divergences) even without any crash.
					b.DiskBytes = 0
					b.Sink = "sink"
					return b
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Net().Attach(&netsim.FuncNode{Addr: "sink", Fn: func(*netsim.Packet) {}}); err != nil {
					t.Fatal(err)
				}
				if err := c.Net().Attach(&netsim.FuncNode{Addr: "probe", Fn: func(*netsim.Packet) {}}); err != nil {
					t.Fatal(err)
				}
				c.Start()
				// Inbound pings keep resolved deliveries flowing into the
				// journal across the crash and the replacement.
				var ping func()
				ping = func() {
					if c.Loop().Now() >= 1500*sim.Millisecond {
						return
					}
					c.Net().Send(&netsim.Packet{Src: "probe", Dst: ServiceAddr("web"), Size: 128, Kind: "ping"})
					c.Loop().After(10*sim.Millisecond, "ping", ping)
				}
				c.Loop().At(30*sim.Millisecond, "ping", ping)

				c.Loop().At(300*sim.Millisecond, "kill", func() { g.Replica(1).Runtime().Stop() })
				replaced := false
				attempts := 0
				var tryReplace func()
				tryReplace = func() {
					attempts++
					if !c.GuestQuiescent("web") {
						if attempts > 100 {
							t.Error("guest never quiesced for replacement")
							c.Stop()
							return
						}
						c.Loop().After(20*sim.Millisecond, "replace:retry", tryReplace)
						return
					}
					if err := c.ReplaceReplica("web", 1, 3); err != nil {
						t.Errorf("ReplaceReplica under epochs: %v", err)
						c.Stop()
						return
					}
					c.Ingress().Resume("web")
					replaced = true
				}
				c.Loop().At(400*sim.Millisecond, "replace", func() {
					c.Ingress().Pause("web")
					c.Loop().After(50*sim.Millisecond, "replace:try", tryReplace)
				})
				if err := c.Run(2 * sim.Second); err != nil {
					t.Fatal(err)
				}
				if !replaced {
					t.Fatal("replacement never happened")
				}
				fresh := g.Replica(1)
				if fresh.Epoch() == nil {
					t.Fatal("replacement replica has no epoch coordinator")
				}
				if err := g.CheckLockstepPrefix(); err != nil {
					t.Fatal(err)
				}
				if g.Divergences() != 0 {
					t.Fatalf("divergences: %d", g.Divergences())
				}
				// The replacement kept adjusting epochs in lockstep with the
				// survivors after the switchover.
				minAdj, maxAdj := -1, -1
				for _, r := range g.Replicas() {
					a := r.Epoch().Adjustments()
					if minAdj < 0 || a < minAdj {
						minAdj = a
					}
					if a > maxAdj {
						maxAdj = a
					}
				}
				if minAdj < 5 {
					t.Fatalf("too few epoch adjustments: %d", minAdj)
				}
				if maxAdj-minAdj > 1 {
					t.Fatalf("epoch adjustment counts diverged: %d..%d", minAdj, maxAdj)
				}
				if st := fresh.Runtime().Stats(); ckpt > 0 {
					// Checkpointing must have engaged and bounded the replay.
					if g.JournalStats().Checkpoints == 0 {
						t.Fatal("no checkpoints taken")
					}
					if st.RestoredInstr == 0 {
						t.Fatal("replacement did not restore from a checkpoint")
					}
				} else if st.RestoredInstr != 0 {
					t.Fatal("checkpointing off, yet replay restored a checkpoint")
				}
			})
		}
	}
}
