package core

import (
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/sim"
)

// TestEpochResyncEndToEnd enables the optional Sec. IV-A epoch
// re-synchronization across a full cluster: replicas exchange (D,R) samples
// over the fabric, hit the epoch barriers together, adjust their virtual
// clocks identically, and still serve traffic in lockstep.
func TestEpochResyncEndToEnd(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 21
	// Epoch of 50M instructions ≈ 50ms of virtual time: several epochs
	// within the run. Must be a multiple of ExitEvery.
	cfg.VMM.EpochInstr = 50_000_000
	c := mustCluster(t, cfg)
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Replicas() {
		if r.Epoch() == nil {
			t.Fatalf("replica %d has no epoch coordinator", r.Slot())
		}
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	done := 0
	dl := apps.NewDownloader(cl)
	var kick func()
	kicks := 0
	kick = func() {
		if kicks >= 3 {
			return
		}
		kicks++
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 64<<10, func(sim.Time) {
			done++
			kick()
		})
	}
	c.Loop().At(20*sim.Millisecond, "fetch", kick)
	if err := c.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("downloads with epochs enabled: %d/3", done)
	}
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if g.Divergences() != 0 {
		t.Fatalf("divergences: %d", g.Divergences())
	}
	// Epoch adjustments actually happened, and consistently across
	// replicas (counts may straggle by one at the cutoff).
	minAdj, maxAdj := g.Replica(0).Epoch().Adjustments(), g.Replica(0).Epoch().Adjustments()
	for _, r := range g.Replicas()[1:] {
		if a := r.Epoch().Adjustments(); a < minAdj {
			minAdj = a
		} else if a > maxAdj {
			maxAdj = a
		}
	}
	if minAdj < 5 {
		t.Fatalf("too few epoch adjustments: %d", minAdj)
	}
	if maxAdj-minAdj > 1 {
		t.Fatalf("epoch adjustment counts diverged: %d..%d", minAdj, maxAdj)
	}
}
