package core

import (
	"strings"
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
)

// TestInstrumentMetricsDataPlane drives one end-to-end download through an
// instrumented cluster and checks every data-plane family moved: fabric
// per-kind counters, the proposal-latency histogram (wired to replicas
// created after instrumentation), per-host disk gauges, and egress
// occupancy.
func TestInstrumentMetricsDataPlane(t *testing.T) {
	c := mustCluster(t, DefaultClusterConfig())
	reg := metrics.NewRegistry()
	c.InstrumentMetrics(reg)
	if _, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig())); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var lat []sim.Time
	dl := apps.NewDownloader(cl)
	c.Loop().At(50*sim.Millisecond, "fetch", func() {
		if err := dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 100<<10, func(l sim.Time) { lat = append(lat, l) }); err != nil {
			t.Error(err)
		}
	})
	if err := c.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(lat) != 1 {
		t.Fatalf("download did not complete under instrumentation")
	}

	find := func(name, label string) metrics.Sample {
		t.Helper()
		samples, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("family %q not registered", name)
		}
		for _, s := range samples {
			if s.LabelValue == label {
				return s
			}
		}
		t.Fatalf("family %q has no sample %q (have %v)", name, label, samples)
		return metrics.Sample{}
	}

	// The proposal exchange rides the reliable multicast (pgm:data), and
	// every replica tunnels outputs to the egress: both kinds must move,
	// and proposal-latency observations must be plentiful.
	if s := find("stopwatch_net_packets_delivered_total", "pgm:data"); s.Counter == 0 {
		t.Fatal("no proposal multicast deliveries counted")
	}
	if s := find("stopwatch_net_packets_delivered_total", "egress:tunnel"); s.Counter == 0 {
		t.Fatal("no egress tunnel deliveries counted")
	}
	lat2 := find("stopwatch_vmm_proposal_latency_ns", "")
	if lat2.Count == 0 || lat2.Sum <= 0 {
		t.Fatalf("proposal latency histogram empty: %+v", lat2)
	}

	// The file server reads from disk on every request: host gauges for the
	// serving triangle must show accumulated busy time.
	var busy float64
	for _, h := range []int{0, 1, 2} {
		busy += find("stopwatch_host_disk_busy_ns", c.Host(h).Name()).Gauge
	}
	if busy <= 0 {
		t.Fatal("no disk busy time accumulated on the serving hosts")
	}

	// After the run settles the egress has no stuck groups.
	if s := find("stopwatch_egress_stuck_groups", ""); s.Gauge != 0 {
		t.Fatalf("stuck egress groups: %v", s.Gauge)
	}
	if s := find("stopwatch_guest_divergences", ""); s.Gauge != 0 {
		t.Fatalf("divergences: %v", s.Gauge)
	}

	// The page renders with every family present.
	prom := reg.Prom()
	for _, fam := range []string{
		"stopwatch_net_packets_delivered_total",
		"stopwatch_net_packets_dropped_total",
		"stopwatch_vmm_proposal_latency_ns_bucket",
		"stopwatch_host_disk_backlog_ns",
		"stopwatch_host_io_inflight",
		"stopwatch_egress_pending_groups",
	} {
		if !strings.Contains(prom, fam) {
			t.Fatalf("prom page missing %s:\n%s", fam, prom)
		}
	}
}

// TestInstrumentationDoesNotPerturbRun pins the observability plane's core
// guarantee at the data-plane level: the same seed and workload produce an
// identical journal and packet economy with and without instrumentation.
func TestInstrumentationDoesNotPerturbRun(t *testing.T) {
	run := func(instrument bool) (uint64, int) {
		cfg := DefaultClusterConfig()
		cfg.Seed = 42
		c := mustCluster(t, cfg)
		if instrument {
			c.InstrumentMetrics(metrics.NewRegistry())
		}
		if _, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig())); err != nil {
			t.Fatal(err)
		}
		cl, err := c.NewClient("laptop")
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		dl := apps.NewDownloader(cl)
		c.Loop().At(50*sim.Millisecond, "fetch", func() {
			if err := dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 64<<10, func(sim.Time) {}); err != nil {
				t.Error(err)
			}
		})
		if err := c.Run(10 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return c.Net().Stats().Delivered, int(c.Egress().Forwarded())
	}
	d1, f1 := run(false)
	d2, f2 := run(true)
	if d1 != d2 || f1 != f2 {
		t.Fatalf("instrumentation perturbed the run: delivered %d vs %d, forwarded %d vs %d", d1, d2, f1, f2)
	}
}
