package core

import (
	"testing"

	"stopwatch/internal/apps"
	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// Failure injection at the cluster level: lossy cloud fabric (NAK recovery
// end-to-end), a dead replica (egress liveness), and background broadcast
// noise (the paper's /24 subnet conditions).

func TestDownloadSurvivesLossyCloudFabric(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Seed = 5
	// 5% loss on every intra-cloud link: ingress replication and proposal
	// exchange must recover via NAKs; the client link stays clean (its
	// reliability belongs to TCP, exercised elsewhere).
	cfg.CloudLink.LossProb = 0.05
	c := mustCluster(t, cfg)
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	done := 0
	dl := apps.NewDownloader(cl)
	var kick func()
	fetches := 0
	kick = func() {
		if fetches >= 5 {
			return
		}
		fetches++
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 50<<10, func(sim.Time) {
			done++
			kick()
		})
	}
	c.Loop().At(20*sim.Millisecond, "fetch", kick)
	if err := c.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if done != 5 {
		t.Fatalf("completed %d/5 downloads under 5%% cloud loss", done)
	}
	// Loss on the egress→client path is absorbed by TCP above; lockstep
	// must hold regardless.
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceSurvivesDeadReplica(t *testing.T) {
	// Kill one replica mid-run: the egress still forwards on the second
	// copy, so the client keeps receiving data. (Inbound-median liveness
	// with a dead replica requires the recovery path the paper sketches in
	// footnote 4 — state copy — which is out of scope; here the dead
	// replica keeps proposing by virtue of its VMM being alive, but its
	// guest is stopped, which matches a crashed-guest fault.)
	cfg := DefaultClusterConfig()
	cfg.Seed = 9
	c := mustCluster(t, cfg)
	cfgFS := apps.DefaultFileServerConfig()
	cfgFS.Mode = apps.ModeUDP
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, cfgFS))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	// Stop replica 2's guest execution after its boot; its VMM/device
	// models stay up (proposals still flow), but it emits no outputs.
	c.Loop().At(10*sim.Millisecond, "kill", func() { g.Replica(2).Runtime().Stop() })
	done := 0
	dl := apps.NewDownloader(cl)
	c.Loop().At(50*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeUDP, 100<<10, func(sim.Time) { done++ })
	})
	if err := c.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatalf("download with dead replica: %d/1 (egress stuck=%d)", done, c.Egress().StuckBelowForward())
	}
	// The two live replicas stayed in lockstep with each other.
	if g.Replica(0).Runtime().VM().OutputDigest() != g.Replica(1).Runtime().VM().OutputDigest() {
		t.Fatal("live replicas diverged")
	}
}

func TestDeadReplicaIsReplacedAndRejoinsLockstep(t *testing.T) {
	// The Sec. VII recovery path: a replica dies mid-run, the survivors'
	// state is used to reconstruct it on a fresh host (journal replay), and
	// the guest ends the scenario with THREE replicas in strict lockstep —
	// not merely tolerating the hole.
	cfg := DefaultClusterConfig()
	cfg.Seed = 17
	cfg.Hosts = 5
	c := mustCluster(t, cfg)
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	done := 0
	dl := apps.NewDownloader(cl)
	var kick func()
	fetches := 0
	kick = func() {
		if fetches >= 6 {
			return
		}
		fetches++
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 50<<10, func(sim.Time) {
			done++
			kick()
		})
	}
	c.Loop().At(20*sim.Millisecond, "fetch", kick)

	// Replica 2 crashes at t=300ms, mid-traffic.
	c.Loop().At(300*sim.Millisecond, "kill", func() { g.Replica(2).Runtime().Stop() })

	// The replacement barrier: pause the ingress stream, let the fabric and
	// proposal exchange drain, then switch over and resume.
	replaced := false
	var tryReplace func()
	attempts := 0
	tryReplace = func() {
		attempts++
		if !c.GuestQuiescent("web") {
			if attempts > 50 {
				t.Fatal("guest never quiesced for replacement")
			}
			c.Loop().After(20*sim.Millisecond, "replace:retry", tryReplace)
			return
		}
		if err := c.ReplaceReplica("web", 2, 3); err != nil {
			t.Fatalf("ReplaceReplica: %v", err)
		}
		c.Ingress().Resume("web")
		replaced = true
	}
	c.Loop().At(400*sim.Millisecond, "replace", func() {
		c.Ingress().Pause("web")
		c.Loop().After(50*sim.Millisecond, "replace:try", tryReplace)
	})

	if err := c.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !replaced {
		t.Fatal("replacement never happened")
	}
	if done != 6 {
		t.Fatalf("completed %d/6 downloads across the replacement", done)
	}
	if g.Replaced != 1 {
		t.Fatalf("Replaced = %d, want 1", g.Replaced)
	}
	if got := g.HostIndexes(); got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("replica hosts after replacement: %v", got)
	}
	// The reconstructed replica is byte-for-byte level with the survivors:
	// strict lockstep across all three, including outputs emitted before
	// the crash (replayed into the digest) and after the switchover.
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	if n := g.Replica(2).Runtime().VM().OutputCount(); n == 0 {
		t.Fatal("replacement replica emitted nothing")
	}
	// And it actually served post-switchover traffic (live sends beyond the
	// replayed prefix).
	if s := g.Replica(2).Runtime().Stats(); s.ReplayedSends == 0 {
		t.Fatal("replacement did not replay any survivor outputs")
	} else if int(g.Replica(2).Runtime().VM().Stats().PacketsSent) <= s.ReplayedSends {
		t.Fatal("replacement emitted no live outputs after the switchover")
	}
}

func TestBackgroundBroadcastNoise(t *testing.T) {
	// The paper's testbed saw 50-100 broadcast packets/s replicated to the
	// guests throughout. Inject similar noise and verify lockstep and
	// service health are unaffected.
	cfg := DefaultClusterConfig()
	cfg.Seed = 11
	c := mustCluster(t, cfg)
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast traffic addressed to the guest's public address traverses
	// the full ingress→median path, like the ARP noise in the paper.
	bc, err := netsim.NewBroadcaster(c.Net(), c.Loop(), c.Source().Stream("bcast"), netsim.BroadcasterConfig{
		Src:        "subnet",
		Targets:    []netsim.Addr{ServiceAddr("web")},
		RatePerSec: 75,
		Size:       60,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	bc.Start(3 * sim.Second)
	done := 0
	dl := apps.NewDownloader(cl)
	c.Loop().At(100*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 100<<10, func(sim.Time) { done++ })
	})
	if err := c.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatal("download failed under broadcast noise")
	}
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
	// The noise actually reached the guests (delivered via the median path
	// and ignored by the app).
	if bc.Sent() < 150 {
		t.Fatalf("broadcast rounds: %d", bc.Sent())
	}
	if got := g.Replica(0).Runtime().VM().Stats().NetInterrupts; got < int64(bc.Sent()) {
		t.Fatalf("guest saw %d net interrupts, want >= %d broadcasts", got, bc.Sent())
	}
}

func TestHostSlowdownPacingKeepsLockstep(t *testing.T) {
	// One host runs a heavy coresident load guest: pacing slows the fast
	// replicas and lockstep must hold.
	cfg := DefaultClusterConfig()
	cfg.Seed = 13
	cfg.Hosts = 5
	c := mustCluster(t, cfg)
	g, err := c.Deploy("web", []int{0, 1, 2}, fileServerFactory(t, apps.DefaultFileServerConfig()))
	if err != nil {
		t.Fatal(err)
	}
	// Two heavy load guests on host 1 (not just one, to force real skew).
	for i, period := range []vtime.Virtual{vtime.Virtual(3 * sim.Millisecond), vtime.Virtual(5 * sim.Millisecond)} {
		id := []string{"load-a", "load-b"}[i]
		period := period
		if _, err := c.Deploy(id, []int{1, 3, 4}, func() guest.App {
			b := apps.NewBeaconApp(period)
			b.Compute = 8_000_000
			b.Sink = "sink"
			return b
		}); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	done := 0
	dl := apps.NewDownloader(cl)
	var kick func()
	kicks := 0
	kick = func() {
		if kicks >= 3 {
			return
		}
		kicks++
		_ = dl.Fetch(ServiceAddr("web"), apps.ModeTCP, 64<<10, func(sim.Time) {
			done++
			kick()
		})
	}
	c.Loop().At(20*sim.Millisecond, "fetch", kick)
	if err := c.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("downloads under skew: %d/3", done)
	}
	if err := g.CheckLockstep(); err != nil {
		t.Fatal(err)
	}
}
